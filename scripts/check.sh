#!/bin/sh
# The full pre-merge gate: build everything, vet everything, run every test
# under the race detector. The runtime is a message-passing system built on
# goroutines, so a -race pass is part of correctness, not a nicety.
#
# The global -timeout enforces the failure model's core promise at the CI
# level: no failure mode is allowed to hang — a regression that re-introduces
# a hang fails the gate instead of wedging it.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race -timeout 300s ./...

# Run the failure suite (abort propagation, deadlines, fault injection, TCP
# hardening) once more under a tighter timeout: these tests exist to prove
# failures terminate promptly, so hold them to a prompter standard.
go test -race -timeout 120s -count=1 \
  -run 'TestRunRankFailure|TestRunPanic|TestAbort|TestSendAfterAbort|TestJoinTCPAbort|TestLowest|TestDeadline|TestFault|TestEmptyFaultPlan|TestHub|TestDialRetry|TestGarbage|TestRunTCP' \
  ./internal/mpi/
