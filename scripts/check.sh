#!/bin/sh
# The full pre-merge gate: build everything, vet everything, run every test
# under the race detector. The runtime is a message-passing system built on
# goroutines, so a -race pass is part of correctness, not a nicety.
#
# The global -timeout enforces the failure model's core promise at the CI
# level: no failure mode is allowed to hang — a regression that re-introduces
# a hang fails the gate instead of wedging it.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# Static analysis beyond go vet: staticcheck, pinned by version so every
# machine runs the same checker. The gate must also pass on an offline
# sandbox (this repo's usual CI container has no network), so probe with
# GOPROXY=off — a PATH binary or a warm module cache runs it, anything
# else skips loudly instead of hanging on a fetch.
STATICCHECK=honnef.co/go/tools/cmd/staticcheck@2025.1
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
elif GOPROXY=off go run "$STATICCHECK" -version >/dev/null 2>&1; then
  GOPROXY=off go run "$STATICCHECK" ./...
else
  echo "check.sh: staticcheck unavailable offline; skipping (go install $STATICCHECK)" >&2
fi

go test -race -timeout 300s ./...

# Run the failure suite (abort propagation, deadlines, fault injection, TCP
# hardening) once more under a tighter timeout: these tests exist to prove
# failures terminate promptly, so hold them to a prompter standard.
go test -race -timeout 120s -count=1 \
  -run 'TestRunRankFailure|TestRunPanic|TestAbort|TestSendAfterAbort|TestJoinTCPAbort|TestLowest|TestDeadline|TestFault|TestEmptyFaultPlan|TestHub|TestDialRetry|TestGarbage|TestRunTCP' \
  ./internal/mpi/

# The recovery suite (ULFM-style Revoke/Agree/Shrink, checkpoint-restart,
# the randomized kill-rank soak) gets its own fresh -count=1 race pass:
# recovery correctness is precisely about failure/operation races, so a
# cached pass proves nothing.
go test -race -timeout 180s -count=1 \
  -run 'TestRecover|TestAgree|TestShrink|TestRevoke|TestWithRecovery|TestErrorsCompose|TestKillAttribution' \
  ./internal/mpi/
go test -race -timeout 120s -count=1 ./internal/ckpt/

# The shm runtime (worker pool, work-stealing loops, reductions) and the
# exemplars that ride on it get a fresh -count=1 race pass: the pool and the
# steal deques are the most concurrency-dense code in the repo, and cached
# results must never stand in for a real run of them. The exemplar pass
# includes the survive-and-continue variants (TestDomainRecover*,
# TestMasterWorkerRecover*), which replay seeded kill plans on both
# transports and demand bit-equal results.
go test -race -timeout 120s -count=1 ./internal/shm/ ./internal/exemplars/...

# The vector data plane: the parity property (every *Slice collective
# element-equal to its scalar counterpart across world sizes, threshold
# straddles, and all four transport configurations) plus the vector failure
# suite (kill-rank mid-AllreduceSlice, deadline mid-pipelined BcastSlice),
# fresh under the race detector — the halving/doubling exchanges and the
# pipelined chunk forwarding are new concurrency surface.
go test -race -timeout 180s -count=1 \
  -run 'TestVectorCollectiveParity|TestVectorParityInts|TestVectorOpParity|TestVectorThresholdFallback|TestKillRankMidAllreduceSlice|TestDeadlineMidPipelinedBcastSlice|TestWire|TestRaw' \
  ./internal/mpi/

# The shared-memory transport: protocol selection and the eager/rendezvous
# crossover, mixed-size FIFO ordering, segment lifecycle and reclamation,
# hub formation failures, plus its failure suite (kill mid-rendezvous,
# deadline over shm, recovery reclaiming orphaned staging blocks) — all
# fresh under the race detector: the rings, the large-region allocator, and
# the poll loop are lock-free cross-process state, exactly where a cached
# pass proves nothing. The mpirun end-to-end pass covers -transport shm
# world formation and teardown through the real launcher.
go test -race -timeout 180s -count=1 \
  -run 'TestShm|TestDeadlineOverShm' ./internal/mpi/
go test -race -timeout 180s -count=1 -run 'TestShm' ./cmd/mpirun/

# The self-healing layer: resilient sessions (a severed socket redialed
# inside the suspicion window, the hub replaying from the last acked
# sequence number), CRC frame integrity (corruption healed by retransmit
# or surfaced as a CorruptFrameError, never a silently wrong result), and
# respawn back to full width. The disconnect/corrupt faults run -count=3
# as a small soak: the reconnect-vs-traffic interleaving is timing-
# dependent, and a single lucky pass proves nothing about the race.
go test -race -timeout 240s -count=3 \
  -run 'TestDisconnectFault|TestCorruptFault' ./internal/mpi/
go test -race -timeout 180s -count=1 \
  -run 'TestSession|TestWireCRC|TestRecvSession|TestRespawn|TestRestored|TestDisconnectWithoutSuspicion' \
  ./internal/mpi/
go test -race -timeout 240s -count=1 -run 'TestRespawn' ./cmd/mpirun/

# The recovery machinery must be free when unused: interleaved best-of-5
# ping-pongs, plain world vs inert WithRecovery world, pinned at <= 2%.
go run ./cmd/benchlab -recoverpin

# Resilient sessions must stay close to free too: wire v2 (sequence
# numbers + replay buffer + CRC32C) vs plain typed framing on a 1 MiB TCP
# ping-pong, pinned at <= 5%.
go run ./cmd/benchlab -sessionpin

# Vector/framing benchmark smoke: fewest sizes, one round, no pin
# enforcement — proves the -vecbench harness itself still runs end to end
# without paying the full sweep.
go run ./cmd/benchlab -vecbench-quick -mpibench-out /tmp/BENCH_vec_smoke.json

# Shm-transport benchmark smoke, same idea: two sizes, one round, one world
# size, pins reported but not enforced.
go run ./cmd/benchlab -shmtbench-quick -mpibench-out /tmp/BENCH_shmt_smoke.json

# The topology-aware layer: hierarchical collective parity (every two-level
# collective element-equal to its flat counterpart across world sizes,
# topologies, and transports, including kill-rank and deadline mid-collective)
# plus the nonblocking progress engine (post-order, overlap with blocking
# traffic, Test polling, abort/deadline/kill through Wait), fresh under the
# race detector — the engine's drain goroutine and the async per-pair
# delivery queues are new concurrency surface.
go test -race -timeout 180s -count=1 \
  -run 'TestHier|TestNonblocking|TestOverlap' \
  ./internal/mpi/ ./internal/exemplars/forestfire/

# Hierarchical benchmark smoke: fewest sizes, one round, no pin enforcement —
# proves the -hierbench harness (modeled 2-node Beowulf platform, flat vs
# two-level, forestfire overlap) still runs end to end.
go run ./cmd/benchlab -hierbench-quick -mpibench-out /tmp/BENCH_hier_smoke.json

# The one-sided layer and the irregular exchange: window epochs (Put/Get/
# Accumulate under Fence, passive-target Lock/Unlock), all three window data
# paths (local direct, shm segment direct, active-message frames), coalesced
# alltoallv parity including the two-level hierarchy path, and their failure
# suites (kill-rank mid-epoch and mid-exchange, deadline on a stalled fence,
# orphaned shm window reclamation) — fresh under the race detector: the
# per-window service goroutine and the cross-process accumulate spinlock are
# new concurrency surface.
go test -race -timeout 180s -count=1 \
  -run 'TestWin|TestShmWinReclamation|TestKillRankMidWinEpoch|TestAlltoallv|TestKillRankMidAlltoallv' \
  ./internal/mpi/

# RMA benchmark smoke: one size, one round, pins reported but not enforced —
# proves the -rmabench harness (batched Put epochs vs the two-sided epoch,
# naive-loop comparisons, PageRank scaling) still runs end to end.
go run ./cmd/benchlab -rmabench-quick -mpibench-out /tmp/BENCH_rma_smoke.json

# The scheduler service: gang placement, per-tenant fairness, quotas and
# backpressure, the retry/quarantine supervisor, heartbeat-driven node death,
# elastic shrink, drain/close, and the HTTP API — fresh under the race
# detector. The suite includes the chaos load test (a node killed mid-load)
# whose acceptance invariant is every admitted job terminal and zero lost.
go test -race -timeout 180s -count=1 ./internal/sched/

# Scheduler load-test smoke: fewer jobs through the real loopback HTTP API,
# steady + chaos phases; the zero-lost-jobs pin is enforced even in quick
# mode because it is an invariant, not a performance number.
go run ./cmd/benchlab -schedbench-quick -mpibench-out /tmp/BENCH_sched_smoke.json

# Benchmark smoke pass: one iteration of every benchmark, so a refactor that
# breaks a benchmark body (the BENCH_shm.json / BENCH_mpi.json inputs) fails
# the gate instead of being discovered at regeneration time.
go test -run '^$' -bench . -benchtime 1x -timeout 300s ./internal/shm/ ./internal/exemplars/...
