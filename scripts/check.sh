#!/bin/sh
# The full pre-merge gate: build everything, vet everything, run every test
# under the race detector. The runtime is a message-passing system built on
# goroutines, so a -race pass is part of correctness, not a nicety.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
