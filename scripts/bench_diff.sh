#!/bin/sh
# Diff a freshly generated BENCH_mpi.json against the committed baseline, so
# perf drift is visible in review instead of only at pin-failure time. The
# committed report is read from git (no working-tree mutation), piped into
# benchlab's -benchdiff mode, which prints the relative change of every
# numeric field the two reports share and fails if any speedup pin dropped
# beyond the tolerance. Raw nanosecond columns are reported but never fatal:
# they track host load as much as code.
#
# Usage:
#   scripts/bench_diff.sh [-t tolerance_pct] [-r git_rev] [fresh_report]
#
#   -t  allowed pin drop in percent (default 25 — benchmark minima on a
#       shared host still jitter; the pins' own floors remain the hard gate)
#   -r  git revision holding the baseline report (default HEAD)
#
# The fresh report defaults to ./BENCH_mpi.json, i.e. the file a `make
# bench-*` target just regenerated in place.
set -eu

cd "$(dirname "$0")/.."

TOL=25
REV=HEAD
while getopts t:r: opt; do
  case $opt in
    t) TOL=$OPTARG ;;
    r) REV=$OPTARG ;;
    *) echo "usage: $0 [-t tolerance_pct] [-r git_rev] [fresh_report]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))
FRESH=${1:-BENCH_mpi.json}

git show "$REV:BENCH_mpi.json" | go run ./cmd/benchlab -benchdiff "$FRESH" -benchdiff-tol "$TOL"
