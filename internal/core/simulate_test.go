package core

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestSimulateWorkshop(t *testing.T) {
	w := Summer2020Workshop()
	var buf bytes.Buffer
	rep, err := w.Simulate(&buf, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Participants != 22 {
		t.Fatalf("participants = %d", rep.Participants)
	}

	// Day 1 reproduces "none of the participants reported any technical
	// difficulties during this session".
	if rep.Day1TechnicalIssues != 0 {
		t.Errorf("day 1 technical issues = %d, want 0", rep.Day1TechnicalIssues)
	}
	if rep.PatternletRunsDay1 == 0 {
		t.Error("no patternlet runs recorded")
	}
	// Self-paced with feedback: every attempted question is eventually
	// solved.
	wantSolved := 22 * len(SharedMemoryModule().Handout.Questions())
	if rep.QuestionsSolved != wantSolved {
		t.Errorf("questions solved = %d, want %d", rep.QuestionsSolved, wantSolved)
	}
	if rep.QuestionsAttempted < rep.QuestionsSolved {
		t.Error("attempts fewer than solutions")
	}

	// Day 2: choices partition the cohort.
	if rep.ChoseForestFire+rep.ChoseDrugDesign != 22 {
		t.Errorf("exemplar choices sum to %d", rep.ChoseForestFire+rep.ChoseDrugDesign)
	}
	if rep.ChoseChameleon+rep.ChoseStOlafVM != 22 {
		t.Errorf("platform choices sum to %d", rep.ChoseChameleon+rep.ChoseStOlafVM)
	}
	// The incident chain: every lockout is an eager beaver, every locked-out
	// participant completes over SSH, and staff reset every tripped account.
	if rep.VNCLockouts != rep.EagerBeavers || rep.SSHFallbacks != rep.VNCLockouts {
		t.Errorf("incident chain inconsistent: %+v", rep)
	}
	if rep.AdminResets != rep.VNCLockouts {
		t.Errorf("admin resets = %d, want %d", rep.AdminResets, rep.VNCLockouts)
	}
	// Despite the hiccup, everyone completes — the paper's outcome.
	if rep.CompletedDay2 != 22 {
		t.Errorf("completed day 2 = %d, want 22", rep.CompletedDay2)
	}

	out := buf.String()
	for _, want := range []string{"Day 1:", "Day 2:", "technical issues", "eager beaver"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q", want)
		}
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	w := Summer2020Workshop()
	a, err := w.Simulate(io.Discard, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Simulate(io.Discard, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
	c, err := w.Simulate(io.Discard, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical reports (suspicious)")
	}
}

func TestSimulateProducesTheIncidentForSomeSeed(t *testing.T) {
	// The eager-beaver incident occurs with probability ~1-0.9^n per run;
	// across a handful of seeds it must appear.
	w := Summer2020Workshop()
	sawIncident := false
	for seed := int64(0); seed < 5 && !sawIncident; seed++ {
		rep, err := w.Simulate(io.Discard, seed)
		if err != nil {
			t.Fatal(err)
		}
		if rep.VNCLockouts > 0 {
			sawIncident = true
		}
	}
	if !sawIncident {
		t.Fatal("no VNC lockout in 5 seeds; incident model looks broken")
	}
}
