package core

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/cluster"
	"repro/internal/handout"
	"repro/internal/notebook"
	"repro/internal/patternlets"
)

// SimulationReport summarizes a simulated run of the 2.5-day workshop: who
// worked through what, how the interactive questions went, which platforms
// the participants chose for the second distributed hour, and the
// operational incidents — reproducing the paper's Section IV narrative
// (a technically flawless Raspberry Pi session; a smooth Chameleon
// experience; a VNC-firewall lockout for the "eager beavers" on the St.
// Olaf VM, who fell back to SSH and completed the exercise anyway).
type SimulationReport struct {
	Participants int

	// Day 1: the shared-memory module.
	PatternletRunsDay1  int
	Day1TechnicalIssues int
	QuestionsAttempted  int
	QuestionsSolved     int

	// Day 2: the distributed module.
	ChoseForestFire int
	ChoseDrugDesign int
	ChoseChameleon  int
	ChoseStOlafVM   int
	EagerBeavers    int // participants who raced ahead and tripped the firewall
	VNCLockouts     int
	SSHFallbacks    int // locked-out participants who completed over SSH
	CompletedDay2   int
	AdminResets     int
}

// Simulate runs the workshop end to end with deterministic pseudo-random
// participant behaviour derived from seed. The full activity transcript
// goes to out (pass io.Discard to keep only the report).
func (w *Workshop) Simulate(out io.Writer, seed int64) (*SimulationReport, error) {
	rep := &SimulationReport{Participants: len(w.Participants)}
	rng := rand.New(rand.NewSource(seed))

	shmModule := w.Sessions[0].Module
	distModule := w.Sessions[2].Module
	if shmModule == nil || distModule == nil {
		return nil, fmt.Errorf("core: workshop sessions are missing their modules")
	}

	// ---- Day 1: OpenMP on the Raspberry Pi, guided by the handout. ----
	fmt.Fprintf(out, "Day 1: %s\n", w.Sessions[0].Title)
	hm := shmModule.Handout
	questions := hm.Questions()
	for _, p := range w.Participants {
		g := handout.NewGradebook(fmt.Sprintf("participant-%02d", p.ID), hm)
		for _, q := range questions {
			rep.QuestionsAttempted++
			// Higher pre-workshop confidence → more likely to answer
			// correctly on the first try; everyone gets there eventually
			// (the module is self-paced with immediate feedback).
			firstTry := rng.Float64() < 0.35+0.12*float64(p.ConfidencePre)
			answer := correctAnswer(q)
			if !firstTry {
				if _, err := g.Submit(q.ID(), "definitely wrong"); err != nil {
					return nil, err
				}
				rep.QuestionsAttempted++
			}
			attempt, err := g.Submit(q.ID(), answer)
			if err != nil {
				return nil, err
			}
			if attempt.Correct {
				rep.QuestionsSolved++
			}
		}
		// The hands-on hour: run every patternlet the handout references
		// on the participant's Pi. Any error would be a "technical issue";
		// the paper reports none, and the simulation reproduces that.
		for _, name := range hm.PatternletRefs() {
			pl, err := patternlets.Lookup(name)
			if err != nil {
				return nil, err
			}
			if err := patternlets.RunShared(pl, io.Discard, 4); err != nil {
				rep.Day1TechnicalIssues++
				continue
			}
			rep.PatternletRunsDay1++
		}
	}
	fmt.Fprintf(out, "  %d participants × %d patternlets ran with %d technical issues\n",
		rep.Participants, len(hm.PatternletRefs()), rep.Day1TechnicalIssues)
	fmt.Fprintf(out, "  questions: %d solved across %d attempts\n",
		rep.QuestionsSolved, rep.QuestionsAttempted)

	// ---- Day 2: MPI, first hour on Colab, second hour by choice. ----
	fmt.Fprintf(out, "Day 2: %s\n", w.Sessions[2].Title)
	colab := distModule.Platforms[0]
	rt := notebook.NewRuntime(colab.Launch)
	if err := notebook.BindPatternlets(rt); err != nil {
		return nil, err
	}
	if err := rt.RunAll(distModule.Notebook); err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "  Colab notebook executed end to end on %s\n", colab)

	// The St. Olaf VM's access gateway, with the workshop accounts.
	passwords := map[string]string{}
	for _, p := range w.Participants {
		passwords[fmt.Sprintf("participant-%02d", p.ID)] = "correct-horse"
	}
	gateway := cluster.NewGateway("stolaf-vm", passwords, 1)

	for _, p := range w.Participants {
		user := fmt.Sprintf("participant-%02d", p.ID)
		// Exemplar choice ("participants worked through whichever of these
		// examples most interested them").
		if rng.Float64() < 0.5 {
			rep.ChoseForestFire++
		} else {
			rep.ChoseDrugDesign++
		}
		// Platform choice: Jupyter-on-Chameleon or VNC-to-St.Olaf.
		if rng.Float64() < 0.5 {
			rep.ChoseChameleon++
			rep.CompletedDay2++ // "the Chameleon environment worked seamlessly"
			continue
		}
		rep.ChoseStOlafVM++
		// A minority raced ahead of the instructions and logged in
		// incorrectly, triggering the VNC firewall.
		if rng.Float64() < 0.2 {
			rep.EagerBeavers++
			if _, err := gateway.VNC(user, "i-skipped-the-instructions"); err == nil {
				return nil, fmt.Errorf("core: wrong password accepted for %s", user)
			}
			if !gateway.VNCBlocked(user) {
				return nil, fmt.Errorf("core: firewall did not trip for %s", user)
			}
			rep.VNCLockouts++
			// "The participants could still ssh to the VM to complete the
			// exercise."
			if _, err := gateway.SSH(user, "correct-horse"); err != nil {
				return nil, fmt.Errorf("core: ssh fallback failed for %s: %w", user, err)
			}
			rep.SSHFallbacks++
			rep.CompletedDay2++
			continue
		}
		if _, err := gateway.VNC(user, "correct-horse"); err != nil {
			return nil, fmt.Errorf("core: VNC login failed for %s: %w", user, err)
		}
		rep.CompletedDay2++
	}
	// Workshop staff reset the tripped accounts afterwards.
	for _, p := range w.Participants {
		user := fmt.Sprintf("participant-%02d", p.ID)
		if gateway.VNCBlocked(user) {
			gateway.ResetVNC(user)
			rep.AdminResets++
		}
	}
	fmt.Fprintf(out, "  choices: %d forest fire / %d drug design; %d Chameleon / %d St. Olaf VM\n",
		rep.ChoseForestFire, rep.ChoseDrugDesign, rep.ChoseChameleon, rep.ChoseStOlafVM)
	fmt.Fprintf(out, "  incidents: %d eager beaver(s) locked out of VNC, all %d finished over SSH; %d admin reset(s)\n",
		rep.VNCLockouts, rep.SSHFallbacks, rep.AdminResets)
	fmt.Fprintf(out, "  %d/%d participants completed the distributed session\n",
		rep.CompletedDay2, rep.Participants)
	return rep, nil
}

// correctAnswer produces a correct submission for any question type — the
// simulated learner consulting the teaching text.
func correctAnswer(q handout.Question) string {
	switch q := q.(type) {
	case *handout.MultipleChoice:
		return q.Correct
	case *handout.FillInBlank:
		return q.Accept[0]
	case *handout.DragAndDrop:
		var pairs []string
		for _, l := range q.Lefts() {
			pairs = append(pairs, l+"="+q.Pairs[l])
		}
		return strings.Join(pairs, "; ")
	default:
		return ""
	}
}
