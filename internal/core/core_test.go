package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/patternlets"
)

func TestModulesMatchThePaper(t *testing.T) {
	mods := Modules()
	if len(mods) != 2 {
		t.Fatalf("modules = %d", len(mods))
	}
	shmMod, distMod := mods[0], mods[1]

	if shmMod.Paradigm != patternlets.SharedMemory || shmMod.Handout == nil || shmMod.Notebook != nil {
		t.Error("shared-memory module mis-assembled")
	}
	if distMod.Paradigm != patternlets.MessagePassing || distMod.Notebook == nil || distMod.Handout != nil {
		t.Error("distributed module mis-assembled")
	}
	for _, m := range mods {
		if m.Duration != 2*time.Hour {
			t.Errorf("%s duration = %v, want the paper's 2-hour lab period", m.Name, m.Duration)
		}
		if len(m.Patternlets) == 0 {
			t.Errorf("%s has no patternlets", m.Name)
		}
	}
	// The distributed module offers the paper's three platforms: Colab,
	// Chameleon, St. Olaf.
	if len(distMod.Platforms) != 3 {
		t.Fatalf("distributed platforms = %d, want 3", len(distMod.Platforms))
	}
	if distMod.Platforms[0].TotalCores() != 1 {
		t.Error("first distributed platform should be the unicore Colab VM")
	}
	// The shared-memory module runs on the 4-core Pi.
	if shmMod.Platforms[0].TotalCores() != 4 {
		t.Error("shared-memory platform should be the 4-core Pi")
	}
	// Exemplars per Section III: integration + drug design (shm), forest
	// fire + drug design (dist).
	if strings.Join(shmMod.Exemplars, ",") != "integration,drugdesign" {
		t.Errorf("shm exemplars = %v", shmMod.Exemplars)
	}
	if strings.Join(distMod.Exemplars, ",") != "forestfire,drugdesign" {
		t.Errorf("dist exemplars = %v", distMod.Exemplars)
	}
}

func TestDeliverSharedMemoryModule(t *testing.T) {
	var buf bytes.Buffer
	if err := SharedMemoryModule().Deliver(&buf, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Multicore Computing on the Raspberry Pi",
		"Chapter 2: Shared-Memory Patternlets",
		"patternlet spmd",
		"Hello from thread",
		"patternlet raceCondition",
		"Expected balance:",
		"exemplar: numerical integration",
		"pi ≈ 3.14159",
		"exemplar: drug design",
		"maximal score",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("shared-memory delivery missing %q", want)
		}
	}
}

func TestDeliverDistributedModule(t *testing.T) {
	var buf bytes.Buffer
	if err := DistributedModule().Deliver(&buf, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Distributed Computing with MPI",
		">>> %%writefile 00spmd.py",
		"Greetings from process 0 of 4 on d6ff4f902ed6",
		">>> !mpirun --allow-run-as-root -np 4 python 00spmd.py",
		"exemplar: forest fire on Chameleon cluster",
		"spread prob",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("distributed delivery missing %q", want)
		}
	}
}

func TestDeliverRejectsBadWorkers(t *testing.T) {
	if err := SharedMemoryModule().Deliver(&bytes.Buffer{}, 0); err == nil {
		t.Fatal("workers=0 accepted")
	}
}

func TestSummer2020Workshop(t *testing.T) {
	w := Summer2020Workshop()
	if w.Days != 2.5 {
		t.Fatalf("days = %v, want 2.5", w.Days)
	}
	if len(w.Participants) != 22 {
		t.Fatalf("participants = %d", len(w.Participants))
	}
	moduleSessions := 0
	for _, s := range w.Sessions {
		if s.Module != nil {
			moduleSessions++
		}
	}
	if moduleSessions != 2 {
		t.Fatalf("module sessions = %d, want one per module", moduleSessions)
	}
	// The two hands-on sessions run on mornings of days 1 and 2.
	if w.Sessions[0].Day != 1 || w.Sessions[2].Day != 2 {
		t.Error("hands-on sessions not on the first two days")
	}
}

func TestWorkshopAssessmentReproducesThePaper(t *testing.T) {
	w := Summer2020Workshop()
	t2, f3, f4, err := w.Assessment()
	if err != nil {
		t.Fatal(err)
	}
	if t2.OpenMPImplement != 4.55 || t2.MPIProfDev != 4.29 {
		t.Errorf("Table II = %+v", t2)
	}
	if f3.PreMean != 2.82 || f3.PostMean != 3.59 {
		t.Errorf("Figure 3 means = %v/%v", f3.PreMean, f3.PostMean)
	}
	if f4.PreMean != 2.59 || f4.PostMean != 3.77 {
		t.Errorf("Figure 4 means = %v/%v", f4.PreMean, f4.PostMean)
	}
}
