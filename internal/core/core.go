// Package core is the top-level API of the reproduction: it assembles the
// paper's two teaching modules (shared-memory on the Raspberry Pi,
// distributed-memory on Colab plus a cluster), delivers them end to end,
// and models the 2.5-day faculty-development workshop whose assessment is
// the paper's evaluation.
//
// The shape follows the paper's Section III: each module is a self-paced,
// two-hour unit pairing a delivery vehicle (virtual handout or notebook)
// with a patternlet catalog, exemplar applications, and one or more
// execution platforms.
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/exemplars/drugdesign"
	"repro/internal/exemplars/forestfire"
	"repro/internal/exemplars/integration"
	"repro/internal/handout"
	"repro/internal/mpi"
	"repro/internal/notebook"
	"repro/internal/patternlets"
	"repro/internal/shm"
	"repro/internal/survey"
)

// Module is one of the paper's two teaching units.
type Module struct {
	Name     string
	Paradigm patternlets.Paradigm
	// Duration is the lab-period budget; both modules are designed for
	// two hours.
	Duration time.Duration

	// Handout is the Runestone-style virtual handout (shared-memory
	// module); nil for the distributed module.
	Handout *handout.Module
	// Notebook is the Colab notebook (distributed module); nil for the
	// shared-memory module.
	Notebook *notebook.Notebook

	// Patternlets is the module's catalog, in teaching order.
	Patternlets []patternlets.Patternlet
	// Exemplars names the module's closing applications.
	Exemplars []string
	// Platforms are the execution environments the module offers.
	Platforms []cluster.Platform
}

// SharedMemoryModule assembles the paper's Section III-A module: OpenMP
// patternlets on the Raspberry Pi, delivered through the virtual handout,
// closing with the numerical-integration and drug-design exemplars.
func SharedMemoryModule() *Module {
	return &Module{
		Name:        "Multicore Computing on the Raspberry Pi",
		Paradigm:    patternlets.SharedMemory,
		Duration:    2 * time.Hour,
		Handout:     handout.RaspberryPiModule(),
		Patternlets: patternlets.ByParadigm(patternlets.SharedMemory),
		Exemplars:   []string{"integration", "drugdesign"},
		Platforms:   []cluster.Platform{cluster.RaspberryPi()},
	}
}

// DistributedModule assembles the paper's Section III-B module: mpi4py
// patternlets in a Colab notebook for the first hour, then an exemplar
// (forest fire or drug design) on a real parallel platform — the
// Jupyter-fronted Chameleon cluster or the St. Olaf 64-core VM.
func DistributedModule() *Module {
	return &Module{
		Name:        "Distributed Computing with MPI",
		Paradigm:    patternlets.MessagePassing,
		Duration:    2 * time.Hour,
		Notebook:    notebook.MPI4PyPatternletsNotebook(),
		Patternlets: patternlets.ByParadigm(patternlets.MessagePassing),
		Exemplars:   []string{"forestfire", "drugdesign"},
		Platforms:   []cluster.Platform{cluster.ColabVM(), cluster.Chameleon(4, 16), cluster.StOlafVM()},
	}
}

// Modules returns both modules in workshop order.
func Modules() []*Module {
	return []*Module{SharedMemoryModule(), DistributedModule()}
}

// Deliver runs a module end to end, writing a transcript to w: the handout
// or notebook content, every patternlet's live output, and the exemplars on
// the module's primary platform. This is the integration path the cmd
// tools and the workshop simulation share. workers is the thread count /
// process count used for the hands-on runs.
func (m *Module) Deliver(w io.Writer, workers int) error {
	if workers < 1 {
		return fmt.Errorf("core: workers must be >= 1, got %d", workers)
	}
	fmt.Fprintf(w, "=== %s (%s) ===\n\n", m.Name, m.Duration)

	switch m.Paradigm {
	case patternlets.SharedMemory:
		handout.RenderTOC(w, m.Handout)
		for _, p := range m.Patternlets {
			fmt.Fprintf(w, "\n--- patternlet %s (%s) ---\n", p.Name, p.Pattern)
			if err := patternlets.RunShared(p, w, workers); err != nil {
				return fmt.Errorf("core: patternlet %s: %w", p.Name, err)
			}
		}
		return m.deliverSharedExemplars(w, workers)
	case patternlets.MessagePassing:
		return m.deliverDistributed(w, workers)
	default:
		return fmt.Errorf("core: unknown paradigm %q", m.Paradigm)
	}
}

// deliverSharedExemplars runs the shared-memory module's closing half hour.
func (m *Module) deliverSharedExemplars(w io.Writer, workers int) error {
	fmt.Fprintf(w, "\n--- exemplar: numerical integration ---\n")
	pi, err := integration.TrapezoidShared(integration.QuarterCircle, 0, 1, 1_000_000, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pi ≈ %.9f (error %.2g) with %d threads\n", pi, integration.AbsError(pi), workers)

	fmt.Fprintf(w, "\n--- exemplar: drug design ---\n")
	res, err := drugdesign.Shared(drugdesign.DefaultParams(), workers, shm.Dynamic(1))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res)
	return nil
}

// deliverDistributed runs the distributed module: the notebook on the
// modeled Colab VM, then the forest-fire exemplar on the module's cluster
// platform.
func (m *Module) deliverDistributed(w io.Writer, workers int) error {
	colab := m.Platforms[0]
	rt := notebook.NewRuntime(colab.Launch)
	if err := notebook.BindPatternlets(rt); err != nil {
		return err
	}
	if err := rt.RunAll(m.Notebook); err != nil {
		return err
	}
	for _, cell := range m.Notebook.Cells {
		switch cell.Type {
		case notebook.Markdown:
			fmt.Fprintf(w, "\n%s\n", cell.Source)
		case notebook.Code, notebook.Shell:
			fmt.Fprintf(w, "\n>>> %s\n%s", firstLine(cell.Source), cell.Output)
		}
	}

	fmt.Fprintf(w, "\n--- exemplar: forest fire on %s ---\n", m.Platforms[1])
	params := forestfire.DefaultParams()
	params.Trials = 20
	var curve []forestfire.SweepPoint
	err := m.Platforms[1].Launch(workers, func(c *mpi.Comm) error {
		pts, err := forestfire.SweepMPI(c, params)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			curve = pts
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, forestfire.FormatCurve(curve))
	return nil
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// Workshop models the paper's 2.5-day virtual faculty-development workshop
// (Section IV): two hands-on morning sessions — one per module — and the
// surveyed participant cohort.
type Workshop struct {
	Name         string
	Days         float64
	Sessions     []Session
	Participants []survey.Participant
}

// Session is one workshop block.
type Session struct {
	Day    int
	Title  string
	Module *Module // nil for discussion/demonstration sessions
}

// Summer2020Workshop assembles the July 2020 workshop the paper evaluates.
func Summer2020Workshop() *Workshop {
	shm := SharedMemoryModule()
	dist := DistributedModule()
	return &Workshop{
		Name: "CSinParallel Summer 2020 Virtual Workshop",
		Days: 2.5,
		Sessions: []Session{
			{Day: 1, Title: "OpenMP on Raspberry Pi", Module: shm},
			{Day: 1, Title: "Demonstrations and discussion: teaching PDC", Module: nil},
			{Day: 2, Title: "MPI & Distr. Cluster Computing", Module: dist},
			{Day: 2, Title: "CSinParallel.org project overview", Module: nil},
			{Day: 3, Title: "Planning for fall; wrap-up", Module: nil},
		},
		Participants: survey.Workshop2020(),
	}
}

// Assessment recomputes the paper's published evaluation from the raw
// survey data: Table II and the two pre/post figures.
func (w *Workshop) Assessment() (survey.TableIIResult, survey.PrePostResult, survey.PrePostResult, error) {
	t2 := survey.TableII(w.Participants)
	f3, err := survey.Figure3(w.Participants)
	if err != nil {
		return t2, survey.PrePostResult{}, survey.PrePostResult{}, err
	}
	f4, err := survey.Figure4(w.Participants)
	if err != nil {
		return t2, f3, survey.PrePostResult{}, err
	}
	return t2, f3, f4, nil
}
