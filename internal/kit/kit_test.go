package kit

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestTableI pins the bill of materials to the paper's Table I: six parts,
// the published prices, and the published $100.66 total.
func TestTableI(t *testing.T) {
	parts := BillOfMaterials()
	if len(parts) != 6 {
		t.Fatalf("parts = %d, want 6", len(parts))
	}
	want := map[string]Cents{
		"CanaKit with 2G Raspberry Pi": 6299,
		"Ethernet-USB A dongle":        1595,
		"USB A-C dongle":               399,
		"Ethernet cable":               155,
		"16G MicroSD":                  541,
		"Kit case":                     1077,
	}
	for _, p := range parts {
		if want[p.Name] != p.Cost {
			t.Errorf("%s costs %s, want %s", p.Name, p.Cost, want[p.Name])
		}
	}
	if got := Total(parts); got != 10066 {
		t.Fatalf("total = %s, want $100.66", got)
	}
}

func TestCentsString(t *testing.T) {
	cases := map[Cents]string{
		10066: "$100.66",
		5:     "$0.05",
		-155:  "-$1.55",
		0:     "$0.00",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d cents = %q, want %q", int64(c), got, want)
		}
	}
}

func TestFormatTableIMatchesPaper(t *testing.T) {
	out := FormatTableI(BillOfMaterials())
	for _, want := range []string{
		"TABLE I",
		"CanaKit with 2G Raspberry Pi", "$62.99",
		"Ethernet-USB A dongle", "$15.95",
		"USB A-C dongle", "$3.99",
		"Ethernet cable", "$1.55",
		"16G MicroSD", "$5.41",
		"Kit case", "$10.77",
		"Total Kit Cost", "$100.66",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I render missing %q:\n%s", want, out)
		}
	}
}

func TestBulkPricingReachesTheHundredDollarPoint(t *testing.T) {
	// Building a classroom batch brings the per-kit cost below $100 — the
	// paper's point that bulk buying is what makes the kits ~$100.
	parts := BillOfMaterials()
	single, _, err := CostFor(parts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single != 10066 {
		t.Fatalf("single kit = %s", single)
	}
	perKit25, total25, err := CostFor(parts, 25)
	if err != nil {
		t.Fatal(err)
	}
	if perKit25 >= single {
		t.Fatalf("bulk per-kit %s not below single %s", perKit25, single)
	}
	if perKit25 > 10000 {
		t.Fatalf("per-kit at 25 units = %s, want <= $100.00", perKit25)
	}
	if total25 != perKit25*25 {
		t.Fatalf("total %s != 25 × %s", total25, perKit25)
	}
}

func TestCostForValidation(t *testing.T) {
	if _, _, err := CostFor(BillOfMaterials(), 0); err == nil {
		t.Fatal("qty 0 accepted")
	}
}

func TestBulkNeverIncreasesCost(t *testing.T) {
	prop := func(qtyRaw uint8) bool {
		qty := int(qtyRaw%60) + 1
		perKit, _, err := CostFor(BillOfMaterials(), qty)
		if err != nil {
			return false
		}
		return perKit <= 10066 && perKit > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
