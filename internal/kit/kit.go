// Package kit models the mailed Raspberry Pi kit whose bill of materials is
// the paper's Table I: six parts totalling $100.66, cheap enough to mail to
// every remote learner. Prices are held in integer cents so totals are
// exact, and a small bulk-pricing model captures the paper's note that the
// kits hit the $100 price point because several parts "can be bought in
// bulk".
package kit

import (
	"fmt"
	"strings"
)

// Cents is an exact currency amount in US cents.
type Cents int64

// String renders the amount as dollars, e.g. "$100.66".
func (c Cents) String() string {
	sign := ""
	if c < 0 {
		sign = "-"
		c = -c
	}
	return fmt.Sprintf("%s$%d.%02d", sign, c/100, c%100)
}

// Part is one line of the bill of materials.
type Part struct {
	Name string
	Cost Cents
	// BulkDiscountPct is the percentage saved per unit when the part is
	// bought at or above BulkQuantity units.
	BulkDiscountPct int
	BulkQuantity    int
}

// BillOfMaterials returns Table I's parts at their single-unit prices.
func BillOfMaterials() []Part {
	return []Part{
		{Name: "CanaKit with 2G Raspberry Pi", Cost: 6299, BulkDiscountPct: 5, BulkQuantity: 10},
		{Name: "Ethernet-USB A dongle", Cost: 1595, BulkDiscountPct: 15, BulkQuantity: 10},
		{Name: "USB A-C dongle", Cost: 399, BulkDiscountPct: 20, BulkQuantity: 25},
		{Name: "Ethernet cable", Cost: 155, BulkDiscountPct: 25, BulkQuantity: 25},
		{Name: "16G MicroSD", Cost: 541, BulkDiscountPct: 10, BulkQuantity: 25},
		{Name: "Kit case", Cost: 1077, BulkDiscountPct: 10, BulkQuantity: 10},
	}
}

// Total sums a bill of materials at single-unit prices.
func Total(parts []Part) Cents {
	var total Cents
	for _, p := range parts {
		total += p.Cost
	}
	return total
}

// unitCost returns one part's per-unit cost when buying qty kits.
func (p Part) unitCost(qty int) Cents {
	if p.BulkQuantity > 0 && qty >= p.BulkQuantity {
		return p.Cost - p.Cost*Cents(p.BulkDiscountPct)/100
	}
	return p.Cost
}

// CostFor returns the per-kit and total cost of building qty kits, with
// bulk discounts applied where quantities qualify.
func CostFor(parts []Part, qty int) (perKit, total Cents, err error) {
	if qty < 1 {
		return 0, 0, fmt.Errorf("kit: quantity must be >= 1, got %d", qty)
	}
	for _, p := range parts {
		perKit += p.unitCost(qty)
	}
	return perKit, perKit * Cents(qty), nil
}

// FormatTableI renders the paper's Table I.
func FormatTableI(parts []Part) string {
	var b strings.Builder
	fmt.Fprintln(&b, "TABLE I — Approximate cost breakdown of mailed Raspberry Pi kit")
	fmt.Fprintf(&b, "%-32s %10s\n", "Part", "Cost")
	for _, p := range parts {
		fmt.Fprintf(&b, "%-32s %10s\n", p.Name, p.Cost)
	}
	fmt.Fprintf(&b, "%-32s %10s\n", "Total Kit Cost", Total(parts))
	return b.String()
}
