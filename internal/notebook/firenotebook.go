package notebook

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/exemplars/forestfire"
	"repro/internal/mpi"
)

// ForestFireNotebook builds the module's second-hour Jupyter notebook: the
// "Jupyter forest fire simulation" served from the Chameleon cluster (the
// paper's reference [16]). Where the first-hour Colab notebook demonstrates
// message-passing *concepts* on one core, this one demonstrates *speedup*:
// the same Monte Carlo sweep is launched at increasing process counts so
// learners watch the wall time fall on a real parallel platform.
func ForestFireNotebook() *Notebook {
	nb := &Notebook{Title: "forest_fire_simulation.ipynb"}
	nb.Cells = append(nb.Cells,
		&Cell{Type: Markdown, Source: "# Forest Fire Simulation\n\n" +
			"A forest is a grid of trees; lightning strikes the center tree; " +
			"fire spreads to each neighbouring tree with probability p, and a " +
			"burning tree burns out after one time step. Sweeping p and " +
			"averaging many Monte Carlo trials exposes a phase transition in " +
			"how much of the forest burns. The trials are independent, so " +
			"they distribute perfectly across MPI processes — run the cells " +
			"below and watch the timing change with -np."},
		&Cell{Type: Code, Source: "%%writefile fire.py\n" + firePython},
	)
	for _, np := range []int{1, 2, 4, 8} {
		nb.Cells = append(nb.Cells, &Cell{
			Type:   Shell,
			Source: fmt.Sprintf("!mpirun -np %d python fire.py", np),
		})
	}
	return nb
}

// firePython is the mpi4py rendering of the sweep the cell saves; the
// runtime executes the Go twin below.
const firePython = `from mpi4py import MPI
import random, time

ROWS = COLS = 21
TRIALS = 40
PROBS = [i / 10 for i in range(1, 11)]

def burn_once(prob, rng):
    # ... fire spread on a ROWS x COLS grid, returns fraction burned ...
    pass

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    numProcesses = comm.Get_size()
    start = MPI.Wtime()
    # each process simulates its share of the trials for every probability
    # and a reduction averages them at the root
    ...

main()
`

// BindForestFire installs the fire notebook's program binding: each rank
// runs its share of the sweep and rank 0 prints the burn curve.
func BindForestFire(rt *Runtime) {
	rt.Bind("fire.py", func(w io.Writer, c *mpi.Comm) error {
		params := forestfire.DefaultParams()
		points, err := forestfire.SweepMPI(c, params)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Fprintf(w, "burn curve from %d processes:\n", c.Size())
			fmt.Fprint(w, forestfire.FormatCurve(points))
		}
		return nil
	})
}

// RunFireNotebook executes the fire notebook against a launcher and
// returns the concatenated shell-cell outputs — a convenience for the
// workshop simulator and the notebook command.
func RunFireNotebook(launch Launcher) (string, error) {
	rt := NewRuntime(launch)
	BindForestFire(rt)
	nb := ForestFireNotebook()
	if err := rt.RunAll(nb); err != nil {
		return "", err
	}
	var b strings.Builder
	for _, cell := range nb.Cells {
		if cell.Type == Shell {
			fmt.Fprintf(&b, ">>> %s\n%s\n", cell.Source, cell.Output)
		}
	}
	return b.String(), nil
}
