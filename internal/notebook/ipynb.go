package notebook

import (
	"encoding/json"
	"fmt"
	"strings"
)

// The paper's notebook artifacts are .ipynb files (mpi4py_patternlets.ipynb
// on Colab, the forest-fire notebook on Chameleon's Jupyter). This file
// converts between this package's Notebook model and nbformat v4 JSON, so
// an exported notebook opens in real Jupyter or Colab and a downloaded
// .ipynb imports back into the engine.

// nbformat v4 document structure (the subset the module's notebooks use).
type ipynbFile struct {
	Cells         []ipynbCell    `json:"cells"`
	Metadata      map[string]any `json:"metadata"`
	NBFormat      int            `json:"nbformat"`
	NBFormatMinor int            `json:"nbformat_minor"`
}

type ipynbCell struct {
	CellType string         `json:"cell_type"`
	Metadata map[string]any `json:"metadata"`
	// Source is the cell text, split into lines with trailing newlines
	// retained — the convention real Jupyter files follow.
	Source []string `json:"source"`
	// Code cells carry execution metadata and outputs.
	ExecutionCount *int          `json:"execution_count,omitempty"`
	Outputs        []ipynbOutput `json:"outputs,omitempty"`
}

type ipynbOutput struct {
	OutputType string   `json:"output_type"`
	Name       string   `json:"name,omitempty"`
	Text       []string `json:"text,omitempty"`
}

// splitLines converts cell text to Jupyter's line-array form.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.SplitAfter(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// ExportIPYNB serializes the notebook as an nbformat 4 document. Shell
// cells become code cells (their "!" prefix is how Jupyter spells shell
// commands anyway); captured outputs become stream outputs.
func ExportIPYNB(nb *Notebook) ([]byte, error) {
	doc := ipynbFile{
		Metadata: map[string]any{
			"colab": map[string]any{"name": nb.Title},
			"language_info": map[string]any{
				"name": "python",
			},
		},
		NBFormat:      4,
		NBFormatMinor: 5,
	}
	execution := 0
	for _, cell := range nb.Cells {
		out := ipynbCell{Metadata: map[string]any{}, Source: splitLines(cell.Source)}
		switch cell.Type {
		case Markdown:
			out.CellType = "markdown"
		case Code, Shell:
			out.CellType = "code"
			execution++
			n := execution
			out.ExecutionCount = &n
			out.Outputs = []ipynbOutput{}
			if cell.Output != "" {
				out.Outputs = append(out.Outputs, ipynbOutput{
					OutputType: "stream",
					Name:       "stdout",
					Text:       splitLines(cell.Output),
				})
			}
		default:
			return nil, fmt.Errorf("notebook: cannot export cell type %v", cell.Type)
		}
		doc.Cells = append(doc.Cells, out)
	}
	return json.MarshalIndent(doc, "", " ")
}

// ImportIPYNB parses an nbformat 4 document back into a Notebook. Code
// cells whose source begins with "!" round-trip to Shell cells; stream
// outputs are restored into Output.
func ImportIPYNB(data []byte, title string) (*Notebook, error) {
	var doc ipynbFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("notebook: parsing ipynb: %w", err)
	}
	if doc.NBFormat != 4 {
		return nil, fmt.Errorf("notebook: unsupported nbformat %d (want 4)", doc.NBFormat)
	}
	nb := &Notebook{Title: title}
	for i, c := range doc.Cells {
		source := strings.Join(c.Source, "")
		cell := &Cell{Source: source}
		switch c.CellType {
		case "markdown":
			cell.Type = Markdown
		case "code":
			if strings.HasPrefix(strings.TrimLeft(source, "\n"), "!") {
				cell.Type = Shell
			} else {
				cell.Type = Code
			}
			for _, o := range c.Outputs {
				if o.OutputType == "stream" {
					cell.Output += strings.Join(o.Text, "")
				}
			}
		default:
			return nil, fmt.Errorf("notebook: cell %d has unsupported type %q", i, c.CellType)
		}
		nb.Cells = append(nb.Cells, cell)
	}
	return nb, nil
}
