package notebook

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestForestFireNotebookStructure(t *testing.T) {
	nb := ForestFireNotebook()
	// Title markdown, one writefile, four mpirun cells.
	if len(nb.Cells) != 6 {
		t.Fatalf("cells = %d", len(nb.Cells))
	}
	if !strings.HasPrefix(nb.Cells[1].Source, "%%writefile fire.py") {
		t.Fatalf("cell 1 = %q", nb.Cells[1].Source)
	}
	for i, np := range []int{1, 2, 4, 8} {
		want := "!mpirun -np "
		if !strings.HasPrefix(nb.Cells[2+i].Source, want) || !strings.Contains(nb.Cells[2+i].Source, "fire.py") {
			t.Fatalf("cell %d = %q", 2+i, nb.Cells[2+i].Source)
		}
		_ = np
	}
}

func TestRunFireNotebookOnChameleon(t *testing.T) {
	ch := cluster.Chameleon(2, 4)
	out, err := RunFireNotebook(ch.Launch)
	if err != nil {
		t.Fatal(err)
	}
	// Every np produced a burn curve from rank 0.
	for _, np := range []string{"1 processes", "2 processes", "4 processes", "8 processes"} {
		if !strings.Contains(out, "burn curve from "+np) {
			t.Errorf("missing output for %s:\n%s", np, out)
		}
	}
	if !strings.Contains(out, "spread prob") {
		t.Error("burn-curve table missing")
	}
	// The curve itself is identical at every np (per-trial seeding): check
	// the p=1.0 row says 100%.
	if !strings.Contains(out, "100.0%") {
		t.Errorf("p=1 row missing full burn:\n%s", out)
	}
}

func TestRunFireNotebookErrorPropagates(t *testing.T) {
	rt := NewRuntime(nil)
	// No binding installed: the mpirun cell must fail cleanly.
	nb := ForestFireNotebook()
	if err := rt.RunAll(nb); err == nil {
		t.Fatal("unbound fire.py executed")
	}
}
