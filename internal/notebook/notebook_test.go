package notebook

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

func TestWritefileCell(t *testing.T) {
	rt := NewRuntime(nil)
	cell := &Cell{Type: Code, Source: "%%writefile hello.py\nprint('hi')\n"}
	out, err := rt.ExecuteCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	if out != "Writing hello.py\n" {
		t.Fatalf("out = %q", out)
	}
	src, ok := rt.File("hello.py")
	if !ok || src != "print('hi')\n" {
		t.Fatalf("saved file = %q, %v", src, ok)
	}
	// Re-running the cell reports Overwriting, like Colab.
	out, err = rt.ExecuteCell(cell)
	if err != nil || out != "Overwriting hello.py\n" {
		t.Fatalf("second run = %q, %v", out, err)
	}
	if !strings.Contains(cell.Output, "Writing hello.py") || !strings.Contains(cell.Output, "Overwriting hello.py") {
		t.Fatalf("cell output accumulation wrong: %q", cell.Output)
	}
}

func TestMarkdownCellIsNoOp(t *testing.T) {
	rt := NewRuntime(nil)
	cell := &Cell{Type: Markdown, Source: "# heading"}
	out, err := rt.ExecuteCell(cell)
	if err != nil || out != "" {
		t.Fatalf("markdown execution = %q, %v", out, err)
	}
}

func TestCodeCellWithoutMagicRejected(t *testing.T) {
	rt := NewRuntime(nil)
	if _, err := rt.ExecuteCell(&Cell{Type: Code, Source: "print('hi')"}); err == nil {
		t.Fatal("bare code cell executed")
	}
	if _, err := rt.ExecuteCell(&Cell{Type: Code, Source: "%%writefile"}); err == nil {
		t.Fatal("malformed magic accepted")
	}
}

func TestShellCellValidation(t *testing.T) {
	rt := NewRuntime(nil)
	cases := []string{
		"!ls",                       // unsupported command
		"!mpirun -np 4 python",      // no file
		"!mpirun -np x python a.py", // bad np
		"!mpirun -np",               // missing value
		"!",                         // empty
	}
	for _, src := range cases {
		if _, err := rt.ExecuteCell(&Cell{Type: Shell, Source: src}); err == nil {
			t.Errorf("shell %q accepted", src)
		}
	}
	if _, err := rt.ExecuteCell(&Cell{Type: Shell, Source: "!mpirun -np 2 python missing.py"}); err == nil ||
		!strings.Contains(err.Error(), "writefile") {
		t.Errorf("missing file error = %v", err)
	}
}

func TestMpirunRunsBoundProgram(t *testing.T) {
	rt := NewRuntime(nil)
	rt.Bind("prog.py", func(w io.Writer, c *mpi.Comm) error {
		fmt.Fprintf(w, "rank %d of %d\n", c.Rank(), c.Size())
		return nil
	})
	if _, err := rt.ExecuteCell(&Cell{Type: Code, Source: "%%writefile prog.py\npass\n"}); err != nil {
		t.Fatal(err)
	}
	out, err := rt.ExecuteCell(&Cell{Type: Shell, Source: "!mpirun -np 3 python prog.py"})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if !strings.Contains(out, fmt.Sprintf("rank %d of 3", r)) {
			t.Fatalf("missing rank %d in %q", r, out)
		}
	}
}

func TestMpirunUnboundFileErrors(t *testing.T) {
	rt := NewRuntime(nil)
	if _, err := rt.ExecuteCell(&Cell{Type: Code, Source: "%%writefile loose.py\npass\n"}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.ExecuteCell(&Cell{Type: Shell, Source: "!mpirun -np 2 python loose.py"}); err == nil {
		t.Fatal("unbound program ran")
	}
}

func TestNotebookStructure(t *testing.T) {
	nb := MPI4PyPatternletsNotebook()
	// Title cell + (markdown, writefile, mpirun) per patternlet.
	if want := 1 + 3*len(fileBindings); len(nb.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(nb.Cells), want)
	}
	if nb.Cells[0].Type != Markdown {
		t.Fatal("notebook does not open with markdown")
	}
	// The Figure 2 cells: heading, %%writefile 00spmd.py, mpirun -np 4.
	if !strings.Contains(nb.Cells[1].Source, "Single Program, Multiple Data") {
		t.Fatalf("cell 1 = %q", nb.Cells[1].Source)
	}
	if !strings.HasPrefix(nb.Cells[2].Source, "%%writefile 00spmd.py") ||
		!strings.Contains(nb.Cells[2].Source, "from mpi4py import MPI") ||
		!strings.Contains(nb.Cells[2].Source, "Greetings from process {} of {} on {}") {
		t.Fatalf("cell 2 = %q", nb.Cells[2].Source)
	}
	if nb.Cells[3].Source != "!mpirun --allow-run-as-root -np 4 python 00spmd.py" {
		t.Fatalf("cell 3 = %q", nb.Cells[3].Source)
	}
}

func TestEveryPythonSourceExists(t *testing.T) {
	for _, b := range fileBindings {
		src, ok := pythonSources[b.File]
		if !ok || !strings.Contains(src, "mpi4py") {
			t.Errorf("missing or bogus python source for %s", b.File)
		}
	}
}

// TestFigure2SPMD reproduces the paper's Figure 2 end to end: executing the
// notebook's %%writefile and mpirun cells for 00spmd.py on the modeled
// Colab VM prints one "Greetings from process i of 4 on d6ff4f902ed6" line
// per process, all naming the same single-core container host.
func TestFigure2SPMD(t *testing.T) {
	colab := cluster.ColabVM()
	rt := NewRuntime(colab.Launch)
	if err := BindPatternlets(rt); err != nil {
		t.Fatal(err)
	}
	nb := MPI4PyPatternletsNotebook()

	// Cells 2 and 3 are the Figure 2 pair.
	if _, err := rt.ExecuteCell(nb.Cells[2]); err != nil {
		t.Fatal(err)
	}
	out, err := rt.ExecuteCell(nb.Cells[3])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	for r := 0; r < 4; r++ {
		want := fmt.Sprintf("Greetings from process %d of 4 on d6ff4f902ed6", r)
		found := false
		for _, l := range lines {
			if l == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Figure 2 line missing: %q\ngot: %q", want, out)
		}
	}
}

func TestRunAllNotebookOnColab(t *testing.T) {
	colab := cluster.ColabVM()
	rt := NewRuntime(colab.Launch)
	if err := BindPatternlets(rt); err != nil {
		t.Fatal(err)
	}
	nb := MPI4PyPatternletsNotebook()
	if err := rt.RunAll(nb); err != nil {
		t.Fatal(err)
	}
	// Every mpirun cell must have produced output.
	for i, cell := range nb.Cells {
		if cell.Type == Shell && strings.TrimSpace(cell.Output) == "" {
			t.Errorf("cell %d (%q) produced no output", i, cell.Source)
		}
	}
	nb.ClearOutputs()
	for _, cell := range nb.Cells {
		if cell.Output != "" {
			t.Fatal("ClearOutputs left output behind")
		}
	}
}

func TestRunAllStopsAtFirstError(t *testing.T) {
	rt := NewRuntime(nil)
	nb := &Notebook{Cells: []*Cell{
		{Type: Markdown, Source: "ok"},
		{Type: Shell, Source: "!rm -rf /"},
		{Type: Markdown, Source: "never reached matters not"},
	}}
	err := rt.RunAll(nb)
	if err == nil || !errors.Is(err, ErrNotExecutable) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "cell 1") {
		t.Fatalf("error does not locate the cell: %v", err)
	}
}

func TestCellTypeString(t *testing.T) {
	if Markdown.String() != "markdown" || Code.String() != "code" || Shell.String() != "shell" {
		t.Fatal("cell type names wrong")
	}
	if CellType(9).String() != "CellType(9)" {
		t.Fatal("unknown cell type name wrong")
	}
}
