// Package notebook implements the Colab/Jupyter-style notebook engine the
// paper's distributed-memory module is delivered through. A notebook is a
// sequence of cells: markdown exposition, "%%writefile" code cells that save
// program text to the notebook's virtual filesystem (exactly how the
// paper's Colab material ships the mpi4py patternlets — see Figure 2), and
// "!" shell cells whose mpirun invocations execute those programs.
//
// Programs cannot literally be Python here; instead the runtime binds each
// virtual file name to a Go implementation with the same observable
// behaviour (the patternlets package). The mpirun cells then really do
// launch an np-rank SPMD job — on the in-process runtime by default, or on
// any platform launcher (the modeled unicore Colab VM, the Chameleon
// cluster, ...) the caller supplies.
package notebook

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/mpi"
)

// CellType distinguishes the cell flavours the module uses.
type CellType int

const (
	// Markdown cells carry exposition; executing them is a no-op.
	Markdown CellType = iota
	// Code cells hold program text; the module's code cells all begin
	// with the %%writefile magic, as in Figure 2.
	Code
	// Shell cells start with '!' and run a command, e.g. mpirun.
	Shell
)

// String names the cell type.
func (t CellType) String() string {
	switch t {
	case Markdown:
		return "markdown"
	case Code:
		return "code"
	case Shell:
		return "shell"
	default:
		return fmt.Sprintf("CellType(%d)", int(t))
	}
}

// Cell is one notebook cell. Output accumulates across executions and is
// cleared by Notebook.ClearOutputs.
type Cell struct {
	Type   CellType
	Source string
	Output string
}

// Notebook is an ordered list of cells plus a title.
type Notebook struct {
	Title string
	Cells []*Cell
}

// ClearOutputs erases every cell's output, like "Edit > Clear all outputs".
func (nb *Notebook) ClearOutputs() {
	for _, c := range nb.Cells {
		c.Output = ""
	}
}

// RankProgram is one rank's body of a bound program, matching the
// patternlets package's RunRank shape.
type RankProgram func(w io.Writer, c *mpi.Comm) error

// Launcher starts an np-rank SPMD job; cluster.Platform.Launch and mpi.Run
// both fit (after currying np for the latter). The trailing options let a
// topology-aware launcher pass placement and hierarchy settings through.
type Launcher func(np int, main func(c *mpi.Comm) error, extra ...mpi.Option) error

// Runtime executes notebook cells: it holds the virtual filesystem
// populated by %%writefile, the program bindings, and the launcher that
// backs mpirun.
type Runtime struct {
	files    map[string]string
	programs map[string]RankProgram
	launch   Launcher
}

// NewRuntime builds a runtime over the given launcher. A nil launcher
// defaults to the in-process mpi runtime.
func NewRuntime(launch Launcher) *Runtime {
	if launch == nil {
		launch = func(np int, main func(c *mpi.Comm) error, extra ...mpi.Option) error {
			return mpi.Run(np, main, extra...)
		}
	}
	return &Runtime{
		files:    map[string]string{},
		programs: map[string]RankProgram{},
		launch:   launch,
	}
}

// Bind associates a virtual file name with the program mpirun runs for it.
func (rt *Runtime) Bind(file string, prog RankProgram) { rt.programs[file] = prog }

// File returns the saved contents of a virtual file.
func (rt *Runtime) File(name string) (string, bool) {
	src, ok := rt.files[name]
	return src, ok
}

// ErrNotExecutable marks shell commands the runtime does not understand.
var ErrNotExecutable = errors.New("notebook: unsupported shell command")

// ExecuteCell runs one cell, appending to its Output, and returns the
// output produced by this execution.
func (rt *Runtime) ExecuteCell(cell *Cell) (string, error) {
	var out string
	var err error
	switch cell.Type {
	case Markdown:
		return "", nil
	case Code:
		out, err = rt.execCode(cell.Source)
	case Shell:
		out, err = rt.execShell(cell.Source)
	default:
		return "", fmt.Errorf("notebook: unknown cell type %v", cell.Type)
	}
	cell.Output += out
	return out, err
}

// RunAll executes every cell in order, stopping at the first error.
func (rt *Runtime) RunAll(nb *Notebook) error {
	for i, cell := range nb.Cells {
		if _, err := rt.ExecuteCell(cell); err != nil {
			return fmt.Errorf("notebook: cell %d: %w", i, err)
		}
	}
	return nil
}

// execCode handles code cells. The module's code cells all start with the
// %%writefile magic; a bare code cell is saved nowhere and produces no
// output (it would be Python source we cannot run).
func (rt *Runtime) execCode(source string) (string, error) {
	trimmed := strings.TrimLeft(source, "\n")
	if !strings.HasPrefix(trimmed, "%%writefile") {
		return "", errors.New("notebook: code cell without %%writefile magic cannot be executed")
	}
	nl := strings.IndexByte(trimmed, '\n')
	header := trimmed
	body := ""
	if nl >= 0 {
		header = trimmed[:nl]
		body = trimmed[nl+1:]
	}
	fields := strings.Fields(header)
	if len(fields) != 2 {
		return "", fmt.Errorf("notebook: malformed magic %q", header)
	}
	name := fields[1]
	_, existed := rt.files[name]
	rt.files[name] = body
	if existed {
		return fmt.Sprintf("Overwriting %s\n", name), nil
	}
	return fmt.Sprintf("Writing %s\n", name), nil
}

// execShell handles "!" cells. The only command the module needs is
// mpirun, in the exact shape Figure 2 shows:
//
//	!mpirun --allow-run-as-root -np 4 python 00spmd.py
func (rt *Runtime) execShell(source string) (string, error) {
	cmdline := strings.TrimSpace(source)
	cmdline = strings.TrimPrefix(cmdline, "!")
	fields := strings.Fields(cmdline)
	if len(fields) == 0 {
		return "", fmt.Errorf("%w: empty command", ErrNotExecutable)
	}
	if fields[0] != "mpirun" {
		return "", fmt.Errorf("%w: %q", ErrNotExecutable, fields[0])
	}

	np := 1
	var file string
	for i := 1; i < len(fields); i++ {
		switch f := fields[i]; {
		case f == "--allow-run-as-root" || f == "--oversubscribe":
			// Accepted and ignored, as on the Colab VM.
		case f == "-np" || f == "-n":
			if i+1 >= len(fields) {
				return "", fmt.Errorf("notebook: %s needs a value", f)
			}
			v, err := strconv.Atoi(fields[i+1])
			if err != nil || v < 1 {
				return "", fmt.Errorf("notebook: bad process count %q", fields[i+1])
			}
			np = v
			i++
		case f == "python" || f == "python3":
			// The interpreter name; the next token is the program file.
		default:
			file = f
		}
	}
	if file == "" {
		return "", errors.New("notebook: mpirun command names no program file")
	}
	if _, saved := rt.files[file]; !saved {
		return "", fmt.Errorf("notebook: python: can't open file %q: run its %%%%writefile cell first", file)
	}
	prog, bound := rt.programs[file]
	if !bound {
		return "", fmt.Errorf("notebook: no program bound for %q", file)
	}

	var buf strings.Builder
	var mu = newLockedWriter(&buf)
	err := rt.launch(np, func(c *mpi.Comm) error {
		return prog(mu, c)
	})
	return buf.String(), err
}

// lockedWriter serializes rank output lines.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func newLockedWriter(w io.Writer) *lockedWriter { return &lockedWriter{w: w} }

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
