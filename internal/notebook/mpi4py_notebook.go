package notebook

import (
	"fmt"

	"repro/internal/patternlets"
)

// fileBindings maps each virtual Python file the notebook writes to the
// patternlet that implements its behaviour.
var fileBindings = []struct {
	File       string
	Patternlet string
	Heading    string
	Intro      string
	NP         int
}{
	{"00spmd.py", "mpiSpmd", "Single Program, Multiple Data",
		"This code forms the basis of all of the other examples that follow. " +
			"It is the fundamental way we structure parallel programs today.", 4},
	{"01sendRecv.py", "mpiSendRecv", "Send and Receive",
		"Processes share no memory: the only way to move data between them " +
			"is to send and receive messages.", 4},
	{"02masterWorker.py", "mpiMasterWorker", "Master-Worker",
		"One process (the master) coordinates while the others (the workers) " +
			"compute and report back.", 4},
	{"03parallelLoopEqualChunks.py", "mpiParallelLoopEqualChunks", "Parallel Loop, Equal Chunks",
		"Each process computes its own contiguous block of the loop's " +
			"iterations from its rank and the number of processes.", 4},
	{"04parallelLoopChunksOf1.py", "mpiParallelLoopChunksOf1", "Parallel Loop, Chunks of 1",
		"Each process strides through the iterations by the number of " +
			"processes: the cyclic decomposition.", 4},
	{"05broadcast.py", "mpiBroadcast", "Broadcast",
		"The root distributes a data structure to every process in " +
			"logarithmically many rounds.", 4},
	{"06reduction.py", "mpiReduction", "Reduction",
		"Every process contributes a value; an associative operation combines " +
			"them into one result at the root.", 4},
	{"07scatterGather.py", "mpiScatterGather", "Scatter and Gather",
		"Scatter hands each process one piece of an array; gather collects " +
			"the transformed pieces back in rank order.", 4},
	{"08barrierSequence.py", "mpiBarrierSequence", "Barrier and Sequenced Output",
		"Barriers divide execution into phases; with one turn per phase the " +
			"processes can produce deterministic, ordered output.", 4},
	{"09ring.py", "mpiRing", "Ring Communication",
		"A token circulates the ring of processes, accumulating each rank " +
			"along the way.", 4},
}

// pythonSources holds the mpi4py text each %%writefile cell saves. The
// sources are real mpi4py renderings of the patternlets (00spmd.py is
// exactly the cell shown in the paper's Figure 2); the runtime executes
// their Go twins.
var pythonSources = map[string]string{
	"00spmd.py": `from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()            #number of the process running the code
    numProcesses = comm.Get_size()  #total number of processes running
    myHostName = MPI.Get_processor_name()  #machine name running the code

    print("Greetings from process {} of {} on {}"\
          .format(id, numProcesses, myHostName))

########## Run the main function
main()
`,
	"01sendRecv.py": `from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    numProcesses = comm.Get_size()

    if numProcesses % 2 != 0:
        if id == 0:
            print("Please run this program with an even number of processes")
        return
    if id % 2 == 0:
        comm.send("a message from process {}".format(id), dest=id+1)
    else:
        message = comm.recv(source=id-1)
        print("Process {} received: {}".format(id, message))

main()
`,
	"02masterWorker.py": `from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    numProcesses = comm.Get_size()

    if id == 0:        # master
        for i in range(1, numProcesses):
            result = comm.recv(source=MPI.ANY_SOURCE, tag=1)
            print("Master received {}".format(result))
    else:              # worker
        comm.send(id*id, dest=0, tag=1)

main()
`,
	"03parallelLoopEqualChunks.py": `from mpi4py import MPI

REPS = 8

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    numProcesses = comm.Get_size()
    chunkSize = REPS // numProcesses
    start = id * chunkSize
    stop = start + chunkSize if id < numProcesses - 1 else REPS
    for i in range(start, stop):
        print("Process {} is performing iteration {}".format(id, i))

main()
`,
	"04parallelLoopChunksOf1.py": `from mpi4py import MPI

REPS = 8

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    numProcesses = comm.Get_size()
    for i in range(id, REPS, numProcesses):
        print("Process {} is performing iteration {}".format(id, i))

main()
`,
	"05broadcast.py": `from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    numProcesses = comm.Get_size()
    if id == 0:
        data = [i*i for i in range(1, numProcesses + 1)]
    else:
        data = None
    data = comm.bcast(data, root=0)
    print("Process {} has list {}".format(id, data))

main()
`,
	"06reduction.py": `from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    square = (id + 1) * (id + 1)
    total = comm.reduce(square, op=MPI.SUM, root=0)
    if id == 0:
        print("Sum of squares computed across processes: {}".format(total))

main()
`,
	"07scatterGather.py": `from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    numProcesses = comm.Get_size()
    if id == 0:
        pieces = [i + 1 for i in range(numProcesses)]
    else:
        pieces = None
    mine = comm.scatter(pieces, root=0)
    cubes = comm.gather(mine ** 3, root=0)
    if id == 0:
        print("Gathered cubes: {}".format(cubes))

main()
`,
	"08barrierSequence.py": `from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    numProcesses = comm.Get_size()
    print("Unordered greeting from process {}".format(id))
    for turn in range(numProcesses):
        comm.Barrier()
        if turn == id:
            print("Ordered greeting from process {}".format(id))
    comm.Barrier()

main()
`,
	"09ring.py": `from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()
    numProcesses = comm.Get_size()
    right = (id + 1) % numProcesses
    left = (id - 1) % numProcesses
    if id == 0:
        comm.send(0, dest=right, tag=3)
        token = comm.recv(source=left, tag=3)
        print("Token returned carrying {}".format(token))
    else:
        token = comm.recv(source=left, tag=3)
        comm.send(token + id, dest=right, tag=3)

main()
`,
}

// MPI4PyPatternletsNotebook builds the module's Colab notebook:
// "Distributed Parallel Programming Patterns using mpi4py". Each patternlet
// contributes a markdown heading, the %%writefile cell with its mpi4py
// source, and the mpirun cell that executes it — the exact cell triple the
// paper's Figure 2 shows for 00spmd.py.
func MPI4PyPatternletsNotebook() *Notebook {
	nb := &Notebook{Title: "mpi4py_patternlets.ipynb"}
	nb.Cells = append(nb.Cells, &Cell{
		Type: Markdown,
		Source: "# Distributed Parallel Programming Patterns using mpi4py\n\n" +
			"Work through each pattern at your own pace: read the text, run the " +
			"%%writefile cell to save the program, then run the mpirun cell to " +
			"execute it with several processes.",
	})
	for _, b := range fileBindings {
		nb.Cells = append(nb.Cells,
			&Cell{Type: Markdown, Source: fmt.Sprintf("## %s\n\n%s", b.Heading, b.Intro)},
			&Cell{Type: Code, Source: fmt.Sprintf("%%%%writefile %s\n%s", b.File, pythonSources[b.File])},
			&Cell{Type: Shell, Source: fmt.Sprintf("!mpirun --allow-run-as-root -np %d python %s", b.NP, b.File)},
		)
	}
	return nb
}

// BindPatternlets installs the notebook's program bindings into a runtime:
// each virtual Python file executes its Go patternlet twin.
func BindPatternlets(rt *Runtime) error {
	for _, b := range fileBindings {
		p, err := patternlets.Lookup(b.Patternlet)
		if err != nil {
			return fmt.Errorf("notebook: binding %s: %w", b.File, err)
		}
		rt.Bind(b.File, p.RunRank)
	}
	return nil
}
