package notebook

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestExportIPYNBIsValidNBFormat4(t *testing.T) {
	nb := MPI4PyPatternletsNotebook()
	data, err := ExportIPYNB(nb)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc["nbformat"].(float64) != 4 {
		t.Fatalf("nbformat = %v", doc["nbformat"])
	}
	cells := doc["cells"].([]any)
	if len(cells) != len(nb.Cells) {
		t.Fatalf("exported %d cells, want %d", len(cells), len(nb.Cells))
	}
	// The Figure 2 writefile cell survives with its source intact.
	if !strings.Contains(string(data), `"%%writefile 00spmd.py\n"`) {
		t.Error("writefile magic line missing from export")
	}
	if !strings.Contains(string(data), "from mpi4py import MPI") {
		t.Error("mpi4py source missing from export")
	}
}

func TestIPYNBRoundTrip(t *testing.T) {
	orig := MPI4PyPatternletsNotebook()
	data, err := ExportIPYNB(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportIPYNB(data, orig.Title)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(orig.Cells) {
		t.Fatalf("cells = %d, want %d", len(back.Cells), len(orig.Cells))
	}
	for i := range orig.Cells {
		if back.Cells[i].Type != orig.Cells[i].Type {
			t.Errorf("cell %d type %v, want %v", i, back.Cells[i].Type, orig.Cells[i].Type)
		}
		if back.Cells[i].Source != orig.Cells[i].Source {
			t.Errorf("cell %d source mismatch:\n got %q\nwant %q", i, back.Cells[i].Source, orig.Cells[i].Source)
		}
	}
}

func TestIPYNBRoundTripPreservesOutputs(t *testing.T) {
	// Execute the notebook first so cells carry outputs, then round-trip.
	colab := cluster.ColabVM()
	rt := NewRuntime(colab.Launch)
	if err := BindPatternlets(rt); err != nil {
		t.Fatal(err)
	}
	nb := MPI4PyPatternletsNotebook()
	if err := rt.RunAll(nb); err != nil {
		t.Fatal(err)
	}
	data, err := ExportIPYNB(nb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Greetings from process") {
		t.Fatal("executed output missing from export")
	}
	back, err := ImportIPYNB(data, nb.Title)
	if err != nil {
		t.Fatal(err)
	}
	// The mpirun cell for 00spmd.py (index 3) kept its output.
	if !strings.Contains(back.Cells[3].Output, "Greetings from process") {
		t.Fatalf("output lost in round trip: %q", back.Cells[3].Output)
	}
}

func TestImportIPYNBValidation(t *testing.T) {
	if _, err := ImportIPYNB([]byte("not json"), "x"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ImportIPYNB([]byte(`{"nbformat": 3, "cells": []}`), "x"); err == nil {
		t.Fatal("nbformat 3 accepted")
	}
	if _, err := ImportIPYNB([]byte(`{"nbformat": 4, "cells": [{"cell_type": "raw"}]}`), "x"); err == nil {
		t.Fatal("unsupported cell type accepted")
	}
}

func TestImportClassifiesShellCells(t *testing.T) {
	doc := `{"nbformat": 4, "nbformat_minor": 5, "metadata": {}, "cells": [
		{"cell_type": "code", "metadata": {}, "source": ["!mpirun -np 4 python x.py"]},
		{"cell_type": "code", "metadata": {}, "source": ["%%writefile x.py\n", "pass\n"]},
		{"cell_type": "markdown", "metadata": {}, "source": ["# hi"]}
	]}`
	nb, err := ImportIPYNB([]byte(doc), "t")
	if err != nil {
		t.Fatal(err)
	}
	if nb.Cells[0].Type != Shell || nb.Cells[1].Type != Code || nb.Cells[2].Type != Markdown {
		t.Fatalf("types = %v %v %v", nb.Cells[0].Type, nb.Cells[1].Type, nb.Cells[2].Type)
	}
	if nb.Cells[1].Source != "%%writefile x.py\npass\n" {
		t.Fatalf("joined source = %q", nb.Cells[1].Source)
	}
}
