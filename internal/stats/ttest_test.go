package stats

import (
	"errors"
	"strings"
	"testing"
)

func TestPairedTTestHandComputedExample(t *testing.T) {
	// pre/post with differences {1,1,1,1,0,2}: mean d = 1, sd d = sqrt(0.4),
	// t = 1/(sqrt(0.4)/sqrt(6)) = sqrt(15) ≈ 3.8730, df = 5, p ≈ 0.0117.
	pre := []float64{2, 3, 1, 4, 3, 2}
	post := []float64{3, 4, 2, 5, 3, 4}
	r, err := PairedTTest(pre, post)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 6 || r.DF != 5 {
		t.Fatalf("N=%d DF=%g", r.N, r.DF)
	}
	if !almostEqual(r.MeanDiff, 1, 1e-12) {
		t.Fatalf("MeanDiff = %g", r.MeanDiff)
	}
	if !almostEqual(r.T, 3.872983346, 1e-8) {
		t.Fatalf("T = %g", r.T)
	}
	if !almostEqual(r.P2, 0.0117, 2e-4) {
		t.Fatalf("P2 = %g, want ~0.0117", r.P2)
	}
}

func TestPairedTTestSignConvention(t *testing.T) {
	// Post lower than pre must give a negative t with the same p as the
	// mirrored test.
	pre := []float64{3, 4, 5, 4, 3, 5, 2}
	post := []float64{2, 3, 4, 4, 2, 4, 2}
	fwd, err := PairedTTest(pre, post)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := PairedTTest(post, pre)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.T >= 0 {
		t.Fatalf("decline gave t = %g, want negative", fwd.T)
	}
	if !almostEqual(fwd.T, -rev.T, 1e-12) || !almostEqual(fwd.P2, rev.P2, 1e-12) {
		t.Fatalf("asymmetry: fwd %v rev %v", fwd, rev)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length mismatch err = %v", err)
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single pair accepted")
	}
	if _, err := PairedTTest([]float64{1, 2, 3}, []float64{2, 3, 4}); err == nil {
		t.Fatal("zero-variance differences accepted")
	}
}

func TestOneSampleTTest(t *testing.T) {
	xs := []float64{5.1, 4.9, 5.3, 5.0, 4.8, 5.2}
	r, err := OneSampleTTest(xs, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	// Mean is 5.05; the test should be far from significant.
	if r.P2 < 0.3 {
		t.Fatalf("p = %g, expected clearly non-significant", r.P2)
	}
	if _, err := OneSampleTTest([]float64{1}, 0); err == nil {
		t.Fatal("singleton accepted")
	}
	if _, err := OneSampleTTest([]float64{2, 2, 2}, 0); err == nil {
		t.Fatal("zero-variance accepted")
	}
}

func TestTTestResultString(t *testing.T) {
	r := TTestResult{T: 4.17, DF: 21, P2: 0.00044}
	s := r.String()
	if !strings.Contains(s, "t(21)") || !strings.Contains(s, "0.00044") {
		t.Fatalf("String() = %q", s)
	}
}

// TestPairedTTestMatchesPaperFigure3 verifies that response vectors with the
// paper's published pre/post means (2.82, 3.59) yield a p-value that rounds
// to the published 0.0004. The vectors here mirror internal/survey's data.
func TestPairedTTestMatchesPaperFigure3(t *testing.T) {
	// Differences: five 2s, eight 1s, eight 0s, one -1 (sum 17, n 22).
	diffs := []float64{2, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, -1}
	pre := make([]float64, len(diffs))
	post := make([]float64, len(diffs))
	for i, d := range diffs {
		pre[i] = 3
		post[i] = 3 + d
	}
	r, err := PairedTTest(pre, post)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.MeanDiff, 17.0/22.0, 1e-12) {
		t.Fatalf("MeanDiff = %g", r.MeanDiff)
	}
	if r.P2 < 0.00035 || r.P2 > 0.00045 {
		t.Fatalf("P2 = %g, want to round to the paper's 0.0004", r.P2)
	}
}
