package stats

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSpeedupAndEfficiency(t *testing.T) {
	s, err := Speedup(8*time.Second, 2*time.Second)
	if err != nil || s != 4 {
		t.Fatalf("Speedup = %v, %v", s, err)
	}
	e, err := Efficiency(8*time.Second, 2*time.Second, 4)
	if err != nil || e != 1 {
		t.Fatalf("Efficiency = %v, %v", e, err)
	}
	if _, err := Speedup(0, time.Second); !errors.Is(err, ErrNonPositiveTime) {
		t.Fatalf("zero sequential err = %v", err)
	}
	if _, err := Efficiency(time.Second, time.Second, 0); err == nil {
		t.Fatal("workers=0 accepted")
	}
}

func TestAmdahlKnownValues(t *testing.T) {
	// Fully parallel program: speedup = p.
	s, err := AmdahlSpeedup(0, 8)
	if err != nil || s != 8 {
		t.Fatalf("Amdahl(0, 8) = %v", s)
	}
	// 10% serial at p→∞ caps at 10; at p=10 it's 1/(0.1+0.09) ≈ 5.263.
	s, err = AmdahlSpeedup(0.1, 10)
	if err != nil || !almostEqual(s, 1/(0.1+0.9/10), 1e-12) {
		t.Fatalf("Amdahl(0.1, 10) = %v", s)
	}
	// Fully serial program never speeds up.
	s, err = AmdahlSpeedup(1, 64)
	if err != nil || s != 1 {
		t.Fatalf("Amdahl(1, 64) = %v", s)
	}
	if _, err := AmdahlSpeedup(-0.1, 2); err == nil {
		t.Fatal("negative serial fraction accepted")
	}
	if _, err := AmdahlSpeedup(0.5, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestGustafson(t *testing.T) {
	s, err := GustafsonSpeedup(0, 16)
	if err != nil || s != 16 {
		t.Fatalf("Gustafson(0,16) = %v", s)
	}
	s, err = GustafsonSpeedup(0.1, 10)
	if err != nil || !almostEqual(s, 10-0.1*9, 1e-12) {
		t.Fatalf("Gustafson(0.1,10) = %v", s)
	}
	if _, err := GustafsonSpeedup(2, 4); err == nil {
		t.Fatal("serial fraction 2 accepted")
	}
}

func TestKarpFlattRecoversAmdahlFraction(t *testing.T) {
	// If the measured speedup follows Amdahl's law exactly, Karp-Flatt must
	// recover the serial fraction.
	for _, f := range []float64{0.05, 0.2, 0.5} {
		for _, p := range []int{2, 4, 16, 64} {
			s, err := AmdahlSpeedup(f, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := KarpFlatt(s, p)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, f, 1e-9) {
				t.Fatalf("KarpFlatt(Amdahl(%g,%d)) = %g", f, p, got)
			}
		}
	}
	if _, err := KarpFlatt(2, 1); err == nil {
		t.Fatal("p=1 accepted")
	}
	if _, err := KarpFlatt(0, 4); err == nil {
		t.Fatal("speedup=0 accepted")
	}
}

func TestScalingStudy(t *testing.T) {
	workers := []int{1, 2, 4}
	times := []time.Duration{8 * time.Second, 4 * time.Second, 2500 * time.Millisecond}
	pts, err := ScalingStudy(workers, times)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Speedup != 1 || pts[0].Efficiency != 1 {
		t.Fatalf("baseline point = %+v", pts[0])
	}
	if pts[1].Speedup != 2 {
		t.Fatalf("2-worker speedup = %v", pts[1].Speedup)
	}
	if !almostEqual(pts[2].Speedup, 3.2, 1e-12) || !almostEqual(pts[2].Efficiency, 0.8, 1e-12) {
		t.Fatalf("4-worker point = %+v", pts[2])
	}
	out := FormatScaling(pts)
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "3.20x") {
		t.Fatalf("FormatScaling = %q", out)
	}
}

func TestScalingStudyErrors(t *testing.T) {
	if _, err := ScalingStudy([]int{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ScalingStudy(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty study err = %v", err)
	}
	if _, err := ScalingStudy([]int{1}, []time.Duration{0}); err == nil {
		t.Fatal("zero time accepted")
	}
}
