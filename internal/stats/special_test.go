package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegularizedIncompleteBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x float64
		want    float64
		tol     float64
	}{
		// I_x(1,1) = x (uniform distribution CDF).
		{1, 1, 0.25, 0.25, 1e-12},
		{1, 1, 0.9, 0.9, 1e-12},
		// I_x(2,2) = x²(3-2x).
		{2, 2, 0.5, 0.5, 1e-12},
		{2, 2, 0.25, 0.0625 * (3 - 0.5), 1e-12},
		// I_x(1,b) = 1-(1-x)^b.
		{1, 3, 0.2, 1 - math.Pow(0.8, 3), 1e-12},
		// Symmetry point: I_{1/2}(a,a) = 1/2.
		{5, 5, 0.5, 0.5, 1e-12},
		{0.5, 0.5, 0.5, 0.5, 1e-10},
	}
	for _, c := range cases {
		got, err := RegularizedIncompleteBeta(c.a, c.b, c.x)
		if err != nil {
			t.Fatalf("I_%g(%g,%g): %v", c.x, c.a, c.b, err)
		}
		if !almostEqual(got, c.want, c.tol) {
			t.Errorf("I_%g(%g,%g) = %.15g, want %.15g", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegularizedIncompleteBetaBoundsAndErrors(t *testing.T) {
	if v, err := RegularizedIncompleteBeta(2, 3, 0); err != nil || v != 0 {
		t.Fatalf("I_0 = %v, %v", v, err)
	}
	if v, err := RegularizedIncompleteBeta(2, 3, 1); err != nil || v != 1 {
		t.Fatalf("I_1 = %v, %v", v, err)
	}
	if _, err := RegularizedIncompleteBeta(-1, 2, 0.5); err == nil {
		t.Fatal("negative a accepted")
	}
	if _, err := RegularizedIncompleteBeta(1, 2, 1.5); err == nil {
		t.Fatal("x > 1 accepted")
	}
}

func TestIncompleteBetaSymmetryProperty(t *testing.T) {
	// I_x(a,b) + I_{1-x}(b,a) = 1.
	prop := func(aRaw, bRaw, xRaw uint16) bool {
		a := float64(aRaw%200)/10 + 0.1
		b := float64(bRaw%200)/10 + 0.1
		x := float64(xRaw%1000) / 1000
		lhs, err1 := RegularizedIncompleteBeta(a, b, x)
		rhs, err2 := RegularizedIncompleteBeta(b, a, 1-x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(lhs+rhs, 1, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIncompleteBetaMonotoneInX(t *testing.T) {
	prev := -1.0
	for i := 0; i <= 100; i++ {
		x := float64(i) / 100
		v, err := RegularizedIncompleteBeta(3, 7, x)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-12 {
			t.Fatalf("I_x(3,7) not monotone at x=%g: %g < %g", x, v, prev)
		}
		prev = v
	}
}

// TestStudentTKnownCriticalValues pins the t CDF against standard table
// values: the 97.5th percentile of t(df) for several df.
func TestStudentTKnownCriticalValues(t *testing.T) {
	cases := []struct {
		df, t975 float64
	}{
		{1, 12.706},
		{2, 4.303},
		{5, 2.571},
		{10, 2.228},
		{21, 2.080},
		{30, 2.042},
	}
	for _, c := range cases {
		p2, err := StudentTPValue2(c.t975, c.df)
		if err != nil {
			t.Fatal(err)
		}
		// Two-sided p at the 97.5% critical value is 0.05.
		if !almostEqual(p2, 0.05, 5e-4) {
			t.Errorf("df=%g: p2(%g) = %g, want 0.05", c.df, c.t975, p2)
		}
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	for _, df := range []float64{1, 3, 21, 100} {
		for _, x := range []float64{0, 0.5, 1.3, 4.2} {
			up, err1 := StudentTCDF(x, df)
			dn, err2 := StudentTCDF(-x, df)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !almostEqual(up+dn, 1, 1e-10) {
				t.Fatalf("df=%g x=%g: CDF(x)+CDF(-x) = %g", df, x, up+dn)
			}
		}
	}
	if v, _ := StudentTCDF(0, 7); !almostEqual(v, 0.5, 1e-12) {
		t.Fatalf("CDF(0) = %g", v)
	}
}

func TestStudentTPValueEdgeCases(t *testing.T) {
	if _, err := StudentTPValue2(1, 0); err == nil {
		t.Fatal("df=0 accepted")
	}
	if p, err := StudentTPValue2(math.Inf(1), 5); err != nil || p != 0 {
		t.Fatalf("p(inf) = %v, %v", p, err)
	}
	if p, err := StudentTPValue2(0, 5); err != nil || !almostEqual(p, 1, 1e-12) {
		t.Fatalf("p(0) = %v, %v", p, err)
	}
}

func TestStudentTLargeDFApproachesNormal(t *testing.T) {
	// For df = 1e6 the t distribution is essentially standard normal:
	// P(|T| >= 1.96) ≈ 0.05.
	p2, err := StudentTPValue2(1.959964, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p2, 0.05, 1e-4) {
		t.Fatalf("p2 = %g, want ~0.05", p2)
	}
}
