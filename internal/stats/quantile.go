package stats

import (
	"fmt"
	"math"
)

// StudentTQuantile returns the value t with P(T <= t) = p for a Student t
// variable with df degrees of freedom: the inverse CDF, computed by
// bracketed bisection on the (monotone) CDF. It is the critical-value
// lookup behind confidence intervals.
func StudentTQuantile(p, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: degrees of freedom must be positive, got %g", df)
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: quantile probability must be in (0,1), got %g", p)
	}
	if p == 0.5 {
		return 0, nil
	}
	// Expand a bracket [lo, hi] containing the quantile.
	lo, hi := -1.0, 1.0
	for {
		c, err := StudentTCDF(lo, df)
		if err != nil {
			return 0, err
		}
		if c < p {
			break
		}
		lo *= 2
		if lo < -1e18 {
			return 0, fmt.Errorf("stats: t quantile bracket underflow (p=%g, df=%g)", p, df)
		}
	}
	for {
		c, err := StudentTCDF(hi, df)
		if err != nil {
			return 0, err
		}
		if c > p {
			break
		}
		hi *= 2
		if hi > 1e18 {
			return 0, fmt.Errorf("stats: t quantile bracket overflow (p=%g, df=%g)", p, df)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+math.Abs(lo)+math.Abs(hi)); i++ {
		mid := (lo + hi) / 2
		c, err := StudentTCDF(mid, df)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// MeanCI returns the two-sided confidence interval for the mean of xs at
// the given confidence level (e.g. 0.95), using the t distribution — the
// error bars a careful benchmarking study puts on its timing means.
func MeanCI(xs []float64, confidence float64) (lo, hi float64, err error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence must be in (0,1), got %g", confidence)
	}
	n := len(xs)
	if n < 2 {
		return 0, 0, fmt.Errorf("stats: confidence interval needs >= 2 observations, got %d", n)
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	df := float64(n - 1)
	tcrit, err := StudentTQuantile(0.5+confidence/2, df)
	if err != nil {
		return 0, 0, err
	}
	half := tcrit * sd / math.Sqrt(float64(n))
	return mean - half, mean + half, nil
}
