package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanAndSum(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Sum(xs); got != 10 {
		t.Fatalf("Sum = %v", got)
	}
	m, err := Mean(xs)
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean(nil) err = %v", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of squared deviations is 32; sample variance = 32/7.
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", v)
	}
	sd, err := StdDev(xs)
	if err != nil || !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v, %v", sd, err)
	}
	if _, err := Variance([]float64{1}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Variance of singleton err = %v", err)
	}
}

func TestMinMaxMedian(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v %v %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("MinMax(nil) did not error")
	}
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Fatalf("odd Median = %v", m)
	}
	m, err = Median([]float64{4, 1, 3, 2})
	if err != nil || m != 2.5 {
		t.Fatalf("even Median = %v", m)
	}
	if _, err := Median(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Median(nil) did not error")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated its input: %v", xs)
	}
}

func TestRoundHalfAwayFromZero(t *testing.T) {
	cases := []struct {
		x      float64
		places int
		want   float64
	}{
		{100.0 / 22.0, 2, 4.55}, // the Table II convention
		{98.0 / 22.0, 2, 4.45},
		{62.0 / 22.0, 2, 2.82},
		{2.345, 2, 2.35},
		{-2.345, 2, -2.35},
		{1.5, 0, 2},
	}
	for _, c := range cases {
		if got := Round(c.x, c.places); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Round(%v, %d) = %v, want %v", c.x, c.places, got, c.want)
		}
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m, err := Mean(clean)
		if err != nil {
			return false
		}
		lo, hi, _ := MinMax(clean)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		v, err := Variance(clean)
		return err == nil && v >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// quantileRef is an independent sorted-slice reference for Quantile: sort a
// copy, then take the convex combination of the two order statistics that
// bracket rank q*(n-1). Written from the definition, not from the
// implementation, so a regression in either shows up as disagreement.
func quantileRef(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	if lo > len(s)-2 {
		lo = len(s) - 2
	}
	frac := pos - float64(lo)
	return (1-frac)*s[lo] + frac*s[lo+1]
}

// TestQuantilePropertyVsReference pins Quantile against the sorted-slice
// reference across random inputs (it now gates the scheduler's p99 pins),
// and checks the definitional properties: bounded by min/max, monotone in
// q, permutation-invariant, exact at the order-statistic ranks, and
// non-mutating.
func TestQuantilePropertyVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(3) {
			case 0: // heavy tail, the latency-like shape the p99 pins see
				xs[i] = math.Exp(rng.NormFloat64() * 3)
			case 1: // duplicates on purpose
				xs[i] = float64(rng.Intn(4))
			default:
				xs[i] = rng.NormFloat64() * 100
			}
		}
		orig := append([]float64(nil), xs...)
		lo, hi, err := MinMax(xs)
		if err != nil {
			t.Fatal(err)
		}
		qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1, rng.Float64()}
		prev := math.Inf(-1)
		sort.Float64s(qs)
		for _, q := range qs {
			got, err := Quantile(xs, q)
			if err != nil {
				t.Fatalf("trial %d: Quantile(n=%d, q=%v): %v", trial, n, q, err)
			}
			want := quantileRef(xs, q)
			tol := 1e-9 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("trial %d: Quantile(n=%d, q=%v) = %v, reference %v", trial, n, q, got, want)
			}
			if got < lo || got > hi {
				t.Fatalf("trial %d: Quantile(q=%v) = %v outside [%v, %v]", trial, q, got, lo, hi)
			}
			if got < prev-tol {
				t.Fatalf("trial %d: Quantile not monotone: q=%v gave %v after %v", trial, q, got, prev)
			}
			prev = got
		}
		// Permutation invariance: a shuffle must not change any quantile.
		shuffled := append([]float64(nil), xs...)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a, _ := Quantile(xs, 0.99)
		b, _ := Quantile(shuffled, 0.99)
		if a != b {
			t.Fatalf("trial %d: p99 changed under permutation: %v vs %v", trial, a, b)
		}
		// Exact at the order-statistic ranks q = k/(n-1).
		if n > 1 {
			s := append([]float64(nil), xs...)
			sort.Float64s(s)
			k := rng.Intn(n)
			got, err := Quantile(xs, float64(k)/float64(n-1))
			if err != nil {
				t.Fatal(err)
			}
			if tol := 1e-9 * math.Max(1, math.Abs(s[k])); math.Abs(got-s[k]) > tol {
				t.Fatalf("trial %d: Quantile(k/(n-1)) = %v, want order statistic %v", trial, got, s[k])
			}
		}
		for i := range xs {
			if xs[i] != orig[i] {
				t.Fatalf("trial %d: Quantile mutated its input at %d", trial, i)
			}
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty input: got %v, want ErrEmpty", err)
	}
	for _, q := range []float64{-0.01, 1.01, math.NaN()} {
		if _, err := Quantile([]float64{1, 2}, q); err == nil {
			t.Fatalf("q=%v: want error", q)
		}
	}
}
