package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanAndSum(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Sum(xs); got != 10 {
		t.Fatalf("Sum = %v", got)
	}
	m, err := Mean(xs)
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean(nil) err = %v", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of squared deviations is 32; sample variance = 32/7.
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", v)
	}
	sd, err := StdDev(xs)
	if err != nil || !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v, %v", sd, err)
	}
	if _, err := Variance([]float64{1}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Variance of singleton err = %v", err)
	}
}

func TestMinMaxMedian(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v %v %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("MinMax(nil) did not error")
	}
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Fatalf("odd Median = %v", m)
	}
	m, err = Median([]float64{4, 1, 3, 2})
	if err != nil || m != 2.5 {
		t.Fatalf("even Median = %v", m)
	}
	if _, err := Median(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Median(nil) did not error")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated its input: %v", xs)
	}
}

func TestRoundHalfAwayFromZero(t *testing.T) {
	cases := []struct {
		x      float64
		places int
		want   float64
	}{
		{100.0 / 22.0, 2, 4.55}, // the Table II convention
		{98.0 / 22.0, 2, 4.45},
		{62.0 / 22.0, 2, 2.82},
		{2.345, 2, 2.35},
		{-2.345, 2, -2.35},
		{1.5, 0, 2},
	}
	for _, c := range cases {
		if got := Round(c.x, c.places); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Round(%v, %d) = %v, want %v", c.x, c.places, got, c.want)
		}
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m, err := Mean(clean)
		if err != nil {
			return false
		}
		lo, hi, _ := MinMax(clean)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		v, err := Variance(clean)
		return err == nil && v >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
