package stats

import (
	"strings"
	"testing"
)

var likert5 = []string{"not at all", "slightly", "moderately", "very", "extremely"}

func TestLikertHistogramCounts(t *testing.T) {
	h, err := NewLikertHistogram(likert5, []int{1, 2, 2, 3, 3, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestLikertHistogramRejectsOutOfScale(t *testing.T) {
	if _, err := NewLikertHistogram(likert5, []int{0}); err == nil {
		t.Fatal("response 0 accepted")
	}
	if _, err := NewLikertHistogram(likert5, []int{6}); err == nil {
		t.Fatal("response 6 accepted")
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewLikertHistogram(likert5, []int{2, 2, 3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render('#', 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5", len(lines))
	}
	if !strings.Contains(lines[2], "########") {
		t.Fatalf("max bin not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], "(2)") || !strings.Contains(lines[2], "(4)") {
		t.Fatalf("missing counts: %q / %q", lines[1], lines[2])
	}
	// A nonzero bin must show at least one mark even when rounding to 0.
	if strings.Contains(lines[1], "| (") {
		t.Fatalf("nonzero bin rendered with empty bar: %q", lines[1])
	}
}

func TestHistogramRenderEmpty(t *testing.T) {
	h, err := NewLikertHistogram(likert5, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render('#', 0) // width 0 falls back to default
	if !strings.Contains(out, "(0)") {
		t.Fatalf("empty histogram render: %q", out)
	}
}

func TestPairedHistogramsRowsPerBin(t *testing.T) {
	pre, _ := NewLikertHistogram(likert5, []int{1, 2, 2, 3})
	post, _ := NewLikertHistogram(likert5, []int{3, 4, 4, 5})
	out := PairedHistograms(pre, post, 10)
	if got := strings.Count(out, "pre  |"); got != 5 {
		t.Fatalf("pre rows = %d, want 5", got)
	}
	if got := strings.Count(out, "post |"); got != 5 {
		t.Fatalf("post rows = %d, want 5", got)
	}
}
