package stats

import (
	"fmt"
	"strings"
)

// Histogram counts observations falling into labeled ordinal bins — the
// shape of the paper's Figures 3 and 4, which bin 1–5 Likert responses under
// labels like "not at all" through "extremely".
type Histogram struct {
	Labels []string
	Counts []int
}

// NewLikertHistogram bins integer Likert responses (1-based) under the given
// labels. Responses outside [1, len(labels)] are rejected.
func NewLikertHistogram(labels []string, responses []int) (*Histogram, error) {
	h := &Histogram{
		Labels: append([]string(nil), labels...),
		Counts: make([]int, len(labels)),
	}
	for _, r := range responses {
		if r < 1 || r > len(labels) {
			return nil, fmt.Errorf("stats: Likert response %d outside scale 1..%d", r, len(labels))
		}
		h.Counts[r-1]++
	}
	return h, nil
}

// Total returns the number of binned observations.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Render draws the histogram as horizontal ASCII bars, one row per bin,
// which is how the assessment harness prints Figures 3 and 4.
func (h *Histogram) Render(barRune rune, width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 0
	labelWidth := 0
	for i, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
		if len(h.Labels[i]) > labelWidth {
			labelWidth = len(h.Labels[i])
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-*s | %s (%d)\n", labelWidth, h.Labels[i], strings.Repeat(string(barRune), bar), c)
	}
	return b.String()
}

// PairedHistograms renders a pre-survey and post-survey histogram side by
// side row-wise, matching the grouped-bar presentation of the paper's
// figures.
func PairedHistograms(pre, post *Histogram, width int) string {
	if width < 1 {
		width = 30
	}
	labelWidth := 0
	maxCount := 1
	for i := range pre.Labels {
		if len(pre.Labels[i]) > labelWidth {
			labelWidth = len(pre.Labels[i])
		}
		if pre.Counts[i] > maxCount {
			maxCount = pre.Counts[i]
		}
		if post.Counts[i] > maxCount {
			maxCount = post.Counts[i]
		}
	}
	var b strings.Builder
	for i := range pre.Labels {
		preBar := pre.Counts[i] * width / maxCount
		postBar := post.Counts[i] * width / maxCount
		fmt.Fprintf(&b, "%-*s  pre  | %s (%d)\n", labelWidth, pre.Labels[i], strings.Repeat("░", preBar), pre.Counts[i])
		fmt.Fprintf(&b, "%-*s  post | %s (%d)\n", labelWidth, "", strings.Repeat("█", postBar), post.Counts[i])
	}
	return b.String()
}
