package stats

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// The shared-memory module closes with "a small benchmarking study": learners
// time an exemplar at 1..N threads and compute speedup and efficiency. These
// helpers are that study's arithmetic, plus the classic scalability models
// instructors introduce alongside it.

// ErrNonPositiveTime is returned for non-positive durations.
var ErrNonPositiveTime = errors.New("stats: durations must be positive")

// Speedup returns sequentialTime / parallelTime.
func Speedup(sequential, parallel time.Duration) (float64, error) {
	if sequential <= 0 || parallel <= 0 {
		return 0, ErrNonPositiveTime
	}
	return float64(sequential) / float64(parallel), nil
}

// Efficiency returns speedup divided by the worker count.
func Efficiency(sequential, parallel time.Duration, workers int) (float64, error) {
	if workers < 1 {
		return 0, fmt.Errorf("stats: worker count must be >= 1, got %d", workers)
	}
	s, err := Speedup(sequential, parallel)
	if err != nil {
		return 0, err
	}
	return s / float64(workers), nil
}

// AmdahlSpeedup predicts the speedup on p workers of a program whose serial
// fraction is f (0 <= f <= 1): 1 / (f + (1-f)/p).
func AmdahlSpeedup(serialFraction float64, p int) (float64, error) {
	if serialFraction < 0 || serialFraction > 1 {
		return 0, fmt.Errorf("stats: serial fraction %g outside [0,1]", serialFraction)
	}
	if p < 1 {
		return 0, fmt.Errorf("stats: worker count must be >= 1, got %d", p)
	}
	return 1 / (serialFraction + (1-serialFraction)/float64(p)), nil
}

// GustafsonSpeedup predicts scaled speedup on p workers with serial fraction
// f: p - f*(p-1).
func GustafsonSpeedup(serialFraction float64, p int) (float64, error) {
	if serialFraction < 0 || serialFraction > 1 {
		return 0, fmt.Errorf("stats: serial fraction %g outside [0,1]", serialFraction)
	}
	if p < 1 {
		return 0, fmt.Errorf("stats: worker count must be >= 1, got %d", p)
	}
	fp := float64(p)
	return fp - serialFraction*(fp-1), nil
}

// KarpFlatt computes the experimentally determined serial fraction from a
// measured speedup s on p > 1 workers: (1/s - 1/p) / (1 - 1/p).
func KarpFlatt(speedup float64, p int) (float64, error) {
	if p < 2 {
		return 0, fmt.Errorf("stats: Karp-Flatt needs p >= 2, got %d", p)
	}
	if speedup <= 0 {
		return 0, fmt.Errorf("stats: speedup must be positive, got %g", speedup)
	}
	invP := 1 / float64(p)
	return (1/speedup - invP) / (1 - invP), nil
}

// ScalingPoint is one row of a scaling study.
type ScalingPoint struct {
	Workers    int
	Elapsed    time.Duration
	Speedup    float64
	Efficiency float64
}

// ScalingStudy derives speedup and efficiency rows from measured times,
// treating times[0] as the 1-worker baseline. workers[i] is the worker count
// for times[i].
func ScalingStudy(workers []int, times []time.Duration) ([]ScalingPoint, error) {
	if len(workers) != len(times) {
		return nil, fmt.Errorf("stats: %d worker counts but %d times", len(workers), len(times))
	}
	if len(workers) == 0 {
		return nil, ErrEmpty
	}
	base := times[0]
	points := make([]ScalingPoint, len(workers))
	for i := range workers {
		s, err := Speedup(base, times[i])
		if err != nil {
			return nil, err
		}
		e, err := Efficiency(base, times[i], workers[i])
		if err != nil {
			return nil, err
		}
		points[i] = ScalingPoint{Workers: workers[i], Elapsed: times[i], Speedup: s, Efficiency: e}
	}
	return points, nil
}

// FormatScaling renders a scaling study as the table the benchmarking
// activity asks learners to fill in.
func FormatScaling(points []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %14s %9s %11s\n", "workers", "time", "speedup", "efficiency")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %14s %8.2fx %10.1f%%\n",
			p.Workers, p.Elapsed.Round(time.Microsecond), p.Speedup, 100*p.Efficiency)
	}
	return b.String()
}
