// Package stats implements the statistics the paper's evaluation uses —
// summary statistics of Likert-scale survey responses, paired Student's
// t-tests (Figures 3 and 4 report t-test p-values of 0.0004 and 4.18e-08),
// and histogram binning — plus the performance metrics (speedup, efficiency,
// and the Amdahl/Gustafson/Karp-Flatt models) that the benchmarking study in
// the shared-memory module asks learners to compute.
//
// Everything is implemented from scratch on the standard math package,
// including the regularized incomplete beta function that underlies the
// Student t cumulative distribution.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries of empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// ErrLengthMismatch is returned when paired samples differ in length.
var ErrLengthMismatch = errors.New("stats: paired samples differ in length")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs,
// which requires at least two observations.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Median returns the median of xs (the average of the two central values
// for even-length samples).
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// Quantile returns the q-th quantile of xs (0 <= q <= 1) by linear
// interpolation between order statistics — the R-7 / NumPy default. The
// scheduler benchmark uses it for tail latencies (Quantile(lat, 0.99)).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile outside [0, 1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return s[lo] + frac*(s[hi]-s[lo]), nil
}

// Round rounds x to the given number of decimal places, half away from
// zero — the convention the paper's reported means follow (e.g. 100/22
// reported as 4.55).
func Round(x float64, places int) float64 {
	scale := math.Pow(10, float64(places))
	return math.Round(x*scale) / scale
}
