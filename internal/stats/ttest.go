package stats

import (
	"fmt"
	"math"
)

// TTestResult reports a Student's t-test: the statistic, its degrees of
// freedom, the two-sided p-value, and the sample summaries behind it.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // degrees of freedom
	P2 float64 // two-sided p-value

	N        int     // number of pairs (paired test) or observations
	MeanDiff float64 // mean of the pair differences
	SDDiff   float64 // sample standard deviation of the differences
}

// String formats the test the way results sections cite it.
func (r TTestResult) String() string {
	return fmt.Sprintf("t(%g) = %.4f, p = %.4g (two-sided)", r.DF, r.T, r.P2)
}

// PairedTTest performs the paired Student's t-test the paper applies to its
// pre/post workshop surveys: it tests whether the mean of the pairwise
// differences post[i] − pre[i] is zero. It requires at least two pairs and
// a nonzero difference variance.
func PairedTTest(pre, post []float64) (TTestResult, error) {
	if len(pre) != len(post) {
		return TTestResult{}, ErrLengthMismatch
	}
	n := len(pre)
	if n < 2 {
		return TTestResult{}, fmt.Errorf("stats: paired t-test needs >= 2 pairs, got %d", n)
	}
	diffs := make([]float64, n)
	for i := range pre {
		diffs[i] = post[i] - pre[i]
	}
	mean, _ := Mean(diffs)
	sd, _ := StdDev(diffs)
	if sd == 0 {
		return TTestResult{}, fmt.Errorf("stats: paired t-test undefined for zero-variance differences")
	}
	t := mean / (sd / math.Sqrt(float64(n)))
	df := float64(n - 1)
	p2, err := StudentTPValue2(t, df)
	if err != nil {
		return TTestResult{}, err
	}
	return TTestResult{T: t, DF: df, P2: p2, N: n, MeanDiff: mean, SDDiff: sd}, nil
}

// OneSampleTTest tests whether the mean of xs differs from mu.
func OneSampleTTest(xs []float64, mu float64) (TTestResult, error) {
	n := len(xs)
	if n < 2 {
		return TTestResult{}, fmt.Errorf("stats: one-sample t-test needs >= 2 observations, got %d", n)
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	if sd == 0 {
		return TTestResult{}, fmt.Errorf("stats: one-sample t-test undefined for zero-variance sample")
	}
	t := (mean - mu) / (sd / math.Sqrt(float64(n)))
	df := float64(n - 1)
	p2, err := StudentTPValue2(t, df)
	if err != nil {
		return TTestResult{}, err
	}
	return TTestResult{T: t, DF: df, P2: p2, N: n, MeanDiff: mean - mu, SDDiff: sd}, nil
}
