package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStudentTQuantileCriticalValues(t *testing.T) {
	// Standard two-sided 95% critical values: quantile at 0.975.
	cases := []struct{ df, want float64 }{
		{1, 12.706},
		{2, 4.303},
		{5, 2.571},
		{10, 2.228},
		{21, 2.080},
		{30, 2.042},
		{100, 1.984},
	}
	for _, c := range cases {
		got, err := StudentTQuantile(0.975, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 5e-3 {
			t.Errorf("df=%g: quantile(0.975) = %.4f, want %.3f", c.df, got, c.want)
		}
	}
}

func TestStudentTQuantileEdges(t *testing.T) {
	if v, err := StudentTQuantile(0.5, 7); err != nil || v != 0 {
		t.Fatalf("median = %v, %v", v, err)
	}
	if _, err := StudentTQuantile(0, 7); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := StudentTQuantile(1, 7); err == nil {
		t.Fatal("p=1 accepted")
	}
	if _, err := StudentTQuantile(0.9, 0); err == nil {
		t.Fatal("df=0 accepted")
	}
}

func TestStudentTQuantileInvertsCDF(t *testing.T) {
	prop := func(pRaw, dfRaw uint8) bool {
		p := (float64(pRaw%98) + 1) / 100 // 0.01 .. 0.98
		df := float64(dfRaw%50) + 1
		q, err := StudentTQuantile(p, df)
		if err != nil {
			return false
		}
		back, err := StudentTCDF(q, df)
		if err != nil {
			return false
		}
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTQuantileSymmetry(t *testing.T) {
	for _, df := range []float64{1, 5, 21} {
		hi, err := StudentTQuantile(0.9, df)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := StudentTQuantile(0.1, df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hi+lo) > 1e-9 {
			t.Fatalf("df=%g: q(0.9)=%g, q(0.1)=%g not symmetric", df, hi, lo)
		}
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 12, 11, 13, 10, 12, 11, 12}
	lo, hi, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := Mean(xs)
	if !(lo < mean && mean < hi) {
		t.Fatalf("CI [%g, %g] does not contain the mean %g", lo, hi, mean)
	}
	// Wider confidence → wider interval.
	lo99, hi99, err := MeanCI(xs, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if hi99-lo99 <= hi-lo {
		t.Fatalf("99%% CI [%g, %g] not wider than 95%% [%g, %g]", lo99, hi99, lo, hi)
	}
}

func TestMeanCIValidation(t *testing.T) {
	if _, _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Fatal("singleton accepted")
	}
	if _, _, err := MeanCI([]float64{1, 2}, 1.5); err == nil {
		t.Fatal("confidence > 1 accepted")
	}
}

func TestMeanCIKnownValue(t *testing.T) {
	// n=4, mean 10, sd 2: 95% CI = 10 ± 3.182*2/2 = 10 ± 3.182.
	xs := []float64{8, 12, 8, 12}
	lo, hi, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	sd, _ := StdDev(xs)
	if math.Abs(sd-2.309401) > 1e-5 {
		t.Fatalf("sd = %v", sd)
	}
	want := 3.18245 * sd / 2
	if math.Abs((hi-lo)/2-want) > 1e-3 {
		t.Fatalf("half-width = %g, want %g", (hi-lo)/2, want)
	}
}
