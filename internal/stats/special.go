package stats

import (
	"fmt"
	"math"
)

// This file implements the special functions behind the Student t
// distribution: the regularized incomplete beta function I_x(a, b),
// evaluated with the modified Lentz continued-fraction method. The two-sided
// p-value of a t statistic with v degrees of freedom is
//
//	p = I_{v/(v+t²)}(v/2, 1/2)
//
// which is the identity statistics packages use internally.

const (
	betaMaxIterations = 300
	betaEpsilon       = 3e-14
	betaTiny          = 1e-300
)

// logBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b).
func logBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// betaContinuedFraction evaluates the continued fraction for the incomplete
// beta function by the modified Lentz method.
func betaContinuedFraction(a, b, x float64) (float64, error) {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < betaTiny {
		d = betaTiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= betaMaxIterations; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < betaTiny {
			d = betaTiny
		}
		c = 1 + aa/c
		if math.Abs(c) < betaTiny {
			c = betaTiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < betaTiny {
			d = betaTiny
		}
		c = 1 + aa/c
		if math.Abs(c) < betaTiny {
			c = betaTiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < betaEpsilon {
			return h, nil
		}
	}
	return h, fmt.Errorf("stats: incomplete beta did not converge (a=%g b=%g x=%g)", a, b, x)
}

// RegularizedIncompleteBeta returns I_x(a, b) for a, b > 0 and x in [0, 1].
func RegularizedIncompleteBeta(a, b, x float64) (float64, error) {
	switch {
	case a <= 0 || b <= 0:
		return 0, fmt.Errorf("stats: incomplete beta requires a, b > 0 (a=%g, b=%g)", a, b)
	case x < 0 || x > 1:
		return 0, fmt.Errorf("stats: incomplete beta requires x in [0,1], got %g", x)
	case x == 0:
		return 0, nil
	case x == 1:
		return 1, nil
	}
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - logBeta(a, b))
	// Use the continued fraction directly where it converges fast, and the
	// symmetry I_x(a,b) = 1 − I_{1−x}(b,a) elsewhere.
	if x < (a+1)/(a+b+2) {
		cf, err := betaContinuedFraction(a, b, x)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := betaContinuedFraction(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	return 1 - front*cf/b, nil
}

// StudentTPValue2 returns the two-sided p-value for a Student t statistic
// with df degrees of freedom: P(|T| >= |t|).
func StudentTPValue2(t, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: degrees of freedom must be positive, got %g", df)
	}
	if math.IsInf(t, 0) {
		return 0, nil
	}
	x := df / (df + t*t)
	return RegularizedIncompleteBeta(df/2, 0.5, x)
}

// StudentTCDF returns P(T <= t) for a Student t variable with df degrees of
// freedom.
func StudentTCDF(t, df float64) (float64, error) {
	p2, err := StudentTPValue2(t, df)
	if err != nil {
		return 0, err
	}
	if t >= 0 {
		return 1 - p2/2, nil
	}
	return p2 / 2, nil
}
