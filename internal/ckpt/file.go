package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileStore keeps checkpoints in a directory: one file per shard and a
// JSON manifest. Both shard writes and the manifest commit go through a
// temp-file + rename, so a process killed mid-write can never corrupt a
// committed version — at worst it leaves orphaned temp or shard files
// that the next commit ignores. Multiple processes may share the
// directory (the mpirun -recover harness points every rank at one dir);
// rename is the only publication step, so readers never observe a
// partial manifest. Every commit also keeps a per-version manifest file,
// so a later restore can fall back past a version whose shards rotted on
// disk (see LoadLatest).
type FileStore struct {
	dir string
}

// syncFile and syncDir are the durability seams of writeAtomic: the data
// must reach stable storage before the rename publishes it, and the
// rename itself must reach the directory. Tests substitute them to prove
// the publish path actually syncs; production always uses the real calls.
var (
	syncFile = func(f *os.File) error { return f.Sync() }
	syncDir  = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		defer d.Close()
		return d.Sync()
	}
)

// NewFileStore opens (creating if needed) a checkpoint directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Namespace returns a FileStore rooted in a per-job subdirectory of this
// store, so many jobs can checkpoint concurrently under one configured
// directory without their versions, shards, or manifests ever meeting: the
// version counters of different namespaces are independent, and a commit
// in one can never be observed by a restore in another. The scheduler
// points every job at Namespace(jobID) of its one checkpoint root.
//
// The name must be non-empty and contain only letters, digits, '.', '_',
// and '-', and may not be "." or ".." — anything else (a path separator,
// say) would let one job escape into another's directory, so it is
// rejected rather than sanitized. The subdirectory is prefixed "job-" so a
// namespace can never collide with the store's own MANIFEST/shard/temp
// file names.
func (s *FileStore) Namespace(job string) (*FileStore, error) {
	if err := validateNamespace(job); err != nil {
		return nil, err
	}
	return NewFileStore(filepath.Join(s.dir, "job-"+job))
}

// validateNamespace enforces the namespace grammar documented on Namespace.
func validateNamespace(job string) error {
	if job == "" {
		return fmt.Errorf("ckpt: empty namespace")
	}
	if job == "." || job == ".." {
		return fmt.Errorf("ckpt: bad namespace %q", job)
	}
	for _, r := range job {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return fmt.Errorf("ckpt: bad namespace %q: character %q not allowed", job, r)
		}
	}
	return nil
}

func (s *FileStore) shardPath(version, shard int) string {
	return filepath.Join(s.dir, fmt.Sprintf("v%06d.s%03d", version, shard))
}

func (s *FileStore) manifestPath() string {
	return filepath.Join(s.dir, "MANIFEST")
}

func (s *FileStore) versionManifestPath(version int) string {
	return filepath.Join(s.dir, fmt.Sprintf("MANIFEST.v%06d", version))
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, the classic crash-consistent publish. The temp file is fsynced
// before the rename — otherwise a crash could publish a name whose bytes
// never hit the disk — and the directory is fsynced after, so the rename
// itself survives.
func (s *FileStore) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := syncFile(tmp); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("ckpt: fsync %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("ckpt: fsync dir: %w", err)
	}
	return nil
}

func (s *FileStore) WriteShard(version, shard int, data []byte) error {
	return s.writeAtomic(s.shardPath(version, shard), data)
}

func (s *FileStore) ReadShard(version, shard int) ([]byte, error) {
	data, err := os.ReadFile(s.shardPath(version, shard))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return data, nil
}

func (s *FileStore) Commit(m Manifest) error {
	if prev, ok, err := s.Latest(); err != nil {
		return err
	} else if ok && m.Version <= prev.Version {
		return fmt.Errorf("ckpt: commit version %d not newer than committed %d", m.Version, prev.Version)
	}
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	// The per-version copy lands first: if the crash window falls between
	// the two writes, MANIFEST still names the previous good version and
	// the orphaned copy is harmless.
	if err := s.writeAtomic(s.versionManifestPath(m.Version), data); err != nil {
		return err
	}
	return s.writeAtomic(s.manifestPath(), data)
}

func (s *FileStore) Latest() (Manifest, bool, error) {
	data, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("ckpt: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("ckpt: manifest corrupt: %w", err)
	}
	return m, true, nil
}

// Manifests returns every committed manifest still present in the
// directory, newest first. Unparseable per-version files are skipped —
// they are exactly the rot this history exists to route around.
func (s *FileStore) Manifests() ([]Manifest, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var out []Manifest
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "MANIFEST.v") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		var m Manifest
		if json.Unmarshal(data, &m) != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version > out[j].Version })
	return out, nil
}
