package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FileStore keeps checkpoints in a directory: one file per shard and a
// JSON manifest. Both shard writes and the manifest commit go through a
// temp-file + rename, so a process killed mid-write can never corrupt a
// committed version — at worst it leaves orphaned temp or shard files
// that the next commit ignores. Multiple processes may share the
// directory (the mpirun -recover harness points every rank at one dir);
// rename is the only publication step, so readers never observe a
// partial manifest.
type FileStore struct {
	dir string
}

// NewFileStore opens (creating if needed) a checkpoint directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

func (s *FileStore) shardPath(version, shard int) string {
	return filepath.Join(s.dir, fmt.Sprintf("v%06d.s%03d", version, shard))
}

func (s *FileStore) manifestPath() string {
	return filepath.Join(s.dir, "MANIFEST")
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, the classic crash-consistent publish.
func (s *FileStore) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

func (s *FileStore) WriteShard(version, shard int, data []byte) error {
	return s.writeAtomic(s.shardPath(version, shard), data)
}

func (s *FileStore) ReadShard(version, shard int) ([]byte, error) {
	data, err := os.ReadFile(s.shardPath(version, shard))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return data, nil
}

func (s *FileStore) Commit(m Manifest) error {
	if prev, ok, err := s.Latest(); err != nil {
		return err
	} else if ok && m.Version <= prev.Version {
		return fmt.Errorf("ckpt: commit version %d not newer than committed %d", m.Version, prev.Version)
	}
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return s.writeAtomic(s.manifestPath(), data)
}

func (s *FileStore) Latest() (Manifest, bool, error) {
	data, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("ckpt: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("ckpt: manifest corrupt: %w", err)
	}
	return m, true, nil
}
