package ckpt

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/mpi"
)

func TestMemStoreVersioning(t *testing.T) {
	s := NewMemStore()
	if _, ok, err := s.Latest(); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	for v := 1; v <= 3; v++ {
		data := []byte(fmt.Sprintf("state-v%d", v))
		if err := s.WriteShard(v, 0, data); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(Manifest{Version: v, NP: 1, CRCs: []uint32{Checksum(data)}}); err != nil {
			t.Fatal(err)
		}
	}
	m, ok, err := s.Latest()
	if err != nil || !ok || m.Version != 3 {
		t.Fatalf("latest = %+v ok=%v err=%v, want version 3", m, ok, err)
	}
	if err := s.Commit(Manifest{Version: 2, NP: 1}); err == nil {
		t.Fatal("stale commit should be rejected")
	}
	// Older committed versions stay readable.
	data, err := s.ReadShard(1, 0)
	if err != nil || string(data) != "state-v1" {
		t.Fatalf("old shard: %q err=%v", data, err)
	}
}

func TestMemStoreShardIsolation(t *testing.T) {
	s := NewMemStore()
	buf := []byte("mutable")
	if err := s.WriteShard(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // caller mutates after write; the store must hold a copy
	got, err := s.ReadShard(1, 0)
	if err != nil || string(got) != "mutable" {
		t.Fatalf("shard aliased caller buffer: %q err=%v", got, err)
	}
	got[0] = 'Y' // and reads must not alias the stored copy either
	again, _ := s.ReadShard(1, 0)
	if string(again) != "mutable" {
		t.Fatalf("stored shard mutated through read: %q", again)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Latest(); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	shards := [][]byte{[]byte("slab-0"), []byte("slab-1")}
	crcs := make([]uint32, len(shards))
	for i, data := range shards {
		if err := s.WriteShard(1, i, data); err != nil {
			t.Fatal(err)
		}
		crcs[i] = Checksum(data)
	}
	if err := s.Commit(Manifest{Version: 1, NP: 2, CRCs: crcs}); err != nil {
		t.Fatal(err)
	}
	// A second store on the same directory (another process, in real use)
	// sees the committed version.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, ok, err := s2.Latest()
	if err != nil || !ok || m.Version != 1 || m.NP != 2 {
		t.Fatalf("latest via second store = %+v ok=%v err=%v", m, ok, err)
	}
	for i, want := range shards {
		got, err := s2.ReadShard(1, i)
		if err != nil || string(got) != string(want) {
			t.Fatalf("shard %d: %q err=%v", i, got, err)
		}
	}
}

func TestCorruptShardDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SaveLocal(s, []byte("precious state")); err != nil {
		t.Fatal(err)
	}
	// Flip bits behind the store's back, as a torn disk would.
	if err := os.WriteFile(s.shardPath(1, 0), []byte("precious stAte"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, lerr := LoadLocal(s)
	if lerr == nil || !strings.Contains(lerr.Error(), "corrupt") {
		t.Fatalf("corruption should fail the load, got %v", lerr)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type state struct {
		Step    int
		Grid    []byte
		Burning []int
	}
	in := state{Step: 7, Grid: []byte{0, 1, 2}, Burning: []int{3, 9}}
	data, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out state
	if err := Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Step != in.Step || string(out.Grid) != string(in.Grid) || len(out.Burning) != 2 {
		t.Fatalf("round trip: %+v", out)
	}
}

// TestWriteAtomicFsyncs: the crash-consistent publish is only honest if
// the temp file is synced before the rename and the directory after it.
// The seams count the calls; a SaveLocal commits one shard and two
// manifest files, so both seams must fire for every writeAtomic.
func TestWriteAtomicFsyncs(t *testing.T) {
	origFile, origDir := syncFile, syncDir
	defer func() { syncFile, syncDir = origFile, origDir }()
	fileSyncs, dirSyncs := 0, 0
	syncFile = func(f *os.File) error { fileSyncs++; return f.Sync() }
	syncDir = func(dir string) error { dirSyncs++; return origDir(dir) }

	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SaveLocal(s, []byte("durable state")); err != nil {
		t.Fatal(err)
	}
	// One shard + the per-version manifest + MANIFEST = 3 publishes.
	if fileSyncs != 3 || dirSyncs != 3 {
		t.Fatalf("fsync calls: file=%d dir=%d, want 3 each", fileSyncs, dirSyncs)
	}

	// A failing file sync must abort the publish before the rename.
	syncFile = func(*os.File) error { return fmt.Errorf("injected fsync failure") }
	if err := s.WriteShard(9, 0, []byte("x")); err == nil || !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("failed fsync should fail the write, got %v", err)
	}
	if _, err := s.ReadShard(9, 0); err == nil {
		t.Fatal("aborted publish must not leave the shard visible")
	}
}

// TestLoadLatestFallsBackOnCorruption: when the newest version's shards
// rot on disk, a restore downgrades to the previous committed version
// instead of failing — every rank agrees on the downgraded version.
func TestLoadLatestFallsBackOnCorruption(t *testing.T) {
	dir := t.TempDir()
	const np = 2
	err := mpi.Run(np, func(c *mpi.Comm) error {
		s, err := NewFileStore(dir)
		if err != nil {
			return err
		}
		for gen := 0; gen < 2; gen++ {
			shard, err := Encode([]int{c.Rank(), gen})
			if err != nil {
				return err
			}
			if _, err := Save(c, s, shard); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Rot version 2's shard 1 behind the store's back (rank 0 only, so
		// the damage happens exactly once).
		if c.Rank() == 0 {
			if err := os.WriteFile(s.shardPath(2, 1), []byte("bitrot"), 0o644); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		m, shards, ok, err := LoadLatest(c, s)
		if err != nil {
			return fmt.Errorf("restore should fall back, got %w", err)
		}
		if !ok || m.Version != 1 || len(shards) != np {
			return fmt.Errorf("fell back to m=%+v ok=%v, want version 1", m, ok)
		}
		for r, data := range shards {
			var got []int
			if err := Decode(data, &got); err != nil {
				return err
			}
			if len(got) != 2 || got[0] != r || got[1] != 0 {
				return fmt.Errorf("shard %d decoded to %v, want gen-0 state", r, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLoadLatestAllVersionsCorrupt: with no intact version left, the
// restore reports the newest version's corruption rather than inventing
// state.
func TestLoadLatestAllVersionsCorrupt(t *testing.T) {
	dir := t.TempDir()
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := NewFileStore(dir)
		if err != nil {
			return err
		}
		for gen := 0; gen < 2; gen++ {
			if _, err := Save(c, s, []byte{byte(gen)}); err != nil {
				return err
			}
		}
		for v := 1; v <= 2; v++ {
			if err := os.WriteFile(s.shardPath(v, 0), []byte("rot"), 0o644); err != nil {
				return err
			}
		}
		_, _, _, lerr := LoadLatest(c, s)
		if lerr == nil || !strings.Contains(lerr.Error(), "corrupt") {
			return fmt.Errorf("restore with no intact version should fail, got %v", lerr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveSaveLoad(t *testing.T) {
	store := NewMemStore()
	const np = 4
	// Two generations of checkpoints, then every rank restores the newest
	// and sees all shards.
	err := mpi.Run(np, func(c *mpi.Comm) error {
		for gen := 0; gen < 2; gen++ {
			shard, err := Encode([]int{c.Rank(), gen})
			if err != nil {
				return err
			}
			v, err := Save(c, store, shard)
			if err != nil {
				return err
			}
			if v != gen+1 {
				return fmt.Errorf("save version %d, want %d", v, gen+1)
			}
		}
		m, shards, ok, err := LoadLatest(c, store)
		if err != nil {
			return err
		}
		if !ok || m.Version != 2 || m.NP != np || len(shards) != np {
			return fmt.Errorf("load: m=%+v ok=%v len=%d", m, ok, len(shards))
		}
		for r, data := range shards {
			var got []int
			if err := Decode(data, &got); err != nil {
				return err
			}
			if len(got) != 2 || got[0] != r || got[1] != 1 {
				return fmt.Errorf("shard %d decoded to %v", r, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveLoadEmpty(t *testing.T) {
	store := NewMemStore()
	err := mpi.Run(3, func(c *mpi.Comm) error {
		_, shards, ok, err := LoadLatest(c, store)
		if err != nil {
			return err
		}
		if ok || shards != nil {
			return fmt.Errorf("empty store should restore nothing, got ok=%v", ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentShardWrites(t *testing.T) {
	store := NewMemStore()
	const np = 8
	var wg sync.WaitGroup
	wg.Add(np)
	for r := 0; r < np; r++ {
		go func(r int) {
			defer wg.Done()
			data := []byte(fmt.Sprintf("shard-%d", r))
			if err := store.WriteShard(1, r, data); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < np; r++ {
		got, err := store.ReadShard(1, r)
		if err != nil || string(got) != fmt.Sprintf("shard-%d", r) {
			t.Fatalf("shard %d: %q err=%v", r, got, err)
		}
	}
}

// TestNamespaceValidation pins the namespace grammar: anything that could
// navigate outside the per-job subdirectory is rejected, not sanitized.
func TestNamespaceValidation(t *testing.T) {
	root, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, ok := range []string{"job-17", "a", "A.b_c-9", "0042"} {
		if _, err := root.Namespace(ok); err != nil {
			t.Errorf("Namespace(%q) rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a\\b", "../escape", "a b", "a\x00b", "job/../../etc"} {
		if _, err := root.Namespace(bad); err == nil {
			t.Errorf("Namespace(%q) accepted", bad)
		}
	}
	// "MANIFEST" as a job name must not collide with the root store's own
	// manifest file: the namespace lands in a job- prefixed subdirectory.
	ns, err := root.Namespace("MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.WriteShard(1, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := ns.Commit(Manifest{Version: 1, NP: 1, CRCs: []uint32{Checksum([]byte("x"))}}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := root.Latest(); err != nil || ok {
		t.Fatalf("root store observed a namespaced commit: ok=%v err=%v", ok, err)
	}
}

// TestNamespaceConcurrentJobs is the multi-tenant FileStore contract: many
// jobs checkpointing in parallel through per-job namespaces of ONE root
// directory, each running collective Save and LoadLatest on its own small
// world, never cross-read a shard or corrupt each other's manifests. This
// is exactly the scheduler's usage: one configured -ckpt root, one
// Namespace(jobID) store per running job.
func TestNamespaceConcurrentJobs(t *testing.T) {
	root, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const jobs, versions = 8, 5
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ns, err := root.Namespace(fmt.Sprintf("job-%d", j))
			if err != nil {
				errs[j] = err
				return
			}
			errs[j] = mpi.Run(2, func(c *mpi.Comm) error {
				for v := 1; v <= versions; v++ {
					shard := []byte(fmt.Sprintf("job %d rank %d version %d", j, c.Rank(), v))
					if _, err := Save(c, ns, shard); err != nil {
						return fmt.Errorf("save v%d: %w", v, err)
					}
					m, shards, ok, err := LoadLatest(c, ns)
					if err != nil || !ok {
						return fmt.Errorf("load v%d: ok=%v err=%w", v, ok, err)
					}
					if m.Version != v || m.NP != 2 {
						return fmt.Errorf("job %d loaded manifest v%d np%d, want v%d np2", j, m.Version, m.NP, v)
					}
					for r, sh := range shards {
						want := fmt.Sprintf("job %d rank %d version %d", j, r, v)
						if string(sh) != want {
							return fmt.Errorf("cross-read: job %d got shard %q, want %q", j, sh, want)
						}
					}
				}
				return nil
			})
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", j, err)
		}
	}
	// Every namespace holds exactly its own committed history.
	for j := 0; j < jobs; j++ {
		ns, err := root.Namespace(fmt.Sprintf("job-%d", j))
		if err != nil {
			t.Fatal(err)
		}
		m, ok, err := ns.Latest()
		if err != nil || !ok || m.Version != versions {
			t.Errorf("job %d: Latest = v%d ok=%v err=%v, want v%d", j, m.Version, ok, err, versions)
		}
	}
}
