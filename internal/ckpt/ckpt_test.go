package ckpt

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/mpi"
)

func TestMemStoreVersioning(t *testing.T) {
	s := NewMemStore()
	if _, ok, err := s.Latest(); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	for v := 1; v <= 3; v++ {
		data := []byte(fmt.Sprintf("state-v%d", v))
		if err := s.WriteShard(v, 0, data); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(Manifest{Version: v, NP: 1, CRCs: []uint32{Checksum(data)}}); err != nil {
			t.Fatal(err)
		}
	}
	m, ok, err := s.Latest()
	if err != nil || !ok || m.Version != 3 {
		t.Fatalf("latest = %+v ok=%v err=%v, want version 3", m, ok, err)
	}
	if err := s.Commit(Manifest{Version: 2, NP: 1}); err == nil {
		t.Fatal("stale commit should be rejected")
	}
	// Older committed versions stay readable.
	data, err := s.ReadShard(1, 0)
	if err != nil || string(data) != "state-v1" {
		t.Fatalf("old shard: %q err=%v", data, err)
	}
}

func TestMemStoreShardIsolation(t *testing.T) {
	s := NewMemStore()
	buf := []byte("mutable")
	if err := s.WriteShard(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // caller mutates after write; the store must hold a copy
	got, err := s.ReadShard(1, 0)
	if err != nil || string(got) != "mutable" {
		t.Fatalf("shard aliased caller buffer: %q err=%v", got, err)
	}
	got[0] = 'Y' // and reads must not alias the stored copy either
	again, _ := s.ReadShard(1, 0)
	if string(again) != "mutable" {
		t.Fatalf("stored shard mutated through read: %q", again)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Latest(); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	shards := [][]byte{[]byte("slab-0"), []byte("slab-1")}
	crcs := make([]uint32, len(shards))
	for i, data := range shards {
		if err := s.WriteShard(1, i, data); err != nil {
			t.Fatal(err)
		}
		crcs[i] = Checksum(data)
	}
	if err := s.Commit(Manifest{Version: 1, NP: 2, CRCs: crcs}); err != nil {
		t.Fatal(err)
	}
	// A second store on the same directory (another process, in real use)
	// sees the committed version.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, ok, err := s2.Latest()
	if err != nil || !ok || m.Version != 1 || m.NP != 2 {
		t.Fatalf("latest via second store = %+v ok=%v err=%v", m, ok, err)
	}
	for i, want := range shards {
		got, err := s2.ReadShard(1, i)
		if err != nil || string(got) != string(want) {
			t.Fatalf("shard %d: %q err=%v", i, got, err)
		}
	}
}

func TestCorruptShardDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SaveLocal(s, []byte("precious state")); err != nil {
		t.Fatal(err)
	}
	// Flip bits behind the store's back, as a torn disk would.
	if err := os.WriteFile(s.shardPath(1, 0), []byte("precious stAte"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, lerr := LoadLocal(s)
	if lerr == nil || !strings.Contains(lerr.Error(), "corrupt") {
		t.Fatalf("corruption should fail the load, got %v", lerr)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type state struct {
		Step    int
		Grid    []byte
		Burning []int
	}
	in := state{Step: 7, Grid: []byte{0, 1, 2}, Burning: []int{3, 9}}
	data, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out state
	if err := Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Step != in.Step || string(out.Grid) != string(in.Grid) || len(out.Burning) != 2 {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestCollectiveSaveLoad(t *testing.T) {
	store := NewMemStore()
	const np = 4
	// Two generations of checkpoints, then every rank restores the newest
	// and sees all shards.
	err := mpi.Run(np, func(c *mpi.Comm) error {
		for gen := 0; gen < 2; gen++ {
			shard, err := Encode([]int{c.Rank(), gen})
			if err != nil {
				return err
			}
			v, err := Save(c, store, shard)
			if err != nil {
				return err
			}
			if v != gen+1 {
				return fmt.Errorf("save version %d, want %d", v, gen+1)
			}
		}
		m, shards, ok, err := LoadLatest(c, store)
		if err != nil {
			return err
		}
		if !ok || m.Version != 2 || m.NP != np || len(shards) != np {
			return fmt.Errorf("load: m=%+v ok=%v len=%d", m, ok, len(shards))
		}
		for r, data := range shards {
			var got []int
			if err := Decode(data, &got); err != nil {
				return err
			}
			if len(got) != 2 || got[0] != r || got[1] != 1 {
				return fmt.Errorf("shard %d decoded to %v", r, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveLoadEmpty(t *testing.T) {
	store := NewMemStore()
	err := mpi.Run(3, func(c *mpi.Comm) error {
		_, shards, ok, err := LoadLatest(c, store)
		if err != nil {
			return err
		}
		if ok || shards != nil {
			return fmt.Errorf("empty store should restore nothing, got ok=%v", ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentShardWrites(t *testing.T) {
	store := NewMemStore()
	const np = 8
	var wg sync.WaitGroup
	wg.Add(np)
	for r := 0; r < np; r++ {
		go func(r int) {
			defer wg.Done()
			data := []byte(fmt.Sprintf("shard-%d", r))
			if err := store.WriteShard(1, r, data); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < np; r++ {
		got, err := store.ReadShard(1, r)
		if err != nil || string(got) != fmt.Sprintf("shard-%d", r) {
			t.Fatalf("shard %d: %q err=%v", r, got, err)
		}
	}
}
