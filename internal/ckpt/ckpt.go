// Package ckpt provides versioned checkpoint stores and collective
// checkpoint/restore helpers for recovery-mode MPI programs (see
// mpi.WithRecovery). A checkpoint is one committed version: one opaque
// shard per rank plus a manifest recording how many shards exist and a
// CRC for each. Commit is atomic — a version either has a complete
// manifest or is invisible to Latest — so a rank that dies mid-save can
// never leave a half-checkpoint that a restore would trust. Shards are
// deliberately self-describing blobs: after a Shrink the surviving ranks
// re-read ALL shards of the last committed version and re-decompose the
// state over the smaller world, so the shard count of a checkpoint is
// independent of the world size that restores it.
package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sync"
)

// Manifest describes one committed checkpoint version.
type Manifest struct {
	Version int      // strictly increasing; Latest returns the largest
	NP      int      // number of shards (the world size at save time)
	CRCs    []uint32 // CRC-32 (IEEE) of each shard, indexed by shard
}

// Store is versioned shard storage. WriteShard calls for one version may
// run concurrently (one per rank); Commit publishes the version and must
// be atomic with respect to Latest.
type Store interface {
	WriteShard(version, shard int, data []byte) error
	ReadShard(version, shard int) ([]byte, error)
	Commit(m Manifest) error
	// Latest returns the newest committed manifest; ok is false when no
	// version has ever been committed.
	Latest() (m Manifest, ok bool, err error)
}

// VersionedStore is implemented by stores that retain the manifests of
// earlier committed versions. LoadLatest uses the history to fall back
// past a version whose shards no longer verify — a half-rotted newest
// checkpoint downgrades the restore instead of dooming it.
type VersionedStore interface {
	Store
	// Manifests returns all committed manifests, newest first.
	Manifests() ([]Manifest, error)
}

// Checksum is the shard checksum the manifests record.
func Checksum(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// Encode serializes an application state value into a shard payload.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("ckpt: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a shard payload into ptr.
func Decode(data []byte, ptr any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(ptr); err != nil {
		return fmt.Errorf("ckpt: decode: %w", err)
	}
	return nil
}

// MemStore is an in-memory Store, shared by all ranks of an in-process
// world (and by the respawn-free TCP harness, where every rank lives in
// one test process). Safe for concurrent use.
type MemStore struct {
	mu      sync.Mutex
	shards  map[[2]int][]byte // (version, shard) -> payload
	history []Manifest        // committed manifests, oldest first
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{shards: make(map[[2]int][]byte)}
}

func (s *MemStore) WriteShard(version, shard int, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.shards[[2]int{version, shard}] = cp
	s.mu.Unlock()
	return nil
}

func (s *MemStore) ReadShard(version, shard int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.shards[[2]int{version, shard}]
	if !ok {
		return nil, fmt.Errorf("ckpt: no shard %d for version %d", shard, version)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

func (s *MemStore) Commit(m Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.history); n > 0 && m.Version <= s.history[n-1].Version {
		return fmt.Errorf("ckpt: commit version %d not newer than committed %d", m.Version, s.history[n-1].Version)
	}
	s.history = append(s.history, m)
	return nil
}

func (s *MemStore) Latest() (Manifest, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.history) == 0 {
		return Manifest{}, false, nil
	}
	return s.history[len(s.history)-1], true, nil
}

// Manifests returns all committed manifests, newest first.
func (s *MemStore) Manifests() ([]Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Manifest, len(s.history))
	for i, m := range s.history {
		out[len(s.history)-1-i] = m
	}
	return out, nil
}
