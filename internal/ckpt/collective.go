package ckpt

import (
	"fmt"

	"repro/internal/mpi"
)

// Collective checkpoint/restore. Save and LoadLatest are collectives in
// the MPI sense: every rank of the communicator must call them, in the
// same order relative to its other collectives. Both are safe to call
// from recovery-mode worlds — a rank failure mid-call surfaces as the
// underlying collective's retryable error, and because Commit is the
// only publication step (root-only, after every shard landed), an
// interrupted Save never produces a version a later restore would see.

// saveStatus is one rank's contribution to the commit decision.
type saveStatus struct {
	CRC uint32
	OK  bool
	Msg string
}

// Save checkpoints one shard per rank as a single new version and
// returns the committed version number. The root picks the version
// (latest + 1), every rank writes its own shard, and the root commits
// the manifest only after all ranks report a successful write.
func Save(c *mpi.Comm, store Store, shard []byte) (int, error) {
	version := 0
	if c.Rank() == 0 {
		m, ok, err := store.Latest()
		if err != nil {
			return 0, err
		}
		version = 1
		if ok {
			version = m.Version + 1
		}
	}
	version, err := mpi.Bcast(c, version, 0)
	if err != nil {
		return 0, err
	}

	st := saveStatus{CRC: Checksum(shard), OK: true}
	if werr := store.WriteShard(version, c.Rank(), shard); werr != nil {
		st.OK = false
		st.Msg = werr.Error()
	}
	all, err := mpi.Gather(c, st, 0)
	if err != nil {
		return 0, err
	}

	commitMsg := ""
	if c.Rank() == 0 {
		crcs := make([]uint32, len(all))
		for r, s := range all {
			if !s.OK {
				commitMsg = fmt.Sprintf("ckpt: rank %d shard write failed: %s", r, s.Msg)
				break
			}
			crcs[r] = s.CRC
		}
		if commitMsg == "" {
			if cerr := store.Commit(Manifest{Version: version, NP: c.Size(), CRCs: crcs}); cerr != nil {
				commitMsg = cerr.Error()
			}
		}
	}
	commitMsg, err = mpi.Bcast(c, commitMsg, 0)
	if err != nil {
		return 0, err
	}
	if commitMsg != "" {
		return 0, fmt.Errorf("%s", commitMsg)
	}
	return version, nil
}

// verifyVersion reads every shard of a committed version back and checks
// it against the manifest CRC, reporting the first mismatch.
func verifyVersion(store Store, m Manifest) error {
	for s := 0; s < m.NP; s++ {
		data, err := store.ReadShard(m.Version, s)
		if err != nil {
			return err
		}
		if got := Checksum(data); got != m.CRCs[s] {
			return fmt.Errorf(
				"ckpt: version %d shard %d corrupt: crc %08x, manifest says %08x", m.Version, s, got, m.CRCs[s])
		}
	}
	return nil
}

// fallbackVersion walks older committed manifests, newest first, and
// returns the first version whose shards are all intact. Stores without
// history (plain Store) surface the original corruption unchanged.
func fallbackVersion(store Store, bad Manifest, cause error) (Manifest, error) {
	vs, ok := store.(VersionedStore)
	if !ok {
		return Manifest{}, cause
	}
	all, err := vs.Manifests()
	if err != nil {
		return Manifest{}, cause
	}
	for _, m := range all {
		if m.Version >= bad.Version {
			continue
		}
		if verifyVersion(store, m) == nil {
			return m, nil
		}
	}
	return Manifest{}, cause
}

// LoadLatest restores the newest committed checkpoint: every rank
// receives the manifest and ALL of its shards (checked against the
// manifest CRCs), so the caller can re-decompose state saved by a larger
// world over the current, possibly shrunken one. ok is false — with nil
// error and nil shards — when no checkpoint has ever been committed.
// When the newest version fails verification and the store retains
// manifest history (VersionedStore), the restore falls back to the
// newest earlier version that is still intact: the root verifies and
// picks the version, so every rank restores the same state.
func LoadLatest(c *mpi.Comm, store Store) (Manifest, [][]byte, bool, error) {
	type latest struct {
		M  Manifest
		OK bool
	}
	var l latest
	if c.Rank() == 0 {
		m, ok, err := store.Latest()
		if err != nil {
			return Manifest{}, nil, false, err
		}
		if ok {
			if verr := verifyVersion(store, m); verr != nil {
				if m, err = fallbackVersion(store, m, verr); err != nil {
					return Manifest{}, nil, false, err
				}
			}
		}
		l = latest{M: m, OK: ok}
	}
	l, err := mpi.Bcast(c, l, 0)
	if err != nil {
		return Manifest{}, nil, false, err
	}
	if !l.OK {
		return Manifest{}, nil, false, nil
	}
	m := l.M
	shards := make([][]byte, m.NP)
	for s := 0; s < m.NP; s++ {
		data, err := store.ReadShard(m.Version, s)
		if err != nil {
			return Manifest{}, nil, false, err
		}
		if got := Checksum(data); got != m.CRCs[s] {
			return Manifest{}, nil, false, fmt.Errorf(
				"ckpt: version %d shard %d corrupt: crc %08x, manifest says %08x", m.Version, s, got, m.CRCs[s])
		}
		shards[s] = data
	}
	return m, shards, true, nil
}

// SaveLocal commits a single-shard version from one rank, no collective
// involved: the master-worker exemplar checkpoints master-only state
// this way, so workers keep streaming results while the master saves.
func SaveLocal(store Store, shard []byte) (int, error) {
	m, ok, err := store.Latest()
	if err != nil {
		return 0, err
	}
	version := 1
	if ok {
		version = m.Version + 1
	}
	if err := store.WriteShard(version, 0, shard); err != nil {
		return 0, err
	}
	if err := store.Commit(Manifest{Version: version, NP: 1, CRCs: []uint32{Checksum(shard)}}); err != nil {
		return 0, err
	}
	return version, nil
}

// LoadLocal reads back the newest SaveLocal checkpoint. ok is false when
// none exists.
func LoadLocal(store Store) ([]byte, int, bool, error) {
	m, ok, err := store.Latest()
	if err != nil || !ok {
		return nil, 0, false, err
	}
	data, err := store.ReadShard(m.Version, 0)
	if err != nil {
		return nil, 0, false, err
	}
	if got := Checksum(data); len(m.CRCs) != 1 || got != m.CRCs[0] {
		return nil, 0, false, fmt.Errorf("ckpt: version %d shard 0 corrupt", m.Version)
	}
	return data, m.Version, true, nil
}
