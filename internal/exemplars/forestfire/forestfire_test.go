package forestfire

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
)

func TestSimulateProbabilityZeroBurnsOnlyTheStruckTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Simulate(11, 11, 0, rng)
	if want := 1.0 / 121.0; r.BurnedFraction != want {
		t.Fatalf("burned fraction = %v, want %v", r.BurnedFraction, want)
	}
	if r.Steps != 1 {
		t.Fatalf("steps = %d, want 1", r.Steps)
	}
}

func TestSimulateProbabilityOneBurnsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Simulate(9, 13, 1, rng)
	if r.BurnedFraction != 1 {
		t.Fatalf("burned fraction = %v, want 1", r.BurnedFraction)
	}
	// The fire front moves one Manhattan step per time step from the
	// center, so the duration is the max Manhattan distance + 1.
	wantSteps := (9-1)/2 + (13-1)/2 + 1 // wait for farthest corner
	if r.Steps != wantSteps {
		t.Fatalf("steps = %d, want %d", r.Steps, wantSteps)
	}
}

func TestSimulate1x1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Simulate(1, 1, 0.5, rng)
	if r.BurnedFraction != 1 || r.Steps != 1 {
		t.Fatalf("1x1 = %+v", r)
	}
}

func TestSimulateFractionInRangeProperty(t *testing.T) {
	prop := func(seed int64, probRaw uint8, rRaw, cRaw uint8) bool {
		rows := int(rRaw%20) + 1
		cols := int(cRaw%20) + 1
		prob := float64(probRaw%101) / 100
		rng := rand.New(rand.NewSource(seed))
		r := Simulate(rows, cols, prob, rng)
		if r.BurnedFraction <= 0 || r.BurnedFraction > 1 {
			return false
		}
		// At least the struck tree burns.
		return r.BurnedFraction >= 1/float64(rows*cols) && r.Steps >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepValidation(t *testing.T) {
	bad := []Params{
		{Rows: 0, Cols: 5, Probs: []float64{0.5}, Trials: 1},
		{Rows: 5, Cols: 5, Probs: nil, Trials: 1},
		{Rows: 5, Cols: 5, Probs: []float64{1.5}, Trials: 1},
		{Rows: 5, Cols: 5, Probs: []float64{0.5}, Trials: 0},
	}
	for i, p := range bad {
		if _, err := Sweep(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSweepCurveShape(t *testing.T) {
	p := DefaultParams()
	points, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(p.Probs) {
		t.Fatalf("%d points", len(points))
	}
	// The burn curve is the module's headline plot: low at small p, ~100%
	// at p=1, and broadly increasing.
	first, last := points[0], points[len(points)-1]
	if first.AvgBurned > 0.2 {
		t.Fatalf("p=%.1f burned %v, expected a small fire", first.Prob, first.AvgBurned)
	}
	if last.AvgBurned != 1 {
		t.Fatalf("p=1 burned %v, want 1", last.AvgBurned)
	}
	if !(last.AvgBurned > first.AvgBurned) {
		t.Fatal("burn curve not increasing end to end")
	}
	// Allow small non-monotonic jitter between adjacent points, but the
	// curve must rise overall: each point at least 90% of the running max.
	runMax := 0.0
	for _, pt := range points {
		if pt.AvgBurned < runMax*0.9 {
			t.Fatalf("curve dips too much at p=%.2f: %v after max %v", pt.Prob, pt.AvgBurned, runMax)
		}
		if pt.AvgBurned > runMax {
			runMax = pt.AvgBurned
		}
	}
}

func TestSweepSharedIdenticalToSequential(t *testing.T) {
	p := DefaultParams()
	p.Trials = 12
	want, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		got, err := SweepShared(p, threads)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("threads=%d: curves differ", threads)
		}
	}
}

func TestSweepMPIMatchesSequential(t *testing.T) {
	p := DefaultParams()
	p.Trials = 10
	want, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{1, 2, 5} {
		var mu sync.Mutex
		curves := map[int][]SweepPoint{}
		err := mpi.Run(np, func(c *mpi.Comm) error {
			got, err := SweepMPI(c, p)
			if err != nil {
				return err
			}
			mu.Lock()
			curves[c.Rank()] = got
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for rank, got := range curves {
			for i := range want {
				if math.Abs(got[i].AvgBurned-want[i].AvgBurned) > 1e-12 ||
					math.Abs(got[i].AvgSteps-want[i].AvgSteps) > 1e-9 {
					t.Fatalf("np=%d rank=%d point %d: %+v != %+v", np, rank, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSweepMPIValidation(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := SweepMPI(c, Params{}); err == nil {
			t.Error("invalid params accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFormatCurve(t *testing.T) {
	points := []SweepPoint{{Prob: 0.5, AvgBurned: 0.25, AvgSteps: 7.5}}
	out := FormatCurve(points)
	if !strings.Contains(out, "0.50") || !strings.Contains(out, "25.0%") || !strings.Contains(out, "7.5") {
		t.Fatalf("FormatCurve = %q", out)
	}
}

func TestDefaultParamsSweepTenProbabilities(t *testing.T) {
	p := DefaultParams()
	if len(p.Probs) != 10 || p.Probs[0] != 0.1 || p.Probs[9] != 1.0 {
		t.Fatalf("default probs = %v", p.Probs)
	}
}
