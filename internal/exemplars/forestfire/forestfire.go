// Package forestfire implements the Forest Fire Simulation exemplar from
// the paper's distributed-memory module (the Jupyter notebook served from
// the Chameleon cluster). A forest is a rectangular grid of trees; the
// center tree is struck by lightning; each burning tree tries once to
// ignite each of its four neighbours with probability p, then burns out.
// The simulation runs until no tree is burning and reports how much of the
// forest burned and how long the fire lasted.
//
// The interesting output is statistical: sweeping the spread probability
// and averaging over many Monte Carlo trials exposes a phase transition —
// below a critical probability fires die out locally, above it they consume
// the forest. The trials are independent, so the sweep parallelizes
// naturally across ranks, and because each trial derives its own RNG seed
// from the trial index, every version simulates exactly the same fires: the
// shared-memory curve is bit-identical to the sequential one, and the
// message-passing curve matches up to floating-point summation order.
package forestfire

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/mpi"
	"repro/internal/shm"
)

// Cell states.
type cellState uint8

const (
	stateTree cellState = iota
	stateBurning
	stateBurned
)

// Params configures a simulation sweep.
type Params struct {
	Rows, Cols int
	// Probs are the spread probabilities to sweep.
	Probs []float64
	// Trials is the number of Monte Carlo trials per probability.
	Trials int
	// Seed is the base seed; each (probability, trial) pair derives its
	// own generator from it.
	Seed int64
}

// DefaultParams is the notebook's default sweep at a test-friendly scale.
func DefaultParams() Params {
	probs := make([]float64, 10)
	for i := range probs {
		probs[i] = float64(i+1) / 10
	}
	return Params{Rows: 21, Cols: 21, Probs: probs, Trials: 40, Seed: 11}
}

func (p Params) validate() error {
	if p.Rows < 1 || p.Cols < 1 {
		return errors.New("forestfire: grid must be at least 1x1")
	}
	if len(p.Probs) == 0 {
		return errors.New("forestfire: no spread probabilities to sweep")
	}
	for _, q := range p.Probs {
		if q < 0 || q > 1 {
			return fmt.Errorf("forestfire: probability %g outside [0,1]", q)
		}
	}
	if p.Trials < 1 {
		return errors.New("forestfire: need at least 1 trial")
	}
	return nil
}

// TrialResult is the outcome of one fire.
type TrialResult struct {
	BurnedFraction float64
	Steps          int
}

// Simulate burns one forest with the given spread probability, drawing
// randomness from rng.
func Simulate(rows, cols int, prob float64, rng *rand.Rand) TrialResult {
	grid := make([]cellState, rows*cols)
	idx := func(r, c int) int { return r*cols + c }

	// Lightning strikes the center tree.
	burning := []int{idx(rows/2, cols/2)}
	grid[burning[0]] = stateBurning

	steps := 0
	burned := 0
	for len(burning) > 0 {
		steps++
		var next []int
		for _, cell := range burning {
			r, c := cell/cols, cell%cols
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := r+d[0], c+d[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				n := idx(nr, nc)
				if grid[n] == stateTree && rng.Float64() < prob {
					grid[n] = stateBurning
					next = append(next, n)
				}
			}
			grid[cell] = stateBurned
			burned++
		}
		burning = next
	}
	return TrialResult{
		BurnedFraction: float64(burned) / float64(rows*cols),
		Steps:          steps,
	}
}

// SweepPoint is one row of the burn curve: the averages over all trials at
// one spread probability.
type SweepPoint struct {
	Prob      float64
	AvgBurned float64 // mean burned fraction
	AvgSteps  float64 // mean fire duration in steps
}

// trialSeed gives every (probability index, trial) pair its own generator
// so the decomposition of trials over workers cannot change the results.
func trialSeed(base int64, probIdx, trial int) int64 {
	const g1 = int64(0x9E3779B97F4A7C15 >> 1)
	const g2 = int64(0xC2B2AE3D27D4EB4F >> 1)
	return base + int64(probIdx)*g1 + int64(trial)*g2
}

// runTrial executes one (probIdx, trial) cell of the sweep.
func (p Params) runTrial(probIdx, trial int) TrialResult {
	rng := rand.New(rand.NewSource(trialSeed(p.Seed, probIdx, trial)))
	return Simulate(p.Rows, p.Cols, p.Probs[probIdx], rng)
}

// accumulate folds per-trial results into sweep points.
func (p Params) accumulate(sums []TrialResult) []SweepPoint {
	points := make([]SweepPoint, len(p.Probs))
	for i := range points {
		points[i] = SweepPoint{
			Prob:      p.Probs[i],
			AvgBurned: sums[i].BurnedFraction / float64(p.Trials),
			AvgSteps:  float64(sums[i].Steps) / float64(p.Trials),
		}
	}
	return points
}

// Sweep runs the full burn-curve study sequentially.
func Sweep(p Params) ([]SweepPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	sums := make([]TrialResult, len(p.Probs))
	for pi := range p.Probs {
		for t := 0; t < p.Trials; t++ {
			r := p.runTrial(pi, t)
			sums[pi].BurnedFraction += r.BurnedFraction
			sums[pi].Steps += r.Steps
		}
	}
	return p.accumulate(sums), nil
}

// SweepShared distributes the (probability, trial) cells across threads
// with a dynamic schedule (fire durations vary wildly near the critical
// probability).
func SweepShared(p Params, numThreads int) ([]SweepPoint, error) {
	return SweepSharedSched(p, numThreads, shm.Dynamic(1))
}

// SweepSharedSched is SweepShared with an explicit loop schedule; the
// ablation benchmarks use it to compare static and dynamic decomposition
// of the highly imbalanced trial workload.
func SweepSharedSched(p Params, numThreads int, sched shm.Schedule) ([]SweepPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	cells := len(p.Probs) * p.Trials
	results := make([]TrialResult, cells)
	shm.ParallelFor(numThreads, cells, sched, func(i int) {
		results[i] = p.runTrial(i/p.Trials, i%p.Trials)
	})
	sums := make([]TrialResult, len(p.Probs))
	for i, r := range results {
		sums[i/p.Trials].BurnedFraction += r.BurnedFraction
		sums[i/p.Trials].Steps += r.Steps
	}
	return p.accumulate(sums), nil
}

// SweepMPI distributes the trial cells cyclically across ranks and reduces
// the per-probability sums; every rank returns the full curve. The trial
// kernel runs under the Compute gate so platform models apply.
func SweepMPI(c *mpi.Comm, p Params) ([]SweepPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	cells := len(p.Probs) * p.Trials
	burnedSums := make([]float64, len(p.Probs))
	stepSums := make([]float64, len(p.Probs))
	c.Compute(func() {
		for i := c.Rank(); i < cells; i += c.Size() {
			r := p.runTrial(i/p.Trials, i%p.Trials)
			burnedSums[i/p.Trials] += r.BurnedFraction
			stepSums[i/p.Trials] += float64(r.Steps)
		}
	})
	burnedAll, err := mpi.Allreduce(c, burnedSums, mpi.CombineSlices[float64](mpi.Sum))
	if err != nil {
		return nil, err
	}
	stepsAll, err := mpi.Allreduce(c, stepSums, mpi.CombineSlices[float64](mpi.Sum))
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, len(p.Probs))
	for i := range points {
		points[i] = SweepPoint{
			Prob:      p.Probs[i],
			AvgBurned: burnedAll[i] / float64(p.Trials),
			AvgSteps:  stepsAll[i] / float64(p.Trials),
		}
	}
	return points, nil
}

// FormatCurve renders the burn curve as the table the notebook prints.
func FormatCurve(points []SweepPoint) string {
	out := fmt.Sprintf("%12s %14s %12s\n", "spread prob", "avg % burned", "avg steps")
	for _, pt := range points {
		out += fmt.Sprintf("%12.2f %13.1f%% %12.1f\n", pt.Prob, 100*pt.AvgBurned, pt.AvgSteps)
	}
	return out
}
