package forestfire

import (
	"fmt"

	"repro/internal/mpi"
)

// SimulateDomainOverlap is SimulateDomainMPI restructured to overlap
// communication with computation, the way production stencil codes hide
// their halo latency:
//
//	1. post the step's termination check as a nonblocking IAllreduce;
//	2. generate the boundary rows' ignition attempts first and post the
//	   halo Isend/Irecv immediately;
//	3. generate and apply the interior attempts while the halo and the
//	   allreduce are still in flight;
//	4. Waitall the halo receives, apply the neighbours' attacks, and Wait
//	   the termination check last.
//
// Because ignition decisions are a pure hash of (seed, step, from, to), the
// reordering cannot change any outcome: every rank returns the same
// TrialResult as SimulateDomainMPI and the sequential SimulateHash, cell for
// cell, step for step. The one structural difference is the final iteration:
// the blocking version learns "no fire anywhere" before sending, while this
// version has already exchanged (empty) halos by the time the termination
// check lands — the message pattern stays identical across ranks, so nothing
// strays.
func SimulateDomainOverlap(c *mpi.Comm, rows, cols int, prob float64, seed int64) (TrialResult, error) {
	if rows < 1 || cols < 1 {
		return TrialResult{}, fmt.Errorf("forestfire: grid must be at least 1x1")
	}
	// 1-D row-slab decomposition: the neighbours are simply rank±1.
	down, up := mpi.ProcNull, mpi.ProcNull
	if c.Rank() > 0 {
		down = c.Rank() - 1
	}
	if c.Rank() < c.Size()-1 {
		up = c.Rank() + 1
	}

	rowLo, rowHi := blockRows(rows, c.Rank(), c.Size())
	owns := func(cell int) bool {
		r := cell / cols
		return r >= rowLo && r < rowHi
	}
	local := make([]cellState, (rowHi-rowLo)*cols)
	at := func(cell int) *cellState { return &local[cell-rowLo*cols] }

	center := (rows/2)*cols + cols/2
	var burning []int
	if owns(center) {
		*at(center) = stateBurning
		burning = append(burning, center)
	}

	steps := 0
	burnedLocal := 0
	const tagHalo = 11
	for {
		// (1) Termination check for this step, posted — not waited.
		anyBurning := 0
		term := mpi.IAllreduce(c, boolToInt(len(burning) > 0), mpi.Combine[int](mpi.Max), &anyBurning)
		step := steps + 1

		// (2) Boundary rows first: their attacks are the only ones that can
		// cross the slab edge. Interior cells are deferred to overlap with
		// the exchange.
		var localAttacks, toDown, toUp []int
		var interior []int
		route := func(cell int) {
			r, col := cell/cols, cell%cols
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := r+d[0], col+d[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				to := nr*cols + nc
				switch {
				case owns(to):
					localAttacks = append(localAttacks, cell, to)
				case nr < rowLo:
					toDown = append(toDown, cell, to)
				default:
					toUp = append(toUp, cell, to)
				}
			}
			*at(cell) = stateBurned
			burnedLocal++
		}
		for _, cell := range burning {
			if r := cell / cols; r == rowLo || r == rowHi-1 {
				route(cell)
			} else {
				interior = append(interior, cell)
			}
		}

		// Post the halo exchange (empty slices cross too, keeping the
		// message pattern identical every step).
		var fromDown, fromUp []int
		var recvs []*mpi.Request
		if down != mpi.ProcNull {
			if _, err := c.Isend(down, tagHalo, toDown).Wait(); err != nil {
				return TrialResult{}, err
			}
			recvs = append(recvs, c.Irecv(down, tagHalo, &fromDown))
		}
		if up != mpi.ProcNull {
			if _, err := c.Isend(up, tagHalo, toUp).Wait(); err != nil {
				return TrialResult{}, err
			}
			recvs = append(recvs, c.Irecv(up, tagHalo, &fromUp))
		}

		// (3) Interior work while the network is busy: generate the interior
		// attacks (all of them land inside the slab) and apply everything
		// local. The hash makes application order irrelevant.
		for _, cell := range interior {
			route(cell)
		}
		var next []int
		apply := func(pairs []int) {
			for i := 0; i+1 < len(pairs); i += 2 {
				from, to := pairs[i], pairs[i+1]
				if !owns(to) {
					continue
				}
				if *at(to) == stateTree && igniteDecision(seed, step, from, to) < prob {
					*at(to) = stateBurning
					next = append(next, to)
				}
			}
		}
		apply(localAttacks)

		// (4) Finish the communication: neighbours' attacks, then the
		// termination verdict.
		if _, err := mpi.Waitall(recvs); err != nil {
			return TrialResult{}, err
		}
		apply(fromDown)
		apply(fromUp)
		if _, err := term.Wait(); err != nil {
			return TrialResult{}, err
		}
		if anyBurning == 0 {
			// No rank had fire this iteration: nothing was generated or
			// applied anywhere, so the step does not count.
			break
		}
		steps++
		burning = next
	}

	burnedTotal, err := mpi.Allreduce(c, burnedLocal, mpi.Combine[int](mpi.Sum))
	if err != nil {
		return TrialResult{}, err
	}
	return TrialResult{
		BurnedFraction: float64(burnedTotal) / float64(rows*cols),
		Steps:          steps,
	}, nil
}
