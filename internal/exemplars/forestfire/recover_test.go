package forestfire

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/mpi"
)

// The survive-and-continue invariant: a domain run that loses ranks to a
// seeded kill plan — before the first checkpoint, mid-run, even the
// bottom slab's owner — still burns exactly the same forest as the
// sequential hash simulation, because the checkpoint replay and the
// re-decomposition over the shrunken world reuse the same counter-based
// ignition hash.

func runRecoverTrial(t *testing.T, launch func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error,
	np int, plan *mpi.FaultPlan, every int) {
	t.Helper()
	const rows, cols = 20, 20
	const prob = 0.6
	const seed = 17
	want := SimulateHash(rows, cols, prob, seed)

	store := ckpt.NewMemStore()
	var mu sync.Mutex
	results := map[int]TrialResult{}
	opts := []mpi.Option{mpi.WithRecovery()}
	if plan != nil {
		opts = append(opts, mpi.WithFaults(*plan))
	}
	done := make(chan error, 1)
	go func() {
		done <- launch(np, func(c *mpi.Comm) error {
			got, err := SimulateDomainRecover(c, rows, cols, prob, seed, store, every)
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = got
			mu.Unlock()
			return nil
		}, opts...)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recovered run should report success, got %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("recovery run wedged")
	}
	if len(results) == 0 {
		t.Fatal("no survivor returned a result")
	}
	for rank, got := range results {
		if got != want {
			t.Fatalf("rank %d: recovered result %+v != sequential %+v", rank, got, want)
		}
	}
	if plan != nil && len(results) == np {
		t.Fatal("fault plan injected no failure: every rank survived")
	}
}

func killPlan(victim, skipFirst int) *mpi.FaultPlan {
	return &mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{{
		Src: victim, Dst: mpi.AnySource, Tag: mpi.AnyTag,
		SkipFirst: skipFirst,
		Action:    mpi.FaultKillRank,
	}}}
}

func TestDomainRecoverNoFailure(t *testing.T) {
	// Checkpointing alone must not perturb the result.
	runRecoverTrial(t, mpi.Run, 4, nil, 2)
}

func TestDomainRecoverKillRank(t *testing.T) {
	cases := []struct {
		name    string
		np      int
		victim  int
		skip    int
		every   int
	}{
		{"before-first-checkpoint", 4, 2, 0, 3},
		{"mid-run", 4, 1, 25, 2},
		{"rank0-dies", 4, 0, 12, 2},
		{"np5-late", 5, 3, 40, 4},
	}
	launchers := []struct {
		name string
		run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
	}{
		{"local", mpi.Run},
		{"tcp", mpi.RunTCP},
	}
	for _, l := range launchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			for _, tc := range cases {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					runRecoverTrial(t, l.run, tc.np, killPlan(tc.victim, tc.skip), tc.every)
				})
			}
		})
	}
}

// The respawn invariant is stricter than the shrink one: the run must
// finish at the ORIGINAL width — every rank, the respawned one included,
// reports the result — and still bit-equal the sequential burn.
func runRespawnTrial(t *testing.T, launch func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error,
	np int, plan mpi.FaultPlan, every int) {
	t.Helper()
	const rows, cols = 20, 20
	const prob = 0.6
	const seed = 17
	want := SimulateHash(rows, cols, prob, seed)

	store := ckpt.NewMemStore()
	var mu sync.Mutex
	results := map[int]TrialResult{}
	done := make(chan error, 1)
	go func() {
		done <- launch(np, func(c *mpi.Comm) error {
			got, err := SimulateDomainRespawn(c, rows, cols, prob, seed, store, every, 20*time.Second)
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = got
			mu.Unlock()
			return nil
		}, mpi.WithRespawn(), mpi.WithFaults(plan))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("respawned run should report success, got %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("respawn run wedged")
	}
	if len(results) != np {
		t.Fatalf("%d of %d ranks finished: the world did not return to full width", len(results), np)
	}
	for rank, got := range results {
		if got != want {
			t.Fatalf("rank %d: respawned result %+v != sequential %+v", rank, got, want)
		}
	}
}

func respawnKillPlan(victim, skipFirst int) mpi.FaultPlan {
	return mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{{
		Src: victim, Dst: mpi.AnySource, Tag: mpi.AnyTag,
		SkipFirst: skipFirst, Count: 1,
		Action: mpi.FaultKillRank,
	}}}
}

func TestDomainRespawnFullWidth(t *testing.T) {
	launchers := []struct {
		name string
		run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
	}{
		{"local", mpi.Run},
		{"tcp", mpi.RunTCP},
	}
	if mpi.ShmSupported() {
		launchers = append(launchers, struct {
			name string
			run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
		}{"shm", mpi.RunShm})
	}
	cases := []struct {
		name   string
		np     int
		victim int
		skip   int
		every  int
	}{
		{"before-first-checkpoint", 4, 2, 0, 3},
		{"mid-run", 4, 1, 25, 2},
		{"rank0-dies", 4, 0, 12, 2},
	}
	for _, l := range launchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			for _, tc := range cases {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					runRespawnTrial(t, l.run, tc.np, respawnKillPlan(tc.victim, tc.skip), tc.every)
				})
			}
		})
	}
}

func TestDomainRecoverTwoFailures(t *testing.T) {
	// Two ranks die at different points of the run; the two shrinks compose.
	plan := &mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{
		{Src: 3, Dst: mpi.AnySource, Tag: mpi.AnyTag, SkipFirst: 5, Action: mpi.FaultKillRank},
		{Src: 1, Dst: mpi.AnySource, Tag: mpi.AnyTag, SkipFirst: 30, Action: mpi.FaultKillRank},
	}}
	runRecoverTrial(t, mpi.Run, 5, plan, 2)
}
