package forestfire

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
)

// TestOverlapMatchesSequentialExactly: the communication/computation-overlap
// variant burns exactly the same forest as the sequential hash-based
// simulation — the reordering must not change a single ignition.
func TestOverlapMatchesSequentialExactly(t *testing.T) {
	grids := []struct{ rows, cols int }{{1, 1}, {5, 5}, {16, 9}, {21, 21}}
	probs := []float64{0, 0.3, 0.5, 0.7, 1}
	for _, g := range grids {
		for _, prob := range probs {
			want := SimulateHash(g.rows, g.cols, prob, 31)
			for _, np := range []int{1, 2, 3, 5, 8} {
				var mu sync.Mutex
				results := map[int]TrialResult{}
				err := mpi.Run(np, func(c *mpi.Comm) error {
					got, err := SimulateDomainOverlap(c, g.rows, g.cols, prob, 31)
					if err != nil {
						return err
					}
					mu.Lock()
					results[c.Rank()] = got
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatalf("grid %dx%d p=%v np=%d: %v", g.rows, g.cols, prob, np, err)
				}
				for rank, got := range results {
					if got != want {
						t.Fatalf("grid %dx%d p=%v np=%d rank=%d: %+v != sequential %+v",
							g.rows, g.cols, prob, np, rank, got, want)
					}
				}
			}
		}
	}
}

// TestOverlapMatchesBlockingProperty: overlap and blocking domain runs agree
// with the oracle (and hence each other) across random shapes, including on
// a forced multi-node topology where the termination allreduce goes
// hierarchical.
func TestOverlapMatchesBlockingProperty(t *testing.T) {
	prop := func(seedRaw uint16, probRaw, sizeRaw uint8) bool {
		rows := int(sizeRaw%15) + 3
		cols := int(sizeRaw%11) + 3
		prob := float64(probRaw%101) / 100
		seed := int64(seedRaw)
		want := SimulateHash(rows, cols, prob, seed)
		match := true
		var mu sync.Mutex
		err := mpi.Run(4, func(c *mpi.Comm) error {
			got, err := SimulateDomainOverlap(c, rows, cols, prob, seed)
			if err != nil {
				return err
			}
			if got != want {
				mu.Lock()
				match = false
				mu.Unlock()
			}
			return nil
		}, mpi.WithTopology([]int{0, 0, 1, 1}))
		return err == nil && match
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapMoreRanksThanRows(t *testing.T) {
	want := SimulateHash(3, 9, 0.8, 4)
	err := mpi.Run(6, func(c *mpi.Comm) error {
		got, err := SimulateDomainOverlap(c, 3, 9, 0.8, 4)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("rank %d: %+v != %+v", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverlapValidation(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := SimulateDomainOverlap(c, 0, 5, 0.5, 1); err == nil {
			return fmt.Errorf("0-row grid accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
