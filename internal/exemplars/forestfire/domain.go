package forestfire

import (
	"fmt"

	"repro/internal/mpi"
)

// This file implements the second parallelization strategy for the fire
// simulation: domain decomposition. Instead of distributing independent
// Monte Carlo trials (SweepMPI), one large forest is split into row slabs,
// one per rank, and the fire front crosses slab boundaries through halo
// exchanges over a Cartesian topology — the stencil-computation pattern
// the materials point advanced students toward.
//
// To make the decomposition verifiable, ignition decisions come from a
// counter-based hash of (seed, step, attacking cell, attacked cell) rather
// than a sequential RNG stream. Every decomposition of the same forest
// therefore burns exactly the same trees in exactly the same number of
// steps, and the tests pin the distributed run against the sequential one
// cell for cell.

// splitmix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// igniteDecision returns a uniform [0,1) value determined entirely by the
// (seed, step, from, to) tuple.
func igniteDecision(seed int64, step, from, to int) float64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ uint64(step))
	h = splitmix64(h ^ uint64(from))
	h = splitmix64(h ^ uint64(to))
	// 53 random bits into the mantissa range.
	return float64(h>>11) / float64(1<<53)
}

// SimulateHash burns one forest using hash-based ignition decisions: the
// sequential reference for the domain-decomposed version.
func SimulateHash(rows, cols int, prob float64, seed int64) TrialResult {
	grid := make([]cellState, rows*cols)
	center := (rows/2)*cols + cols/2
	grid[center] = stateBurning
	burning := []int{center}

	steps := 0
	burned := 0
	for len(burning) > 0 {
		steps++
		var next []int
		for _, cell := range burning {
			r, c := cell/cols, cell%cols
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := r+d[0], c+d[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				n := nr*cols + nc
				if grid[n] == stateTree && igniteDecision(seed, steps, cell, n) < prob {
					grid[n] = stateBurning
					next = append(next, n)
				}
			}
			grid[cell] = stateBurned
			burned++
		}
		burning = next
	}
	return TrialResult{
		BurnedFraction: float64(burned) / float64(rows*cols),
		Steps:          steps,
	}
}

// Ignition attempts are carried as flat []int pairs — attack i is
// (pairs[2i], pairs[2i+1]) = (global id of the burning cell, global id of
// the attacked cell). A flat int slice is on the runtime's typed fast-path
// whitelist and the TCP raw-framing whitelist, so the halo exchange moves
// as one memcpy-shaped payload instead of a gob encoding of a struct slice.

// SimulateDomainMPI burns one forest split into row slabs across the
// communicator's ranks, exchanging boundary ignition attempts with
// neighbouring slabs each step. Every rank returns the identical
// TrialResult, which equals SimulateHash's for the same arguments.
func SimulateDomainMPI(c *mpi.Comm, rows, cols int, prob float64, seed int64) (TrialResult, error) {
	if rows < 1 || cols < 1 {
		return TrialResult{}, fmt.Errorf("forestfire: grid must be at least 1x1")
	}
	cart, err := mpi.NewCart(c, []int{c.Size()}, nil)
	if err != nil {
		return TrialResult{}, err
	}

	// This rank owns global rows [rowLo, rowHi).
	rowLo, rowHi := blockRows(rows, c.Rank(), c.Size())
	owns := func(cell int) bool {
		r := cell / cols
		return r >= rowLo && r < rowHi
	}
	// Local state, indexed by global cell id offset to the slab start.
	local := make([]cellState, (rowHi-rowLo)*cols)
	at := func(cell int) *cellState { return &local[cell-rowLo*cols] }

	center := (rows/2)*cols + cols/2
	var burning []int
	if owns(center) {
		*at(center) = stateBurning
		burning = append(burning, center)
	}

	steps := 0
	burnedLocal := 0
	const tagHalo = 11
	for {
		// Lockstep termination check: does any rank still have fire?
		anyBurning, err := mpi.Allreduce(c, boolToInt(len(burning) > 0), mpi.Combine[int](mpi.Max))
		if err != nil {
			return TrialResult{}, err
		}
		if anyBurning == 0 {
			break
		}
		steps++

		// Generate this step's ignition attempts as flat (from, to) pairs;
		// boundary-crossing ones are routed to the owning neighbour slab.
		var localAttacks, toDown, toUp []int
		for _, cell := range burning {
			r, col := cell/cols, cell%cols
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := r+d[0], col+d[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				to := nr*cols + nc
				switch {
				case owns(to):
					localAttacks = append(localAttacks, cell, to)
				case nr < rowLo:
					toDown = append(toDown, cell, to)
				default:
					toUp = append(toUp, cell, to)
				}
			}
			*at(cell) = stateBurned
			burnedLocal++
		}

		// Halo exchange of boundary attacks (empty slices cross too, to
		// keep every rank's message pattern identical each step).
		var fromDown, fromUp []int
		if _, _, err := cart.SendrecvShift(0, tagHalo, toDown, toUp, &fromDown, &fromUp); err != nil {
			return TrialResult{}, err
		}

		// Apply all attempts against this slab; the hash makes the
		// outcome identical to the sequential run regardless of order.
		var next []int
		apply := func(pairs []int) {
			for i := 0; i+1 < len(pairs); i += 2 {
				from, to := pairs[i], pairs[i+1]
				if !owns(to) {
					continue // a mis-routed attack would be a bug upstream
				}
				if *at(to) == stateTree && igniteDecision(seed, steps, from, to) < prob {
					*at(to) = stateBurning
					next = append(next, to)
				}
			}
		}
		apply(localAttacks)
		apply(fromDown)
		apply(fromUp)
		burning = next
	}

	burnedTotal, err := mpi.Allreduce(c, burnedLocal, mpi.Combine[int](mpi.Sum))
	if err != nil {
		return TrialResult{}, err
	}
	return TrialResult{
		BurnedFraction: float64(burnedTotal) / float64(rows*cols),
		Steps:          steps,
	}, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// blockRows splits row indices [0, rows) into contiguous blocks.
func blockRows(rows, rank, size int) (lo, hi int) {
	base := rows / size
	rem := rows % size
	if rank < rem {
		lo = rank * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (rank-rem)*base
	return lo, lo + base
}
