package forestfire

import "testing"

// TestSimulateHashSharedMatchesSequential pins the shared-memory domain
// decomposition against the sequential hash-based reference, cell count and
// step count, across thread counts including more threads than rows (the
// surplus threads own empty slabs).
func TestSimulateHashSharedMatchesSequential(t *testing.T) {
	const rows, cols = 15, 17
	for _, prob := range []float64{0.1, 0.45, 0.9} {
		for _, seed := range []int64{3, 44} {
			want := SimulateHash(rows, cols, prob, seed)
			for _, nt := range []int{1, 2, 3, 5, 8, rows + 4} {
				got := SimulateHashShared(rows, cols, prob, seed, nt)
				if got != want {
					t.Errorf("SimulateHashShared(prob=%g, seed=%d, nt=%d) = %+v, want %+v",
						prob, seed, nt, got, want)
				}
			}
		}
	}
}

func TestSimulateHashSharedTinyGrids(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 6}, {6, 1}, {2, 2}} {
		want := SimulateHash(dims[0], dims[1], 0.7, 9)
		got := SimulateHashShared(dims[0], dims[1], 0.7, 9, 4)
		if got != want {
			t.Errorf("grid %dx%d: shared = %+v, want %+v", dims[0], dims[1], got, want)
		}
	}
	if r := SimulateHashShared(0, 5, 0.5, 1, 2); r != (TrialResult{}) {
		t.Errorf("degenerate grid returned %+v, want zero result", r)
	}
}

// The exemplar speedup-curve kernel: one whole-forest burn at high spread
// probability, domain-decomposed across the team.
func BenchmarkSimulateHashShared(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SimulateHashShared(61, 61, 0.85, 7, 0)
	}
}
