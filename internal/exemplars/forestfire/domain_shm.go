package forestfire

import (
	"repro/internal/shm"
)

// attack is one ignition attempt crossing (or staying within) a slab. Only
// the shared-memory variant keeps the struct form: its batches never leave
// the process, so there is nothing to serialize. The MPI variants flatten
// attempts to []int pairs so the halo exchange rides the typed fast path
// and the raw wire framing (see domain.go).
type attack struct {
	From int // global id of the burning cell
	To   int // global id of the attacked cell
}

// SimulateHashShared burns one forest split into row slabs across the
// threads of a shared-memory team: the shared-memory twin of
// SimulateDomainMPI, and the stencil-style counterpart to SweepShared's
// trial-level parallelism.
//
// Each thread owns a contiguous slab of rows and is the only writer of its
// slab's cells. A step runs in two phases separated by team barriers. In the
// generation phase each thread walks its own burning front and produces
// ignition attempts; attempts against its own slab go to a private list,
// and attempts crossing a slab boundary are appended to a per-(source,
// destination) outbox batch — the halo exchange is one batch handed over
// per worker pair per step, not a synchronization per cell. In the apply
// phase each thread applies the attempts addressed to it (its own plus
// every other thread's outbox row for it); because ignition decisions are
// the counter-based hash of (seed, step, from, to), the outcome is
// independent of apply order and the result is identical to SimulateHash
// for the same arguments, for any thread count.
//
// Only the slice-length reads at the termination check and the outbox reads
// in the apply phase cross thread boundaries, and both are ordered by the
// barriers, so the simulation is race-free without a single atomic or lock
// in the step loop.
func SimulateHashShared(rows, cols int, prob float64, seed int64, numThreads int) TrialResult {
	if rows < 1 || cols < 1 {
		return TrialResult{}
	}
	nt := shm.TeamSize(numThreads)

	grid := make([]cellState, rows*cols)
	center := (rows/2)*cols + cols/2
	grid[center] = stateBurning

	// Row → owning thread, inverse of blockRows' split. With more threads
	// than rows, base is 0 and every row falls in the remainder branch;
	// the surplus threads own empty slabs and just keep the barriers full.
	base, rem := rows/nt, rows%nt
	ownerOfRow := func(r int) int {
		if r < rem*(base+1) {
			return r / (base + 1)
		}
		return rem + (r-rem*(base+1))/base
	}

	// Per-thread fronts and attempt batches. burning[t] and locals[t] are
	// written only by thread t; outbox[t][u] is written only by t and read
	// only by u, on opposite sides of a barrier.
	burning := make([][]int, nt)
	locals := make([][]attack, nt)
	outbox := make([][][]attack, nt)
	for t := 0; t < nt; t++ {
		outbox[t] = make([][]attack, nt)
	}
	burning[ownerOfRow(rows/2)] = []int{center}

	var steps int
	burned := shm.ParallelReduceInt64(nt, shm.OpSum, func(tc *shm.ThreadContext) int64 {
		me := tc.ThreadNum()
		var burnedLocal int64
		mySteps := 0
		for {
			// Termination: every thread computes the same total over the
			// fronts published before the previous barrier, so all threads
			// leave the loop on the same step.
			total := 0
			for t := 0; t < nt; t++ {
				total += len(burning[t])
			}
			if total == 0 {
				break
			}
			mySteps++

			// Generation phase: burn own front, batch up attempts.
			out := outbox[me]
			for t := range out {
				out[t] = out[t][:0]
			}
			mine := locals[me][:0]
			for _, cell := range burning[me] {
				r, c := cell/cols, cell%cols
				for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					nr, nc := r+d[0], c+d[1]
					if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
						continue
					}
					a := attack{From: cell, To: nr*cols + nc}
					if owner := ownerOfRow(nr); owner == me {
						mine = append(mine, a)
					} else {
						out[owner] = append(out[owner], a)
					}
				}
				grid[cell] = stateBurned
				burnedLocal++
			}
			locals[me] = mine
			tc.Barrier()

			// Apply phase: every attempt addressed to this slab, own batch
			// first, then each neighbour's outbox row for us. The hash makes
			// the outcome order-independent.
			next := burning[me][:0]
			apply := func(as []attack) {
				for _, a := range as {
					if grid[a.To] == stateTree && igniteDecision(seed, mySteps, a.From, a.To) < prob {
						grid[a.To] = stateBurning
						next = append(next, a.To)
					}
				}
			}
			apply(locals[me])
			for t := 0; t < nt; t++ {
				if t != me {
					apply(outbox[t][me])
				}
			}
			burning[me] = next
			tc.Barrier()
		}
		if me == 0 {
			steps = mySteps
		}
		return burnedLocal
	})
	return TrialResult{
		BurnedFraction: float64(burned) / float64(rows*cols),
		Steps:          steps,
	}
}
