package forestfire

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
)

func TestIgniteDecisionDeterministicAndUniform(t *testing.T) {
	a := igniteDecision(7, 3, 100, 101)
	b := igniteDecision(7, 3, 100, 101)
	if a != b {
		t.Fatal("decision not deterministic")
	}
	if a < 0 || a >= 1 {
		t.Fatalf("decision %v outside [0,1)", a)
	}
	// Distinct tuples decorrelate: crude uniformity check over many draws.
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := igniteDecision(7, i%13, i, i+1)
		if v < 0 || v >= 1 {
			t.Fatalf("draw %d = %v", i, v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("mean of draws = %v, want ~0.5", mean)
	}
}

func TestSimulateHashEdgeProbabilities(t *testing.T) {
	r := SimulateHash(11, 11, 0, 5)
	if r.BurnedFraction != 1.0/121.0 || r.Steps != 1 {
		t.Fatalf("p=0: %+v", r)
	}
	r = SimulateHash(9, 9, 1, 5)
	if r.BurnedFraction != 1 {
		t.Fatalf("p=1: %+v", r)
	}
}

// TestDomainMatchesSequentialExactly is the headline invariant: the
// domain-decomposed fire burns exactly the same forest as the sequential
// hash-based simulation, for every rank count, at every probability.
func TestDomainMatchesSequentialExactly(t *testing.T) {
	grids := []struct{ rows, cols int }{{1, 1}, {5, 5}, {16, 9}, {21, 21}}
	probs := []float64{0, 0.3, 0.5, 0.7, 1}
	for _, g := range grids {
		for _, prob := range probs {
			want := SimulateHash(g.rows, g.cols, prob, 31)
			for _, np := range []int{1, 2, 3, 5, 8} {
				var mu sync.Mutex
				results := map[int]TrialResult{}
				err := mpi.Run(np, func(c *mpi.Comm) error {
					got, err := SimulateDomainMPI(c, g.rows, g.cols, prob, 31)
					if err != nil {
						return err
					}
					mu.Lock()
					results[c.Rank()] = got
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatalf("grid %dx%d p=%v np=%d: %v", g.rows, g.cols, prob, np, err)
				}
				for rank, got := range results {
					if got != want {
						t.Fatalf("grid %dx%d p=%v np=%d rank=%d: %+v != sequential %+v",
							g.rows, g.cols, prob, np, rank, got, want)
					}
				}
			}
		}
	}
}

func TestDomainMatchesSequentialProperty(t *testing.T) {
	prop := func(seedRaw uint16, probRaw, npRaw, sizeRaw uint8) bool {
		rows := int(sizeRaw%15) + 3
		cols := int(sizeRaw%11) + 3
		prob := float64(probRaw%101) / 100
		np := int(npRaw%6) + 1
		seed := int64(seedRaw)
		want := SimulateHash(rows, cols, prob, seed)
		match := true
		var mu sync.Mutex
		err := mpi.Run(np, func(c *mpi.Comm) error {
			got, err := SimulateDomainMPI(c, rows, cols, prob, seed)
			if err != nil {
				return err
			}
			if got != want {
				mu.Lock()
				match = false
				mu.Unlock()
			}
			return nil
		})
		return err == nil && match
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainMoreRanksThanRows(t *testing.T) {
	// 3-row forest on 6 ranks: half the slabs are empty but the run must
	// still agree with the sequential fire.
	want := SimulateHash(3, 9, 0.8, 4)
	err := mpi.Run(6, func(c *mpi.Comm) error {
		got, err := SimulateDomainMPI(c, 3, 9, 0.8, 4)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("rank %d: %+v != %+v", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDomainValidation(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := SimulateDomainMPI(c, 0, 5, 0.5, 1); err == nil {
			return fmt.Errorf("0-row grid accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockRowsPartition(t *testing.T) {
	for _, rows := range []int{1, 3, 10, 64} {
		for _, size := range []int{1, 2, 5, 8} {
			prev := 0
			for r := 0; r < size; r++ {
				lo, hi := blockRows(rows, r, size)
				if lo != prev || hi < lo {
					t.Fatalf("rows=%d size=%d rank=%d: [%d,%d) after %d", rows, size, r, lo, hi, prev)
				}
				prev = hi
			}
			if prev != rows {
				t.Fatalf("rows=%d size=%d: partition ends at %d", rows, size, prev)
			}
		}
	}
}
