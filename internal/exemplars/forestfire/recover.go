package forestfire

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/mpi"
)

// Survive-and-continue variant of the domain decomposition. The fire
// simulation is the ideal checkpoint-restart exemplar because its ignition
// decisions are a counter-based hash of (seed, step, from, to): the full
// "RNG state" of a slab is just the step counter, so a re-decomposed
// restart replays exactly the same fire, and the recovered run's result is
// bit-identical to the failure-free one no matter how many ranks died or
// where the last checkpoint fell.

// slabCkpt is one rank's checkpoint shard: its slab of the grid at the top
// of a step, self-describing (RowLo/RowHi) so that after a Shrink the
// survivors can reassemble their new slabs from any old decomposition.
type slabCkpt struct {
	Step         int   // completed steps; the hash RNG's entire state
	RowLo, RowHi int   // global rows this shard covers: [RowLo, RowHi)
	Grid         []byte // cellState per cell, row-major within the slab
	Burning      []int  // global ids of cells burning at the top of step Step+1
}

// SimulateDomainRecover is SimulateDomainMPI for recovery-mode worlds
// (mpi.WithRecovery): it checkpoints every `every` steps into store, and
// when a rank failure surfaces it revokes the communicator, shrinks to the
// survivors, re-decomposes the last committed checkpoint over the smaller
// world, and continues. Every surviving rank returns the identical
// TrialResult, equal to SimulateHash's for the same arguments.
func SimulateDomainRecover(c *mpi.Comm, rows, cols int, prob float64, seed int64, store ckpt.Store, every int) (TrialResult, error) {
	comm := c
	for {
		res, err := simulateDomainCkpt(comm, rows, cols, prob, seed, store, every)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, mpi.ErrRankFailed) {
			return TrialResult{}, err
		}
		if rerr := comm.Revoke(); rerr != nil {
			return TrialResult{}, rerr
		}
		nc, serr := comm.Shrink()
		if serr != nil {
			return TrialResult{}, serr
		}
		comm = nc
	}
}

// SimulateDomainRespawn is SimulateDomainRecover for respawn-mode worlds
// (mpi.WithRespawn): instead of shrinking to the survivors, a rank
// failure waits up to `wait` for the launcher to relaunch the dead rank
// into its old slot, agrees on the restored membership, and re-enters the
// simulation at the ORIGINAL width from the last committed checkpoint. A
// respawned incarnation enters here fresh and meets the survivors at the
// checkpoint restore. If the dead rank never comes back (restore times
// out), the run degrades to survive-and-continue: revoke, shrink, and
// finish on the survivors. Either way the result is bit-identical to
// SimulateHash's.
func SimulateDomainRespawn(c *mpi.Comm, rows, cols int, prob float64, seed int64, store ckpt.Store, every int, wait time.Duration) (TrialResult, error) {
	comm := c
	for {
		res, err := simulateDomainCkpt(comm, rows, cols, prob, seed, store, every)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, mpi.ErrRankFailed) {
			return TrialResult{}, err
		}
		nc, rerr := comm.Restored(wait)
		if rerr != nil {
			if !errors.Is(rerr, mpi.ErrRestoreTimeout) {
				return TrialResult{}, rerr
			}
			if verr := comm.Revoke(); verr != nil {
				return TrialResult{}, verr
			}
			if nc, rerr = comm.Shrink(); rerr != nil {
				return TrialResult{}, rerr
			}
		}
		comm = nc
	}
}

// simulateDomainCkpt runs the domain simulation from the last committed
// checkpoint (or from scratch) to completion, saving a checkpoint every
// `every` steps. A rank failure anywhere inside surfaces as a retryable
// error wrapping mpi.ErrRankFailed; the caller recovers and re-enters.
func simulateDomainCkpt(c *mpi.Comm, rows, cols int, prob float64, seed int64, store ckpt.Store, every int) (TrialResult, error) {
	if rows < 1 || cols < 1 {
		return TrialResult{}, fmt.Errorf("forestfire: grid must be at least 1x1")
	}
	cart, err := mpi.NewCart(c, []int{c.Size()}, nil)
	if err != nil {
		return TrialResult{}, err
	}

	rowLo, rowHi := blockRows(rows, c.Rank(), c.Size())
	owns := func(cell int) bool {
		r := cell / cols
		return r >= rowLo && r < rowHi
	}
	local := make([]cellState, (rowHi-rowLo)*cols)
	at := func(cell int) *cellState { return &local[cell-rowLo*cols] }

	// Restore from the newest committed checkpoint, re-decomposing its
	// shards (written under a possibly different world size) over this
	// communicator by row overlap; without one, light the center tree.
	steps := 0
	var burning []int
	_, shards, restored, err := ckpt.LoadLatest(c, store)
	if err != nil {
		return TrialResult{}, err
	}
	if restored {
		for _, data := range shards {
			var sc slabCkpt
			if err := ckpt.Decode(data, &sc); err != nil {
				return TrialResult{}, err
			}
			steps = sc.Step
			lo, hi := max(rowLo, sc.RowLo), min(rowHi, sc.RowHi)
			for r := lo; r < hi; r++ {
				for col := 0; col < cols; col++ {
					local[(r-rowLo)*cols+col] = cellState(sc.Grid[(r-sc.RowLo)*cols+col])
				}
			}
			for _, cell := range sc.Burning {
				if owns(cell) {
					burning = append(burning, cell)
				}
			}
		}
	} else {
		center := (rows/2)*cols + cols/2
		if owns(center) {
			*at(center) = stateBurning
			burning = append(burning, center)
		}
	}
	// The burned count is derivable from the slab, so shards need not
	// carry it — recount after any restore (slabs partition the rows, so
	// each burned cell is counted exactly once across ranks).
	burnedLocal := 0
	for _, s := range local {
		if s == stateBurned {
			burnedLocal++
		}
	}

	const tagHalo = 11
	sinceSave := 0
	for {
		anyBurning, err := mpi.Allreduce(c, boolToInt(len(burning) > 0), mpi.Combine[int](mpi.Max))
		if err != nil {
			return TrialResult{}, err
		}
		if anyBurning == 0 {
			break
		}
		// Checkpoint at the top of a step: every rank is at the same step
		// count here (the Allreduce is the lockstep fence), so the shards
		// of one version always form a consistent global cut.
		if every > 0 && sinceSave >= every {
			grid := make([]byte, len(local))
			for i, s := range local {
				grid[i] = byte(s)
			}
			shard, err := ckpt.Encode(slabCkpt{Step: steps, RowLo: rowLo, RowHi: rowHi, Grid: grid, Burning: burning})
			if err != nil {
				return TrialResult{}, err
			}
			if _, err := ckpt.Save(c, store, shard); err != nil {
				return TrialResult{}, err
			}
			sinceSave = 0
		}
		sinceSave++
		steps++

		// Flat (from, to) pairs, same wire shape as SimulateDomainMPI: the
		// halo payload stays on the typed fast path / raw TCP framing.
		var localAttacks, toDown, toUp []int
		for _, cell := range burning {
			r, col := cell/cols, cell%cols
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := r+d[0], col+d[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				to := nr*cols + nc
				switch {
				case owns(to):
					localAttacks = append(localAttacks, cell, to)
				case nr < rowLo:
					toDown = append(toDown, cell, to)
				default:
					toUp = append(toUp, cell, to)
				}
			}
			*at(cell) = stateBurned
			burnedLocal++
		}

		var fromDown, fromUp []int
		if _, _, err := cart.SendrecvShift(0, tagHalo, toDown, toUp, &fromDown, &fromUp); err != nil {
			return TrialResult{}, err
		}

		var next []int
		apply := func(pairs []int) {
			for i := 0; i+1 < len(pairs); i += 2 {
				from, to := pairs[i], pairs[i+1]
				if !owns(to) {
					continue
				}
				if *at(to) == stateTree && igniteDecision(seed, steps, from, to) < prob {
					*at(to) = stateBurning
					next = append(next, to)
				}
			}
		}
		apply(localAttacks)
		apply(fromDown)
		apply(fromUp)
		burning = next
	}

	burnedTotal, err := mpi.Allreduce(c, burnedLocal, mpi.Combine[int](mpi.Sum))
	if err != nil {
		return TrialResult{}, err
	}
	return TrialResult{
		BurnedFraction: float64(burnedTotal) / float64(rows*cols),
		Steps:          steps,
	}, nil
}
