package drugdesign

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/mpi"
)

// The survive-and-continue invariant for the master-worker pattern: a run
// that loses workers — or the master itself — to a seeded kill plan still
// reports exactly the Sequential result, because the score table is
// idempotent and the checkpoint re-queues precisely the unscored ligands.

func runDDRecoverTrial(t *testing.T, launch func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error,
	np int, plan *mpi.FaultPlan, every int) {
	t.Helper()
	p := DefaultParams()
	want, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}

	store := ckpt.NewMemStore()
	var mu sync.Mutex
	results := map[int]Result{}
	opts := []mpi.Option{mpi.WithRecovery()}
	if plan != nil {
		opts = append(opts, mpi.WithFaults(*plan))
	}
	done := make(chan error, 1)
	go func() {
		done <- launch(np, func(c *mpi.Comm) error {
			got, err := MPIMasterWorkerRecover(c, p, store, every)
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = got
			mu.Unlock()
			return nil
		}, opts...)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recovered run should report success, got %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("recovery run wedged")
	}
	if len(results) == 0 {
		t.Fatal("no survivor returned a result")
	}
	for rank, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rank %d: recovered result %+v != sequential %+v", rank, got, want)
		}
	}
	if plan != nil && len(results) == np {
		t.Fatal("fault plan injected no failure: every rank survived")
	}
}

func ddKillPlan(victim, skipFirst int) *mpi.FaultPlan {
	return &mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{{
		Src: victim, Dst: mpi.AnySource, Tag: mpi.AnyTag,
		SkipFirst: skipFirst,
		Action:    mpi.FaultKillRank,
	}}}
}

func TestMasterWorkerRecoverNoFailure(t *testing.T) {
	runDDRecoverTrial(t, mpi.Run, 4, nil, 8)
}

func TestMasterWorkerRecoverKills(t *testing.T) {
	cases := []struct {
		name   string
		np     int
		victim int
		skip   int
		every  int
	}{
		{"worker-before-first-checkpoint", 4, 2, 0, 10},
		{"worker-mid-queue", 4, 3, 15, 5},
		{"master-dies", 4, 0, 9, 4},
		{"master-dies-late", 5, 0, 60, 8},
	}
	launchers := []struct {
		name string
		run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
	}{
		{"local", mpi.Run},
		{"tcp", mpi.RunTCP},
	}
	for _, l := range launchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			for _, tc := range cases {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					runDDRecoverTrial(t, l.run, tc.np, ddKillPlan(tc.victim, tc.skip), tc.every)
				})
			}
		})
	}
}

// The respawn invariant for the master-worker pattern: a killed worker —
// or the master — comes back into its old slot, the queue finishes at
// the ORIGINAL width (every rank reports the result), and the Result is
// still bit-equal to Sequential's.
func runDDRespawnTrial(t *testing.T, launch func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error,
	np int, plan mpi.FaultPlan, every int) {
	t.Helper()
	p := DefaultParams()
	want, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}

	store := ckpt.NewMemStore()
	var mu sync.Mutex
	results := map[int]Result{}
	done := make(chan error, 1)
	go func() {
		done <- launch(np, func(c *mpi.Comm) error {
			got, err := MPIMasterWorkerRespawn(c, p, store, every, 20*time.Second)
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = got
			mu.Unlock()
			return nil
		}, mpi.WithRespawn(), mpi.WithFaults(plan))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("respawned run should report success, got %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("respawn run wedged")
	}
	if len(results) != np {
		t.Fatalf("%d of %d ranks finished: the world did not return to full width", len(results), np)
	}
	for rank, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rank %d: respawned result %+v != sequential %+v", rank, got, want)
		}
	}
}

func ddRespawnKillPlan(victim, skipFirst int) mpi.FaultPlan {
	return mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{{
		Src: victim, Dst: mpi.AnySource, Tag: mpi.AnyTag,
		SkipFirst: skipFirst, Count: 1,
		Action: mpi.FaultKillRank,
	}}}
}

func TestMasterWorkerRespawnFullWidth(t *testing.T) {
	launchers := []struct {
		name string
		run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
	}{
		{"local", mpi.Run},
		{"tcp", mpi.RunTCP},
	}
	if mpi.ShmSupported() {
		launchers = append(launchers, struct {
			name string
			run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
		}{"shm", mpi.RunShm})
	}
	cases := []struct {
		name   string
		np     int
		victim int
		skip   int
		every  int
	}{
		{"worker-before-first-checkpoint", 4, 2, 0, 10},
		{"worker-mid-queue", 4, 3, 15, 5},
		{"master-dies", 4, 0, 9, 4},
	}
	for _, l := range launchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			for _, tc := range cases {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					runDDRespawnTrial(t, l.run, tc.np, ddRespawnKillPlan(tc.victim, tc.skip), tc.every)
				})
			}
		})
	}
}

func TestMasterWorkerRecoverTwoWorkersDie(t *testing.T) {
	// Shrink twice: np=5 loses two workers at different points, finishing
	// with a master and two workers.
	plan := &mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{
		{Src: 1, Dst: mpi.AnySource, Tag: mpi.AnyTag, SkipFirst: 3, Action: mpi.FaultKillRank},
		{Src: 4, Dst: mpi.AnySource, Tag: mpi.AnyTag, SkipFirst: 20, Action: mpi.FaultKillRank},
	}}
	runDDRecoverTrial(t, mpi.Run, 5, plan, 6)
}

func TestMasterWorkerRecoverShrinkToOne(t *testing.T) {
	// np=2 and the worker dies: the master finishes the queue alone via
	// the sequential path.
	runDDRecoverTrial(t, mpi.Run, 2, ddKillPlan(1, 7), 10)
}
