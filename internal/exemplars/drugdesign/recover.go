package drugdesign

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/mpi"
)

// Survive-and-continue variant of the master-worker pattern. The work
// queue is idempotent — scores[i] depends only on ligand i — so the
// checkpoint is simply the master's score table with a not-yet-scored
// sentinel, and recovery re-queues exactly the unscored indices. The
// master itself is NOT a single point of failure: after a Shrink the new
// rank 0 reloads the last committed table from the shared store and takes
// over, redoing only the work completed since that checkpoint.

const unscored = -1

// ddCkpt is the master's checkpoint: the score table, unscored entries
// holding the sentinel.
type ddCkpt struct {
	Scores []int
}

// MPIMasterWorkerRecover is MPIMasterWorker for recovery-mode worlds
// (mpi.WithRecovery): the master checkpoints the score table into store
// every `every` completed results, and on a rank failure every survivor
// revokes, shrinks, and re-enters — with the (possibly new) master
// restoring from the last committed checkpoint. Every surviving rank
// returns the full Result, bit-equal to the failure-free run's.
func MPIMasterWorkerRecover(c *mpi.Comm, p Params, store ckpt.Store, every int) (Result, error) {
	comm := c
	for {
		res, err := masterWorkerCkpt(comm, p, store, every)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, mpi.ErrRankFailed) {
			return Result{}, err
		}
		if rerr := comm.Revoke(); rerr != nil {
			return Result{}, rerr
		}
		nc, serr := comm.Shrink()
		if serr != nil {
			return Result{}, serr
		}
		comm = nc
	}
}

// MPIMasterWorkerRespawn is MPIMasterWorkerRecover for respawn-mode
// worlds (mpi.WithRespawn): a rank failure waits up to `wait` for the
// launcher to relaunch the dead rank into its old slot and re-enters the
// master-worker round at the ORIGINAL width — a respawned worker simply
// rejoins the queue, and a respawned master restores the score table from
// the shared store, redoing only the work since the last checkpoint. If
// the rank never comes back, the run degrades to survive-and-continue
// (revoke, shrink, finish on the survivors). Both paths return the Result
// bit-equal to the failure-free run's.
func MPIMasterWorkerRespawn(c *mpi.Comm, p Params, store ckpt.Store, every int, wait time.Duration) (Result, error) {
	comm := c
	for {
		res, err := masterWorkerCkpt(comm, p, store, every)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, mpi.ErrRankFailed) {
			return Result{}, err
		}
		nc, rerr := comm.Restored(wait)
		if rerr != nil {
			if !errors.Is(rerr, mpi.ErrRestoreTimeout) {
				return Result{}, rerr
			}
			if verr := comm.Revoke(); verr != nil {
				return Result{}, verr
			}
			if nc, rerr = comm.Shrink(); rerr != nil {
				return Result{}, rerr
			}
		}
		comm = nc
	}
}

// masterWorkerCkpt runs one master-worker round to completion from the
// last committed checkpoint. A rank failure anywhere inside surfaces as a
// retryable error wrapping mpi.ErrRankFailed.
func masterWorkerCkpt(c *mpi.Comm, p Params, store ckpt.Store, every int) (Result, error) {
	ligands, err := GenerateLigands(p)
	if err != nil {
		return Result{}, err
	}

	var res Result
	if c.Rank() == 0 {
		res, err = runMaster(c, ligands, p, store, every)
		if err != nil {
			return Result{}, err
		}
	} else {
		for {
			var idx int
			st, err := c.Recv(0, mpi.AnyTag, &idx)
			if err != nil {
				return Result{}, err
			}
			if st.Tag == tagStop {
				break
			}
			var score int
			c.Compute(func() { score = Score(ligands[idx], p.Protein) })
			if err := c.Send(0, tagResult, workerResult{Index: idx, Score: score}); err != nil {
				return Result{}, err
			}
		}
	}
	return mpi.Bcast(c, res, 0)
}

// runMaster drives the work queue: restore the score table, hand unscored
// indices to workers (or score them locally when the world has shrunk to
// one rank), and checkpoint as results land.
func runMaster(c *mpi.Comm, ligands []string, p Params, store ckpt.Store, every int) (Result, error) {
	scores := make([]int, len(ligands))
	for i := range scores {
		scores[i] = unscored
	}
	if data, _, ok, err := ckpt.LoadLocal(store); err != nil {
		return Result{}, err
	} else if ok {
		var saved ddCkpt
		if err := ckpt.Decode(data, &saved); err != nil {
			return Result{}, err
		}
		if len(saved.Scores) != len(scores) {
			return Result{}, fmt.Errorf("drugdesign: checkpoint has %d scores for %d ligands", len(saved.Scores), len(scores))
		}
		copy(scores, saved.Scores)
	}
	var pending []int
	for i, s := range scores {
		if s == unscored {
			pending = append(pending, i)
		}
	}

	if c.Size() == 1 {
		// The world shrank to just the master (or started that way):
		// finish the remaining work sequentially.
		c.Compute(func() {
			for _, i := range pending {
				scores[i] = Score(ligands[i], p.Protein)
			}
		})
		return collect(ligands, scores), nil
	}

	save := func() error {
		shard, err := ckpt.Encode(ddCkpt{Scores: scores})
		if err != nil {
			return err
		}
		_, err = ckpt.SaveLocal(store, shard)
		return err
	}

	next := 0 // index into pending
	outstanding := 0
	for w := 1; w < c.Size(); w++ {
		if next < len(pending) {
			if err := c.Send(w, tagTask, pending[next]); err != nil {
				return Result{}, err
			}
			next++
			outstanding++
		} else if err := c.Send(w, tagStop, 0); err != nil {
			return Result{}, err
		}
	}
	sinceSave := 0
	for outstanding > 0 {
		// A dead worker never returns its task, so a wildcard receive is
		// the dangerous spot of this protocol — the runtime's ULFM rule
		// (any failed member poisons an AnySource match) turns what would
		// be a silent hang into the retryable error handled one level up.
		var wr workerResult
		st, err := c.Recv(mpi.AnySource, tagResult, &wr)
		if err != nil {
			return Result{}, err
		}
		scores[wr.Index] = wr.Score
		outstanding--
		sinceSave++
		if every > 0 && sinceSave >= every {
			if err := save(); err != nil {
				return Result{}, err
			}
			sinceSave = 0
		}
		if next < len(pending) {
			if err := c.Send(st.Source, tagTask, pending[next]); err != nil {
				return Result{}, err
			}
			next++
			outstanding++
		} else if err := c.Send(st.Source, tagStop, 0); err != nil {
			return Result{}, err
		}
	}
	// Final checkpoint: the completed table, so a failure after this point
	// (e.g. during the closing broadcast) redoes no scoring at all.
	if every > 0 {
		if err := save(); err != nil {
			return Result{}, err
		}
	}
	return collect(ligands, scores), nil
}
