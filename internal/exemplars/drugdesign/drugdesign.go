// Package drugdesign implements the drug-design exemplar used by both of
// the paper's modules (it closes the shared-memory module and is one of the
// two second-hour choices in the distributed module). The computation is
// the CSinParallel "drug design" kernel: generate a pool of random candidate
// ligands (short strings over the amino-acid-like alphabet), score each one
// against a fixed protein by the length of their longest common
// subsequence, and report the maximum score and the ligands that achieve
// it.
//
// The workload is deliberately imbalanced — scoring cost grows with ligand
// length, and lengths vary — which is why the exemplar is the canonical
// motivation for dynamic scheduling (shared memory) and master-worker work
// distribution (message passing).
package drugdesign

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/mpi"
	"repro/internal/shm"
)

// DefaultProtein is the target the CSinParallel exemplar ships with.
const DefaultProtein = "the cat in the hat wore the hat to the cat hat party"

// Alphabet is the character set ligands are drawn from.
const Alphabet = "abcdefghijklmnopqrstuvwxyz"

// Params configures a run.
type Params struct {
	Protein      string
	NumLigands   int
	MaxLigandLen int // ligand lengths are uniform in [1, MaxLigandLen]
	Seed         int64
}

// DefaultParams mirrors the exemplar's defaults at a laptop-friendly scale.
func DefaultParams() Params {
	return Params{
		Protein:      DefaultProtein,
		NumLigands:   120,
		MaxLigandLen: 6,
		Seed:         5,
	}
}

func (p Params) validate() error {
	if p.NumLigands < 1 {
		return errors.New("drugdesign: need at least 1 ligand")
	}
	if p.MaxLigandLen < 1 {
		return errors.New("drugdesign: ligand length must be at least 1")
	}
	if p.Protein == "" {
		return errors.New("drugdesign: empty protein")
	}
	return nil
}

// Result is the outcome of a run: the best docking score and every ligand
// achieving it (sorted for determinism).
type Result struct {
	MaxScore int
	Ligands  []string
}

// String formats the result the way the exemplar prints it.
func (r Result) String() string {
	return fmt.Sprintf("maximal score is %d, achieved by ligands %s",
		r.MaxScore, strings.Join(r.Ligands, " "))
}

// GenerateLigands produces the deterministic candidate pool for the given
// parameters. Every variant (sequential, shared, MPI) scores exactly this
// pool, so their results are comparable bit for bit.
func GenerateLigands(p Params) ([]string, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	ligands := make([]string, p.NumLigands)
	for i := range ligands {
		n := 1 + rng.Intn(p.MaxLigandLen)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte(Alphabet[rng.Intn(len(Alphabet))])
		}
		ligands[i] = b.String()
	}
	return ligands, nil
}

// Score computes the docking score of a ligand against a protein: the
// length of their longest common subsequence, by the classic O(len·len)
// dynamic program (two-row form).
func Score(ligand, protein string) int {
	if len(ligand) == 0 || len(protein) == 0 {
		return 0
	}
	prev := make([]int, len(protein)+1)
	cur := make([]int, len(protein)+1)
	for i := 1; i <= len(ligand); i++ {
		for j := 1; j <= len(protein); j++ {
			if ligand[i-1] == protein[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(protein)]
}

// collect folds per-ligand scores into a Result.
func collect(ligands []string, scores []int) Result {
	max := 0
	for _, s := range scores {
		if s > max {
			max = s
		}
	}
	var best []string
	for i, s := range scores {
		if s == max {
			best = append(best, ligands[i])
		}
	}
	sort.Strings(best)
	return Result{MaxScore: max, Ligands: best}
}

// Sequential scores the pool one ligand at a time: the timing baseline.
func Sequential(p Params) (Result, error) {
	ligands, err := GenerateLigands(p)
	if err != nil {
		return Result{}, err
	}
	scores := make([]int, len(ligands))
	for i, l := range ligands {
		scores[i] = Score(l, p.Protein)
	}
	return collect(ligands, scores), nil
}

// threadBest is one thread's running best set: the highest score it has seen
// and the indices achieving it. Padded to a cache line because the slices'
// headers are rewritten on every append and neighbouring threads' slots
// would otherwise false-share.
type threadBest struct {
	max int
	idx []int
	_   [32]byte
}

// Shared scores the pool with a team of threads under the given schedule.
// The schedule choice is the exemplar's teaching point: dynamic schedules
// absorb the length imbalance that static ones cannot.
//
// Each thread accumulates its own best set (max score seen plus the indices
// achieving it) in a cache-line-padded slot — a max-reduction with a payload —
// and the slots are merged serially after the join. Compared with the
// score-every-ligand-into-a-shared-slice version, nothing is written to
// shared memory while the loop runs and the merge is over per-thread best
// sets rather than a full O(n) rescan. The result is bit-identical to
// Sequential's collect over the same pool.
func Shared(p Params, numThreads int, sched shm.Schedule) (Result, error) {
	ligands, err := GenerateLigands(p)
	if err != nil {
		return Result{}, err
	}
	nt := shm.TeamSize(numThreads)
	if nt > len(ligands) {
		nt = len(ligands)
	}
	slots := make([]threadBest, nt)
	shm.Parallel(nt, func(tc *shm.ThreadContext) {
		b := &slots[tc.ThreadNum()]
		tc.ForNowait(len(ligands), sched, func(i int) {
			s := Score(ligands[i], p.Protein)
			if s > b.max {
				b.max, b.idx = s, b.idx[:0]
			}
			if s == b.max {
				b.idx = append(b.idx, i)
			}
		})
	})
	max := 0
	for i := range slots {
		if slots[i].max > max {
			max = slots[i].max
		}
	}
	var best []string
	for i := range slots {
		if slots[i].max != max {
			continue
		}
		for _, idx := range slots[i].idx {
			best = append(best, ligands[idx])
		}
	}
	sort.Strings(best)
	return Result{MaxScore: max, Ligands: best}, nil
}

// MPIStatic scores the pool with a block decomposition: each rank takes a
// contiguous slab of the pool and a vector allgather assembles the full
// score vector on every rank. Blocks concatenate in rank order — exactly
// the global score array — and the candidate pool is deterministic, so each
// rank derives the identical Result locally; the old gather-of-boxed-blocks
// at the root plus Result broadcast collapses into one bandwidth-friendly
// collective.
func MPIStatic(c *mpi.Comm, p Params) (Result, error) {
	ligands, err := GenerateLigands(p)
	if err != nil {
		return Result{}, err
	}
	lo, hi := blockRange(len(ligands), c.Rank(), c.Size())
	local := make([]int, hi-lo)
	c.Compute(func() {
		for i := lo; i < hi; i++ {
			local[i-lo] = Score(ligands[i], p.Protein)
		}
	})
	scores, err := mpi.AllgatherSlice(c, local)
	if err != nil {
		return Result{}, err
	}
	return collect(ligands, scores), nil
}

// Tags of the master-worker protocol.
const (
	tagTask   = 1
	tagResult = 2
	tagStop   = 3
)

// workerResult carries one scored ligand back to the master.
type workerResult struct {
	Index int
	Score int
}

// MPIMasterWorker scores the pool with dynamic work distribution: the
// master (rank 0) hands out one ligand index at a time; each worker returns
// the score and receives the next task, so long ligands and short ones
// balance automatically — the message-passing twin of the dynamic schedule.
// With a single rank it degrades to sequential scoring. Every rank returns
// the full Result.
func MPIMasterWorker(c *mpi.Comm, p Params) (Result, error) {
	ligands, err := GenerateLigands(p)
	if err != nil {
		return Result{}, err
	}
	if c.Size() == 1 {
		scores := make([]int, len(ligands))
		c.Compute(func() {
			for i, l := range ligands {
				scores[i] = Score(l, p.Protein)
			}
		})
		return collect(ligands, scores), nil
	}

	var res Result
	if c.Rank() == 0 {
		scores := make([]int, len(ligands))
		next := 0
		outstanding := 0
		// Prime every worker with one task (or stop it if there is none).
		for w := 1; w < c.Size(); w++ {
			if next < len(ligands) {
				if err := c.Send(w, tagTask, next); err != nil {
					return Result{}, err
				}
				next++
				outstanding++
			} else if err := c.Send(w, tagStop, 0); err != nil {
				return Result{}, err
			}
		}
		for outstanding > 0 {
			var wr workerResult
			st, err := c.Recv(mpi.AnySource, tagResult, &wr)
			if err != nil {
				return Result{}, err
			}
			scores[wr.Index] = wr.Score
			outstanding--
			if next < len(ligands) {
				if err := c.Send(st.Source, tagTask, next); err != nil {
					return Result{}, err
				}
				next++
				outstanding++
			} else if err := c.Send(st.Source, tagStop, 0); err != nil {
				return Result{}, err
			}
		}
		res = collect(ligands, scores)
	} else {
		for {
			var idx int
			st, err := c.Recv(0, mpi.AnyTag, &idx)
			if err != nil {
				return Result{}, err
			}
			if st.Tag == tagStop {
				break
			}
			var score int
			c.Compute(func() { score = Score(ligands[idx], p.Protein) })
			if err := c.Send(0, tagResult, workerResult{Index: idx, Score: score}); err != nil {
				return Result{}, err
			}
		}
	}
	return mpi.Bcast(c, res, 0)
}

// blockRange computes the contiguous block of [0, n) owned by worker w of k.
func blockRange(n, w, k int) (lo, hi int) {
	base := n / k
	rem := n % k
	if w < rem {
		lo = w * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (w-rem)*base
	return lo, lo + base
}
