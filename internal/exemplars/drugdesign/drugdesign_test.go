package drugdesign

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/shm"
)

func TestScoreKnownValues(t *testing.T) {
	cases := []struct {
		ligand, protein string
		want            int
	}{
		{"", "abc", 0},
		{"abc", "", 0},
		{"abc", "abc", 3},
		{"axc", "abc", 2},
		{"cat", "the cat in the hat", 3},
		{"xyz", "abc", 0},
		{"aa", "aaaa", 2},
		{"abcbdab", "bdcaba", 4}, // classic LCS example
	}
	for _, c := range cases {
		if got := Score(c.ligand, c.protein); got != c.want {
			t.Errorf("Score(%q, %q) = %d, want %d", c.ligand, c.protein, got, c.want)
		}
	}
}

func TestScoreProperties(t *testing.T) {
	// Score is symmetric and bounded by the shorter string's length, and
	// a string scores its own length against itself.
	prop := func(aRaw, bRaw []byte) bool {
		a := sanitize(aRaw)
		b := sanitize(bRaw)
		s := Score(a, b)
		if s != Score(b, a) {
			return false
		}
		if s > len(a) || s > len(b) {
			return false
		}
		return Score(a, a) == len(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(raw []byte) string {
	var b strings.Builder
	for _, c := range raw {
		b.WriteByte(Alphabet[int(c)%len(Alphabet)])
		if b.Len() >= 12 {
			break
		}
	}
	return b.String()
}

func TestGenerateLigandsDeterministic(t *testing.T) {
	p := DefaultParams()
	a, err := GenerateLigands(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenerateLigands(p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same params produced different pools")
	}
	if len(a) != p.NumLigands {
		t.Fatalf("pool size %d", len(a))
	}
	for _, l := range a {
		if len(l) < 1 || len(l) > p.MaxLigandLen {
			t.Fatalf("ligand %q outside length bounds", l)
		}
	}
	p2 := p
	p2.Seed++
	c, _ := GenerateLigands(p2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical pools")
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Protein: "x", NumLigands: 0, MaxLigandLen: 3},
		{Protein: "x", NumLigands: 5, MaxLigandLen: 0},
		{Protein: "", NumLigands: 5, MaxLigandLen: 3},
	}
	for i, p := range bad {
		if _, err := GenerateLigands(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
		if _, err := Sequential(p); err == nil {
			t.Errorf("case %d: Sequential accepted invalid params", i)
		}
		if _, err := Shared(p, 2, shm.Dynamic(1)); err == nil {
			t.Errorf("case %d: Shared accepted invalid params", i)
		}
	}
}

func TestSequentialResultShape(t *testing.T) {
	res, err := Sequential(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxScore < 1 {
		t.Fatalf("max score = %d", res.MaxScore)
	}
	if len(res.Ligands) == 0 {
		t.Fatal("no best ligands reported")
	}
	for i := 1; i < len(res.Ligands); i++ {
		if res.Ligands[i-1] > res.Ligands[i] {
			t.Fatal("best ligands not sorted")
		}
	}
	for _, l := range res.Ligands {
		if Score(l, DefaultParams().Protein) != res.MaxScore {
			t.Fatalf("reported ligand %q does not achieve the max score", l)
		}
	}
	if !strings.Contains(res.String(), "maximal score") {
		t.Fatalf("String() = %q", res.String())
	}
}

func TestSharedMatchesSequentialAllSchedules(t *testing.T) {
	p := DefaultParams()
	want, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	schedules := []shm.Schedule{shm.Static(), shm.ChunksOf1(), shm.Dynamic(1), shm.Dynamic(4), shm.Guided(1)}
	for _, sched := range schedules {
		for _, threads := range []int{1, 2, 4, 8} {
			got, err := Shared(p, threads, sched)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("sched=%v threads=%d: %+v != %+v", sched, threads, got, want)
			}
		}
	}
}

func TestMPIStaticMatchesSequential(t *testing.T) {
	p := DefaultParams()
	want, _ := Sequential(p)
	for _, np := range []int{1, 2, 3, 5} {
		err := mpi.Run(np, func(c *mpi.Comm) error {
			got, err := MPIStatic(c, p)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("np=%d rank=%d: %+v != %+v", np, c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMPIMasterWorkerMatchesSequential(t *testing.T) {
	p := DefaultParams()
	want, _ := Sequential(p)
	for _, np := range []int{1, 2, 4, 7} {
		err := mpi.Run(np, func(c *mpi.Comm) error {
			got, err := MPIMasterWorker(c, p)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("np=%d rank=%d: %+v != %+v", np, c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMPIMasterWorkerMoreWorkersThanLigands(t *testing.T) {
	p := DefaultParams()
	p.NumLigands = 3
	want, _ := Sequential(p)
	err := mpi.Run(6, func(c *mpi.Comm) error {
		got, err := MPIMasterWorker(c, p)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rank %d: %+v != %+v", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResultConsistencyProperty(t *testing.T) {
	// For arbitrary small parameter sets, all five implementations agree.
	prop := func(seedRaw uint16, nRaw, lenRaw uint8) bool {
		p := Params{
			Protein:      DefaultProtein,
			NumLigands:   int(nRaw%30) + 1,
			MaxLigandLen: int(lenRaw%8) + 1,
			Seed:         int64(seedRaw),
		}
		want, err := Sequential(p)
		if err != nil {
			return false
		}
		got, err := Shared(p, 3, shm.Dynamic(1))
		if err != nil || !reflect.DeepEqual(got, want) {
			return false
		}
		var mismatch atomic.Bool
		err = mpi.Run(3, func(c *mpi.Comm) error {
			mw, err := MPIMasterWorker(c, p)
			if err != nil || !reflect.DeepEqual(mw, want) {
				mismatch.Store(true)
			}
			return nil
		})
		return err == nil && !mismatch.Load()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
