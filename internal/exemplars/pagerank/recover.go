package pagerank

import (
	"errors"
	"time"

	"repro/internal/ckpt"
	"repro/internal/mpi"
)

// Survive-and-continue PageRank. The iteration state is just the owned
// slice of the rank vector plus the iteration counter — the graph is a pure
// function of its parameters and the exchange plan is rebuilt from it — so
// a checkpoint shard is small and self-describing, and after a Shrink the
// survivors re-decompose any old set of shards over the new block partition
// by range overlap, exactly the forest-fire slab discipline.

// prCkpt is one rank's checkpoint shard: the owned block of the rank vector
// at the top of iteration Iter.
type prCkpt struct {
	Iter   int
	Lo, Hi int // global vertex range this shard covers: [Lo, Hi)
	Pr     []float64
}

// PageRankRecover is PageRankMPI for recovery-mode worlds
// (mpi.WithRecovery): it checkpoints the rank vector every `every`
// iterations into store, and when a rank failure surfaces it revokes the
// communicator, shrinks to the survivors, restores the last committed
// checkpoint over the smaller world, and continues. The surviving ranks
// return the same fixed point as a failure-free run, up to floating-point
// reassociation under the changed partition.
func PageRankRecover(c *mpi.Comm, g *Graph, damping float64, iters int, store ckpt.Store, every int) ([]float64, error) {
	comm := c
	for {
		pr, err := pageRankCkpt(comm, g, damping, iters, store, every)
		if err == nil {
			return pr, nil
		}
		if !errors.Is(err, mpi.ErrRankFailed) {
			return nil, err
		}
		if rerr := comm.Revoke(); rerr != nil {
			return nil, rerr
		}
		nc, serr := comm.Shrink()
		if serr != nil {
			return nil, serr
		}
		comm = nc
	}
}

// PageRankRespawn is PageRankRecover for respawn-mode worlds
// (mpi.WithRespawn): a rank failure waits up to `wait` for the launcher to
// relaunch the dead rank into its old slot and re-enters at the original
// width; if the relaunch never arrives, it degrades to shrink-and-continue.
func PageRankRespawn(c *mpi.Comm, g *Graph, damping float64, iters int, store ckpt.Store, every int, wait time.Duration) ([]float64, error) {
	comm := c
	for {
		pr, err := pageRankCkpt(comm, g, damping, iters, store, every)
		if err == nil {
			return pr, nil
		}
		if !errors.Is(err, mpi.ErrRankFailed) {
			return nil, err
		}
		nc, rerr := comm.Restored(wait)
		if rerr != nil {
			if !errors.Is(rerr, mpi.ErrRestoreTimeout) {
				return nil, rerr
			}
			if verr := comm.Revoke(); verr != nil {
				return nil, verr
			}
			if nc, rerr = comm.Shrink(); rerr != nil {
				return nil, rerr
			}
		}
		comm = nc
	}
}

// pageRankCkpt runs the iteration from the last committed checkpoint (or
// from the uniform start) to completion, saving every `every` iterations. A
// rank failure anywhere inside surfaces as a retryable error wrapping
// mpi.ErrRankFailed; the caller recovers and re-enters.
func pageRankCkpt(c *mpi.Comm, g *Graph, damping float64, iters int, store ckpt.Store, every int) ([]float64, error) {
	np, rank := c.Size(), c.Rank()
	lo, hi := vrange(g.N, rank, np)
	pr := make([]float64, hi-lo)
	for i := range pr {
		pr[i] = 1 / float64(g.N)
	}
	it0 := 0
	_, shards, restored, err := ckpt.LoadLatest(c, store)
	if err != nil {
		return nil, err
	}
	if restored {
		for _, data := range shards {
			var sc prCkpt
			if err := ckpt.Decode(data, &sc); err != nil {
				return nil, err
			}
			it0 = sc.Iter
			for v := max(lo, sc.Lo); v < min(hi, sc.Hi); v++ {
				pr[v-lo] = sc.Pr[v-sc.Lo]
			}
		}
	}

	plan, err := buildPlan(c, g)
	if err != nil {
		return nil, err
	}
	recvLen := 0
	for _, ct := range plan.recvCounts {
		recvLen += ct
	}
	contrib := make([]float64, hi-lo)
	sendVals := make([]float64, plan.sendLen)
	recvVals := make([]float64, recvLen)
	dang := make([]float64, 1)

	for it := it0; it < iters; it++ {
		// Checkpoint at the top of an iteration: every rank is at the same
		// count here (the previous iteration's collectives are the lockstep
		// fence), so one version's shards always form a consistent cut.
		if every > 0 && it > 0 && it != it0 && it%every == 0 {
			shard, err := ckpt.Encode(prCkpt{Iter: it, Lo: lo, Hi: hi, Pr: pr})
			if err != nil {
				return nil, err
			}
			if _, err := ckpt.Save(c, store, shard); err != nil {
				return nil, err
			}
		}
		if err := pageRankStep(c, g, plan, lo, hi, damping, pr, contrib, sendVals, recvVals, dang); err != nil {
			return nil, err
		}
	}
	return gatherFull(c, pr)
}
