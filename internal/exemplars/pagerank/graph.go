// Package pagerank implements the irregular-communication exemplar: PageRank
// and breadth-first search over a skewed directed graph, the workload shape
// the course's regular stencils and parameter sweeps never produce. Every
// vertex talks to an arbitrary, data-dependent set of peers, a few hub
// vertices absorb most of the traffic, and per-pair message sizes differ by
// orders of magnitude — exactly what the coalesced AlltoallvSlice exchange
// and the one-sided Accumulate push (mpi.Win) exist for.
//
// The graph is generated, not loaded: a counter-based hash drives both the
// degree sequence and the edge endpoints, so every rank regenerates the
// identical graph from (n, avgDeg, seed) and a partitioned run needs no
// input distribution step. The generator is deliberately skewed — a slice of
// hub vertices receives most edges, some vertices are dangling (no out
// edges) — so the exchange is irregular and the dangling-mass AllreduceSlice
// is load-bearing.
package pagerank

import "fmt"

// Graph is a directed graph in compressed sparse row form: the out-edges of
// vertex u are Dst[Off[u]:Off[u+1]].
type Graph struct {
	N   int
	Off []int
	Dst []int32
}

// OutDeg reports vertex u's out-degree.
func (g *Graph) OutDeg(u int) int { return g.Off[u+1] - g.Off[u] }

// Edges reports the total edge count.
func (g *Graph) Edges() int { return len(g.Dst) }

// mix is the splitmix64 finalizer: the counter-based hash underneath every
// generation decision, so the graph is a pure function of its parameters.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hash(seed int64, a, b int) uint64 {
	return mix(mix(uint64(seed)) ^ mix(uint64(a)<<20^uint64(b)))
}

// Gen generates the skewed graph: out-degrees are hash-drawn around avgDeg
// with occasional high-degree bursts, one vertex in eight is dangling, and
// three quarters of all edges point into the hub range (the first n/8
// vertices), so in-degree is heavily skewed toward the hubs.
func Gen(n, avgDeg int, seed int64) *Graph {
	if n < 2 || avgDeg < 1 {
		panic(fmt.Sprintf("pagerank: bad graph parameters n=%d avgDeg=%d", n, avgDeg))
	}
	hubs := n/8 + 1
	g := &Graph{N: n, Off: make([]int, n+1)}
	for u := 0; u < n; u++ {
		hu := hash(seed, u, 0)
		deg := 0
		if hu%8 != 0 { // one in eight vertices is dangling
			deg = 1 + int(hu>>3)%(2*avgDeg)
			if hu%31 == 0 { // occasional burst: out-degree skew
				deg *= 10
			}
		}
		g.Off[u+1] = g.Off[u] + deg
	}
	g.Dst = make([]int32, g.Off[n])
	for u := 0; u < n; u++ {
		for k, e := 0, g.Off[u]; e < g.Off[u+1]; k, e = k+1, e+1 {
			he := hash(seed+1, u, k)
			var v int
			if he%4 != 0 { // three quarters of edges land on a hub
				v = int(he>>2) % hubs
			} else {
				v = int(he>>2) % n
			}
			if v == u {
				v = (v + 1) % n
			}
			g.Dst[e] = int32(v)
		}
	}
	return g
}

// PageRankSeq is the sequential oracle: damped power iteration with the
// dangling mass redistributed uniformly, run for a fixed iteration count.
// The result sums to 1 (up to rounding).
func PageRankSeq(g *Graph, damping float64, iters int) []float64 {
	n := g.N
	pr := make([]float64, n)
	contrib := make([]float64, n)
	for v := range pr {
		pr[v] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for v := range contrib {
			contrib[v] = 0
		}
		dangling := 0.0
		for u := 0; u < n; u++ {
			d := g.OutDeg(u)
			if d == 0 {
				dangling += pr[u]
				continue
			}
			w := pr[u] / float64(d)
			for _, v := range g.Dst[g.Off[u]:g.Off[u+1]] {
				contrib[v] += w
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := range pr {
			pr[v] = base + damping*contrib[v]
		}
	}
	return pr
}

// BFSSeq is the breadth-first oracle: the level (hop distance) of every
// vertex from src, -1 for unreachable. Levels are exact integers, so every
// correct parallel traversal is bit-equal to this one.
func BFSSeq(g *Graph, src int) []int32 {
	level := make([]int32, g.N)
	for v := range level {
		level[v] = -1
	}
	level[src] = 0
	frontier := []int32{int32(src)}
	for depth := int32(0); len(frontier) > 0; depth++ {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Dst[g.Off[u]:g.Off[u+1]] {
				if level[v] < 0 {
					level[v] = depth + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return level
}
