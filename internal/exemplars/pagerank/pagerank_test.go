package pagerank

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/mpi"
)

// Oracle pinning: the distributed variants are checked against the
// sequential ones on every transport — bit-equal for BFS (levels are exact
// integers), and to a tight absolute tolerance for PageRank (the
// distributed scatter-adds reassociate the floating-point sums; nothing
// else may differ).

const prTol = 1e-12

func testGraph() *Graph { return Gen(400, 6, 42) }

func maxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestGenDeterministicAndSkewed: the generator is a pure function of its
// parameters, and the graph it builds actually has the irregular shape the
// exemplar needs — hubs, bursts, dangling vertices.
func TestGenDeterministicAndSkewed(t *testing.T) {
	g1, g2 := testGraph(), testGraph()
	if g1.Edges() != g2.Edges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.Edges(), g2.Edges())
	}
	for i := range g1.Dst {
		if g1.Dst[i] != g2.Dst[i] {
			t.Fatalf("edge %d differs: %d vs %d", i, g1.Dst[i], g2.Dst[i])
		}
	}
	dangling, maxDeg := 0, 0
	for u := 0; u < g1.N; u++ {
		d := g1.OutDeg(u)
		if d == 0 {
			dangling++
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	if dangling == 0 {
		t.Fatal("no dangling vertices: the dangling-mass Allreduce would be dead code")
	}
	avg := float64(g1.Edges()) / float64(g1.N)
	if float64(maxDeg) < 4*avg {
		t.Fatalf("max out-degree %d not skewed vs average %.1f", maxDeg, avg)
	}
	// In-degree skew: the hub range must absorb the majority of edges.
	hubs := g1.N/8 + 1
	intoHubs := 0
	for _, v := range g1.Dst {
		if int(v) < hubs {
			intoHubs++
		}
	}
	if 2*intoHubs < g1.Edges() {
		t.Fatalf("only %d/%d edges land on hubs: in-degree not skewed", intoHubs, g1.Edges())
	}
	if sum := vectorSum(PageRankSeq(g1, 0.85, 30)); math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sequential PageRank sums to %v, want 1", sum)
	}
}

func vectorSum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

var prLaunchers = func() []struct {
	name string
	run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
	opts []mpi.Option
} {
	ls := []struct {
		name string
		run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
		opts []mpi.Option
	}{
		{"local", mpi.Run, nil},
		{"local-serialized", mpi.Run, []mpi.Option{mpi.WithSerialization()}},
		{"tcp", mpi.RunTCP, nil},
	}
	if mpi.ShmSupported() {
		ls = append(ls, struct {
			name string
			run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
			opts []mpi.Option
		}{"shm", mpi.RunShm, nil})
	}
	return ls
}()

func TestPageRankMPIMatchesSeq(t *testing.T) {
	g := testGraph()
	const damping, iters = 0.85, 20
	want := PageRankSeq(g, damping, iters)
	for _, l := range prLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			for _, np := range []int{1, 2, 3, 5} {
				err := l.run(np, func(c *mpi.Comm) error {
					got, err := PageRankMPI(c, g, damping, iters)
					if err != nil {
						return err
					}
					if d := maxAbsDiff(got, want); d > prTol {
						t.Errorf("np=%d rank=%d: max |Δ| = %g > %g", np, c.Rank(), d, prTol)
					}
					return nil
				}, l.opts...)
				if err != nil {
					t.Fatalf("np=%d: %v", np, err)
				}
			}
		})
	}
}

func TestPageRankRMAMatchesSeq(t *testing.T) {
	g := testGraph()
	const damping, iters = 0.85, 20
	want := PageRankSeq(g, damping, iters)
	for _, l := range prLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			for _, np := range []int{1, 2, 4} {
				err := l.run(np, func(c *mpi.Comm) error {
					got, err := PageRankRMA(c, g, damping, iters)
					if err != nil {
						return err
					}
					if d := maxAbsDiff(got, want); d > prTol {
						t.Errorf("np=%d rank=%d: max |Δ| = %g > %g", np, c.Rank(), d, prTol)
					}
					return nil
				}, l.opts...)
				if err != nil {
					t.Fatalf("np=%d: %v", np, err)
				}
			}
		})
	}
}

// TestPageRankVariantsAgree: the two-sided and one-sided formulations reach
// the same fixed point on the same world — the RMA layer is a transport for
// the same arithmetic, not a different algorithm.
func TestPageRankVariantsAgree(t *testing.T) {
	g := testGraph()
	const damping, iters = 0.85, 15
	err := mpi.Run(4, func(c *mpi.Comm) error {
		a, err := PageRankMPI(c, g, damping, iters)
		if err != nil {
			return err
		}
		b, err := PageRankRMA(c, g, damping, iters)
		if err != nil {
			return err
		}
		if d := maxAbsDiff(a, b); d > prTol {
			t.Errorf("rank %d: variants differ by %g", c.Rank(), d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBFSMPIBitEqual(t *testing.T) {
	g := testGraph()
	const src = 0 // a hub: reaches most of the graph
	want := BFSSeq(g, src)
	reached := 0
	for _, l := range want {
		if l >= 0 {
			reached++
		}
	}
	if reached < g.N/2 {
		t.Fatalf("BFS source reaches only %d/%d vertices: weak test graph", reached, g.N)
	}
	for _, l := range prLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			for _, np := range []int{1, 2, 3, 5} {
				err := l.run(np, func(c *mpi.Comm) error {
					got, err := BFSMPI(c, g, src)
					if err != nil {
						return err
					}
					for v := range got {
						if got[v] != want[v] {
							t.Errorf("np=%d rank=%d: level[%d] = %d, want %d", np, c.Rank(), v, got[v], want[v])
							return nil
						}
					}
					return nil
				}, l.opts...)
				if err != nil {
					t.Fatalf("np=%d: %v", np, err)
				}
			}
		})
	}
}

// TestPageRankRecover: seeded kill plans at several points of the run —
// before the first checkpoint, mid-run, rank 0 itself — on the local, TCP,
// and shm transports. The survivors' result must still match the
// sequential oracle: the checkpoint restore plus re-decomposition over the
// shrunken world preserves the arithmetic up to reassociation.
func TestPageRankRecover(t *testing.T) {
	g := Gen(300, 5, 7)
	const damping, iters, every = 0.85, 24, 6
	want := PageRankSeq(g, damping, iters)
	kill := func(victim, skip int) *mpi.FaultPlan {
		return &mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{{
			Src: victim, Dst: mpi.AnySource, Tag: mpi.AnyTag,
			SkipFirst: skip, Action: mpi.FaultKillRank,
		}}}
	}
	cases := []struct {
		name string
		np   int
		plan *mpi.FaultPlan
	}{
		{"no-failure", 4, nil},
		{"before-first-checkpoint", 4, kill(2, 3)},
		{"mid-run", 4, kill(1, 100)},
		{"rank0-dies", 4, kill(0, 120)},
	}
	launchers := []struct {
		name string
		run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
	}{
		{"local", mpi.Run},
		{"tcp", mpi.RunTCP},
	}
	if mpi.ShmSupported() {
		launchers = append(launchers, struct {
			name string
			run  func(np int, main func(c *mpi.Comm) error, opts ...mpi.Option) error
		}{"shm", mpi.RunShm})
	}
	for _, l := range launchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			for _, tc := range cases {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					store := ckpt.NewMemStore()
					opts := []mpi.Option{mpi.WithRecovery()}
					if tc.plan != nil {
						opts = append(opts, mpi.WithFaults(*tc.plan))
					}
					var mu sync.Mutex
					results := map[int][]float64{}
					done := make(chan error, 1)
					go func() {
						done <- l.run(tc.np, func(c *mpi.Comm) error {
							got, err := PageRankRecover(c, g, damping, iters, store, every)
							if err != nil {
								return err
							}
							mu.Lock()
							results[c.Rank()] = got
							mu.Unlock()
							return nil
						}, opts...)
					}()
					select {
					case err := <-done:
						if err != nil {
							t.Fatalf("recovered run should report success, got %v", err)
						}
					case <-time.After(60 * time.Second):
						t.Fatal("recovery run wedged")
					}
					if len(results) == 0 {
						t.Fatal("no survivor returned a result")
					}
					for rank, got := range results {
						if d := maxAbsDiff(got, want); d > prTol {
							t.Fatalf("rank %d: recovered result off by %g > %g", rank, d, prTol)
						}
					}
					if tc.plan != nil && len(results) == tc.np {
						t.Fatal("fault plan injected no failure: every rank survived")
					}
				})
			}
		})
	}
}
