package pagerank

import (
	"fmt"

	"repro/internal/mpi"
)

// The distributed variants. Vertices are block-partitioned: rank r owns
// [vlo(r), vhi(r)) and holds the PageRank values (or BFS levels) of exactly
// its own vertices. Every rank regenerates the full graph from the shared
// parameters and scans only its own vertices' out-edges, so the only
// communication is the irregular part: contributions (or frontier pushes)
// whose destination lives on another rank.
//
// PageRankMPI is the two-sided formulation — per-iteration coalesced
// exchange with AlltoallvInto over a setup-time destination index — and
// PageRankRMA is the one-sided formulation — each rank Accumulates dense
// per-owner contribution blocks into the owners' windows between two fences.
// Both match PageRankSeq to floating-point reassociation (the property the
// tests pin); BFSMPI matches BFSSeq bit-for-bit.

// vrange is the block partition: rank r of np owns [n*r/np, n*(r+1)/np).
func vrange(n, r, np int) (int, int) { return n * r / np, n * (r + 1) / np }

// ownerOf inverts vrange.
func ownerOf(v, n, np int) int {
	o := v * np / n
	for n*o/np > v {
		o--
	}
	for n*(o+1)/np <= v {
		o++
	}
	return o
}

// exchangePlan is the setup-time index for the steady-state contribution
// exchange: which foreign vertices this rank pushes to (deduplicated and
// packed per owner), where each of its edges lands in the packed send
// buffer, and which of its own vertices the peers will push to.
type exchangePlan struct {
	sendCounts []int // packed contribution slots per owner
	recvCounts []int
	edgeSlot   []int32 // per owned edge: packed send slot, or ^localIndex
	recvIdx    []int32 // per incoming slot: the owned vertex it folds into
	sendLen    int
}

// buildPlan scans the owned edge range once and exchanges the destination
// indices, so the per-iteration exchange moves only float64 values with
// fixed counts.
func buildPlan(c *mpi.Comm, g *Graph) (*exchangePlan, error) {
	np, rank := c.Size(), c.Rank()
	lo, hi := vrange(g.N, rank, np)
	p := &exchangePlan{
		sendCounts: make([]int, np),
		edgeSlot:   make([]int32, g.Off[hi]-g.Off[lo]),
	}
	// Dedup destinations per owner: slot[v] is the packed position of
	// foreign vertex v within its owner's block, assigned in first-touch
	// order (deterministic: the edge scan order is fixed).
	slot := make(map[int32]int32)
	perOwner := make([][]int32, np) // destination vertex per packed slot
	for u := lo; u < hi; u++ {
		for e := g.Off[u]; e < g.Off[u+1]; e++ {
			v := g.Dst[e]
			if int(v) >= lo && int(v) < hi {
				p.edgeSlot[e-g.Off[lo]] = ^(v - int32(lo))
				continue
			}
			s, ok := slot[v]
			if !ok {
				o := ownerOf(int(v), g.N, np)
				s = int32(len(perOwner[o]))
				perOwner[o] = append(perOwner[o], v)
				slot[v] = s
			}
			p.edgeSlot[e-g.Off[lo]] = s // block-local for now; rebased below
		}
	}
	// Rebase block-local slots onto the packed send buffer and flatten the
	// destination index for the one-time exchange.
	displ := make([]int32, np)
	total := 0
	for o := 0; o < np; o++ {
		displ[o] = int32(total)
		p.sendCounts[o] = len(perOwner[o])
		total += len(perOwner[o])
	}
	sendIdx := make([]int32, total)
	for o, idx := range perOwner {
		copy(sendIdx[displ[o]:], idx)
	}
	for u := lo; u < hi; u++ {
		for e := g.Off[u]; e < g.Off[u+1]; e++ {
			i := e - g.Off[lo]
			if p.edgeSlot[i] < 0 {
				continue
			}
			p.edgeSlot[i] += displ[ownerOf(int(g.Dst[e]), g.N, np)]
		}
	}
	p.sendLen = total

	var err error
	if p.recvCounts, err = mpi.AlltoallCounts(c, p.sendCounts); err != nil {
		return nil, err
	}
	if p.recvIdx, err = mpi.AlltoallvSlice(c, sendIdx, p.sendCounts, p.recvCounts); err != nil {
		return nil, err
	}
	for i, v := range p.recvIdx {
		if int(v) < lo || int(v) >= hi {
			return nil, fmt.Errorf("pagerank: peer pushed vertex %d outside this rank's range [%d,%d)", v, lo, hi)
		}
		p.recvIdx[i] = v - int32(lo)
	}
	return p, nil
}

// PageRankMPI runs the damped power iteration across the communicator and
// returns the full PageRank vector on every rank. Per iteration it moves
// one coalesced value block per rank pair (AlltoallvInto into reused
// buffers, zero steady-state allocation) plus one scalar Allreduce for the
// dangling mass.
func PageRankMPI(c *mpi.Comm, g *Graph, damping float64, iters int) ([]float64, error) {
	np, rank := c.Size(), c.Rank()
	lo, hi := vrange(g.N, rank, np)
	plan, err := buildPlan(c, g)
	if err != nil {
		return nil, err
	}
	recvLen := 0
	for _, ct := range plan.recvCounts {
		recvLen += ct
	}
	pr := make([]float64, hi-lo)
	for i := range pr {
		pr[i] = 1 / float64(g.N)
	}
	contrib := make([]float64, hi-lo)
	sendVals := make([]float64, plan.sendLen)
	recvVals := make([]float64, recvLen)
	dang := make([]float64, 1)

	for it := 0; it < iters; it++ {
		if err := pageRankStep(c, g, plan, lo, hi, damping, pr, contrib, sendVals, recvVals, dang); err != nil {
			return nil, err
		}
	}
	return gatherFull(c, pr)
}

// pageRankStep is one power iteration over the owned range: scatter-add
// contributions into the local and packed-send slots, exchange, fold, and
// apply the damped update.
func pageRankStep(c *mpi.Comm, g *Graph, plan *exchangePlan, lo, hi int, damping float64,
	pr, contrib, sendVals, recvVals, dang []float64) error {
	for i := range contrib {
		contrib[i] = 0
	}
	for i := range sendVals {
		sendVals[i] = 0
	}
	dang[0] = 0
	c.Compute(func() {
		for u := lo; u < hi; u++ {
			d := g.OutDeg(u)
			if d == 0 {
				dang[0] += pr[u-lo]
				continue
			}
			w := pr[u-lo] / float64(d)
			for e := g.Off[u]; e < g.Off[u+1]; e++ {
				if s := plan.edgeSlot[e-g.Off[lo]]; s >= 0 {
					sendVals[s] += w
				} else {
					contrib[^s] += w
				}
			}
		}
	})
	total, err := mpi.AllreduceSliceOp(c, dang, mpi.Sum)
	if err != nil {
		return err
	}
	if err := mpi.AlltoallvInto(c, sendVals, plan.sendCounts, recvVals, plan.recvCounts); err != nil {
		return err
	}
	for k, v := range plan.recvIdx {
		contrib[v] += recvVals[k]
	}
	base := (1-damping)/float64(g.N) + damping*total[0]/float64(g.N)
	for i := range pr {
		pr[i] = base + damping*contrib[i]
	}
	return nil
}

// PageRankRMA is the one-sided formulation: each rank exposes its
// contribution block as an RMA window and every rank Accumulates a dense
// per-owner block into it between two fences — the target never posts a
// receive, the fold runs target-side. Same fixed-point as PageRankMPI, up
// to floating-point reassociation (Accumulate arrival order is
// nondeterministic).
func PageRankRMA(c *mpi.Comm, g *Graph, damping float64, iters int) ([]float64, error) {
	np, rank := c.Size(), c.Rank()
	lo, hi := vrange(g.N, rank, np)
	w, err := mpi.WinCreate[float64](c, hi-lo)
	if err != nil {
		return nil, err
	}
	defer w.Free()

	pr := make([]float64, hi-lo)
	for i := range pr {
		pr[i] = 1 / float64(g.N)
	}
	dense := make([][]float64, np) // per-owner pre-aggregated contribution block
	for o := 0; o < np; o++ {
		olo, ohi := vrange(g.N, o, np)
		dense[o] = make([]float64, ohi-olo)
	}
	dang := make([]float64, 1)

	for it := 0; it < iters; it++ {
		for o := range dense {
			for i := range dense[o] {
				dense[o][i] = 0
			}
		}
		dang[0] = 0
		c.Compute(func() {
			for u := lo; u < hi; u++ {
				d := g.OutDeg(u)
				if d == 0 {
					dang[0] += pr[u-lo]
					continue
				}
				w := pr[u-lo] / float64(d)
				for _, v := range g.Dst[g.Off[u]:g.Off[u+1]] {
					o := ownerOf(int(v), g.N, np)
					olo, _ := vrange(g.N, o, np)
					dense[o][int(v)-olo] += w
				}
			}
		})
		// The window holds zeros here (fresh, or zeroed at the end of the
		// previous iteration before that epoch's closing fence).
		if err := w.Fence(); err != nil {
			return nil, err
		}
		for o := 0; o < np; o++ {
			if len(dense[o]) == 0 {
				continue
			}
			if err := w.Accumulate(o, 0, dense[o], mpi.Sum); err != nil {
				return nil, err
			}
		}
		total, err := mpi.AllreduceSliceOp(c, dang, mpi.Sum)
		if err != nil {
			return nil, err
		}
		if err := w.Fence(); err != nil {
			return nil, err
		}
		contrib := w.Local()
		base := (1-damping)/float64(g.N) + damping*total[0]/float64(g.N)
		for i := range pr {
			pr[i] = base + damping*contrib[i]
			contrib[i] = 0 // reset the exposure for the next epoch
		}
	}
	return gatherFull(c, pr)
}

// BFSMPI is the level-synchronized distributed traversal: each level, ranks
// expand their owned frontier, push foreign discoveries to the owners with
// one AlltoallvSlice (counts re-negotiated per level — frontiers are as
// irregular as communication gets), and agree on termination with an
// Allreduce. The level assignment is order-independent, so the result is
// bit-equal to BFSSeq on every transport and rank count.
func BFSMPI(c *mpi.Comm, g *Graph, src int) ([]int32, error) {
	if src < 0 || src >= g.N {
		return nil, fmt.Errorf("pagerank: BFS source %d outside [0,%d)", src, g.N)
	}
	np, rank := c.Size(), c.Rank()
	lo, hi := vrange(g.N, rank, np)
	level := make([]int32, hi-lo)
	for i := range level {
		level[i] = -1
	}
	var frontier []int32
	if src >= lo && src < hi {
		level[src-lo] = 0
		frontier = append(frontier, int32(src))
	}
	outbox := make([][]int32, np)
	for depth := int32(0); ; depth++ {
		for o := range outbox {
			outbox[o] = outbox[o][:0]
		}
		var next []int32
		for _, u := range frontier {
			for _, v := range g.Dst[g.Off[u]:g.Off[u+1]] {
				if int(v) >= lo && int(v) < hi {
					if level[v-int32(lo)] < 0 {
						level[v-int32(lo)] = depth + 1
						next = append(next, v)
					}
					continue
				}
				outbox[ownerOf(int(v), g.N, np)] = append(outbox[ownerOf(int(v), g.N, np)], v)
			}
		}
		sendCounts := make([]int, np)
		total := 0
		for o := range outbox {
			sendCounts[o] = len(outbox[o])
			total += len(outbox[o])
		}
		send := make([]int32, 0, total)
		for _, b := range outbox {
			send = append(send, b...)
		}
		recvCounts, err := mpi.AlltoallCounts(c, sendCounts)
		if err != nil {
			return nil, err
		}
		pushed, err := mpi.AlltoallvSlice(c, send, sendCounts, recvCounts)
		if err != nil {
			return nil, err
		}
		for _, v := range pushed {
			if level[v-int32(lo)] < 0 {
				level[v-int32(lo)] = depth + 1
				next = append(next, v)
			}
		}
		grew, err := mpi.Allreduce(c, len(next), mpi.Combine[int](mpi.Sum))
		if err != nil {
			return nil, err
		}
		if grew == 0 {
			break
		}
		frontier = next
	}
	return gatherFull(c, level)
}

// gatherFull concatenates the per-rank blocks into the full vector (the
// blocks are contiguous in rank order by construction of vrange).
func gatherFull[T int32 | float64](c *mpi.Comm, local []T) ([]T, error) {
	blocks, err := mpi.Allgather(c, local)
	if err != nil {
		return nil, err
	}
	var full []T
	for _, b := range blocks {
		full = append(full, b...)
	}
	return full, nil
}
