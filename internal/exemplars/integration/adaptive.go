package integration

import (
	"errors"
	"math"

	"repro/internal/shm"
)

// Adaptive quadrature: the "to explore" extension the handout's exemplar
// section points students toward after the fixed-grid trapezoidal rule.
// Adaptive Simpson recursion subdivides only where the integrand is hard,
// which makes the workload irregular — exactly the shape explicit tasks
// (shm.TaskGroup) handle and static loops cannot.

// ErrBadTolerance is returned for non-positive tolerances.
var ErrBadTolerance = errors.New("integration: tolerance must be positive")

// simpson computes Simpson's rule on [a, b].
func simpson(f Func, a, fa, b, fb float64) (mid, fmid, estimate float64) {
	mid = (a + b) / 2
	fmid = f(mid)
	estimate = (b - a) / 6 * (fa + 4*fmid + fb)
	return mid, fmid, estimate
}

// adaptiveSeq is the classic recursive refinement with Richardson error
// control.
func adaptiveSeq(f Func, a, fa, b, fb, whole, mid, fmid, tol float64, depth int) float64 {
	lm, flm, left := simpson(f, a, fa, mid, fmid)
	rm, frm, right := simpson(f, mid, fmid, b, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSeq(f, a, fa, mid, fmid, left, lm, flm, tol/2, depth-1) +
		adaptiveSeq(f, mid, fmid, b, fb, right, rm, frm, tol/2, depth-1)
}

// maxAdaptiveDepth bounds the recursion for pathological integrands.
const maxAdaptiveDepth = 40

// AdaptiveSimpson approximates ∫ₐᵇ f to the given absolute tolerance,
// sequentially.
func AdaptiveSimpson(f Func, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		return 0, ErrBadTolerance
	}
	fa, fb := f(a), f(b)
	mid, fmid, whole := simpson(f, a, fa, b, fb)
	return adaptiveSeq(f, a, fa, b, fb, whole, mid, fmid, tol, maxAdaptiveDepth), nil
}

// AdaptiveSimpsonShared is the task-parallel version: each refinement level
// above a work cutoff spawns its left half as an explicit task and recurses
// into the right half itself, so the irregular refinement tree spreads over
// the team.
func AdaptiveSimpsonShared(f Func, a, b, tol float64, numThreads int) (float64, error) {
	if tol <= 0 {
		return 0, ErrBadTolerance
	}
	var result float64
	shm.Parallel(numThreads, func(tc *shm.ThreadContext) {
		tc.Single("integrate", func() {
			fa, fb := f(a), f(b)
			mid, fmid, whole := simpson(f, a, fa, b, fb)
			result = adaptiveTask(tc, f, a, fa, b, fb, whole, mid, fmid, tol, maxAdaptiveDepth)
		})
		tc.Taskwait()
	})
	return result, nil
}

// taskDepthCutoff stops spawning below this depth-from-root so leaf work
// stays sequential (task overhead would dominate).
const taskDepthCutoff = maxAdaptiveDepth - 8

func adaptiveTask(tc *shm.ThreadContext, f Func, a, fa, b, fb, whole, mid, fmid, tol float64, depth int) float64 {
	lm, flm, left := simpson(f, a, fa, mid, fmid)
	rm, frm, right := simpson(f, mid, fmid, b, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	if depth <= taskDepthCutoff {
		return adaptiveSeq(f, a, fa, mid, fmid, left, lm, flm, tol/2, depth-1) +
			adaptiveSeq(f, mid, fmid, b, fb, right, rm, frm, tol/2, depth-1)
	}
	var l float64
	g := tc.NewTaskGroup()
	g.Go(func() {
		l = adaptiveTask(tc, f, a, fa, mid, fmid, left, lm, flm, tol/2, depth-1)
	})
	r := adaptiveTask(tc, f, mid, fmid, b, fb, right, rm, frm, tol/2, depth-1)
	g.Wait()
	return l + r
}
