package integration

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
)

func TestTrapezoidConvergesToPi(t *testing.T) {
	got, err := Trapezoid(QuarterCircle, 0, 1, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Pi) > 1e-9 {
		t.Fatalf("trapezoid pi = %.12f (err %g)", got, AbsError(got))
	}
}

func TestTrapezoidLinearFunctionIsExact(t *testing.T) {
	// The trapezoidal rule is exact for affine integrands at any n.
	f := func(x float64) float64 { return 3*x + 2 }
	for _, n := range []int{1, 2, 7, 100} {
		got, err := Trapezoid(f, 0, 2, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-10) > 1e-12 { // ∫₀² (3x+2) = 6+4
			t.Fatalf("n=%d: got %v, want 10", n, got)
		}
	}
}

func TestTrapezoidBadN(t *testing.T) {
	if _, err := Trapezoid(QuarterCircle, 0, 1, 0); !errors.Is(err, ErrBadInterval) {
		t.Fatalf("err = %v", err)
	}
	if _, err := TrapezoidShared(QuarterCircle, 0, 1, 0, 2); !errors.Is(err, ErrBadInterval) {
		t.Fatalf("shared err = %v", err)
	}
}

func TestTrapezoidSharedMatchesSequential(t *testing.T) {
	const n = 100_000
	want, err := Trapezoid(QuarterCircle, 0, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		got, err := TrapezoidShared(QuarterCircle, 0, 1, n, threads)
		if err != nil {
			t.Fatal(err)
		}
		// Summation order differs between thread counts, so allow
		// floating-point slack proportional to the result.
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("threads=%d: %v vs sequential %v", threads, got, want)
		}
	}
}

func TestTrapezoidMPIMatchesSequentialEverywhere(t *testing.T) {
	const n = 10_000
	want, err := Trapezoid(QuarterCircle, 0, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{1, 2, 3, 5, 8} {
		err := mpi.Run(np, func(c *mpi.Comm) error {
			got, err := TrapezoidMPI(c, QuarterCircle, 0, 1, n)
			if err != nil {
				return err
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("np=%d rank=%d: %v vs %v", np, c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrapezoidMPIBadN(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := TrapezoidMPI(c, QuarterCircle, 0, 1, 0); !errors.Is(err, ErrBadInterval) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloPiAccuracy(t *testing.T) {
	got, err := MonteCarloPi(200_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Pi) > 0.02 {
		t.Fatalf("MC pi = %v", got)
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	a, _ := MonteCarloPi(50_000, 7)
	b, _ := MonteCarloPi(50_000, 7)
	c, _ := MonteCarloPi(50_000, 8)
	if a != b {
		t.Fatal("same seed produced different estimates")
	}
	if a == c {
		t.Fatal("different seeds produced identical estimates (suspicious)")
	}
}

func TestMonteCarloSharedDeterministicAndAccurate(t *testing.T) {
	const n = 100_000
	first, err := MonteCarloPiShared(n, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	second, err := MonteCarloPiShared(n, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("shared MC not deterministic for fixed (n, seed, threads)")
	}
	if math.Abs(first-math.Pi) > 0.05 {
		t.Fatalf("shared MC pi = %v", first)
	}
}

func TestMonteCarloMPIMatchesSharedPartitioning(t *testing.T) {
	// The MPI and shared versions use the same per-worker seeding, so with
	// equal worker counts they produce the identical estimate.
	const n, seed = 60_000, 99
	want, err := MonteCarloPiShared(n, seed, 3)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[int]float64{}
	err = mpi.Run(3, func(c *mpi.Comm) error {
		v, err := MonteCarloPiMPI(c, n, seed)
		if err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = v
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range got {
		if v != want {
			t.Fatalf("rank %d estimate %v, want %v", r, v, want)
		}
	}
}

func TestMonteCarloErrors(t *testing.T) {
	if _, err := MonteCarloPi(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := MonteCarloPiShared(0, 1, 2); err == nil {
		t.Fatal("shared n=0 accepted")
	}
}

func TestBlockRangePartition(t *testing.T) {
	prop := func(nRaw uint16, kRaw uint8) bool {
		n := int(nRaw % 500)
		k := int(kRaw%9) + 1
		prev := 0
		for w := 0; w < k; w++ {
			lo, hi := blockRange(n, w, k)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTrapezoidSharedAccuracyProperty(t *testing.T) {
	// For smooth integrands the composite trapezoid error shrinks as n
	// grows; check monotone-ish improvement over decades.
	errAt := func(n int) float64 {
		v, err := TrapezoidShared(QuarterCircle, 0, 1, n, 4)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(v - math.Pi)
	}
	if !(errAt(10) > errAt(1000)) || !(errAt(1000) > errAt(100000)) {
		t.Fatal("trapezoid error did not decrease with n")
	}
}
