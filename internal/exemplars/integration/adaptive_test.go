package integration

import (
	"errors"
	"math"
	"testing"
)

func TestAdaptiveSimpsonKnownIntegrals(t *testing.T) {
	cases := []struct {
		name string
		f    Func
		a, b float64
		want float64
	}{
		{"pi", QuarterCircle, 0, 1, math.Pi},
		{"cubic", func(x float64) float64 { return x * x * x }, 0, 2, 4},
		{"sin", math.Sin, 0, math.Pi, 2},
		{"exp", math.Exp, 0, 1, math.E - 1},
		// A sharply peaked integrand: adaptive refinement earns its keep.
		{"peak", func(x float64) float64 { return 1 / (1e-4 + x*x) }, -1, 1,
			2 / 1e-2 * math.Atan(1/1e-2)},
	}
	for _, c := range cases {
		const tol = 1e-10
		got, err := AdaptiveSimpson(c.f, c.a, c.b, tol)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(got-c.want) > 1e-7*math.Abs(c.want)+1e-9 {
			t.Errorf("%s: got %.12g, want %.12g", c.name, got, c.want)
		}
	}
}

func TestAdaptiveSimpsonSharedMatchesSequential(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(10*x) / (0.1 + x*x) }
	const tol = 1e-9
	want, err := AdaptiveSimpson(f, -2, 3, tol)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		got, err := AdaptiveSimpsonShared(f, -2, 3, tol, threads)
		if err != nil {
			t.Fatal(err)
		}
		// The task decomposition changes only the traversal order of the
		// identical refinement tree; summation pairing is preserved, so
		// results agree to roundoff.
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("threads=%d: %.15g vs sequential %.15g", threads, got, want)
		}
	}
}

func TestAdaptiveSimpsonTolerance(t *testing.T) {
	if _, err := AdaptiveSimpson(QuarterCircle, 0, 1, 0); !errors.Is(err, ErrBadTolerance) {
		t.Fatalf("tol=0 err = %v", err)
	}
	if _, err := AdaptiveSimpsonShared(QuarterCircle, 0, 1, -1, 2); !errors.Is(err, ErrBadTolerance) {
		t.Fatalf("shared tol<0 err = %v", err)
	}
}

func TestAdaptiveBeatsFixedGridOnPeaks(t *testing.T) {
	// For a sharp peak, adaptive Simpson at modest tolerance is more
	// accurate than a 10k-point trapezoid.
	peak := func(x float64) float64 { return 1 / (1e-4 + x*x) }
	want := 2 / 1e-2 * math.Atan(1/1e-2)

	adaptive, err := AdaptiveSimpson(peak, -1, 1, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Trapezoid(peak, -1, 1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(adaptive-want) >= math.Abs(fixed-want) {
		t.Fatalf("adaptive err %g not better than fixed-grid err %g",
			math.Abs(adaptive-want), math.Abs(fixed-want))
	}
}
