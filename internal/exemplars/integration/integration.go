// Package integration implements the numerical-integration exemplar that
// closes the shared-memory module's final half hour: approximating a
// definite integral with the trapezoidal rule, and π with both the
// quarter-circle integral and Monte Carlo dart throwing. The module uses it
// for the "small benchmarking study" in which learners measure speedup at
// 1–4 threads on the Raspberry Pi; the distributed module reuses it across
// ranks.
package integration

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mpi"
	"repro/internal/shm"
)

// Func is the integrand.
type Func func(x float64) float64

// ErrBadInterval is returned when the subdivision count is not positive.
var ErrBadInterval = errors.New("integration: need at least 1 trapezoid")

// QuarterCircle is the classic teaching integrand: ∫₀¹ 4/(1+x²) dx = π.
func QuarterCircle(x float64) float64 { return 4 / (1 + x*x) }

// Trapezoid approximates ∫ₐᵇ f with n trapezoids, sequentially: the
// baseline learners time first.
func Trapezoid(f Func, a, b float64, n int) (float64, error) {
	if n < 1 {
		return 0, ErrBadInterval
	}
	h := (b - a) / float64(n)
	sum := (f(a) + f(b)) / 2
	for i := 1; i < n; i++ {
		sum += f(a + float64(i)*h)
	}
	return sum * h, nil
}

// TrapezoidShared is the shared-memory parallelization: the interior points
// are a parallel loop with a sum reduction — precisely the OpenMP exemplar's
// "#pragma omp parallel for reduction(+:sum)".
func TrapezoidShared(f Func, a, b float64, n, numThreads int) (float64, error) {
	if n < 1 {
		return 0, ErrBadInterval
	}
	h := (b - a) / float64(n)
	sum := shm.ParallelForReduceFloat64(numThreads, n-1, shm.Static(), shm.OpSum, func(i int) float64 {
		return f(a + float64(i+1)*h)
	})
	sum += (f(a) + f(b)) / 2
	return sum * h, nil
}

// TrapezoidMPI is the message-passing parallelization: each rank integrates
// a contiguous slab of the interval and an allreduce combines the slabs, so
// every rank returns the full integral. The local kernel runs under the
// rank's Compute gate so platform models constrain it faithfully.
func TrapezoidMPI(c *mpi.Comm, f Func, a, b float64, n int) (float64, error) {
	if n < 1 {
		return 0, ErrBadInterval
	}
	lo, hi := blockRange(n, c.Rank(), c.Size())
	h := (b - a) / float64(n)
	local := 0.0
	c.Compute(func() {
		// Each rank sums its trapezoids [lo, hi).
		for i := lo; i < hi; i++ {
			x0 := a + float64(i)*h
			local += (f(x0) + f(x0+h)) / 2 * h
		}
	})
	return mpi.Allreduce(c, local, mpi.Combine[float64](mpi.Sum))
}

// MonteCarloPi estimates π by dart throwing: the fraction of n random
// points in the unit square that land inside the quarter circle approaches
// π/4. The seed makes runs reproducible.
func MonteCarloPi(n int, seed int64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("integration: need at least 1 dart, got %d", n)
	}
	hits := countHits(n, seed)
	return 4 * float64(hits) / float64(n), nil
}

// MonteCarloPiShared splits the darts across threads. Each thread uses its
// own generator seeded from (seed, thread), so the estimate is deterministic
// for a given (n, seed, numThreads). The thread count is resolved by
// shm.TeamSize, and each thread's dart count is one region-level reduction
// partial: this is bulk per-thread work (a private RNG stream), so the
// whole-region ParallelReduceInt64 fits better than a parallel loop.
func MonteCarloPiShared(n int, seed int64, numThreads int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("integration: need at least 1 dart, got %d", n)
	}
	nt := shm.TeamSize(numThreads)
	hits := shm.ParallelReduceInt64(nt, shm.OpSum, func(tc *shm.ThreadContext) int64 {
		lo, hi := blockRange(n, tc.ThreadNum(), tc.NumThreads())
		return countHits(hi-lo, subSeed(seed, tc.ThreadNum()))
	})
	return 4 * float64(hits) / float64(n), nil
}

// MonteCarloPiMPI splits the darts across ranks; every rank returns the
// combined estimate.
func MonteCarloPiMPI(c *mpi.Comm, n int, seed int64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("integration: need at least 1 dart, got %d", n)
	}
	lo, hi := blockRange(n, c.Rank(), c.Size())
	var local int64
	c.Compute(func() {
		local = countHits(hi-lo, subSeed(seed, c.Rank()))
	})
	hits, err := mpi.Allreduce(c, local, mpi.Combine[int64](mpi.Sum))
	if err != nil {
		return 0, err
	}
	return 4 * float64(hits) / float64(n), nil
}

// countHits throws n darts with a generator seeded by seed and counts those
// inside the unit quarter circle.
func countHits(n int, seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	var hits int64
	for i := 0; i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1 {
			hits++
		}
	}
	return hits
}

// subSeed derives a worker seed; the multiplier is an arbitrary odd
// constant keeping worker streams far apart.
func subSeed(seed int64, worker int) int64 {
	const goldenGamma = int64(0x9E3779B97F4A7C15 >> 1)
	return seed + int64(worker)*goldenGamma
}

// blockRange computes the contiguous block of [0, n) owned by worker w of k.
func blockRange(n, w, k int) (lo, hi int) {
	base := n / k
	rem := n % k
	if w < rem {
		lo = w * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (w-rem)*base
	return lo, lo + base
}

// AbsError reports |estimate − π|, the accuracy figure the exemplar prints.
func AbsError(estimate float64) float64 { return math.Abs(estimate - math.Pi) }
