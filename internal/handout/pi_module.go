package handout

import "time"

// RaspberryPiModule builds the shared-memory module's virtual handout: the
// Runestone Interactive "Raspberry Pi - Virtual Handout" the paper's
// Section III-A describes. Chapter 1 is the video-led device setup the
// paper credits for the session's lack of technical issues; Chapter 2 works
// through the OpenMP patternlets (its Section 2.3 with the race-condition
// video and multiple-choice check is the paper's Figure 1); Chapter 3 holds
// the two exemplars and the closing benchmarking study. The pacing plan is
// the paper's half-hour / hour / half-hour split of a 2-hour lab period.
func RaspberryPiModule() *Module {
	return &Module{
		Title: "Raspberry Pi - Virtual Handout: Shared-Memory Parallel Computing with OpenMP",
		Summary: "A self-paced two-hour module: set up your Raspberry Pi using your " +
			"laptop as its keyboard and screen, explore shared-memory parallel " +
			"programming through patternlets, and finish with two exemplar " +
			"applications and a small benchmarking study.",
		Pacing: []PacingBlock{
			{30 * time.Minute, "Overview of processes, threads, and multicore systems; introduction to the patternlets"},
			{60 * time.Minute, "Hands-on exploration of the patternlets at your own pace"},
			{30 * time.Minute, "Exemplars: numerical integration and drug design, plus a small benchmarking study"},
		},
		Chapters: []Chapter{
			{
				Number: 1,
				Title:  "Getting Started with your Raspberry Pi",
				Sections: []Section{
					{
						Number: "1.1",
						Title:  "Your Kit",
						Body: "Your mailed kit contains a CanaKit Raspberry Pi, an Ethernet cable, " +
							"an Ethernet-to-USB dongle, a USB A-to-C dongle, a microSD card " +
							"pre-flashed with the course system image, and a case. Total cost of " +
							"the parts is about $100, so replacing any one of them is cheap.",
						Videos: []Video{{Title: "Unboxing your kit", Duration: 3 * time.Minute, URL: "https://pdcbook.calvin.edu/video/kit"}},
					},
					{
						Number: "1.2",
						Title:  "Flashing the System Image",
						Body: "If your microSD card did not arrive pre-flashed, burn the course " +
							"image onto it. The image works on all Raspberry Pi models from the " +
							"3B onward and contains every code example used below.",
						Videos: []Video{{Title: "Burning the image", Duration: 4 * time.Minute, URL: "https://pdcbook.calvin.edu/video/flash"}},
						Questions: []Question{
							&FillInBlank{
								QID:    "setup_fib_1",
								Text:   "The course system image works on all Raspberry Pi models from the ____ onward.",
								Accept: []string{"3B", "3b", "model 3B"},
								Why:    "The image was tested and confirmed on every model from the 3B onward.",
							},
						},
					},
					{
						Number: "1.3",
						Title:  "Using your Laptop as the Pi's Screen and Keyboard",
						Body: "Connect the Pi to your laptop with the Ethernet cable (and dongle if " +
							"needed) and open a remote desktop to it. This works the same on " +
							"Linux, macOS, and Windows, so the whole class shares one consistent " +
							"environment.",
						Videos: []Video{{Title: "Connecting with your laptop", Duration: 6 * time.Minute, URL: "https://pdcbook.calvin.edu/video/connect"}},
					},
				},
			},
			{
				Number: 2,
				Title:  "Shared-Memory Patternlets",
				Sections: []Section{
					{
						Number: "2.1",
						Title:  "Processes, Threads, and Multicore Systems",
						Body: "A process owns memory; threads within it share that memory. Your " +
							"Raspberry Pi's CPU has four cores, so four threads can execute " +
							"machine instructions at the same instant — true parallelism, not " +
							"just interleaving.",
						Questions: []Question{
							&MultipleChoice{
								QID:  "sp_mc_0",
								Text: "How many threads of one program can your Raspberry Pi execute simultaneously?",
								Options: []Option{
									{Key: "A", Text: "One; threads only appear simultaneous."},
									{Key: "B", Text: "Four, one per core."},
									{Key: "C", Text: "As many as you create."},
								},
								Correct: "B",
								Why:     "The Pi's CPU has four cores; extra threads time-share them.",
							},
						},
					},
					{
						Number: "2.2",
						Title:  "The SPMD Pattern and Fork-Join",
						Body: "Run the spmd and forkJoin patternlets. One body of code runs on " +
							"every thread of the team; thread id and team size differentiate " +
							"the threads' behaviour. Note how the output order changes between " +
							"runs.",
						PatternletRefs: []string{"spmd", "forkJoin", "barrier", "masterOnly", "singleExecution"},
						HandsOn:        "Run each patternlet several times with 2, 4, and 8 threads and watch how the output interleaves.",
						Questions: []Question{
							&FillInBlank{
								QID:    "sp_fib_1",
								Text:   "The construct that makes every thread wait until the whole team arrives is called a ____.",
								Accept: []string{"barrier"},
								Why:    "A barrier releases no one until everyone has arrived.",
							},
						},
					},
					{
						Number: "2.3",
						Title:  "Race Conditions",
						Body: "Run the raceCondition patternlet: several threads each add 1 to a " +
							"shared balance many times, yet the final balance usually comes up " +
							"short. The threads race: two of them read the same old value, both " +
							"add 1, and one update overwrites the other.",
						Videos:         []Video{{Title: "Race conditions", Duration: 2*time.Minute + 2*time.Second, URL: "https://pdcbook.calvin.edu/video/races"}},
						PatternletRefs: []string{"raceCondition"},
						HandsOn:        "Predict the final balance before running the patternlet; run it three times and record each result.",
						Questions: []Question{
							&MultipleChoice{
								QID:  "sp_mc_1",
								Text: "In the patternlet, when is the shared balance guaranteed to be correct?",
								Options: []Option{
									{Key: "A", Text: "When the thread count is a power of two."},
									{Key: "B", Text: "Only when a single thread performs all the updates."},
									{Key: "C", Text: "When each thread updates it fewer than 100 times."},
								},
								Correct: "B",
								Why:     "With one updater there is no interleaving to lose updates to.",
							},
							&MultipleChoice{
								QID:  "sp_mc_2",
								Text: "What is a race condition?",
								Options: []Option{
									{Key: "A", Text: "It is the smallest set of instructions that must execute sequentially to ensure correctness."},
									{Key: "B", Text: "It is a mechanism that helps protect a resource."},
									{Key: "C", Text: "It is something that arises when two or more threads attempt to modify a shared variable."},
								},
								Correct: "C",
								Why:     "Concurrent unsynchronized modification of shared state is exactly what a race condition is.",
							},
						},
					},
					{
						Number: "2.4",
						Title:  "Mutual Exclusion: Critical Sections, Atomics, and Locks",
						Body: "Fix the race three ways and compare their costs: a critical section " +
							"(one thread at a time through a code block), an atomic update (one " +
							"indivisible hardware instruction), and an explicit lock object.",
						PatternletRefs: []string{"mutualExclusion", "atomicUpdate"},
						HandsOn:        "Time raceCondition, mutualExclusion, and atomicUpdate with 4 threads. Which fix is cheapest?",
						Questions: []Question{
							&DragAndDrop{
								QID:  "sp_dd_1",
								Text: "Match each construct to its best use.",
								Pairs: map[string]string{
									"critical section": "a multi-statement update to shared state",
									"atomic update":    "a single add to a shared counter",
									"reduction":        "combining per-thread partial results",
								},
								Why: "Atomics fix single operations, criticals fix compound ones, reductions avoid sharing altogether.",
							},
						},
					},
					{
						Number: "2.5",
						Title:  "Parallel Loops and Schedules",
						Body: "Run the three loop patternlets. Equal chunks give each thread one " +
							"contiguous block; chunks of 1 deal iterations round-robin; the " +
							"dynamic schedule hands the next iteration to whichever thread is " +
							"free, balancing imbalanced work automatically.",
						PatternletRefs: []string{"parallelLoopEqualChunks", "parallelLoopChunksOf1", "dynamicSchedule"},
						HandsOn:        "With 4 threads and 8 iterations, predict which thread runs iteration 5 under each schedule, then check.",
						Questions: []Question{
							&FillInBlank{
								QID:    "sp_fib_2",
								Text:   "When iteration costs vary unpredictably, the ____ schedule balances the load best.",
								Accept: []string{"dynamic"},
								Why:    "Dynamic scheduling assigns the next iteration to the first free thread.",
							},
						},
					},
					{
						Number: "2.6",
						Title:  "Reduction",
						Body: "The reduction patternlet shows the idiomatic fix for accumulation " +
							"races: each thread accumulates privately and the partial results " +
							"are combined once at the end.",
						PatternletRefs: []string{"reduction", "sections", "privateVariable"},
						Questions: []Question{
							&MultipleChoice{
								QID:  "sp_mc_3",
								Text: "Why does a reduction outperform a critical section for summing?",
								Options: []Option{
									{Key: "A", Text: "It synchronizes once per thread instead of once per update."},
									{Key: "B", Text: "It uses faster arithmetic."},
									{Key: "C", Text: "It runs on the GPU."},
								},
								Correct: "A",
								Why:     "Reductions accumulate privately and synchronize only when combining partials.",
							},
						},
					},
				},
			},
			{
				Number: 3,
				Title:  "Exemplars and Benchmarking",
				Sections: []Section{
					{
						Number: "3.1",
						Title:  "Exemplar: Numerical Integration",
						Body: "Approximate π as the area under 4/(1+x²) on [0,1] with the " +
							"trapezoidal rule, parallelized with a parallel-for reduction. " +
							"This is your first whole program built from the patterns.",
						HandsOn: "Run the integration exemplar with 1, 2, 3, and 4 threads and 10^7 trapezoids; record each time.",
					},
					{
						Number: "3.2",
						Title:  "Exemplar: Drug Design",
						Body: "Score randomly generated ligands against a protein and report the " +
							"best docking score. Ligand lengths vary, so the work is imbalanced " +
							"— compare static and dynamic schedules.",
						HandsOn: "Run the drug-design exemplar under the static and dynamic schedules with 4 threads; explain the difference.",
					},
					{
						Number: "3.3",
						Title:  "A Small Benchmarking Study",
						Body: "Collect your timings into a table of speedup and efficiency. How " +
							"close to 4x do you get on the Pi's four cores, and what limits " +
							"you? (Amdahl's law names the culprit.)",
						HandsOn: "Complete the speedup/efficiency table for both exemplars and sketch the speedup curve.",
						Questions: []Question{
							&FillInBlank{
								QID:    "sp_fib_3",
								Text:   "Speedup divided by the number of workers is called ____.",
								Accept: []string{"efficiency", "parallel efficiency"},
								Why:    "Efficiency measures how well the workers are utilized.",
							},
						},
					},
				},
			},
		},
	}
}
