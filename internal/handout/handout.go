// Package handout implements the "virtual handout" engine standing in for
// Runestone Interactive, the platform the paper's shared-memory module is
// delivered on. A handout is a self-paced module of chapters and sections
// mixing expository text, instructional videos, interactive questions
// (multiple choice, fill-in-the-blank, drag-and-drop — the Runestone
// feature set the paper names), and hands-on activities that reference
// patternlets by name.
//
// The engine renders sections to a terminal (Figure 1 of the paper is a
// rendering of the Raspberry Pi module's Section 2.3), grades answers, and
// tracks learner progress against the module's two-hour pacing plan.
package handout

import (
	"fmt"
	"time"
)

// Video is an instructional video stub: the module's setup chapter leans on
// step-by-step videos, which the paper credits for the session's zero
// technical issues.
type Video struct {
	Title    string
	Duration time.Duration
	URL      string
}

// Section is one numbered unit of a chapter.
type Section struct {
	// Number is the dotted section number, e.g. "2.3".
	Number string
	Title  string
	// Body is the expository text shown before any activity.
	Body string
	// Videos play before the questions.
	Videos []Video
	// Questions quiz the reader on the section's concepts.
	Questions []Question
	// PatternletRefs name the patternlets the section's hands-on part
	// runs on the learner's device.
	PatternletRefs []string
	// HandsOn is the instruction for the device activity, if any.
	HandsOn string
}

// Chapter groups sections.
type Chapter struct {
	Number   int
	Title    string
	Sections []Section
}

// PacingBlock is one block of the module's lab-period plan.
type PacingBlock struct {
	Duration time.Duration
	Activity string
}

// Module is a complete self-paced virtual handout.
type Module struct {
	Title    string
	Summary  string
	Chapters []Chapter
	// Pacing is the suggested time budget; the paper designs each module
	// to fit a standard two-hour lab period.
	Pacing []PacingBlock
}

// TotalPace sums the pacing plan.
func (m *Module) TotalPace() time.Duration {
	var total time.Duration
	for _, p := range m.Pacing {
		total += p.Duration
	}
	return total
}

// Section finds a section by its dotted number.
func (m *Module) Section(number string) (*Section, error) {
	for ci := range m.Chapters {
		for si := range m.Chapters[ci].Sections {
			if m.Chapters[ci].Sections[si].Number == number {
				return &m.Chapters[ci].Sections[si], nil
			}
		}
	}
	return nil, fmt.Errorf("handout: no section %q in module %q", number, m.Title)
}

// Questions returns every question in module order.
func (m *Module) Questions() []Question {
	var qs []Question
	for _, ch := range m.Chapters {
		for _, s := range ch.Sections {
			qs = append(qs, s.Questions...)
		}
	}
	return qs
}

// Question finds a question by id anywhere in the module.
func (m *Module) Question(id string) (Question, error) {
	for _, q := range m.Questions() {
		if q.ID() == id {
			return q, nil
		}
	}
	return nil, fmt.Errorf("handout: no question %q in module %q", id, m.Title)
}

// PatternletRefs returns every patternlet name the module's hands-on
// activities reference, in order, without duplicates.
func (m *Module) PatternletRefs() []string {
	seen := map[string]bool{}
	var out []string
	for _, ch := range m.Chapters {
		for _, s := range ch.Sections {
			for _, ref := range s.PatternletRefs {
				if !seen[ref] {
					seen[ref] = true
					out = append(out, ref)
				}
			}
		}
	}
	return out
}
