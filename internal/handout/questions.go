package handout

import (
	"fmt"
	"sort"
	"strings"
)

// Question is one interactive exercise. Answers arrive as strings typed (or
// assembled) by the learner; Grade reports correctness and feedback.
type Question interface {
	// ID is the activity identifier Runestone shows, e.g. "sp_mc_2".
	ID() string
	// Prompt is the question text.
	Prompt() string
	// Grade checks an answer and explains the outcome.
	Grade(answer string) (correct bool, feedback string)
	// Kind names the activity type for renderers ("Multiple Choice", ...).
	Kind() string
}

// Option is one multiple-choice alternative.
type Option struct {
	Key  string // "A", "B", ...
	Text string
}

// MultipleChoice is the Runestone multiple-choice activity (Figure 1 shows
// one).
type MultipleChoice struct {
	QID     string
	Text    string
	Options []Option
	Correct string
	// Why explains the correct answer; shown on any graded attempt.
	Why string
}

// ID implements Question.
func (q *MultipleChoice) ID() string { return q.QID }

// Prompt implements Question.
func (q *MultipleChoice) Prompt() string { return q.Text }

// Kind implements Question.
func (q *MultipleChoice) Kind() string { return "Multiple Choice" }

// Grade accepts the option key, case-insensitively.
func (q *MultipleChoice) Grade(answer string) (bool, string) {
	a := strings.ToUpper(strings.TrimSpace(answer))
	if a == strings.ToUpper(q.Correct) {
		return true, "Correct! " + q.Why
	}
	for _, opt := range q.Options {
		if strings.EqualFold(opt.Key, a) {
			return false, fmt.Sprintf("Not quite — option %s is wrong. %s", opt.Key, q.Why)
		}
	}
	return false, fmt.Sprintf("Please answer with one of the option letters (A–%s).",
		q.Options[len(q.Options)-1].Key)
}

// FillInBlank accepts any of a set of expected strings, ignoring case and
// surrounding space.
type FillInBlank struct {
	QID    string
	Text   string
	Accept []string
	Why    string
}

// ID implements Question.
func (q *FillInBlank) ID() string { return q.QID }

// Prompt implements Question.
func (q *FillInBlank) Prompt() string { return q.Text }

// Kind implements Question.
func (q *FillInBlank) Kind() string { return "Fill in the Blank" }

// Grade implements Question.
func (q *FillInBlank) Grade(answer string) (bool, string) {
	a := strings.ToLower(strings.TrimSpace(answer))
	for _, want := range q.Accept {
		if a == strings.ToLower(strings.TrimSpace(want)) {
			return true, "Correct! " + q.Why
		}
	}
	return false, "Not quite. " + q.Why
}

// DragAndDrop asks the learner to match left-hand items to right-hand
// items; answers are written "left=right; left=right" in any order.
type DragAndDrop struct {
	QID   string
	Text  string
	Pairs map[string]string
	Why   string
}

// ID implements Question.
func (q *DragAndDrop) ID() string { return q.QID }

// Prompt implements Question.
func (q *DragAndDrop) Prompt() string { return q.Text }

// Kind implements Question.
func (q *DragAndDrop) Kind() string { return "Drag and Drop" }

// Grade implements Question.
func (q *DragAndDrop) Grade(answer string) (bool, string) {
	got := map[string]string{}
	for _, pair := range strings.Split(answer, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		parts := strings.SplitN(pair, "=", 2)
		if len(parts) != 2 {
			return false, fmt.Sprintf("Malformed pair %q: write matches as left=right; left=right.", pair)
		}
		got[normalize(parts[0])] = normalize(parts[1])
	}
	if len(got) != len(q.Pairs) {
		return false, fmt.Sprintf("Expected %d matches, got %d. %s", len(q.Pairs), len(got), q.Why)
	}
	for l, r := range q.Pairs {
		if got[normalize(l)] != normalize(r) {
			return false, fmt.Sprintf("The match for %q is wrong. %s", l, q.Why)
		}
	}
	return true, "Correct! " + q.Why
}

// Lefts returns the left-hand items in sorted order, for rendering.
func (q *DragAndDrop) Lefts() []string {
	out := make([]string, 0, len(q.Pairs))
	for l := range q.Pairs {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Rights returns the right-hand items in sorted order, for rendering.
func (q *DragAndDrop) Rights() []string {
	out := make([]string, 0, len(q.Pairs))
	for _, r := range q.Pairs {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

func normalize(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
