package handout

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Attempt records one graded answer.
type Attempt struct {
	QuestionID string
	Answer     string
	Correct    bool
	Feedback   string
	At         time.Time
}

// Gradebook tracks a learner's attempts across a module: the course- and
// assignment-management role Runestone plays for instructors.
type Gradebook struct {
	Learner string
	module  *Module

	mu       sync.Mutex
	attempts []Attempt
	now      func() time.Time
}

// NewGradebook opens a gradebook for one learner working one module.
func NewGradebook(learner string, m *Module) *Gradebook {
	return &Gradebook{Learner: learner, module: m, now: time.Now}
}

// Submit grades an answer against the named question and records the
// attempt.
func (g *Gradebook) Submit(questionID, answer string) (Attempt, error) {
	q, err := g.module.Question(questionID)
	if err != nil {
		return Attempt{}, err
	}
	correct, feedback := q.Grade(answer)
	g.mu.Lock()
	defer g.mu.Unlock()
	a := Attempt{
		QuestionID: questionID,
		Answer:     answer,
		Correct:    correct,
		Feedback:   feedback,
		At:         g.now(),
	}
	g.attempts = append(g.attempts, a)
	return a, nil
}

// Attempts returns a copy of all recorded attempts, in submission order.
func (g *Gradebook) Attempts() []Attempt {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Attempt(nil), g.attempts...)
}

// Score reports how many of the module's questions the learner has answered
// correctly at least once, and the module's question total.
func (g *Gradebook) Score() (correct, total int) {
	solved := map[string]bool{}
	g.mu.Lock()
	for _, a := range g.attempts {
		if a.Correct {
			solved[a.QuestionID] = true
		}
	}
	g.mu.Unlock()
	return len(solved), len(g.module.Questions())
}

// Report formats per-question progress for the instructor view.
func (g *Gradebook) Report() string {
	attemptsByQ := map[string][]Attempt{}
	g.mu.Lock()
	for _, a := range g.attempts {
		attemptsByQ[a.QuestionID] = append(attemptsByQ[a.QuestionID], a)
	}
	g.mu.Unlock()

	ids := make([]string, 0, len(attemptsByQ))
	for id := range attemptsByQ {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	correct, total := g.Score()
	out := fmt.Sprintf("%s: %d/%d questions solved\n", g.Learner, correct, total)
	for _, id := range ids {
		as := attemptsByQ[id]
		solved := false
		for _, a := range as {
			if a.Correct {
				solved = true
				break
			}
		}
		mark := "✗"
		if solved {
			mark = "✓"
		}
		out += fmt.Sprintf("  %s %s (%d attempt(s))\n", mark, id, len(as))
	}
	return out
}
