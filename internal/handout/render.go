package handout

import (
	"fmt"
	"io"
	"strings"
)

// RenderSection draws one section the way the Runestone page lays it out:
// heading, body, videos, then each interactive activity — the shape of the
// paper's Figure 1.
func RenderSection(w io.Writer, s *Section) {
	fmt.Fprintf(w, "%s %s\n", s.Number, s.Title)
	fmt.Fprintln(w, strings.Repeat("=", len(s.Number)+len(s.Title)+1))
	if s.Body != "" {
		fmt.Fprintf(w, "\n%s\n", wrap(s.Body, 72))
	}
	for _, v := range s.Videos {
		fmt.Fprintf(w, "\n[video] %s (%s)\n", v.Title, v.Duration)
		fmt.Fprintln(w, "The following video will help you understand what is going on:")
	}
	for i, q := range s.Questions {
		fmt.Fprintln(w, "\nTry and answer the following question:")
		fmt.Fprintf(w, "\nQ-%d: %s\n", i+1, q.Prompt())
		if mc, ok := q.(*MultipleChoice); ok {
			for _, opt := range mc.Options {
				fmt.Fprintf(w, "  ( ) %s. %s\n", opt.Key, opt.Text)
			}
		}
		if dd, ok := q.(*DragAndDrop); ok {
			fmt.Fprintf(w, "  match: %s\n", strings.Join(dd.Lefts(), ", "))
			fmt.Fprintf(w, "  with:  %s\n", strings.Join(dd.Rights(), ", "))
		}
		fmt.Fprintln(w, "\n  [Check me]")
		fmt.Fprintf(w, "\nActivity: %d — %s (%s)\n", i+1, q.Kind(), q.ID())
	}
	if s.HandsOn != "" {
		fmt.Fprintf(w, "\nHands-on: %s\n", wrap(s.HandsOn, 72))
	}
	if len(s.PatternletRefs) > 0 {
		fmt.Fprintf(w, "Patternlets used: %s\n", strings.Join(s.PatternletRefs, ", "))
	}
}

// RenderTOC draws the module's table of contents with the pacing plan.
func RenderTOC(w io.Writer, m *Module) {
	fmt.Fprintln(w, m.Title)
	fmt.Fprintln(w, strings.Repeat("=", len(m.Title)))
	if m.Summary != "" {
		fmt.Fprintf(w, "\n%s\n", wrap(m.Summary, 72))
	}
	fmt.Fprintln(w)
	for _, ch := range m.Chapters {
		fmt.Fprintf(w, "Chapter %d: %s\n", ch.Number, ch.Title)
		for _, s := range ch.Sections {
			extras := []string{}
			if n := len(s.Videos); n > 0 {
				extras = append(extras, fmt.Sprintf("%d video(s)", n))
			}
			if n := len(s.Questions); n > 0 {
				extras = append(extras, fmt.Sprintf("%d question(s)", n))
			}
			if len(s.PatternletRefs) > 0 {
				extras = append(extras, "hands-on")
			}
			suffix := ""
			if len(extras) > 0 {
				suffix = " [" + strings.Join(extras, ", ") + "]"
			}
			fmt.Fprintf(w, "  %s %s%s\n", s.Number, s.Title, suffix)
		}
	}
	if len(m.Pacing) > 0 {
		fmt.Fprintf(w, "\nSuggested pacing (total %s):\n", m.TotalPace())
		for _, p := range m.Pacing {
			fmt.Fprintf(w, "  %8s  %s\n", p.Duration, p.Activity)
		}
	}
}

// wrap folds text at the given width on word boundaries.
func wrap(text string, width int) string {
	words := strings.Fields(text)
	if len(words) == 0 {
		return ""
	}
	var b strings.Builder
	line := words[0]
	for _, word := range words[1:] {
		if len(line)+1+len(word) > width {
			b.WriteString(line)
			b.WriteByte('\n')
			line = word
			continue
		}
		line += " " + word
	}
	b.WriteString(line)
	return b.String()
}
