package handout

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// TakeSection runs one section interactively: it renders the section, then
// prompts for an answer to each question on in, grades it, and prints
// feedback — the terminal equivalent of working the Runestone page. A
// learner may retry a question until correct or until they enter "skip";
// end of input also moves on. The attempts land in the gradebook.
func TakeSection(out io.Writer, in io.Reader, s *Section, g *Gradebook) error {
	return takeSection(out, bufio.NewScanner(in), s, g)
}

// takeSection is TakeSection over an existing scanner, so a multi-section
// session shares one input buffer (a fresh Scanner per section would read
// ahead and swallow later sections' answers).
func takeSection(out io.Writer, reader *bufio.Scanner, s *Section, g *Gradebook) error {
	RenderSection(out, s)
	for _, q := range s.Questions {
		for {
			fmt.Fprintf(out, "\nYour answer for %s (or 'skip'): ", q.ID())
			if !reader.Scan() {
				fmt.Fprintln(out, "\n(end of input; moving on)")
				return reader.Err()
			}
			answer := strings.TrimSpace(reader.Text())
			if strings.EqualFold(answer, "skip") {
				fmt.Fprintln(out, "Skipped.")
				break
			}
			attempt, err := g.Submit(q.ID(), answer)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, attempt.Feedback)
			if attempt.Correct {
				break
			}
			fmt.Fprintln(out, "Try again!")
		}
	}
	correct, total := g.Score()
	fmt.Fprintf(out, "\nProgress: %d/%d questions solved across the module.\n", correct, total)
	return nil
}

// TakeModule runs every section of the module in order through TakeSection
// with one shared gradebook, returning the final score.
func TakeModule(out io.Writer, in io.Reader, m *Module, learner string) (correct, total int, err error) {
	g := NewGradebook(learner, m)
	reader := bufio.NewScanner(in)
	for _, ch := range m.Chapters {
		fmt.Fprintf(out, "\n### Chapter %d: %s ###\n\n", ch.Number, ch.Title)
		for i := range ch.Sections {
			if err := takeSection(out, reader, &ch.Sections[i], g); err != nil {
				return 0, 0, err
			}
		}
	}
	correct, total = g.Score()
	return correct, total, nil
}
