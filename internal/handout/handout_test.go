package handout

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPiModuleStructure(t *testing.T) {
	m := RaspberryPiModule()
	if len(m.Chapters) != 3 {
		t.Fatalf("chapters = %d", len(m.Chapters))
	}
	if m.TotalPace() != 2*time.Hour {
		t.Fatalf("pacing total = %v, want the paper's 2-hour lab period", m.TotalPace())
	}
	if got := m.Pacing[0].Duration; got != 30*time.Minute {
		t.Fatalf("first pacing block = %v, want 30m overview", got)
	}
	if got := m.Pacing[1].Duration; got != time.Hour {
		t.Fatalf("second pacing block = %v, want 1h hands-on", got)
	}
}

func TestPiModuleSectionLookup(t *testing.T) {
	m := RaspberryPiModule()
	s, err := m.Section("2.3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Title != "Race Conditions" {
		t.Fatalf("2.3 title = %q", s.Title)
	}
	if _, err := m.Section("9.9"); err == nil {
		t.Fatal("bogus section found")
	}
}

func TestPiModulePatternletRefsExistInCatalog(t *testing.T) {
	// Every patternlet the handout references must exist; verified against
	// the names the patternlets package registers (kept as a literal list
	// here to avoid an import cycle in coverage tooling).
	catalog := map[string]bool{
		"spmd": true, "forkJoin": true, "barrier": true, "masterOnly": true,
		"singleExecution": true, "parallelLoopEqualChunks": true,
		"parallelLoopChunksOf1": true, "dynamicSchedule": true,
		"raceCondition": true, "mutualExclusion": true, "atomicUpdate": true,
		"reduction": true, "sections": true, "privateVariable": true,
	}
	refs := RaspberryPiModule().PatternletRefs()
	if len(refs) == 0 {
		t.Fatal("module references no patternlets")
	}
	for _, ref := range refs {
		if !catalog[ref] {
			t.Errorf("module references unknown patternlet %q", ref)
		}
	}
}

// TestFigure1Render reproduces the paper's Figure 1: the rendering of
// Section 2.3 shows the race-condition video, the "Q-2: What is a race
// condition?" multiple-choice question with its three options, and the
// activity label "Activity: 2 — Multiple Choice (sp_mc_2)".
func TestFigure1Render(t *testing.T) {
	m := RaspberryPiModule()
	s, err := m.Section("2.3")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderSection(&buf, s)
	out := buf.String()

	for _, want := range []string{
		"2.3 Race Conditions",
		"The following video will help you understand what is going on:",
		"Q-2: What is a race condition?",
		"A. It is the smallest set of instructions that must execute sequentially to ensure correctness.",
		"B. It is a mechanism that helps protect a resource.",
		"C. It is something that arises when two or more threads attempt to modify a shared variable.",
		"[Check me]",
		"Activity: 2 — Multiple Choice (sp_mc_2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 render missing %q\n--- render ---\n%s", want, out)
		}
	}
}

func TestFigure1QuestionGrading(t *testing.T) {
	m := RaspberryPiModule()
	q, err := m.Question("sp_mc_2")
	if err != nil {
		t.Fatal(err)
	}
	if correct, _ := q.Grade("C"); !correct {
		t.Fatal("the Figure 1 question's correct answer (C) was rejected")
	}
	if correct, _ := q.Grade("B"); correct {
		t.Fatal("answer B accepted; Figure 1 shows B is wrong")
	}
	if correct, fb := q.Grade("z"); correct || !strings.Contains(fb, "option letters") {
		t.Fatalf("invalid answer feedback = %q", fb)
	}
	// Case-insensitive grading.
	if correct, _ := q.Grade(" c "); !correct {
		t.Fatal("lower-case c rejected")
	}
}

func TestFillInBlankGrading(t *testing.T) {
	m := RaspberryPiModule()
	q, err := m.Question("sp_fib_2")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := q.Grade("  DYNAMIC "); !ok {
		t.Fatal("case/space-insensitive acceptance failed")
	}
	if ok, _ := q.Grade("static"); ok {
		t.Fatal("wrong answer accepted")
	}
}

func TestDragAndDropGrading(t *testing.T) {
	m := RaspberryPiModule()
	q, err := m.Question("sp_dd_1")
	if err != nil {
		t.Fatal(err)
	}
	good := "critical section=a multi-statement update to shared state; " +
		"atomic update=a single add to a shared counter; " +
		"reduction=combining per-thread partial results"
	if ok, fb := q.Grade(good); !ok {
		t.Fatalf("correct matching rejected: %s", fb)
	}
	if ok, _ := q.Grade("critical section=a single add to a shared counter"); ok {
		t.Fatal("incomplete/wrong matching accepted")
	}
	if ok, fb := q.Grade("garbage"); ok || !strings.Contains(fb, "Malformed") {
		t.Fatalf("malformed answer feedback = %q", fb)
	}
	dd := q.(*DragAndDrop)
	if len(dd.Lefts()) != 3 || len(dd.Rights()) != 3 {
		t.Fatal("Lefts/Rights wrong size")
	}
}

func TestQuestionLookupUnknown(t *testing.T) {
	if _, err := RaspberryPiModule().Question("nope"); err == nil {
		t.Fatal("unknown question found")
	}
}

func TestRenderTOC(t *testing.T) {
	var buf bytes.Buffer
	RenderTOC(&buf, RaspberryPiModule())
	out := buf.String()
	for _, want := range []string{
		"Chapter 1: Getting Started with your Raspberry Pi",
		"Chapter 2: Shared-Memory Patternlets",
		"Chapter 3: Exemplars and Benchmarking",
		"2.3 Race Conditions",
		"Suggested pacing (total 2h0m0s):",
		"hands-on",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("TOC missing %q", want)
		}
	}
}

func TestGradebookFlow(t *testing.T) {
	m := RaspberryPiModule()
	g := NewGradebook("pat", m)

	if _, err := g.Submit("sp_mc_2", "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Submit("sp_mc_2", "C"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Submit("setup_fib_1", "3B"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Submit("ghost", "x"); err == nil {
		t.Fatal("submission to unknown question accepted")
	}

	correct, total := g.Score()
	if correct != 2 {
		t.Fatalf("correct = %d, want 2", correct)
	}
	if total != len(m.Questions()) {
		t.Fatalf("total = %d, want %d", total, len(m.Questions()))
	}
	if got := len(g.Attempts()); got != 3 {
		t.Fatalf("attempts = %d", got)
	}

	rep := g.Report()
	if !strings.Contains(rep, "pat: 2/") ||
		!strings.Contains(rep, "✓ setup_fib_1") ||
		!strings.Contains(rep, "✓ sp_mc_2 (2 attempt(s))") {
		t.Fatalf("report = %q", rep)
	}
}

func TestWrap(t *testing.T) {
	if wrap("", 10) != "" {
		t.Fatal("empty wrap")
	}
	out := wrap("aaa bbb ccc ddd", 7)
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 7 {
			t.Fatalf("line %q exceeds width", line)
		}
	}
	if !strings.Contains(out, "aaa bbb") {
		t.Fatalf("wrap = %q", out)
	}
}

func TestVideosPresentWhereThePaperNeedsThem(t *testing.T) {
	// The paper attributes the lack of technical issues partly to the
	// setup videos in the first chapter: every setup section with device
	// steps carries one.
	m := RaspberryPiModule()
	ch1 := m.Chapters[0]
	withVideo := 0
	for _, s := range ch1.Sections {
		withVideo += len(s.Videos)
	}
	if withVideo < 3 {
		t.Fatalf("chapter 1 has %d videos, want the step-by-step walkthroughs", withVideo)
	}
}
