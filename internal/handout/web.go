package handout

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"
)

// Web delivery of the virtual handout. Runestone Interactive is a
// browser-based platform; this server renders the module as HTML pages —
// a table of contents, one page per section with its videos and
// interactive questions, and a grading endpoint with immediate feedback —
// and keeps a gradebook per server, the way the Runestone course instance
// tracked the workshop participants.

// WebServer serves one module over HTTP.
type WebServer struct {
	module *Module
	grades *Gradebook
	mux    *http.ServeMux
}

// NewWebServer builds the handler set for a module; attach it to any
// http.Server (or httptest server) via its Handler.
func NewWebServer(m *Module, learner string) *WebServer {
	ws := &WebServer{
		module: m,
		grades: NewGradebook(learner, m),
		mux:    http.NewServeMux(),
	}
	ws.mux.HandleFunc("/", ws.handleTOC)
	ws.mux.HandleFunc("/section/", ws.handleSection)
	ws.mux.HandleFunc("/grade", ws.handleGrade)
	ws.mux.HandleFunc("/progress", ws.handleProgress)
	return ws
}

// Handler returns the server's root handler.
func (ws *WebServer) Handler() http.Handler { return ws.mux }

// Gradebook exposes the server's gradebook (for reporting and tests).
func (ws *WebServer) Gradebook() *Gradebook { return ws.grades }

var tocTemplate = template.Must(template.New("toc").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}}</title></head><body>
<h1>{{.Title}}</h1>
<p>{{.Summary}}</p>
{{range .Chapters}}
<h2>Chapter {{.Number}}: {{.Title}}</h2>
<ul>
{{range .Sections}}<li><a href="/section/{{.Number}}">{{.Number}} {{.Title}}</a></li>
{{end}}</ul>
{{end}}
<h2>Suggested pacing</h2>
<ul>{{range .Pacing}}<li>{{.Duration}} — {{.Activity}}</li>{{end}}</ul>
<p><a href="/progress">My progress</a></p>
</body></html>`))

// sectionTemplate is parsed in init so its helper functions (inc, join)
// are installed before parsing.
var sectionTemplate *template.Template

var gradeTemplate = template.Must(template.New("grade").Parse(`<!DOCTYPE html>
<html><head><title>Result</title></head><body>
<h1>{{if .Correct}}Correct!{{else}}Not quite{{end}}</h1>
<p>{{.Feedback}}</p>
<p><a href="javascript:history.back()">Try again</a> · <a href="/">Contents</a></p>
</body></html>`))

// questionView adapts a Question for the template.
type questionView struct {
	Question
}

// IsMC reports whether the question renders as radio buttons.
func (q questionView) IsMC() bool {
	_, ok := q.Question.(*MultipleChoice)
	return ok
}

// MCOptions returns the options of a multiple-choice question.
func (q questionView) MCOptions() []Option {
	if mc, ok := q.Question.(*MultipleChoice); ok {
		return mc.Options
	}
	return nil
}

// sectionView adapts a Section for the template.
type sectionView struct {
	Number, Title, Body, HandsOn string
	Videos                       []Video
	Questions                    []questionView
	PatternletRefs               []string
}

func init() {
	// The section template needs tiny helpers; install them on the parsed
	// template's function map by re-parsing with them available.
	sectionTemplate = template.Must(template.New("section").Funcs(template.FuncMap{
		"inc":  func(i int) int { return i + 1 },
		"join": strings.Join,
	}).Parse(sectionTemplateText))
}

func (ws *WebServer) handleTOC(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if err := tocTemplate.Execute(w, ws.module); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (ws *WebServer) handleSection(w http.ResponseWriter, r *http.Request) {
	number := strings.TrimPrefix(r.URL.Path, "/section/")
	s, err := ws.module.Section(number)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	view := sectionView{
		Number: s.Number, Title: s.Title, Body: s.Body, HandsOn: s.HandsOn,
		Videos: s.Videos, PatternletRefs: s.PatternletRefs,
	}
	for _, q := range s.Questions {
		view.Questions = append(view.Questions, questionView{q})
	}
	if err := sectionTemplate.Execute(w, struct{ Section sectionView }{view}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (ws *WebServer) handleGrade(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an answer", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	qid := r.PostForm.Get("question")
	answer := r.PostForm.Get("answer")
	attempt, err := ws.grades.Submit(qid, answer)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if err := gradeTemplate.Execute(w, attempt); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (ws *WebServer) handleProgress(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, ws.grades.Report())
}

// sectionTemplateText is the section page markup (parsed in init with the
// helper funcs installed).
const sectionTemplateText = `<!DOCTYPE html>
<html><head><title>{{.Section.Number}} {{.Section.Title}}</title></head><body>
<h1>{{.Section.Number}} {{.Section.Title}}</h1>
<p>{{.Section.Body}}</p>
{{range .Section.Videos}}
<p class="video">[video] {{.Title}} ({{.Duration}}) — <a href="{{.URL}}">watch</a><br>
The following video will help you understand what is going on:</p>
{{end}}
{{range $i, $q := .Section.Questions}}
<form class="question" method="POST" action="/grade">
<p><b>Q-{{inc $i}}:</b> {{$q.Prompt}}</p>
{{if $q.IsMC}}{{range $q.MCOptions}}
<label><input type="radio" name="answer" value="{{.Key}}"> {{.Key}}. {{.Text}}</label><br>
{{end}}{{else}}
<input type="text" name="answer">
{{end}}
<input type="hidden" name="question" value="{{$q.ID}}">
<button type="submit">Check me</button>
<p class="activity">Activity: {{inc $i}} — {{$q.Kind}} ({{$q.ID}})</p>
</form>
{{end}}
{{if .Section.HandsOn}}<p><b>Hands-on:</b> {{.Section.HandsOn}}</p>{{end}}
{{if .Section.PatternletRefs}}<p>Patternlets used: {{join .Section.PatternletRefs ", "}}</p>{{end}}
<p><a href="/">Back to contents</a></p>
</body></html>`
