package handout

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*WebServer, *httptest.Server) {
	t.Helper()
	ws := NewWebServer(RaspberryPiModule(), "pat")
	srv := httptest.NewServer(ws.Handler())
	t.Cleanup(srv.Close)
	return ws, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestWebTOC(t *testing.T) {
	_, srv := newTestServer(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"Raspberry Pi - Virtual Handout",
		"Chapter 2: Shared-Memory Patternlets",
		`<a href="/section/2.3">2.3 Race Conditions</a>`,
		"Suggested pacing",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("TOC missing %q", want)
		}
	}
}

// TestWebFigure1Section is Figure 1 in its native medium: the browser page
// for section 2.3 carries the video note, the multiple-choice radio
// buttons, the Check me button, and the activity label.
func TestWebFigure1Section(t *testing.T) {
	_, srv := newTestServer(t)
	code, body := get(t, srv.URL+"/section/2.3")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"2.3 Race Conditions",
		"The following video will help you understand what is going on:",
		"What is a race condition?",
		`value="C"`,
		"threads attempt to modify a shared variable",
		"Check me",
		"Activity: 2 — Multiple Choice (sp_mc_2)",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("section page missing %q", want)
		}
	}
}

func TestWebSectionNotFound(t *testing.T) {
	_, srv := newTestServer(t)
	if code, _ := get(t, srv.URL+"/section/9.9"); code != http.StatusNotFound {
		t.Fatalf("status = %d", code)
	}
	if code, _ := get(t, srv.URL+"/bogus"); code != http.StatusNotFound {
		t.Fatalf("status for /bogus = %d", code)
	}
}

func TestWebGradeFlow(t *testing.T) {
	ws, srv := newTestServer(t)

	post := func(qid, answer string) (int, string) {
		resp, err := http.PostForm(srv.URL+"/grade", url.Values{
			"question": {qid},
			"answer":   {answer},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := post("sp_mc_2", "B")
	if code != http.StatusOK || !strings.Contains(body, "Not quite") {
		t.Fatalf("wrong answer: %d %q", code, body)
	}
	code, body = post("sp_mc_2", "C")
	if code != http.StatusOK || !strings.Contains(body, "Correct!") {
		t.Fatalf("right answer: %d %q", code, body)
	}
	if code, _ := post("ghost", "x"); code != http.StatusNotFound {
		t.Fatalf("unknown question status = %d", code)
	}

	// The gradebook saw both attempts.
	if got := len(ws.Gradebook().Attempts()); got != 2 {
		t.Fatalf("attempts = %d", got)
	}
	correct, _ := ws.Gradebook().Score()
	if correct != 1 {
		t.Fatalf("score = %d", correct)
	}

	// Progress page reflects it.
	code, body = get(t, srv.URL+"/progress")
	if code != http.StatusOK || !strings.Contains(body, "pat: 1/") {
		t.Fatalf("progress: %d %q", code, body)
	}
}

func TestWebGradeRejectsGET(t *testing.T) {
	_, srv := newTestServer(t)
	if code, _ := get(t, srv.URL+"/grade"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /grade status = %d", code)
	}
}

func TestWebFillInBlankRendersTextInput(t *testing.T) {
	_, srv := newTestServer(t)
	_, body := get(t, srv.URL+"/section/2.5")
	if !strings.Contains(body, `<input type="text" name="answer">`) {
		t.Fatalf("fill-in-blank input missing:\n%s", body)
	}
}
