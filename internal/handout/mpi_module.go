package handout

import "time"

// MPICompanionModule builds the instructional companion to the distributed
// module (paper Section III-B): the guidance that framed the Colab hour and
// the second-hour platform choice. The notebook carries the runnable cells;
// this module carries the concepts, the platform instructions — including
// the "follow the instructions before logging in" warning the eager-beaver
// incident made famous — and the comprehension checks. Its pacing mirrors
// the session: one hour of patternlets on Colab, one hour of exemplars on
// a real parallel platform.
func MPICompanionModule() *Module {
	return &Module{
		Title: "Distributed Computing with MPI - Companion Handout",
		Summary: "A self-paced two-hour module: learn the message-passing patterns " +
			"with mpi4py patternlets in a Google Colab notebook, then experience " +
			"speedup and scalability by running an exemplar on a real parallel " +
			"platform — a Jupyter notebook backed by the Chameleon cluster, or " +
			"the 64-core VM at St. Olaf.",
		Pacing: []PacingBlock{
			{time.Hour, "MPI patternlets in the Colab notebook, at your own pace"},
			{time.Hour, "An exemplar (forest fire or drug design) on Chameleon or the St. Olaf VM"},
		},
		Chapters: []Chapter{
			{
				Number: 1,
				Title:  "Message Passing on Google Colab",
				Sections: []Section{
					{
						Number: "1.1",
						Title:  "Processes, Not Threads",
						Body: "MPI programs are independent processes that share no memory: " +
							"the only way to move data between them is to send and receive " +
							"messages. Every process runs the same program (SPMD); its rank " +
							"and the world size differentiate its behaviour.",
						Questions: []Question{
							&MultipleChoice{
								QID:  "mpi_mc_1",
								Text: "How do two MPI processes share a partial result?",
								Options: []Option{
									{Key: "A", Text: "By writing to a shared variable."},
									{Key: "B", Text: "By sending and receiving a message."},
									{Key: "C", Text: "They cannot; results stay private."},
								},
								Correct: "B",
								Why:     "Processes share no memory; messages are the only channel.",
							},
						},
					},
					{
						Number: "1.2",
						Title:  "Running the Patternlets",
						Body: "Open the mpi4py patternlets notebook in Colab (a free Google " +
							"account suffices; no setup is required). For each pattern, run " +
							"the %%writefile cell to save the program, then the mpirun cell " +
							"to execute it with several processes.",
						PatternletRefs: []string{},
						HandsOn:        "Work through all the patternlet cells; re-run 00spmd.py with -np 8 and explain the output.",
						Questions: []Question{
							&FillInBlank{
								QID:    "mpi_fib_1",
								Text:   "The mpirun flag that sets the number of processes is ____.",
								Accept: []string{"-np", "np", "-n"},
								Why:    "mpirun -np N starts N processes.",
							},
							&MultipleChoice{
								QID:  "mpi_mc_2",
								Text: "The Colab VM has a single core. What does that mean for the patternlets?",
								Options: []Option{
									{Key: "A", Text: "They crash with more than one process."},
									{Key: "B", Text: "They run correctly but show no parallel speedup."},
									{Key: "C", Text: "They silently drop messages."},
								},
								Correct: "B",
								Why: "Message passing is about correctness of coordination; the " +
									"processes time-share the one core, so concepts work but speedup cannot appear.",
							},
						},
					},
					{
						Number: "1.3",
						Title:  "The Patterns to Watch For",
						Body: "As you work, name the pattern each patternlet teaches: SPMD, " +
							"send/receive, master-worker, the two loop decompositions, " +
							"broadcast, reduction, scatter/gather, and barrier-sequenced output.",
						Questions: []Question{
							&DragAndDrop{
								QID:  "mpi_dd_1",
								Text: "Match each collective to what it does.",
								Pairs: map[string]string{
									"broadcast": "root sends one value to every process",
									"reduction": "every process contributes to one combined result",
									"scatter":   "root deals one piece of an array to each process",
								},
								Why: "These three collectives bracket most data-parallel programs.",
							},
						},
					},
				},
			},
			{
				Number: 2,
				Title:  "Experiencing Speedup on a Real Platform",
				Sections: []Section{
					{
						Number: "2.1",
						Title:  "Choose Your Platform",
						Body: "To see speedup you need real cores. Choose one: (i) a Jupyter " +
							"notebook whose backend is a Chameleon Cloud cluster, or (ii) a " +
							"VNC connection to a 64-core VM at St. Olaf. Both run the same " +
							"exemplars; the point of the choice is that PDC can be taught on " +
							"many platforms.",
						Questions: []Question{
							&MultipleChoice{
								QID:  "mpi_mc_3",
								Text: "Why does the second hour move off Colab?",
								Options: []Option{
									{Key: "A", Text: "Colab cannot run Python."},
									{Key: "B", Text: "The exemplars need a GPU."},
									{Key: "C", Text: "Experiencing speedup requires a multicore or cluster platform."},
								},
								Correct: "C",
								Why:     "Colab's unicore VM demonstrates concepts; speedup needs parallel hardware.",
							},
						},
					},
					{
						Number: "2.2",
						Title:  "Logging in to the St. Olaf VM",
						Body: "IMPORTANT: read all of the login instructions before connecting. " +
							"The VM's firewall suspends VNC access after a failed login, and " +
							"the suspension needs an administrator to lift. If you do get " +
							"locked out, you can still ssh to the VM and complete the " +
							"exercise from the terminal.",
						Questions: []Question{
							&MultipleChoice{
								QID:  "mpi_mc_4",
								Text: "Your VNC access was suspended by the firewall. What still works?",
								Options: []Option{
									{Key: "A", Text: "Nothing; the exercise is over."},
									{Key: "B", Text: "SSH: log in from a terminal and continue."},
									{Key: "C", Text: "Creating a new VNC account yourself."},
								},
								Correct: "B",
								Why:     "The firewall rule covers VNC only; SSH keeps working.",
							},
						},
					},
					{
						Number: "2.3",
						Title:  "Exemplar: Forest Fire or Drug Design",
						Body: "Work through whichever exemplar interests you most. The forest " +
							"fire sweeps a spread probability over many Monte Carlo trials; " +
							"the drug design scores random ligands against a protein with a " +
							"master-worker decomposition. Time your runs at several process " +
							"counts and compute the speedups.",
						HandsOn: "Run your exemplar at np = 1, 2, 4, 8 and fill in a speedup table. Where does it stop scaling, and why?",
						Questions: []Question{
							&FillInBlank{
								QID:    "mpi_fib_2",
								Text:   "In the drug-design exemplar, the process that hands out ligands to the others is called the ____.",
								Accept: []string{"master"},
								Why:    "Rank 0 coordinates as the master; the other ranks are workers.",
							},
						},
					},
				},
			},
		},
	}
}
