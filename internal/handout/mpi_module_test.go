package handout

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestMPICompanionStructure(t *testing.T) {
	m := MPICompanionModule()
	if len(m.Chapters) != 2 {
		t.Fatalf("chapters = %d", len(m.Chapters))
	}
	if m.TotalPace() != 2*time.Hour {
		t.Fatalf("pacing = %v, want the 2-hour session", m.TotalPace())
	}
	// One hour per half, mirroring the session.
	if m.Pacing[0].Duration != time.Hour || m.Pacing[1].Duration != time.Hour {
		t.Fatalf("pacing blocks = %v", m.Pacing)
	}
	if len(m.Questions()) < 6 {
		t.Fatalf("questions = %d, want a full comprehension set", len(m.Questions()))
	}
}

func TestMPICompanionGrading(t *testing.T) {
	m := MPICompanionModule()
	cases := []struct {
		qid, answer string
		correct     bool
	}{
		{"mpi_mc_1", "B", true},
		{"mpi_mc_1", "A", false},
		{"mpi_mc_2", "B", true},
		{"mpi_mc_3", "C", true},
		{"mpi_mc_4", "B", true}, // the eager-beaver lesson
		{"mpi_fib_1", "-np", true},
		{"mpi_fib_1", "np", true},
		{"mpi_fib_2", "master", true},
		{"mpi_fib_2", "worker", false},
	}
	g := NewGradebook("pat", m)
	for _, c := range cases {
		a, err := g.Submit(c.qid, c.answer)
		if err != nil {
			t.Fatalf("%s: %v", c.qid, err)
		}
		if a.Correct != c.correct {
			t.Errorf("%s answer %q graded %v, want %v", c.qid, c.answer, a.Correct, c.correct)
		}
	}
}

func TestMPICompanionEagerBeaverWarning(t *testing.T) {
	// Section 2.2 must carry the lesson the workshop learned the hard way.
	m := MPICompanionModule()
	s, err := m.Section("2.2")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderSection(&buf, s)
	out := buf.String()
	for _, want := range []string{"read all of the login instructions", "ssh to the VM"} {
		if !strings.Contains(out, want) {
			t.Errorf("section 2.2 missing %q", want)
		}
	}
}

func TestMPICompanionDragDrop(t *testing.T) {
	m := MPICompanionModule()
	q, err := m.Question("mpi_dd_1")
	if err != nil {
		t.Fatal(err)
	}
	good := "broadcast=root sends one value to every process; " +
		"reduction=every process contributes to one combined result; " +
		"scatter=root deals one piece of an array to each process"
	if ok, fb := q.Grade(good); !ok {
		t.Fatalf("correct matching rejected: %s", fb)
	}
}

func TestMPICompanionServesOverWeb(t *testing.T) {
	ws := NewWebServer(MPICompanionModule(), "pat")
	// Rendering every section through the HTTP templates must not error.
	for _, ch := range MPICompanionModule().Chapters {
		for _, s := range ch.Sections {
			var buf bytes.Buffer
			view := struct{ Section sectionView }{sectionView{
				Number: s.Number, Title: s.Title, Body: s.Body, HandsOn: s.HandsOn,
				Videos: s.Videos, PatternletRefs: s.PatternletRefs,
			}}
			for _, q := range s.Questions {
				view.Section.Questions = append(view.Section.Questions, questionView{q})
			}
			if err := sectionTemplate.Execute(&buf, view); err != nil {
				t.Fatalf("section %s: %v", s.Number, err)
			}
		}
	}
	_ = ws
}
