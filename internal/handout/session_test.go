package handout

import (
	"bytes"
	"strings"
	"testing"
)

func TestTakeSectionGradesAndRetries(t *testing.T) {
	m := RaspberryPiModule()
	s, err := m.Section("2.3") // two multiple-choice questions
	if err != nil {
		t.Fatal(err)
	}
	g := NewGradebook("pat", m)
	// First question: wrong then right; second question: right away.
	in := strings.NewReader("A\nB\nC\n")
	var out bytes.Buffer
	// Question 1 of section 2.3 has correct answer B; feed A (wrong), then
	// B (right); question 2's correct answer is C.
	if err := TakeSection(&out, in, s, g); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Try again!") {
		t.Error("wrong answer did not prompt a retry")
	}
	if !strings.Contains(text, "Progress: 2/") {
		t.Errorf("expected both questions solved:\n%s", text)
	}
	if got := len(g.Attempts()); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestTakeSectionSkip(t *testing.T) {
	m := RaspberryPiModule()
	s, _ := m.Section("2.3")
	g := NewGradebook("pat", m)
	var out bytes.Buffer
	if err := TakeSection(&out, strings.NewReader("skip\nskip\n"), s, g); err != nil {
		t.Fatal(err)
	}
	if correct, _ := g.Score(); correct != 0 {
		t.Fatalf("score after skipping = %d", correct)
	}
	if !strings.Contains(out.String(), "Skipped.") {
		t.Error("skip not acknowledged")
	}
}

func TestTakeSectionEndOfInput(t *testing.T) {
	m := RaspberryPiModule()
	s, _ := m.Section("2.3")
	g := NewGradebook("pat", m)
	var out bytes.Buffer
	if err := TakeSection(&out, strings.NewReader(""), s, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "end of input") {
		t.Error("EOF not handled gracefully")
	}
}

func TestTakeModuleEndToEnd(t *testing.T) {
	m := RaspberryPiModule()
	// Answer every question in module order, correctly, using the same
	// correct-answer derivation the simulator uses.
	var answers []string
	for _, q := range m.Questions() {
		switch q := q.(type) {
		case *MultipleChoice:
			answers = append(answers, q.Correct)
		case *FillInBlank:
			answers = append(answers, q.Accept[0])
		case *DragAndDrop:
			var pairs []string
			for _, l := range q.Lefts() {
				pairs = append(pairs, l+"="+q.Pairs[l])
			}
			answers = append(answers, strings.Join(pairs, "; "))
		}
	}
	in := strings.NewReader(strings.Join(answers, "\n") + "\n")
	var out bytes.Buffer
	correct, total, err := TakeModule(&out, in, m, "pat")
	if err != nil {
		t.Fatal(err)
	}
	if correct != total || total != len(m.Questions()) {
		t.Fatalf("score = %d/%d, want all %d solved", correct, total, len(m.Questions()))
	}
	if !strings.Contains(out.String(), "Chapter 3:") {
		t.Error("module run did not reach chapter 3")
	}
}
