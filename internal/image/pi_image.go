package image

import "fmt"

// CSiPImageVersion is the release the kits shipped with (the paper cites
// 2020-06-18-csip-image-3.0.2).
const CSiPImageVersion = "3.0.2"

// CSiPPlaybook declares the csinparallel course image: the toolchains for
// both modules (a C compiler with OpenMP, MPI with its Python binding), the
// patternlet and exemplar source trees, remote-desktop access so a laptop
// can serve as the Pi's screen, and the pi login.
func CSiPPlaybook() *Playbook {
	tasks := []Task{
		SetHostname{Hostname: "raspberrypi"},
		CreateUser{User: "pi"},
		// Shared-memory module toolchain.
		InstallPackage{Package: "gcc"},
		InstallPackage{Package: "libomp-dev"},
		InstallPackage{Package: "make"},
		// Distributed module toolchain.
		InstallPackage{Package: "mpich"},
		InstallPackage{Package: "python3"},
		InstallPackage{Package: "python3-mpi4py"},
		// Laptop-as-display access.
		EnableService{Service: "ssh"},
		EnableService{Service: "vncserver"},
		EnableService{Service: "dhcp-ethernet-gadget"},
	}
	// The course materials: one source file per patternlet family plus the
	// exemplars, pre-staged where the handout expects them.
	for _, src := range []string{
		"spmd", "forkJoin", "barrier", "masterOnly", "singleExecution",
		"parallelLoopEqualChunks", "parallelLoopChunksOf1", "dynamicSchedule",
		"raceCondition", "mutualExclusion", "atomicUpdate", "reduction",
		"sections", "privateVariable",
	} {
		tasks = append(tasks, WriteFile{
			Path:    fmt.Sprintf("/home/pi/patternlets/openmp/%s.c", src),
			Content: fmt.Sprintf("// OpenMP patternlet: %s\n// See the virtual handout for the walkthrough.\n", src),
		})
	}
	for _, ex := range []string{"integration", "drugdesign"} {
		tasks = append(tasks, WriteFile{
			Path:    fmt.Sprintf("/home/pi/exemplars/%s/main.c", ex),
			Content: fmt.Sprintf("// Exemplar: %s\n", ex),
		})
	}
	tasks = append(tasks, WriteFile{
		Path:    "/etc/csip-release",
		Content: "csinparallel image " + CSiPImageVersion + "\n",
	})
	return &Playbook{Name: "csip-image", Version: CSiPImageVersion, Tasks: tasks}
}
