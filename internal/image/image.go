// Package image models the customized Raspberry Pi system image the paper
// distributes on the kits' microSD cards (csinparallel image 3.0.2) and the
// Ansible-style maintenance process the authors use to keep it current:
// the image is described declaratively as a playbook of idempotent tasks
// (install these packages, write these files, enable these services), and
// converging the playbook against a system produces the same image no
// matter what state it starts from.
//
// The system being configured is an in-memory model, not a real OS — the
// pedagogical property being reproduced is "every learner gets an
// identical, reproducible environment", which is exactly what declarative
// convergence plus a content checksum demonstrates.
package image

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// System is the state a playbook converges: an in-memory model of the
// image's filesystem, package set, services, and identity.
type System struct {
	Hostname string
	Users    map[string]bool
	Packages map[string]bool
	Services map[string]bool
	Files    map[string]string
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{
		Users:    map[string]bool{},
		Packages: map[string]bool{},
		Services: map[string]bool{},
		Files:    map[string]string{},
	}
}

// Checksum fingerprints the system state: two systems with equal checksums
// hold identical configuration, which is how image releases are verified.
func (s *System) Checksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "hostname=%s\n", s.Hostname)
	for _, section := range []struct {
		label string
		set   map[string]bool
	}{{"user", s.Users}, {"pkg", s.Packages}, {"svc", s.Services}} {
		keys := make([]string, 0, len(section.set))
		for k, on := range section.set {
			if on {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(h, "%s=%s\n", section.label, k)
		}
	}
	paths := make([]string, 0, len(s.Files))
	for p := range s.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(h, "file=%s:%x\n", p, sha256.Sum256([]byte(s.Files[p])))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Task is one idempotent configuration step: applying it twice leaves the
// system exactly as applying it once.
type Task interface {
	Name() string
	// Apply converges the system toward the task's declared state and
	// reports whether anything changed.
	Apply(s *System) (changed bool, err error)
}

// SetHostname declares the system's hostname.
type SetHostname struct{ Hostname string }

// Name implements Task.
func (t SetHostname) Name() string { return "hostname: " + t.Hostname }

// Apply implements Task.
func (t SetHostname) Apply(s *System) (bool, error) {
	if t.Hostname == "" {
		return false, fmt.Errorf("image: empty hostname")
	}
	if s.Hostname == t.Hostname {
		return false, nil
	}
	s.Hostname = t.Hostname
	return true, nil
}

// InstallPackage declares that a package is present.
type InstallPackage struct{ Package string }

// Name implements Task.
func (t InstallPackage) Name() string { return "package: " + t.Package }

// Apply implements Task.
func (t InstallPackage) Apply(s *System) (bool, error) {
	if t.Package == "" {
		return false, fmt.Errorf("image: empty package name")
	}
	if s.Packages[t.Package] {
		return false, nil
	}
	s.Packages[t.Package] = true
	return true, nil
}

// CreateUser declares that a login user exists.
type CreateUser struct{ User string }

// Name implements Task.
func (t CreateUser) Name() string { return "user: " + t.User }

// Apply implements Task.
func (t CreateUser) Apply(s *System) (bool, error) {
	if t.User == "" {
		return false, fmt.Errorf("image: empty user name")
	}
	if s.Users[t.User] {
		return false, nil
	}
	s.Users[t.User] = true
	return true, nil
}

// EnableService declares that a service starts at boot.
type EnableService struct{ Service string }

// Name implements Task.
func (t EnableService) Name() string { return "service: " + t.Service }

// Apply implements Task.
func (t EnableService) Apply(s *System) (bool, error) {
	if t.Service == "" {
		return false, fmt.Errorf("image: empty service name")
	}
	if s.Services[t.Service] {
		return false, nil
	}
	s.Services[t.Service] = true
	return true, nil
}

// WriteFile declares a file's exact contents.
type WriteFile struct {
	Path    string
	Content string
}

// Name implements Task.
func (t WriteFile) Name() string { return "file: " + t.Path }

// Apply implements Task.
func (t WriteFile) Apply(s *System) (bool, error) {
	if !strings.HasPrefix(t.Path, "/") {
		return false, fmt.Errorf("image: file path %q is not absolute", t.Path)
	}
	if cur, ok := s.Files[t.Path]; ok && cur == t.Content {
		return false, nil
	}
	s.Files[t.Path] = t.Content
	return true, nil
}

// Playbook is an ordered list of tasks defining one image release.
type Playbook struct {
	Name    string
	Version string
	Tasks   []Task
}

// Report summarizes a convergence run.
type Report struct {
	Applied int // tasks that changed the system
	Ok      int // tasks already satisfied
}

// Converge applies every task in order. Because tasks are idempotent,
// converging an already-built system reports zero applied changes.
func (pb *Playbook) Converge(s *System) (Report, error) {
	var rep Report
	for _, t := range pb.Tasks {
		changed, err := t.Apply(s)
		if err != nil {
			return rep, fmt.Errorf("image: task %q: %w", t.Name(), err)
		}
		if changed {
			rep.Applied++
		} else {
			rep.Ok++
		}
	}
	return rep, nil
}

// Build converges the playbook onto a fresh system and returns the built
// image.
func (pb *Playbook) Build() (*Image, error) {
	s := NewSystem()
	if _, err := pb.Converge(s); err != nil {
		return nil, err
	}
	return &Image{Name: pb.Name, Version: pb.Version, System: s}, nil
}

// Image is a built, versioned system image.
type Image struct {
	Name    string
	Version string
	System  *System
}

// Checksum fingerprints the image contents.
func (img *Image) Checksum() string { return img.System.Checksum() }

// piModels orders the Raspberry Pi model line; the course image supports
// every model from the 3B onward, as the paper states.
var piModels = []string{"1A", "1B", "2B", "3B", "3B+", "4B", "400"}

// minSupportedModel is the oldest model the image boots on.
const minSupportedModel = "3B"

// SupportsModel reports whether the image runs on the given Raspberry Pi
// model.
func SupportsModel(model string) bool {
	idx := -1
	minIdx := -1
	for i, m := range piModels {
		if strings.EqualFold(m, model) {
			idx = i
		}
		if m == minSupportedModel {
			minIdx = i
		}
	}
	return idx >= 0 && idx >= minIdx
}
