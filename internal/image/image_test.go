package image

import (
	"strings"
	"testing"
)

func TestBuildPiImage(t *testing.T) {
	img, err := CSiPPlaybook().Build()
	if err != nil {
		t.Fatal(err)
	}
	if img.Version != "3.0.2" {
		t.Fatalf("version = %q", img.Version)
	}
	s := img.System
	if s.Hostname != "raspberrypi" {
		t.Fatalf("hostname = %q", s.Hostname)
	}
	for _, pkg := range []string{"gcc", "mpich", "python3-mpi4py"} {
		if !s.Packages[pkg] {
			t.Errorf("package %s missing", pkg)
		}
	}
	for _, svc := range []string{"ssh", "vncserver"} {
		if !s.Services[svc] {
			t.Errorf("service %s missing", svc)
		}
	}
	if !s.Users["pi"] {
		t.Error("pi user missing")
	}
	if !strings.Contains(s.Files["/etc/csip-release"], "3.0.2") {
		t.Errorf("release file = %q", s.Files["/etc/csip-release"])
	}
	// Every patternlet source the handout references is staged.
	for _, name := range []string{"spmd", "raceCondition", "reduction"} {
		if _, ok := s.Files["/home/pi/patternlets/openmp/"+name+".c"]; !ok {
			t.Errorf("patternlet source %s missing from image", name)
		}
	}
}

// TestConvergenceIsIdempotent is the Ansible property: converging twice
// applies nothing new the second time, so re-running maintenance cannot
// drift an image.
func TestConvergenceIsIdempotent(t *testing.T) {
	pb := CSiPPlaybook()
	s := NewSystem()
	first, err := pb.Converge(s)
	if err != nil {
		t.Fatal(err)
	}
	if first.Applied != len(pb.Tasks) || first.Ok != 0 {
		t.Fatalf("first converge: %+v over %d tasks", first, len(pb.Tasks))
	}
	before := s.Checksum()
	second, err := pb.Converge(s)
	if err != nil {
		t.Fatal(err)
	}
	if second.Applied != 0 || second.Ok != len(pb.Tasks) {
		t.Fatalf("second converge not idempotent: %+v", second)
	}
	if s.Checksum() != before {
		t.Fatal("checksum changed on an idempotent converge")
	}
}

// TestChecksumReproducible: two independent builds of the same playbook are
// bit-identical — the "every learner gets the same environment" property.
func TestChecksumReproducible(t *testing.T) {
	a, err := CSiPPlaybook().Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := CSiPPlaybook().Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum() != b.Checksum() {
		t.Fatal("independent builds differ")
	}
	// And the checksum is sensitive to content.
	b.System.Files["/etc/csip-release"] = "tampered"
	if a.Checksum() == b.Checksum() {
		t.Fatal("checksum missed a file change")
	}
}

func TestChecksumSensitivity(t *testing.T) {
	base := func() *System {
		s := NewSystem()
		s.Hostname = "h"
		s.Packages["p"] = true
		return s
	}
	a := base()
	for _, mutate := range []func(*System){
		func(s *System) { s.Hostname = "other" },
		func(s *System) { s.Packages["q"] = true },
		func(s *System) { s.Services["svc"] = true },
		func(s *System) { s.Users["u"] = true },
		func(s *System) { s.Files["/f"] = "x" },
	} {
		b := base()
		mutate(b)
		if a.Checksum() == b.Checksum() {
			t.Error("checksum insensitive to a state change")
		}
	}
}

func TestTaskValidation(t *testing.T) {
	s := NewSystem()
	for _, task := range []Task{
		SetHostname{},
		InstallPackage{},
		CreateUser{},
		EnableService{},
		WriteFile{Path: "relative/path"},
	} {
		if _, err := task.Apply(s); err == nil {
			t.Errorf("task %T accepted invalid input", task)
		}
	}
	pb := &Playbook{Name: "bad", Tasks: []Task{SetHostname{}}}
	if _, err := pb.Build(); err == nil {
		t.Fatal("playbook with invalid task built")
	}
}

func TestTaskNames(t *testing.T) {
	for _, tc := range []struct {
		task Task
		want string
	}{
		{SetHostname{"h"}, "hostname: h"},
		{InstallPackage{"p"}, "package: p"},
		{CreateUser{"u"}, "user: u"},
		{EnableService{"s"}, "service: s"},
		{WriteFile{Path: "/f"}, "file: /f"},
	} {
		if got := tc.task.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// TestSupportsModelFrom3BOnward pins the compatibility statement: "tested
// and confirmed to work on all Raspberry Pi models from the 3B onward".
func TestSupportsModelFrom3BOnward(t *testing.T) {
	supported := []string{"3B", "3b", "3B+", "4B", "400"}
	unsupported := []string{"1A", "1B", "2B", "Zero", ""}
	for _, m := range supported {
		if !SupportsModel(m) {
			t.Errorf("model %q should be supported", m)
		}
	}
	for _, m := range unsupported {
		if SupportsModel(m) {
			t.Errorf("model %q should not be supported", m)
		}
	}
}

func TestWriteFileChangesOnlyOnDifference(t *testing.T) {
	s := NewSystem()
	w := WriteFile{Path: "/a", Content: "one"}
	if changed, _ := w.Apply(s); !changed {
		t.Fatal("first write reported unchanged")
	}
	if changed, _ := w.Apply(s); changed {
		t.Fatal("identical rewrite reported changed")
	}
	w2 := WriteFile{Path: "/a", Content: "two"}
	if changed, _ := w2.Apply(s); !changed {
		t.Fatal("content change reported unchanged")
	}
}
