package survey

import (
	"math"
	"strings"
	"testing"
)

func TestCohortSize(t *testing.T) {
	ps := Workshop2020()
	if len(ps) != 22 {
		t.Fatalf("participants = %d, want the paper's 22", len(ps))
	}
	ids := map[int]bool{}
	for _, p := range ps {
		if ids[p.ID] {
			t.Fatalf("duplicate participant id %d", p.ID)
		}
		ids[p.ID] = true
	}
}

func TestResponsesOnScale(t *testing.T) {
	for _, p := range Workshop2020() {
		for name, v := range map[string]int{
			"ConfidencePre": p.ConfidencePre, "ConfidencePost": p.ConfidencePost,
			"PreparednessPre": p.PreparednessPre, "PreparednessPost": p.PreparednessPost,
			"OpenMPImplement": p.OpenMPImplement, "OpenMPProfDev": p.OpenMPProfDev,
		} {
			if v < 1 || v > 5 {
				t.Errorf("participant %d: %s = %d outside 1..5", p.ID, name, v)
			}
		}
		// MPI items may be skipped (0) but never out of scale.
		for name, v := range map[string]int{"MPIImplement": p.MPIImplement, "MPIProfDev": p.MPIProfDev} {
			if v < 0 || v > 5 {
				t.Errorf("participant %d: %s = %d", p.ID, name, v)
			}
		}
	}
}

// TestTableII pins the recomputed Table II to the paper's published means.
func TestTableII(t *testing.T) {
	r := TableII(Workshop2020())
	if r.OpenMPImplement != 4.55 {
		t.Errorf("OpenMP (A) = %.2f, want 4.55", r.OpenMPImplement)
	}
	if r.OpenMPProfDev != 4.45 {
		t.Errorf("OpenMP (B) = %.2f, want 4.45", r.OpenMPProfDev)
	}
	if r.MPIImplement != 4.38 {
		t.Errorf("MPI (A) = %.2f, want 4.38", r.MPIImplement)
	}
	if r.MPIProfDev != 4.29 {
		t.Errorf("MPI (B) = %.2f, want 4.29", r.MPIProfDev)
	}
	if r.NOpenMP != 22 || r.NMPI != 21 {
		t.Errorf("respondents = %d/%d, want 22/21", r.NOpenMP, r.NMPI)
	}
}

func TestTableIIRatedFourOrHigher(t *testing.T) {
	// "they rated each of the workshop's sessions at 4 or higher".
	r := TableII(Workshop2020())
	for _, v := range []float64{r.OpenMPImplement, r.OpenMPProfDev, r.MPIImplement, r.MPIProfDev} {
		if v < 4 {
			t.Errorf("session mean %.2f below 4", v)
		}
	}
	// And the OpenMP/Pi session is the highest-rated in both columns.
	if r.OpenMPImplement <= r.MPIImplement || r.OpenMPProfDev <= r.MPIProfDev {
		t.Error("OpenMP on Raspberry Pi is not the top-rated session")
	}
}

func TestFormatTableII(t *testing.T) {
	out := FormatTableII(TableII(Workshop2020()))
	for _, want := range []string{"TABLE II", "OpenMP on Raspberry Pi", "4.55", "4.45", "4.38", "4.29"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II render missing %q:\n%s", want, out)
		}
	}
}

// TestFigure3 pins the confidence analysis to the paper's published
// statistics: pre mean 2.82, post mean 3.59, p = 0.0004.
func TestFigure3(t *testing.T) {
	r, err := Figure3(Workshop2020())
	if err != nil {
		t.Fatal(err)
	}
	if r.PreMean != 2.82 {
		t.Errorf("pre mean = %.2f, want 2.82", r.PreMean)
	}
	if r.PostMean != 3.59 {
		t.Errorf("post mean = %.2f, want 3.59", r.PostMean)
	}
	if r.TTest.DF != 21 {
		t.Errorf("df = %g, want 21", r.TTest.DF)
	}
	// The paper prints p = 0.0004; the recomputed p must round there.
	if r.TTest.P2 < 0.00035 || r.TTest.P2 >= 0.00045 {
		t.Errorf("p = %g, does not round to the paper's 0.0004", r.TTest.P2)
	}
	if r.Pre.Total() != 22 || r.Post.Total() != 22 {
		t.Errorf("histogram totals %d/%d", r.Pre.Total(), r.Post.Total())
	}
}

// TestFigure4 pins the preparedness analysis: pre 2.59, post 3.77,
// p = 4.18e-08 (order of magnitude 1e-8).
func TestFigure4(t *testing.T) {
	r, err := Figure4(Workshop2020())
	if err != nil {
		t.Fatal(err)
	}
	if r.PreMean != 2.59 {
		t.Errorf("pre mean = %.2f, want 2.59", r.PreMean)
	}
	if r.PostMean != 3.77 {
		t.Errorf("post mean = %.2f, want 3.77", r.PostMean)
	}
	// The recomputed p-value lands on the paper's printed 4.18e-08 to
	// three significant figures.
	if r.TTest.P2 < 4.15e-8 || r.TTest.P2 > 4.21e-8 {
		t.Errorf("p = %g, want the paper's 4.18e-08", r.TTest.P2)
	}
	// Both figures show significant growth; Figure 4's is stronger.
	f3, _ := Figure3(Workshop2020())
	if !(r.TTest.P2 < f3.TTest.P2) {
		t.Error("preparedness gain not stronger than confidence gain")
	}
	if !(r.TTest.T > 0 && f3.TTest.T > 0) {
		t.Error("t statistics should be positive (post > pre)")
	}
}

func TestFigureRenders(t *testing.T) {
	for _, figure := range []func([]Participant) (PrePostResult, error){Figure3, Figure4} {
		r, err := figure(Workshop2020())
		if err != nil {
			t.Fatal(err)
		}
		out := FormatPrePost(r)
		for _, want := range []string{"pre  |", "post |", "pre mean", "paired t(21)"} {
			if !strings.Contains(out, want) {
				t.Errorf("figure render missing %q:\n%s", want, out)
			}
		}
	}
}

// TestDemographics checks the cohort description against Section IV's
// percentages, with ±2 points of slack where the paper's rounding is loose
// (see the package comment) and exact counts where it gives counts.
func TestDemographics(t *testing.T) {
	d := Demographics(Workshop2020())
	if d.N != 22 {
		t.Fatalf("N = %d", d.N)
	}
	if d.NContinentalUS != 19 || d.NPuertoRico != 1 || d.NInternational != 2 {
		t.Errorf("locations = %d/%d/%d, want 19/1/2", d.NContinentalUS, d.NPuertoRico, d.NInternational)
	}
	within := func(name string, got, want float64) {
		if math.Abs(got-want) > 2 {
			t.Errorf("%s = %.0f%%, want %.0f%% ± 2", name, got, want)
		}
	}
	within("faculty", d.PctFaculty, 85)
	within("grad students", d.PctGradStudents, 15)
	within("male", d.PctMale, 77)
	within("female", d.PctFemale, 18)
	within("other", d.PctOther, 5)
	within("tenure", d.PctTenure, 46)
	within("non-tenure", d.PctNonTenure, 39)
	within("grad track", d.PctGradTrack, 15)
	within("fully remote", d.PctFullyRemote, 39)
	within("hybrid", d.PctHybrid, 35)
	within("in person", d.PctInPerson, 17)
	within("institution hybrid", d.PctInstitutionHybrid, 74)
}

func TestGenderAndRoleSumToWhole(t *testing.T) {
	d := Demographics(Workshop2020())
	if got := d.PctMale + d.PctFemale + d.PctOther; math.Abs(got-100) > 1 {
		t.Errorf("gender percentages sum to %v", got)
	}
	if got := d.PctFaculty + d.PctGradStudents; math.Abs(got-100) > 1 {
		t.Errorf("role percentages sum to %v", got)
	}
}
