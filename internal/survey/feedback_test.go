package survey

import (
	"strings"
	"testing"
)

func TestOpenEndedFeedbackCoverage(t *testing.T) {
	quotes := OpenEndedFeedback()
	if len(quotes) != 10 {
		t.Fatalf("quotes = %d, want the paper's 10", len(quotes))
	}
	sessions := map[string]int{}
	for _, q := range quotes {
		if q.Text == "" || q.Theme == "" {
			t.Errorf("quote with empty fields: %+v", q)
		}
		sessions[q.Session]++
	}
	if sessions["openmp-pi"] != 4 || sessions["mpi-distributed"] != 3 || sessions["workshop"] != 3 {
		t.Fatalf("session distribution = %v", sessions)
	}
}

func TestFeedbackContainsKeyQuotes(t *testing.T) {
	all := OpenEndedFeedback()
	var joined strings.Builder
	for _, q := range all {
		joined.WriteString(q.Text)
	}
	for _, want := range []string{
		"brings concepts home",
		"MPI can be used in Python",
		"platform switches",
		"consistent experience",
	} {
		if !strings.Contains(joined.String(), want) {
			t.Errorf("missing published quote %q", want)
		}
	}
}

func TestFeedbackBySession(t *testing.T) {
	pi := FeedbackBySession("openmp-pi")
	if len(pi) != 4 {
		t.Fatalf("openmp-pi quotes = %d", len(pi))
	}
	for _, q := range pi {
		if q.Session != "openmp-pi" {
			t.Fatalf("filter leaked %+v", q)
		}
	}
	if got := FeedbackBySession("nonexistent"); got != nil {
		t.Fatalf("unknown session returned %v", got)
	}
}
