package survey

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// TableIIResult carries the recomputed Table II: mean usefulness of each
// session for (A) implementing PDC in courses and (B) professional
// development, rounded to two decimals as the paper prints them.
type TableIIResult struct {
	OpenMPImplement float64
	OpenMPProfDev   float64
	MPIImplement    float64
	MPIProfDev      float64

	// Respondent counts per cell (the MPI items were skipped by one
	// participant).
	NOpenMP, NMPI int
}

// ratings collects the non-skipped values of one item.
func ratings(ps []Participant, item func(Participant) int) []float64 {
	var out []float64
	for _, p := range ps {
		if v := item(p); v > 0 {
			out = append(out, float64(v))
		}
	}
	return out
}

func roundedMean(xs []float64) float64 {
	m, err := stats.Mean(xs)
	if err != nil {
		return 0
	}
	return stats.Round(m, 2)
}

// TableII recomputes the paper's Table II from the raw responses.
func TableII(ps []Participant) TableIIResult {
	omA := ratings(ps, func(p Participant) int { return p.OpenMPImplement })
	omB := ratings(ps, func(p Participant) int { return p.OpenMPProfDev })
	mpA := ratings(ps, func(p Participant) int { return p.MPIImplement })
	mpB := ratings(ps, func(p Participant) int { return p.MPIProfDev })
	return TableIIResult{
		OpenMPImplement: roundedMean(omA),
		OpenMPProfDev:   roundedMean(omB),
		MPIImplement:    roundedMean(mpA),
		MPIProfDev:      roundedMean(mpB),
		NOpenMP:         len(omA),
		NMPI:            len(mpA),
	}
}

// FormatTableII renders the table the way the paper prints it.
func FormatTableII(r TableIIResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "TABLE II — How useful was each session for (A) implementing PDC in")
	fmt.Fprintln(&b, "your courses; (B) your professional development?")
	fmt.Fprintf(&b, "%-36s %6s %6s\n", "Session", "(A)", "(B)")
	fmt.Fprintf(&b, "%-36s %6.2f %6.2f\n", "OpenMP on Raspberry Pi", r.OpenMPImplement, r.OpenMPProfDev)
	fmt.Fprintf(&b, "%-36s %6.2f %6.2f\n", "MPI & Distr. Cluster Computing", r.MPIImplement, r.MPIProfDev)
	return b.String()
}

// PrePostResult carries one pre/post figure: the two histograms, the
// rounded means, and the paired t-test.
type PrePostResult struct {
	Title    string
	Pre      *stats.Histogram
	Post     *stats.Histogram
	PreMean  float64
	PostMean float64
	TTest    stats.TTestResult
}

// prePost computes a figure from paired responses on a labeled scale.
func prePost(title string, labels []string, pre, post []int) (PrePostResult, error) {
	preH, err := stats.NewLikertHistogram(labels, pre)
	if err != nil {
		return PrePostResult{}, err
	}
	postH, err := stats.NewLikertHistogram(labels, post)
	if err != nil {
		return PrePostResult{}, err
	}
	preF := make([]float64, len(pre))
	postF := make([]float64, len(post))
	for i := range pre {
		preF[i] = float64(pre[i])
		postF[i] = float64(post[i])
	}
	tt, err := stats.PairedTTest(preF, postF)
	if err != nil {
		return PrePostResult{}, err
	}
	return PrePostResult{
		Title:    title,
		Pre:      preH,
		Post:     postH,
		PreMean:  stats.Round(mustMean(preF), 2),
		PostMean: stats.Round(mustMean(postF), 2),
		TTest:    tt,
	}, nil
}

func mustMean(xs []float64) float64 {
	m, _ := stats.Mean(xs)
	return m
}

// Figure3 recomputes the paper's Figure 3: confidence in implementing PDC
// topics, before and after the workshop.
func Figure3(ps []Participant) (PrePostResult, error) {
	pre := make([]int, len(ps))
	post := make([]int, len(ps))
	for i, p := range ps {
		pre[i], post[i] = p.ConfidencePre, p.ConfidencePost
	}
	return prePost("Indicate your current level of confidence in implementing PDC topics in your courses.",
		ConfidenceScale, pre, post)
}

// Figure4 recomputes the paper's Figure 4: preparedness to implement PDC
// topics, before and after the workshop.
func Figure4(ps []Participant) (PrePostResult, error) {
	pre := make([]int, len(ps))
	post := make([]int, len(ps))
	for i, p := range ps {
		pre[i], post[i] = p.PreparednessPre, p.PreparednessPost
	}
	return prePost("How prepared do you feel to successfully implement PDC topics in your courses?",
		PreparednessScale, pre, post)
}

// FormatPrePost renders a figure as paired histograms with the t-test line
// the paper reports beneath it.
func FormatPrePost(r PrePostResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, r.Title)
	fmt.Fprintln(&b)
	b.WriteString(stats.PairedHistograms(r.Pre, r.Post, 24))
	fmt.Fprintf(&b, "\npre mean = %.2f, post mean = %.2f\n", r.PreMean, r.PostMean)
	fmt.Fprintf(&b, "paired %s\n", r.TTest)
	return b.String()
}

// Demographic summarizes the cohort as percentages of respondents, rounded
// half away from zero, as the paper reports them.
type Demographic struct {
	N int

	PctFaculty, PctGradStudents                 float64
	NContinentalUS, NPuertoRico, NInternational int
	PctMale, PctFemale, PctOther                float64
	PctTenure, PctNonTenure, PctGradTrack       float64

	PctFullyRemote, PctHybrid, PctInPerson, PctUndecided float64
	PctInstitutionHybrid                                 float64
}

func pct(count, n int) float64 {
	return stats.Round(100*float64(count)/float64(n), 0)
}

// Demographics recomputes the Section IV cohort description.
func Demographics(ps []Participant) Demographic {
	d := Demographic{N: len(ps)}
	counts := map[string]int{}
	for _, p := range ps {
		switch p.Role {
		case Faculty:
			counts["faculty"]++
		case GradStudent:
			counts["grad"]++
		}
		switch p.Location {
		case ContinentalUS:
			d.NContinentalUS++
		case PuertoRico:
			d.NPuertoRico++
		case International:
			d.NInternational++
		}
		switch p.Gender {
		case Male:
			counts["male"]++
		case Female:
			counts["female"]++
		case OtherGender:
			counts["other"]++
		}
		switch p.Track {
		case TenureTrack:
			counts["tenure"]++
		case NonTenureTrack:
			counts["nontenure"]++
		case GradTrack:
			counts["gradtrack"]++
		}
		switch p.FallPlan {
		case FullyRemote:
			counts["remote"]++
		case HybridTeaching:
			counts["hybrid"]++
		case InPerson:
			counts["inperson"]++
		case Undecided:
			counts["undecided"]++
		}
		if p.InstitutionHybrid {
			counts["insthybrid"]++
		}
	}
	n := len(ps)
	d.PctFaculty = pct(counts["faculty"], n)
	d.PctGradStudents = pct(counts["grad"], n)
	d.PctMale = pct(counts["male"], n)
	d.PctFemale = pct(counts["female"], n)
	d.PctOther = pct(counts["other"], n)
	d.PctTenure = pct(counts["tenure"], n)
	d.PctNonTenure = pct(counts["nontenure"], n)
	d.PctGradTrack = pct(counts["gradtrack"], n)
	d.PctFullyRemote = pct(counts["remote"], n)
	d.PctHybrid = pct(counts["hybrid"], n)
	d.PctInPerson = pct(counts["inperson"], n)
	d.PctUndecided = pct(counts["undecided"], n)
	d.PctInstitutionHybrid = pct(counts["insthybrid"], n)
	return d
}
