package survey

// The paper's Section IV quotes the participants' open-ended feedback at
// length; those quotes are part of the published evaluation, so they are
// carried here verbatim, tagged by session and theme, and surfaced by the
// workshop reporting tools.

// Quote is one open-ended survey response.
type Quote struct {
	// Session names which part of the workshop the comment addresses:
	// "openmp-pi", "mpi-distributed", or "workshop" for overall remarks.
	Session string
	// Theme is a short tag for what the comment is evidence of.
	Theme string
	Text  string
}

// OpenEndedFeedback returns the participant quotes the paper publishes,
// in the order they appear in Section IV.
func OpenEndedFeedback() []Quote {
	return []Quote{
		{
			Session: "openmp-pi",
			Theme:   "classroom adoption",
			Text: "We can see — using the Pi — several key concepts demonstrated. The level " +
				"of difficulty was well in the range of our students. After this day — I " +
				"immediately saw where we can show and use the exercises in our class!!",
		},
		{
			Session: "openmp-pi",
			Theme:   "manipulative value",
			Text:    "it brings concepts home in a way that nothing else seems to do",
		},
		{
			Session: "openmp-pi",
			Theme:   "consistent environment",
			Text:    "Having a consistent system makes life so much easier and allows for a consistent experience",
		},
		{
			Session: "openmp-pi",
			Theme:   "local device advantage",
			Text: "Having students connect to Zoom and separately connect to a remote server " +
				"can be hard on some wireless connections",
		},
		{
			Session: "mpi-distributed",
			Theme:   "python viability",
			Text: "It did show me that MPI can be used in Python; this makes Python somewhat " +
				"viable as a parallel teaching tool",
		},
		{
			Session: "mpi-distributed",
			Theme:   "accessibility",
			Text: "Although they seem difficult, the parallel programming basics are not " +
				"[difficult] when introduced correctly.",
		},
		{
			Session: "mpi-distributed",
			Theme:   "platform friction",
			Text:    "The platform switches seem to be a little confusing.",
		},
		{
			Session: "workshop",
			Theme:   "material quality",
			Text:    "The level where the material was presented was perfect",
		},
		{
			Session: "workshop",
			Theme:   "preparedness",
			Text: "I got a lot of material and I feel quite prepared to offer a course on " +
				"parallel computing this coming Fall",
		},
		{
			Session: "workshop",
			Theme:   "remote-format anxiety",
			Text: "I'm pretty quiet/shy in general and have telephone anxiety... I think I " +
				"would have contributed more if we weren't trapped in the online format.",
		},
	}
}

// FeedbackBySession filters the quotes for one session tag.
func FeedbackBySession(session string) []Quote {
	var out []Quote
	for _, q := range OpenEndedFeedback() {
		if q.Session == session {
			out = append(out, q)
		}
	}
	return out
}
