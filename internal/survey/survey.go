// Package survey reproduces the paper's assessment (Section IV): the
// independent evaluator's surveys of the 22 participants in the July 2020
// virtual workshop. It carries per-participant response vectors that are
// consistent with every statistic the paper publishes — the Table II
// session-usefulness means, the Figure 3 confidence pre/post distributions
// (means 2.82 → 3.59, paired t-test p = 0.0004), the Figure 4 preparedness
// distributions (2.59 → 3.77, p = 4.18e-08), and the demographic
// percentages — and the analysis code that recomputes those statistics
// from the raw responses.
//
// The paper publishes only aggregates, not the raw response vectors, so
// the vectors here are a reconstruction: they are chosen to reproduce the
// published integer-rounded means exactly and the published p-values to
// their printed precision. Demographic percentages in the paper appear to
// be rounded loosely (they do not all correspond to integer counts out of
// 22); the tests accept a ±2 percentage-point tolerance there and exact
// values everywhere else.
package survey

// Role is a participant's position.
type Role int

// Roles observed in the workshop.
const (
	Faculty Role = iota
	GradStudent
)

// Location buckets from the paper.
type Location int

// Locations observed in the workshop.
const (
	ContinentalUS Location = iota
	PuertoRico
	International
)

// Gender buckets from the paper's reporting.
type Gender int

// Genders as reported.
const (
	Male Gender = iota
	Female
	OtherGender
)

// Track is the appointment type.
type Track int

// Tracks as reported.
const (
	TenureTrack Track = iota
	NonTenureTrack
	GradTrack
)

// FallPlan is the participant's anticipated fall-2020 teaching mode.
type FallPlan int

// Fall plans as reported.
const (
	FullyRemote FallPlan = iota
	HybridTeaching
	InPerson
	Undecided
)

// Participant is one workshop attendee's complete survey record. Likert
// responses are 1–5; 0 marks a skipped item.
type Participant struct {
	ID       int
	Role     Role
	Location Location
	Gender   Gender
	Track    Track

	// FallPlan is how the participant expected to teach in fall 2020;
	// InstitutionHybrid is whether their institution anticipated offering
	// in-person+remote hybrid instruction.
	FallPlan          FallPlan
	InstitutionHybrid bool

	// Session usefulness ratings (Table II): (A) for implementing PDC in
	// courses, (B) for professional development.
	OpenMPImplement, OpenMPProfDev int
	MPIImplement, MPIProfDev       int

	// Pre/post workshop self-assessments (Figures 3 and 4).
	ConfidencePre, ConfidencePost     int
	PreparednessPre, PreparednessPost int
}

// Scale labels, exactly as the paper's figures caption them.
var (
	// UsefulnessScale is Table II's Likert scale.
	UsefulnessScale = []string{"not at all useful", "slightly useful", "moderately useful", "very useful", "extremely useful"}
	// ConfidenceScale is Figure 3's horizontal axis.
	ConfidenceScale = []string{"not at all", "slightly", "moderately", "very", "extremely"}
	// PreparednessScale is Figure 4's horizontal axis.
	PreparednessScale = []string{"not at all", "a little bit", "somewhat", "quite a bit", "very much"}
)

// Workshop2020 returns the 22 participants of the July 2020 virtual
// workshop. See the package comment for the reconstruction's fidelity.
func Workshop2020() []Participant {
	// Column layout below, per participant:
	//   confidence pre/post   (Figure 3: sums 62 and 79, diffs {2×5, 1×8, 0×8, −1×1})
	//   preparedness pre/post (Figure 4: sums 57 and 83, diffs {2×7, 1×12, 0×3})
	//   OpenMP A/B            (Table II row 1: sums 100 and 98 over n=22)
	//   MPI A/B               (Table II row 2: sums 92 and 90 over n=21; participant 22 skipped)
	type row struct {
		cPre, cPost, pPre, pPost, omA, omB, mpA, mpB int
	}
	rows := []row{
		{1, 3, 1, 3, 5, 5, 5, 5},
		{1, 3, 1, 3, 5, 5, 5, 5},
		{2, 4, 1, 3, 5, 5, 5, 5},
		{2, 4, 2, 4, 5, 5, 5, 5},
		{2, 4, 2, 4, 5, 5, 5, 5},
		{2, 3, 2, 4, 5, 5, 5, 4},
		{2, 3, 2, 4, 5, 5, 5, 4},
		{2, 3, 2, 3, 5, 5, 5, 4},
		{2, 3, 2, 3, 5, 5, 5, 4},
		{3, 4, 2, 3, 5, 5, 5, 4},
		{3, 4, 2, 3, 5, 4, 5, 4},
		{3, 4, 3, 4, 5, 4, 4, 4},
		{3, 4, 3, 4, 4, 4, 4, 5},
		{3, 3, 3, 4, 4, 4, 4, 5},
		{3, 3, 3, 4, 4, 4, 4, 5},
		{3, 3, 3, 4, 4, 4, 4, 5},
		{4, 4, 3, 4, 4, 4, 4, 5},
		{4, 4, 3, 3, 4, 4, 4, 3},
		{4, 4, 4, 5, 4, 4, 3, 3},
		{4, 4, 4, 5, 4, 4, 3, 3},
		{4, 3, 4, 4, 4, 4, 3, 3},
		{5, 5, 5, 5, 4, 4, 0, 0}, // skipped the MPI session items
	}

	demographics := demographicAssignments()
	ps := make([]Participant, len(rows))
	for i, r := range rows {
		ps[i] = Participant{
			ID:                i + 1,
			Role:              demographics[i].role,
			Location:          demographics[i].location,
			Gender:            demographics[i].gender,
			Track:             demographics[i].track,
			FallPlan:          demographics[i].fallPlan,
			InstitutionHybrid: demographics[i].instHybrid,
			OpenMPImplement:   r.omA,
			OpenMPProfDev:     r.omB,
			MPIImplement:      r.mpA,
			MPIProfDev:        r.mpB,
			ConfidencePre:     r.cPre,
			ConfidencePost:    r.cPost,
			PreparednessPre:   r.pPre,
			PreparednessPost:  r.pPost,
		}
	}
	return ps
}

type demo struct {
	role       Role
	location   Location
	gender     Gender
	track      Track
	fallPlan   FallPlan
	instHybrid bool
}

// demographicAssignments distributes the paper's Section IV demographics
// over the 22 participants: 19 faculty + 3 graduate students (85%/15%);
// 19 continental US + 1 Puerto Rico + 2 international; 17 male / 4 female /
// 1 other (77%/18%/5%); 10 tenure-track / 9 non-tenure / 3 grad
// (46%/39%/15%); fall plans 9 fully remote / 8 hybrid / 4 in-person /
// 1 undecided (39%/35%/17%); 16 at institutions planning hybrid (74%).
func demographicAssignments() []demo {
	ds := make([]demo, 22)
	for i := range ds {
		// Roles and tracks: the last three participants are the graduate
		// students expecting to graduate within the year.
		if i >= 19 {
			ds[i].role = GradStudent
			ds[i].track = GradTrack
		} else {
			ds[i].role = Faculty
			if i < 10 {
				ds[i].track = TenureTrack
			} else {
				ds[i].track = NonTenureTrack
			}
		}
		// Locations: one Puerto Rico, two international, rest continental.
		switch i {
		case 7:
			ds[i].location = PuertoRico
		case 11, 15:
			ds[i].location = International
		default:
			ds[i].location = ContinentalUS
		}
		// Gender: 17 male, 4 female, 1 other.
		switch {
		case i == 21:
			ds[i].gender = OtherGender
		case i%5 == 2 && i < 20:
			ds[i].gender = Female
		default:
			ds[i].gender = Male
		}
		// Fall plans: 9 remote, 8 hybrid, 4 in-person, 1 undecided.
		switch {
		case i < 9:
			ds[i].fallPlan = FullyRemote
		case i < 17:
			ds[i].fallPlan = HybridTeaching
		case i < 21:
			ds[i].fallPlan = InPerson
		default:
			ds[i].fallPlan = Undecided
		}
		// Institutions planning hybrid instruction: 16 of 22.
		ds[i].instHybrid = i < 16
	}
	return ds
}
