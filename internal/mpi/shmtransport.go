package mpi

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The shared-memory transport: a same-host data plane layered under the TCP
// hub's control plane. Ranks still dial the hub — formation, the start
// signal, abort/failed/agree/revoke broadcasts, and heartbeats all ride the
// existing TCP protocol — but user and collective frames between two ranks
// that mapped the same segment travel through that pair's SPSC ring instead
// of two socket hops, with an eager/rendezvous split:
//
//   - eager: payloads up to ShmTuning.EagerMax are copied straight into the
//     message ring record; the receiver copies them out into a pooled
//     buffer. Two copies, but both are ring-local and the record is gone as
//     soon as the consumer advances.
//   - rendezvous: larger payloads are staged once into the pair's
//     large-message region and announced by a small descriptor record. The
//     receiver hands the staged bytes to the matching Recv as a direct view
//     of shared memory — rawDecodeInto copies them into the user's slice
//     exactly once, extending the rawview zero-copy path across the process
//     boundary — and then frees the staging block.
//   - chunked: payloads too big for the large region stream through it in
//     rendezvous-sized chunks that the receiver reassembles (the documented
//     two-copy path for oversized messages).
//
// Per-destination routing is sticky: the first send to a rank checks the
// peer's attach word and pins the pair to shm or TCP-fallback for the
// world's lifetime, which preserves per-pair FIFO (a pair never interleaves
// two paths). Attach words are stable before any send because ranks attach
// before their hub hello and sends only start after the hub's start signal.
//
// Progress is futex-free polling with bounded spin-then-park: both blocked
// producers and the consumer goroutine spin with runtime.Gosched for
// ShmTuning.SpinIters iterations, then sleep with exponential backoff
// capped at ShmTuning.MaxPark — cheap when traffic is hot, near-idle when
// it is not, and safe on a single-core host because every spin yields.

// ShmTuning controls the shared-memory transport's protocol switches. Zero
// values select the defaults (except EagerMax, where 0 is meaningful: every
// payload takes the rendezvous path).
type ShmTuning struct {
	// EagerMax is the largest payload (bytes) copied eagerly into the
	// message ring; anything larger is staged in the large-message region
	// via rendezvous. It is additionally capped at a quarter of the ring so
	// several eager messages always fit in flight.
	EagerMax int
	// SpinIters bounds how many yield-spins a blocked producer or the poll
	// loop burns before parking.
	SpinIters int
	// MaxPark caps the parked sleep between polls once spinning gives up.
	MaxPark time.Duration
}

var defaultShmTuning = ShmTuning{
	EagerMax:  16 << 10,
	SpinIters: 256,
	MaxPark:   200 * time.Microsecond,
}

var shmTuningPtr atomic.Pointer[ShmTuning]

// SetShmTuning installs new shared-memory transport tuning and returns the
// previous values, so benchmarks and tests can restore them. Negative
// fields and a zero SpinIters/MaxPark select the defaults; EagerMax 0 is
// honored (pure rendezvous). Safe to call concurrently with running worlds;
// in-flight messages finish under whichever tuning they started with.
func SetShmTuning(t ShmTuning) ShmTuning {
	prev := shmTuningVal()
	if t.EagerMax < 0 {
		t.EagerMax = defaultShmTuning.EagerMax
	}
	if t.SpinIters <= 0 {
		t.SpinIters = defaultShmTuning.SpinIters
	}
	if t.MaxPark <= 0 {
		t.MaxPark = defaultShmTuning.MaxPark
	}
	shmTuningPtr.Store(&t)
	return prev
}

func shmTuningVal() ShmTuning {
	if p := shmTuningPtr.Load(); p != nil {
		return *p
	}
	return defaultShmTuning
}

// Message-ring record layout. Every record is 8-aligned and starts with its
// total size; a size of shmWrapMark tells the consumer the producer skipped
// to the ring's start.
//
//	size u32 | raw kind byte | flags byte | pad u16 |
//	tag i32 | src i32 | wsrc i32 | paylen u32 | ctx i64 | body...
//
// Body by flags: eager (0) carries the payload inline; shmFlagLarge carries
// the staged block's offset (u64); shmFlagChunkFirst carries total (u64) +
// block offset (u64); shmFlagChunkNext carries the block offset (u64).
const (
	shmRecHdrSize = 32
	shmBlkHdrSize = 16 // span u32 | state u32 | pad u64
	shmWrapMark   = uint32(0xFFFFFFFF)

	shmFlagLarge      byte = 1
	shmFlagChunkFirst byte = 2
	shmFlagChunkNext  byte = 4
)

// Large-region block states (the u32 at block offset +4).
const (
	shmBlkLive  uint32 = 0
	shmBlkFreed uint32 = 1
)

// errShmDrop tells a blocked sender to silently drop its frame: the peer
// failed or departed, which is exactly what the TCP hub does with frames
// for a torn-down destination. Send returns nil; failure surfaces through
// the control plane (abort broadcast or *RankFailedError), never through a
// racing send.
var errShmDrop = fmt.Errorf("mpi: shm frame dropped (peer gone)")

// Sticky per-pair routing decisions.
const (
	shmPairUndecided int32 = 0
	shmPairRing      int32 = 1
	shmPairTCP       int32 = 2
)

// shmSendPair is this rank's producer side of the (rank, dst) pair block.
// mu serializes this process's senders into the pair so records — and a
// chunked message's record sequence — stay contiguous; it is never shared
// across processes.
type shmSendPair struct {
	mu   sync.Mutex
	mode atomic.Int32
	dead atomic.Bool // peer failed under recovery: drop instead of block

	msgTail, msgHead     *atomic.Uint64
	largeTail, largeHead *atomic.Uint64
	ring, large          []byte
}

// shmRecvPair is this rank's consumer side of the (src, rank) pair block.
type shmRecvPair struct {
	msgTail, msgHead *atomic.Uint64
	ring, large      []byte
	asm              *shmAssembly // in-progress chunked reassembly
}

// shmAssembly accumulates a chunked message on the receive side.
type shmAssembly struct {
	f    frame
	kind byte
	buf  []byte
	fill int
}

// shmStats counts protocol decisions, for tests and diagnostics.
type shmStats struct {
	eager, rendezvous, chunked, fallback atomic.Uint64
}

// shmTransportStats is a point-in-time snapshot of one endpoint's counters.
type shmTransportStats struct {
	Eager, Rendezvous, Chunked, Fallback uint64
	// OutstandingLargeBytes is the total unreclaimed space across this
	// rank's outbound large-message regions after lazily advancing each
	// allocator over freed blocks — the number the reclamation tests drive
	// to zero.
	OutstandingLargeBytes uint64
	// OutstandingWinBytes is the unreclaimed space in this rank's window
	// heap: nonzero while RMA windows are live, back to zero once every
	// window is freed (win.go resets the bump allocator when the last one
	// goes).
	OutstandingWinBytes uint64
}

// shmTestHook, when set by a test, observes each shm endpoint as its world
// starts. Tests use it to reach the transport's counters from outside
// JoinShm.
var shmTestHook func(*shmTransport)

// shmTransport is one rank's endpoint: shm rings to attached same-host
// peers, the hub connection for control frames and TCP-fallback pairs.
type shmTransport struct {
	seg  *shmSegment
	rank int
	np   int
	tcp  *tcpTransport

	world atomic.Pointer[World]
	box   *mailbox

	out []shmSendPair
	in  []shmRecvPair

	stopped  atomic.Bool
	polling  atomic.Bool
	pollDone chan struct{}

	// liveBlocks counts rendezvous frames whose Data still views the
	// mapping (freed by frame.rel on receive). Close only unmaps when it
	// reaches zero; otherwise the mapping is leaked rather than risk a
	// released frame touching unmapped memory.
	liveBlocks atomic.Int64

	// Window-heap allocator (the one-sided layer, win.go). A rank bump-
	// allocates RMA window memory exclusively from its own heap region of
	// the segment and publishes offsets through an Allgather at window
	// creation, so the allocator state itself is process-private: no peer
	// ever allocates from this heap. winLive counts live windows; freeing
	// the last one resets the bump pointer, reclaiming the whole heap.
	winMu   sync.Mutex
	winUsed uint64
	winLive int

	stats shmStats
}

// newShmTransport maps the segment and wires one rank's endpoint over the
// already-dialed hub transport. A host-fingerprint mismatch returns
// (nil, nil): the caller proceeds on pure TCP.
func newShmTransport(segPath string, rank, np int, tcp *tcpTransport) (*shmTransport, error) {
	seg, err := openShmSegment(segPath, np)
	if err == errShmHostMismatch {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	t := &shmTransport{
		seg:      seg,
		rank:     rank,
		np:       np,
		tcp:      tcp,
		out:      make([]shmSendPair, np),
		in:       make([]shmRecvPair, np),
		pollDone: make(chan struct{}),
	}
	for d := 0; d < np; d++ {
		off := seg.pairOff(rank, d)
		p := &t.out[d]
		p.msgTail = shmAtU64(seg.data, off+shmPairOffMsgTail)
		p.msgHead = shmAtU64(seg.data, off+shmPairOffMsgHead)
		p.largeTail = shmAtU64(seg.data, off+shmPairOffLargeTail)
		p.largeHead = shmAtU64(seg.data, off+shmPairOffLargeHead)
		p.ring = seg.data[off+shmPairHdrSize : off+shmPairHdrSize+seg.ringCap]
		lo := off + shmPairHdrSize + seg.ringCap
		p.large = seg.data[lo : lo+seg.largeCap]
	}
	for s := 0; s < np; s++ {
		off := seg.pairOff(s, rank)
		p := &t.in[s]
		p.msgTail = shmAtU64(seg.data, off+shmPairOffMsgTail)
		p.msgHead = shmAtU64(seg.data, off+shmPairOffMsgHead)
		p.ring = seg.data[off+shmPairHdrSize : off+shmPairHdrSize+seg.ringCap]
		lo := off + shmPairHdrSize + seg.ringCap
		p.large = seg.data[lo : lo+seg.largeCap]
	}
	seg.attachWord(rank).Store(shmAttached)
	return t, nil
}

// bind attaches the endpoint to its world and mailbox once they exist (the
// world is built after the hub's start signal; no frame moves before that).
func (t *shmTransport) bind(w *World, box *mailbox) {
	t.world.Store(w)
	t.box = box
}

func (t *shmTransport) startPolling() {
	t.polling.Store(true)
	go t.pollLoop()
}

// wiresTyped: like the v1 TCP wire, the shm transport consumes frame.Val
// synchronously inside Send (encoding it into the ring or staging region),
// so the send path may pass the caller's slice uncopied.
func (t *shmTransport) wiresTyped() bool { return true }

// Send routes control frames to the hub, TCP-fallback pairs through the
// hub, and everything else into the destination pair's ring.
func (t *shmTransport) Send(f frame) error {
	if f.Dst == ctrlDst {
		return t.tcp.Send(f)
	}
	if f.Dst < 0 || f.Dst >= t.np {
		return ErrInvalidRank
	}
	if !headerRanksFit(f) {
		// A tag beyond 31 bits does not fit the record header; the gob
		// wire carries full-width tags, so route the oddball via the hub.
		return t.tcp.Send(f)
	}
	p := &t.out[f.Dst]
	mode := p.mode.Load()
	if mode == shmPairUndecided {
		want := shmPairTCP
		if t.seg.attachState(f.Dst) != shmAbsent {
			want = shmPairRing
		}
		if p.mode.CompareAndSwap(shmPairUndecided, want) {
			mode = want
		} else {
			mode = p.mode.Load()
		}
	}
	if mode == shmPairTCP {
		t.stats.fallback.Add(1)
		return t.tcp.Send(f)
	}
	err := t.sendRing(p, f)
	if err == errShmDrop {
		return nil
	}
	return err
}

// sendRing materializes the frame's payload representation and dispatches
// it to the eager, rendezvous, or chunked protocol.
func (t *shmTransport) sendRing(p *shmSendPair, f frame) error {
	kind := f.Raw
	val := any(nil)
	data := f.Data
	if f.HasVal {
		if k, ok := rawKindOf(f.Val); ok {
			kind, val, data = k, f.Val, nil
		} else {
			// Outside the raw whitelist: gob here, exactly as the TCP wire
			// would, so nothing typed crosses the process boundary raw.
			enc, err := encodeValue(f.Val)
			if err != nil {
				return err
			}
			kind, val, data = rawNone, nil, enc
		}
	}
	paylen := len(data)
	if val != nil {
		paylen = rawSizeOf(val)
	}

	tun := shmTuningVal()
	eagerMax := tun.EagerMax
	if lim := int(t.seg.ringCap/4) - shmRecHdrSize; eagerMax > lim {
		eagerMax = lim
	}
	if paylen <= eagerMax {
		return t.sendEager(p, f, kind, val, data, paylen)
	}
	if paylen <= t.maxBlockPayload() {
		return t.sendLarge(p, f, kind, val, data, paylen)
	}
	return t.sendChunked(p, f, kind, val, data, paylen)
}

// maxBlockPayload is the largest payload staged as a single block: the
// region minus one block header and one worst-case wrap skip.
func (t *shmTransport) maxBlockPayload() int {
	return int(t.seg.largeCap)/2 - 2*shmBlkHdrSize
}

func shmAlign8(n int) uint64     { return uint64(n+7) &^ 7 }
func shmAlign16(n uint64) uint64 { return (n + 15) &^ 15 }

func putShmRecHdr(b []byte, size uint32, kind, flags byte, f frame, paylen uint32) {
	le.PutUint32(b[0:], size)
	b[4] = kind
	b[5] = flags
	b[6], b[7] = 0, 0
	le.PutUint32(b[8:], uint32(int32(f.Tag)))
	le.PutUint32(b[12:], uint32(int32(f.Src)))
	le.PutUint32(b[16:], uint32(int32(f.WSrc)))
	le.PutUint32(b[20:], paylen)
	le.PutUint64(b[24:], uint64(f.Ctx))
}

// shmCopyPayload writes the payload bytes into dst from whichever
// representation the send carries: a direct memcpy of the value's storage
// when a raw view exists, the element-encode loop otherwise, a plain copy
// for already-encoded bytes.
func shmCopyPayload(dst []byte, val any, data []byte) {
	if val != nil {
		if view, ok := rawBytesView(val); ok {
			copy(dst, view)
		} else {
			rawEncode(dst, val)
		}
		return
	}
	copy(dst, data)
}

func (t *shmTransport) sendEager(p *shmSendPair, f frame, kind byte, val any, data []byte, paylen int) error {
	rec := shmAlign8(shmRecHdrSize + paylen)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead.Load() {
		return errShmDrop
	}
	off, tail, err := t.reserve(p, f.Dst, rec)
	if err != nil {
		return err
	}
	putShmRecHdr(p.ring[off:], uint32(rec), kind, 0, f, uint32(paylen))
	shmCopyPayload(p.ring[off+shmRecHdrSize:off+shmRecHdrSize+uint64(paylen)], val, data)
	p.msgTail.Store(tail + rec) // release: publishes header and payload
	t.stats.eager.Add(1)
	return nil
}

func (t *shmTransport) sendLarge(p *shmSendPair, f frame, kind byte, val any, data []byte, paylen int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Checked under the pair mutex: peerFailed's reclaim takes the same
	// mutex after setting dead, so either this send observes dead and drops,
	// or its staged block is ordered before the reclaim and covered by it —
	// a block can never be orphaned past the peer's recorded failure.
	if p.dead.Load() {
		return errShmDrop
	}
	blkOff, err := t.allocBlock(p, f.Dst, paylen)
	if err != nil {
		return err
	}
	shmCopyPayload(p.large[blkOff+shmBlkHdrSize:blkOff+shmBlkHdrSize+uint64(paylen)], val, data)
	rec := shmAlign8(shmRecHdrSize + 8)
	off, tail, err := t.reserve(p, f.Dst, rec)
	if err != nil {
		// No descriptor will ever announce the block; free it so the
		// allocator reclaims the space.
		shmAtU32(p.large, blkOff+4).Store(shmBlkFreed)
		return err
	}
	putShmRecHdr(p.ring[off:], uint32(rec), kind, shmFlagLarge, f, uint32(paylen))
	le.PutUint64(p.ring[off+shmRecHdrSize:], blkOff)
	// One release publishes both the descriptor and the staged block: the
	// consumer only learns the block offset from a record it acquired.
	p.msgTail.Store(tail + rec)
	t.stats.rendezvous.Add(1)
	return nil
}

// sendChunked streams an oversized payload through the large region in
// rendezvous-sized chunks. The pair mutex is held across the whole message
// so its records stay consecutive (per-pair FIFO makes reassembly trivial).
func (t *shmTransport) sendChunked(p *shmSendPair, f frame, kind byte, val any, data []byte, paylen int) error {
	src := data
	scratch := []byte(nil)
	if val != nil {
		if view, ok := rawBytesView(val); ok {
			src = view
		} else {
			scratch = getWireBuf(paylen)
			rawEncode(scratch, val)
			src = scratch
		}
	}
	defer func() {
		if scratch != nil {
			putWireBuf(scratch)
		}
	}()

	chunk := t.maxBlockPayload()
	if chunk > 1<<20 {
		chunk = 1 << 20
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead.Load() {
		return errShmDrop
	}
	sent := 0
	first := true
	for sent < paylen {
		n := chunk
		if rest := paylen - sent; n > rest {
			n = rest
		}
		blkOff, err := t.allocBlock(p, f.Dst, n)
		if err != nil {
			return err
		}
		copy(p.large[blkOff+shmBlkHdrSize:blkOff+shmBlkHdrSize+uint64(n)], src[sent:sent+n])
		flags, bodyLen := shmFlagChunkNext, 8
		if first {
			flags, bodyLen = shmFlagChunkFirst, 16
		}
		rec := shmAlign8(shmRecHdrSize + bodyLen)
		off, tail, err := t.reserve(p, f.Dst, rec)
		if err != nil {
			shmAtU32(p.large, blkOff+4).Store(shmBlkFreed)
			return err
		}
		putShmRecHdr(p.ring[off:], uint32(rec), kind, flags, f, uint32(n))
		if first {
			le.PutUint64(p.ring[off+shmRecHdrSize:], uint64(paylen))
			le.PutUint64(p.ring[off+shmRecHdrSize+8:], blkOff)
		} else {
			le.PutUint64(p.ring[off+shmRecHdrSize:], blkOff)
		}
		p.msgTail.Store(tail + rec)
		first = false
		sent += n
	}
	t.stats.chunked.Add(1)
	return nil
}

// reserve claims `need` contiguous ring bytes for one record, writing a
// wrap marker when the tail would straddle the ring's end. It returns the
// record's byte offset and the pre-advance tail position; the caller writes
// the record and publishes by storing tail+need. Blocks (spin-then-park)
// while the consumer is behind; gives up via sendWait when the world
// aborts, the peer fails, or the transport stops.
func (t *shmTransport) reserve(p *shmSendPair, dst int, need uint64) (uint64, uint64, error) {
	ringCap := t.seg.ringCap
	spins := 0
	park := time.Microsecond
	for {
		tail := p.msgTail.Load()
		head := p.msgHead.Load() // acquire: consumer's progress
		free := ringCap - (tail - head)
		tailOff := tail % ringCap
		contig := ringCap - tailOff
		if contig < need {
			if free >= contig {
				le.PutUint32(p.ring[tailOff:], shmWrapMark)
				p.msgTail.Store(tail + contig)
				continue
			}
		} else if free >= need {
			return tailOff, tail, nil
		}
		if err := t.sendWait(p, dst, &spins, &park); err != nil {
			return 0, 0, err
		}
	}
}

// allocBlock claims a large-region block with room for n payload bytes,
// returning the block header's offset. Freed blocks are reclaimed eagerly by
// advancing the head over them; a tail that would straddle the region's end
// burns a pre-freed skip block. Whenever the region drains empty the cursors
// rebase to the next region boundary, so lock-step traffic restages every
// message at offset 0 and reuses the same cache-hot lines instead of
// marching cold across the whole region — on a collective's round cadence
// this is the difference between L2-resident staging and a 4 MiB working
// set per pair.
func (t *shmTransport) allocBlock(p *shmSendPair, dst int, n int) (uint64, error) {
	largeCap := t.seg.largeCap
	need := shmAlign16(uint64(n) + shmBlkHdrSize)
	spins := 0
	park := time.Microsecond
	for {
		t.advanceLargeHead(p)
		tail := p.largeTail.Load()
		head := p.largeHead.Load()
		if head == tail && tail%largeCap != 0 {
			// Empty: every prior block is freed, so no consumer view is
			// outstanding (head cannot pass a live block) and the offsets
			// below the cursors are dead. Rounding both up keeps the
			// positions monotonic for the free-space arithmetic.
			tail = (tail/largeCap + 1) * largeCap
			p.largeTail.Store(tail)
			p.largeHead.Store(tail)
			head = tail
		}
		free := largeCap - (tail - head)
		tailOff := tail % largeCap
		contig := largeCap - tailOff
		if need <= contig && need <= free {
			le.PutUint32(p.large[tailOff:], uint32(need))
			shmAtU32(p.large, tailOff+4).Store(shmBlkLive)
			p.largeTail.Store(tail + need)
			return tailOff, nil
		}
		if contig < need && free >= contig {
			// Skip block: spans to the region's end, born freed.
			le.PutUint32(p.large[tailOff:], uint32(contig))
			shmAtU32(p.large, tailOff+4).Store(shmBlkFreed)
			p.largeTail.Store(tail + contig)
			continue
		}
		if t.advanceLargeHead(p) {
			continue
		}
		if err := t.sendWait(p, dst, &spins, &park); err != nil {
			return 0, err
		}
	}
}

// advanceLargeHead walks the allocator's head over contiguously freed
// blocks, reclaiming their space. Producer-side only; reports progress.
func (t *shmTransport) advanceLargeHead(p *shmSendPair) bool {
	largeCap := t.seg.largeCap
	head := p.largeHead.Load()
	tail := p.largeTail.Load()
	start := head
	for head < tail {
		off := head % largeCap
		span := uint64(le.Uint32(p.large[off:]))
		if span < shmBlkHdrSize || span > largeCap {
			break // never valid; stop rather than run away
		}
		if shmAtU32(p.large, off+4).Load() != shmBlkFreed {
			break
		}
		head += span
	}
	if head == start {
		return false
	}
	p.largeHead.Store(head)
	return true
}

// sendWait is one blocked-producer backoff cycle. It surfaces the reasons a
// sender must stop waiting: transport shutdown, a world abort, or the peer
// being failed/departed (errShmDrop — the frame is silently dropped, the
// same outcome the hub gives frames for a torn-down destination).
func (t *shmTransport) sendWait(p *shmSendPair, dst int, spins *int, park *time.Duration) error {
	if t.stopped.Load() {
		return ErrShutdown
	}
	if p.dead.Load() || t.seg.attachState(dst) == shmDeparted {
		return errShmDrop
	}
	if w := t.world.Load(); w != nil {
		if err := w.abortErr(); err != nil {
			return err
		}
		if r := w.recov; r != nil && r.isFailed(dst) {
			return errShmDrop
		}
	}
	tun := shmTuningVal()
	*spins++
	if *spins < tun.SpinIters {
		runtime.Gosched()
		return nil
	}
	time.Sleep(*park)
	if *park < tun.MaxPark {
		*park *= 2
		if *park > tun.MaxPark {
			*park = tun.MaxPark
		}
	}
	return nil
}

// pollLoop is the endpoint's consumer: it sweeps every inbound ring
// (including the self pair — a rank may send to itself) and delivers
// decoded frames to the mailbox, spinning then parking when idle.
func (t *shmTransport) pollLoop() {
	defer close(t.pollDone)
	spins := 0
	park := time.Microsecond
	for !t.stopped.Load() {
		progressed := false
		for src := 0; src < t.np; src++ {
			for t.pollPair(src) {
				progressed = true
			}
		}
		if progressed {
			spins = 0
			park = time.Microsecond
			continue
		}
		tun := shmTuningVal()
		spins++
		if spins < tun.SpinIters {
			runtime.Gosched()
			continue
		}
		time.Sleep(park)
		if park < tun.MaxPark {
			park *= 2
			if park > tun.MaxPark {
				park = tun.MaxPark
			}
		}
	}
}

// pollPair consumes at most one record from the src ring, reporting whether
// it consumed anything.
func (t *shmTransport) pollPair(src int) bool {
	p := &t.in[src]
	head := p.msgHead.Load()
	tail := p.msgTail.Load() // acquire: producer's published records
	if head == tail {
		return false
	}
	ringCap := t.seg.ringCap
	off := head % ringCap
	size := le.Uint32(p.ring[off:])
	if size == shmWrapMark {
		p.msgHead.Store(head + (ringCap - off))
		return true
	}
	if uint64(size) < shmRecHdrSize || uint64(size) > ringCap-off {
		if w := t.world.Load(); w != nil {
			w.abort(fmt.Errorf("mpi: rank %d: shm ring from rank %d corrupt (record size %d at offset %d)", t.rank, src, size, off))
		}
		t.stopped.Store(true)
		return false
	}
	t.handleRecord(p, p.ring[off:off+uint64(size)])
	// Release after the eager payload is copied out: the store hands the
	// bytes back to the producer.
	p.msgHead.Store(head + uint64(size))
	return true
}

// handleRecord decodes one ring record into a frame and delivers it.
func (t *shmTransport) handleRecord(p *shmRecvPair, rec []byte) {
	kind := rec[4]
	flags := rec[5]
	paylen := uint64(le.Uint32(rec[20:]))
	f := frame{
		Ctx:  int64(le.Uint64(rec[24:])),
		Src:  int(int32(le.Uint32(rec[12:]))),
		WSrc: int(int32(le.Uint32(rec[16:]))),
		Dst:  t.rank,
		Tag:  int(int32(le.Uint32(rec[8:]))),
	}
	body := rec[shmRecHdrSize:]
	switch {
	case flags&shmFlagLarge != 0:
		blkOff := le.Uint64(body)
		data := p.large[blkOff+shmBlkHdrSize : blkOff+shmBlkHdrSize+paylen]
		state := shmAtU32(p.large, blkOff+4)
		if kind == rawNone {
			// Gob payloads are decoded lazily by the receiver, possibly
			// after more sends recycle the region — copy out and free now.
			buf := make([]byte, paylen)
			copy(buf, data)
			state.Store(shmBlkFreed)
			f.Data = buf
		} else {
			// The zero-copy handoff: the frame views shared memory until
			// the matching Recv's rawDecodeInto copies it straight into the
			// user's slice, then frees the block via rel.
			f.Data = data
			f.Raw = kind
			t.liveBlocks.Add(1)
			f.rel = func() {
				state.Store(shmBlkFreed)
				t.liveBlocks.Add(-1)
			}
		}
	case flags&shmFlagChunkFirst != 0:
		total := le.Uint64(body)
		blkOff := le.Uint64(body[8:])
		var buf []byte
		if kind != rawNone {
			buf = getWireBuf(int(total))
		} else {
			buf = make([]byte, total)
		}
		copy(buf, p.large[blkOff+shmBlkHdrSize:blkOff+shmBlkHdrSize+paylen])
		shmAtU32(p.large, blkOff+4).Store(shmBlkFreed)
		p.asm = &shmAssembly{f: f, kind: kind, buf: buf, fill: int(paylen)}
		t.finishAssembly(p)
	case flags&shmFlagChunkNext != 0:
		a := p.asm
		blkOff := le.Uint64(body)
		if a == nil || a.fill+int(paylen) > len(a.buf) {
			shmAtU32(p.large, blkOff+4).Store(shmBlkFreed)
			return // orphan chunk (sender gave up mid-message); drop
		}
		copy(a.buf[a.fill:], p.large[blkOff+shmBlkHdrSize:blkOff+shmBlkHdrSize+paylen])
		shmAtU32(p.large, blkOff+4).Store(shmBlkFreed)
		a.fill += int(paylen)
		t.finishAssembly(p)
	default: // eager
		if kind == rawNone {
			buf := make([]byte, paylen)
			copy(buf, body[:paylen])
			f.Data = buf
		} else {
			buf := getWireBuf(int(paylen))
			copy(buf, body[:paylen])
			f.Data = buf
			f.Raw = kind
		}
		t.box.deliver(f)
		return
	}
	if flags&shmFlagLarge != 0 {
		t.box.deliver(f)
	}
}

// finishAssembly delivers a chunked message once every byte has arrived.
func (t *shmTransport) finishAssembly(p *shmRecvPair) {
	a := p.asm
	if a == nil || a.fill < len(a.buf) {
		return
	}
	f := a.f
	if a.kind == rawNone {
		f.Data = a.buf
	} else {
		f.Data = a.buf
		f.Raw = a.kind // pooled buffer: the normal release path recycles it
	}
	p.asm = nil
	t.box.deliver(f)
}

// peerFailed reclaims the outbound pair to a failed rank: the pair is
// marked dead (future and blocked sends drop), and every outstanding
// staging block — including rendezvous payloads the dead rank never
// received — is reclaimed at once by advancing the allocator's head to its
// tail. Installed as the world's rank-failure hook by joinHub.
func (t *shmTransport) peerFailed(rank int) {
	if rank < 0 || rank >= t.np || rank == t.rank {
		return
	}
	p := &t.out[rank]
	p.dead.Store(true)
	// The pair mutex excludes in-flight producers: a blocked one observes
	// dead on its next backoff cycle and releases the lock promptly.
	p.mu.Lock()
	p.largeHead.Store(p.largeTail.Load())
	p.mu.Unlock()
}

// peerRejoined pins the outbound pair to a respawned rank onto the TCP
// fallback: the relaunched process maps no shared segment with this one, so
// the sticky routing decision is forced to the hub path and the dead mark is
// cleared (sends must flow again, not drop). Installed as the world's
// rank-rejoin hook by joinHub.
func (t *shmTransport) peerRejoined(rank int) {
	if rank < 0 || rank >= t.np || rank == t.rank {
		return
	}
	p := &t.out[rank]
	p.mode.Store(shmPairTCP)
	p.dead.Store(false)
}

// winAlloc carves bytes out of this rank's window heap, 64-byte aligned,
// and returns the absolute segment offset. It fails (ok=false) when the
// heap is exhausted; the window layer then falls back to process-private
// memory and the active-message path for that window.
func (t *shmTransport) winAlloc(bytes uint64) (off uint64, ok bool) {
	const align = 64
	t.winMu.Lock()
	defer t.winMu.Unlock()
	used := (t.winUsed + align - 1) &^ (align - 1)
	if used+bytes > t.seg.winCap {
		return 0, false
	}
	t.winUsed = used + bytes
	t.winLive++
	return t.seg.winOff(t.rank) + used, true
}

// winFree retires one window's heap allocation. Individual allocations are
// not returned piecemeal — windows are typically long-lived and few — but
// freeing the last live window resets the bump pointer, so serial
// create/free cycles never leak the heap.
func (t *shmTransport) winFree() {
	t.winMu.Lock()
	defer t.winMu.Unlock()
	if t.winLive > 0 {
		t.winLive--
	}
	if t.winLive == 0 {
		t.winUsed = 0
	}
}

// winView returns the segment bytes at an absolute offset — the window
// layer's door into a peer's published window region. The caller has
// validated the offset against the publishing rank's heap bounds.
func (t *shmTransport) winView(off, n uint64) []byte {
	return t.seg.data[off : off+n : off+n]
}

// winDirectOK reports whether direct load/store access to world rank r's
// window memory is sound: the rank is attached to this segment and its pair
// has not been pinned to the TCP fallback (a respawned process maps a
// different world's offsets; its published windows are stale).
func (t *shmTransport) winDirectOK(r int) bool {
	if r == t.rank {
		return true
	}
	if r < 0 || r >= t.np || t.seg.attachState(r) != shmAttached {
		return false
	}
	p := &t.out[r]
	return p.mode.Load() != shmPairTCP && !p.dead.Load()
}

// corruptNextFrame delegates to the hub connection: the shm rings hand the
// receiver the very memory the sender wrote (no wire to corrupt), so only
// frames taking the TCP fallback can carry an injected bit flip.
func (t *shmTransport) corruptNextFrame() bool {
	return t.tcp.corruptNextFrame()
}

// severConnection severs the hub connection underneath the shm data plane:
// ring traffic is unaffected, but control frames and fallback pairs ride
// the resumable TCP session, which reconnects within the grace window.
func (t *shmTransport) severConnection() {
	t.tcp.severConnection()
}

// statsSnapshot reports the endpoint's counters, advancing each outbound
// allocator over freed blocks first so OutstandingLargeBytes reflects what
// is genuinely unreclaimed.
func (t *shmTransport) statsSnapshot() shmTransportStats {
	s := shmTransportStats{
		Eager:      t.stats.eager.Load(),
		Rendezvous: t.stats.rendezvous.Load(),
		Chunked:    t.stats.chunked.Load(),
		Fallback:   t.stats.fallback.Load(),
	}
	for d := range t.out {
		p := &t.out[d]
		p.mu.Lock()
		t.advanceLargeHead(p)
		s.OutstandingLargeBytes += p.largeTail.Load() - p.largeHead.Load()
		p.mu.Unlock()
	}
	t.winMu.Lock()
	s.OutstandingWinBytes = t.winUsed
	t.winMu.Unlock()
	return s
}

// JoinShm connects to the hub at addr as the given rank of an np-rank world
// and runs main with the shared-memory data plane: the worker half of
// "mpirun -transport shm". segPath names a segment built by
// CreateShmSegment for the same np; ranks that mapped it exchange user and
// collective frames through its rings, while formation, abort, heartbeat,
// recovery, and traffic with non-shm ranks ride the hub exactly as in
// JoinTCP — so HubFormationTimeout, ErrWorldAborted, *DeadlineError, and
// WithRecovery semantics are unchanged. A segment created on a different
// host — or an empty segPath — degrades the rank to pure TCP, which is how
// a mixed same-host/remote world interoperates: every rank joins the same
// hub, and each pair uses the fastest path both ends share.
func JoinShm(addr, segPath string, rank, np int, main func(c *Comm) error, opts ...Option) error {
	if segPath != "" && !shmSupported {
		return ErrShmUnsupported
	}
	return joinHub(addr, segPath, rank, np, false, main, opts...)
}

// ShmSupported reports whether the shared-memory transport is available
// on this platform; callers (test matrices, launchers) use it to skip the
// shm leg instead of failing on the stub.
func ShmSupported() bool { return shmSupported }

// RunShm executes main as an SPMD program of np ranks connected through a
// loopback hub with a shared-memory data plane, all within the calling
// process: functionally RunTCP, but user frames travel through mmap-backed
// rings instead of sockets. It is the launcher the shm parity, failure, and
// benchmark suites drive.
func RunShm(np int, main func(c *Comm) error, opts ...Option) error {
	seg, err := CreateShmSegment("", np)
	if err != nil {
		return err
	}
	defer os.Remove(seg)
	return runHub(np, seg, main, opts...)
}

// Close stops the poll loop, marks this rank departed (unwedging any peer
// blocked on a send to it), and closes the hub connection. The mapping is
// unmapped only when no delivered rendezvous frame still views it;
// otherwise it is deliberately leaked — unmapping under a live frame would
// turn an unreleased buffer into a fault.
func (t *shmTransport) Close() error {
	if t.stopped.Swap(true) {
		return t.tcp.Close()
	}
	t.seg.attachWord(t.rank).Store(shmDeparted)
	if t.polling.Load() {
		<-t.pollDone
	}
	err := t.tcp.Close()
	if t.liveBlocks.Load() == 0 {
		t.seg.unmap()
	}
	return err
}
