package mpi

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// le abbreviates the byte order every raw header and payload uses.
var le = binary.LittleEndian

// Typed binary framing for the TCP transport. Version 0 of the wire — what
// PR 1 shipped — was a bare gob stream: every frame, whatever its payload,
// went through gob's reflective encoder and straight to an unbuffered
// connection write. Version 1 keeps the gob stream (it is still the fallback
// for every non-whitelisted payload and every control frame) but frames it:
// each message starts with a one-byte kind, either
//
//	kindGob  followed by one gob-encoded frame, or
//	kindRaw  followed by a fixed little-endian header and the payload's
//	         element storage verbatim (see rawcodec.go):
//
//	         Ctx int64 | Src int32 | WSrc int32 | Dst int32 | Tag int32 |
//	         raw kind byte | payload length uint32 | payload bytes
//
// Version 2 turns the connection into a resumable *session* (session.go):
// every data frame carries a uint64 sequence number between the kind byte
// and the body, raw frames append a CRC32C to the header, and a third kind —
// kindAck — carries the receiver's cumulative acknowledgement:
//
//	kindGob  seq uint64 | one gob-encoded frame
//	kindRaw  seq uint64 | v1 header | crc32c uint32 | payload bytes
//	kindAck  ack uint64                      (not sequenced, never replayed)
//
// The CRC covers the fixed header plus the payload — in full for payloads up
// to 2*crcWindow, and the first and last crcWindow bytes for larger ones. A
// bounded window keeps the integrity check off the large-message critical
// path (a full CRC over a 1 MiB payload costs ~25% of the ping-pong; the
// windows cost ~3%) while still catching header corruption, truncation, and
// bit flips near either end; the benchlab resilience pin enforces the ≤5%
// budget. Corruption detected by the reader surfaces as *CorruptFrameError,
// which the session layer treats like a broken connection: tear down,
// resume, retransmit the clean captured copy.
//
// Interleaving raw bytes with a live gob stream is safe because the decoder
// reads from a *bufio.Reader: gob consumes exactly one message's bytes via
// the io.ByteReader interface and never reads ahead, so the next byte after
// a gob message is always ours to interpret as the next kind. Both ends of a
// connection agree on the version in the hello exchange; a peer that never
// announced v1 gets a pure gob stream, with raw frames converted back to gob
// before forwarding (the version-mismatch path).
//
// Writes go through a bufio.Writer flushed once per frame: a gob frame used
// to cost one syscall per internal gob segment (type descriptor, then
// value); now every frame — header, payload, all of it — leaves in one
// write. Heartbeat and control frames take the same writeFrame path, so they
// flush promptly by construction.
const (
	wireVersion  = 1 // kind-byte framing
	wireVersion2 = 2 // + sequence numbers, CRC32C, resumable sessions
)

const (
	kindGob byte = 0x67 // 'g'
	kindRaw byte = 0x72 // 'r'
	kindAck byte = 0x61 // 'a' (v2 only)
)

// rawHeaderLen is the fixed header that follows a kindRaw byte.
const rawHeaderLen = 8 + 4 + 4 + 4 + 4 + 1 + 4

const (
	seqLen = 8
	crcLen = 4
	// v2RawPrefixLen is everything before a v2 raw frame's payload.
	v2RawPrefixLen = 1 + seqLen + rawHeaderLen + crcLen
	// v2GobPrefixLen is everything before a v2 gob frame's encoded bytes.
	v2GobPrefixLen = 1 + seqLen
)

// crcTable is the Castagnoli polynomial — hardware-accelerated on amd64 and
// arm64, the same choice iSCSI and ext4 made.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcWindow bounds the CRC's payload coverage: payloads up to 2*crcWindow
// are covered in full; larger ones contribute their first and last window.
const crcWindow = 64 << 10

// payloadCRC computes a frame's checksum over its fixed header and the
// bounded payload coverage.
func payloadCRC(hdr, payload []byte) uint32 {
	c := crc32.Update(0, crcTable, hdr)
	if len(payload) <= 2*crcWindow {
		return crc32.Update(c, crcTable, payload)
	}
	c = crc32.Update(c, crcTable, payload[:crcWindow])
	return crc32.Update(c, crcTable, payload[len(payload)-crcWindow:])
}

// maxRawFrame bounds the payload length a reader will believe: a corrupted
// or adversarial stream must produce an error, not a giant allocation.
const maxRawFrame = 1 << 30

// wireBufSize sizes the bufio layers: large enough that a small frame plus
// its header coalesces into one write, small enough to be cheap per
// connection.
const wireBufSize = 64 << 10

// wireWriter is the sending half of one connection: a buffered writer with
// a persistent gob encoder layered on top, flushed once per frame.
//
// A v2 writer's gob encoder targets gobBuf instead of the connection, so the
// session layer can capture a frame's exact bytes for replay — the encoder
// (and its type-descriptor state) survives connection swaps, which is what
// makes resuming a half-spoken gob stream on a fresh TCP connection sound.
type wireWriter struct {
	bw  *bufio.Writer
	enc *gob.Encoder
	v1  bool // peer understands kind-byte framing
	v2  bool // peer speaks sessions (seq + CRC + ack)
	hdr [1 + rawHeaderLen]byte

	gobBuf bytes.Buffer // v2: per-frame gob staging
	hdr2   [v2RawPrefixLen]byte

	// corruptNext makes the next raw frame leave the writer with one payload
	// bit flipped — on the wire only, never in the captured replay copy. The
	// FaultCorrupt injector arms it to prove the CRC catches real bit rot.
	corruptNext bool
}

func newWireWriter(w io.Writer, ver int) *wireWriter {
	bw := bufio.NewWriterSize(w, wireBufSize)
	ww := &wireWriter{bw: bw, v1: ver >= wireVersion, v2: ver >= wireVersion2}
	if ww.v2 {
		ww.enc = gob.NewEncoder(&ww.gobBuf)
	} else {
		ww.enc = gob.NewEncoder(bw)
	}
	return ww
}

// resetConn points the buffered writer at a new connection after a session
// resume. The gob encoder's state is unaffected (v2 encoders never write to
// the connection directly).
func (w *wireWriter) resetConn(c io.Writer) { w.bw.Reset(c) }

func (w *wireWriter) flush() error { return w.bw.Flush() }

// writeHello sends the connection's opening handshake (no kind byte: the
// hello predates the version agreement by definition).
func (w *wireWriter) writeHello(hi hello) error {
	if err := w.enc.Encode(hi); err != nil {
		return err
	}
	if w.v2 {
		if _, err := w.bw.Write(w.gobBuf.Bytes()); err != nil {
			return err
		}
		w.gobBuf.Reset()
	}
	return w.bw.Flush()
}

// writeFrame sends one frame and flushes it to the connection — the v0/v1
// path. v2 connections go through encodeFrame/writeEncoded (captured) or
// writeFrameDirect (streamed) so the session layer owns replay. Typed
// payloads (frame.Val) that are raw-encodable travel as kindRaw; everything
// else is gob-encoded here — including typed payloads outside the raw
// whitelist, so an in-memory value can never leak onto the wire unencoded.
// When the peer is a legacy gob-only connection, raw frames being forwarded
// are converted back to their gob form first.
func (w *wireWriter) writeFrame(f frame) error {
	if w.v1 && f.HasVal && headerRanksFit(f) {
		if kind, ok := rawKindOf(f.Val); ok {
			return w.writeRawVal(f, kind)
		}
	}
	if w.v1 && f.Raw != rawNone {
		// Forwarding an already-encoded raw payload (the hub's routing path).
		return w.writeRawData(f)
	}
	if f.HasVal {
		data, err := encodeValue(f.Val)
		if err != nil {
			return err
		}
		f.Data, f.Val, f.HasVal = data, nil, false
	}
	if f.Raw != rawNone {
		// Legacy peer: materialize the raw payload and re-encode as gob, so
		// the version-mismatch path sees exactly what version 0 would have.
		v, err := rawDecode(f.Raw, f.Data)
		if err != nil {
			return err
		}
		data, err := encodeValue(v)
		if err != nil {
			return err
		}
		f.Data, f.Raw = data, rawNone
	}
	if w.v1 {
		if err := w.bw.WriteByte(kindGob); err != nil {
			return err
		}
	}
	if err := w.enc.Encode(f); err != nil {
		return err
	}
	return w.bw.Flush()
}

// writeRawVal frames a typed payload as kindRaw. On layout-compatible
// platforms the payload bytes are written straight from the value's backing
// array — sends are synchronous on the caller's goroutine and the write
// completes before Send returns, so the wire never reads the slice after the
// caller regains control. Elsewhere (and for []bool, whose storage is not
// the wire format) the elements are encoded into a pooled scratch buffer,
// returned before the call completes, so a steady-state send loop allocates
// nothing either way.
func (w *wireWriter) writeRawVal(f frame, kind byte) error {
	n := rawSizeOf(f.Val)
	w.putHeader(f, kind, n)
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return err
	}
	if view, ok := rawBytesView(f.Val); ok {
		if len(view) > 0 {
			if _, err := w.bw.Write(view); err != nil {
				return err
			}
		}
		return w.bw.Flush()
	}
	buf := getWireBuf(n)
	rawEncode(buf, f.Val)
	_, err := w.bw.Write(buf)
	putWireBuf(buf)
	if err != nil {
		return err
	}
	return w.bw.Flush()
}

// writeRawData forwards an already raw-encoded payload unchanged.
func (w *wireWriter) writeRawData(f frame) error {
	w.putHeader(f, f.Raw, len(f.Data))
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(f.Data); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *wireWriter) putHeader(f frame, kind byte, payloadLen int) {
	h := w.hdr[:]
	h[0] = kindRaw
	putRawCore(h[1:], f, kind, payloadLen)
}

// putRawCore fills the fixed rawHeaderLen-byte header (addressing, raw kind,
// payload length) shared by the v1 and v2 layouts.
func putRawCore(h []byte, f frame, kind byte, payloadLen int) {
	le.PutUint64(h[0:], uint64(f.Ctx))
	le.PutUint32(h[8:], uint32(int32(f.Src)))
	le.PutUint32(h[12:], uint32(int32(f.WSrc)))
	le.PutUint32(h[16:], uint32(int32(f.Dst)))
	le.PutUint32(h[20:], uint32(int32(f.Tag)))
	h[24] = kind
	le.PutUint32(h[25:], uint32(payloadLen))
}

// rawPayloadSize reports the raw-encoded payload length for a frame that
// would travel as kindRaw, or -1 for frames that gob-encode.
func rawPayloadSize(f frame) int {
	if f.HasVal && headerRanksFit(f) {
		if _, ok := rawKindOf(f.Val); ok {
			return rawSizeOf(f.Val)
		}
	}
	if f.Raw != rawNone {
		return len(f.Data)
	}
	return -1
}

// encodeFrame renders one v2 frame — kind byte, sequence, header, CRC,
// payload — into a pooled buffer and returns it. The caller (the session
// layer) owns the buffer: it is written with writeEncoded, kept for replay,
// and released via putWireBuf once the peer acks past seq.
func (w *wireWriter) encodeFrame(f frame, seq uint64) ([]byte, error) {
	if f.HasVal && headerRanksFit(f) {
		if kind, ok := rawKindOf(f.Val); ok {
			n := rawSizeOf(f.Val)
			buf := getWireBuf(v2RawPrefixLen + n)
			if view, ok := rawBytesView(f.Val); ok {
				copy(buf[v2RawPrefixLen:], view)
			} else {
				rawEncode(buf[v2RawPrefixLen:], f.Val)
			}
			putV2RawPrefix(buf, f, kind, seq, n)
			return buf, nil
		}
	}
	if f.Raw != rawNone {
		n := len(f.Data)
		buf := getWireBuf(v2RawPrefixLen + n)
		copy(buf[v2RawPrefixLen:], f.Data)
		putV2RawPrefix(buf, f, f.Raw, seq, n)
		return buf, nil
	}
	if f.HasVal {
		data, err := encodeValue(f.Val)
		if err != nil {
			return nil, err
		}
		f.Data, f.Val, f.HasVal = data, nil, false
	}
	w.gobBuf.Reset()
	if err := w.enc.Encode(f); err != nil {
		return nil, err
	}
	gb := w.gobBuf.Bytes()
	buf := getWireBuf(v2GobPrefixLen + len(gb))
	buf[0] = kindGob
	le.PutUint64(buf[1:], seq)
	copy(buf[v2GobPrefixLen:], gb)
	w.gobBuf.Reset()
	return buf, nil
}

// putV2RawPrefix fills a captured v2 raw frame's prefix in place; the
// payload must already be at buf[v2RawPrefixLen:].
func putV2RawPrefix(buf []byte, f frame, kind byte, seq uint64, n int) {
	buf[0] = kindRaw
	le.PutUint64(buf[1:], seq)
	h := buf[1+seqLen:]
	putRawCore(h, f, kind, n)
	crc := payloadCRC(h[:rawHeaderLen], buf[v2RawPrefixLen:])
	le.PutUint32(h[rawHeaderLen:], crc)
}

// writeEncoded puts one captured v2 frame on the wire, without flushing. An
// armed corruption flips the last payload byte's low bit in transit — the
// captured copy stays pristine, which is exactly what lets the retransmit
// after the CRC failure deliver clean bytes.
func (w *wireWriter) writeEncoded(buf []byte) error {
	if w.corruptNext && buf[0] == kindRaw && len(buf) > v2RawPrefixLen {
		w.corruptNext = false
		if _, err := w.bw.Write(buf[:len(buf)-1]); err != nil {
			return err
		}
		return w.bw.WriteByte(buf[len(buf)-1] ^ 0x01)
	}
	_, err := w.bw.Write(buf)
	return err
}

// writeFrameDirect streams one large raw v2 frame without capturing it: the
// payload goes straight from the caller's backing array (or a pooled
// scratch), exactly like the v1 fast path. The caller records the sequence
// as a replay gap. Does not flush.
func (w *wireWriter) writeFrameDirect(f frame, seq uint64) error {
	var kind byte
	var payload, scratch []byte
	if f.Raw != rawNone {
		kind, payload = f.Raw, f.Data
	} else {
		k, ok := rawKindOf(f.Val)
		if !ok {
			return fmt.Errorf("mpi: writeFrameDirect on a non-raw frame (tag %d)", f.Tag)
		}
		kind = k
		if view, ok := rawBytesView(f.Val); ok {
			payload = view
		} else {
			scratch = getWireBuf(rawSizeOf(f.Val))
			rawEncode(scratch, f.Val)
			payload = scratch
		}
	}
	h := w.hdr2[:]
	h[0] = kindRaw
	le.PutUint64(h[1:], seq)
	core := h[1+seqLen:]
	putRawCore(core, f, kind, len(payload))
	le.PutUint32(core[rawHeaderLen:], payloadCRC(core[:rawHeaderLen], payload))
	_, err := w.bw.Write(h)
	if err == nil && len(payload) > 0 {
		if w.corruptNext {
			w.corruptNext = false
			if _, err = w.bw.Write(payload[:len(payload)-1]); err == nil {
				err = w.bw.WriteByte(payload[len(payload)-1] ^ 0x01)
			}
		} else {
			_, err = w.bw.Write(payload)
		}
	}
	if scratch != nil {
		putWireBuf(scratch)
	}
	return err
}

// writeAck sends a cumulative receive acknowledgement and flushes. Acks are
// not sequenced and never replayed: a lost ack just means the peer trims a
// little later.
func (w *wireWriter) writeAck(seq uint64) error {
	var b [1 + seqLen]byte
	b[0] = kindAck
	le.PutUint64(b[1:], seq)
	if _, err := w.bw.Write(b[:]); err != nil {
		return err
	}
	return w.bw.Flush()
}

// headerRanksFit reports whether the frame's addressing fields survive the
// raw header's int32 fields. Ranks always do (they are small); a pathological
// user tag beyond 31 bits falls back to gob rather than truncating.
func headerRanksFit(f frame) bool {
	return fitsInt32(f.Src) && fitsInt32(f.WSrc) && fitsInt32(f.Dst) && fitsInt32(f.Tag)
}

func fitsInt32(v int) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }

// wireReader is the receiving half: a buffered reader with a persistent gob
// decoder, demultiplexing kind bytes when the peer speaks v1 and sequence
// numbers, CRCs, and acks when it speaks v2.
type wireReader struct {
	br  *bufio.Reader
	dec *gob.Decoder
	v1  bool
	v2  bool
	hdr [rawHeaderLen + crcLen]byte

	// onAck receives the peer's cumulative acks (v2); the session layer uses
	// it to trim the replay buffer. Called from the reading goroutine.
	onAck func(uint64)
}

func newWireReader(r io.Reader) *wireReader {
	br := bufio.NewReaderSize(r, wireBufSize)
	return &wireReader{br: br, dec: gob.NewDecoder(br)}
}

// resetConn points the buffered reader at a new connection after a session
// resume. The caller must guarantee no read is in flight. The gob decoder
// keeps its type-descriptor state — it reads through br and survives the
// swap, matching the sender's persistent encoder.
func (r *wireReader) resetConn(c io.Reader) { r.br.Reset(c) }

// readHello reads the connection's opening handshake.
func (r *wireReader) readHello() (hello, error) {
	var hi hello
	err := r.dec.Decode(&hi)
	return hi, err
}

// readFrame reads one frame, returning its sequence number (0 on pre-v2
// streams). Raw payloads land in a pooled buffer (frame.Data, flagged by
// frame.Raw); the consumer returns it via frame.release or decodeInto. Acks
// are consumed internally via onAck. A CRC mismatch returns
// *CorruptFrameError; the stream position is past the frame, but the session
// layer tears the connection down rather than trusting anything after it.
func (r *wireReader) readFrame() (frame, uint64, error) {
	if !r.v1 {
		var f frame
		err := r.dec.Decode(&f)
		return f, 0, err
	}
	for {
		kind, err := r.br.ReadByte()
		if err != nil {
			return frame{}, 0, err
		}
		var seq uint64
		if r.v2 {
			var sb [seqLen]byte
			if _, err := io.ReadFull(r.br, sb[:]); err != nil {
				return frame{}, 0, err
			}
			seq = le.Uint64(sb[:])
			if kind == kindAck {
				if r.onAck != nil {
					r.onAck(seq)
				}
				continue
			}
		}
		switch kind {
		case kindGob:
			var f frame
			err := r.dec.Decode(&f)
			return f, seq, err
		case kindRaw:
			f, err := r.readRawBody(seq)
			return f, seq, err
		default:
			return frame{}, seq, fmt.Errorf("mpi: unknown wire frame kind 0x%02x", kind)
		}
	}
}

// readRawBody reads a raw frame's header (+CRC on v2) and payload.
func (r *wireReader) readRawBody(seq uint64) (frame, error) {
	// The raw branch keeps its frame variable to itself: sharing one
	// across the gob branches would let Decode's &f force a heap
	// allocation here too, breaking the zero-alloc receive loop.
	var f frame
	hlen := rawHeaderLen
	if r.v2 {
		hlen += crcLen
	}
	if _, err := io.ReadFull(r.br, r.hdr[:hlen]); err != nil {
		return f, err
	}
	h := r.hdr[:]
	n := int(le.Uint32(h[25:]))
	if n > maxRawFrame {
		return f, fmt.Errorf("mpi: raw frame announces %d payload bytes (corrupt stream?)", n)
	}
	f.Ctx = int64(le.Uint64(h[0:]))
	f.Src = int(int32(le.Uint32(h[8:])))
	f.WSrc = int(int32(le.Uint32(h[12:])))
	f.Dst = int(int32(le.Uint32(h[16:])))
	f.Tag = int(int32(le.Uint32(h[20:])))
	f.Raw = h[24]
	payload := getWireBuf(n)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		putWireBuf(payload)
		return f, err
	}
	if r.v2 {
		want := le.Uint32(h[rawHeaderLen:])
		if got := payloadCRC(h[:rawHeaderLen], payload); got != want {
			cerr := &CorruptFrameError{Seq: seq, Src: f.WSrc, Dst: f.Dst, Tag: f.Tag, Want: want, Got: got}
			putWireBuf(payload)
			return f, cerr
		}
	}
	f.Data = payload
	return f, nil
}
