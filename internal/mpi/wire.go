package mpi

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
)

// le abbreviates the byte order every raw header and payload uses.
var le = binary.LittleEndian

// Typed binary framing for the TCP transport. Version 0 of the wire — what
// PR 1 shipped — was a bare gob stream: every frame, whatever its payload,
// went through gob's reflective encoder and straight to an unbuffered
// connection write. Version 1 keeps the gob stream (it is still the fallback
// for every non-whitelisted payload and every control frame) but frames it:
// each message starts with a one-byte kind, either
//
//	kindGob  followed by one gob-encoded frame, or
//	kindRaw  followed by a fixed little-endian header and the payload's
//	         element storage verbatim (see rawcodec.go):
//
//	         Ctx int64 | Src int32 | WSrc int32 | Dst int32 | Tag int32 |
//	         raw kind byte | payload length uint32 | payload bytes
//
// Interleaving raw bytes with a live gob stream is safe because the decoder
// reads from a *bufio.Reader: gob consumes exactly one message's bytes via
// the io.ByteReader interface and never reads ahead, so the next byte after
// a gob message is always ours to interpret as the next kind. Both ends of a
// connection agree on the version in the hello exchange; a peer that never
// announced v1 gets a pure gob stream, with raw frames converted back to gob
// before forwarding (the version-mismatch path).
//
// Writes go through a bufio.Writer flushed once per frame: a gob frame used
// to cost one syscall per internal gob segment (type descriptor, then
// value); now every frame — header, payload, all of it — leaves in one
// write. Heartbeat and control frames take the same writeFrame path, so they
// flush promptly by construction.
const wireVersion = 1

const (
	kindGob byte = 0x67 // 'g'
	kindRaw byte = 0x72 // 'r'
)

// rawHeaderLen is the fixed header that follows a kindRaw byte.
const rawHeaderLen = 8 + 4 + 4 + 4 + 4 + 1 + 4

// maxRawFrame bounds the payload length a reader will believe: a corrupted
// or adversarial stream must produce an error, not a giant allocation.
const maxRawFrame = 1 << 30

// wireBufSize sizes the bufio layers: large enough that a small frame plus
// its header coalesces into one write, small enough to be cheap per
// connection.
const wireBufSize = 64 << 10

// wireWriter is the sending half of one connection: a buffered writer with
// a persistent gob encoder layered on top, flushed once per frame.
type wireWriter struct {
	bw  *bufio.Writer
	enc *gob.Encoder
	v1  bool // peer understands kind-byte framing
	hdr [1 + rawHeaderLen]byte
}

func newWireWriter(w io.Writer, v1 bool) *wireWriter {
	bw := bufio.NewWriterSize(w, wireBufSize)
	return &wireWriter{bw: bw, enc: gob.NewEncoder(bw), v1: v1}
}

// writeHello sends the connection's opening handshake (no kind byte: the
// hello predates the version agreement by definition).
func (w *wireWriter) writeHello(hi hello) error {
	if err := w.enc.Encode(hi); err != nil {
		return err
	}
	return w.bw.Flush()
}

// writeFrame sends one frame and flushes it to the connection. Typed
// payloads (frame.Val) that are raw-encodable travel as kindRaw; everything
// else is gob-encoded here — including typed payloads outside the raw
// whitelist, so an in-memory value can never leak onto the wire unencoded.
// When the peer is a legacy gob-only connection, raw frames being forwarded
// are converted back to their gob form first.
func (w *wireWriter) writeFrame(f frame) error {
	if w.v1 && f.HasVal && headerRanksFit(f) {
		if kind, ok := rawKindOf(f.Val); ok {
			return w.writeRawVal(f, kind)
		}
	}
	if w.v1 && f.Raw != rawNone {
		// Forwarding an already-encoded raw payload (the hub's routing path).
		return w.writeRawData(f)
	}
	if f.HasVal {
		data, err := encodeValue(f.Val)
		if err != nil {
			return err
		}
		f.Data, f.Val, f.HasVal = data, nil, false
	}
	if f.Raw != rawNone {
		// Legacy peer: materialize the raw payload and re-encode as gob, so
		// the version-mismatch path sees exactly what version 0 would have.
		v, err := rawDecode(f.Raw, f.Data)
		if err != nil {
			return err
		}
		data, err := encodeValue(v)
		if err != nil {
			return err
		}
		f.Data, f.Raw = data, rawNone
	}
	if w.v1 {
		if err := w.bw.WriteByte(kindGob); err != nil {
			return err
		}
	}
	if err := w.enc.Encode(f); err != nil {
		return err
	}
	return w.bw.Flush()
}

// writeRawVal frames a typed payload as kindRaw. On layout-compatible
// platforms the payload bytes are written straight from the value's backing
// array — sends are synchronous on the caller's goroutine and the write
// completes before Send returns, so the wire never reads the slice after the
// caller regains control. Elsewhere (and for []bool, whose storage is not
// the wire format) the elements are encoded into a pooled scratch buffer,
// returned before the call completes, so a steady-state send loop allocates
// nothing either way.
func (w *wireWriter) writeRawVal(f frame, kind byte) error {
	n := rawSizeOf(f.Val)
	w.putHeader(f, kind, n)
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return err
	}
	if view, ok := rawBytesView(f.Val); ok {
		if len(view) > 0 {
			if _, err := w.bw.Write(view); err != nil {
				return err
			}
		}
		return w.bw.Flush()
	}
	buf := getWireBuf(n)
	rawEncode(buf, f.Val)
	_, err := w.bw.Write(buf)
	putWireBuf(buf)
	if err != nil {
		return err
	}
	return w.bw.Flush()
}

// writeRawData forwards an already raw-encoded payload unchanged.
func (w *wireWriter) writeRawData(f frame) error {
	w.putHeader(f, f.Raw, len(f.Data))
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(f.Data); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *wireWriter) putHeader(f frame, kind byte, payloadLen int) {
	h := w.hdr[:]
	h[0] = kindRaw
	le.PutUint64(h[1:], uint64(f.Ctx))
	le.PutUint32(h[9:], uint32(int32(f.Src)))
	le.PutUint32(h[13:], uint32(int32(f.WSrc)))
	le.PutUint32(h[17:], uint32(int32(f.Dst)))
	le.PutUint32(h[21:], uint32(int32(f.Tag)))
	h[25] = kind
	le.PutUint32(h[26:], uint32(payloadLen))
}

// headerRanksFit reports whether the frame's addressing fields survive the
// raw header's int32 fields. Ranks always do (they are small); a pathological
// user tag beyond 31 bits falls back to gob rather than truncating.
func headerRanksFit(f frame) bool {
	return fitsInt32(f.Src) && fitsInt32(f.WSrc) && fitsInt32(f.Dst) && fitsInt32(f.Tag)
}

func fitsInt32(v int) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }

// wireReader is the receiving half: a buffered reader with a persistent gob
// decoder, demultiplexing kind bytes when the peer speaks v1.
type wireReader struct {
	br  *bufio.Reader
	dec *gob.Decoder
	v1  bool
	hdr [rawHeaderLen]byte
}

func newWireReader(r io.Reader) *wireReader {
	br := bufio.NewReaderSize(r, wireBufSize)
	return &wireReader{br: br, dec: gob.NewDecoder(br)}
}

// readHello reads the connection's opening handshake.
func (r *wireReader) readHello() (hello, error) {
	var hi hello
	err := r.dec.Decode(&hi)
	return hi, err
}

// readFrame reads one frame. Raw payloads land in a pooled buffer
// (frame.Data, flagged by frame.Raw); the consumer returns it via
// frame.release or decodeInto.
func (r *wireReader) readFrame() (frame, error) {
	if !r.v1 {
		var f frame
		err := r.dec.Decode(&f)
		return f, err
	}
	kind, err := r.br.ReadByte()
	if err != nil {
		return frame{}, err
	}
	switch kind {
	case kindGob:
		var f frame
		err := r.dec.Decode(&f)
		return f, err
	case kindRaw:
		// The raw branch keeps its frame variable to itself: sharing one
		// across the gob branches would let Decode's &f force a heap
		// allocation here too, breaking the zero-alloc receive loop.
		var f frame
		if _, err := io.ReadFull(r.br, r.hdr[:]); err != nil {
			return f, err
		}
		h := r.hdr[:]
		n := int(le.Uint32(h[25:]))
		if n > maxRawFrame {
			return f, fmt.Errorf("mpi: raw frame announces %d payload bytes (corrupt stream?)", n)
		}
		f.Ctx = int64(le.Uint64(h[0:]))
		f.Src = int(int32(le.Uint32(h[8:])))
		f.WSrc = int(int32(le.Uint32(h[12:])))
		f.Dst = int(int32(le.Uint32(h[16:])))
		f.Tag = int(int32(le.Uint32(h[20:])))
		f.Raw = h[24]
		payload := getWireBuf(n)
		if _, err := io.ReadFull(r.br, payload); err != nil {
			putWireBuf(payload)
			return f, err
		}
		f.Data = payload
		return f, nil
	default:
		return frame{}, fmt.Errorf("mpi: unknown wire frame kind 0x%02x", kind)
	}
}
