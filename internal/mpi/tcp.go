package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"
)

// The TCP transport gives each rank its own connection to a routing hub, so
// ranks may live in different OS processes (or different machines sharing a
// network), the way an MPI job runs across a Beowulf cluster. The hub plays
// the role of the interconnect: it preserves per-connection FIFO order, so
// the non-overtaking guarantee carries over from the in-process transport.
//
// Wire protocol, per connection. The stream opens with a gob hello carrying
// the worker's wire version; when both ends speak v1 every subsequent
// message is kind-byte framed (see wire.go) — whitelisted slice payloads as
// raw little-endian frames, everything else as gob — and a worker that
// announced version 0 gets the original pure gob stream, with the hub
// converting raw frames back to gob before forwarding. Message sequence:
//
//	hello{Rank, Wire}      worker -> hub, once, identifies the rank
//	frame{Tag: tagStart}   hub -> worker, once, after all ranks joined
//	frame{...}             either direction, user and collective traffic
//	frame{Dst: ctrlDst, Tag: tagDone}   worker -> hub, rank finished
//	frame{Dst: ctrlDst, Tag: tagAbort}  worker -> hub, rank failed; Data
//	                                    carries a gob abortInfo
//	frame{Tag: tagAbort}   hub -> worker, world revoked (broadcast)
//	frame{Tag: tagPing}    hub -> worker, heartbeat probe
//	frame{Dst: ctrlDst, Tag: tagPong}   worker -> hub, heartbeat reply
//
// Recovery worlds (HubRecovery + WithRecovery) add:
//
//	frame{Dst: ctrlDst, Tag: tagFailed}     worker -> hub, this rank failed
//	                                        recoverably; Data: gob abortInfo
//	frame{Tag: tagFailed}                   hub -> worker, a peer failed
//	                                        (broadcast); Data: gob abortInfo
//	frame{Dst: ctrlDst, Tag: tagAgreeReq}   worker -> hub, agreement
//	                                        contribution; Data: gob agreeReq
//	frame{Tag: tagAgreeResp}                hub -> worker, agreement decision;
//	                                        Data: gob agreeResp
//	frame{Dst: ctrlDst, Tag: tagRevoke, Ctx: c} worker -> hub, context c revoked
//	frame{Tag: tagRevoke, Ctx: c}           hub -> worker, revoke broadcast
const (
	tagStart     = -100
	tagDone      = -101
	tagAbort     = -102
	tagPing      = -103
	tagPong      = -104
	tagFailed    = -105
	tagAgreeReq  = -106
	tagAgreeResp = -107
	tagRevoke    = -108
	ctrlDst      = -100
)

type hello struct {
	Rank int
	// Wire announces the highest framing version the worker speaks: 0 for
	// the original pure-gob stream, wireVersion for kind-byte framing. The
	// hub answers in kind — each side of the connection is framed at the
	// version the worker announced, so mixed worlds interoperate.
	Wire int
}

// abortInfo is the wire form of a world revoke: which rank failed (or -1
// when the hub itself did) and its error, surviving only as text.
type abortInfo struct {
	Rank int
	Msg  string
}

func (ai abortInfo) err() error {
	return &abortError{cause: &remoteAbortError{rank: ai.Rank, msg: ai.Msg}}
}

// HubOption configures a StartHub.
type HubOption func(*hubOptions)

type hubOptions struct {
	formation time.Duration
	heartbeat time.Duration
	recovery  bool
}

// HubFormationTimeout bounds how long the hub waits for the world to form.
// If the deadline passes before every rank has joined, the job fails with
// an error wrapping ErrFormationTimeout that lists the missing ranks —
// instead of waiting forever on a worker that never dialed. Zero (the
// default) waits indefinitely.
func HubFormationTimeout(d time.Duration) HubOption {
	return func(o *hubOptions) { o.formation = d }
}

// HubHeartbeat makes the hub ping every worker each interval once the
// world has started. A worker that misses three consecutive intervals —
// a frozen process, a dead VM, a stalled connection — fails the job and
// revokes the world for the survivors. It cannot detect a rank that is
// alive but stuck in user code (its connection still answers); that is
// what WithDeadline is for. Zero (the default) disables the heartbeat.
func HubHeartbeat(interval time.Duration) HubOption {
	return func(o *hubOptions) { o.heartbeat = interval }
}

// HubRecovery opts the hub into survive-and-continue worlds: a worker that
// reports a recoverable failure (or whose connection drops after the world
// started) is recorded as failed and announced to the survivors instead of
// revoking the world, and the hub coordinates the survivors' Agree calls.
// Pair it with WithRecovery on the workers; RunTCP adds it automatically.
func HubRecovery() HubOption {
	return func(o *hubOptions) { o.recovery = true }
}

// WithHubOptions forwards hub configuration (formation timeout, heartbeat)
// to the hub RunTCP starts internally. Standalone hubs take the same
// options directly via StartHub; JoinTCP ignores this option.
func WithHubOptions(opts ...HubOption) Option {
	return func(c *config) { c.hubOpts = append(c.hubOpts, opts...) }
}

// WithDialRetry bounds JoinTCP's dial retry budget: failed dials are
// retried with exponential backoff and jitter until the budget elapses, so
// a worker that starts before its hub is listening joins as soon as the hub
// comes up. Zero keeps the default (3s); a negative budget disables
// retrying entirely.
func WithDialRetry(budget time.Duration) Option {
	return func(c *config) { c.dialRetry = budget }
}

// WithTCPNoDelay sets TCP_NODELAY on the worker's hub connection. Go enables
// it by default (segments leave immediately, the right call for the
// latency-sensitive framing this transport uses); passing false re-enables
// Nagle's algorithm, trading per-message latency for fewer small segments —
// the classic knob a bandwidth-bound many-small-messages workload can try.
// The option is a no-op on non-TCP transports and non-TCP connections.
func WithTCPNoDelay(enabled bool) Option {
	return func(c *config) {
		b := enabled
		c.noDelay = &b
	}
}

// withWireLegacy forces the worker to speak the v0 pure-gob wire, as an
// old binary would. Unexported: real programs have no reason to downgrade,
// but the interop tests use it to exercise the hub's version-mismatch path
// (raw frames converted back to gob for legacy destinations).
func withWireLegacy() Option {
	return func(c *config) { c.wireLegacy = true }
}

// Hub routes frames between the ranks of one TCP-transport world. Create
// one with StartHub, hand its Addr to the workers, and Wait for the job to
// finish.
type Hub struct {
	ln   net.Listener
	np   int
	opts hubOptions

	mu       sync.Mutex
	conns    map[int]*hubConn
	complete bool // all np ranks admitted
	done     int
	err      error
	abortErr error // first rank-reported abort; preferred by Wait
	lastPong map[int]time.Time

	// Recovery bookkeeping (HubRecovery): which ranks failed recoverably,
	// and the open agreement instances the hub is coordinating.
	failedRanks map[int]bool
	agreements  map[agreeKey]*hubAgree

	formTimer *time.Timer
	finished  chan struct{}
}

// hubAgree is one open hub-coordinated agreement instance.
type hubAgree struct {
	members []int
	masks   map[int]uint64 // contributing world rank -> mask
}

type hubConn struct {
	conn net.Conn
	w    *wireWriter
	mu   sync.Mutex // serializes writes to w
}

func (hc *hubConn) send(f frame) error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.w.writeFrame(f)
}

// StartHub listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// routes for a world of np ranks. It returns as soon as the listener is
// ready; workers may join immediately.
func StartHub(addr string, np int, opts ...HubOption) (*Hub, error) {
	if np < 1 {
		return nil, fmt.Errorf("mpi: hub needs at least 1 process, got %d", np)
	}
	var ho hubOptions
	for _, o := range opts {
		o(&ho)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: hub listen: %w", err)
	}
	h := &Hub{
		ln:          ln,
		np:          np,
		opts:        ho,
		conns:       make(map[int]*hubConn),
		failedRanks: make(map[int]bool),
		agreements:  make(map[agreeKey]*hubAgree),
		finished:    make(chan struct{}),
	}
	if ho.formation > 0 {
		// Assign under the lock: the timer callback (and the shutdown path
		// it triggers) reads formTimer from other goroutines.
		h.mu.Lock()
		h.formTimer = time.AfterFunc(ho.formation, h.formationExpired)
		h.mu.Unlock()
	}
	go h.acceptLoop()
	return h, nil
}

// Addr reports the address workers should dial.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

func (h *Hub) acceptLoop() {
	for i := 0; i < h.np; i++ {
		conn, err := h.ln.Accept()
		if err != nil {
			h.fail(fmt.Errorf("mpi: hub accept: %w", err))
			return
		}
		go h.admit(conn)
	}
}

// formationExpired fires when the world-formation timeout elapses: any
// still-missing rank fails the job with a list of who never joined.
func (h *Hub) formationExpired() {
	h.mu.Lock()
	if h.complete {
		h.mu.Unlock()
		return
	}
	var missing []int
	for r := 0; r < h.np; r++ {
		if _, ok := h.conns[r]; !ok {
			missing = append(missing, r)
		}
	}
	d := h.opts.formation
	h.mu.Unlock()
	h.fail(fmt.Errorf("%w: %d of %d ranks missing after %s: %v",
		ErrFormationTimeout, len(missing), h.np, d, missing))
}

// admit registers a worker connection and, once the world is complete,
// releases all workers with the start signal.
func (h *Hub) admit(conn net.Conn) {
	rd := newWireReader(conn)
	hi, err := rd.readHello()
	if err != nil {
		h.fail(fmt.Errorf("mpi: hub handshake: %w", err))
		conn.Close()
		return
	}
	// Frame each direction at the version the worker announced.
	rd.v1 = hi.Wire >= wireVersion
	h.mu.Lock()
	if hi.Rank < 0 || hi.Rank >= h.np {
		h.mu.Unlock()
		h.fail(fmt.Errorf("mpi: hub: worker announced invalid rank %d", hi.Rank))
		conn.Close()
		return
	}
	if _, dup := h.conns[hi.Rank]; dup {
		h.mu.Unlock()
		h.fail(fmt.Errorf("mpi: hub: duplicate worker for rank %d", hi.Rank))
		conn.Close()
		return
	}
	hc := &hubConn{conn: conn, w: newWireWriter(conn, rd.v1)}
	h.conns[hi.Rank] = hc
	complete := len(h.conns) == h.np
	var all []*hubConn
	if complete {
		h.complete = true
		if h.formTimer != nil {
			h.formTimer.Stop()
		}
		for _, c := range h.conns {
			all = append(all, c)
		}
		if h.opts.heartbeat > 0 {
			h.lastPong = make(map[int]time.Time, h.np)
			now := time.Now()
			for r := range h.conns {
				h.lastPong[r] = now
			}
		}
	}
	h.mu.Unlock()

	if complete {
		for _, c := range all {
			if err := c.send(frame{Tag: tagStart}); err != nil {
				h.fail(fmt.Errorf("mpi: hub start signal: %w", err))
				return
			}
		}
		if h.opts.heartbeat > 0 {
			go h.heartbeatLoop()
		}
	}
	h.route(hi.Rank, rd)
}

// heartbeatLoop pings every worker each interval and fails the job when a
// worker has not answered for three intervals.
func (h *Hub) heartbeatLoop() {
	iv := h.opts.heartbeat
	ticker := time.NewTicker(iv)
	defer ticker.Stop()
	for {
		select {
		case <-h.finished:
			return
		case <-ticker.C:
		}
		now := time.Now()
		h.mu.Lock()
		var stale []int
		var staleConns []*hubConn
		conns := make([]*hubConn, 0, len(h.conns))
		for r, c := range h.conns {
			conns = append(conns, c)
			if lp, ok := h.lastPong[r]; ok && now.Sub(lp) > 3*iv {
				stale = append(stale, r)
				staleConns = append(staleConns, c)
				if h.opts.recovery {
					// Stop tracking so the rank is handled exactly once.
					delete(h.lastPong, r)
				}
			}
		}
		h.mu.Unlock()
		if len(stale) > 0 {
			if h.opts.recovery {
				// Close the silent connections: each one's route loop turns
				// the broken read into a recoverable rank failure.
				for _, c := range staleConns {
					c.conn.Close()
				}
				continue
			}
			h.fail(fmt.Errorf("mpi: hub: ranks %v unresponsive (no heartbeat within %s); world revoked", stale, 3*iv))
			return
		}
		for _, c := range conns {
			_ = c.send(frame{Tag: tagPing})
		}
	}
}

// route forwards every frame read from one worker until the worker reports
// done or the connection drops. Raw frames are forwarded verbatim to v1
// destinations (the payload is never decoded in transit) and converted back
// to gob for legacy ones; either way the pooled receive buffer is returned
// once the forward completes.
func (h *Hub) route(rank int, rd *wireReader) {
	for {
		f, err := rd.readFrame()
		if err != nil {
			if h.connDropped(rank) {
				return
			}
			h.fail(fmt.Errorf("mpi: hub: connection to rank %d: %w", rank, err))
			return
		}
		if f.Dst == ctrlDst {
			switch f.Tag {
			case tagDone:
				// The worker sends nothing after done; stop reading so its
				// connection teardown is not mistaken for a failure.
				h.workerDone()
				return
			case tagAbort:
				h.rankAborted(rank, f.Data)
			case tagFailed:
				h.rankFailedHub(rank, f.Data)
			case tagAgreeReq:
				h.agreeRequest(f.Data)
			case tagRevoke:
				h.broadcastRevoke(rank, f.Ctx)
			case tagPong:
				h.mu.Lock()
				if h.lastPong != nil {
					h.lastPong[rank] = time.Now()
				}
				h.mu.Unlock()
			}
			continue
		}
		h.mu.Lock()
		dst := h.conns[f.Dst]
		recovery := h.opts.recovery
		h.mu.Unlock()
		if dst == nil {
			f.release()
			if recovery {
				continue // destination already torn down; drop the frame
			}
			h.fail(fmt.Errorf("mpi: hub: frame for unknown rank %d", f.Dst))
			return
		}
		err = dst.send(f)
		f.release() // forwarded (or failed): recycle a raw frame's buffer
		if err != nil {
			if recovery {
				// The destination's connection is going down; its own route
				// loop converts that into a rank failure. Drop the frame.
				continue
			}
			h.fail(fmt.Errorf("mpi: hub: forwarding to rank %d: %w", f.Dst, err))
			return
		}
	}
}

// connDropped absorbs a worker connection breaking mid-run under recovery:
// the rank is recorded failed, survivors are notified, and the rank is
// counted done so the world still winds down. It reports whether the drop
// was absorbed (recovery hub, world already formed).
func (h *Hub) connDropped(rank int) bool {
	h.mu.Lock()
	active := h.opts.recovery && h.complete
	already := h.failedRanks[rank]
	h.mu.Unlock()
	if !active {
		return false
	}
	if !already {
		data, err := encodeValue(abortInfo{Rank: rank, Msg: "connection to hub lost"})
		if err == nil {
			h.rankFailedHub(rank, data)
		}
	}
	h.workerDone()
	return true
}

// rankFailedHub records a recoverable rank failure, announces it to the
// survivors (who interrupt their pending operations), and settles any open
// agreement that was waiting on the failed rank.
func (h *Hub) rankFailedHub(origin int, payload []byte) {
	h.mu.Lock()
	if !h.opts.recovery || h.failedRanks[origin] {
		h.mu.Unlock()
		return
	}
	h.failedRanks[origin] = true
	others := make([]*hubConn, 0, len(h.conns))
	for r, c := range h.conns {
		if r != origin && !h.failedRanks[r] {
			others = append(others, c)
		}
	}
	h.mu.Unlock()
	for _, c := range others {
		_ = c.send(frame{Tag: tagFailed, Data: payload})
	}
	h.settleAgreements()
}

// agreeRequest folds one worker's agreement contribution in and settles.
func (h *Hub) agreeRequest(payload []byte) {
	var req agreeReq
	if err := decodeValue(payload, &req); err != nil {
		h.fail(fmt.Errorf("mpi: hub: undecodable agreement request: %w", err))
		return
	}
	h.mu.Lock()
	key := agreeKey{ctx: req.Ctx, seq: req.Seq}
	a := h.agreements[key]
	if a == nil {
		a = &hubAgree{members: req.Members, masks: make(map[int]uint64)}
		h.agreements[key] = a
	}
	a.masks[req.Rank] = req.Mask
	h.mu.Unlock()
	h.settleAgreements()
}

// settleAgreements applies the decision rule to every open instance: decide
// once every live member has contributed, with the decided mask the union
// of the contributions and the hub's own view of the failed members. The
// decision goes to every live contributor.
func (h *Hub) settleAgreements() {
	type decided struct {
		conns []*hubConn
		resp  agreeResp
	}
	var out []decided
	h.mu.Lock()
	for key, a := range h.agreements {
		decision := uint64(0)
		ready := true
		for _, m := range a.members {
			if h.failedRanks[m] {
				decision |= 1 << uint(m)
				continue
			}
			if _, ok := a.masks[m]; !ok {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		for _, mask := range a.masks {
			decision |= mask
		}
		var conns []*hubConn
		for r := range a.masks {
			if c := h.conns[r]; c != nil && !h.failedRanks[r] {
				conns = append(conns, c)
			}
		}
		delete(h.agreements, key)
		out = append(out, decided{conns: conns, resp: agreeResp{Ctx: key.ctx, Seq: key.seq, Mask: decision}})
	}
	h.mu.Unlock()
	for _, d := range out {
		data, err := encodeValue(d.resp)
		if err != nil {
			continue
		}
		for _, c := range d.conns {
			_ = c.send(frame{Tag: tagAgreeResp, Data: data})
		}
	}
}

// broadcastRevoke fans one worker's context revoke out to its peers.
func (h *Hub) broadcastRevoke(origin int, ctx int64) {
	h.mu.Lock()
	others := make([]*hubConn, 0, len(h.conns))
	for r, c := range h.conns {
		if r != origin && !h.failedRanks[r] {
			others = append(others, c)
		}
	}
	h.mu.Unlock()
	for _, c := range others {
		_ = c.send(frame{Tag: tagRevoke, Ctx: ctx})
	}
}

// FailedRanks reports the world ranks that failed recoverably, sorted. A
// recovered run has Wait() == nil and a non-empty FailedRanks.
func (h *Hub) FailedRanks() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.failedRanks))
	for r := range h.failedRanks {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// rankAborted records a worker-reported failure and broadcasts the revoke
// to every other worker, which poisons their mailboxes. The world still
// winds down through the normal done protocol: every surviving rank's main
// returns promptly with ErrWorldAborted.
func (h *Hub) rankAborted(origin int, payload []byte) {
	var info abortInfo
	if err := decodeValue(payload, &info); err != nil {
		info = abortInfo{Rank: origin, Msg: "rank failed (undecodable abort report)"}
	}
	h.mu.Lock()
	if h.abortErr == nil {
		h.abortErr = info.err()
	}
	others := make([]*hubConn, 0, len(h.conns))
	for r, c := range h.conns {
		if r != origin {
			others = append(others, c)
		}
	}
	h.mu.Unlock()
	for _, c := range others {
		_ = c.send(frame{Tag: tagAbort, Data: payload})
	}
}

// workerDone counts a finished rank; when the last one reports, the hub
// shuts the world down. It reports whether this was the final rank.
func (h *Hub) workerDone() bool {
	h.mu.Lock()
	h.done++
	last := h.done == h.np
	h.mu.Unlock()
	if last {
		h.shutdown()
	}
	return last
}

// fail records the first error and shuts the hub down, unless the job had
// already completed cleanly. Before tearing connections down it broadcasts
// the revoke to every worker, so survivors blocked in a receive observe
// ErrWorldAborted naming the failure rather than a bare disconnect.
func (h *Hub) fail(err error) {
	h.mu.Lock()
	alreadyFinished := h.done == h.np
	if h.err == nil && !alreadyFinished {
		h.err = err
	}
	conns := make([]*hubConn, 0, len(h.conns))
	for _, c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	if alreadyFinished {
		return
	}
	if data, encErr := encodeValue(abortInfo{Rank: -1, Msg: err.Error()}); encErr == nil {
		for _, c := range conns {
			_ = c.send(frame{Tag: tagAbort, Data: data})
		}
	}
	h.shutdown()
}

func (h *Hub) shutdown() {
	h.mu.Lock()
	conns := h.conns
	h.conns = map[int]*hubConn{}
	if h.formTimer != nil {
		h.formTimer.Stop()
	}
	h.mu.Unlock()
	h.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	select {
	case <-h.finished:
	default:
		close(h.finished)
	}
}

// Wait blocks until every rank has reported completion (or the hub failed)
// and returns the hub's error state: nil for a clean run, the revoke error
// (wrapping the originating rank's failure) for an aborted world, or the
// hub's own first failure.
func (h *Hub) Wait() error {
	<-h.finished
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.abortErr != nil {
		return h.abortErr
	}
	if h.done == h.np {
		return nil
	}
	return h.err
}

// Close shuts the hub down immediately.
func (h *Hub) Close() { h.shutdown() }

// tcpTransport is one rank's sending side of the TCP world.
type tcpTransport struct {
	conn net.Conn
	w    *wireWriter
	mu   sync.Mutex
}

func (t *tcpTransport) Send(f frame) error {
	// writeFrame serializes typed frames on the spot — raw framing for the
	// whitelist when the connection speaks v1, gob for everything else — so
	// an in-memory payload can never leak onto the wire, and frame.Val is
	// fully consumed by the time Send returns (the wireCapable contract).
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.writeFrame(f); err != nil {
		return fmt.Errorf("mpi: tcp send: %w", err)
	}
	return nil
}

func (t *tcpTransport) Close() error { return t.conn.Close() }

// wiresTyped: a v1 connection raw-encodes whitelisted typed payloads
// synchronously inside Send (see wireCapable in transport.go).
func (t *tcpTransport) wiresTyped() bool { return t.w.v1 }

// defaultDialRetry is JoinTCP's dial budget when WithDialRetry is not set:
// long enough to ride out a hub that is still binding its listener, short
// enough that a dead address fails the worker promptly.
const defaultDialRetry = 3 * time.Second

// dialHub dials addr, retrying failed dials with exponential backoff and
// jitter until the budget elapses — so launching workers before the hub is
// a race the runtime absorbs instead of a crash.
func dialHub(addr string, budget time.Duration) (net.Conn, error) {
	if budget == 0 {
		budget = defaultDialRetry
	}
	conn, err := net.Dial("tcp", addr)
	if err == nil || budget < 0 {
		if err != nil {
			return nil, fmt.Errorf("mpi: joining hub %s: %w", addr, err)
		}
		return conn, nil
	}
	deadline := time.Now().Add(budget)
	backoff := 5 * time.Millisecond
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("mpi: joining hub %s (retried for %s): %w", addr, budget, err)
		}
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
	}
}

// JoinTCP connects to the hub at addr as the given rank of an np-rank world
// and runs main there: the worker half of a distributed "mpirun". It
// returns when main returns (converting panics to errors, as Run does).
// Dials are retried with backoff while the hub is still coming up. If this
// rank fails, the failure is reported to the hub, which revokes the world
// for every peer; if a peer fails first, main's blocked operations return
// ErrWorldAborted naming the failing rank.
func JoinTCP(addr string, rank, np int, main func(c *Comm) error, opts ...Option) error {
	return joinHub(addr, "", rank, np, main, opts...)
}

// joinHub is the shared worker body behind JoinTCP and JoinShm: dial the
// hub, optionally map the shared-memory segment at segPath as the data
// plane (control frames and non-shm pairs keep the hub connection), then
// run the start/run/done protocol.
func joinHub(addr, segPath string, rank, np int, main func(c *Comm) error, opts ...Option) error {
	if rank < 0 || rank >= np {
		return fmt.Errorf("%w: %d (np %d)", ErrInvalidRank, rank, np)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}

	conn, err := dialHub(addr, cfg.dialRetry)
	if err != nil {
		return err
	}
	if cfg.noDelay != nil {
		if tc, ok := conn.(*net.TCPConn); ok {
			if err := tc.SetNoDelay(*cfg.noDelay); err != nil {
				conn.Close()
				return fmt.Errorf("mpi: setting TCP_NODELAY: %w", err)
			}
		}
	}
	v1 := !cfg.wireLegacy
	wireVer := 0
	if v1 {
		wireVer = wireVersion
	}
	t := &tcpTransport{conn: conn, w: newWireWriter(conn, v1)}
	// The data-plane transport: the hub connection alone, or the shm
	// endpoint layered over it. The segment must be attached before the
	// hello goes out, so every peer's sticky shm-vs-TCP routing decision —
	// made no earlier than the post-hello start signal — sees this rank.
	var data Transport = t
	var shmT *shmTransport
	if segPath != "" {
		st, serr := newShmTransport(segPath, rank, np, t)
		if serr != nil {
			t.Close()
			return serr
		}
		if st != nil {
			shmT = st
			data = st
		}
		// st == nil: segment belongs to another host; stay on pure TCP.
	}
	defer data.Close()

	if err := t.w.writeHello(hello{Rank: rank, Wire: wireVer}); err != nil {
		return fmt.Errorf("mpi: hello to hub: %w", err)
	}

	box := newMailbox()
	rd := newWireReader(conn)
	rd.v1 = v1 // the hub frames its side at the version we announced

	// The start frame arrives before any routed traffic. A pre-start abort
	// (another worker failed the handshake, or formation timed out) arrives
	// here instead of the start signal.
	start, err := rd.readFrame()
	if err != nil {
		return fmt.Errorf("mpi: waiting for world start: %w", err)
	}
	switch start.Tag {
	case tagStart:
	case tagAbort:
		var info abortInfo
		if err := decodeValue(start.Data, &info); err != nil {
			return fmt.Errorf("mpi: world aborted before start: %w", err)
		}
		return fmt.Errorf("mpi: rank %d: %w", rank, info.err())
	default:
		return fmt.Errorf("mpi: unexpected frame before start signal (tag %d)", start.Tag)
	}

	host, herr := os.Hostname()
	if herr != nil || host == "" {
		host = "localhost"
	}
	names := make([]string, np)
	for i := range names {
		if i < len(cfg.names) && cfg.names[i] != "" {
			names[i] = cfg.names[i]
		} else {
			names[i] = host
		}
	}
	boxes := make([]*mailbox, np)
	boxes[rank] = box

	transport := cfg.wrapTransport(data)
	w := &World{
		np:        np,
		transport: transport,
		boxes:     boxes,
		names:     names,
		gate:      cfg.gate,
		epoch:     time.Now(),
		typed:     cfg.typedWorld(transport), // always false: both wires serialize
		wire:      cfg.wireWorld(transport),  // v1 framing/shm: raw-encode in Send, uncopied
		deadline:  cfg.deadline,
		faults:    cfg.faultT,
	}
	if cfg.recovery {
		if np > maxRecoveryRanks {
			return fmt.Errorf("mpi: WithRecovery supports at most %d ranks, got %d", maxRecoveryRanks, np)
		}
		w.recov = newRecoveryState(w)
		// Control frames bypass the decorated transport: a fault plan that
		// killed this rank must not also sever its recovery reporting.
		w.recov.ctrlSend = t.Send
	}
	if shmT != nil {
		shmT.bind(w, box)
		// Recovery hook: a failed peer's staging space is reclaimed and its
		// blocked senders released the moment the failure is recorded.
		w.peerFailed = shmT.peerFailed
		shmT.startPolling()
		if h := shmTestHook; h != nil {
			h(shmT)
		}
	}

	// The read loop demultiplexes routed traffic from control frames: a
	// broadcast revoke poisons this rank's mailbox; heartbeat pings are
	// answered from here, so a rank stuck in user code still pongs (the
	// heartbeat detects dead processes, WithDeadline detects stuck ranks).
	go func() {
		for {
			f, err := rd.readFrame()
			if err != nil {
				w.abort(fmt.Errorf("mpi: rank %d: connection to hub lost: %w", rank, err))
				box.close()
				return
			}
			switch f.Tag {
			case tagAbort:
				var info abortInfo
				if err := decodeValue(f.Data, &info); err != nil {
					info = abortInfo{Rank: -1, Msg: "world aborted (undecodable revoke)"}
				}
				w.abort(&remoteAbortError{rank: info.Rank, msg: info.Msg})
			case tagFailed:
				var info abortInfo
				if err := decodeValue(f.Data, &info); err == nil && w.recov != nil {
					w.rankFailed(info.Rank, fmt.Errorf("%w: rank %d: %s", ErrRankFailed, info.Rank, info.Msg))
				}
			case tagAgreeResp:
				var resp agreeResp
				if err := decodeValue(f.Data, &resp); err == nil && w.recov != nil {
					w.recov.deliverDecision(resp)
				}
			case tagRevoke:
				if w.recov != nil {
					w.revokeCtx(f.Ctx)
				}
			case tagPing:
				_ = t.Send(frame{Dst: ctrlDst, Tag: tagPong})
			default:
				box.deliver(f)
			}
		}
	}()

	runErr := runRank(w, rank, main)
	if runErr == nil {
		_ = t.Send(frame{Dst: ctrlDst, Tag: tagDone})
		return nil
	}
	if errors.Is(runErr, ErrWorldAborted) {
		// A victim of someone else's failure: the revoke is already
		// propagating, so just finish the done protocol.
		_ = t.Send(frame{Dst: ctrlDst, Tag: tagDone})
		return runErr
	}
	if w.recov != nil {
		// Recoverable failure: record it locally (interrupts this process's
		// own pending requests), report it to the hub — which notifies the
		// survivors and settles agreements — and complete the done protocol.
		// The world lives on without this rank.
		w.rankFailed(rank, runErr)
		if data, encErr := encodeValue(abortInfo{Rank: rank, Msg: runErr.Error()}); encErr == nil {
			_ = t.Send(frame{Dst: ctrlDst, Tag: tagFailed, Data: data})
		}
		_ = t.Send(frame{Dst: ctrlDst, Tag: tagDone})
		return runErr
	}
	// This rank originated the failure: revoke locally (unblocks any of its
	// own pending Irecv goroutines), report to the hub so peers revoke too,
	// then complete the done protocol. The abort must precede done — the
	// hub stops reading this connection at done.
	w.abort(runErr)
	if data, encErr := encodeValue(abortInfo{Rank: rank, Msg: runErr.Error()}); encErr == nil {
		_ = t.Send(frame{Dst: ctrlDst, Tag: tagAbort, Data: data})
	}
	_ = t.Send(frame{Dst: ctrlDst, Tag: tagDone})
	return &abortError{cause: runErr}
}

// RunTCP executes main as an SPMD program of np ranks connected through a
// loopback TCP hub, all within the calling process: functionally Run, but
// exercising the real network transport. It is the single-machine analogue
// of a cluster job and the transport the ablation benchmarks compare
// against the in-process one.
func RunTCP(np int, main func(c *Comm) error, opts ...Option) error {
	return runHub(np, "", main, opts...)
}

// runHub is the shared single-process launcher behind RunTCP and RunShm: a
// loopback hub plus np joinHub goroutines, with segPath selecting the data
// plane ("" = TCP only).
func runHub(np int, segPath string, main func(c *Comm) error, opts ...Option) error {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	hubOpts := cfg.hubOpts
	if cfg.recovery {
		hubOpts = append(append([]HubOption(nil), hubOpts...), HubRecovery())
	}
	hub, err := StartHub("127.0.0.1:0", np, hubOpts...)
	if err != nil {
		return err
	}
	defer hub.Close()

	errs := make([]error, np)
	var wg sync.WaitGroup
	wg.Add(np)
	for rank := 0; rank < np; rank++ {
		go func(rank int) {
			defer wg.Done()
			errs[rank] = joinHub(hub.Addr(), segPath, rank, np, main, opts...)
		}(rank)
	}
	wg.Wait()
	hubErr := hub.Wait()

	// Recovery verdict: if the hub wound the world down cleanly and at
	// least one rank completed, the survivors carried the run to the end —
	// report success, as Run does.
	if cfg.recovery && hubErr == nil {
		for _, e := range errs {
			if e == nil {
				return nil
			}
		}
	}

	// Prefer the originating failure: a victim's error carries only the
	// remote description of the cause, while the originator's JoinTCP
	// return still wraps the rank's own error with errors.Is identity.
	var victim error
	for _, e := range errs {
		if e == nil {
			continue
		}
		var remote *remoteAbortError
		if errors.As(e, &remote) {
			if victim == nil {
				victim = e
			}
			continue
		}
		return e
	}
	if hubErr != nil {
		return hubErr
	}
	return victim
}
