package mpi

import (
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// The TCP transport gives each rank its own connection to a routing hub, so
// ranks may live in different OS processes (or different machines sharing a
// network), the way an MPI job runs across a Beowulf cluster. The hub plays
// the role of the interconnect: it preserves per-connection FIFO order, so
// the non-overtaking guarantee carries over from the in-process transport.
//
// Wire protocol, per connection, as a gob stream:
//
//	hello{Rank}            worker -> hub, once, identifies the rank
//	frame{Tag: tagStart}   hub -> worker, once, after all ranks joined
//	frame{...}             either direction, user and collective traffic
//	frame{Dst: ctrlDst, Tag: tagDone}  worker -> hub, rank finished
const (
	tagStart = -100
	tagDone  = -101
	ctrlDst  = -100
)

type hello struct {
	Rank int
}

// Hub routes frames between the ranks of one TCP-transport world. Create
// one with StartHub, hand its Addr to the workers, and Wait for the job to
// finish.
type Hub struct {
	ln net.Listener
	np int

	mu    sync.Mutex
	conns map[int]*hubConn
	done  int
	err   error

	finished chan struct{}
}

type hubConn struct {
	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex // serializes writes to enc
}

func (hc *hubConn) send(f frame) error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.enc.Encode(f)
}

// StartHub listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// routes for a world of np ranks. It returns as soon as the listener is
// ready; workers may join immediately.
func StartHub(addr string, np int) (*Hub, error) {
	if np < 1 {
		return nil, fmt.Errorf("mpi: hub needs at least 1 process, got %d", np)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: hub listen: %w", err)
	}
	h := &Hub{
		ln:       ln,
		np:       np,
		conns:    make(map[int]*hubConn),
		finished: make(chan struct{}),
	}
	go h.acceptLoop()
	return h, nil
}

// Addr reports the address workers should dial.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

func (h *Hub) acceptLoop() {
	for i := 0; i < h.np; i++ {
		conn, err := h.ln.Accept()
		if err != nil {
			h.fail(fmt.Errorf("mpi: hub accept: %w", err))
			return
		}
		go h.admit(conn)
	}
}

// admit registers a worker connection and, once the world is complete,
// releases all workers with the start signal.
func (h *Hub) admit(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	var hi hello
	if err := dec.Decode(&hi); err != nil {
		h.fail(fmt.Errorf("mpi: hub handshake: %w", err))
		conn.Close()
		return
	}
	h.mu.Lock()
	if hi.Rank < 0 || hi.Rank >= h.np {
		h.mu.Unlock()
		h.fail(fmt.Errorf("mpi: hub: worker announced invalid rank %d", hi.Rank))
		conn.Close()
		return
	}
	if _, dup := h.conns[hi.Rank]; dup {
		h.mu.Unlock()
		h.fail(fmt.Errorf("mpi: hub: duplicate worker for rank %d", hi.Rank))
		conn.Close()
		return
	}
	hc := &hubConn{conn: conn, enc: gob.NewEncoder(conn)}
	h.conns[hi.Rank] = hc
	complete := len(h.conns) == h.np
	var all []*hubConn
	if complete {
		for _, c := range h.conns {
			all = append(all, c)
		}
	}
	h.mu.Unlock()

	if complete {
		for _, c := range all {
			if err := c.send(frame{Tag: tagStart}); err != nil {
				h.fail(fmt.Errorf("mpi: hub start signal: %w", err))
				return
			}
		}
	}
	h.route(hi.Rank, dec)
}

// route forwards every frame read from one worker until the worker reports
// done or the connection drops.
func (h *Hub) route(rank int, dec *gob.Decoder) {
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			h.fail(fmt.Errorf("mpi: hub: connection to rank %d: %w", rank, err))
			return
		}
		if f.Dst == ctrlDst {
			if f.Tag == tagDone {
				// The worker sends nothing after done; stop reading so its
				// connection teardown is not mistaken for a failure.
				h.workerDone()
				return
			}
			continue
		}
		h.mu.Lock()
		dst := h.conns[f.Dst]
		h.mu.Unlock()
		if dst == nil {
			h.fail(fmt.Errorf("mpi: hub: frame for unknown rank %d", f.Dst))
			return
		}
		if err := dst.send(f); err != nil {
			h.fail(fmt.Errorf("mpi: hub: forwarding to rank %d: %w", f.Dst, err))
			return
		}
	}
}

// workerDone counts a finished rank; when the last one reports, the hub
// shuts the world down. It reports whether this was the final rank.
func (h *Hub) workerDone() bool {
	h.mu.Lock()
	h.done++
	last := h.done == h.np
	h.mu.Unlock()
	if last {
		h.shutdown()
	}
	return last
}

// fail records the first error and shuts the hub down, unless the job had
// already completed cleanly.
func (h *Hub) fail(err error) {
	h.mu.Lock()
	alreadyFinished := h.done == h.np
	if h.err == nil && !alreadyFinished {
		h.err = err
	}
	h.mu.Unlock()
	if !alreadyFinished {
		h.shutdown()
	}
}

func (h *Hub) shutdown() {
	h.mu.Lock()
	conns := h.conns
	h.conns = map[int]*hubConn{}
	h.mu.Unlock()
	h.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	select {
	case <-h.finished:
	default:
		close(h.finished)
	}
}

// Wait blocks until every rank has reported completion (or the hub failed)
// and returns the hub's error state.
func (h *Hub) Wait() error {
	<-h.finished
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done == h.np {
		return nil
	}
	return h.err
}

// Close shuts the hub down immediately.
func (h *Hub) Close() { h.shutdown() }

// tcpTransport is one rank's sending side of the TCP world.
type tcpTransport struct {
	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex
}

func (t *tcpTransport) Send(f frame) error {
	// TCP worlds never produce typed frames (they are not typedCapable),
	// but serialize defensively so a typed frame can never leak an
	// in-memory payload onto the wire.
	if f.HasVal {
		data, err := encodeValue(f.Val)
		if err != nil {
			return err
		}
		f.Data, f.Val, f.HasVal = data, nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.enc.Encode(f); err != nil {
		return fmt.Errorf("mpi: tcp send: %w", err)
	}
	return nil
}

func (t *tcpTransport) Close() error { return t.conn.Close() }

// JoinTCP connects to the hub at addr as the given rank of an np-rank world
// and runs main there: the worker half of a distributed "mpirun". It
// returns when main returns (converting panics to errors, as Run does).
func JoinTCP(addr string, rank, np int, main func(c *Comm) error, opts ...Option) (err error) {
	if rank < 0 || rank >= np {
		return fmt.Errorf("%w: %d (np %d)", ErrInvalidRank, rank, np)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("mpi: joining hub %s: %w", addr, err)
	}
	t := &tcpTransport{conn: conn, enc: gob.NewEncoder(conn)}
	defer t.Close()

	if err := t.enc.Encode(hello{Rank: rank}); err != nil {
		return fmt.Errorf("mpi: hello to hub: %w", err)
	}

	box := newMailbox()
	dec := gob.NewDecoder(conn)

	// The start frame arrives before any routed traffic.
	var start frame
	if err := dec.Decode(&start); err != nil {
		return fmt.Errorf("mpi: waiting for world start: %w", err)
	}
	if start.Tag != tagStart {
		return fmt.Errorf("mpi: unexpected frame before start signal (tag %d)", start.Tag)
	}

	go func() {
		for {
			var f frame
			if err := dec.Decode(&f); err != nil {
				box.close()
				return
			}
			box.deliver(f)
		}
	}()

	host, herr := os.Hostname()
	if herr != nil || host == "" {
		host = "localhost"
	}
	names := make([]string, np)
	for i := range names {
		if i < len(cfg.names) && cfg.names[i] != "" {
			names[i] = cfg.names[i]
		} else {
			names[i] = host
		}
	}
	boxes := make([]*mailbox, np)
	boxes[rank] = box

	transport := cfg.wrapTransport(t)
	w := &World{
		np:        np,
		transport: transport,
		boxes:     boxes,
		names:     names,
		gate:      cfg.gate,
		epoch:     time.Now(),
		typed:     cfg.typedWorld(transport), // always false: tcpTransport serializes
	}

	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mpi: rank %d panicked: %v", rank, r)
		}
		// Report completion regardless of outcome so the hub can finish.
		_ = t.Send(frame{Dst: ctrlDst, Tag: tagDone})
	}()
	if err := main(w.comm(rank)); err != nil {
		return fmt.Errorf("mpi: rank %d: %w", rank, err)
	}
	return nil
}

// RunTCP executes main as an SPMD program of np ranks connected through a
// loopback TCP hub, all within the calling process: functionally Run, but
// exercising the real network transport. It is the single-machine analogue
// of a cluster job and the transport the ablation benchmarks compare
// against the in-process one.
func RunTCP(np int, main func(c *Comm) error, opts ...Option) error {
	hub, err := StartHub("127.0.0.1:0", np)
	if err != nil {
		return err
	}
	defer hub.Close()

	errs := make([]error, np)
	var wg sync.WaitGroup
	wg.Add(np)
	for rank := 0; rank < np; rank++ {
		go func(rank int) {
			defer wg.Done()
			errs[rank] = JoinTCP(hub.Addr(), rank, np, main, opts...)
		}(rank)
	}
	wg.Wait()
	if err := hub.Wait(); err != nil {
		return err
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
