package mpi

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP transport gives each rank its own connection to a routing hub, so
// ranks may live in different OS processes (or different machines sharing a
// network), the way an MPI job runs across a Beowulf cluster. The hub plays
// the role of the interconnect: it preserves per-connection FIFO order, so
// the non-overtaking guarantee carries over from the in-process transport.
//
// Wire protocol, per connection. The stream opens with a gob hello carrying
// the worker's wire version; each direction is then framed at the version
// the worker announced (see wire.go): version 0 is the original pure gob
// stream, version 1 adds kind-byte framing with raw little-endian payloads
// for the whitelist, and version 2 — the default — turns the connection into
// a resumable *session* (session.go): every frame carries a sequence number,
// raw frames carry a CRC32C, receivers ack cumulatively, and senders keep
// unacknowledged frames in a bounded replay buffer. Message sequence:
//
//	hello{Rank, Wire}      worker -> hub, once, identifies the rank
//	frame{Tag: tagStart}   hub -> worker, once, after all ranks joined;
//	                       Data carries a gob startInfo (suspicion grace,
//	                       membership epoch, failed mask)
//	frame{...}             either direction, user and collective traffic
//	frame{Dst: ctrlDst, Tag: tagDone}   worker -> hub, rank finished
//	frame{Dst: ctrlDst, Tag: tagAbort}  worker -> hub, rank failed; Data
//	                                    carries a gob abortInfo
//	frame{Tag: tagAbort}   hub -> worker, world revoked (broadcast)
//	frame{Tag: tagPing}    hub -> worker, heartbeat probe
//	frame{Dst: ctrlDst, Tag: tagPong}   worker -> hub, heartbeat reply
//
// Recovery worlds (HubRecovery + WithRecovery) add:
//
//	frame{Dst: ctrlDst, Tag: tagFailed}     worker -> hub, this rank failed
//	                                        recoverably; Data: gob abortInfo
//	frame{Tag: tagFailed}                   hub -> worker, a peer failed
//	                                        (broadcast); Data: gob abortInfo
//	frame{Dst: ctrlDst, Tag: tagAgreeReq}   worker -> hub, agreement
//	                                        contribution; Data: gob agreeReq
//	frame{Tag: tagAgreeResp}                hub -> worker, agreement decision;
//	                                        Data: gob agreeResp
//	frame{Dst: ctrlDst, Tag: tagRevoke, Ctx: c} worker -> hub, context c revoked
//	frame{Tag: tagRevoke, Ctx: c}           hub -> worker, revoke broadcast
//
// Resilient sessions (HubSuspicion, wire v2) change what a broken connection
// means. When a worker's connection breaks — on either side — the hub marks
// the rank *suspected* (not failed), parks its frames in the replay buffer,
// and arms a grace timer; the worker redials with hello{Resume: true, Ack}
// carrying the highest sequence it received. The hub replies with a 9-byte
// raw status (accepted flag + its own receive sequence) and both sides
// retransmit their unacknowledged tails. Only grace-window expiry (or a
// replay gap that makes the resume impossible) promotes suspected to failed.
//
// Respawn recovery (WithRespawn / mpirun -respawn) adds one more tag:
//
//	hello{Rank, Wire, Respawn: true}   a relaunched process re-admits into
//	                                   its old (failed) slot
//	frame{Tag: tagRejoin}              hub -> survivors; Data: gob rejoinInfo
//	                                   (the rank and the new membership epoch)
//
// Re-admission bumps the hub's membership epoch; survivors and the newcomer
// re-form at the original width through Comm.Restored.
const (
	tagStart     = -100
	tagDone      = -101
	tagAbort     = -102
	tagPing      = -103
	tagPong      = -104
	tagFailed    = -105
	tagAgreeReq  = -106
	tagAgreeResp = -107
	tagRevoke    = -108
	tagRejoin    = -109
	ctrlDst      = -100
)

type hello struct {
	Rank int
	// Wire announces the highest framing version the worker speaks: 0 for
	// the original pure-gob stream, 1 for kind-byte framing, 2 for resumable
	// sessions. The hub answers in kind — each side of the connection is
	// framed at the version the worker announced, so mixed worlds
	// interoperate.
	Wire int
	// Resume marks a session-resume dial: the worker's original connection
	// broke and it is redialing within the grace window. Ack carries the
	// highest sequence number the worker received before the break.
	Resume bool
	Ack    uint64
	// Respawn marks a relaunched process re-admitting into its old slot
	// after its previous incarnation failed (respawn recovery).
	Respawn bool
}

// startInfo rides in the start frame's Data: the session grace window the
// hub was configured with, and — for respawned workers — the membership
// epoch and the hub's view of the still-failed ranks at admission time.
type startInfo struct {
	SuspicionNs int64
	Epoch       int
	FailedMask  uint64
}

// rejoinInfo rides in a tagRejoin broadcast: which rank was respawned into
// its old slot, and the membership epoch its re-admission established.
type rejoinInfo struct {
	Rank  int
	Epoch int
}

// abortInfo is the wire form of a world revoke: which rank failed (or -1
// when the hub itself did) and its error, surviving only as text.
type abortInfo struct {
	Rank int
	Msg  string
}

func (ai abortInfo) err() error {
	return &abortError{cause: &remoteAbortError{rank: ai.Rank, msg: ai.Msg}}
}

// HubOption configures a StartHub.
type HubOption func(*hubOptions)

type hubOptions struct {
	formation time.Duration
	heartbeat time.Duration
	suspicion time.Duration
	recovery  bool
}

// HubFormationTimeout bounds how long the hub waits for the world to form.
// If the deadline passes before every rank has joined, the job fails with
// an error wrapping ErrFormationTimeout that lists the missing ranks —
// instead of waiting forever on a worker that never dialed. Zero (the
// default) waits indefinitely.
func HubFormationTimeout(d time.Duration) HubOption {
	return func(o *hubOptions) { o.formation = d }
}

// HubHeartbeat makes the hub ping every worker each interval once the
// world has started. A worker that misses three consecutive intervals —
// a frozen process, a dead VM, a stalled connection — fails the job and
// revokes the world for the survivors. It cannot detect a rank that is
// alive but stuck in user code (its connection still answers); that is
// what WithDeadline is for. Zero (the default) disables the heartbeat.
func HubHeartbeat(interval time.Duration) HubOption {
	return func(o *hubOptions) { o.heartbeat = interval }
}

// HubSuspicion arms resilient sessions: a worker whose connection breaks
// after the world has started is *suspected* for up to d — its unsent
// frames park in the replay buffer while the worker redials and resumes
// from the last acknowledged sequence — and only if the grace window
// expires without a successful resume is the rank promoted to failed
// (recovery hubs) or the world revoked (plain hubs). Requires wire v2
// workers (the default); legacy connections fail immediately as before.
// Zero (the default) disables suspicion: any break is instantly fatal.
func HubSuspicion(d time.Duration) HubOption {
	return func(o *hubOptions) { o.suspicion = d }
}

// HubRecovery opts the hub into survive-and-continue worlds: a worker that
// reports a recoverable failure (or whose connection drops after the world
// started) is recorded as failed and announced to the survivors instead of
// revoking the world, and the hub coordinates the survivors' Agree calls.
// Pair it with WithRecovery on the workers; RunTCP adds it automatically.
func HubRecovery() HubOption {
	return func(o *hubOptions) { o.recovery = true }
}

// WithHubOptions forwards hub configuration (formation timeout, heartbeat,
// suspicion) to the hub RunTCP starts internally. Standalone hubs take the
// same options directly via StartHub; JoinTCP ignores this option.
func WithHubOptions(opts ...HubOption) Option {
	return func(c *config) { c.hubOpts = append(c.hubOpts, opts...) }
}

// WithDialRetry bounds JoinTCP's dial retry budget: failed dials are
// retried with exponential backoff and jitter until the budget elapses, so
// a worker that starts before its hub is listening joins as soon as the hub
// comes up. Zero keeps the default (3s); a negative budget disables
// retrying entirely.
func WithDialRetry(budget time.Duration) Option {
	return func(c *config) { c.dialRetry = budget }
}

// WithTCPNoDelay sets TCP_NODELAY on the worker's hub connection. Go enables
// it by default (segments leave immediately, the right call for the
// latency-sensitive framing this transport uses); passing false re-enables
// Nagle's algorithm, trading per-message latency for fewer small segments —
// the classic knob a bandwidth-bound many-small-messages workload can try.
// The option is a no-op on non-TCP transports and non-TCP connections.
func WithTCPNoDelay(enabled bool) Option {
	return func(c *config) {
		b := enabled
		c.noDelay = &b
	}
}

// withWireLegacy forces the worker to speak the v0 pure-gob wire, as an
// old binary would. Unexported: real programs have no reason to downgrade,
// but the interop tests use it to exercise the hub's version-mismatch path
// (raw frames converted back to gob for legacy destinations).
func withWireLegacy() Option {
	return func(c *config) { c.wireLegacy = true }
}

// errHubConnDead marks a send into a hub connection that has been retired
// (the worker reported done, its suspicion expired, or it was replaced by a
// respawn). The router drops such frames instead of failing the world: the
// rank's fate has already been decided through the failure machinery.
var errHubConnDead = errors.New("mpi: hub connection retired")

// Hub routes frames between the ranks of one TCP-transport world. Create
// one with StartHub, hand its Addr to the workers, and Wait for the job to
// finish.
type Hub struct {
	ln   net.Listener
	np   int
	opts hubOptions

	// started flips once the start signal has been broadcast: suspicion
	// (session resume) only applies to post-formation breaks.
	started atomic.Bool

	mu       sync.Mutex
	conns    map[int]*hubConn
	complete bool // all np ranks admitted
	done     int
	epoch    int // membership epoch; bumped by each respawn re-admission
	err      error
	abortErr error // first rank-reported abort; preferred by Wait
	lastPong map[int]time.Time

	// Recovery bookkeeping (HubRecovery): which ranks failed recoverably,
	// and the open agreement instances the hub is coordinating.
	failedRanks map[int]bool
	agreements  map[agreeKey]*hubAgree

	formTimer  *time.Timer
	finished   chan struct{}
	finishOnce sync.Once
}

// hubAgree is one open hub-coordinated agreement instance.
type hubAgree struct {
	members []int
	masks   map[int]uint64 // contributing world rank -> mask
}

// hubConn is the hub's half of one worker's session: the connection, the
// framing layers, and (wire v2) the send/receive session state. mu guards
// everything except doneCounted, which h.mu guards (the done count and the
// per-conn flag must change atomically together). Lock order: h.mu may be
// taken before hc.mu, never the reverse.
type hubConn struct {
	h    *Hub
	rank int
	wire int

	// resumeMu serializes resume attempts for this rank: two racing redials
	// must not both swap the connection.
	resumeMu sync.Mutex

	mu        sync.Mutex
	conn      net.Conn
	w         *wireWriter
	rd        *wireReader
	sendq     sendSession
	recvq     recvSession
	suspended bool // connection down, grace timer running, frames parking
	dead      bool // retired for good: done, failed, or replaced
	suspTimer *time.Timer
	// readerDown is closed when the route loop reading this connection
	// returns; a resume waits on it before reusing the wireReader.
	readerDown chan struct{}

	doneCounted bool // guarded by h.mu, not hc.mu
}

func (hc *hubConn) send(f frame) error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.sendLocked(f)
}

// sendLocked frames one outbound frame at the worker's wire version. On a
// v2 session the frame is sequenced and captured for replay; a write error
// under suspicion-eligible conditions suspends the connection (the frame is
// already safe in the replay buffer) instead of surfacing the error.
func (hc *hubConn) sendLocked(f frame) error {
	if hc.dead {
		return errHubConnDead
	}
	if hc.wire < wireVersion2 {
		return hc.w.writeFrame(f)
	}
	seq := hc.sendq.nextSeq()
	if hc.suspended {
		// Connection down, grace running: park the frame for retransmission.
		buf, err := hc.w.encodeFrame(f, seq)
		if err != nil {
			return err
		}
		hc.sendq.record(seq, buf)
		return nil
	}
	if n := rawPayloadSize(f); n > replayFrameMax {
		// Large raw frame: stream it without capturing (the zero-copy path)
		// and record the sequence as a replay gap. Only if the write breaks
		// is the frame captured after the fact — the payload is still intact
		// — so the resume is not doomed by the very frame that broke it.
		err := hc.w.writeFrameDirect(f, seq)
		if err == nil {
			err = hc.w.flush()
		}
		if err == nil {
			hc.sendq.gap(seq)
			return nil
		}
		if buf, eerr := hc.w.encodeFrame(f, seq); eerr == nil {
			hc.sendq.record(seq, buf)
		} else {
			hc.sendq.gap(seq)
		}
		return hc.streamBrokenLocked(err)
	}
	buf, err := hc.w.encodeFrame(f, seq)
	if err != nil {
		return err
	}
	werr := hc.w.writeEncoded(buf)
	if werr == nil {
		werr = hc.w.flush()
	}
	// Record after the write: record may evict old frames under budget
	// pressure, and the buffer being written must not be reclaimed mid-write.
	hc.sendq.record(seq, buf)
	if werr != nil {
		return hc.streamBrokenLocked(werr)
	}
	return nil
}

// canSuspendLocked reports whether this connection's breaks are absorbed by
// the suspicion machinery rather than being immediately fatal.
func (hc *hubConn) canSuspendLocked() bool {
	return hc.h.opts.suspicion > 0 && hc.wire >= wireVersion2 && hc.h.started.Load()
}

// streamBrokenLocked handles a write error: suspend if the session can
// resume, otherwise surface the error to the caller.
func (hc *hubConn) streamBrokenLocked(err error) error {
	if hc.canSuspendLocked() {
		hc.suspendLocked()
		return nil
	}
	return err
}

// suspendLocked marks the connection suspected: the socket is closed (so
// both the local reader and the remote peer observe the break promptly) and
// the grace timer is armed. Idempotent; the timer is armed exactly once per
// suspicion episode, so a failed resume attempt cannot extend the window.
func (hc *hubConn) suspendLocked() {
	if hc.suspended || hc.dead {
		return
	}
	hc.suspended = true
	if hc.conn != nil {
		hc.conn.Close()
	}
	if hc.suspTimer != nil {
		hc.suspTimer.Stop()
	}
	hc.suspTimer = time.AfterFunc(hc.h.opts.suspicion, func() { hc.h.suspicionExpired(hc) })
}

// retireLocked marks the connection dead for good and releases its replay
// buffer. Caller holds hc.mu.
func (hc *hubConn) retireLocked() {
	hc.dead = true
	if hc.suspTimer != nil {
		hc.suspTimer.Stop()
	}
	hc.sendq.drop()
}

// StartHub listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// routes for a world of np ranks. It returns as soon as the listener is
// ready; workers may join immediately.
func StartHub(addr string, np int, opts ...HubOption) (*Hub, error) {
	if np < 1 {
		return nil, fmt.Errorf("mpi: hub needs at least 1 process, got %d", np)
	}
	var ho hubOptions
	for _, o := range opts {
		o(&ho)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: hub listen: %w", err)
	}
	h := &Hub{
		ln:          ln,
		np:          np,
		opts:        ho,
		conns:       make(map[int]*hubConn),
		failedRanks: make(map[int]bool),
		agreements:  make(map[agreeKey]*hubAgree),
		finished:    make(chan struct{}),
	}
	if ho.formation > 0 {
		// Assign under the lock: the timer callback (and the shutdown path
		// it triggers) reads formTimer from other goroutines.
		h.mu.Lock()
		h.formTimer = time.AfterFunc(ho.formation, h.formationExpired)
		h.mu.Unlock()
	}
	go h.acceptLoop()
	return h, nil
}

// Addr reports the address workers should dial.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// acceptLoop admits connections for the hub's whole life: after formation,
// new dials are session resumes and respawn re-admissions.
func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			select {
			case <-h.finished:
			default:
				h.fail(fmt.Errorf("mpi: hub accept: %w", err))
			}
			return
		}
		go h.admit(conn)
	}
}

// formationExpired fires when the world-formation timeout elapses: any
// still-missing rank fails the job with a list of who never joined.
func (h *Hub) formationExpired() {
	h.mu.Lock()
	if h.complete {
		h.mu.Unlock()
		return
	}
	var missing []int
	for r := 0; r < h.np; r++ {
		if _, ok := h.conns[r]; !ok {
			missing = append(missing, r)
		}
	}
	d := h.opts.formation
	h.mu.Unlock()
	h.fail(fmt.Errorf("%w: %d of %d ranks missing after %s: %v",
		ErrFormationTimeout, len(missing), h.np, d, missing))
}

// admit performs one inbound connection's handshake and dispatches it:
// a session resume, a respawn re-admission, or a first-time registration.
func (h *Hub) admit(conn net.Conn) {
	rd := newWireReader(conn)
	hi, err := rd.readHello()
	if err != nil {
		h.mu.Lock()
		complete := h.complete
		h.mu.Unlock()
		if complete {
			// A stray dial into a formed world (a port scanner, a confused
			// client) must not take a healthy job down.
			conn.Close()
			return
		}
		h.fail(fmt.Errorf("mpi: hub handshake: %w", err))
		conn.Close()
		return
	}
	if hi.Rank < 0 || hi.Rank >= h.np {
		h.fail(fmt.Errorf("mpi: hub: worker announced invalid rank %d", hi.Rank))
		conn.Close()
		return
	}
	if hi.Resume {
		h.resumeWorker(conn, hi)
		return
	}
	if hi.Respawn {
		h.respawnWorker(conn, hi, rd)
		return
	}

	// First-time registration. Frame each direction at the worker's version.
	rd.v1 = hi.Wire >= wireVersion
	rd.v2 = hi.Wire >= wireVersion2
	hc := &hubConn{
		h:          h,
		rank:       hi.Rank,
		wire:       hi.Wire,
		conn:       conn,
		w:          newWireWriter(conn, hi.Wire),
		rd:         rd,
		readerDown: make(chan struct{}),
	}
	if rd.v2 {
		rd.onAck = func(ack uint64) {
			hc.mu.Lock()
			hc.sendq.trim(ack)
			hc.mu.Unlock()
		}
	}
	h.mu.Lock()
	if _, dup := h.conns[hi.Rank]; dup {
		h.mu.Unlock()
		h.fail(fmt.Errorf("mpi: hub: duplicate worker for rank %d", hi.Rank))
		conn.Close()
		return
	}
	h.conns[hi.Rank] = hc
	complete := len(h.conns) == h.np
	epoch := h.epoch
	var all []*hubConn
	if complete {
		h.complete = true
		if h.formTimer != nil {
			h.formTimer.Stop()
		}
		for _, c := range h.conns {
			all = append(all, c)
		}
		if h.opts.heartbeat > 0 {
			h.lastPong = make(map[int]time.Time, h.np)
			now := time.Now()
			for r := range h.conns {
				h.lastPong[r] = now
			}
		}
	}
	h.mu.Unlock()

	if complete {
		data, encErr := encodeValue(startInfo{SuspicionNs: int64(h.opts.suspicion), Epoch: epoch})
		if encErr != nil {
			h.fail(fmt.Errorf("mpi: hub start signal: %w", encErr))
			return
		}
		for _, c := range all {
			if err := c.send(frame{Tag: tagStart, Data: data}); err != nil {
				h.fail(fmt.Errorf("mpi: hub start signal: %w", err))
				return
			}
		}
		h.started.Store(true)
		if h.opts.heartbeat > 0 {
			go h.heartbeatLoop()
		}
	}
	h.route(hc, conn, hc.readerDown)
}

// resumeWorker handles a session-resume dial: validate, park the old reader,
// exchange acknowledged sequences, swap the connection in, and retransmit
// the unacknowledged tail. The reply to the worker is 9 raw bytes — a status
// byte (1 = accepted) and the hub's highest received sequence — written
// outside the framed session, mirroring the worker's fresh-encoder hello.
func (h *Hub) resumeWorker(conn net.Conn, hi hello) {
	refuse := func() {
		var reply [1 + seqLen]byte
		_, _ = conn.Write(reply[:]) // status 0: refused
		conn.Close()
	}
	h.mu.Lock()
	hc := h.conns[hi.Rank]
	h.mu.Unlock()
	if hc == nil || hc.wire < wireVersion2 || h.opts.suspicion <= 0 {
		refuse()
		return
	}
	hc.resumeMu.Lock()
	defer hc.resumeMu.Unlock()

	hc.mu.Lock()
	if hc.dead {
		hc.mu.Unlock()
		refuse()
		return
	}
	if !hc.suspended && hc.conn != nil {
		// The worker noticed the break before the hub did. The old socket
		// may still hold streamed frames the kernel accepted before the
		// break — frames too large for the worker's replay buffer, which
		// can never be retransmitted. Closing the socket now would discard
		// them and doom the resume, so instead give the old route a
		// bounded window to drain what is already buffered: it reads until
		// EOF (the worker closed its end) or the deadline fires, and its
		// exit path suspends the session. The grace timer armed there is
		// stopped as soon as the resume below completes.
		_ = hc.conn.SetReadDeadline(time.Now().Add(resumeDrainWindow))
	}
	down := hc.readerDown
	hc.mu.Unlock()
	<-down // the old route loop has returned; hc.rd is ours to reset

	hc.mu.Lock()
	if hc.dead {
		hc.mu.Unlock()
		refuse()
		return
	}
	entries, ok := hc.sendq.pending(hi.Ack)
	if !ok {
		// The worker is missing a frame that was never captured (a streamed
		// large frame or an evicted one): the session is honestly lost.
		hc.retireLocked()
		hc.mu.Unlock()
		refuse()
		h.sessionLost(hc)
		return
	}
	var reply [1 + seqLen]byte
	reply[0] = 1
	le.PutUint64(reply[1:], hc.recvq.seqIn)
	if _, err := conn.Write(reply[:]); err != nil {
		hc.mu.Unlock()
		conn.Close()
		return // still suspended; the worker (or the timer) decides next
	}
	hc.conn = conn
	hc.w.resetConn(conn)
	hc.rd.resetConn(conn)
	hc.recvq.sinceAck = 0
	hc.readerDown = make(chan struct{})
	// Start the reader before retransmitting: the worker is retransmitting
	// its own tail concurrently, and draining it keeps the kernel buffers
	// from filling while ours flow the other way.
	go h.route(hc, conn, hc.readerDown)
	var werr error
	for _, e := range entries {
		if werr = hc.w.writeEncoded(e.buf); werr != nil {
			break
		}
	}
	if werr == nil {
		werr = hc.w.flush()
	}
	if werr != nil {
		// The fresh connection broke during retransmission. Stay suspended:
		// the original grace timer still stands, so a dead worker is still
		// promoted to failed on schedule while a live one retries.
		conn.Close()
		hc.mu.Unlock()
		return
	}
	hc.suspended = false
	if hc.suspTimer != nil {
		hc.suspTimer.Stop()
	}
	hc.mu.Unlock()

	h.mu.Lock()
	if h.lastPong != nil {
		h.lastPong[hi.Rank] = time.Now()
	}
	h.mu.Unlock()
}

// respawnWorker re-admits a relaunched process into its old slot: the dead
// incarnation's connection is retired, the rank's failure is cleared, the
// membership epoch is bumped, survivors learn of the rejoin, and the
// newcomer gets a start signal carrying the epoch and the remaining failed
// set.
func (h *Hub) respawnWorker(conn net.Conn, hi hello, rd *wireReader) {
	select {
	case <-h.finished:
		conn.Close()
		return
	default:
	}
	h.mu.Lock()
	ready := h.opts.recovery && h.complete
	old := h.conns[hi.Rank]
	h.mu.Unlock()
	if !ready {
		h.fail(fmt.Errorf("mpi: hub: rank %d attempted respawn before the world formed (or without HubRecovery)", hi.Rank))
		conn.Close()
		return
	}
	if old != nil {
		old.mu.Lock()
		old.retireLocked()
		if old.conn != nil {
			old.conn.Close()
		}
		old.mu.Unlock()
	}
	// Record the failure if nothing else has yet: a kill-and-relaunch can
	// land the new dial before the old connection's death is observed, and
	// the survivors must see fail-then-rejoin in that order.
	h.mu.Lock()
	already := h.failedRanks[hi.Rank]
	h.mu.Unlock()
	if !already {
		if data, err := encodeValue(abortInfo{Rank: hi.Rank, Msg: "rank replaced by respawn"}); err == nil {
			h.rankFailedHub(hi.Rank, data)
		}
	}

	rd.v1 = hi.Wire >= wireVersion
	rd.v2 = hi.Wire >= wireVersion2
	hc := &hubConn{
		h:          h,
		rank:       hi.Rank,
		wire:       hi.Wire,
		conn:       conn,
		w:          newWireWriter(conn, hi.Wire),
		rd:         rd,
		readerDown: make(chan struct{}),
	}
	if rd.v2 {
		rd.onAck = func(ack uint64) {
			hc.mu.Lock()
			hc.sendq.trim(ack)
			hc.mu.Unlock()
		}
	}

	h.mu.Lock()
	// Done-accounting: the slot must be counted exactly once when the world
	// finally winds down. If the dead incarnation was already counted done,
	// take that count back (the new incarnation will report its own); if it
	// was not, mark it counted so its pending teardown becomes a no-op.
	if old != nil && !old.doneCounted {
		old.doneCounted = true
	} else if h.done > 0 {
		h.done--
	}
	delete(h.failedRanks, hi.Rank)
	h.epoch++
	epoch := h.epoch
	h.conns[hi.Rank] = hc
	if h.lastPong != nil {
		h.lastPong[hi.Rank] = time.Now()
	}
	var mask uint64
	for r := range h.failedRanks {
		mask |= 1 << uint(r)
	}
	others := make([]*hubConn, 0, len(h.conns))
	for r, c := range h.conns {
		if r != hi.Rank && !h.failedRanks[r] {
			others = append(others, c)
		}
	}
	h.mu.Unlock()

	if data, err := encodeValue(rejoinInfo{Rank: hi.Rank, Epoch: epoch}); err == nil {
		for _, c := range others {
			_ = c.send(frame{Tag: tagRejoin, Data: data})
		}
	}
	data, err := encodeValue(startInfo{SuspicionNs: int64(h.opts.suspicion), Epoch: epoch, FailedMask: mask})
	if err != nil {
		h.fail(fmt.Errorf("mpi: hub respawn start signal: %w", err))
		return
	}
	// A failed write here is absorbed by the session machinery (or surfaces
	// as this incarnation's own prompt death through the route loop below).
	_ = hc.send(frame{Tag: tagStart, Data: data})
	h.route(hc, conn, hc.readerDown)
}

// heartbeatLoop pings every worker each interval and fails the job when a
// worker has not answered for three intervals. Suspended connections are
// skipped: the suspicion timer, not the heartbeat, owns their fate.
func (h *Hub) heartbeatLoop() {
	iv := h.opts.heartbeat
	ticker := time.NewTicker(iv)
	defer ticker.Stop()
	for {
		select {
		case <-h.finished:
			return
		case <-ticker.C:
		}
		now := time.Now()
		h.mu.Lock()
		var stale []int
		var staleConns []*hubConn
		conns := make([]*hubConn, 0, len(h.conns))
		for r, c := range h.conns {
			c.mu.Lock()
			skip := c.suspended || c.dead
			c.mu.Unlock()
			if skip {
				continue
			}
			conns = append(conns, c)
			if lp, ok := h.lastPong[r]; ok && now.Sub(lp) > 3*iv {
				stale = append(stale, r)
				staleConns = append(staleConns, c)
				if h.opts.recovery {
					// Stop tracking so the rank is handled exactly once.
					delete(h.lastPong, r)
				}
			}
		}
		h.mu.Unlock()
		if len(stale) > 0 {
			if h.opts.recovery {
				// Close the silent connections: each one's route loop turns
				// the broken read into a suspicion episode (under
				// HubSuspicion) or a recoverable rank failure.
				for _, c := range staleConns {
					c.mu.Lock()
					if c.conn != nil {
						c.conn.Close()
					}
					c.mu.Unlock()
				}
				continue
			}
			h.fail(fmt.Errorf("mpi: hub: ranks %v unresponsive (no heartbeat within %s); world revoked", stale, 3*iv))
			return
		}
		for _, c := range conns {
			_ = c.send(frame{Tag: tagPing})
		}
	}
}

// route forwards every frame read from one worker connection until the
// worker reports done or the connection breaks. Sequenced (v2) frames are
// dup-suppressed and acknowledged through the receive session; raw frames
// are forwarded verbatim to capable destinations and converted back to gob
// for legacy ones. down is closed on return so a resume can safely reuse
// the wireReader.
func (h *Hub) route(hc *hubConn, conn net.Conn, down chan struct{}) {
	defer close(down)
	rd := hc.rd
	for {
		f, seq, err := rd.readFrame()
		if err != nil {
			h.readerBroken(hc, conn, err)
			return
		}
		if hc.wire >= wireVersion2 && seq > 0 {
			hc.mu.Lock()
			if hc.dead || hc.conn != conn {
				// The session moved on (resume swapped the connection, or the
				// rank was retired) while this frame was in flight.
				hc.mu.Unlock()
				f.release()
				return
			}
			dup, ackNow := hc.recvq.note(seq)
			if dup {
				hc.mu.Unlock()
				f.release()
				continue
			}
			if ackNow && !hc.suspended {
				_ = hc.w.writeAck(hc.recvq.seqIn)
			}
			hc.mu.Unlock()
		}
		if f.Dst == ctrlDst {
			switch f.Tag {
			case tagDone:
				// The worker sends nothing after done. Acknowledge everything
				// received first — the worker's drain holds its transport open
				// until the replay buffer clears — then retire the session so
				// its connection teardown is not mistaken for a failure.
				hc.mu.Lock()
				if hc.wire >= wireVersion2 && !hc.dead && !hc.suspended && hc.conn == conn {
					_ = hc.w.writeAck(hc.recvq.seqIn)
				}
				hc.retireLocked()
				hc.mu.Unlock()
				h.workerDoneConn(hc)
				return
			case tagAbort:
				h.rankAborted(hc.rank, f.Data)
			case tagFailed:
				h.rankFailedHub(hc.rank, f.Data)
			case tagAgreeReq:
				h.agreeRequest(f.Data)
			case tagRevoke:
				h.broadcastRevoke(hc.rank, f.Ctx)
			case tagPong:
				h.mu.Lock()
				if h.lastPong != nil {
					h.lastPong[hc.rank] = time.Now()
				}
				h.mu.Unlock()
			}
			continue
		}
		h.mu.Lock()
		dst := h.conns[f.Dst]
		recovery := h.opts.recovery
		h.mu.Unlock()
		if dst == nil {
			f.release()
			if recovery {
				continue // destination already torn down; drop the frame
			}
			h.fail(fmt.Errorf("mpi: hub: frame for unknown rank %d", f.Dst))
			return
		}
		err = dst.send(f)
		f.release() // forwarded (or failed): recycle a raw frame's buffer
		if err != nil {
			if recovery || errors.Is(err, errHubConnDead) {
				// The destination's fate is (or will be) settled by its own
				// connection machinery; drop the frame.
				continue
			}
			h.fail(fmt.Errorf("mpi: hub: forwarding to rank %d: %w", f.Dst, err))
			return
		}
	}
}

// readerBroken handles a route loop's read error: suspend the session when
// it can resume, otherwise retire the rank (recovery) or fail the world.
func (h *Hub) readerBroken(hc *hubConn, conn net.Conn, err error) {
	hc.mu.Lock()
	if hc.dead || hc.conn != conn {
		// Stale error from a connection a resume already replaced.
		hc.mu.Unlock()
		return
	}
	if hc.canSuspendLocked() {
		hc.suspendLocked()
		hc.mu.Unlock()
		return
	}
	hc.retireLocked()
	hc.mu.Unlock()
	if h.connDropped(hc) {
		return
	}
	h.fail(fmt.Errorf("mpi: hub: connection to rank %d: %w", hc.rank, err))
}

// connDropped absorbs a worker connection breaking mid-run under recovery:
// the rank is recorded failed, survivors are notified, and the rank is
// counted done so the world still winds down. It reports whether the drop
// was absorbed (recovery hub, world already formed).
func (h *Hub) connDropped(hc *hubConn) bool {
	h.mu.Lock()
	active := h.opts.recovery && h.complete
	already := h.failedRanks[hc.rank]
	h.mu.Unlock()
	if !active {
		return false
	}
	if !already {
		data, err := encodeValue(abortInfo{Rank: hc.rank, Msg: "connection to hub lost"})
		if err == nil {
			h.rankFailedHub(hc.rank, data)
		}
	}
	h.workerDoneConn(hc)
	return true
}

// suspicionExpired fires when a suspected rank's grace window elapses
// without a successful resume: the suspicion is promoted to failure
// (recovery hubs) or the world is revoked (plain hubs).
func (h *Hub) suspicionExpired(hc *hubConn) {
	hc.mu.Lock()
	if hc.dead || !hc.suspended {
		hc.mu.Unlock()
		return
	}
	hc.retireLocked()
	hc.mu.Unlock()
	if h.opts.recovery {
		data, err := encodeValue(abortInfo{Rank: hc.rank, Msg: "connection to hub lost (suspicion window expired)"})
		if err == nil {
			h.rankFailedHub(hc.rank, data)
		}
		h.workerDoneConn(hc)
		return
	}
	h.fail(fmt.Errorf("mpi: hub: rank %d did not reconnect within %s; world revoked", hc.rank, h.opts.suspicion))
}

// sessionLost handles a resume that is provably impossible (a replay gap
// before the worker's acknowledged sequence): the rank fails immediately
// rather than burning the rest of its grace window.
func (h *Hub) sessionLost(hc *hubConn) {
	if h.opts.recovery {
		data, err := encodeValue(abortInfo{Rank: hc.rank, Msg: "hub session lost (replay gap; resume impossible)"})
		if err == nil {
			h.rankFailedHub(hc.rank, data)
		}
		h.workerDoneConn(hc)
		return
	}
	h.fail(fmt.Errorf("mpi: hub: session to rank %d lost (replay gap; resume impossible)", hc.rank))
}

// workerDoneConn counts one connection's slot as finished, exactly once per
// incarnation; when the last slot reports, the hub shuts the world down.
func (h *Hub) workerDoneConn(hc *hubConn) {
	h.mu.Lock()
	if hc.doneCounted {
		h.mu.Unlock()
		return
	}
	hc.doneCounted = true
	h.done++
	last := h.done == h.np
	h.mu.Unlock()
	if last {
		h.shutdown()
	}
}

// rankFailedHub records a recoverable rank failure, announces it to the
// survivors (who interrupt their pending operations), and settles any open
// agreement that was waiting on the failed rank.
func (h *Hub) rankFailedHub(origin int, payload []byte) {
	h.mu.Lock()
	if !h.opts.recovery || h.failedRanks[origin] {
		h.mu.Unlock()
		return
	}
	h.failedRanks[origin] = true
	others := make([]*hubConn, 0, len(h.conns))
	for r, c := range h.conns {
		if r != origin && !h.failedRanks[r] {
			others = append(others, c)
		}
	}
	h.mu.Unlock()
	for _, c := range others {
		_ = c.send(frame{Tag: tagFailed, Data: payload})
	}
	h.settleAgreements()
}

// agreeRequest folds one worker's agreement contribution in and settles.
func (h *Hub) agreeRequest(payload []byte) {
	var req agreeReq
	if err := decodeValue(payload, &req); err != nil {
		h.fail(fmt.Errorf("mpi: hub: undecodable agreement request: %w", err))
		return
	}
	h.mu.Lock()
	key := agreeKey{ctx: req.Ctx, seq: req.Seq}
	a := h.agreements[key]
	if a == nil {
		a = &hubAgree{members: req.Members, masks: make(map[int]uint64)}
		h.agreements[key] = a
	}
	a.masks[req.Rank] = req.Mask
	h.mu.Unlock()
	h.settleAgreements()
}

// settleAgreements applies the decision rule to every open instance: decide
// once every live member has contributed, with the decided mask the union
// of the contributions and the hub's own view of the failed members. The
// decision goes to every live contributor.
func (h *Hub) settleAgreements() {
	type decided struct {
		conns []*hubConn
		resp  agreeResp
	}
	var out []decided
	h.mu.Lock()
	for key, a := range h.agreements {
		decision := uint64(0)
		ready := true
		for _, m := range a.members {
			if h.failedRanks[m] {
				decision |= 1 << uint(m)
				continue
			}
			if _, ok := a.masks[m]; !ok {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		for _, mask := range a.masks {
			decision |= mask
		}
		var conns []*hubConn
		for r := range a.masks {
			if c := h.conns[r]; c != nil && !h.failedRanks[r] {
				conns = append(conns, c)
			}
		}
		delete(h.agreements, key)
		out = append(out, decided{conns: conns, resp: agreeResp{Ctx: key.ctx, Seq: key.seq, Mask: decision}})
	}
	h.mu.Unlock()
	for _, d := range out {
		data, err := encodeValue(d.resp)
		if err != nil {
			continue
		}
		for _, c := range d.conns {
			_ = c.send(frame{Tag: tagAgreeResp, Data: data})
		}
	}
}

// broadcastRevoke fans one worker's context revoke out to its peers.
func (h *Hub) broadcastRevoke(origin int, ctx int64) {
	h.mu.Lock()
	others := make([]*hubConn, 0, len(h.conns))
	for r, c := range h.conns {
		if r != origin && !h.failedRanks[r] {
			others = append(others, c)
		}
	}
	h.mu.Unlock()
	for _, c := range others {
		_ = c.send(frame{Tag: tagRevoke, Ctx: ctx})
	}
}

// FailedRanks reports the world ranks that failed recoverably, sorted. A
// recovered run has Wait() == nil and a non-empty FailedRanks. Ranks that
// failed but were later respawned into their slots are not included.
func (h *Hub) FailedRanks() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.failedRanks))
	for r := range h.failedRanks {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Done returns a channel that is closed when the hub has wound the world
// down, cleanly or on failure. External respawn supervisors (mpirun
// -respawn with -transport procs) select on it to stop relaunching a dead
// rank once the job is over.
func (h *Hub) Done() <-chan struct{} { return h.finished }

// Epoch reports the hub's membership epoch: the number of respawn
// re-admissions it has performed.
func (h *Hub) Epoch() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch
}

// rankAborted records a worker-reported failure and broadcasts the revoke
// to every other worker, which poisons their mailboxes. The world still
// winds down through the normal done protocol: every surviving rank's main
// returns promptly with ErrWorldAborted.
func (h *Hub) rankAborted(origin int, payload []byte) {
	var info abortInfo
	if err := decodeValue(payload, &info); err != nil {
		info = abortInfo{Rank: origin, Msg: "rank failed (undecodable abort report)"}
	}
	h.mu.Lock()
	if h.abortErr == nil {
		h.abortErr = info.err()
	}
	others := make([]*hubConn, 0, len(h.conns))
	for r, c := range h.conns {
		if r != origin {
			others = append(others, c)
		}
	}
	h.mu.Unlock()
	for _, c := range others {
		_ = c.send(frame{Tag: tagAbort, Data: payload})
	}
}

// fail records the first error and shuts the hub down, unless the job had
// already completed cleanly. Before tearing connections down it broadcasts
// the revoke to every worker, so survivors blocked in a receive observe
// ErrWorldAborted naming the failure rather than a bare disconnect.
func (h *Hub) fail(err error) {
	h.mu.Lock()
	alreadyFinished := h.done == h.np
	if h.err == nil && !alreadyFinished {
		h.err = err
	}
	conns := make([]*hubConn, 0, len(h.conns))
	for _, c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	if alreadyFinished {
		return
	}
	if data, encErr := encodeValue(abortInfo{Rank: -1, Msg: err.Error()}); encErr == nil {
		for _, c := range conns {
			_ = c.send(frame{Tag: tagAbort, Data: data})
		}
	}
	h.shutdown()
}

func (h *Hub) shutdown() {
	h.mu.Lock()
	conns := h.conns
	h.conns = map[int]*hubConn{}
	if h.formTimer != nil {
		h.formTimer.Stop()
	}
	h.mu.Unlock()
	h.ln.Close()
	for _, c := range conns {
		c.mu.Lock()
		c.retireLocked()
		if c.conn != nil {
			c.conn.Close()
		}
		c.mu.Unlock()
	}
	h.finishOnce.Do(func() { close(h.finished) })
}

// Wait blocks until every rank has reported completion (or the hub failed)
// and returns the hub's error state: nil for a clean run, the revoke error
// (wrapping the originating rank's failure) for an aborted world, or the
// hub's own first failure.
func (h *Hub) Wait() error {
	<-h.finished
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.abortErr != nil {
		return h.abortErr
	}
	if h.done == h.np {
		return nil
	}
	return h.err
}

// Close shuts the hub down immediately.
func (h *Hub) Close() { h.shutdown() }

// Worker connection states.
const (
	tcpActive       = iota // connection healthy, frames flowing
	tcpReconnecting        // connection broken, redialing within the grace window
	tcpDead                // transport over (clean close, grace expiry, or fatal error)
)

// tcpTransport is one rank's side of the TCP world: the hub connection, the
// framing layers, and — on wire v2 — the session state that lets a broken
// connection be redialed and resumed instead of killing the rank. mu guards
// all mutable state; cond wakes the reader (parked during reconnects) and
// anyone waiting for the reader to park.
type tcpTransport struct {
	addr    string
	rank    int
	wire    int
	noDelay *bool

	mu         sync.Mutex
	cond       *sync.Cond
	conn       net.Conn
	w          *wireWriter
	rd         *wireReader
	state      int
	deadErr    error
	grace      time.Duration // suspicion window learned from the start frame
	gen        int           // connection generation; stale errors are discarded by it
	readerBusy bool          // a recvFrame is inside readFrame without the lock
	closing    bool          // drain started: the rank is done and tearing down
	send       sendSession
	recv       recvSession
}

func newTCPTransport(addr string, rank int, conn net.Conn, wire int, noDelay *bool) *tcpTransport {
	t := &tcpTransport{
		addr:    addr,
		rank:    rank,
		wire:    wire,
		noDelay: noDelay,
		conn:    conn,
		w:       newWireWriter(conn, wire),
		rd:      newWireReader(conn),
	}
	t.cond = sync.NewCond(&t.mu)
	t.rd.v1 = wire >= wireVersion
	t.rd.v2 = wire >= wireVersion2
	if t.rd.v2 {
		t.rd.onAck = func(ack uint64) {
			t.mu.Lock()
			t.send.trim(ack)
			if len(t.send.replay) == 0 {
				t.cond.Broadcast() // a drain may be waiting for the tail to clear
			}
			t.mu.Unlock()
		}
	}
	return t
}

// Send frames one outbound frame. On a v2 session the frame is sequenced
// and captured for replay; a write error with a grace window configured
// moves the transport into reconnection (the frame is safe in the replay
// buffer) instead of surfacing the error. writeFrame and friends serialize
// typed payloads on the spot, so frame.Val is fully consumed by the time
// Send returns (the wireCapable contract).
func (t *tcpTransport) Send(f frame) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.state {
	case tcpDead:
		return fmt.Errorf("mpi: tcp send: %w", t.deadErr)
	case tcpReconnecting:
		seq := t.send.nextSeq()
		buf, err := t.w.encodeFrame(f, seq)
		if err != nil {
			return err
		}
		t.send.record(seq, buf)
		return nil
	}
	if t.wire < wireVersion2 {
		if err := t.w.writeFrame(f); err != nil {
			t.dieLocked(err)
			return fmt.Errorf("mpi: tcp send: %w", err)
		}
		return nil
	}
	seq := t.send.nextSeq()
	if n := rawPayloadSize(f); n > replayFrameMax {
		// Stream the large frame without capturing it (the zero-copy path);
		// its sequence becomes a replay gap. If the write breaks, capture it
		// after the fact — the payload is still intact — so the resume is
		// not doomed by the very frame that broke it.
		err := t.w.writeFrameDirect(f, seq)
		if err == nil {
			err = t.w.flush()
		}
		if err == nil {
			t.send.gap(seq)
			return nil
		}
		if t.grace > 0 {
			if buf, eerr := t.w.encodeFrame(f, seq); eerr == nil {
				t.send.record(seq, buf)
			} else {
				t.send.gap(seq)
			}
			t.enterReconnectLocked(err)
			return nil
		}
		t.dieLocked(err)
		return fmt.Errorf("mpi: tcp send: %w", err)
	}
	buf, err := t.w.encodeFrame(f, seq)
	if err != nil {
		return err
	}
	werr := t.w.writeEncoded(buf)
	if werr == nil {
		werr = t.w.flush()
	}
	// Record after the write: record may evict old frames under budget
	// pressure, and the buffer being written must not be reclaimed mid-write.
	t.send.record(seq, buf)
	if werr != nil {
		if t.grace > 0 {
			t.enterReconnectLocked(werr)
			return nil
		}
		t.dieLocked(werr)
		return fmt.Errorf("mpi: tcp send: %w", werr)
	}
	return nil
}

// recvFrame reads the next frame from the hub, riding out reconnections:
// while the transport is redialing, the reader parks on the condition
// variable; read errors from torn-down connections are discarded by the
// generation counter. Sequenced frames are dup-suppressed and acknowledged
// through the receive session.
func (t *tcpTransport) recvFrame() (frame, error) {
	for {
		t.mu.Lock()
		for t.state == tcpReconnecting {
			t.cond.Wait()
		}
		if t.state == tcpDead {
			err := t.deadErr
			t.mu.Unlock()
			return frame{}, err
		}
		rd := t.rd
		gen := t.gen
		t.readerBusy = true
		t.mu.Unlock()

		f, seq, err := rd.readFrame()

		t.mu.Lock()
		t.readerBusy = false
		t.cond.Broadcast()
		if err != nil {
			if t.gen != gen || t.state != tcpActive {
				// The transport already moved on (reconnect or death): this
				// error belongs to the torn-down connection.
				t.mu.Unlock()
				continue
			}
			if t.wire >= wireVersion2 && t.grace > 0 &&
				!(t.closing && len(t.send.replay) == 0) {
				// Not worth resuming once the rank is done and its tail is
				// acknowledged: the hub retiring the session closes the
				// connection, and that EOF is teardown, not a break.
				t.enterReconnectLocked(err)
				t.mu.Unlock()
				continue
			}
			t.dieLocked(err)
			t.mu.Unlock()
			return frame{}, err
		}
		if t.gen != gen {
			// A frame from a connection a reconnect already replaced;
			// resume retransmission will deliver it again in order.
			f.release()
			t.mu.Unlock()
			continue
		}
		if t.wire >= wireVersion2 && seq > 0 {
			dup, ackNow := t.recv.note(seq)
			if dup {
				t.mu.Unlock()
				f.release()
				continue
			}
			if ackNow && t.state == tcpActive {
				_ = t.w.writeAck(t.recv.seqIn)
			}
		}
		t.mu.Unlock()
		return f, nil
	}
}

// enterReconnectLocked moves an active transport into reconnection: the
// broken connection is closed, the generation advances (so its pending read
// error is discarded), and the redial loop starts. Caller holds t.mu.
func (t *tcpTransport) enterReconnectLocked(cause error) {
	if t.state != tcpActive {
		return
	}
	t.state = tcpReconnecting
	t.gen++
	if t.conn != nil {
		t.conn.Close()
	}
	go t.reconnect(cause)
}

// dieLocked retires the transport for good. Caller holds t.mu.
func (t *tcpTransport) dieLocked(cause error) {
	if t.state == tcpDead {
		return
	}
	t.state = tcpDead
	t.deadErr = cause
	t.gen++
	if t.conn != nil {
		t.conn.Close()
	}
	t.send.drop()
	t.cond.Broadcast()
}

// reconnect redials the hub until the grace window closes, then performs
// the resume handshake: a fresh-encoder hello{Resume, Ack} (the persistent
// session encoders stay untouched), a 9-byte raw reply carrying the hub's
// acknowledged sequence, and retransmission of the unacknowledged tail.
func (t *tcpTransport) reconnect(cause error) {
	deadline := time.Now().Add(t.grace)
	backoff := 2 * time.Millisecond
	for {
		t.mu.Lock()
		if t.state != tcpReconnecting {
			t.mu.Unlock()
			return
		}
		ack := t.recv.seqIn
		t.mu.Unlock()
		if time.Now().After(deadline) {
			t.mu.Lock()
			t.dieLocked(fmt.Errorf("%w: grace window (%s) expired: %v", ErrSessionLost, t.grace, cause))
			t.mu.Unlock()
			return
		}
		conn, err := net.Dial("tcp", t.addr)
		if err != nil {
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		if t.noDelay != nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetNoDelay(*t.noDelay)
			}
		}
		// A fresh one-shot encoder for the resume hello: the hub reads it
		// with a fresh decoder, so the session's persistent gob streams —
		// which must survive the swap byte-exact — are never touched.
		if err := gob.NewEncoder(conn).Encode(hello{Rank: t.rank, Wire: t.wire, Resume: true, Ack: ack}); err != nil {
			conn.Close()
			time.Sleep(backoff)
			continue
		}
		var reply [1 + seqLen]byte
		_ = conn.SetReadDeadline(time.Now().Add(resumeReplyTimeout))
		if _, err := io.ReadFull(conn, reply[:]); err != nil {
			conn.Close()
			time.Sleep(backoff)
			continue
		}
		_ = conn.SetReadDeadline(time.Time{})
		if reply[0] == 0 {
			conn.Close()
			t.mu.Lock()
			t.dieLocked(fmt.Errorf("%w: hub refused the resume", ErrSessionLost))
			t.mu.Unlock()
			return
		}
		hubAck := le.Uint64(reply[1:])

		t.mu.Lock()
		if t.state != tcpReconnecting {
			t.mu.Unlock()
			conn.Close()
			return
		}
		for t.readerBusy {
			t.cond.Wait()
		}
		if t.state != tcpReconnecting {
			t.mu.Unlock()
			conn.Close()
			return
		}
		entries, ok := t.send.pending(hubAck)
		if !ok {
			conn.Close()
			t.dieLocked(fmt.Errorf("%w: replay gap before the hub's acknowledged sequence", ErrSessionLost))
			t.mu.Unlock()
			return
		}
		t.conn = conn
		t.w.resetConn(conn)
		t.rd.resetConn(conn)
		t.recv.sinceAck = 0
		t.gen++
		t.state = tcpActive
		// Wake the parked reader before retransmitting: it drains the hub's
		// concurrent retransmission while ours flows the other way, keeping
		// the kernel buffers from filling in both directions at once. (The
		// reader re-acquires the lock only between frames, so the tail below
		// goes out contiguously before any new Send interleaves.)
		t.cond.Broadcast()
		var werr error
		for _, e := range entries {
			if werr = t.w.writeEncoded(e.buf); werr != nil {
				break
			}
		}
		if werr == nil {
			werr = t.w.flush()
		}
		if werr != nil {
			// The fresh connection broke during retransmission; go around.
			// The hub side stays suspended on its original grace timer.
			t.enterReconnectLocked(werr)
			t.mu.Unlock()
			return
		}
		t.mu.Unlock()
		return
	}
}

// severConnection implements disconnectCapable: FaultDisconnect closes the
// live connection underneath the session, exactly like a NAT timeout. The
// session machinery observes the break and reconnects within the grace
// window (or dies, if no HubSuspicion was configured).
func (t *tcpTransport) severConnection() {
	t.mu.Lock()
	if t.state == tcpActive && t.conn != nil {
		t.conn.Close()
	}
	t.mu.Unlock()
}

// corruptNextFrame implements corruptCapable: FaultCorrupt arms a one-shot
// bit flip on the next raw frame's payload, applied at wire-write time only
// — the captured replay copy stays clean, so the retransmission after the
// CRC failure heals the corruption.
func (t *tcpTransport) corruptNextFrame() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wire < wireVersion2 || t.state == tcpDead {
		return false
	}
	t.w.corruptNext = true
	return true
}

// drain blocks until the session has settled: no resume in flight and every
// captured frame acknowledged by the hub. A send-only rank can reach the end
// of main with its entire tail — the done control frame included — either
// parked in the replay buffer mid-resume or flushed to a socket the hub has
// already condemned (a CRC failure suspends the connection and discards
// everything after the corrupt frame); closing the transport at that moment
// would strand frames the hub still needs. The wait is bounded by the grace
// window plus slack, because every path out of a broken session — resume,
// refusal, expiry — resolves within it. Sessions without a grace window have
// nothing to wait for: their writes either reached the socket or killed the
// transport on the spot.
func (t *tcpTransport) drain() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closing = true
	if t.wire < wireVersion2 || t.grace <= 0 {
		return
	}
	timedOut := false
	timer := time.AfterFunc(t.grace+time.Second, func() {
		t.mu.Lock()
		timedOut = true
		t.mu.Unlock()
		t.cond.Broadcast()
	})
	defer timer.Stop()
	for !timedOut && t.state != tcpDead &&
		(t.state == tcpReconnecting || len(t.send.replay) > 0) {
		t.cond.Wait()
	}
}

func (t *tcpTransport) Close() error {
	t.mu.Lock()
	t.dieLocked(errors.New("mpi: tcp transport closed"))
	t.mu.Unlock()
	return nil
}

// wiresTyped: a v1+ connection raw-encodes whitelisted typed payloads
// synchronously inside Send (see wireCapable in transport.go).
func (t *tcpTransport) wiresTyped() bool { return t.wire >= wireVersion }

// defaultDialRetry is JoinTCP's dial budget when WithDialRetry is not set:
// long enough to ride out a hub that is still binding its listener, short
// enough that a dead address fails the worker promptly.
const defaultDialRetry = 3 * time.Second

// dialHub dials addr, retrying failed dials with exponential backoff and
// jitter until the budget elapses — so launching workers before the hub is
// a race the runtime absorbs instead of a crash.
func dialHub(addr string, budget time.Duration) (net.Conn, error) {
	if budget == 0 {
		budget = defaultDialRetry
	}
	conn, err := net.Dial("tcp", addr)
	if err == nil || budget < 0 {
		if err != nil {
			return nil, fmt.Errorf("mpi: joining hub %s: %w", addr, err)
		}
		return conn, nil
	}
	deadline := time.Now().Add(budget)
	backoff := 5 * time.Millisecond
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("mpi: joining hub %s (retried for %s): %w", addr, budget, err)
		}
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
	}
}

// JoinTCP connects to the hub at addr as the given rank of an np-rank world
// and runs main there: the worker half of a distributed "mpirun". It
// returns when main returns (converting panics to errors, as Run does).
// Dials are retried with backoff while the hub is still coming up. If this
// rank fails, the failure is reported to the hub, which revokes the world
// for every peer; if a peer fails first, main's blocked operations return
// ErrWorldAborted naming the failing rank.
func JoinTCP(addr string, rank, np int, main func(c *Comm) error, opts ...Option) error {
	return joinHub(addr, "", rank, np, false, main, opts...)
}

// RejoinTCP connects a relaunched process back into a running world as the
// given (previously failed) rank: the worker half of respawn recovery
// (mpirun -respawn). The hub retires the dead incarnation, re-admits the
// rank into its old slot at the original world width, bumps the membership
// epoch, and announces the rejoin to the survivors. The respawned main
// starts from the beginning; its first operation fails with the retryable
// membership-changed error, which routes it into the program's Restored +
// checkpoint-restore path, exactly like the survivors. Requires WithRecovery
// (or WithRespawn) here and HubRecovery on the hub.
func RejoinTCP(addr string, rank, np int, main func(c *Comm) error, opts ...Option) error {
	return joinHub(addr, "", rank, np, true, main, opts...)
}

// joinHub is the shared worker body behind JoinTCP, RejoinTCP, and JoinShm:
// dial the hub, optionally map the shared-memory segment at segPath as the
// data plane (control frames and non-shm pairs keep the hub connection),
// then run the start/run/done protocol. respawn re-admits a previously
// failed rank instead of registering a new one.
func joinHub(addr, segPath string, rank, np int, respawn bool, main func(c *Comm) error, opts ...Option) error {
	if rank < 0 || rank >= np {
		return fmt.Errorf("%w: %d (np %d)", ErrInvalidRank, rank, np)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if respawn {
		// A respawned incarnation must not re-run the fault plan: the injected
		// kill (or disconnect) that took its predecessor down has done its
		// work, and re-injecting it would kill every relaunch deterministically.
		cfg.faults = nil
	}
	if !cfg.recovery && respawn {
		return fmt.Errorf("mpi: RejoinTCP requires WithRecovery (or WithRespawn)")
	}

	conn, err := dialHub(addr, cfg.dialRetry)
	if err != nil {
		return err
	}
	if cfg.noDelay != nil {
		if tc, ok := conn.(*net.TCPConn); ok {
			if err := tc.SetNoDelay(*cfg.noDelay); err != nil {
				conn.Close()
				return fmt.Errorf("mpi: setting TCP_NODELAY: %w", err)
			}
		}
	}
	wireVer := wireVersion2
	if cfg.wireLegacy {
		wireVer = 0
	}
	if cfg.wireCompat != nil {
		wireVer = *cfg.wireCompat
		if wireVer < 0 {
			wireVer = 0
		}
		if wireVer > wireVersion2 {
			wireVer = wireVersion2
		}
	}
	t := newTCPTransport(addr, rank, conn, wireVer, cfg.noDelay)
	// The data-plane transport: the hub connection alone, or the shm
	// endpoint layered over it. The segment must be attached before the
	// hello goes out, so every peer's sticky shm-vs-TCP routing decision —
	// made no earlier than the post-hello start signal — sees this rank.
	var data Transport = t
	var shmT *shmTransport
	if segPath != "" {
		st, serr := newShmTransport(segPath, rank, np, t)
		if serr != nil {
			t.Close()
			return serr
		}
		if st != nil {
			shmT = st
			data = st
		}
		// st == nil: segment belongs to another host; stay on pure TCP.
	}
	defer data.Close()

	if err := t.w.writeHello(hello{Rank: rank, Wire: wireVer, Respawn: respawn}); err != nil {
		return fmt.Errorf("mpi: hello to hub: %w", err)
	}

	box := newMailbox()

	// The start frame arrives before any routed traffic. A pre-start abort
	// (another worker failed the handshake, or formation timed out) arrives
	// here instead of the start signal.
	start, err := t.recvFrame()
	if err != nil {
		return fmt.Errorf("mpi: waiting for world start: %w", err)
	}
	var si startInfo
	switch start.Tag {
	case tagStart:
		if len(start.Data) > 0 {
			if derr := decodeValue(start.Data, &si); derr != nil {
				return fmt.Errorf("mpi: undecodable start signal: %w", derr)
			}
		}
	case tagAbort:
		var info abortInfo
		if err := decodeValue(start.Data, &info); err != nil {
			return fmt.Errorf("mpi: world aborted before start: %w", err)
		}
		return fmt.Errorf("mpi: rank %d: %w", rank, info.err())
	default:
		return fmt.Errorf("mpi: unexpected frame before start signal (tag %d)", start.Tag)
	}
	if si.SuspicionNs > 0 && wireVer >= wireVersion2 {
		// Arm session resumption: from here on a broken connection is a
		// reconnect-and-resume episode, not a death sentence.
		t.mu.Lock()
		t.grace = time.Duration(si.SuspicionNs)
		t.mu.Unlock()
	}

	host, herr := os.Hostname()
	if herr != nil || host == "" {
		host = "localhost"
	}
	names := make([]string, np)
	for i := range names {
		if i < len(cfg.names) && cfg.names[i] != "" {
			names[i] = cfg.names[i]
		} else {
			names[i] = host
		}
	}
	boxes := make([]*mailbox, np)
	boxes[rank] = box

	transport := cfg.wrapTransport(data)
	w := &World{
		np:        np,
		transport: transport,
		boxes:     boxes,
		names:     names,
		gate:      cfg.gate,
		epoch:     time.Now(),
		typed:     cfg.typedWorld(transport), // always false: both wires serialize
		wire:      cfg.wireWorld(transport),  // v1+ framing/shm: raw-encode in Send, uncopied
		deadline:  cfg.deadline,
		faults:    cfg.faultT,
		nodeOf:    cfg.nodeOf,
		hierMode:  cfg.hierMode,
	}
	if cfg.recovery {
		if np > maxRecoveryRanks {
			return fmt.Errorf("mpi: WithRecovery supports at most %d ranks, got %d", maxRecoveryRanks, np)
		}
		w.recov = newRecoveryState(w)
		// Control frames bypass the decorated transport: a fault plan that
		// killed this rank must not also sever its recovery reporting.
		w.recov.ctrlSend = t.Send
		// A respawned worker starts life already in the hub's membership
		// epoch, carrying the hub's view of the still-failed ranks: its very
		// first operation on the stale world communicator must be interrupted
		// into the Restored path.
		w.recov.seedEpoch(si.Epoch, si.FailedMask)
	}
	if shmT != nil {
		shmT.bind(w, box)
		w.shmT = shmT
		// Recovery hooks: a failed peer's staging space is reclaimed and its
		// blocked senders released the moment the failure is recorded; a
		// respawned peer's pair is pinned onto the TCP fallback (the new
		// process shares no segment with this one).
		w.peerFailed = shmT.peerFailed
		w.peerRejoined = shmT.peerRejoined
		shmT.startPolling()
		if h := shmTestHook; h != nil {
			h(shmT)
		}
	}

	// The read loop demultiplexes routed traffic from control frames: a
	// broadcast revoke poisons this rank's mailbox; heartbeat pings are
	// answered from here, so a rank stuck in user code still pongs (the
	// heartbeat detects dead processes, WithDeadline detects stuck ranks).
	// recvFrame rides out session resumes internally; an error here means
	// the transport is dead for good.
	go func() {
		for {
			f, err := t.recvFrame()
			if err != nil {
				w.abort(fmt.Errorf("mpi: rank %d: connection to hub lost: %w", rank, err))
				box.close()
				return
			}
			switch f.Tag {
			case tagAbort:
				var info abortInfo
				if err := decodeValue(f.Data, &info); err != nil {
					info = abortInfo{Rank: -1, Msg: "world aborted (undecodable revoke)"}
				}
				w.abort(&remoteAbortError{rank: info.Rank, msg: info.Msg})
			case tagFailed:
				var info abortInfo
				if err := decodeValue(f.Data, &info); err == nil && w.recov != nil {
					w.rankFailed(info.Rank, fmt.Errorf("%w: rank %d: %s", ErrRankFailed, info.Rank, info.Msg))
				}
			case tagRejoin:
				var info rejoinInfo
				if err := decodeValue(f.Data, &info); err == nil && w.recov != nil {
					w.rankRejoined(info.Rank, info.Epoch)
				}
			case tagAgreeResp:
				var resp agreeResp
				if err := decodeValue(f.Data, &resp); err == nil && w.recov != nil {
					w.recov.deliverDecision(resp)
				}
			case tagRevoke:
				if w.recov != nil {
					w.revokeCtx(f.Ctx)
				}
			case tagPing:
				_ = t.Send(frame{Dst: ctrlDst, Tag: tagPong})
			default:
				box.deliver(f)
			}
		}
	}()

	runErr := runRank(w, rank, main)
	if runErr == nil {
		_ = t.Send(frame{Dst: ctrlDst, Tag: tagDone})
		// Settle the session before the deferred Close tears it down: a rank
		// that only ever sent may owe the hub its whole unacknowledged tail.
		t.drain()
		return nil
	}
	if errors.Is(runErr, ErrWorldAborted) {
		// A victim of someone else's failure: the revoke is already
		// propagating, so just finish the done protocol.
		_ = t.Send(frame{Dst: ctrlDst, Tag: tagDone})
		return runErr
	}
	if w.recov != nil {
		// Recoverable failure: record it locally (interrupts this process's
		// own pending requests), report it to the hub — which notifies the
		// survivors and settles agreements — and complete the done protocol.
		// The world lives on without this rank.
		w.rankFailed(rank, runErr)
		if data, encErr := encodeValue(abortInfo{Rank: rank, Msg: runErr.Error()}); encErr == nil {
			_ = t.Send(frame{Dst: ctrlDst, Tag: tagFailed, Data: data})
		}
		_ = t.Send(frame{Dst: ctrlDst, Tag: tagDone})
		t.drain() // the failure report must not be stranded mid-resume
		return runErr
	}
	// This rank originated the failure: revoke locally (unblocks any of its
	// own pending Irecv goroutines), report to the hub so peers revoke too,
	// then complete the done protocol. The abort must precede done — the
	// hub stops reading this connection at done.
	w.abort(runErr)
	if data, encErr := encodeValue(abortInfo{Rank: rank, Msg: runErr.Error()}); encErr == nil {
		_ = t.Send(frame{Dst: ctrlDst, Tag: tagAbort, Data: data})
	}
	_ = t.Send(frame{Dst: ctrlDst, Tag: tagDone})
	return &abortError{cause: runErr}
}

// RunTCP executes main as an SPMD program of np ranks connected through a
// loopback TCP hub, all within the calling process: functionally Run, but
// exercising the real network transport. It is the single-machine analogue
// of a cluster job and the transport the ablation benchmarks compare
// against the in-process one. Under WithRespawn, a failed rank is
// relaunched (via RejoinTCP semantics) into its old slot at the original
// world width.
func RunTCP(np int, main func(c *Comm) error, opts ...Option) error {
	return runHub(np, "", main, opts...)
}

// runHub is the shared single-process launcher behind RunTCP and RunShm: a
// loopback hub plus np joinHub goroutines, with segPath selecting the data
// plane ("" = TCP only).
func runHub(np int, segPath string, main func(c *Comm) error, opts ...Option) error {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	hubOpts := cfg.hubOpts
	if cfg.recovery {
		hubOpts = append(append([]HubOption(nil), hubOpts...), HubRecovery())
	}
	hub, err := StartHub("127.0.0.1:0", np, hubOpts...)
	if err != nil {
		return err
	}
	defer hub.Close()

	errs := make([]error, np)
	var wg sync.WaitGroup
	wg.Add(np)
	for rank := 0; rank < np; rank++ {
		go func(rank int) {
			defer wg.Done()
			err := joinHub(hub.Addr(), segPath, rank, np, false, main, opts...)
			if cfg.respawn {
				// Respawn supervision: relaunch the dead rank into its old
				// slot. The rejoin is pure TCP even on shm worlds — a
				// respawned process shares no segment with the survivors, and
				// the hub's rejoin broadcast pins the survivors' pairs to it
				// onto the TCP fallback.
				for attempt := 1; err != nil && !errors.Is(err, ErrWorldAborted) &&
					attempt <= maxRespawnsPerRank; attempt++ {
					select {
					case <-hub.finished:
						errs[rank] = err
						return
					default:
					}
					err = joinHub(hub.Addr(), "", rank, np, true, main, opts...)
				}
			}
			errs[rank] = err
		}(rank)
	}
	wg.Wait()
	hubErr := hub.Wait()

	// Recovery verdict: if the hub wound the world down cleanly and at
	// least one rank completed, the survivors carried the run to the end —
	// report success, as Run does.
	if cfg.recovery && hubErr == nil {
		for _, e := range errs {
			if e == nil {
				return nil
			}
		}
	}

	// Prefer the originating failure: a victim's error carries only the
	// remote description of the cause, while the originator's JoinTCP
	// return still wraps the rank's own error with errors.Is identity.
	var victim error
	for _, e := range errs {
		if e == nil {
			continue
		}
		var remote *remoteAbortError
		if errors.As(e, &remote) {
			if victim == nil {
				victim = e
			}
			continue
		}
		return e
	}
	if hubErr != nil {
		return hubErr
	}
	return victim
}
