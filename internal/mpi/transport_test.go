package mpi

import (
	"fmt"
	"testing"
	"time"
)

// TestLatencyPreservesPerPairFIFO pins the per-pair FIFO guarantee under
// simulated latency, so a future async-delivery implementation (one that
// stops sleeping on the sender's goroutine) cannot silently reorder
// messages. Rank 0 interleaves sequence-numbered sends to ranks 1 and 2
// under deliberately asymmetric pair latencies; each receiver must still
// observe its own stream strictly in send order, with wildcard receives.
func TestLatencyPreservesPerPairFIFO(t *testing.T) {
	const msgs = 15
	lat := func(src, dst int) time.Duration {
		// Slow pair (0->1) vs fast pair (0->2): an implementation that
		// delivered each pair on its own clock would let dst 2's later
		// messages overtake dst 1's earlier ones in *global* time, which is
		// allowed — but within a pair, order must hold.
		if dst == 1 {
			return 2 * time.Millisecond
		}
		return 0
	}
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, 0, i); err != nil {
					return err
				}
				if err := c.Send(2, 0, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			var got int
			if _, err := c.Recv(AnySource, AnyTag, &got); err != nil {
				return err
			}
			if got != i {
				return fmt.Errorf("rank %d: message %d arrived with sequence %d (reordered)", c.Rank(), i, got)
			}
		}
		return nil
	}, WithLatency(lat))
	if err != nil {
		t.Fatal(err)
	}
}

// TestIndexedMailboxMixedExactAndWildcard stresses the mailbox's exact-key
// index against concurrent wildcard receives: frames under many (src, tag)
// keys, drained by a mix of exact and wildcard receives, must each be
// delivered exactly once and in per-key order.
func TestIndexedMailboxMixedExactAndWildcard(t *testing.T) {
	const perTag = 10
	err := Run(3, func(c *Comm) error {
		if c.Rank() != 0 {
			for i := 0; i < perTag; i++ {
				for tag := 0; tag < 3; tag++ {
					if err := c.Send(0, tag, c.Rank()*1000+tag*100+i); err != nil {
						return err
					}
				}
			}
			return nil
		}
		// Exact receives drain the (src=1, tag=0) stream through the index
		// while frames under five other keys pile up around it; the
		// wildcard drain then takes the backlog strictly by arrival order
		// per key. (Wildcards must come second: a wildcard receive may
		// legally consume any stream, including the exact one.)
		seen := map[int]int{} // (src*10+tag) -> next expected i
		for i := 0; i < perTag; i++ {
			var got int
			if _, err := c.Recv(1, 0, &got); err != nil {
				return err
			}
			if got != 1000+i {
				return fmt.Errorf("exact stream: got %d, want %d", got, 1000+i)
			}
		}
		seen[10] = perTag
		for n := 0; n < 5*perTag; n++ {
			var got int
			st, err := c.Recv(AnySource, AnyTag, &got)
			if err != nil {
				return err
			}
			key := st.Source*10 + st.Tag
			wantI := seen[key]
			if got != st.Source*1000+st.Tag*100+wantI {
				return fmt.Errorf("stream (src=%d,tag=%d): got %d, want sequence %d", st.Source, st.Tag, got, wantI)
			}
			seen[key]++
		}
		for key, n := range seen {
			if n != perTag {
				return fmt.Errorf("stream %d delivered %d messages, want %d", key, n, perTag)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
