package mpi

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestExscanExclusivePrefix(t *testing.T) {
	for _, np := range worldSizes {
		err := Run(np, func(c *Comm) error {
			got, ok, err := Exscan(c, c.Rank()+1, Combine[int](Sum))
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				if ok {
					return fmt.Errorf("rank 0 reported a defined exscan value")
				}
				return nil
			}
			if !ok {
				return fmt.Errorf("rank %d reported undefined exscan", c.Rank())
			}
			want := c.Rank() * (c.Rank() + 1) / 2 // 1+2+...+rank
			if got != want {
				return fmt.Errorf("rank %d exscan = %d, want %d", c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

func TestExscanConsistentWithScan(t *testing.T) {
	// scan(i) = exscan(i) ⊕ v(i) for every rank > 0.
	err := Run(6, func(c *Comm) error {
		v := (c.Rank() + 2) * 3
		inc, err := Scan(c, v, Combine[int](Sum))
		if err != nil {
			return err
		}
		exc, ok, err := Exscan(c, v, Combine[int](Sum))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if inc != v {
				return fmt.Errorf("rank 0 scan = %d, want own value %d", inc, v)
			}
			return nil
		}
		if !ok || exc+v != inc {
			return fmt.Errorf("rank %d: exscan %d + v %d != scan %d", c.Rank(), exc, v, inc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterBlock(t *testing.T) {
	for _, np := range worldSizes {
		err := Run(np, func(c *Comm) error {
			// Rank r contributes items[j] = r*10 + j; element j reduces to
			// sum over r of (r*10 + j) = 10*np(np-1)/2 + np*j.
			items := make([]int, np)
			for j := range items {
				items[j] = c.Rank()*10 + j
			}
			got, err := ReduceScatterBlock(c, items, Combine[int](Sum))
			if err != nil {
				return err
			}
			want := 10*np*(np-1)/2 + np*c.Rank()
			if got != want {
				return fmt.Errorf("rank %d got %d, want %d", c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

func TestReduceScatterBlockWrongLength(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if _, err := ReduceScatterBlock(c, []int{1, 2}, Combine[int](Sum)); err == nil {
			return fmt.Errorf("wrong length accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDisseminationBarrier(t *testing.T) {
	for _, np := range worldSizes {
		var arrived atomic.Int64
		err := Run(np, func(c *Comm) error {
			arrived.Add(1)
			if err := c.BarrierWith(BarrierDissemination); err != nil {
				return err
			}
			if got := arrived.Load(); got != int64(np) {
				return fmt.Errorf("left dissemination barrier with %d/%d arrived", got, np)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

func TestConsecutiveDisseminationBarriers(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		for i := 0; i < 20; i++ {
			if err := c.BarrierWith(BarrierDissemination); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierWithUnknownAlgorithm(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.BarrierWith(BarrierAlgorithm(9)); err == nil {
			return fmt.Errorf("unknown algorithm accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
