package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The irregular-exchange suite. Every check is analytic — element values
// encode (origin, destination, index), so a block landing in the wrong slot,
// the wrong order, or the wrong rank is caught by value, not just by shape —
// and the same checks run across every transport configuration and count
// pattern, including the all-zero exchange that must move no frames at all.

// a2avVal is the self-describing element: who sent it, to whom, at which
// position within the block.
func a2avVal(origin, dest, i int) int64 {
	return int64(origin)*1_000_000 + int64(dest)*1000 + int64(i)
}

// a2avPatterns enumerates the count shapes: uniform, skewed (every pair
// different, some zero), sparse (one destination per origin), and all-zero.
var a2avPatterns = []struct {
	name   string
	counts func(origin, dest, np int) int
}{
	{"uniform", func(origin, dest, np int) int { return 3 }},
	{"skewed", func(origin, dest, np int) int { return (origin*7 + dest*3) % 5 }},
	{"sparse", func(origin, dest, np int) int {
		if dest == (origin+1)%np {
			return 4
		}
		return 0
	}},
	{"zeros", func(origin, dest, np int) int { return 0 }},
}

// checkAlltoallv drives one full exchange — count prologue, allocating
// exchange, then a second in-place exchange into the reused buffer (the
// steady-state shape) — and verifies every element analytically.
func checkAlltoallv(c *Comm, counts func(origin, dest int) int) error {
	np, rank := c.Size(), c.Rank()
	sendCounts := make([]int, np)
	for d := range sendCounts {
		sendCounts[d] = counts(rank, d)
	}
	sdis, stot := displs(sendCounts)
	send := make([]int64, stot)
	for d := 0; d < np; d++ {
		for i := 0; i < sendCounts[d]; i++ {
			send[sdis[d]+i] = a2avVal(rank, d, i)
		}
	}

	recvCounts, err := AlltoallCounts(c, sendCounts)
	if err != nil {
		return fmt.Errorf("AlltoallCounts: %w", err)
	}
	for o := range recvCounts {
		if want := counts(o, rank); recvCounts[o] != want {
			return fmt.Errorf("rank %d recvCounts[%d] = %d, want %d", rank, o, recvCounts[o], want)
		}
	}

	recv, err := AlltoallvSlice(c, send, sendCounts, recvCounts)
	if err != nil {
		return fmt.Errorf("AlltoallvSlice: %w", err)
	}
	rdis, rtot := displs(recvCounts)
	if len(recv) != rtot {
		return fmt.Errorf("rank %d: %d elements received, counts say %d", rank, len(recv), rtot)
	}
	for o := 0; o < np; o++ {
		for i := 0; i < recvCounts[o]; i++ {
			if got, want := recv[rdis[o]+i], a2avVal(o, rank, i); got != want {
				return fmt.Errorf("rank %d block from %d element %d = %d, want %d", rank, o, i, got, want)
			}
		}
	}

	// Steady state: same counts, fresh values, caller-owned receive buffer.
	const shift = 1_000_000_000
	for i := range send {
		send[i] += shift
	}
	if err := AlltoallvInto(c, send, sendCounts, recv, recvCounts); err != nil {
		return fmt.Errorf("AlltoallvInto: %w", err)
	}
	for o := 0; o < np; o++ {
		for i := 0; i < recvCounts[o]; i++ {
			if got, want := recv[rdis[o]+i], a2avVal(o, rank, i)+shift; got != want {
				return fmt.Errorf("rank %d reused block from %d element %d = %d, want %d", rank, o, i, got, want)
			}
		}
	}
	return nil
}

func TestAlltoallvParity(t *testing.T) {
	for name, runner := range winRunners() {
		name, runner := name, runner
		t.Run(name, func(t *testing.T) {
			if name == "tcp" || name == "tcp-legacy" {
				t.Parallel()
			}
			for _, np := range []int{1, 2, 3, 4, 8} {
				for _, p := range a2avPatterns {
					p := p
					if err := runner(np, func(c *Comm) error {
						return checkAlltoallv(c, func(o, d int) int { return p.counts(o, d, np) })
					}); err != nil {
						t.Fatalf("np=%d pattern=%s: %v", np, p.name, err)
					}
				}
			}
		})
	}
}

// TestAlltoallvGobElements: non-raw element types ride the gob path through
// the same exchange — the primitive is generic, not numeric-only.
func TestAlltoallvGobElements(t *testing.T) {
	const np = 3
	err := Run(np, func(c *Comm) error {
		sendCounts := make([]int, np)
		for d := range sendCounts {
			sendCounts[d] = d + 1
		}
		sdis, stot := displs(sendCounts)
		send := make([]string, stot)
		for d := 0; d < np; d++ {
			for i := 0; i < sendCounts[d]; i++ {
				send[sdis[d]+i] = fmt.Sprintf("%d->%d#%d", c.Rank(), d, i)
			}
		}
		recvCounts, err := AlltoallCounts(c, sendCounts)
		if err != nil {
			return err
		}
		recv, err := AlltoallvSlice(c, send, sendCounts, recvCounts)
		if err != nil {
			return err
		}
		rdis, _ := displs(recvCounts)
		for o := 0; o < np; o++ {
			for i := 0; i < recvCounts[o]; i++ {
				if got, want := recv[rdis[o]+i], fmt.Sprintf("%d->%d#%d", o, c.Rank(), i); got != want {
					return fmt.Errorf("rank %d got %q, want %q", c.Rank(), got, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallvHier: the two-level schedule under forced topologies agrees
// with the analytic expectation (and therefore with the flat schedule) for
// every count pattern, on every topology shape hierTopologies generates —
// including the uneven one where one node holds a single rank.
func TestAlltoallvHier(t *testing.T) {
	launchers := []parityMode{
		{name: "local", run: Run},
		{name: "local-serialized", run: Run, opts: []Option{WithSerialization()}},
		{name: "tcp", run: RunTCP},
	}
	if shmSupported {
		launchers = append(launchers, parityMode{name: "shm", run: RunShm})
	}
	for _, np := range []int{4, 8} {
		for _, topo := range hierTopologies(np) {
			for _, l := range launchers {
				for _, p := range a2avPatterns {
					desc := fmt.Sprintf("np=%d topo=%v %s pattern=%s", np, topo, l.name, p.name)
					opts := append([]Option{WithTopology(topo), WithHierarchy(HierOn)}, l.opts...)
					err := l.run(np, func(c *Comm) error {
						return checkAlltoallv(c, func(o, d int) int { return p.counts(o, d, np) })
					}, opts...)
					if err != nil {
						t.Fatalf("%s: %v", desc, err)
					}
				}
			}
		}
	}
}

// TestAlltoallvValidation: malformed count vectors are rejected before any
// frame moves.
func TestAlltoallvValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		send := make([]int64, 4)
		good := []int{2, 2}
		if _, err := AlltoallvSlice(c, send, []int{4}, good); err == nil {
			return fmt.Errorf("short sendCounts accepted")
		}
		if _, err := AlltoallvSlice(c, send, good, []int{1, 1, 1}); err == nil {
			return fmt.Errorf("long recvCounts accepted")
		}
		if _, err := AlltoallvSlice(c, send, []int{3, 3}, good); err == nil {
			return fmt.Errorf("send count sum mismatch accepted")
		}
		if err := AlltoallvInto(c, send, good, make([]int64, 3), good); err == nil {
			return fmt.Errorf("recv buffer size mismatch accepted")
		}
		if _, err := AlltoallCounts(c, []int{1}); err == nil {
			return fmt.Errorf("short AlltoallCounts vector accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKillRankMidAlltoallv: the victim dies on its first data-block send;
// every survivor's exchange must surface the retryable *RankFailedError —
// each of them is owed a block the victim will never send. All transports.
func TestKillRankMidAlltoallv(t *testing.T) {
	const np = 4
	const victim = 1
	plan := FaultPlan{
		Seed:  13,
		Rules: []FaultRule{{Src: victim, Dst: AnySource, Tag: tagA2Av, Action: FaultKillRank}},
	}
	for _, l := range recoveryLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			var mu sync.Mutex
			observed := map[int]error{}
			err := runWithWatchdog(t, 30*time.Second, func() error {
				return l.run(np, func(c *Comm) error {
					sendCounts := make([]int, np)
					for d := range sendCounts {
						sendCounts[d] = 8 // all pairs exchange: everyone waits on the victim
					}
					_, stot := displs(sendCounts)
					send := make([]int64, stot)
					_, aerr := AlltoallvSlice(c, send, sendCounts, sendCounts)
					if c.Rank() == victim {
						if aerr == nil {
							return fmt.Errorf("victim: exchange succeeded after its own kill")
						}
						return aerr
					}
					mu.Lock()
					observed[c.Rank()] = aerr
					mu.Unlock()
					if aerr == nil {
						return fmt.Errorf("survivor %d: exchange succeeded with a dead peer", c.Rank())
					}
					return c.Revoke()
				}, WithFaults(plan), WithRecovery())
			})
			if err != nil {
				t.Fatalf("recovered run should report success, got %v", err)
			}
			if len(observed) != np-1 {
				t.Fatalf("recorded %d survivor outcomes, want %d", len(observed), np-1)
			}
			for rank, aerr := range observed {
				var rfe *RankFailedError
				if !errors.As(aerr, &rfe) {
					t.Errorf("survivor %d: want *RankFailedError, got %v", rank, aerr)
				}
			}
		})
	}
}

// TestAlltoallvDeadline: one dropped data block stalls its receiver forever;
// WithDeadline converts the stall into the world's *DeadlineError naming the
// Recv under the exchange's tag.
func TestAlltoallvDeadline(t *testing.T) {
	plan := FaultPlan{
		Rules: []FaultRule{{Src: 1, Dst: 0, Tag: tagA2Av, Count: 1, Action: FaultDrop}},
	}
	for _, tc := range []struct {
		name string
		run  func(np int, main func(c *Comm) error, opts ...Option) error
	}{
		{"local", Run},
		{"tcp", RunTCP},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := runWithWatchdog(t, 20*time.Second, func() error {
				return tc.run(2, func(c *Comm) error {
					counts := []int{4, 4}
					send := make([]int64, 8)
					_, aerr := AlltoallvSlice(c, send, counts, counts)
					return aerr
				}, WithFaults(plan), WithDeadline(150*time.Millisecond))
			})
			var derr *DeadlineError
			if !errors.As(err, &derr) {
				t.Fatalf("err = %v, want a *DeadlineError in the chain", err)
			}
			found := false
			for _, op := range derr.Blocked {
				if op.Op == "Recv" && op.Tag == tagA2Av {
					found = true
				}
			}
			if !found {
				t.Fatalf("blocked snapshot %v names no Recv under tagA2Av", derr.Blocked)
			}
		})
	}
}
