package mpi

import "testing"

func deliverAll(m *mailbox, fs ...frame) {
	for _, f := range fs {
		m.deliver(f)
	}
}

func TestMailboxMatchesBySourceAndTag(t *testing.T) {
	m := newMailbox()
	deliverAll(m,
		frame{Ctx: 0, Src: 1, Tag: 10, Data: []byte("a")},
		frame{Ctx: 0, Src: 2, Tag: 10, Data: []byte("b")},
		frame{Ctx: 0, Src: 1, Tag: 20, Data: []byte("c")},
	)
	f, err := m.take(0, 1, 20)
	if err != nil || string(f.Data) != "c" {
		t.Fatalf("take(src=1,tag=20) = %q, %v; want c", f.Data, err)
	}
	f, err = m.take(0, 2, 10)
	if err != nil || string(f.Data) != "b" {
		t.Fatalf("take(src=2,tag=10) = %q, %v; want b", f.Data, err)
	}
}

func TestMailboxWildcardsTakeEarliest(t *testing.T) {
	m := newMailbox()
	deliverAll(m,
		frame{Ctx: 0, Src: 3, Tag: 7, Data: []byte("first")},
		frame{Ctx: 0, Src: 1, Tag: 9, Data: []byte("second")},
	)
	f, err := m.take(0, AnySource, AnyTag)
	if err != nil || string(f.Data) != "first" {
		t.Fatalf("wildcard take = %q, %v; want first", f.Data, err)
	}
}

func TestMailboxContextIsolation(t *testing.T) {
	m := newMailbox()
	deliverAll(m,
		frame{Ctx: 5, Src: 0, Tag: 1, Data: []byte("other comm")},
		frame{Ctx: 0, Src: 0, Tag: 1, Data: []byte("world")},
	)
	f, err := m.take(0, AnySource, AnyTag)
	if err != nil || string(f.Data) != "world" {
		t.Fatalf("ctx-0 take = %q, %v; want world", f.Data, err)
	}
	f, err = m.take(5, 0, 1)
	if err != nil || string(f.Data) != "other comm" {
		t.Fatalf("ctx-5 take = %q, %v; want other comm", f.Data, err)
	}
}

func TestMailboxFIFOPerSender(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 10; i++ {
		m.deliver(frame{Ctx: 0, Src: 4, Tag: 1, Data: []byte{byte(i)}})
	}
	for i := 0; i < 10; i++ {
		f, err := m.take(0, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(i) {
			t.Fatalf("message %d arrived out of order (got %d)", i, f.Data[0])
		}
	}
}

func TestMailboxPeekDoesNotConsume(t *testing.T) {
	m := newMailbox()
	if _, ok := m.peek(0, AnySource, AnyTag); ok {
		t.Fatal("peek on empty mailbox reported a message")
	}
	m.deliver(frame{Ctx: 0, Src: 2, Tag: 3, Data: []byte("xy")})
	st, ok := m.peek(0, 2, 3)
	if !ok {
		t.Fatal("peek missed a queued message")
	}
	if st.Source != 2 || st.Tag != 3 || st.Bytes != 2 {
		t.Fatalf("peek status = %v", st)
	}
	if _, ok := m.peek(0, 2, 3); !ok {
		t.Fatal("peek consumed the message")
	}
}

func TestMailboxTakeBlocksUntilDelivery(t *testing.T) {
	m := newMailbox()
	got := make(chan frame, 1)
	go func() {
		f, err := m.take(0, 1, 1)
		if err != nil {
			return
		}
		got <- f
	}()
	m.deliver(frame{Ctx: 0, Src: 1, Tag: 1, Data: []byte("late")})
	f := <-got
	if string(f.Data) != "late" {
		t.Fatalf("blocked take returned %q", f.Data)
	}
}

func TestMailboxCloseUnblocksReceivers(t *testing.T) {
	m := newMailbox()
	errCh := make(chan error, 1)
	go func() {
		_, err := m.take(0, AnySource, AnyTag)
		errCh <- err
	}()
	m.close()
	if err := <-errCh; err != ErrShutdown {
		t.Fatalf("take after close = %v, want ErrShutdown", err)
	}
	if _, err := m.waitMatch(0, AnySource, AnyTag); err != ErrShutdown {
		t.Fatalf("waitMatch after close = %v, want ErrShutdown", err)
	}
}

func TestMatchesWildcards(t *testing.T) {
	f := frame{Ctx: 1, Src: 3, Tag: 9}
	cases := []struct {
		ctx      int64
		src, tag int
		want     bool
	}{
		{1, 3, 9, true},
		{1, AnySource, 9, true},
		{1, 3, AnyTag, true},
		{1, AnySource, AnyTag, true},
		{2, 3, 9, false},
		{1, 4, 9, false},
		{1, 3, 8, false},
	}
	for _, c := range cases {
		if got := matches(f, c.ctx, c.src, c.tag); got != c.want {
			t.Errorf("matches(ctx=%d src=%d tag=%d) = %v, want %v", c.ctx, c.src, c.tag, got, c.want)
		}
	}
}
