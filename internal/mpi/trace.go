package mpi

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MessageCounter observes every frame a world's transport carries — user
// messages and the collectives' internal traffic alike. The teaching
// materials use it to make communication visible: learners can *count* that
// a linear reduce costs n−1 messages while a broadcast tree costs n−1 in
// log n rounds, and the ablation tests pin those counts.
type MessageCounter struct {
	mu     sync.Mutex
	total  int
	bytes  int
	byPair map[[2]int]int // [src world rank, dst world rank] -> messages
	byTag  map[int]int
}

// NewMessageCounter returns an empty counter; install it with WithCounter.
func NewMessageCounter() *MessageCounter {
	return &MessageCounter{
		byPair: map[[2]int]int{},
		byTag:  map[int]int{},
	}
}

// observe records one frame. Fast-path frames carry no wire bytes, so their
// in-memory payload size is recorded instead (see Status.Bytes).
func (mc *MessageCounter) observe(f frame) {
	mc.mu.Lock()
	mc.total++
	mc.bytes += f.payloadSize()
	mc.byPair[[2]int{f.WSrc, f.Dst}]++
	mc.byTag[f.Tag]++
	mc.mu.Unlock()
}

// Total reports how many messages the world has carried.
func (mc *MessageCounter) Total() int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.total
}

// Bytes reports the total payload bytes carried.
func (mc *MessageCounter) Bytes() int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.bytes
}

// Pair reports how many messages travelled from src to dst (world ranks).
func (mc *MessageCounter) Pair(src, dst int) int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.byPair[[2]int{src, dst}]
}

// Tag reports how many messages carried the given tag. Collective traffic
// uses the runtime's reserved negative tags.
func (mc *MessageCounter) Tag(tag int) int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.byTag[tag]
}

// Reset zeroes the counter between measured phases.
func (mc *MessageCounter) Reset() {
	mc.mu.Lock()
	mc.total, mc.bytes = 0, 0
	mc.byPair = map[[2]int]int{}
	mc.byTag = map[int]int{}
	mc.mu.Unlock()
}

// String summarizes the traffic, heaviest pairs first.
func (mc *MessageCounter) String() string {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	type pc struct {
		pair  [2]int
		count int
	}
	pairs := make([]pc, 0, len(mc.byPair))
	for p, n := range mc.byPair {
		pairs = append(pairs, pc{p, n})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].count != pairs[j].count {
			return pairs[i].count > pairs[j].count
		}
		return pairs[i].pair[0]*1e6+pairs[i].pair[1] < pairs[j].pair[0]*1e6+pairs[j].pair[1]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%d messages, %d payload bytes\n", mc.total, mc.bytes)
	for _, p := range pairs {
		fmt.Fprintf(&b, "  %d -> %d: %d\n", p.pair[0], p.pair[1], p.count)
	}
	return b.String()
}

// WithCounter installs a MessageCounter on the world's transport.
func WithCounter(mc *MessageCounter) Option {
	return func(c *config) { c.counter = mc }
}

// countingTransport wraps a transport with a MessageCounter.
type countingTransport struct {
	inner Transport
	mc    *MessageCounter
}

func (t *countingTransport) Send(f frame) error {
	t.mc.observe(f)
	return t.inner.Send(f)
}

func (t *countingTransport) Close() error { return t.inner.Close() }

// deliversTyped forwards the wrapped transport's fast-path capability, so
// counting a world does not silently change how its messages travel.
func (t *countingTransport) deliversTyped() bool {
	tc, ok := t.inner.(typedCapable)
	return ok && tc.deliversTyped()
}

// wiresTyped forwards the wrapped transport's raw-framing capability for the
// same reason.
func (t *countingTransport) wiresTyped() bool {
	wc, ok := t.inner.(wireCapable)
	return ok && wc.wiresTyped()
}
