package mpi

import (
	"math/bits"
	"strings"
	"testing"
)

// countMessages runs body on np ranks with a counter installed and returns
// the counter.
func countMessages(t *testing.T, np int, body func(c *Comm) error) *MessageCounter {
	t.Helper()
	mc := NewMessageCounter()
	if err := Run(np, body, WithCounter(mc)); err != nil {
		t.Fatal(err)
	}
	return mc
}

func TestCounterPointToPoint(t *testing.T) {
	mc := countMessages(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if err := c.Send(1, 0, i); err != nil {
					return err
				}
			}
		} else {
			for i := 0; i < 5; i++ {
				if _, err := c.Recv(0, 0, nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if mc.Total() != 5 {
		t.Fatalf("total = %d, want 5", mc.Total())
	}
	if mc.Pair(0, 1) != 5 || mc.Pair(1, 0) != 0 {
		t.Fatalf("pairs: 0->1=%d 1->0=%d", mc.Pair(0, 1), mc.Pair(1, 0))
	}
	if mc.Bytes() == 0 {
		t.Fatal("no payload bytes recorded")
	}
}

// TestCollectiveMessageComplexity pins the algorithms' message counts —
// the quantities the ablation benchmarks trade off.
func TestCollectiveMessageComplexity(t *testing.T) {
	for _, np := range []int{2, 4, 7, 8} {
		// Linear reduce: n-1 messages to the root.
		mc := countMessages(t, np, func(c *Comm) error {
			_, err := ReduceWith(c, c.Rank(), Combine[int](Sum), 0, ReduceLinear)
			return err
		})
		if got, want := mc.Total(), np-1; got != want {
			t.Errorf("np=%d linear reduce: %d messages, want %d", np, got, want)
		}

		// Tree reduce: also n-1 messages (one per non-root node), but
		// spread over log n rounds.
		mc = countMessages(t, np, func(c *Comm) error {
			_, err := ReduceWith(c, c.Rank(), Combine[int](Sum), 0, ReduceTree)
			return err
		})
		if got, want := mc.Total(), np-1; got != want {
			t.Errorf("np=%d tree reduce: %d messages, want %d", np, got, want)
		}

		// Bcast tree: n-1 messages.
		mc = countMessages(t, np, func(c *Comm) error {
			_, err := Bcast(c, 1, 0)
			return err
		})
		if got, want := mc.Total(), np-1; got != want {
			t.Errorf("np=%d bcast: %d messages, want %d", np, got, want)
		}

		// Linear barrier: 2(n-1) messages.
		mc = countMessages(t, np, func(c *Comm) error {
			return c.BarrierWith(BarrierLinear)
		})
		if got, want := mc.Total(), 2*(np-1); got != want {
			t.Errorf("np=%d linear barrier: %d messages, want %d", np, got, want)
		}

		// Dissemination barrier (the Barrier default): n * ceil(log2 n)
		// messages.
		mc = countMessages(t, np, func(c *Comm) error {
			return c.Barrier()
		})
		rounds := bits.Len(uint(np - 1)) // ceil(log2 np)
		if got, want := mc.Total(), np*rounds; got != want {
			t.Errorf("np=%d dissemination barrier: %d messages, want %d", np, got, want)
		}

		// Ring allgather: n(n-1) messages, one per link per step.
		mc = countMessages(t, np, func(c *Comm) error {
			_, err := Allgather(c, c.Rank())
			return err
		})
		if got, want := mc.Total(), np*(np-1); got != want {
			t.Errorf("np=%d ring allgather: %d messages, want %d", np, got, want)
		}

		// Alltoall: n(n-1) messages.
		mc = countMessages(t, np, func(c *Comm) error {
			items := make([]int, np)
			_, err := Alltoall(c, items)
			return err
		})
		if got, want := mc.Total(), np*(np-1); got != want {
			t.Errorf("np=%d alltoall: %d messages, want %d", np, got, want)
		}
	}
}

func TestCounterTagBreakdown(t *testing.T) {
	mc := countMessages(t, 4, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			return c.Send(1, 9, "x")
		}
		if c.Rank() == 1 {
			_, err := c.Recv(0, 9, nil)
			return err
		}
		return nil
	})
	if mc.Tag(9) != 1 {
		t.Fatalf("tag 9 count = %d", mc.Tag(9))
	}
	if mc.Tag(tagDissem) != 8 { // np * ceil(log2 np) dissemination tokens
		t.Fatalf("barrier tag count = %d", mc.Tag(tagDissem))
	}
}

// TestBarrierRoundsScaleLogarithmically pins Barrier's O(log n) critical
// path structurally, not by timing: the dissemination barrier performs
// disseminationRounds(n) = ceil(log2 n) rounds, every rank sends exactly
// one message per round (asserted via the per-pair counter), and the round
// count grows by at most one when the world doubles.
func TestBarrierRoundsScaleLogarithmically(t *testing.T) {
	for _, np := range []int{2, 3, 4, 8, 16, 32, 64} {
		rounds := disseminationRounds(np)
		if want := bits.Len(uint(np - 1)); rounds != want {
			t.Fatalf("np=%d: disseminationRounds = %d, want ceil(log2 n) = %d", np, rounds, want)
		}
		mc := countMessages(t, np, func(c *Comm) error {
			return c.Barrier()
		})
		// One send per rank per round: the rounds ARE the per-rank message
		// count, so O(log n) rounds is equivalent to this assertion.
		for src := 0; src < np; src++ {
			sent := 0
			for dst := 0; dst < np; dst++ {
				sent += mc.Pair(src, dst)
			}
			if sent != rounds {
				t.Errorf("np=%d: rank %d sent %d messages, want %d (one per round)", np, src, sent, rounds)
			}
		}
	}
	// Doubling the world adds exactly one round — the logarithmic signature
	// (a linear barrier would double its rounds instead).
	for np := 2; np <= 512; np *= 2 {
		if got, want := disseminationRounds(2*np), disseminationRounds(np)+1; got != want {
			t.Fatalf("rounds(%d) = %d, want rounds(%d)+1 = %d", 2*np, got, np, want)
		}
	}
}

func TestCounterResetAndString(t *testing.T) {
	mc := countMessages(t, 2, func(c *Comm) error {
		return c.Barrier()
	})
	s := mc.String()
	if !strings.Contains(s, "messages") || !strings.Contains(s, "->") {
		t.Fatalf("String() = %q", s)
	}
	mc.Reset()
	if mc.Total() != 0 || mc.Bytes() != 0 || mc.Pair(0, 1) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestCounterOnTCPTransport(t *testing.T) {
	mc := NewMessageCounter()
	err := RunTCP(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, "over tcp")
		}
		_, err := c.Recv(0, 0, nil)
		return err
	}, WithCounter(mc))
	if err != nil {
		t.Fatal(err)
	}
	if mc.Total() != 1 {
		t.Fatalf("tcp counter total = %d", mc.Total())
	}
}

func TestScanMessageCount(t *testing.T) {
	// Linear chain: n-1 messages.
	for _, np := range []int{1, 3, 6} {
		mc := countMessages(t, np, func(c *Comm) error {
			_, err := Scan(c, 1, Combine[int](Sum))
			return err
		})
		if got := mc.Total(); got != np-1 {
			t.Errorf("np=%d scan: %d messages, want %d", np, got, np-1)
		}
	}
}
