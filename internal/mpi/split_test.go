package mpi

import (
	"errors"
	"fmt"
	"testing"
)

func TestSplitEvenOdd(t *testing.T) {
	const np = 7
	err := Run(np, func(c *Comm) error {
		color := c.Rank() % 2
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		wantSize := np / 2
		if color == 0 {
			wantSize = (np + 1) / 2
		}
		if sub.Size() != wantSize {
			return fmt.Errorf("rank %d: sub size %d, want %d", c.Rank(), sub.Size(), wantSize)
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			return fmt.Errorf("rank %d: sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// Collectives on the sub-communicator must only see group members.
		all, err := Allgather(sub, c.Rank())
		if err != nil {
			return err
		}
		for i, worldRank := range all {
			if want := 2*i + color; worldRank != want {
				return fmt.Errorf("sub allgather[%d] = %d, want %d", i, worldRank, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitOrdersByKeyThenRank(t *testing.T) {
	const np = 4
	err := Run(np, func(c *Comm) error {
		// Reverse the ordering with descending keys.
		sub, err := c.Split(0, np-c.Rank())
		if err != nil {
			return err
		}
		if want := np - 1 - c.Rank(); sub.Rank() != want {
			return fmt.Errorf("world rank %d got sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	const np = 3
	err := Run(np, func(c *Comm) error {
		color := 0
		if c.Rank() == np-1 {
			color = ColorUndefined
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == np-1 {
			if sub != nil {
				return errors.New("undefined color returned a communicator")
			}
			return nil
		}
		if sub.Size() != np-1 {
			return fmt.Errorf("sub size %d, want %d", sub.Size(), np-1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitIsolatesMessageNamespaces(t *testing.T) {
	// A message sent on the parent communicator must not be received by a
	// matching Recv on a child, and vice versa.
	err := Run(2, func(c *Comm) error {
		sub, err := c.Dup()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send(1, 0, "parent"); err != nil {
				return err
			}
			return sub.Send(1, 0, "child")
		}
		var fromChild, fromParent string
		// Receive from the child communicator first: it must see only the
		// child message even though the parent's arrived earlier.
		if _, err := sub.Recv(0, 0, &fromChild); err != nil {
			return err
		}
		if _, err := c.Recv(0, 0, &fromParent); err != nil {
			return err
		}
		if fromChild != "child" || fromParent != "parent" {
			return fmt.Errorf("child=%q parent=%q", fromChild, fromParent)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupPreservesGroup(t *testing.T) {
	const np = 5
	err := Run(np, func(c *Comm) error {
		d, err := c.Dup()
		if err != nil {
			return err
		}
		if d.Rank() != c.Rank() || d.Size() != c.Size() {
			return fmt.Errorf("dup rank/size %d/%d, want %d/%d", d.Rank(), d.Size(), c.Rank(), c.Size())
		}
		sum, err := Allreduce(d, 1, Combine[int](Sum))
		if err != nil {
			return err
		}
		if sum != np {
			return fmt.Errorf("allreduce on dup = %d", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplits(t *testing.T) {
	const np = 8
	err := Run(np, func(c *Comm) error {
		half, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank())
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size = %d", quarter.Size())
		}
		sum, err := Allreduce(quarter, c.Rank(), Combine[int](Sum))
		if err != nil {
			return err
		}
		// Each quarter holds consecutive world ranks {2k, 2k+1}.
		base := (c.Rank() / 2) * 2
		if want := base + base + 1; sum != want {
			return fmt.Errorf("rank %d quarter sum = %d, want %d", c.Rank(), sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitExhaustionGuard(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		for i := 0; i < maxSplitsPerComm; i++ {
			if _, err := c.Dup(); err != nil {
				return fmt.Errorf("dup %d failed early: %w", i, err)
			}
		}
		if _, err := c.Dup(); err == nil {
			return errors.New("split budget exceeded without error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
