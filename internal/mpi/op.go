package mpi

// Op names a built-in reduction operator, mirroring MPI_SUM, MPI_PROD,
// MPI_MAX, MPI_MIN, MPI_LAND, and MPI_LOR. The generic collectives accept an
// arbitrary combine function; Op supplies the standard ones.
type Op int

const (
	// Sum adds values.
	Sum Op = iota
	// Prod multiplies values.
	Prod
	// Max keeps the larger value.
	Max
	// Min keeps the smaller value.
	Min
)

// String names the operator as MPI spells it.
func (op Op) String() string {
	switch op {
	case Sum:
		return "MPI_SUM"
	case Prod:
		return "MPI_PROD"
	case Max:
		return "MPI_MAX"
	case Min:
		return "MPI_MIN"
	default:
		return "MPI_OP(?)"
	}
}

// Number constrains the built-in operators to ordered numeric types.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Combine applies op to a pair of numbers.
func Combine[T Number](op Op) func(a, b T) T {
	switch op {
	case Sum:
		return func(a, b T) T { return a + b }
	case Prod:
		return func(a, b T) T { return a * b }
	case Max:
		return func(a, b T) T {
			if a > b {
				return a
			}
			return b
		}
	case Min:
		return func(a, b T) T {
			if a < b {
				return a
			}
			return b
		}
	default:
		panic("mpi: unknown Op")
	}
}

// CombineSlices returns an elementwise combiner for slices, the analogue of
// MPI's array reductions. It panics if the slices differ in length, which in
// MPI would be an erroneous program.
func CombineSlices[T Number](op Op) func(a, b []T) []T {
	elem := Combine[T](op)
	return func(a, b []T) []T {
		if len(a) != len(b) {
			panic("mpi: reduction buffers differ in length")
		}
		out := make([]T, len(a))
		for i := range a {
			out[i] = elem(a[i], b[i])
		}
		return out
	}
}
