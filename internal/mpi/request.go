package mpi

import (
	"fmt"
	"sync"
)

// Request is a handle on a nonblocking operation, mirroring MPI_Request.
// Complete it with Wait (blocking) or poll it with Test. A pending Irecv
// rides on the same mailbox primitive as a blocking Recv, so a world abort
// or a WithDeadline expiry completes the request with that error instead of
// leaving Wait blocked.
type Request struct {
	mu     sync.Mutex
	done   bool
	doneCh chan struct{}
	status Status
	err    error
}

func newRequest() *Request {
	return &Request{doneCh: make(chan struct{})}
}

// complete marks the request finished with the given outcome.
func (r *Request) complete(st Status, err error) {
	r.mu.Lock()
	r.status = st
	r.err = err
	r.done = true
	r.mu.Unlock()
	close(r.doneCh)
}

// Wait blocks until the operation completes, returning its Status:
// MPI_Wait.
func (r *Request) Wait() (Status, error) {
	<-r.doneCh
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status, r.err
}

// Test reports whether the operation has completed, without blocking. When
// it reports true, the Status and error are final: MPI_Test.
func (r *Request) Test() (Status, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.done {
		return Status{}, false, nil
	}
	return r.status, true, r.err
}

// Isend starts a nonblocking send of v to dest under tag and returns
// immediately: MPI_Isend. Because this runtime's sends are buffered, the
// operation completes as soon as the payload is encoded and enqueued, but
// callers should still Wait to observe encoding errors, as they would with
// a real MPI_Isend.
func (c *Comm) Isend(dest, tag int, v any) *Request {
	r := newRequest()
	err := c.Send(dest, tag, v)
	r.complete(Status{Source: c.rank, Tag: tag}, err)
	return r
}

// Irecv starts a nonblocking receive matching (source, tag) into the
// pointer v and returns immediately: MPI_Irecv. v must remain untouched
// until the request completes.
func (c *Comm) Irecv(source, tag int, v any) *Request {
	r := newRequest()
	go func() {
		st, err := c.Recv(source, tag, v)
		r.complete(st, err)
	}()
	return r
}

// Waitall completes all the given requests, returning their statuses in
// order and the first error encountered (by request order): MPI_Waitall.
func Waitall(reqs []*Request) ([]Status, error) {
	statuses := make([]Status, len(reqs))
	var firstErr error
	for i, r := range reqs {
		st, err := r.Wait()
		statuses[i] = st
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return statuses, firstErr
}

// Waitany blocks until any of the given requests completes and returns its
// index and status: MPI_Waitany, the primitive behind responsive
// master-worker loops. The completed request should not be waited on again;
// reqs must be non-empty.
func Waitany(reqs []*Request) (int, Status, error) {
	if len(reqs) == 0 {
		return -1, Status{}, fmt.Errorf("mpi: Waitany needs at least one request")
	}
	type done struct {
		idx int
		st  Status
		err error
	}
	ch := make(chan done, len(reqs))
	for i, r := range reqs {
		go func(i int, r *Request) {
			st, err := r.Wait()
			ch <- done{i, st, err}
		}(i, r)
	}
	d := <-ch
	return d.idx, d.st, d.err
}
