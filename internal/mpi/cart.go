package mpi

import "fmt"

// Cart is a Cartesian process topology over a communicator, the MPI
// facility (MPI_Cart_create and friends) that stencil codes such as the
// domain-decomposed forest fire use to find their neighbours.
type Cart struct {
	comm *Comm
	dims []int
	// periodic[d] wraps neighbours around dimension d.
	periodic []bool
}

// NewCart builds a Cartesian view of the communicator with the given
// dimension sizes. The product of dims must equal the communicator size;
// rank order is row-major, as in MPI. periodic may be nil (all false) or
// one flag per dimension.
func NewCart(c *Comm, dims []int, periodic []bool) (*Cart, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mpi: cartesian topology needs at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("mpi: cartesian dimension %d is not positive", d)
		}
		n *= d
	}
	if n != c.Size() {
		return nil, fmt.Errorf("mpi: cartesian grid %v holds %d ranks, communicator has %d", dims, n, c.Size())
	}
	if periodic == nil {
		periodic = make([]bool, len(dims))
	}
	if len(periodic) != len(dims) {
		return nil, fmt.Errorf("mpi: %d periodicity flags for %d dimensions", len(periodic), len(dims))
	}
	return &Cart{
		comm:     c,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}, nil
}

// Dims returns the grid shape.
func (ct *Cart) Dims() []int { return append([]int(nil), ct.dims...) }

// Comm returns the underlying communicator.
func (ct *Cart) Comm() *Comm { return ct.comm }

// Coords returns the calling rank's coordinates: MPI_Cart_coords.
func (ct *Cart) Coords() []int { return ct.CoordsOf(ct.comm.Rank()) }

// CoordsOf returns any rank's coordinates.
func (ct *Cart) CoordsOf(rank int) []int {
	coords := make([]int, len(ct.dims))
	for d := len(ct.dims) - 1; d >= 0; d-- {
		coords[d] = rank % ct.dims[d]
		rank /= ct.dims[d]
	}
	return coords
}

// RankOf returns the rank at the given coordinates: MPI_Cart_rank. It
// returns -1 for coordinates that fall outside a non-periodic dimension
// (the MPI_PROC_NULL case); periodic dimensions wrap.
func (ct *Cart) RankOf(coords []int) int {
	if len(coords) != len(ct.dims) {
		return -1
	}
	rank := 0
	for d, c := range coords {
		if ct.periodic[d] {
			c = ((c % ct.dims[d]) + ct.dims[d]) % ct.dims[d]
		} else if c < 0 || c >= ct.dims[d] {
			return -1
		}
		rank = rank*ct.dims[d] + c
	}
	return rank
}

// ProcNull is the neighbour value for "no neighbour", mirroring
// MPI_PROC_NULL.
const ProcNull = -1

// Shift returns the ranks of the neighbours displacement steps down and up
// dimension dim: MPI_Cart_shift. Missing neighbours (at a non-periodic
// edge) are ProcNull.
func (ct *Cart) Shift(dim, displacement int) (source, dest int, err error) {
	if dim < 0 || dim >= len(ct.dims) {
		return ProcNull, ProcNull, fmt.Errorf("mpi: cartesian dimension %d out of range", dim)
	}
	coords := ct.Coords()
	down := append([]int(nil), coords...)
	up := append([]int(nil), coords...)
	down[dim] -= displacement
	up[dim] += displacement
	return ct.RankOf(down), ct.RankOf(up), nil
}

// SendrecvShift exchanges values with the two neighbours along a
// dimension: the halo-exchange step of a stencil computation. sendUp goes
// to the +1 neighbour and sendDown to the −1 neighbour; the values
// received from those directions are decoded into fromUp and fromDown.
// Missing neighbours are skipped and leave the corresponding pointer
// untouched; hasUp/hasDown report what arrived.
func (ct *Cart) SendrecvShift(dim, tag int, sendDown, sendUp any, fromDown, fromUp any) (hasDown, hasUp bool, err error) {
	down, up, err := ct.Shift(dim, 1)
	if err != nil {
		return false, false, err
	}
	// Post sends first (buffered), then receives: deadlock-free in any
	// topology.
	if down != ProcNull {
		if err := ct.comm.Send(down, tag, sendDown); err != nil {
			return false, false, err
		}
	}
	if up != ProcNull {
		if err := ct.comm.Send(up, tag, sendUp); err != nil {
			return false, false, err
		}
	}
	if down != ProcNull {
		if _, err := ct.comm.Recv(down, tag, fromDown); err != nil {
			return false, false, err
		}
		hasDown = true
	}
	if up != ProcNull {
		if _, err := ct.comm.Recv(up, tag, fromUp); err != nil {
			return hasDown, false, err
		}
		hasUp = true
	}
	return hasDown, hasUp, nil
}
