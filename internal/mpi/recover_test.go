package mpi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// launcher abstracts Run vs RunTCP vs RunShm so every recovery scenario is
// exercised on the in-process, network, and shared-memory transports.
type launcher struct {
	name string
	run  func(np int, main func(c *Comm) error, opts ...Option) error
}

var recoveryLaunchers = func() []launcher {
	ls := []launcher{
		{"local", Run},
		{"tcp", RunTCP},
	}
	if shmSupported {
		ls = append(ls, launcher{"shm", RunShm})
	}
	return ls
}()

// TestRecoverContinuesAfterRankFailure: one rank dies; the survivors observe
// a retryable *RankFailedError on a receive naming the failed source, shrink
// to a dense 3-rank communicator, and keep computing (barrier + p2p ring).
// The launcher reports overall success: the world recovered.
func TestRecoverContinuesAfterRankFailure(t *testing.T) {
	for _, l := range recoveryLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			var mu sync.Mutex
			sizes := map[int]int{}
			err := runWithWatchdog(t, 30*time.Second, func() error {
				return l.run(4, func(c *Comm) error {
					if c.Rank() == 3 {
						return errDeliberate
					}
					_, rerr := c.Recv(3, 7, nil) // named failed source: deterministic interrupt
					if !errors.Is(rerr, ErrRankFailed) {
						return fmt.Errorf("want ErrRankFailed from Recv on failed source, got %v", rerr)
					}
					if rerr := c.Revoke(); rerr != nil {
						return rerr
					}
					nc, serr := c.Shrink()
					if serr != nil {
						return serr
					}
					if nc.Rank() != c.Rank() {
						return fmt.Errorf("survivor order: old rank %d became %d", c.Rank(), nc.Rank())
					}
					if err := nc.Barrier(); err != nil {
						return err
					}
					right := (nc.Rank() + 1) % nc.Size()
					left := (nc.Rank() - 1 + nc.Size()) % nc.Size()
					if err := nc.Send(right, 1, nc.Rank()); err != nil {
						return err
					}
					var got int
					if _, err := nc.Recv(left, 1, &got); err != nil {
						return err
					}
					if got != left {
						return fmt.Errorf("ring on shrunken comm: got %d want %d", got, left)
					}
					mu.Lock()
					sizes[c.Rank()] = nc.Size()
					mu.Unlock()
					return nil
				}, WithRecovery())
			})
			if err != nil {
				t.Fatalf("recovered run should report success, got %v", err)
			}
			if len(sizes) != 3 {
				t.Fatalf("expected 3 survivors, got %v", sizes)
			}
			for r, s := range sizes {
				if s != 3 {
					t.Errorf("rank %d saw shrunken size %d, want 3", r, s)
				}
			}
		})
	}
}

// TestRecoverInterruptsPendingAnySource: survivors are already blocked in a
// wildcard receive when the failure lands; the failure must interrupt the
// pending operation even though live peers remain that could still send.
func TestRecoverInterruptsPendingAnySource(t *testing.T) {
	for _, l := range recoveryLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			err := runWithWatchdog(t, 30*time.Second, func() error {
				return l.run(4, func(c *Comm) error {
					if c.Rank() == 3 {
						time.Sleep(200 * time.Millisecond) // let the peers block first
						return errDeliberate
					}
					_, rerr := c.Recv(AnySource, 7, nil)
					if !errors.Is(rerr, ErrRankFailed) {
						return fmt.Errorf("want ErrRankFailed interrupting pending wildcard Recv, got %v", rerr)
					}
					if rerr := c.Revoke(); rerr != nil {
						return rerr
					}
					nc, serr := c.Shrink()
					if serr != nil {
						return serr
					}
					return nc.Barrier()
				}, WithRecovery())
			})
			if err != nil {
				t.Fatalf("recovered run should report success, got %v", err)
			}
		})
	}
}

// TestAgreeConsistentUnderRacingFailures: two ranks die at different times,
// one of them mid-protocol, and every survivor's Agree must return the
// identical failed set — the failures are folded into the decision instead
// of stalling it.
func TestAgreeConsistentUnderRacingFailures(t *testing.T) {
	for _, l := range recoveryLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			var mu sync.Mutex
			agreed := map[int][]int{}
			err := runWithWatchdog(t, 30*time.Second, func() error {
				return l.run(6, func(c *Comm) error {
					switch c.Rank() {
					case 5:
						return errDeliberate // dies before anyone agrees
					case 4:
						time.Sleep(80 * time.Millisecond)
						return errDeliberate // dies while the others wait in Agree
					}
					failed, err := c.Agree()
					if err != nil {
						return err
					}
					mu.Lock()
					agreed[c.Rank()] = failed
					mu.Unlock()
					return nil
				}, WithRecovery())
			})
			if err != nil {
				t.Fatalf("recovered run should report success, got %v", err)
			}
			want := []int{4, 5}
			for r, got := range agreed {
				if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
					t.Errorf("rank %d agreed on %v, want %v", r, got, want)
				}
			}
			if len(agreed) != 4 {
				t.Fatalf("expected 4 survivors to agree, got %d", len(agreed))
			}
		})
	}
}

// TestRevokeKicksStragglerOutOfOldComm: a straggler that computed straight
// through the failure blocks on a receive from a live peer — the failed-set
// checks alone would never interrupt it. The survivor that detected the
// failure revokes the communicator, which must surface on the straggler as
// a *RankFailedError with Revoked set.
func TestRevokeKicksStragglerOutOfOldComm(t *testing.T) {
	for _, l := range recoveryLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			err := runWithWatchdog(t, 30*time.Second, func() error {
				return l.run(3, func(c *Comm) error {
					switch c.Rank() {
					case 2:
						time.Sleep(30 * time.Millisecond)
						return errDeliberate
					case 0:
						_, rerr := c.Recv(2, 9, nil)
						if !errors.Is(rerr, ErrRankFailed) {
							return fmt.Errorf("rank 0: want ErrRankFailed, got %v", rerr)
						}
						if err := c.Revoke(); err != nil {
							return err
						}
					case 1:
						// Heads-down compute through failure and revoke, then
						// block on a live peer that will never send on this comm.
						time.Sleep(300 * time.Millisecond)
						_, rerr := c.Recv(0, 9, nil)
						var rfe *RankFailedError
						if !errors.As(rerr, &rfe) {
							return fmt.Errorf("straggler: want *RankFailedError, got %v", rerr)
						}
						if !rfe.Revoked {
							return fmt.Errorf("straggler: expected Revoked error, got %v", rfe)
						}
						if err := c.Revoke(); err != nil { // idempotent
							return err
						}
					}
					nc, err := c.Shrink()
					if err != nil {
						return err
					}
					if nc.Size() != 2 {
						return fmt.Errorf("shrunken size %d, want 2", nc.Size())
					}
					return nc.Barrier()
				}, WithRecovery())
			})
			if err != nil {
				t.Fatalf("recovered run should report success, got %v", err)
			}
		})
	}
}

// TestRecoverSendSemantics: after a failure, sends into the failed rank are
// rejected with a retryable error, while survivor-to-survivor traffic on the
// same (unrevoked) communicator keeps flowing.
func TestRecoverSendSemantics(t *testing.T) {
	for _, l := range recoveryLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			err := runWithWatchdog(t, 30*time.Second, func() error {
				return l.run(3, func(c *Comm) error {
					switch c.Rank() {
					case 1:
						return errDeliberate
					case 0:
						// Sends may land in the dead rank's mailbox until the
						// failure registers; eventually they must be rejected.
						for i := 0; ; i++ {
							err := c.Send(1, 1, i)
							if errors.Is(err, ErrRankFailed) {
								break
							}
							if err != nil {
								return fmt.Errorf("send to failed rank: got %v", err)
							}
							time.Sleep(time.Millisecond)
						}
						if err := c.Send(2, 2, 42); err != nil {
							return fmt.Errorf("survivor-to-survivor send after failure: %v", err)
						}
					case 2:
						for {
							var v int
							_, err := c.Recv(0, 2, &v)
							if err == nil {
								if v != 42 {
									return fmt.Errorf("got %d want 42", v)
								}
								break
							}
							if !errors.Is(err, ErrRankFailed) {
								return err
							}
							// Interrupted by the failure: the operation is
							// retryable, and the retry must succeed.
						}
					}
					return nil
				}, WithRecovery())
			})
			if err != nil {
				t.Fatalf("recovered run should report success, got %v", err)
			}
		})
	}
}

// TestWithRecoveryInertOnCleanRuns: a recovery world with no failures runs
// collectives, splits, and p2p exactly as a plain world does.
func TestWithRecoveryInertOnCleanRuns(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		sum, err := Allreduce(c, c.Rank(), func(a, b int) int { return a + b })
		if err != nil {
			return err
		}
		if sum != 6 {
			return fmt.Errorf("allreduce got %d want 6", sum)
		}
		half, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if half.Size() != 2 {
			return fmt.Errorf("split size %d want 2", half.Size())
		}
		if failed := c.FailedRanks(); len(failed) != 0 {
			return fmt.Errorf("clean world reports failed ranks %v", failed)
		}
		return c.Barrier()
	}, WithRecovery())
	if err != nil {
		t.Fatalf("clean recovery run: %v", err)
	}
}

// TestWithRecoveryRankCap: the agreement bitmask bounds recovery worlds.
func TestWithRecoveryRankCap(t *testing.T) {
	err := Run(65, func(c *Comm) error { return nil }, WithRecovery())
	if err == nil || !strings.Contains(err.Error(), "at most 64") {
		t.Fatalf("want rank-cap error, got %v", err)
	}
}

// TestWithRecoveryDeadlineStillAborts: recovery does not defang the
// deadline machinery — a genuine deadlock still revokes the world, and the
// error still composes with context.DeadlineExceeded.
func TestWithRecoveryDeadlineStillAborts(t *testing.T) {
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return Run(2, func(c *Comm) error {
			_, err := c.Recv(1-c.Rank(), 5, nil) // mutual Recv: classic deadlock
			return err
		}, WithRecovery(), WithDeadline(100*time.Millisecond))
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

// TestRecoverySoakKillRank is the randomized recovery soak: seeded kill-rank
// plans against a collective workload on both transports. Every trial must
// recover — survivors revoke, shrink, restart their loop — and report
// overall success. Runs under -race in scripts/check.sh.
func TestRecoverySoakKillRank(t *testing.T) {
	const np = 5
	sum := func(a, b int) int { return a + b }
	for _, l := range recoveryLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				trial := trial
				t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
					rules := []FaultRule{{
						Src: trial % np, Dst: AnySource, Tag: AnyTag,
						SkipFirst: trial * 3 % 16,
						Action:    FaultKillRank,
					}}
					if trial%2 == 0 {
						// A second, later failure racing the recovered world.
						rules = append(rules, FaultRule{
							Src: (trial + 2) % np, Dst: AnySource, Tag: AnyTag,
							SkipFirst: 18 + trial,
							Action:    FaultKillRank,
						})
					}
					plan := FaultPlan{Seed: int64(trial + 1), Rules: rules}
					err := runWithWatchdog(t, 60*time.Second, func() error {
						return l.run(np, func(c *Comm) error {
							comm := c
							iters := 0
							for iters < 40 {
								got, err := Allreduce(comm, 1, sum)
								if err != nil {
									if !errors.Is(err, ErrRankFailed) {
										return err // this rank was killed (or a real bug)
									}
									if rerr := comm.Revoke(); rerr != nil {
										return rerr
									}
									nc, serr := comm.Shrink()
									if serr != nil {
										return serr
									}
									comm = nc
									iters = 0 // restart on the shrunken world
									continue
								}
								if got != comm.Size() {
									return fmt.Errorf("allreduce got %d want %d", got, comm.Size())
								}
								iters++
							}
							return nil
						}, WithRecovery(), WithFaults(plan))
					})
					if err != nil {
						t.Fatalf("trial %d should recover, got %v", trial, err)
					}
				})
			}
		})
	}
}
