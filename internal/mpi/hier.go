package mpi

// Topology-aware two-level collectives. On a real cluster the latency and
// bandwidth gap between intra-node transport (shared memory, or goroutine
// mailboxes here) and the inter-node network is large enough that a flat
// collective — which treats all ranks as equidistant — leaves the dominant
// optimization on the table: most of its hops cross the node boundary for
// no reason. The standard fix, and what this file implements, is the
// two-level schedule every production MPI ships:
//
//	1. each node elects a leader (its lowest rank on the communicator);
//	2. the intra-node phase runs over the cheap local transport, within a
//	   per-node sub-communicator;
//	3. only the leaders talk across nodes, within a leader
//	   sub-communicator — so exactly one rank per node contends for the
//	   inter-node link, instead of all of them.
//
// The sub-communicators are built without any communication (Comm.derived):
// the node assignment is a deterministic function of the communicator's
// group and the world topology (WithTopology, or processor names), so every
// member computes identical groups locally. The phases themselves reuse the
// flat algorithms from collective.go / vector.go unchanged — the
// sub-communicators are marked flatOnly, which is also what terminates the
// recursion. Because everything still rides on sendReserved/recvReserved
// and waitFrame, the failure model (abort, WithDeadline, WithFaults,
// recovery) applies to the hierarchical schedules with no extra machinery.
//
// Selection is automatic: Bcast, Reduce (tree), Allreduce, Barrier, and the
// *Slice vector family consult Comm.hier and fall back to the flat
// algorithms whenever it reports a degenerate topology (single node,
// unknown placement, Size()==1) or hierarchy is off (WithHierarchy).

// HierMode selects whether collectives may use the two-level hierarchical
// schedules; see WithHierarchy.
type HierMode int

const (
	// HierAuto (the default) uses the hierarchy exactly when it pays: the
	// communicator spans at least two nodes and at least one node
	// co-locates two ranks.
	HierAuto HierMode = iota
	// HierOn uses the hierarchy whenever the communicator spans more than
	// one node, even if every node holds a single rank.
	HierOn
	// HierOff pins every collective to the flat algorithms.
	HierOff
)

// tagHier is the reserved tag for the hierarchy's root↔leader relay hops,
// which travel on the parent communicator (the phases themselves use the
// ordinary collective tags on the node/leader sub-communicators).
const tagHier = -19

// hierState is a communicator's cached two-level topology view.
type hierState struct {
	nodeOf     []int // dense node id per communicator rank
	leaders    []int // communicator rank of each node's leader, indexed by node id
	myNode     int   // this rank's node id
	nodeComm   *Comm // this rank's intra-node communicator; leader is rank 0
	leaderComm *Comm // the leader communicator; nil at non-leaders
}

// hier returns the communicator's two-level topology view, or nil when the
// flat algorithms should run: hierarchy disabled, a runtime-internal
// sub-communicator, a single rank, or a topology with nothing to layer
// (all ranks on one node; or, under HierAuto, no co-located ranks at all).
// The view is built once per communicator and cached.
func (c *Comm) hier() *hierState {
	if c.flatOnly || len(c.ranks) < 2 || c.world.hierMode == HierOff {
		return nil
	}
	c.hierOnce.Do(func() { c.hierSt = c.buildHier() })
	return c.hierSt
}

// buildHier derives the node assignment, elects leaders, and constructs the
// node and leader sub-communicators. Node ids are densified in first-
// appearance order of the communicator's ranks, so every member derives the
// identical numbering no matter how sparse the world-level ids are.
func (c *Comm) buildHier() *hierState {
	w := c.world
	nodeOf := make([]int, len(c.ranks))
	var nodes int
	if len(w.nodeOf) > 0 {
		idx := make(map[int]int)
		for i, wr := range c.ranks {
			n := 0
			if wr < len(w.nodeOf) {
				n = w.nodeOf[wr]
			}
			d, ok := idx[n]
			if !ok {
				d = len(idx)
				idx[n] = d
			}
			nodeOf[i] = d
		}
		nodes = len(idx)
	} else {
		idx := make(map[string]int)
		for i, wr := range c.ranks {
			name := ""
			if wr < len(w.names) {
				name = w.names[wr]
			}
			d, ok := idx[name]
			if !ok {
				d = len(idx)
				idx[name] = d
			}
			nodeOf[i] = d
		}
		nodes = len(idx)
	}
	if nodes < 2 {
		return nil
	}
	// Leaders and per-node membership. The leader is the node's lowest
	// communicator rank, which under first-appearance numbering makes the
	// leaders slice strictly ascending — so the leader of node d sits at
	// rank d of the leader communicator.
	leaders := make([]int, nodes)
	members := make([][]int, nodes)
	for i, d := range nodeOf {
		if members[d] == nil {
			leaders[d] = i
		}
		members[d] = append(members[d], i)
	}
	if w.hierMode == HierAuto {
		coloc := false
		for _, m := range members {
			if len(m) > 1 {
				coloc = true
				break
			}
		}
		if !coloc {
			return nil
		}
	}
	my := nodeOf[c.rank]
	h := &hierState{nodeOf: nodeOf, leaders: leaders, myNode: my}
	h.nodeComm = c.derived(c.ctx*64+ctxHierNode, members[my], true)
	if leaders[my] == c.rank {
		h.leaderComm = c.derived(c.ctx*64+ctxHierLeaders, leaders, true)
	}
	return h
}

// Different nodes' nodeComms share the ctxHierNode context id, which is
// safe because their memberships are disjoint: mailbox matching is by
// (ctx, src, tag) with src communicator-local, and no frame ever travels
// between the groups. A leader belongs to both its nodeComm and the
// leaderComm, which is why those two use distinct reserved digits.

// hierBarrier: linear gather-and-release within each node around a
// dissemination barrier among the leaders. The intra-node phases are the
// O(n)-round linear shape on purpose — with a handful of ranks per node the
// fan-in is tiny, and it keeps the leader the single point that enters the
// inter-node phase.
func (c *Comm) hierBarrier(h *hierState) error {
	const token = 0
	nc := h.nodeComm
	if nc.rank != 0 {
		if err := nc.sendReserved(0, tagHier, token); err != nil {
			return err
		}
	} else {
		for src := 1; src < nc.Size(); src++ {
			if _, err := nc.recvReserved(src, tagHier, nil); err != nil {
				return err
			}
		}
	}
	if h.leaderComm != nil {
		if err := h.leaderComm.Barrier(); err != nil {
			return err
		}
	}
	if nc.rank == 0 {
		for dst := 1; dst < nc.Size(); dst++ {
			if err := nc.sendReserved(dst, tagHier, token); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := nc.recvReserved(0, tagHier, nil)
	return err
}

// hierBcast: relay the value from root to its node's leader if root is not
// one, broadcast among the leaders, then within each node.
func hierBcast[T any](c *Comm, h *hierState, v T, root int) (T, error) {
	var zero T
	rootLeader := h.leaders[h.nodeOf[root]]
	if root != rootLeader {
		if c.rank == root {
			if err := c.sendReserved(rootLeader, tagHier, v); err != nil {
				return zero, err
			}
		} else if c.rank == rootLeader {
			if _, err := c.recvReserved(root, tagHier, &v); err != nil {
				return zero, err
			}
		}
	}
	if h.leaderComm != nil {
		lv, err := Bcast(h.leaderComm, v, h.nodeOf[root])
		if err != nil {
			return zero, err
		}
		v = lv
	}
	return Bcast(h.nodeComm, v, 0)
}

// hierReduce: tree-reduce within each node to its leader, tree-reduce among
// the leaders toward root's leader, then one relay hop leader→root if root
// is not a leader. As with the flat tree, the fold order differs from the
// linear rank order, so combine must be associative (ReduceLinear keeps its
// strict-order contract and never takes this path).
func hierReduce[T any](c *Comm, h *hierState, v T, combine func(a, b T) T, root int) (T, error) {
	var zero T
	part, err := ReduceWith(h.nodeComm, v, combine, 0, ReduceTree)
	if err != nil {
		return zero, err
	}
	rootNode := h.nodeOf[root]
	rootLeader := h.leaders[rootNode]
	if h.leaderComm != nil {
		part, err = ReduceWith(h.leaderComm, part, combine, rootNode, ReduceTree)
		if err != nil {
			return zero, err
		}
	}
	if root == rootLeader {
		if c.rank == root {
			return part, nil
		}
		return zero, nil
	}
	switch c.rank {
	case rootLeader:
		if err := c.sendReserved(root, tagHier, part); err != nil {
			return zero, err
		}
		return zero, nil
	case root:
		var out T
		if _, err := c.recvReserved(rootLeader, tagHier, &out); err != nil {
			return zero, err
		}
		return out, nil
	default:
		return zero, nil
	}
}

// hierAllreduce: reduce within each node, allreduce among the leaders,
// broadcast back within each node — one inter-node exchange total.
func hierAllreduce[T any](c *Comm, h *hierState, v T, combine func(a, b T) T) (T, error) {
	var zero T
	part, err := ReduceWith(h.nodeComm, v, combine, 0, ReduceTree)
	if err != nil {
		return zero, err
	}
	if h.leaderComm != nil {
		part, err = Allreduce(h.leaderComm, part, combine)
		if err != nil {
			return zero, err
		}
	}
	return Bcast(h.nodeComm, part, 0)
}

// hierAllreduceSlice is the vector counterpart: a Rabenseifner reduce to
// the node leader, a Rabenseifner allreduce among the leaders, and a
// pipelined broadcast back down. Each rank still moves O(len(v)) bytes, but
// the inter-node link carries one payload per node instead of one per rank.
func hierAllreduceSlice[T any](c *Comm, h *hierState, v []T, scalarCombine func(a, b []T) []T, fo vecFold[T]) ([]T, error) {
	part, err := reduceSlice(h.nodeComm, v, scalarCombine, fo, 0)
	if err != nil {
		return nil, err
	}
	if h.leaderComm != nil {
		part, err = allreduceSlice(h.leaderComm, part, scalarCombine, fo)
		if err != nil {
			return nil, err
		}
	}
	return BcastSlice(h.nodeComm, part, 0)
}

// hierReduceSlice: node-level vector reduce to each leader, leader-level
// vector reduce toward root's leader, then one whole-payload relay hop to
// root if root is not a leader.
func hierReduceSlice[T any](c *Comm, h *hierState, v []T, scalarCombine func(a, b []T) []T, fo vecFold[T], root int) ([]T, error) {
	part, err := reduceSlice(h.nodeComm, v, scalarCombine, fo, 0)
	if err != nil {
		return nil, err
	}
	rootNode := h.nodeOf[root]
	rootLeader := h.leaders[rootNode]
	if h.leaderComm != nil {
		part, err = reduceSlice(h.leaderComm, part, scalarCombine, fo, rootNode)
		if err != nil {
			return nil, err
		}
	}
	if root == rootLeader {
		if c.rank == root {
			return part, nil
		}
		return nil, nil
	}
	switch c.rank {
	case rootLeader:
		if err := c.sendReserved(root, tagHier, part); err != nil {
			return nil, err
		}
		return nil, nil
	case root:
		var out []T
		if _, err := c.recvReserved(rootLeader, tagHier, &out); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, nil
	}
}

// hierBcastSlice: relay root's payload to its leader if needed, pipeline it
// among the leaders, then pipeline it within each node. Unlike the flat
// BcastSlice, a non-leader root receives back (and returns) a fresh copy of
// its own payload from the intra-node phase; values are identical either
// way.
func hierBcastSlice[T any](c *Comm, h *hierState, v []T, root int) ([]T, error) {
	rootLeader := h.leaders[h.nodeOf[root]]
	if root != rootLeader {
		if c.rank == root {
			if err := c.sendReserved(rootLeader, tagHier, v); err != nil {
				return nil, err
			}
		} else if c.rank == rootLeader {
			// Receive into a fresh slice: decoding into v would let gob
			// reuse its backing array and overwrite the caller's buffer.
			var relayed []T
			if _, err := c.recvReserved(root, tagHier, &relayed); err != nil {
				return nil, err
			}
			v = relayed
		}
	}
	if h.leaderComm != nil {
		lv, err := BcastSlice(h.leaderComm, v, h.nodeOf[root])
		if err != nil {
			return nil, err
		}
		v = lv
	}
	return BcastSlice(h.nodeComm, v, 0)
}
