//go:build race

package mpi

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
