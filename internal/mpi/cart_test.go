package mpi

import (
	"fmt"
	"reflect"
	"testing"
)

func TestCartValidation(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		if _, err := NewCart(c, nil, nil); err == nil {
			return fmt.Errorf("empty dims accepted")
		}
		if _, err := NewCart(c, []int{2, 2}, nil); err == nil {
			return fmt.Errorf("2x2 grid accepted for 6 ranks")
		}
		if _, err := NewCart(c, []int{0, 6}, nil); err == nil {
			return fmt.Errorf("zero dimension accepted")
		}
		if _, err := NewCart(c, []int{2, 3}, []bool{true}); err == nil {
			return fmt.Errorf("mismatched periodic flags accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCoordsRoundTrip(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		ct, err := NewCart(c, []int{2, 3}, nil)
		if err != nil {
			return err
		}
		coords := ct.Coords()
		want := []int{c.Rank() / 3, c.Rank() % 3} // row-major
		if !reflect.DeepEqual(coords, want) {
			return fmt.Errorf("rank %d coords %v, want %v", c.Rank(), coords, want)
		}
		if back := ct.RankOf(coords); back != c.Rank() {
			return fmt.Errorf("RankOf(Coords) = %d for rank %d", back, c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartShiftNonPeriodic(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		ct, err := NewCart(c, []int{4}, nil)
		if err != nil {
			return err
		}
		down, up, err := ct.Shift(0, 1)
		if err != nil {
			return err
		}
		wantDown, wantUp := c.Rank()-1, c.Rank()+1
		if wantDown < 0 {
			wantDown = ProcNull
		}
		if wantUp > 3 {
			wantUp = ProcNull
		}
		if down != wantDown || up != wantUp {
			return fmt.Errorf("rank %d shift = (%d, %d), want (%d, %d)", c.Rank(), down, up, wantDown, wantUp)
		}
		if _, _, err := ct.Shift(5, 1); err == nil {
			return fmt.Errorf("out-of-range dimension accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartShiftPeriodicWraps(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		ct, err := NewCart(c, []int{4}, []bool{true})
		if err != nil {
			return err
		}
		down, up, err := ct.Shift(0, 1)
		if err != nil {
			return err
		}
		if down != (c.Rank()+3)%4 || up != (c.Rank()+1)%4 {
			return fmt.Errorf("rank %d periodic shift = (%d, %d)", c.Rank(), down, up)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvShiftHaloExchange(t *testing.T) {
	// Classic 1-D halo exchange: each rank ends up with its neighbours'
	// values.
	const np = 5
	err := Run(np, func(c *Comm) error {
		ct, err := NewCart(c, []int{np}, nil)
		if err != nil {
			return err
		}
		mine := c.Rank() * 100
		fromDown, fromUp := -1, -1
		hasDown, hasUp, err := ct.SendrecvShift(0, 7, mine, mine, &fromDown, &fromUp)
		if err != nil {
			return err
		}
		if c.Rank() > 0 {
			if !hasDown || fromDown != (c.Rank()-1)*100 {
				return fmt.Errorf("rank %d fromDown = %d (has=%v)", c.Rank(), fromDown, hasDown)
			}
		} else if hasDown {
			return fmt.Errorf("rank 0 received from a nonexistent down neighbour")
		}
		if c.Rank() < np-1 {
			if !hasUp || fromUp != (c.Rank()+1)*100 {
				return fmt.Errorf("rank %d fromUp = %d (has=%v)", c.Rank(), fromUp, hasUp)
			}
		} else if hasUp {
			return fmt.Errorf("last rank received from a nonexistent up neighbour")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCart2DGridNeighbours(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		ct, err := NewCart(c, []int{2, 3}, nil)
		if err != nil {
			return err
		}
		// Along dimension 0 (rows of the 2x3 grid), rank r's up neighbour
		// is r+3 when it exists.
		down, up, err := ct.Shift(0, 1)
		if err != nil {
			return err
		}
		if c.Rank() < 3 {
			if down != ProcNull || up != c.Rank()+3 {
				return fmt.Errorf("rank %d dim0 shift = (%d, %d)", c.Rank(), down, up)
			}
		} else {
			if down != c.Rank()-3 || up != ProcNull {
				return fmt.Errorf("rank %d dim0 shift = (%d, %d)", c.Rank(), down, up)
			}
		}
		if got := ct.Dims(); !reflect.DeepEqual(got, []int{2, 3}) {
			return fmt.Errorf("Dims() = %v", got)
		}
		if ct.Comm() != c {
			return fmt.Errorf("Comm() identity lost")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCartShiftEdgeCases: the boundary geometry MPI codes trip over —
// one-rank worlds, unit dimensions, zero/negative/oversized displacements —
// table-driven with every rank's expected (source, dest) pair spelled out.
// Nonperiodic edges must say ProcNull, never a wrapped or clamped rank.
func TestCartShiftEdgeCases(t *testing.T) {
	null := ProcNull
	cases := []struct {
		name     string
		np       int
		dims     []int
		periodic []bool
		dim      int
		disp     int
		want     map[int][2]int // rank -> {source (down), dest (up)}
	}{
		{"one-rank-world-nonperiodic", 1, []int{1}, nil, 0, 1,
			map[int][2]int{0: {null, null}}},
		{"one-rank-world-periodic-self-neighbour", 1, []int{1}, []bool{true}, 0, 1,
			map[int][2]int{0: {0, 0}}},
		{"zero-displacement-is-self", 3, []int{3}, nil, 0, 0,
			map[int][2]int{0: {0, 0}, 1: {1, 1}, 2: {2, 2}}},
		{"negative-displacement-mirrors-positive", 3, []int{3}, nil, 0, -1,
			map[int][2]int{0: {1, null}, 1: {2, 0}, 2: {null, 1}}},
		{"displacement-past-the-edge", 3, []int{3}, nil, 0, 5,
			map[int][2]int{0: {null, null}, 1: {null, null}, 2: {null, null}}},
		{"displacement-wraps-modulo-periodic", 3, []int{3}, []bool{true}, 0, 5,
			map[int][2]int{0: {1, 2}, 1: {2, 0}, 2: {0, 1}}},
		{"unit-dimension-nonperiodic", 4, []int{1, 4}, nil, 0, 1,
			map[int][2]int{0: {null, null}, 1: {null, null}, 2: {null, null}, 3: {null, null}}},
		{"unit-dimension-periodic-self-neighbour", 4, []int{1, 4}, []bool{true, false}, 0, 1,
			map[int][2]int{0: {0, 0}, 1: {1, 1}, 2: {2, 2}, 3: {3, 3}}},
		{"column-shift-at-row-edges", 4, []int{2, 2}, nil, 1, 1,
			map[int][2]int{0: {null, 1}, 1: {0, null}, 2: {null, 3}, 3: {2, null}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := Run(tc.np, func(c *Comm) error {
				ct, err := NewCart(c, tc.dims, tc.periodic)
				if err != nil {
					return err
				}
				down, up, err := ct.Shift(tc.dim, tc.disp)
				if err != nil {
					return err
				}
				want := tc.want[c.Rank()]
				if down != want[0] || up != want[1] {
					return fmt.Errorf("rank %d: Shift(%d, %d) = (%d, %d), want (%d, %d)",
						c.Rank(), tc.dim, tc.disp, down, up, want[0], want[1])
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCartRankOfEdgeCases: out-of-grid coordinates on a nonperiodic
// dimension are ProcNull (-1), mismatched coordinate arity is rejected,
// and deep negative coordinates wrap correctly when periodic.
func TestCartRankOfEdgeCases(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		open, err := NewCart(c, []int{4}, nil)
		if err != nil {
			return err
		}
		for _, coords := range [][]int{{-1}, {4}, {100}, {0, 0}, {}} {
			if r := open.RankOf(coords); r != -1 {
				return fmt.Errorf("RankOf(%v) = %d on open [4], want -1", coords, r)
			}
		}
		ring, err := NewCart(c, []int{4}, []bool{true})
		if err != nil {
			return err
		}
		for coord, want := range map[int]int{-1: 3, -9: 3, 4: 0, 11: 3} {
			if r := ring.RankOf([]int{coord}); r != want {
				return fmt.Errorf("RankOf(%d) = %d on ring [4], want %d", coord, r, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendrecvShiftNoNeighbours: on a one-rank nonperiodic world the halo
// exchange is a no-op that reports no traffic and must not touch the
// destination buffers.
func TestSendrecvShiftNoNeighbours(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		ct, err := NewCart(c, []int{1}, nil)
		if err != nil {
			return err
		}
		fromDown, fromUp := -7.0, -7.0
		hasDown, hasUp, err := ct.SendrecvShift(0, 3, 1.0, 2.0, &fromDown, &fromUp)
		if err != nil {
			return err
		}
		if hasDown || hasUp {
			return fmt.Errorf("phantom neighbours: hasDown=%v hasUp=%v", hasDown, hasUp)
		}
		if fromDown != -7.0 || fromUp != -7.0 {
			return fmt.Errorf("buffers touched: fromDown=%v fromUp=%v", fromDown, fromUp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
