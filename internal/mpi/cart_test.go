package mpi

import (
	"fmt"
	"reflect"
	"testing"
)

func TestCartValidation(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		if _, err := NewCart(c, nil, nil); err == nil {
			return fmt.Errorf("empty dims accepted")
		}
		if _, err := NewCart(c, []int{2, 2}, nil); err == nil {
			return fmt.Errorf("2x2 grid accepted for 6 ranks")
		}
		if _, err := NewCart(c, []int{0, 6}, nil); err == nil {
			return fmt.Errorf("zero dimension accepted")
		}
		if _, err := NewCart(c, []int{2, 3}, []bool{true}); err == nil {
			return fmt.Errorf("mismatched periodic flags accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCoordsRoundTrip(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		ct, err := NewCart(c, []int{2, 3}, nil)
		if err != nil {
			return err
		}
		coords := ct.Coords()
		want := []int{c.Rank() / 3, c.Rank() % 3} // row-major
		if !reflect.DeepEqual(coords, want) {
			return fmt.Errorf("rank %d coords %v, want %v", c.Rank(), coords, want)
		}
		if back := ct.RankOf(coords); back != c.Rank() {
			return fmt.Errorf("RankOf(Coords) = %d for rank %d", back, c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartShiftNonPeriodic(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		ct, err := NewCart(c, []int{4}, nil)
		if err != nil {
			return err
		}
		down, up, err := ct.Shift(0, 1)
		if err != nil {
			return err
		}
		wantDown, wantUp := c.Rank()-1, c.Rank()+1
		if wantDown < 0 {
			wantDown = ProcNull
		}
		if wantUp > 3 {
			wantUp = ProcNull
		}
		if down != wantDown || up != wantUp {
			return fmt.Errorf("rank %d shift = (%d, %d), want (%d, %d)", c.Rank(), down, up, wantDown, wantUp)
		}
		if _, _, err := ct.Shift(5, 1); err == nil {
			return fmt.Errorf("out-of-range dimension accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartShiftPeriodicWraps(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		ct, err := NewCart(c, []int{4}, []bool{true})
		if err != nil {
			return err
		}
		down, up, err := ct.Shift(0, 1)
		if err != nil {
			return err
		}
		if down != (c.Rank()+3)%4 || up != (c.Rank()+1)%4 {
			return fmt.Errorf("rank %d periodic shift = (%d, %d)", c.Rank(), down, up)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvShiftHaloExchange(t *testing.T) {
	// Classic 1-D halo exchange: each rank ends up with its neighbours'
	// values.
	const np = 5
	err := Run(np, func(c *Comm) error {
		ct, err := NewCart(c, []int{np}, nil)
		if err != nil {
			return err
		}
		mine := c.Rank() * 100
		fromDown, fromUp := -1, -1
		hasDown, hasUp, err := ct.SendrecvShift(0, 7, mine, mine, &fromDown, &fromUp)
		if err != nil {
			return err
		}
		if c.Rank() > 0 {
			if !hasDown || fromDown != (c.Rank()-1)*100 {
				return fmt.Errorf("rank %d fromDown = %d (has=%v)", c.Rank(), fromDown, hasDown)
			}
		} else if hasDown {
			return fmt.Errorf("rank 0 received from a nonexistent down neighbour")
		}
		if c.Rank() < np-1 {
			if !hasUp || fromUp != (c.Rank()+1)*100 {
				return fmt.Errorf("rank %d fromUp = %d (has=%v)", c.Rank(), fromUp, hasUp)
			}
		} else if hasUp {
			return fmt.Errorf("last rank received from a nonexistent up neighbour")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCart2DGridNeighbours(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		ct, err := NewCart(c, []int{2, 3}, nil)
		if err != nil {
			return err
		}
		// Along dimension 0 (rows of the 2x3 grid), rank r's up neighbour
		// is r+3 when it exists.
		down, up, err := ct.Shift(0, 1)
		if err != nil {
			return err
		}
		if c.Rank() < 3 {
			if down != ProcNull || up != c.Rank()+3 {
				return fmt.Errorf("rank %d dim0 shift = (%d, %d)", c.Rank(), down, up)
			}
		} else {
			if down != c.Rank()-3 || up != ProcNull {
				return fmt.Errorf("rank %d dim0 shift = (%d, %d)", c.Rank(), down, up)
			}
		}
		if got := ct.Dims(); !reflect.DeepEqual(got, []int{2, 3}) {
			return fmt.Errorf("Dims() = %v", got)
		}
		if ct.Comm() != c {
			return fmt.Errorf("Comm() identity lost")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
