package mpi

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDeadlineMutualRecvDeadlock: the classic mutual-receive deadlock — both
// ranks Recv first, nobody has sent — must produce a readable report naming
// both blocked ranks and what each was waiting for, instead of hanging.
func TestDeadlineMutualRecvDeadlock(t *testing.T) {
	var mu sync.Mutex
	var rankErrs []error
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(2, func(c *Comm) error {
			peer := 1 - c.Rank()
			_, rerr := c.Recv(peer, 7, nil) // deadlock: the sends never happen
			mu.Lock()
			rankErrs = append(rankErrs, rerr)
			mu.Unlock()
			return rerr
		}, WithDeadline(80*time.Millisecond))
	})

	var derr *DeadlineError
	if !errors.As(err, &derr) {
		t.Fatalf("err = %v, want a *DeadlineError in the chain", err)
	}
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("err = %v, want both ErrDeadlineExceeded and ErrWorldAborted identities", err)
	}

	// The snapshot must cover both ranks, each blocked in a Recv on the
	// other, under the tag they were matching.
	seen := map[int]BlockedOp{}
	for _, op := range derr.Blocked {
		seen[op.Rank] = op
	}
	for rank := 0; rank < 2; rank++ {
		op, ok := seen[rank]
		if !ok {
			t.Fatalf("report %v missing blocked rank %d", derr.Blocked, rank)
		}
		if op.Op != "Recv" || op.Src != 1-rank || op.Tag != 7 {
			t.Fatalf("rank %d reported as %+v, want Recv from %d tag 7", rank, op, 1-rank)
		}
	}

	// The report is human-readable: both ranks and their sources appear in
	// the error text itself.
	text := err.Error()
	for _, want := range []string{"rank 0", "rank 1", "src", "tag"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report %q does not mention %q", text, want)
		}
	}

	// Exactly one rank owns the deadline report; the other fails as a
	// victim of the resulting revoke — never two competing reports.
	mu.Lock()
	defer mu.Unlock()
	var reports, victims int
	for _, re := range rankErrs {
		var d *DeadlineError
		switch {
		// The victim's abort error wraps the report, so the abort identity
		// must be checked first: only the originator returns a bare report.
		case errors.Is(re, ErrWorldAborted):
			victims++
		case errors.As(re, &d):
			reports++
		default:
			t.Fatalf("unexpected rank error %v", re)
		}
	}
	if reports != 1 || victims != 1 {
		t.Fatalf("got %d deadline reports and %d victims, want exactly 1 and 1", reports, victims)
	}
}

// TestDeadlineNotTriggeredByProgress: a deadline bounds each blocking
// operation, not the whole program — a ping-pong that keeps making progress
// under a generous deadline completes normally.
func TestDeadlineNotTriggeredByProgress(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		peer := 1 - c.Rank()
		for i := 0; i < 50; i++ {
			if c.Rank() == 0 {
				if err := c.Send(peer, 1, i); err != nil {
					return err
				}
				if _, err := c.Recv(peer, 2, nil); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(peer, 1, nil); err != nil {
					return err
				}
				if err := c.Send(peer, 2, i); err != nil {
					return err
				}
			}
		}
		return nil
	}, WithDeadline(2*time.Second))
	if err != nil {
		t.Fatalf("progressing world hit deadline machinery: %v", err)
	}
}

// TestDeadlineOnProbe: Probe blocks through the same primitive as Recv and
// is reported under its own operation name.
func TestDeadlineOnProbe(t *testing.T) {
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(1, func(c *Comm) error {
			_, perr := c.Probe(0, 3) // self never sends: guaranteed stall
			return perr
		}, WithDeadline(50*time.Millisecond))
	})
	var derr *DeadlineError
	if !errors.As(err, &derr) {
		t.Fatalf("err = %v, want *DeadlineError", err)
	}
	if derr.Op != "Probe" || derr.Src != 0 || derr.Tag != 3 {
		t.Fatalf("report %+v, want Probe on src 0 tag 3", derr)
	}
}

// TestDeadlineOverTCP: WithDeadline is transport-independent; the same
// stalled receive produces the same report on the TCP transport.
func TestDeadlineOverTCP(t *testing.T) {
	err := runWithWatchdog(t, 15*time.Second, func() error {
		return RunTCP(2, func(c *Comm) error {
			if c.Rank() == 0 {
				_, rerr := c.Recv(1, 9, nil) // rank 1 never sends
				return rerr
			}
			// Rank 1 idles without sending; its own Recv keeps it resident
			// until the revoke reaches it.
			_, rerr := c.Recv(0, 9, nil)
			return rerr
		}, WithDeadline(100*time.Millisecond))
	})
	if !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("err = %v, want a deadline/abort failure", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want a deadline report", err)
	}
}
