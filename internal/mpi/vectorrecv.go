package mpi

import (
	"errors"
	"unsafe"
)

// Zero-copy segment receives for the vector collectives. A ring or
// halving/doubling exchange receives a segment only to fold or copy it into
// the accumulator and discard it — so materializing the payload into a
// scratch slice first is a whole wasted pass over the bytes (plus the
// allocation). The helpers here read the payload where it already lives
// whenever the frame permits it: the typed fast-path value on the local
// transport (always a private copy), or an in-place element view of the raw
// little-endian bytes — which for an shm rendezvous frame is the sender's
// staging block in shared memory, extending the protocol's
// copy-exactly-once promise to its natural limit: the one copy is the fold
// itself. Serialized worlds and type mismatches fall back to the ordinary
// decode path through the caller's scratch buffer.

// errVecSegLen reports a received segment whose element count does not match
// the receiver's slot. The collectives wrap it with their own per-algorithm
// diagnostics.
var errVecSegLen = errors.New("mpi: vector segment length mismatch")

// rawSliceView reinterprets a raw frame's payload bytes as a []T aliasing
// the payload, when the platform stores T exactly as the wire does
// (rawViewNative) and the frame's raw kind matches T. []bool is excluded:
// the in-memory contract for bool is stricter than the wire's one byte, so
// bools always take the normalizing decode loop. The view is only valid
// until the frame is released.
func rawSliceView[T any](f frame) ([]T, bool) {
	if !rawViewNative || f.Raw == rawNone || f.Raw == rawBool {
		return nil, false
	}
	want, ok := rawKindOf([]T(nil))
	if !ok || want != f.Raw {
		return nil, false
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	data := f.Data
	if len(data) < size {
		// Empty payloads view as empty slices; a runt payload (shorter than
		// one element) falls back to the decode path's truncation behavior.
		return nil, len(data) == 0
	}
	if uintptr(unsafe.Pointer(&data[0]))%uintptr(unsafe.Alignof(zero)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&data[0])), len(data)/size), true
}

// frameSegView returns the frame's payload as a []T readable in place, and
// whether such a view exists. The caller must finish with the view before
// releasing the frame and must not retain it.
func frameSegView[T any](f frame) ([]T, bool) {
	if f.HasVal {
		s, ok := f.Val.([]T)
		return s, ok
	}
	return rawSliceView[T](f)
}

// recvSegInto is the shared body of recvSegFold and recvSegCopy: it receives
// the next (source, tag) message and applies the payload to seg — in place
// from a view when the frame allows it, via the caller's scratch buffer
// otherwise. It returns the received element count; when that differs from
// len(seg) nothing is applied and the error is errVecSegLen for the caller
// to phrase.
func recvSegInto[T any](c *Comm, source, tag int, seg []T, scratch *[]T, apply func(dst, in []T)) (int, error) {
	if err := c.checkRank(source); err != nil {
		return 0, err
	}
	f, err := c.waitFrame("Recv", source, tag, true)
	if err != nil {
		return 0, err
	}
	if in, ok := frameSegView[T](f); ok {
		n := len(in)
		if n != len(seg) {
			f.release()
			return n, errVecSegLen
		}
		apply(seg, in)
		f.release()
		return n, nil
	}
	if err := f.decodeInto(scratch); err != nil {
		return 0, err
	}
	in := *scratch
	if len(in) != len(seg) {
		return len(in), errVecSegLen
	}
	apply(seg, in)
	return len(in), nil
}

// recvSegFold receives a segment and folds it into seg with the caller's
// slice-level fold (foldWith for an arbitrary combine, opFold for a built-in
// operator).
func recvSegFold[T any](c *Comm, source, tag int, seg []T, fold func(dst, in []T), scratch *[]T) (int, error) {
	return recvSegInto(c, source, tag, seg, scratch, fold)
}

// recvSegCopy receives a segment and copies it over seg.
func recvSegCopy[T any](c *Comm, source, tag int, seg []T, scratch *[]T) (int, error) {
	return recvSegInto(c, source, tag, seg, scratch, func(dst, in []T) {
		copy(dst, in)
	})
}
