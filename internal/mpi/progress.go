package mpi

import "sync"

// Nonblocking collectives. IBcast, IReduce, IAllreduce, IAllreduceSlice,
// and IBarrier return immediately with a Request and run the collective's
// multi-phase schedule in the background, so a caller can overlap the
// communication with computation and finish with Wait/Test/Waitall — the
// MPI_Ibcast/MPI_Iallreduce/... family, and the machinery behind the
// forestfire exemplar's communication/computation overlap.
//
// Each communicator owns one lazily created progress engine. The engine
// runs posted collectives strictly in post order on a single background
// goroutine — the progress thread every production MPI hides inside its
// runtime — over a *shadow communicator*: a derived communicator with the
// reserved ctxProgress context id, the same group and rank numbering as its
// parent. The shadow context is what isolates the engine's traffic from the
// parent's: a blocking collective on the parent can proceed concurrently
// with an in-flight nonblocking one without their reserved-tag frames ever
// cross-matching.
//
// Correctness of the matching relies on the usual MPI contract extended to
// nonblocking calls: all ranks post nonblocking collectives on a given
// communicator in the same order (MPI imposes exactly this for the I-
// collectives). Since posts happen in program order on each rank and the
// engine executes FIFO, the k-th posted collective on every rank is the
// same operation, and within it the schedules match by per-pair FIFO just
// as blocking collectives do.
//
// The engine inherits the whole failure model for free, because the
// schedules run on the ordinary blocking primitives: a world abort or
// injected kill poisons the shadow communicator's mailbox like any other,
// WithDeadline converts a stall into the deadline report, and under
// WithRecovery a peer failure surfaces as the retryable *RankFailedError —
// in every case the error completes the Request and comes back from Wait.
//
// Input/output buffers follow MPI's rule: they belong to the runtime from
// post to completion. Do not mutate v (or read *out) between posting and
// Wait/Test reporting done.

// progressEngine executes posted collective schedules FIFO on a background
// goroutine. The goroutine is spawned on demand and exits when the queue
// drains, so an idle communicator holds no goroutine.
type progressEngine struct {
	pc      *Comm // the shadow communicator all posted schedules run on
	mu      sync.Mutex
	queue   []progOp
	running bool
}

type progOp struct {
	req *Request
	run func(pc *Comm) error
}

// progress returns the communicator's engine, building it (and the shadow
// communicator) on first use.
func (c *Comm) progress() *progressEngine {
	c.progOnce.Do(func() {
		members := make([]int, len(c.ranks))
		for i := range members {
			members[i] = i
		}
		// The shadow is a full-fledged communicator — flatOnly=false — so
		// nonblocking collectives pick up the hierarchical schedules under
		// exactly the same topology rules as blocking ones.
		c.prog = &progressEngine{pc: c.derived(c.ctx*64+ctxProgress, members, false)}
	})
	return c.prog
}

// post enqueues one collective schedule and returns its Request.
func (e *progressEngine) post(run func(pc *Comm) error) *Request {
	r := newRequest()
	e.mu.Lock()
	e.queue = append(e.queue, progOp{req: r, run: run})
	if !e.running {
		e.running = true
		go e.drain()
	}
	e.mu.Unlock()
	return r
}

// drain executes queued schedules in order until the queue empties.
func (e *progressEngine) drain() {
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			e.running = false
			e.mu.Unlock()
			return
		}
		op := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		op.req.complete(Status{}, op.run(e.pc))
	}
}

// IBarrier starts a nonblocking barrier: MPI_Ibarrier. The returned Request
// completes once every rank has posted its IBarrier (in particular, Wait
// does not return early on the poster's own arrival).
func (c *Comm) IBarrier() *Request {
	return c.progress().post(func(pc *Comm) error {
		return pc.Barrier()
	})
}

// IBcast starts a nonblocking broadcast of *v from root: MPI_Ibcast. On
// completion every rank's *v holds root's value. v must not be mutated (or
// read) between the post and completion.
func IBcast[T any](c *Comm, v *T, root int) *Request {
	return c.progress().post(func(pc *Comm) error {
		out, err := Bcast(pc, *v, root)
		if err != nil {
			return err
		}
		*v = out
		return nil
	})
}

// IReduce starts a nonblocking reduction of v toward root: MPI_Ireduce. On
// completion root's *out holds the combined value; out may be nil at the
// other ranks (it is left untouched there either way).
func IReduce[T any](c *Comm, v T, combine func(a, b T) T, root int, out *T) *Request {
	return c.progress().post(func(pc *Comm) error {
		res, err := Reduce(pc, v, combine, root)
		if err != nil {
			return err
		}
		if pc.rank == root && out != nil {
			*out = res
		}
		return nil
	})
}

// IAllreduce starts a nonblocking allreduce of v: MPI_Iallreduce. On
// completion every rank's *out holds the combined value.
func IAllreduce[T any](c *Comm, v T, combine func(a, b T) T, out *T) *Request {
	return c.progress().post(func(pc *Comm) error {
		res, err := Allreduce(pc, v, combine)
		if err != nil {
			return err
		}
		if out != nil {
			*out = res
		}
		return nil
	})
}

// IAllreduceSlice starts a nonblocking elementwise allreduce of the vector
// v: MPI_Iallreduce over a slice, with the same bandwidth-optimal algorithm
// selection as AllreduceSlice (including the hierarchical schedule on
// multi-node topologies). On completion every rank's *out holds the freshly
// allocated combined vector. v belongs to the runtime until completion.
func IAllreduceSlice[T any](c *Comm, v []T, combine func(a, b T) T, out *[]T) *Request {
	return c.progress().post(func(pc *Comm) error {
		res, err := AllreduceSlice(pc, v, combine)
		if err != nil {
			return err
		}
		if out != nil {
			*out = res
		}
		return nil
	})
}
