package mpi

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestErrorsComposeWithStdlib is the table-driven contract for how the
// package's error types interoperate with errors.Is / errors.As: a caller
// already handling stdlib timeouts handles MPI deadlines for free, and the
// recovery and abort errors expose both their sentinel and their cause.
func TestErrorsComposeWithStdlib(t *testing.T) {
	deadline := &DeadlineError{Rank: 1, Op: "Recv", Src: 0, Tag: 5, Timeout: time.Second}
	killCause := fmt.Errorf("%w: rank 2 (fault plan, on send to rank 0 tag 1)", ErrRankKilled)
	rfe := &RankFailedError{Ranks: []int{2}, cause: killCause}
	rfeRevoked := &RankFailedError{Ranks: []int{2, 3}, Revoked: true, cause: killCause}
	aborted := &abortError{cause: killCause}

	cases := []struct {
		name   string
		err    error
		target error
		want   bool
	}{
		{"DeadlineError is ErrDeadlineExceeded", deadline, ErrDeadlineExceeded, true},
		{"DeadlineError is context.DeadlineExceeded", deadline, context.DeadlineExceeded, true},
		{"DeadlineError is not ErrRankFailed", deadline, ErrRankFailed, false},
		{"sentinel ErrDeadlineExceeded is context.DeadlineExceeded", ErrDeadlineExceeded, context.DeadlineExceeded, true},
		{"RankFailedError is ErrRankFailed", rfe, ErrRankFailed, true},
		{"RankFailedError unwraps to its cause", rfe, ErrRankKilled, true},
		{"RankFailedError is not a deadline", rfe, ErrDeadlineExceeded, false},
		{"revoked RankFailedError is ErrRankFailed", rfeRevoked, ErrRankFailed, true},
		{"abortError is ErrWorldAborted", aborted, ErrWorldAborted, true},
		{"abortError unwraps to its cause", aborted, ErrRankKilled, true},
		{"abortError is not a deadline", aborted, ErrDeadlineExceeded, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := errors.Is(tc.err, tc.target); got != tc.want {
				t.Fatalf("errors.Is(%v, %v) = %v, want %v", tc.err, tc.target, got, tc.want)
			}
		})
	}

	t.Run("errors.As extracts RankFailedError", func(t *testing.T) {
		wrapped := fmt.Errorf("outer: %w", rfeRevoked)
		var got *RankFailedError
		if !errors.As(wrapped, &got) {
			t.Fatal("errors.As failed to extract *RankFailedError")
		}
		if !got.Revoked || len(got.Ranks) != 2 {
			t.Fatalf("extracted wrong value: %+v", got)
		}
	})
	t.Run("errors.As extracts DeadlineError", func(t *testing.T) {
		wrapped := fmt.Errorf("outer: %w", deadline)
		var got *DeadlineError
		if !errors.As(wrapped, &got) {
			t.Fatal("errors.As failed to extract *DeadlineError")
		}
		if got.Rank != 1 || got.Op != "Recv" {
			t.Fatalf("extracted wrong value: %+v", got)
		}
	})
}

// TestErrorsComposeLiveDeadline runs a real mutual-Recv deadlock and checks
// the error the launcher reports composes with both sentinels end to end.
func TestErrorsComposeLiveDeadline(t *testing.T) {
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return Run(2, func(c *Comm) error {
			_, err := c.Recv(1-c.Rank(), 3, nil)
			return err
		}, WithDeadline(80*time.Millisecond))
	})
	if err == nil {
		t.Fatal("mutual Recv should deadlock and trip the deadline")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("launcher error should match ErrDeadlineExceeded: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("launcher error should match context.DeadlineExceeded: %v", err)
	}
	var derr *DeadlineError
	if !errors.As(err, &derr) {
		t.Errorf("launcher error should carry a *DeadlineError: %v", err)
	}
}

// TestKillAttributionOverDeadline is the regression for kill-rank
// attribution: a rank killed mid-exchange leaves its peers stalled, and with
// WithDeadline armed the visible symptom used to be a cascading
// *DeadlineError on a survivor. The report must instead attribute the stall
// to the injected kill: the run's error matches ErrRankKilled, not the
// deadline sentinel, and the FaultReport names the killed rank.
func TestKillAttributionOverDeadline(t *testing.T) {
	var rep FaultReport
	plan := FaultPlan{Rules: []FaultRule{{
		Src: 1, Dst: AnySource, Tag: AnyTag, Action: FaultKillRank,
	}}}
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return Run(3, func(c *Comm) error {
			if c.Rank() == 1 {
				err := c.Send(0, 7, 42) // first send trips the kill
				if err == nil {
					return fmt.Errorf("rank 1 expected the injected kill")
				}
				// A real crashed process vanishes without reporting: linger
				// past the survivors' deadline so the stall is observed while
				// this rank's failure is still only the injected kill.
				time.Sleep(400 * time.Millisecond)
				return err
			}
			_, err := c.Recv(1, 7, nil) // stalls: the message was never sent
			return err
		}, WithDeadline(100*time.Millisecond), WithFaults(plan), WithFaultReport(&rep))
	})
	if err == nil {
		t.Fatal("run with a killed rank should fail")
	}
	if !errors.Is(err, ErrRankKilled) {
		t.Errorf("stall should be attributed to the injected kill, got %v", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("kill must not be misattributed to a cascading deadline: %v", err)
	}
	killed := rep.Killed()
	if len(killed) != 1 || killed[0] != 1 {
		t.Errorf("FaultReport.Killed() = %v, want [1]", killed)
	}
	inj := rep.Injected()
	if len(inj) == 0 {
		t.Fatal("FaultReport recorded no injected faults")
	}
	if inj[0].Action != FaultKillRank || inj[0].Src != 1 || inj[0].Rule != 0 {
		t.Errorf("first injected fault = %+v, want kill of rank 1 by rule 0", inj[0])
	}
}
