package mpi

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// encodeValue serializes v with gob. Each message is encoded with a fresh
// encoder so that frames are self-describing and can be decoded in any
// order, which matters because receives may match out of program order
// across different senders.
func encodeValue(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("mpi: encoding message payload: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeValue deserializes a payload produced by encodeValue into the
// pointer v.
func decodeValue(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("mpi: decoding message payload: %w", err)
	}
	return nil
}
