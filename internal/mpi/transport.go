package mpi

import (
	"sync"
	"time"
)

// Transport moves frames between ranks. Implementations must preserve the
// order of frames sent from one rank to another (per-pair FIFO); the
// mailbox layer turns that into MPI's non-overtaking matching guarantee.
// Decorators stack on the base transport in wrapTransport's fixed order —
// fault injection innermost, then message counting, then the test hook —
// so counters observe what a program tried to send, faults included.
// Failure propagation does not pass through Send: a world abort poisons
// the receiving mailboxes directly (local) or travels as a control frame
// outside the user frame stream (TCP), so no fault rule can suppress it.
type Transport interface {
	// Send routes f to the mailbox of rank f.Dst. It must not block
	// indefinitely: sends in this runtime are buffered, as in MPI's
	// buffered mode (and as in mpi4py's default for small messages).
	Send(f frame) error
	// Close releases transport resources and unblocks pending receives.
	Close() error
}

// typedCapable is implemented by transports that can deliver a frame's
// typed in-memory payload (frame.Val) without serialization. Transports
// that lack the method — or report false — receive only gob-encoded frames
// from the send path. Wrapping transports (see countingTransport) must
// forward the capability of the transport they wrap.
type typedCapable interface {
	deliversTyped() bool
}

// wireCapable is implemented by transports that serialize a frame's typed
// payload (frame.Val) into the v1 binary wire format *synchronously inside
// Send*. The distinction from typedCapable matters for copy semantics: a
// typed-delivering transport hands Val to another goroutine, so the send
// path must copy it first (typedPayload); a wire-capable transport has
// finished reading Val by the time Send returns, so the send path may pass
// the caller's slice uncopied — that is what makes a steady-state large
// send allocation-free. Wrapping transports forward the capability.
type wireCapable interface {
	wiresTyped() bool
}

// localTransport routes frames through in-memory mailboxes: all ranks are
// goroutines of one process, the analogue of running mpirun on one node.
//
// Without a cost model (latency and linkCost both nil — every plain world)
// Send appends straight to the destination mailbox: the zero-overhead fast
// path. With a model installed, Send enqueues onto a per-(sender, receiver)
// delivery queue drained by one goroutine per pair, which pays the modeled
// cost and then delivers. The single goroutine per ordered pair is what
// preserves per-pair FIFO (pinned by TestLatencyPreservesPerPairFIFO) while
// keeping Send properly buffered: a sender is never blocked by the modeled
// network, and — unlike the old sleep-on-the-sender's-goroutine scheme — a
// slow send to one rank no longer delays the sender's unrelated sends to
// other ranks, so modeled worlds can genuinely overlap communication with
// computation (the property the nonblocking collectives and the forestfire
// overlap benchmark measure).
type localTransport struct {
	boxes []*mailbox
	// latency, if set, is consulted on every delivery to simulate a fixed
	// per-message network delay between ranks (see WithLatency).
	latency func(src, dst int) time.Duration
	// linkCost, if set, is consulted with the payload size before each
	// delivery and may block — the hook the cluster package's contended
	// link model hangs bandwidth serialization on (see WithLinkCost).
	linkCost func(src, dst, bytes int)

	mu     sync.Mutex
	pairs  map[pairKey]*pairQueue
	closed bool
}

type pairKey struct{ src, dst int }

// pairQueue is one ordered (sender, receiver) pair's in-flight frames.
type pairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []frame
	closed bool
}

func newPairQueue() *pairQueue {
	p := &pairQueue{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pairQueue) enqueue(f frame) {
	p.mu.Lock()
	p.q = append(p.q, f)
	p.mu.Unlock()
	p.cond.Signal()
}

// next blocks for the pair's next frame; ok=false once the transport is
// closed (remaining frames are dropped — every rank's main has returned, so
// nothing can observe them, and paying their modeled cost would only delay
// goroutine exit).
func (p *pairQueue) next() (frame, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.q) == 0 && !p.closed {
		p.cond.Wait()
	}
	if p.closed {
		return frame{}, false
	}
	f := p.q[0]
	p.q = p.q[1:]
	return f, true
}

func (p *pairQueue) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

func newLocalTransport(np int) *localTransport {
	t := &localTransport{boxes: make([]*mailbox, np)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	return t
}

// deliversTyped: in-process mailboxes can hand typed values straight to the
// receiver, enabling the zero-serialization fast path.
func (t *localTransport) deliversTyped() bool { return true }

// Send delivers f to its destination mailbox — directly when no cost model
// is installed, via the pair's delivery goroutine otherwise.
func (t *localTransport) Send(f frame) error {
	if f.Dst < 0 || f.Dst >= len(t.boxes) {
		return ErrInvalidRank
	}
	if t.latency == nil && t.linkCost == nil {
		t.boxes[f.Dst].deliver(f)
		return nil
	}
	t.pair(f.WSrc, f.Dst).enqueue(f)
	return nil
}

// pair returns the (src, dst) delivery queue, creating it and its drainer
// goroutine on first use.
func (t *localTransport) pair(src, dst int) *pairQueue {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pairs == nil {
		t.pairs = make(map[pairKey]*pairQueue)
	}
	k := pairKey{src, dst}
	p := t.pairs[k]
	if p == nil {
		p = newPairQueue()
		if t.closed {
			p.closed = true
		}
		t.pairs[k] = p
		go t.deliverPair(src, dst, p)
	}
	return p
}

// deliverPair drains one pair's queue in order, paying the modeled cost per
// frame before appending to the destination mailbox.
func (t *localTransport) deliverPair(src, dst int, p *pairQueue) {
	for {
		f, ok := p.next()
		if !ok {
			return
		}
		if t.linkCost != nil {
			t.linkCost(src, dst, f.payloadSize())
		}
		if t.latency != nil {
			if d := t.latency(src, dst); d > 0 {
				time.Sleep(d)
			}
		}
		t.boxes[dst].deliver(f)
	}
}

func (t *localTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	pairs := t.pairs
	t.mu.Unlock()
	for _, p := range pairs {
		p.close()
	}
	for _, b := range t.boxes {
		b.close()
	}
	return nil
}
