package mpi

import "time"

// Transport moves frames between ranks. Implementations must preserve the
// order of frames sent from one rank to another (per-pair FIFO); the
// mailbox layer turns that into MPI's non-overtaking matching guarantee.
// Decorators stack on the base transport in wrapTransport's fixed order —
// fault injection innermost, then message counting, then the test hook —
// so counters observe what a program tried to send, faults included.
// Failure propagation does not pass through Send: a world abort poisons
// the receiving mailboxes directly (local) or travels as a control frame
// outside the user frame stream (TCP), so no fault rule can suppress it.
type Transport interface {
	// Send routes f to the mailbox of rank f.Dst. It must not block
	// indefinitely: sends in this runtime are buffered, as in MPI's
	// buffered mode (and as in mpi4py's default for small messages).
	Send(f frame) error
	// Close releases transport resources and unblocks pending receives.
	Close() error
}

// typedCapable is implemented by transports that can deliver a frame's
// typed in-memory payload (frame.Val) without serialization. Transports
// that lack the method — or report false — receive only gob-encoded frames
// from the send path. Wrapping transports (see countingTransport) must
// forward the capability of the transport they wrap.
type typedCapable interface {
	deliversTyped() bool
}

// wireCapable is implemented by transports that serialize a frame's typed
// payload (frame.Val) into the v1 binary wire format *synchronously inside
// Send*. The distinction from typedCapable matters for copy semantics: a
// typed-delivering transport hands Val to another goroutine, so the send
// path must copy it first (typedPayload); a wire-capable transport has
// finished reading Val by the time Send returns, so the send path may pass
// the caller's slice uncopied — that is what makes a steady-state large
// send allocation-free. Wrapping transports forward the capability.
type wireCapable interface {
	wiresTyped() bool
}

// localTransport routes frames through in-memory mailboxes: all ranks are
// goroutines of one process, the analogue of running mpirun on one node.
type localTransport struct {
	boxes []*mailbox
	// latency, if set, is consulted on every send to simulate network
	// cost between ranks (see WithLatency); it returns the artificial
	// delay to impose before delivery.
	latency func(src, dst int) time.Duration
}

func newLocalTransport(np int) *localTransport {
	t := &localTransport{boxes: make([]*mailbox, np)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	return t
}

// deliversTyped: in-process mailboxes can hand typed values straight to the
// receiver, enabling the zero-serialization fast path.
func (t *localTransport) deliversTyped() bool { return true }

// Send delivers f to its destination mailbox, after imposing any modeled
// latency.
//
// The simulated latency sleeps on the *sender's* goroutine, before the
// mailbox append. That is what preserves per-pair FIFO order (nothing is
// reordered because nothing is concurrent per sender), but it deliberately
// over-serializes the model: while rank A sleeps on a slow send to B, A's
// subsequent sends to every other rank are delayed too, as if the rank had
// a single half-duplex NIC. A future async-delivery implementation must
// keep the per-pair FIFO guarantee (pinned by TestLatencyPreservesPerPairFIFO)
// even when it stops serializing a sender's unrelated sends.
func (t *localTransport) Send(f frame) error {
	if f.Dst < 0 || f.Dst >= len(t.boxes) {
		return ErrInvalidRank
	}
	if t.latency != nil {
		if d := t.latency(f.WSrc, f.Dst); d > 0 {
			time.Sleep(d)
		}
	}
	t.boxes[f.Dst].deliver(f)
	return nil
}

func (t *localTransport) Close() error {
	for _, b := range t.boxes {
		b.close()
	}
	return nil
}
