package mpi

import "time"

// Transport moves frames between ranks. Implementations must preserve the
// order of frames sent from one rank to another (per-pair FIFO); the
// mailbox layer turns that into MPI's non-overtaking matching guarantee.
type Transport interface {
	// Send routes f to the mailbox of rank f.Dst. It must not block
	// indefinitely: sends in this runtime are buffered, as in MPI's
	// buffered mode (and as in mpi4py's default for small messages).
	Send(f frame) error
	// Close releases transport resources and unblocks pending receives.
	Close() error
}

// localTransport routes frames through in-memory mailboxes: all ranks are
// goroutines of one process, the analogue of running mpirun on one node.
type localTransport struct {
	boxes []*mailbox
	// latency, if set, is consulted on every send to simulate network
	// cost between ranks (see WithLatency); it returns the artificial
	// delay to impose before delivery.
	latency func(src, dst int) time.Duration
}

func newLocalTransport(np int) *localTransport {
	t := &localTransport{boxes: make([]*mailbox, np)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	return t
}

func (t *localTransport) Send(f frame) error {
	if f.Dst < 0 || f.Dst >= len(t.boxes) {
		return ErrInvalidRank
	}
	if t.latency != nil {
		if d := t.latency(f.WSrc, f.Dst); d > 0 {
			// Delay delivery without reordering: sleeping on the sender's
			// goroutine before the append preserves per-pair FIFO order.
			time.Sleep(d)
		}
	}
	t.boxes[f.Dst].deliver(f)
	return nil
}

func (t *localTransport) Close() error {
	for _, b := range t.boxes {
		b.close()
	}
	return nil
}
