package mpi

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Deterministic fault injection. WithFaults layers a transport decorator
// that drops, delays, duplicates, or kills according to a seeded plan, so a
// failure scenario — the kind the paper's students hit on flaky remote
// substrates — becomes a reproducible test case instead of a war story. The
// failure suite uses it to prove the abort and deadline machinery fires
// under each fault class, and a deadlock lab can hand students a plan that
// breaks their program the same way every run.

// FaultAction is what a matched FaultRule does to a frame.
type FaultAction int

const (
	// FaultDrop discards the frame; the send succeeds, the receiver waits
	// forever — the fault class the deadline machinery exists for.
	FaultDrop FaultAction = iota + 1
	// FaultDelay sleeps on the sender before delivery, like WithLatency but
	// targeted. Delaying on the sending goroutine preserves per-pair FIFO.
	FaultDelay
	// FaultDuplicate delivers the frame twice. Protocols that count
	// messages (barriers, rings) surface the duplicate as a clean protocol
	// error; plain receives simply observe the message again.
	FaultDuplicate
	// FaultKillRank fails the sending rank: the triggering send — and every
	// later send by that rank — returns an error wrapping ErrRankKilled,
	// which propagates out of the rank's main and revokes the world, as a
	// crashed process would.
	FaultKillRank
	// FaultCorrupt flips one bit of the matched frame's payload in flight —
	// after the CRC is computed, so the receiver's integrity check fires.
	// On a resilient (wire v2) TCP session the corruption is detected by
	// the hub, the connection is torn down, and the clean captured copy is
	// retransmitted on resume: the program never observes it. On transports
	// without frame integrity the fault downgrades to a pass-through (the
	// local and shm transports hand over the very memory the sender wrote;
	// there is no wire to corrupt).
	FaultCorrupt
	// FaultDisconnect severs the sending rank's hub connection without
	// killing the process: the socket closes mid-run, exactly like a NAT
	// timeout or a flaky home network. Under HubSuspicion the session
	// resumes within the grace window and the run completes with zero
	// failed ranks; without it, the disconnect is rank death. A no-op on
	// transports with no connection to sever.
	FaultDisconnect
)

func (a FaultAction) String() string {
	switch a {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultKillRank:
		return "kill-rank"
	case FaultCorrupt:
		return "corrupt"
	case FaultDisconnect:
		return "disconnect"
	}
	return fmt.Sprintf("FaultAction(%d)", int(a))
}

// corruptCapable is implemented by transports that can corrupt one frame on
// the wire below the integrity check (the resilient TCP session). The method
// reports whether the corruption was actually armed.
type corruptCapable interface {
	corruptNextFrame() bool
}

// disconnectCapable is implemented by transports whose underlying connection
// can be severed without killing the process (the TCP transport, and the shm
// transport's hub connection).
type disconnectCapable interface {
	severConnection()
}

// FaultRule selects frames by (src, dst, tag) and applies an action to
// them. Src and Dst are world ranks; AnySource (-1) matches every rank and
// AnyTag (-1) every tag, including the collectives' reserved negative tags —
// so a wildcard rule perturbs collective protocols too, deliberately.
//
// Counting makes rules deterministic: each rule passes its first SkipFirst
// matching frames through untouched, then acts on the next Count of them
// (Count 0 = unlimited). "Kill rank 1 after its 3rd send" is
// {Src: 1, SkipFirst: 3, Action: FaultKillRank}. Prob < 1 makes an armed
// rule fire with that probability, drawn from the plan's seeded generator;
// Prob 0 means always, so the zero value stays deterministic.
type FaultRule struct {
	Src, Dst, Tag int
	SkipFirst     int
	Count         int
	Prob          float64
	Action        FaultAction
	Delay         time.Duration // used by FaultDelay
}

func (r *FaultRule) matches(f frame) bool {
	if r.Src != AnySource && r.Src != f.WSrc {
		return false
	}
	if r.Dst != AnySource && r.Dst != f.Dst {
		return false
	}
	if r.Tag != AnyTag && r.Tag != f.Tag {
		return false
	}
	return true
}

// FaultPlan is a seeded set of fault rules. The same plan against the same
// program reproduces the same per-sender fault sequence: rule counters
// advance with each sender's FIFO stream, and probabilistic rules draw from
// a generator seeded with Seed. (Across concurrent senders on a shared
// local transport the interleaving of draws follows the schedule, so fully
// deterministic plans should use counting rules scoped to one sender.)
type FaultPlan struct {
	Seed  int64
	Rules []FaultRule
}

// WithFaults installs the plan's fault injector on the world's transport,
// beneath any message counter. An empty plan is free: the decorator
// forwards without taking a lock, which is what the benchmark harness pins.
func WithFaults(plan FaultPlan) Option {
	return func(c *config) {
		p := plan
		c.faults = &p
	}
}

// InjectedFault records one fault the plan actually injected: which rule
// fired, what it did, and the (src, dst, tag) of the frame it acted on.
type InjectedFault struct {
	Rule   int // index into the plan's Rules
	Action FaultAction
	Src    int // sender's world rank
	Dst    int // receiver's world rank
	Tag    int
}

func (f InjectedFault) String() string {
	return fmt.Sprintf("rule %d: %s on frame %d->%d tag %d", f.Rule, f.Action, f.Src, f.Dst, f.Tag)
}

// FaultReport collects the faults a plan injected during a run, so a test or
// postmortem can attribute an observed failure to the fault that caused it —
// in particular, a rank killed mid-collective is attributed to the injected
// kill here even when the visible symptom downstream would otherwise be a
// cascading deadline on a surviving rank. Install with WithFaultReport; safe
// for concurrent use.
type FaultReport struct {
	mu       sync.Mutex
	injected []InjectedFault
}

// Injected returns the faults injected so far, in injection order.
func (r *FaultReport) Injected() []InjectedFault {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]InjectedFault, len(r.injected))
	copy(out, r.injected)
	return out
}

// Killed returns the world ranks killed by FaultKillRank rules, sorted.
func (r *FaultReport) Killed() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[int]bool)
	var out []int
	for _, f := range r.injected {
		if f.Action == FaultKillRank && !seen[f.Src] {
			seen[f.Src] = true
			out = append(out, f.Src)
		}
	}
	sort.Ints(out)
	return out
}

func (r *FaultReport) record(f InjectedFault) {
	r.mu.Lock()
	r.injected = append(r.injected, f)
	r.mu.Unlock()
}

// WithFaultReport makes the world's fault injector record every injected
// fault into rep. Pair it with WithFaults; without a plan it is inert.
func WithFaultReport(rep *FaultReport) Option {
	return func(c *config) { c.faultReport = rep }
}

// faultTransport applies a FaultPlan to every frame a transport carries.
// In-process worlds share one instance across all ranks; each JoinTCP
// process gets its own, which only ever sees its own rank's sends.
type faultTransport struct {
	inner  Transport
	inert  bool // no rules: pure pass-through, no locking
	report *FaultReport

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []faultRuleState
	killed map[int]error // world rank -> injected kill error
}

type faultRuleState struct {
	FaultRule
	seen  int // matching frames observed
	acted int // matching frames acted on
}

func newFaultTransport(inner Transport, plan *FaultPlan, report *FaultReport) *faultTransport {
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	t := &faultTransport{
		inner:  inner,
		inert:  len(plan.Rules) == 0,
		report: report,
		rng:    rand.New(rand.NewSource(seed)),
		killed: make(map[int]error),
	}
	for _, r := range plan.Rules {
		t.rules = append(t.rules, faultRuleState{FaultRule: r})
	}
	return t
}

// killedRanks returns the world ranks the plan has killed so far, sorted.
// The deadline machinery consults it to attribute downstream stalls to the
// injected kill rather than reporting a spurious deadlock.
func (t *faultTransport) killedRanks() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.killed))
	for r := range t.killed {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

func (t *faultTransport) Send(f frame) error {
	if t.inert {
		return t.inner.Send(f)
	}
	t.mu.Lock()
	if err := t.killed[f.WSrc]; err != nil {
		t.mu.Unlock()
		return err
	}
	var action FaultAction
	var delay time.Duration
	rule := -1
	for i := range t.rules {
		r := &t.rules[i]
		if !r.matches(f) {
			continue
		}
		r.seen++
		if r.seen <= r.SkipFirst {
			continue
		}
		if r.Count > 0 && r.acted >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && t.rng.Float64() >= r.Prob {
			continue
		}
		r.acted++
		action, delay, rule = r.Action, r.Delay, i
		break // first matching armed rule wins
	}
	if action != 0 && t.report != nil {
		t.report.record(InjectedFault{Rule: rule, Action: action, Src: f.WSrc, Dst: f.Dst, Tag: f.Tag})
	}
	if action == FaultKillRank {
		err := fmt.Errorf("%w: rank %d (fault plan, on send to rank %d tag %d)",
			ErrRankKilled, f.WSrc, f.Dst, f.Tag)
		t.killed[f.WSrc] = err
		t.mu.Unlock()
		return err
	}
	t.mu.Unlock()

	switch action {
	case FaultDrop:
		return nil
	case FaultCorrupt:
		// Arm the wire-level bit flip, then send: the transport corrupts the
		// frame's last payload byte after the CRC is computed, so the
		// receiver detects it. Transports without frame integrity pass the
		// frame through untouched rather than silently delivering bad data.
		if cc, ok := t.inner.(corruptCapable); ok {
			cc.corruptNextFrame()
		}
		return t.inner.Send(f)
	case FaultDisconnect:
		// Sever the connection first, then send: the send observes the
		// break (or lands in the replay buffer) and the session machinery
		// reconnects within the grace window.
		if dc, ok := t.inner.(disconnectCapable); ok {
			dc.severConnection()
		}
		return t.inner.Send(f)
	case FaultDelay:
		if delay > 0 {
			time.Sleep(delay) // on the sender, like WithLatency: FIFO-safe
		}
		return t.inner.Send(f)
	case FaultDuplicate:
		dup := f
		if f.HasVal {
			// Re-copy the typed payload so the two deliveries never share
			// a buffer: each receiver must own its value outright.
			if pv, ok := typedPayload(f.Val); ok {
				dup.Val = pv
			}
		}
		if err := t.inner.Send(f); err != nil {
			return err
		}
		return t.inner.Send(dup)
	default:
		return t.inner.Send(f)
	}
}

func (t *faultTransport) Close() error { return t.inner.Close() }

// revive clears an injected kill for a respawned rank: the relaunched
// process gets a working transport again. The rule counters are NOT reset —
// a Count-bounded kill rule stays spent, so the respawned rank is not
// immediately re-killed by the same rule.
func (t *faultTransport) revive(rank int) {
	if t.inert {
		return
	}
	t.mu.Lock()
	delete(t.killed, rank)
	t.mu.Unlock()
}

// deliversTyped forwards the wrapped transport's fast-path capability:
// injecting faults must not silently change how surviving messages travel.
func (t *faultTransport) deliversTyped() bool {
	tc, ok := t.inner.(typedCapable)
	return ok && tc.deliversTyped()
}

// wiresTyped forwards the wrapped transport's raw-framing capability. Every
// fault action stays synchronous on the sender (delays sleep, duplicates
// re-send inline), so the wireCapable contract — Val is fully consumed
// before Send returns — survives the decoration.
func (t *faultTransport) wiresTyped() bool {
	wc, ok := t.inner.(wireCapable)
	return ok && wc.wiresTyped()
}
