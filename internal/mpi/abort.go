package mpi

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// World abort (ULFM-style revoke) and deadline diagnosis. The paper's whole
// setting is students running message-passing programs on flaky remote
// substrates, where one wedged or crashed rank is the normal failure mode
// and the classroom answer must be a clear error, never a silent hang. When
// any rank fails, the runtime marks the world aborted and poisons every
// surviving rank's mailbox, so blocked receives, pending requests, and
// in-flight collectives return ErrWorldAborted (wrapping the originating
// rank's error) instead of blocking forever. WithDeadline adds the second
// half: a stuck receive turns into a *DeadlineError carrying a snapshot of
// who waits on whom, so a classic mutual-Recv deadlock produces a readable
// report rather than a frozen terminal.

// abortError wraps the originating failure of a revoked world. It matches
// ErrWorldAborted under errors.Is, and Unwrap exposes the cause so
// errors.Is also finds the failing rank's own error.
type abortError struct {
	cause error
}

func (e *abortError) Error() string        { return "mpi: world aborted: " + e.cause.Error() }
func (e *abortError) Unwrap() error        { return e.cause }
func (e *abortError) Is(target error) bool { return target == ErrWorldAborted }

// remoteAbortError is the cause of an abort that arrived over the wire from
// another process: the originating rank's error survives only as text, so
// errors.Is identity with the original sentinel is lost but the rank
// attribution is kept. RunTCP uses the type to tell victims (remote cause)
// from originators (local cause) when picking which error to report.
type remoteAbortError struct {
	rank int // originating world rank; -1 when the hub itself failed
	msg  string
}

func (e *remoteAbortError) Error() string { return e.msg }

// abort revokes the world with the given cause (already rank-attributed).
// The first cause wins; later calls are no-ops. Every mailbox this process
// holds is poisoned so its blocked and future operations fail immediately.
func (w *World) abort(cause error) {
	w.abortMu.Lock()
	if w.abortCause != nil {
		w.abortMu.Unlock()
		return
	}
	w.abortCause = cause
	w.abortMu.Unlock()
	w.abortedFlag.Store(true)
	err := &abortError{cause: cause}
	for _, b := range w.boxes {
		if b != nil {
			b.fail(err)
		}
	}
	if w.recov != nil {
		// Recovery does not survive a revoked world: release every blocked
		// agreement with the abort error so no Agree caller hangs.
		w.recov.abortPending(err)
	}
}

// Abort revokes the world with the given cause (MPI_Abort): every rank's
// pending and future operations fail with ErrWorldAborted wrapping cause,
// and the launch (Run, RunTCP, a platform Launch) returns it. Unlike a
// rank returning an error, Abort may be called from ANY goroutine holding
// a Comm — it is how an external supervisor (the job scheduler's cancel
// path, a wall-clock job timeout) stops a world whose ranks are all
// blocked deep in communication. The first cause latched wins; later
// aborts, including rank failures racing this call, are no-ops. For
// multi-process worlds the revoke takes effect in the calling process;
// remote processes observe it when the hub tears the world down.
func (c *Comm) Abort(cause error) {
	if cause == nil {
		cause = fmt.Errorf("mpi: rank %d called Abort", c.rank)
	}
	c.world.abort(cause)
}

// abortErr returns the world's abort error, or nil if the world is healthy.
// The flag is an atomic so the send hot path pays one load, not a lock.
func (w *World) abortErr() error {
	if !w.abortedFlag.Load() {
		return nil
	}
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return &abortError{cause: w.abortCause}
}

// BlockedOp describes one rank's blocked receive or probe, as reported in a
// DeadlineError: the deadlock-diagnosis unit. Rank is a world rank; Src and
// Tag are what the operation is matching on (communicator-local source,
// AnySource/AnyTag for wildcards) within communicator context Ctx.
type BlockedOp struct {
	Rank   int
	Op     string // "Recv" or "Probe"
	Ctx    int64
	Src    int
	Tag    int
	Waited time.Duration
}

func (b BlockedOp) String() string {
	return fmt.Sprintf("rank %d: %s(src %s, tag %s, ctx %d) blocked %s",
		b.Rank, b.Op, wildcardStr(b.Src, AnySource, "any"), wildcardStr(b.Tag, AnyTag, "any"),
		b.Ctx, b.Waited)
}

func wildcardStr(v, wildcard int, name string) string {
	if v == wildcard {
		return name
	}
	return fmt.Sprintf("%d", v)
}

// DeadlineError reports a receive or probe that outlived the WithDeadline
// budget, together with a snapshot of every operation blocked in this
// process at that moment — for in-process worlds (Run) that is the full
// who-waits-on-whom picture, the readable form of a deadlock. It matches
// ErrDeadlineExceeded under errors.Is.
type DeadlineError struct {
	Rank    int    // world rank whose operation timed out
	Op      string // "Recv" or "Probe"
	Ctx     int64
	Src     int
	Tag     int
	Timeout time.Duration
	Blocked []BlockedOp // all blocked operations at the time of the report
}

func (e *DeadlineError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpi: rank %d %s(src %s, tag %s) exceeded the %s deadline",
		e.Rank, e.Op, wildcardStr(e.Src, AnySource, "any"), wildcardStr(e.Tag, AnyTag, "any"), e.Timeout)
	if len(e.Blocked) > 0 {
		b.WriteString("; blocked operations:")
		for _, op := range e.Blocked {
			b.WriteString("\n  ")
			b.WriteString(op.String())
		}
	}
	return b.String()
}

// Is matches both the package sentinel and context.DeadlineExceeded, so a
// caller already handling stdlib timeouts handles MPI deadlines for free.
func (e *DeadlineError) Is(target error) bool {
	return target == ErrDeadlineExceeded || target == context.DeadlineExceeded
}

// WithDeadline bounds every blocking receive and probe in the world by d. A
// stuck operation fails with a *DeadlineError naming every blocked rank and
// its pending (src, tag) — and the first breach revokes the world, so its
// peers unblock with ErrWorldAborted rather than each burning a full
// deadline of their own. Zero (the default) disables the machinery
// entirely; it costs nothing when off. The deadline is per blocked
// operation, not per program: a slow but progressing program never trips
// it.
func WithDeadline(d time.Duration) Option {
	return func(c *config) { c.deadline = d }
}

// blockedOps snapshots every blocked receive/probe across the mailboxes
// this process holds, ordered by rank. In a JoinTCP world only the local
// rank's mailbox exists, so the report covers just that rank; in-process
// worlds see all ranks.
func (w *World) blockedOps() []BlockedOp {
	var out []BlockedOp
	for rank, b := range w.boxes {
		if b == nil {
			continue
		}
		for _, wt := range b.blockedWaiters() {
			out = append(out, BlockedOp{
				Rank:   rank,
				Op:     wt.op,
				Ctx:    wt.ctx,
				Src:    wt.src,
				Tag:    wt.tag,
				Waited: time.Since(wt.since).Round(time.Millisecond),
			})
		}
	}
	return out
}

// deadlineFired builds the deadline report for one timed-out operation and
// revokes the world with it. Reports are serialized under reportMu, and a
// waiter stays registered in its mailbox until its report (or abort error)
// is returned — so the first rank to time out in a mutual deadlock is
// guaranteed to see its peers in the snapshot, and every later rank returns
// the world's single abort error instead of racing to produce a second,
// partial report.
func (w *World) deadlineFired(rank int, op string, ctx int64, src, tag int) error {
	w.reportMu.Lock()
	defer w.reportMu.Unlock()
	if err := w.abortErr(); err != nil {
		return err
	}
	// Attribution check: if the fault plan already killed a rank, this stall
	// is a downstream casualty of that kill, not an independent deadlock.
	// Attribute the failure to the injected fault so the report names the
	// true cause instead of a cascading deadline.
	if w.faults != nil {
		if killed := w.faults.killedRanks(); len(killed) > 0 {
			cause := fmt.Errorf("mpi: rank %d %s(src %s, tag %s) stalled after the fault plan killed rank(s) %v: %w",
				rank, op, wildcardStr(src, AnySource, "any"), wildcardStr(tag, AnyTag, "any"), killed, ErrRankKilled)
			w.abort(cause)
			return cause
		}
	}
	derr := &DeadlineError{
		Rank:    rank,
		Op:      op,
		Ctx:     ctx,
		Src:     src,
		Tag:     tag,
		Timeout: w.deadline,
		Blocked: w.blockedOps(),
	}
	w.abort(fmt.Errorf("mpi: rank %d: %w", rank, derr))
	return derr
}
