package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// Resilient-session and respawn-recovery integration tests: a severed
// connection resumes within the suspicion grace window, a corrupted frame is
// retransmitted from the replay buffer, a slow-but-connected rank is never
// declared failed, and a killed rank is relaunched into its old slot at the
// original world width.

// TestDisconnectFaultReconnects is the headline resilience scenario: a
// seeded FaultDisconnect severs a worker's hub connection mid-run, and under
// HubSuspicion the session resumes — the program completes with zero failed
// ranks and every message intact. No WithRecovery: the program never even
// observes the break.
func TestDisconnectFaultReconnects(t *testing.T) {
	const np = 4
	rep := &FaultReport{}
	plan := FaultPlan{Rules: []FaultRule{
		{Src: 1, Dst: AnySource, Tag: AnyTag, SkipFirst: 5, Count: 1, Action: FaultDisconnect},
		{Src: 3, Dst: AnySource, Tag: AnyTag, SkipFirst: 11, Count: 1, Action: FaultDisconnect},
	}}
	var mu sync.Mutex
	sums := map[int][]float64{}
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return RunTCP(np, func(c *Comm) error {
			for iter := 0; iter < 12; iter++ {
				mine := []float64{float64(c.Rank()), float64(iter)}
				got, err := AllreduceSlice(c, mine, func(a, b float64) float64 { return a + b })
				if err != nil {
					return err
				}
				want := []float64{float64(np * (np - 1) / 2), float64(np * iter)}
				if !reflect.DeepEqual(got, want) {
					return fmt.Errorf("rank %d iter %d: allreduce %v, want %v", c.Rank(), iter, got, want)
				}
			}
			mu.Lock()
			sums[c.Rank()] = []float64{1}
			mu.Unlock()
			return nil
		}, WithHubOptions(HubSuspicion(5*time.Second)), WithFaults(plan), WithFaultReport(rep))
	})
	if err != nil {
		t.Fatalf("disconnected world should resume and complete, got %v", err)
	}
	if len(sums) != np {
		t.Fatalf("only %d of %d ranks completed", len(sums), np)
	}
	injected := rep.Injected()
	if len(injected) != 2 {
		t.Fatalf("expected 2 injected disconnects, got %v", injected)
	}
	for _, f := range injected {
		if f.Action != FaultDisconnect {
			t.Fatalf("unexpected fault injected: %v", f)
		}
	}
}

// TestDisconnectFaultLargeFrames: the severed send is a payload too large
// for the replay buffer — it streams as a gap, and the session layer must
// capture it on the failed write so the resume still has clean bytes.
func TestDisconnectFaultLargeFrames(t *testing.T) {
	plan := FaultPlan{Rules: []FaultRule{
		{Src: 0, Dst: 1, Tag: 3, SkipFirst: 2, Count: 1, Action: FaultDisconnect},
	}}
	payload := make([]float64, 32<<10) // 256 KiB: 4x replayFrameMax, streamed
	for i := range payload {
		payload[i] = float64(i)
	}
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return RunTCP(2, func(c *Comm) error {
			for iter := 0; iter < 6; iter++ {
				if c.Rank() == 0 {
					if err := c.Send(1, 3, payload); err != nil {
						return err
					}
					continue
				}
				var got []float64
				if _, err := c.Recv(0, 3, &got); err != nil {
					return err
				}
				if len(got) != len(payload) || got[0] != 0 || got[len(got)-1] != payload[len(payload)-1] {
					return fmt.Errorf("iter %d: payload corrupted in resume", iter)
				}
			}
			return nil
		}, WithHubOptions(HubSuspicion(5*time.Second)), WithFaults(plan))
	})
	if err != nil {
		t.Fatalf("large-frame disconnect should resume, got %v", err)
	}
}

// TestDisconnectWithoutSuspicionIsFatal: the same severed connection with no
// grace window configured is what it always was — rank death.
func TestDisconnectWithoutSuspicionIsFatal(t *testing.T) {
	plan := FaultPlan{Rules: []FaultRule{
		{Src: 1, Dst: AnySource, Tag: AnyTag, SkipFirst: 2, Count: 1, Action: FaultDisconnect},
	}}
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return RunTCP(2, func(c *Comm) error {
			for iter := 0; iter < 50; iter++ {
				if _, err := Allreduce(c, 1, func(a, b int) int { return a + b }); err != nil {
					return err
				}
			}
			return nil
		}, WithFaults(plan))
	})
	if err == nil {
		t.Fatal("disconnect without HubSuspicion should fail the world")
	}
}

// TestCorruptFaultHealedBySession: a seeded bit flip on the wire is caught
// by the frame CRC; the connection is torn down and the clean captured copy
// is retransmitted on resume, so the receiver observes only intact data and
// the run completes cleanly.
func TestCorruptFaultHealedBySession(t *testing.T) {
	rep := &FaultReport{}
	plan := FaultPlan{Rules: []FaultRule{
		{Src: 0, Dst: 1, Tag: 3, SkipFirst: 1, Count: 1, Action: FaultCorrupt},
	}}
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return RunTCP(2, func(c *Comm) error {
			for iter := 0; iter < 8; iter++ {
				if c.Rank() == 0 {
					if err := c.Send(1, 3, []int64{int64(iter), 7, 9}); err != nil {
						return err
					}
					continue
				}
				var got []int64
				if _, err := c.Recv(0, 3, &got); err != nil {
					return err
				}
				if want := []int64{int64(iter), 7, 9}; !reflect.DeepEqual(got, want) {
					return fmt.Errorf("iter %d: received %v, want %v — corruption leaked through", iter, got, want)
				}
			}
			return nil
		}, WithHubOptions(HubSuspicion(5*time.Second)), WithFaults(plan), WithFaultReport(rep))
	})
	if err != nil {
		t.Fatalf("corrupted frame should be healed by retransmit, got %v", err)
	}
	injected := rep.Injected()
	if len(injected) != 1 || injected[0].Action != FaultCorrupt {
		t.Fatalf("expected exactly one injected corruption, got %v", injected)
	}
}

// TestCorruptFaultWithoutSuspicionSurfaces: with no resumable session the
// CRC failure is fatal, and the error names the corrupt frame rather than
// passing bad bytes to the program.
func TestCorruptFaultWithoutSuspicionSurfaces(t *testing.T) {
	plan := FaultPlan{Rules: []FaultRule{
		{Src: 0, Dst: 1, Tag: 3, Count: 1, Action: FaultCorrupt},
	}}
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return RunTCP(2, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 3, []float64{1, 2, 3})
			}
			var got []float64
			_, err := c.Recv(0, 3, &got)
			return err
		}, WithFaults(plan))
	})
	if err == nil {
		t.Fatal("unresumable corruption should fail the world")
	}
	if !strings.Contains(err.Error(), "corrupt frame") {
		t.Fatalf("failure should name the corrupt frame, got %v", err)
	}
}

// TestDelayedRankNeverDeclaredFailed: a rank slowed by FaultDelay — but
// still connected and answering heartbeats — must never be promoted to
// failed, on both the typed and the legacy gob wire. Suspicion and
// heartbeat react to broken connections and dead processes, not to slowness;
// that is WithDeadline's job.
func TestDelayedRankNeverDeclaredFailed(t *testing.T) {
	wires := []struct {
		name string
		opt  Option
	}{
		{"typed", func(*config) {}},
		{"gob", withWireLegacy()},
	}
	for _, wire := range wires {
		wire := wire
		t.Run(wire.name, func(t *testing.T) {
			plan := FaultPlan{Rules: []FaultRule{
				{Src: 1, Dst: AnySource, Tag: AnyTag, Count: 6, Action: FaultDelay, Delay: 120 * time.Millisecond},
			}}
			var mu sync.Mutex
			observedFailed := map[int][]int{}
			err := runWithWatchdog(t, 60*time.Second, func() error {
				return RunTCP(3, func(c *Comm) error {
					for iter := 0; iter < 8; iter++ {
						if _, err := Allreduce(c, 1, func(a, b int) int { return a + b }); err != nil {
							return err
						}
					}
					mu.Lock()
					observedFailed[c.Rank()] = c.FailedRanks()
					mu.Unlock()
					return nil
				}, WithRecovery(), WithFaults(plan), wire.opt,
					WithHubOptions(HubHeartbeat(25*time.Millisecond), HubSuspicion(2*time.Second)))
			})
			if err != nil {
				t.Fatalf("slow rank must not fail the world, got %v", err)
			}
			if len(observedFailed) != 3 {
				t.Fatalf("only %d of 3 ranks completed", len(observedFailed))
			}
			for r, failed := range observedFailed {
				if len(failed) != 0 {
					t.Errorf("rank %d observed failed ranks %v; slowness is not failure", r, failed)
				}
			}
		})
	}
}

// respawnLaunchers: respawn recovery must behave identically on the
// in-process, TCP, and shared-memory transports (shm worlds rejoin the
// respawned rank over the TCP fallback).
var respawnLaunchers = func() []launcher {
	ls := []launcher{
		{"local", Run},
		{"tcp", RunTCP},
	}
	if shmSupported {
		ls = append(ls, launcher{"shm", RunShm})
	}
	return ls
}()

// TestRespawnRestoresFullWidth: a killed rank is relaunched into its old
// slot; survivors and the newcomer meet in Restored, agree on the restored
// membership, and the world continues at the original width.
func TestRespawnRestoresFullWidth(t *testing.T) {
	const np = 4
	sum := func(a, b int) int { return a + b }
	for _, l := range respawnLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			plan := FaultPlan{Rules: []FaultRule{
				{Src: 2, Dst: AnySource, Tag: AnyTag, SkipFirst: 6, Count: 1, Action: FaultKillRank},
			}}
			var mu sync.Mutex
			finalSizes := map[int]int{}
			err := runWithWatchdog(t, 60*time.Second, func() error {
				return l.run(np, func(c *Comm) error {
					comm := c
					iters := 0
					for iters < 25 {
						got, err := Allreduce(comm, 1, sum)
						if err != nil {
							if !errors.Is(err, ErrRankFailed) {
								return err // this incarnation was killed
							}
							nc, rerr := comm.Restored(20 * time.Second)
							if rerr != nil {
								return rerr
							}
							comm = nc
							iters = 0
							continue
						}
						if got != comm.Size() {
							return fmt.Errorf("allreduce got %d want %d", got, comm.Size())
						}
						iters++
					}
					mu.Lock()
					finalSizes[c.Rank()] = comm.Size()
					mu.Unlock()
					return nil
				}, WithRespawn(), WithFaults(plan))
			})
			if err != nil {
				t.Fatalf("respawned world should complete, got %v", err)
			}
			if len(finalSizes) != np {
				t.Fatalf("%d of %d ranks finished at full width: %v", len(finalSizes), np, finalSizes)
			}
			for r, size := range finalSizes {
				if size != np {
					t.Errorf("rank %d finished on a comm of size %d, want %d", r, size, np)
				}
			}
		})
	}
}

// TestRespawnRacingKills: two ranks die at different times; both are
// respawned and the world still converges at full width.
func TestRespawnRacingKills(t *testing.T) {
	const np = 5
	sum := func(a, b int) int { return a + b }
	for _, l := range respawnLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			plan := FaultPlan{Rules: []FaultRule{
				{Src: 1, Dst: AnySource, Tag: AnyTag, SkipFirst: 4, Count: 1, Action: FaultKillRank},
				{Src: 3, Dst: AnySource, Tag: AnyTag, SkipFirst: 9, Count: 1, Action: FaultKillRank},
			}}
			err := runWithWatchdog(t, 90*time.Second, func() error {
				return l.run(np, func(c *Comm) error {
					comm := c
					iters := 0
					for iters < 20 {
						_, err := Allreduce(comm, 1, sum)
						if err != nil {
							if !errors.Is(err, ErrRankFailed) {
								return err
							}
							nc, rerr := comm.Restored(30 * time.Second)
							if rerr != nil {
								return rerr
							}
							comm = nc
							iters = 0
							continue
						}
						iters++
					}
					if comm.Size() != np {
						return fmt.Errorf("rank %d finished at width %d, want %d", c.Rank(), comm.Size(), np)
					}
					return nil
				}, WithRespawn(), WithFaults(plan))
			})
			if err != nil {
				t.Fatalf("doubly-respawned world should complete, got %v", err)
			}
		})
	}
}

// TestRestoredTimeoutFallsBackToShrink: with plain WithRecovery (no
// launcher respawning anything) Restored must give up at the deadline with
// ErrRestoreTimeout, and the survivors can still Shrink and continue — the
// documented fallback path.
func TestRestoredTimeoutFallsBackToShrink(t *testing.T) {
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return Run(3, func(c *Comm) error {
			if c.Rank() == 2 {
				return errDeliberate
			}
			_, rerr := c.Recv(2, 7, nil)
			if !errors.Is(rerr, ErrRankFailed) {
				return fmt.Errorf("want ErrRankFailed, got %v", rerr)
			}
			if _, rerr := c.Restored(150 * time.Millisecond); !errors.Is(rerr, ErrRestoreTimeout) {
				return fmt.Errorf("want ErrRestoreTimeout, got %v", rerr)
			}
			if err := c.Revoke(); err != nil {
				return err
			}
			nc, serr := c.Shrink()
			if serr != nil {
				return serr
			}
			if nc.Size() != 2 {
				return fmt.Errorf("shrunken size %d, want 2", nc.Size())
			}
			return nc.Barrier()
		}, WithRecovery())
	})
	if err != nil {
		t.Fatalf("timeout-then-shrink should recover, got %v", err)
	}
}
