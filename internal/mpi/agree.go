package mpi

import (
	"fmt"
	"sync"
)

// Fault-tolerant agreement and communicator shrinking. Agree must terminate
// with one consistent answer even when failures race the protocol — the
// property that makes ULFM's MPIX_Comm_agree the hard primitive. The
// runtime sidesteps the unbounded-consensus trap by making the launcher
// layer the coordinator: in-process worlds decide in a shared engine that
// re-evaluates every open instance whenever a failure lands, and TCP worlds
// delegate the same decision to the hub, which observes failures firsthand
// (failure reports and dropped connections). Either way the decision rule
// is identical: an instance decides once every live member has contributed,
// and the decided value is the union of the contributed failure masks with
// the coordinator's own view of the failed members — so a rank that dies
// mid-agreement is folded into the answer instead of stalling it.

// agreeKey identifies one agreement instance: all members of a communicator
// call Agree in the same order (it is collective), so (context, call
// sequence) names the same instance on every member with no negotiation.
type agreeKey struct {
	ctx int64
	seq uint64
}

// agreeOutcome is what a waiting member receives when its instance decides.
type agreeOutcome struct {
	mask uint64
	err  error
}

// agreeReq is the wire form of one member's contribution (worker -> hub).
type agreeReq struct {
	Ctx     int64
	Seq     uint64
	Rank    int   // contributing world rank
	Members []int // world ranks of the communicator
	Mask    uint64
}

// agreeResp is the decided value (hub -> worker).
type agreeResp struct {
	Ctx  int64
	Seq  uint64
	Mask uint64
}

// agreeInst is one open agreement instance in the local engine.
type agreeInst struct {
	members  []int
	arrived  map[int]uint64 // member world rank -> contributed mask
	done     chan struct{}
	decided  bool
	decision uint64
	err      error // set when the instance was interrupted (membership change)
}

// agreeEngine coordinates agreement for in-process worlds: one instance per
// World, shared by all rank goroutines.
type agreeEngine struct {
	r *recoveryState

	mu    sync.Mutex
	insts map[agreeKey]*agreeInst
	down  error
}

func newAgreeEngine(r *recoveryState) *agreeEngine {
	return &agreeEngine{r: r, insts: make(map[agreeKey]*agreeInst)}
}

// agree contributes self's mask to the keyed instance and blocks until it
// decides. The instance decides as soon as every live member has
// contributed; members that fail before contributing are excluded by
// reevaluate, so the protocol cannot stall on the very failure it is
// agreeing about.
func (e *agreeEngine) agree(key agreeKey, members []int, self int, mask uint64) (uint64, error) {
	e.mu.Lock()
	if e.down != nil {
		err := e.down
		e.mu.Unlock()
		return 0, err
	}
	inst := e.insts[key]
	if inst == nil {
		inst = &agreeInst{
			members: append([]int(nil), members...),
			arrived: make(map[int]uint64),
			done:    make(chan struct{}),
		}
		e.insts[key] = inst
	}
	inst.arrived[self] = mask
	e.evaluateLocked(key, inst)
	e.mu.Unlock()

	<-inst.done
	e.mu.Lock()
	defer e.mu.Unlock()
	if !inst.decided {
		if inst.err != nil {
			return 0, inst.err
		}
		return 0, e.down
	}
	return inst.decision, nil
}

// evaluateLocked decides the instance if every live member has contributed.
// Caller holds e.mu. On decision the instance is removed from the map —
// every member still waiting holds its pointer, and no further arrivals are
// possible (failed members never call agree).
func (e *agreeEngine) evaluateLocked(key agreeKey, inst *agreeInst) {
	if inst.decided {
		return
	}
	failedMask := e.r.maskSnapshot()
	decision := uint64(0)
	for _, m := range inst.members {
		bit := uint64(1) << uint(m)
		if failedMask&bit != 0 {
			decision |= bit
			continue
		}
		if _, ok := inst.arrived[m]; !ok {
			return // a live member has not arrived yet
		}
	}
	for _, contributed := range inst.arrived {
		decision |= contributed
	}
	inst.decided, inst.decision = true, decision
	delete(e.insts, key)
	close(inst.done)
}

// reevaluate re-runs the decision rule on every open instance; called after
// each failure so instances waiting on a just-failed member decide.
func (e *agreeEngine) reevaluate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key, inst := range e.insts {
		e.evaluateLocked(key, inst)
	}
}

// interrupt releases every open instance with err without latching the
// engine down: a world-membership change (a rank rejoined at full width)
// invalidates in-flight agreements — their member lists describe the old
// epoch — but the engine itself stays healthy for the retries.
func (e *agreeEngine) interrupt(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key, inst := range e.insts {
		delete(e.insts, key)
		if !inst.decided {
			inst.err = err
			close(inst.done)
		}
	}
}

// fail releases every open instance with err: the world aborted outright.
func (e *agreeEngine) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.down == nil {
		e.down = err
	}
	for key, inst := range e.insts {
		delete(e.insts, key)
		if !inst.decided {
			close(inst.done)
		}
	}
}

// tcpAgree is the worker half of hub-coordinated agreement: register a
// waiter, send the contribution, block for the hub's decision (delivered by
// the connection read loop).
func (r *recoveryState) tcpAgree(key agreeKey, members []int, self int, mask uint64) (uint64, error) {
	ch := make(chan agreeOutcome, 1)
	r.mu.Lock()
	if r.downErr != nil {
		err := r.downErr
		r.mu.Unlock()
		return 0, err
	}
	r.waiters[key] = ch
	r.mu.Unlock()
	data, err := encodeValue(agreeReq{Ctx: key.ctx, Seq: key.seq, Rank: self, Members: members, Mask: mask})
	if err != nil {
		return 0, err
	}
	if err := r.ctrlSend(frame{Dst: ctrlDst, Tag: tagAgreeReq, Data: data}); err != nil {
		return 0, err
	}
	out := <-ch
	return out.mask, out.err
}

// deliverDecision hands a hub agreement response to its waiter.
func (r *recoveryState) deliverDecision(resp agreeResp) {
	key := agreeKey{ctx: resp.Ctx, seq: resp.Seq}
	r.mu.Lock()
	ch := r.waiters[key]
	delete(r.waiters, key)
	r.mu.Unlock()
	if ch != nil {
		ch <- agreeOutcome{mask: resp.Mask}
	}
}

// agreeCall dispatches to the engine (Run) or the hub (TCP).
func (w *World) agreeCall(key agreeKey, members []int, self int, mask uint64) (uint64, error) {
	r := w.recov
	if r.engine != nil {
		return r.engine.agree(key, members, self, mask)
	}
	return r.tcpAgree(key, members, self, mask)
}

// Agree performs fault-tolerant agreement on the communicator's failed
// members (MPIX_Comm_agree specialized to the failure bitmap): every
// surviving member receives the identical sorted set of failed
// communicator-local ranks, even when failures race the protocol — a
// member that dies mid-agreement is folded into the decided set rather
// than stalling it. Collective over the surviving members; requires
// WithRecovery.
func (c *Comm) Agree() ([]int, error) {
	w := c.world
	if w.recov == nil {
		return nil, fmt.Errorf("mpi: Agree requires WithRecovery")
	}
	seq := c.agreeSeq
	c.agreeSeq++
	key := agreeKey{ctx: c.ctx, seq: seq}
	self := c.worldRank(c.rank)
	mask := uint64(0)
	localFailed := w.recov.maskSnapshot()
	for _, wr := range c.ranks {
		mask |= localFailed & (1 << uint(wr))
	}
	decision, err := w.agreeCall(key, c.ranks, self, mask)
	if err != nil {
		return nil, err
	}
	// The decision may name failures this process has not observed yet
	// (raced broadcasts on TCP); fold them in so local checks agree with
	// the agreed view before anyone acts on it.
	w.recov.adoptFailures(decision, c.ranks, c.epoch)
	var out []int
	for i, wr := range c.ranks {
		if decision&(1<<uint(wr)) != 0 {
			out = append(out, i)
		}
	}
	return out, nil
}

// Shrink agrees on the failed members and returns a dense communicator of
// the survivors (MPIX_Comm_shrink): survivors keep their relative order but
// are renumbered 0..n-1, and the new communicator has a fresh message
// context — stale frames addressed to the old, possibly revoked context can
// never match in it — over which point-to-point and every collective work
// unchanged. Collective over the surviving members; requires WithRecovery.
func (c *Comm) Shrink() (*Comm, error) {
	// Consume a child-context slot before anything can fail, so members
	// whose Agree errors and retry still assign identical context ids.
	seq := c.nextCtx
	c.nextCtx++
	if seq > maxSplitsPerComm {
		return nil, fmt.Errorf("mpi: more than %d Split/Dup/Shrink calls on one communicator", maxSplitsPerComm)
	}
	failed, err := c.Agree()
	if err != nil {
		return nil, err
	}
	failedSet := make(map[int]bool, len(failed))
	for _, r := range failed {
		failedSet[r] = true
	}
	ranks := make([]int, 0, len(c.ranks)-len(failed))
	newRank := -1
	for i, wr := range c.ranks {
		if failedSet[i] {
			continue
		}
		if i == c.rank {
			newRank = len(ranks)
		}
		ranks = append(ranks, wr)
	}
	if newRank < 0 {
		return nil, fmt.Errorf("mpi: Shrink: calling rank %d is in the agreed failed set", c.rank)
	}
	return &Comm{
		world:   c.world,
		ctx:     c.ctx*64 + seq,
		rank:    newRank,
		ranks:   ranks,
		nextCtx: 1,
		epoch:   c.epoch,
	}, nil
}
