package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// The one-sided layer's correctness suite. The same observational checks
// run on every transport configuration — local fast path (direct registry
// access), forced serialization (every op on the active-message path), TCP
// framing, and shm (segment-backed direct access) — so the three data paths
// are proven observationally identical, the same parity discipline the
// collectives follow.

// winRunners enumerates the transport configurations, reusing the parity
// harness's launchers.
func winRunners() map[string]func(np int, main func(c *Comm) error, opts ...Option) error {
	runners := parityRunners()
	for name, r := range shmParityRunners() {
		runners[name] = r
	}
	return runners
}

// checkWinEpoch drives one fence-delimited cycle of all three ops and
// verifies every rank's exposed memory afterwards.
func checkWinEpoch(c *Comm, n int) error {
	np := c.Size()
	rank := c.Rank()
	w, err := WinCreate[float64](c, n)
	if err != nil {
		return fmt.Errorf("WinCreate: %w", err)
	}
	defer w.Free()

	// Epoch 1: every rank puts its signature block into its right
	// neighbor's window, covering self-puts at np=1.
	right := (rank + 1) % np
	block := make([]float64, n)
	for i := range block {
		block[i] = float64(rank*1000 + i)
	}
	if err := w.Put(right, 0, block); err != nil {
		return fmt.Errorf("Put: %w", err)
	}
	if err := w.Fence(); err != nil {
		return fmt.Errorf("Fence 1: %w", err)
	}
	left := (rank - 1 + np) % np
	for i, got := range w.Local() {
		if want := float64(left*1000 + i); got != want {
			return fmt.Errorf("rank %d local[%d] = %v after Put epoch, want %v", rank, i, got, want)
		}
	}
	// Local reads are themselves an epoch: barrier before peers may open
	// the next access epoch on this window.
	if err := c.Barrier(); err != nil {
		return err
	}

	// Epoch 2: every rank accumulates ones into every window (rank-side
	// folds on the frame path, locked folds on the direct paths).
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	for t := 0; t < np; t++ {
		if err := w.Accumulate(t, 0, ones, Sum); err != nil {
			return fmt.Errorf("Accumulate -> %d: %w", t, err)
		}
	}
	if err := w.Fence(); err != nil {
		return fmt.Errorf("Fence 2: %w", err)
	}
	for i, got := range w.Local() {
		if want := float64(left*1000+i) + float64(np); got != want {
			return fmt.Errorf("rank %d local[%d] = %v after Accumulate epoch, want %v", rank, i, got, want)
		}
	}
	if err := c.Barrier(); err != nil {
		return err
	}

	// Epoch 3: read the left neighbor's window back with Get and check it
	// against what the epochs above deterministically left there.
	if n > 0 {
		dst := make([]float64, n)
		if err := w.Get(left, 0, dst); err != nil {
			return fmt.Errorf("Get: %w", err)
		}
		leftsLeft := (left - 1 + np) % np
		for i, got := range dst {
			if want := float64(leftsLeft*1000+i) + float64(np); got != want {
				return fmt.Errorf("rank %d Get(%d)[%d] = %v, want %v", rank, left, i, got, want)
			}
		}
	}
	return w.Fence()
}

func TestWinPutGetAccumulate(t *testing.T) {
	for name, runner := range winRunners() {
		name, runner := name, runner
		t.Run(name, func(t *testing.T) {
			if name == "tcp" || name == "tcp-legacy" {
				t.Parallel()
			}
			for _, np := range []int{1, 2, 3, 4} {
				for _, n := range []int{0, 1, 64, 4096} {
					if err := runner(np, func(c *Comm) error {
						return checkWinEpoch(c, n)
					}); err != nil {
						t.Fatalf("np=%d n=%d: %v", np, n, err)
					}
				}
			}
		})
	}
}

// TestWinTypes: the whitelist's integer and 32-bit element types through
// the same epoch cycle — the raw codec kinds and the unsafe views must
// agree on element size per type.
func TestWinTypes(t *testing.T) {
	check := func(c *Comm) error {
		if err := winTypeCycle[int32](c); err != nil {
			return fmt.Errorf("int32: %w", err)
		}
		if err := winTypeCycle[int64](c); err != nil {
			return fmt.Errorf("int64: %w", err)
		}
		if err := winTypeCycle[float32](c); err != nil {
			return fmt.Errorf("float32: %w", err)
		}
		return winTypeCycle[int](c)
	}
	runners := map[string]func(np int, main func(c *Comm) error, opts ...Option) error{
		"local": Run, "tcp": RunTCP,
	}
	if shmSupported {
		runners["shm"] = RunShm
	}
	for name, runner := range runners {
		if err := runner(3, check); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func winTypeCycle[T WinElem](c *Comm) error {
	const n = 97
	np := c.Size()
	w, err := WinCreate[T](c, n)
	if err != nil {
		return err
	}
	defer w.Free()
	v := make([]T, n)
	for i := range v {
		v[i] = T(c.Rank() + 1)
	}
	for t := 0; t < np; t++ {
		if err := w.Accumulate(t, 0, v, Sum); err != nil {
			return err
		}
	}
	if err := w.Fence(); err != nil {
		return err
	}
	want := T(np * (np + 1) / 2)
	for i, got := range w.Local() {
		if got != want {
			return fmt.Errorf("local[%d] = %v, want %v", i, got, want)
		}
	}
	return w.Fence()
}

// TestWinUnevenSizes: ranks expose different window sizes, including zero;
// bounds are per-target.
func TestWinUnevenSizes(t *testing.T) {
	const np = 4
	err := Run(np, func(c *Comm) error {
		n := c.Rank() * 8 // rank 0 exposes nothing
		w, err := WinCreate[int64](c, n)
		if err != nil {
			return err
		}
		defer w.Free()
		for tgt := 1; tgt < np; tgt++ {
			if c.Rank() == 0 {
				v := make([]int64, w.Size(tgt))
				for i := range v {
					v[i] = int64(tgt)
				}
				if err := w.Put(tgt, 0, v); err != nil {
					return err
				}
			}
		}
		if err := w.Fence(); err != nil {
			return err
		}
		for i, got := range w.Local() {
			if want := int64(c.Rank()); got != want {
				return fmt.Errorf("rank %d local[%d] = %d, want %d", c.Rank(), i, got, want)
			}
		}
		return w.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWinBounds: out-of-range ops and invalid arguments fail with errors,
// never memory corruption, on both the direct and the serialized path.
func TestWinBounds(t *testing.T) {
	for _, opts := range [][]Option{nil, {WithSerialization()}} {
		err := Run(2, func(c *Comm) error {
			w, err := WinCreate[float64](c, 16)
			if err != nil {
				return err
			}
			defer w.Free()
			v := make([]float64, 8)
			if err := w.Put(1, 12, v); err == nil {
				return fmt.Errorf("Put past the end succeeded")
			}
			if err := w.Get(1, -1, v); err == nil {
				return fmt.Errorf("Get at negative offset succeeded")
			}
			if err := w.Put(7, 0, v); err == nil {
				return fmt.Errorf("Put to an invalid rank succeeded")
			}
			if err := w.Accumulate(1, 0, v, Op(99)); err == nil {
				return fmt.Errorf("Accumulate with a bogus op succeeded")
			}
			return w.Fence()
		}, opts...)
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestWinLockUnlock: the passive-target mutual-exclusion property — np
// ranks each run k read-modify-write increments on rank 0's counter under
// Lock/Unlock; every increment must survive. This is exactly the update
// that Fence epochs cannot express and that races without the lock, and it
// must hold across transports because direct-path and frame-path lockers
// share the target's lock service.
func TestWinLockUnlock(t *testing.T) {
	const np, iters = 4, 25
	runners := map[string]func(np int, main func(c *Comm) error, opts ...Option) error{
		"local": Run, "tcp": RunTCP,
		"local-gob": func(np int, main func(c *Comm) error, opts ...Option) error {
			return Run(np, main, append(opts, WithSerialization())...)
		},
	}
	if shmSupported {
		runners["shm"] = RunShm
	}
	for name, runner := range runners {
		name, runner := name, runner
		t.Run(name, func(t *testing.T) {
			err := runner(np, func(c *Comm) error {
				w, err := WinCreate[int64](c, 1)
				if err != nil {
					return err
				}
				defer w.Free()
				buf := make([]int64, 1)
				for i := 0; i < iters; i++ {
					if err := w.Lock(0); err != nil {
						return err
					}
					if err := w.Get(0, 0, buf); err != nil {
						return err
					}
					buf[0]++
					if err := w.Put(0, 0, buf); err != nil {
						return err
					}
					if err := w.Unlock(0); err != nil {
						return err
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					if got := w.Local()[0]; got != int64(np*iters) {
						return fmt.Errorf("counter = %d after %d locked increments, want %d", got, np*iters, np*iters)
					}
				}
				return w.Fence()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWinMultipleWindows: two windows on one communicator use disjoint tag
// blocks and separate services; traffic on one never bleeds into the other.
func TestWinMultipleWindows(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		a, err := WinCreate[int64](c, 4)
		if err != nil {
			return err
		}
		defer a.Free()
		b, err := WinCreate[int64](c, 4)
		if err != nil {
			return err
		}
		defer b.Free()
		va := []int64{1, 1, 1, 1}
		vb := []int64{7, 7, 7, 7}
		for t := 0; t < c.Size(); t++ {
			if err := a.Accumulate(t, 0, va, Sum); err != nil {
				return err
			}
			if err := b.Accumulate(t, 0, vb, Sum); err != nil {
				return err
			}
		}
		if err := a.Fence(); err != nil {
			return err
		}
		if err := b.Fence(); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if a.Local()[i] != 3 || b.Local()[i] != 21 {
				return fmt.Errorf("windows cross-contaminated: a=%v b=%v", a.Local(), b.Local())
			}
		}
		if err := a.Fence(); err != nil {
			return err
		}
		return b.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmWinReclamation: segment window-heap space is visible in the
// transport stats while windows are live and fully reclaimed once the last
// one is freed — serial create/free cycles never leak the heap.
func TestShmWinReclamation(t *testing.T) {
	skipNoShm(t)
	obs := observeShm(t)
	err := RunShm(2, func(c *Comm) error {
		st := obs.get(c.Rank())
		for cycle := 0; cycle < 3; cycle++ {
			w, err := WinCreate[float64](c, 1024)
			if err != nil {
				return err
			}
			if !w.shmBacked {
				return fmt.Errorf("rank %d window not segment-backed on shm world", c.Rank())
			}
			if got := st.statsSnapshot().OutstandingWinBytes; got == 0 {
				return fmt.Errorf("rank %d: live window reports 0 heap bytes", c.Rank())
			}
			peer := (c.Rank() + 1) % c.Size()
			v := make([]float64, 1024)
			for i := range v {
				v[i] = float64(cycle)
			}
			if err := w.Put(peer, 0, v); err != nil {
				return err
			}
			if err := w.Fence(); err != nil {
				return err
			}
			if got := w.Local()[0]; got != float64(cycle) {
				return fmt.Errorf("rank %d cycle %d: peer Put not visible, local[0]=%v", c.Rank(), cycle, got)
			}
			if err := w.Free(); err != nil {
				return err
			}
			if got := st.statsSnapshot().OutstandingWinBytes; got != 0 {
				return fmt.Errorf("rank %d cycle %d: %d heap bytes unreclaimed after Free", c.Rank(), cycle, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWinFreeIdempotent: double Free is safe, and ops after Free fail.
func TestWinFreeIdempotent(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		w, err := WinCreate[float64](c, 8)
		if err != nil {
			return err
		}
		if err := w.Free(); err != nil {
			return err
		}
		if err := w.Free(); err != nil {
			return err
		}
		if err := w.Put(0, 0, []float64{1}); err == nil {
			return fmt.Errorf("Put on a freed window succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWinAbortUnblocks: a world abort mid-epoch unblocks a rank waiting in
// Fence for acks that will never come, instead of hanging it.
func TestWinAbortUnblocks(t *testing.T) {
	err := runWithWatchdog(t, 20*time.Second, func() error {
		return Run(3, func(c *Comm) error {
			w, werr := WinCreate[float64](c, 8)
			if werr != nil {
				return werr
			}
			if c.Rank() == 2 {
				// Die before serving the epoch's barrier.
				return errDeliberate
			}
			_ = w.Put(1, 0, make([]float64, 8))
			ferr := w.Fence()
			if ferr == nil {
				return fmt.Errorf("Fence succeeded in an aborted world")
			}
			return ferr
		}, WithSerialization())
	})
	if err == nil {
		t.Fatal("aborted world reported success")
	}
	if !errors.Is(err, errDeliberate) {
		t.Fatalf("want the deliberate abort cause, got %v", err)
	}
}
