//go:build amd64 || arm64 || riscv64 || loong64

package mpi

import "unsafe"

// On little-endian 64-bit platforms the in-memory element storage of the
// numeric whitelist types is byte-for-byte the wire encoding (fixed-width
// little-endian, and int is 64 bits wide), so the framing layer can write a
// slice's backing array to the connection directly and memmove incoming
// payloads into a receive buffer, instead of running a per-element
// PutUint64/Uint64 loop through an intermediate copy. rawview_portable.go is
// the build-tag complement: every other GOARCH reports no view and takes the
// element loops, which work at any width or byte order.
//
// []bool is deliberately absent: the wire format promises one byte per
// element holding exactly 0 or 1, and while the gc toolchain happens to store
// bools that way, the language does not — so bools always go through the
// normalizing loop.

// rawViewNative reports at build time that this platform's in-memory
// element layout is the wire layout, so byte payloads may also be
// reinterpreted in place as element slices (rawSliceView in vectorrecv.go).
const rawViewNative = true

// rawBytesView returns v's element storage as a byte slice aliasing v, and
// whether v has a layout-compatible view at all. The caller must finish with
// the view before returning control to the slice's owner; nothing may retain
// it.
func rawBytesView(v any) ([]byte, bool) {
	switch x := v.(type) {
	case []float64:
		if len(x) == 0 {
			return nil, true
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&x[0])), 8*len(x)), true
	case []int:
		if len(x) == 0 {
			return nil, true
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&x[0])), 8*len(x)), true
	case []int64:
		if len(x) == 0 {
			return nil, true
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&x[0])), 8*len(x)), true
	case []int32:
		if len(x) == 0 {
			return nil, true
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&x[0])), 4*len(x)), true
	case []float32:
		if len(x) == 0 {
			return nil, true
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&x[0])), 4*len(x)), true
	case []byte:
		return x, true
	}
	return nil, false
}
