//go:build !race

package mpi

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count pins consult it: the detector's shadow bookkeeping can
// charge allocations to code that performs none in a normal build.
const raceEnabled = false
