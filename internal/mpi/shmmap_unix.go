//go:build linux || darwin

package mpi

import (
	"os"
	"syscall"
)

// shmSupported gates the shared-memory transport at compile time; the stub
// complement (shmmap_stub.go) reports false everywhere mmap is unavailable.
const shmSupported = true

func shmMapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func shmUnmap(b []byte) error { return syscall.Munmap(b) }
