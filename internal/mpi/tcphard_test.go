package mpi

import (
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHubFormationTimeout: a world that never assembles fails with
// ErrFormationTimeout listing the ranks that never joined, instead of the
// hub waiting forever.
func TestHubFormationTimeout(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 3, HubFormationTimeout(40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	werr := hub.Wait()
	if !errors.Is(werr, ErrFormationTimeout) {
		t.Fatalf("hub.Wait = %v, want ErrFormationTimeout", werr)
	}
	if !strings.Contains(werr.Error(), "[0 1 2]") {
		t.Fatalf("hub.Wait = %v, want all three missing ranks listed", werr)
	}
}

// TestHubFormationTimeoutNamesMissingRanks: ranks that did join are not
// blamed, and the waiting joiner is released with the failure rather than
// left blocked on the start signal.
func TestHubFormationTimeoutNamesMissingRanks(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 3, HubFormationTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	joined := make(chan error, 1)
	go func() {
		joined <- JoinTCP(hub.Addr(), 0, 3, func(c *Comm) error { return nil })
	}()

	// Same-package test: confirm rank 0 was admitted well inside the
	// formation budget, so the timeout can only blame ranks 1 and 2.
	admitted := false
	for i := 0; i < 100 && !admitted; i++ {
		hub.mu.Lock()
		_, admitted = hub.conns[0]
		hub.mu.Unlock()
		if !admitted {
			time.Sleep(time.Millisecond)
		}
	}
	if !admitted {
		t.Fatal("rank 0 not admitted within 100ms; cannot exercise the partial-formation case")
	}

	werr := hub.Wait()
	if !errors.Is(werr, ErrFormationTimeout) {
		t.Fatalf("hub.Wait = %v, want ErrFormationTimeout", werr)
	}
	if strings.Contains(werr.Error(), "[0") || !strings.Contains(werr.Error(), "1 2]") {
		t.Fatalf("hub.Wait = %v, want exactly ranks 1 and 2 reported missing", werr)
	}
	select {
	case jerr := <-joined:
		if jerr == nil {
			t.Fatal("joined worker reported success in a world that never formed")
		}
		if !errors.Is(jerr, ErrWorldAborted) && !strings.Contains(jerr.Error(), "formation") {
			t.Fatalf("joined worker err = %v, want the formation failure", jerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joined worker still blocked after formation timeout")
	}
}

// TestRunTCPFormationTimeoutOption: WithHubOptions threads hub hardening
// through RunTCP. All ranks join instantly here, so the tight formation
// budget must not fire.
func TestRunTCPFormationTimeoutOption(t *testing.T) {
	err := RunTCP(2, func(c *Comm) error {
		return c.Barrier()
	}, WithHubOptions(HubFormationTimeout(5*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
}

// TestDialRetryBounded: dialing an address nobody will ever listen on fails
// once the retry budget is spent — promptly, and with the budget named.
func TestDialRetryBounded(t *testing.T) {
	// Reserve a port, then close it so the dial target is definitely dead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	jerr := JoinTCP(addr, 0, 1, func(c *Comm) error { return nil },
		WithDialRetry(80*time.Millisecond))
	elapsed := time.Since(start)
	if jerr == nil {
		t.Fatal("JoinTCP succeeded against a dead address")
	}
	if !strings.Contains(jerr.Error(), "retried for") {
		t.Fatalf("err = %v, want the retry budget reported", jerr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("bounded retry took %v", elapsed)
	}
}

// TestDialRetrySingleAttempt: a negative budget restores fail-fast dialing.
func TestDialRetrySingleAttempt(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	jerr := JoinTCP(addr, 0, 1, func(c *Comm) error { return nil }, WithDialRetry(-1))
	if jerr == nil || strings.Contains(jerr.Error(), "retried") {
		t.Fatalf("err = %v, want a single-attempt dial failure", jerr)
	}
}

// TestDialRetryRidesOutLateHub: the launch race the retry exists for —
// workers started before their hub — resolves itself once the hub comes up.
func TestDialRetryRidesOutLateHub(t *testing.T) {
	// Reserve an address for the hub, release it, start the worker first.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	joined := make(chan error, 1)
	go func() {
		joined <- JoinTCP(addr, 0, 1, func(c *Comm) error { return nil })
	}()

	time.Sleep(50 * time.Millisecond) // worker's first dials fail meanwhile
	hub, err := StartHub(addr, 1)
	if err != nil {
		t.Fatalf("hub could not claim the reserved address: %v", err)
	}
	defer hub.Close()

	select {
	case jerr := <-joined:
		if jerr != nil {
			t.Fatalf("worker failed despite the hub arriving within the budget: %v", jerr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never joined the late hub")
	}
	if werr := hub.Wait(); werr != nil {
		t.Fatal(werr)
	}
}

// TestHubHeartbeatAnswersKeepWorldAlive: JoinTCP's read loop answers pings
// from outside user code, so a rank busy in a long compute still heartbeats
// and a healthy world is never revoked.
func TestHubHeartbeatAnswersKeepWorldAlive(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 2, HubHeartbeat(15*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			errs[rank] = JoinTCP(hub.Addr(), rank, 2, func(c *Comm) error {
				time.Sleep(120 * time.Millisecond) // several heartbeat intervals
				return c.Barrier()
			})
		}(rank)
	}
	wg.Wait()
	for rank, e := range errs {
		if e != nil {
			t.Fatalf("rank %d: %v", rank, e)
		}
	}
	if werr := hub.Wait(); werr != nil {
		t.Fatalf("healthy heartbeating world revoked: %v", werr)
	}
}

// TestHubHeartbeatDetectsSilentWorker: a worker that joins and then goes
// silent — no pongs, no traffic, connection still open — is detected and
// the job fails with the unresponsive rank named.
func TestHubHeartbeatDetectsSilentWorker(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 1, HubHeartbeat(15*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	conn, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(hello{Rank: 0}); err != nil {
		t.Fatal(err)
	}
	var start frame
	if err := gob.NewDecoder(conn).Decode(&start); err != nil {
		t.Fatal(err)
	}
	if start.Tag != tagStart {
		t.Fatalf("first frame tag = %d, want start", start.Tag)
	}
	// Never answer the pings.
	werr := hub.Wait()
	if werr == nil || !strings.Contains(werr.Error(), "unresponsive") {
		t.Fatalf("hub.Wait = %v, want the silent worker reported unresponsive", werr)
	}
	if !strings.Contains(werr.Error(), "[0]") {
		t.Fatalf("hub.Wait = %v, want rank 0 named", werr)
	}
}
