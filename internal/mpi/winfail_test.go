package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Failure semantics on the one-sided layer: RMA epochs are new protocol code
// (acks, lock grants, a service goroutine), so the failure model must be
// re-proven on them specifically. A rank dying mid-epoch leaves origins
// waiting for acks that will never come and barriers that will never form —
// both must surface as the retryable *RankFailedError under WithRecovery,
// or as the world's single *DeadlineError under WithDeadline, never a hang.

// TestKillRankMidWinEpoch: a seeded fault plan kills one rank on its first
// window-protocol send (its Put header on the frame transports, its Lock
// request on the direct-path ones), in the middle of a fence epoch. Every
// survivor's Fence must return a retryable *RankFailedError — whether the
// stall is a missing ack (frame path) or a missing barrier token (direct
// path) — and a subsequent op addressed to the dead rank must fail fast at
// the origin without touching the protocol. Runs on all three transports.
func TestKillRankMidWinEpoch(t *testing.T) {
	const np = 4
	const victim = 2
	plan := FaultPlan{
		Seed:  11,
		Rules: []FaultRule{{Src: victim, Dst: AnySource, Tag: tagWinBase, Action: FaultKillRank}},
	}
	for _, l := range recoveryLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			var mu sync.Mutex
			observed := map[int]error{}
			err := runWithWatchdog(t, 30*time.Second, func() error {
				return l.run(np, func(c *Comm) error {
					w, err := WinCreate[float64](c, 16)
					if err != nil {
						return err
					}
					block := make([]float64, 16)
					for i := range block {
						block[i] = float64(c.Rank())
					}
					right := (c.Rank() + 1) % np
					if c.Rank() == victim {
						// The epoch's ops: the Put header is the first tagOp
						// frame on the frame transports; on direct-path
						// transports the Put is a memcpy and the Lock request
						// is the first frame. Either way the plan kills this
						// rank inside the epoch.
						if err := w.Put(right, 0, block); err != nil {
							return err
						}
						if err := w.Lock(0); err != nil {
							return err
						}
						return fmt.Errorf("victim: survived its own kill")
					}
					// The whole epoch is the unit under test: a survivor whose
					// Put addresses the victim may already fail fast there,
					// the rest stall in Fence — either is the retryable error.
					ferr := func() error {
						if err := w.Put(right, 0, block); err != nil {
							return err
						}
						return w.Fence()
					}()
					mu.Lock()
					observed[c.Rank()] = ferr
					mu.Unlock()
					if ferr == nil {
						return fmt.Errorf("survivor %d: Fence succeeded with a dead peer", c.Rank())
					}
					// Fail-fast gate: with the failure observed, an op toward
					// the dead rank is refused at the origin.
					if perr := w.Put(victim, 0, block); perr == nil {
						return fmt.Errorf("survivor %d: Put to the dead rank succeeded", c.Rank())
					}
					return c.Revoke()
				}, WithFaults(plan), WithRecovery())
			})
			if err != nil {
				t.Fatalf("recovered run should report success, got %v", err)
			}
			if len(observed) != np-1 {
				t.Fatalf("recorded %d survivor outcomes, want %d", len(observed), np-1)
			}
			for rank, ferr := range observed {
				var rfe *RankFailedError
				if !errors.As(ferr, &rfe) {
					t.Errorf("survivor %d: want *RankFailedError from Fence, got %v", rank, ferr)
				}
			}
		})
	}
}

// TestWinDeadlineStalledFence: a dropped completion ack stalls the origin's
// Fence in its flush — waiting for a receive nothing will satisfy — and
// WithDeadline must convert the stall into the world's *DeadlineError whose
// blocked-operation snapshot names the Recv under the window's ack tag.
// The frame path is forced (serialization on the local world; TCP frames
// naturally), since direct-path ops have no acks to lose.
func TestWinDeadlineStalledFence(t *testing.T) {
	const tagAck0 = tagWinBase - 2 // window 0's ack tag
	plan := FaultPlan{
		Rules: []FaultRule{{Src: 1, Dst: 0, Tag: tagAck0, Count: 1, Action: FaultDrop}},
	}
	for _, tc := range []struct {
		name string
		run  func(np int, main func(c *Comm) error, opts ...Option) error
		opts []Option
	}{
		{"local-gob", Run, []Option{WithSerialization()}},
		{"tcp", RunTCP, nil},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]Option{WithFaults(plan), WithDeadline(150 * time.Millisecond)}, tc.opts...)
			err := runWithWatchdog(t, 20*time.Second, func() error {
				return tc.run(2, func(c *Comm) error {
					w, err := WinCreate[float64](c, 8)
					if err != nil {
						return err
					}
					other := 1 - c.Rank()
					if err := w.Put(other, 0, make([]float64, 8)); err != nil {
						return err
					}
					return w.Fence()
				}, opts...)
			})
			var derr *DeadlineError
			if !errors.As(err, &derr) {
				t.Fatalf("err = %v, want a *DeadlineError in the chain", err)
			}
			if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, ErrWorldAborted) {
				t.Fatalf("err = %v, want ErrDeadlineExceeded and ErrWorldAborted identities", err)
			}
			found := false
			for _, op := range derr.Blocked {
				if op.Op == "Recv" && op.Tag == tagAck0 {
					found = true
				}
			}
			if !found {
				t.Fatalf("blocked snapshot %v names no Recv under the window ack tag", derr.Blocked)
			}
		})
	}
}
