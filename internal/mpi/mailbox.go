package mpi

import "sync"

// mailbox is one rank's incoming message queue. Receives match messages by
// (context, source, tag) with wildcard support, always taking the earliest
// matching arrival — which, combined with order-preserving transports,
// yields MPI's non-overtaking guarantee for any (sender, receiver, context)
// pair.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []frame
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deliver appends an arriving frame and wakes blocked receivers.
func (m *mailbox) deliver(f frame) {
	m.mu.Lock()
	m.queue = append(m.queue, f)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// matches reports whether f satisfies a receive for (ctx, src, tag),
// honouring AnySource and AnyTag.
func matches(f frame, ctx int64, src, tag int) bool {
	if f.Ctx != ctx {
		return false
	}
	if src != AnySource && f.Src != src {
		return false
	}
	if tag != AnyTag && f.Tag != tag {
		return false
	}
	return true
}

// take removes and returns the earliest frame matching (ctx, src, tag),
// blocking until one arrives or the mailbox closes.
func (m *mailbox) take(ctx int64, src, tag int) (frame, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, f := range m.queue {
			if matches(f, ctx, src, tag) {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return f, nil
			}
		}
		if m.closed {
			return frame{}, ErrShutdown
		}
		m.cond.Wait()
	}
}

// peek reports whether a frame matching (ctx, src, tag) is queued, and if so
// returns its status, without removing it: the core of Iprobe.
func (m *mailbox) peek(ctx int64, src, tag int) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.queue {
		if matches(f, ctx, src, tag) {
			return Status{Source: f.Src, Tag: f.Tag, Bytes: len(f.Data)}, true
		}
	}
	return Status{}, false
}

// waitMatch blocks until a matching frame is queued (without removing it) or
// the mailbox closes: the core of the blocking Probe.
func (m *mailbox) waitMatch(ctx int64, src, tag int) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for _, f := range m.queue {
			if matches(f, ctx, src, tag) {
				return Status{Source: f.Src, Tag: f.Tag, Bytes: len(f.Data)}, nil
			}
		}
		if m.closed {
			return Status{}, ErrShutdown
		}
		m.cond.Wait()
	}
}

// close marks the mailbox closed and wakes all blocked receivers.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
