package mpi

import "sync"

// mailbox is one rank's incoming message queue. Receives match messages by
// (context, source, tag) with wildcard support, always taking the earliest
// matching arrival — which, combined with order-preserving transports,
// yields MPI's non-overtaking guarantee for any (sender, receiver, context)
// pair.
//
// Frames are indexed by their exact (context, source, tag) key. An exact
// receive — the overwhelmingly common case; every collective is one — pops
// the head of a single per-key queue in O(1) instead of scanning the whole
// backlog. Wildcard receives (AnySource/AnyTag) compare the heads of the
// candidate key queues by a global arrival sequence number, so they still
// take the earliest matching arrival, at O(distinct pending keys) rather
// than O(pending frames).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	seq    uint64                 // next arrival number
	byKey  map[mailKey][]seqFrame // pending frames, FIFO per exact key
	closed bool
}

// mailKey is the exact-match index key.
type mailKey struct {
	ctx      int64
	src, tag int
}

// seqFrame stamps a frame with its arrival order across the whole mailbox.
type seqFrame struct {
	seq uint64
	f   frame
}

func newMailbox() *mailbox {
	m := &mailbox{byKey: make(map[mailKey][]seqFrame)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deliver appends an arriving frame and wakes blocked receivers.
func (m *mailbox) deliver(f frame) {
	key := mailKey{ctx: f.Ctx, src: f.Src, tag: f.Tag}
	m.mu.Lock()
	m.byKey[key] = append(m.byKey[key], seqFrame{seq: m.seq, f: f})
	m.seq++
	m.cond.Broadcast()
	m.mu.Unlock()
}

// matches reports whether f satisfies a receive for (ctx, src, tag),
// honouring AnySource and AnyTag.
func matches(f frame, ctx int64, src, tag int) bool {
	if f.Ctx != ctx {
		return false
	}
	if src != AnySource && f.Src != src {
		return false
	}
	if tag != AnyTag && f.Tag != tag {
		return false
	}
	return true
}

// findLocked returns the key whose head frame is the earliest arrival
// matching (ctx, src, tag). Exact receives hit the index directly; wildcard
// receives scan queue heads. Caller holds m.mu.
func (m *mailbox) findLocked(ctx int64, src, tag int) (mailKey, bool) {
	if src != AnySource && tag != AnyTag {
		key := mailKey{ctx: ctx, src: src, tag: tag}
		if len(m.byKey[key]) > 0 {
			return key, true
		}
		return mailKey{}, false
	}
	var best mailKey
	bestSeq, found := uint64(0), false
	for key, q := range m.byKey {
		if len(q) == 0 || !matches(q[0].f, ctx, src, tag) {
			continue
		}
		if !found || q[0].seq < bestSeq {
			best, bestSeq, found = key, q[0].seq, true
		}
	}
	return best, found
}

// popLocked removes and returns the head frame of key's queue. Caller holds
// m.mu and guarantees the queue is non-empty.
func (m *mailbox) popLocked(key mailKey) frame {
	q := m.byKey[key]
	f := q[0].f
	q[0] = seqFrame{} // release the payload reference held by the backing array
	if len(q) == 1 {
		delete(m.byKey, key)
	} else {
		m.byKey[key] = q[1:]
	}
	return f
}

// take removes and returns the earliest frame matching (ctx, src, tag),
// blocking until one arrives or the mailbox closes.
func (m *mailbox) take(ctx int64, src, tag int) (frame, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if key, ok := m.findLocked(ctx, src, tag); ok {
			return m.popLocked(key), nil
		}
		if m.closed {
			return frame{}, ErrShutdown
		}
		m.cond.Wait()
	}
}

// peek reports whether a frame matching (ctx, src, tag) is queued, and if so
// returns its status, without removing it: the core of Iprobe.
func (m *mailbox) peek(ctx int64, src, tag int) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if key, ok := m.findLocked(ctx, src, tag); ok {
		return m.byKey[key][0].f.status(), true
	}
	return Status{}, false
}

// waitMatch blocks until a matching frame is queued (without removing it) or
// the mailbox closes: the core of the blocking Probe.
func (m *mailbox) waitMatch(ctx int64, src, tag int) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if key, ok := m.findLocked(ctx, src, tag); ok {
			return m.byKey[key][0].f.status(), nil
		}
		if m.closed {
			return Status{}, ErrShutdown
		}
		m.cond.Wait()
	}
}

// close marks the mailbox closed and wakes all blocked receivers.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
