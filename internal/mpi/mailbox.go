package mpi

import (
	"sync"
	"time"
)

// mailbox is one rank's incoming message queue. Receives match messages by
// (context, source, tag) with wildcard support, always taking the earliest
// matching arrival — which, combined with order-preserving transports,
// yields MPI's non-overtaking guarantee for any (sender, receiver, context)
// pair.
//
// Frames are indexed by their exact (context, source, tag) key. An exact
// receive — the overwhelmingly common case; every collective is one — pops
// the head of a single per-key queue in O(1) instead of scanning the whole
// backlog. Wildcard receives (AnySource/AnyTag) compare the heads of the
// candidate key queues by a global arrival sequence number, so they still
// take the earliest matching arrival, at O(distinct pending keys) rather
// than O(pending frames).
//
// A mailbox can end in two ways. close (transport shutdown) lets pending
// frames drain and then fails further waits with ErrShutdown. fail (world
// abort) poisons the mailbox outright: blocked and future operations return
// the abort error immediately, pending frames included — the revoke
// semantic that turns one rank's failure into a prompt error everywhere
// instead of a hang.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	seq     uint64                 // next arrival number
	byKey   map[mailKey][]seqFrame // pending frames, FIFO per exact key
	closed  bool
	failErr error     // abort poison; checked before matching
	blocked []*waiter // registered blocked operations (deadline worlds only)
}

// mailKey is the exact-match index key.
type mailKey struct {
	ctx      int64
	src, tag int
}

// seqFrame stamps a frame with its arrival order across the whole mailbox.
type seqFrame struct {
	seq uint64
	f   frame
}

// waiter records one blocked receive/probe for the deadline machinery's
// who-waits-on-whom snapshot. Waiters are registered only in worlds with a
// deadline, so the default hot path never touches the registry.
type waiter struct {
	op       string
	ctx      int64
	src, tag int
	since    time.Time
}

func newMailbox() *mailbox {
	m := &mailbox{byKey: make(map[mailKey][]seqFrame)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deliver appends an arriving frame and wakes blocked receivers.
func (m *mailbox) deliver(f frame) {
	key := mailKey{ctx: f.Ctx, src: f.Src, tag: f.Tag}
	m.mu.Lock()
	m.byKey[key] = append(m.byKey[key], seqFrame{seq: m.seq, f: f})
	m.seq++
	m.cond.Broadcast()
	m.mu.Unlock()
}

// matches reports whether f satisfies a receive for (ctx, src, tag),
// honouring AnySource and AnyTag.
func matches(f frame, ctx int64, src, tag int) bool {
	if f.Ctx != ctx {
		return false
	}
	if src != AnySource && f.Src != src {
		return false
	}
	if tag != AnyTag && f.Tag != tag {
		return false
	}
	return true
}

// findLocked returns the key whose head frame is the earliest arrival
// matching (ctx, src, tag). Exact receives hit the index directly; wildcard
// receives scan queue heads. Caller holds m.mu.
func (m *mailbox) findLocked(ctx int64, src, tag int) (mailKey, bool) {
	if src != AnySource && tag != AnyTag {
		key := mailKey{ctx: ctx, src: src, tag: tag}
		if len(m.byKey[key]) > 0 {
			return key, true
		}
		return mailKey{}, false
	}
	var best mailKey
	bestSeq, found := uint64(0), false
	for key, q := range m.byKey {
		if len(q) == 0 || !matches(q[0].f, ctx, src, tag) {
			continue
		}
		if !found || q[0].seq < bestSeq {
			best, bestSeq, found = key, q[0].seq, true
		}
	}
	return best, found
}

// popLocked removes and returns the head frame of key's queue. Caller holds
// m.mu and guarantees the queue is non-empty.
func (m *mailbox) popLocked(key mailKey) frame {
	q := m.byKey[key]
	f := q[0].f
	q[0] = seqFrame{} // release the payload reference held by the backing array
	if len(q) == 1 {
		delete(m.byKey, key)
	} else {
		m.byKey[key] = q[1:]
	}
	return f
}

// wait blocks until a frame matching (ctx, src, tag) is available and
// returns it, popping it for receives (pop) and leaving it queued for
// probes (!pop). It is the single blocking primitive under Recv, Probe, and
// every collective.
//
// The checks run in revoke order: a poisoned mailbox fails immediately
// (even with matching frames queued — the world is revoked); a match wins
// over a close, so pending frames drain after transport shutdown; the
// recovery check (if any) runs only after a match miss, so frames already
// queued from a rank that later failed still deliver; and only then does a
// timeout fire. With timeout > 0 the blocked operation is registered for
// snapshots, and on expiry onTimeout is invoked with the waiter still
// registered and m.mu released — it may inspect other mailboxes and poison
// this one — and its error is returned verbatim. check is called with m.mu
// held and must not block.
func (m *mailbox) wait(op string, ctx int64, src, tag int, timeout time.Duration, onTimeout func() error, check func() error, pop bool) (frame, error) {
	var deadlineAt time.Time
	if timeout > 0 {
		deadlineAt = time.Now().Add(timeout)
		timer := time.AfterFunc(timeout, func() {
			// Wake the waiter so the loop observes the expiry; locking
			// around the broadcast closes the missed-wakeup window.
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer timer.Stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var wt *waiter
	defer func() {
		if wt != nil {
			m.removeWaiterLocked(wt)
		}
	}()
	for {
		if m.failErr != nil {
			return frame{}, m.failErr
		}
		if key, ok := m.findLocked(ctx, src, tag); ok {
			if !pop {
				return m.byKey[key][0].f, nil
			}
			return m.popLocked(key), nil
		}
		if check != nil {
			if err := check(); err != nil {
				return frame{}, err
			}
		}
		if m.closed {
			return frame{}, ErrShutdown
		}
		if timeout > 0 {
			if wt == nil {
				wt = &waiter{op: op, ctx: ctx, src: src, tag: tag, since: time.Now()}
				m.blocked = append(m.blocked, wt)
			}
			if !time.Now().Before(deadlineAt) {
				m.mu.Unlock()
				err := onTimeout()
				m.mu.Lock()
				return frame{}, err
			}
		}
		m.cond.Wait()
	}
}

func (m *mailbox) removeWaiterLocked(wt *waiter) {
	for i, w := range m.blocked {
		if w == wt {
			last := len(m.blocked) - 1
			m.blocked[i], m.blocked[last] = m.blocked[last], nil
			m.blocked = m.blocked[:last]
			return
		}
	}
}

// blockedWaiters snapshots the registered blocked operations.
func (m *mailbox) blockedWaiters() []waiter {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]waiter, 0, len(m.blocked))
	for _, wt := range m.blocked {
		out = append(out, *wt)
	}
	return out
}

// take removes and returns the earliest frame matching (ctx, src, tag),
// blocking until one arrives, the mailbox closes, or the world aborts.
func (m *mailbox) take(ctx int64, src, tag int) (frame, error) {
	return m.wait("Recv", ctx, src, tag, 0, nil, nil, true)
}

// poke wakes every blocked waiter so it re-runs its checks — how a rank
// failure observed under recovery interrupts pending operations without
// poisoning the mailbox.
func (m *mailbox) poke() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// peek reports whether a frame matching (ctx, src, tag) is queued, and if so
// returns its status, without removing it: the core of Iprobe. A poisoned
// mailbox reports nothing available, matching the failing Recv it precedes.
func (m *mailbox) peek(ctx int64, src, tag int) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failErr != nil {
		return Status{}, false
	}
	if key, ok := m.findLocked(ctx, src, tag); ok {
		return m.byKey[key][0].f.status(), true
	}
	return Status{}, false
}

// waitMatch blocks until a matching frame is queued (without removing it),
// the mailbox closes, or the world aborts: the core of the blocking Probe.
func (m *mailbox) waitMatch(ctx int64, src, tag int) (Status, error) {
	f, err := m.wait("Probe", ctx, src, tag, 0, nil, nil, false)
	if err != nil {
		return Status{}, err
	}
	return f.status(), nil
}

// close marks the mailbox closed and wakes all blocked receivers. Pending
// frames stay receivable; only waits that would block fail, with
// ErrShutdown.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// fail poisons the mailbox with the world's abort error: every blocked and
// future operation returns err immediately, pending frames included. The
// first error sticks.
func (m *mailbox) fail(err error) {
	m.mu.Lock()
	if m.failErr == nil {
		m.failErr = err
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}
