// Package mpi implements a message-passing runtime for Go with the semantics
// of the Message Passing Interface, the library (via mpi4py) that the
// paper's distributed-computing patternlets teach.
//
// MPI structures a computation as a fixed set of independent processes
// (ranks) that share no memory and cooperate only by sending and receiving
// messages. This package reproduces the parts of that model the teaching
// materials rely on:
//
//   - SPMD execution: Run(np, main) starts np ranks all executing main,
//     each with its own Comm giving Rank(), Size(), and ProcessorName().
//   - Point-to-point messaging with MPI's matching rules: messages are
//     matched by (source, tag) with AnySource/AnyTag wildcards, and
//     messages between a fixed (sender, receiver) pair are non-overtaking.
//   - Nonblocking operations (Isend/Irecv) with Wait/Test.
//   - The collective operations the patternlets use: Barrier, Bcast,
//     Reduce, Allreduce, Scatter, Gather, Allgather, Alltoall, and Scan.
//   - Communicator management: Split and Dup create sub-communicators with
//     isolated message namespaces.
//
// Two transports are provided. The in-process transport runs each rank as a
// goroutine and routes messages through in-memory mailboxes; it is the
// analogue of running mpirun on a single multicore node (or the paper's
// unicore Colab VM). The TCP transport routes messages between genuinely
// separate endpoints through a hub over net.Conn, and supports ranks living
// in different OS processes, the analogue of a Beowulf cluster such as the
// paper's Chameleon platform.
//
// Payloads are Go values serialized with encoding/gob, mirroring how mpi4py
// lowercase methods (send/recv/bcast/...) pickle arbitrary Python objects.
package mpi
