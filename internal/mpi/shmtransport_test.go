package mpi

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The shared-memory transport's own suite: protocol selection (eager vs
// rendezvous vs chunked), the tuning crossover, FIFO across mixed sizes,
// gob payloads, segment validation, host-mismatch fallback, and formation
// timeout. Behavioral parity with the other transports lives in
// parity_test.go and vector_test.go; failure semantics in shmfail_test.go.

// shmObserver installs shmTestHook and collects each rank's transport
// endpoint as its world starts, so tests can read protocol counters.
type shmObserver struct {
	mu sync.Mutex
	tr map[int]*shmTransport
}

func observeShm(t *testing.T) *shmObserver {
	t.Helper()
	o := &shmObserver{tr: make(map[int]*shmTransport)}
	shmTestHook = func(st *shmTransport) {
		o.mu.Lock()
		o.tr[st.rank] = st
		o.mu.Unlock()
	}
	t.Cleanup(func() { shmTestHook = nil })
	return o
}

func (o *shmObserver) get(rank int) *shmTransport {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tr[rank]
}

func (o *shmObserver) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.tr)
}

func skipNoShm(t *testing.T) {
	t.Helper()
	if !shmSupported {
		t.Skip("shared-memory transport unsupported on this platform")
	}
}

// TestShmProtocolSelection: payload size picks the protocol — small
// payloads travel eagerly in the ring, mid-size ones rendezvous through a
// single staged block, and payloads above the block ceiling are chunked.
// All three arrive intact, and no same-host pair falls back to TCP.
func TestShmProtocolSelection(t *testing.T) {
	skipNoShm(t)
	obs := observeShm(t)

	mk := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i%97) + 0.5
		}
		return v
	}
	small := mk(64)       // 512 B: eager
	mid := mk(64 << 10)   // 512 KiB: rendezvous, single block
	huge := mk(400 << 10) // 3.2 MiB: above maxBlockPayload, chunked
	var snap shmTransportStats

	err := runWithWatchdog(t, 30*time.Second, func() error {
		return RunShm(2, func(c *Comm) error {
			if c.Rank() == 0 {
				for i, v := range [][]float64{small, mid, huge} {
					if err := c.Send(1, i, v); err != nil {
						return err
					}
				}
				if _, err := c.Recv(1, 9, nil); err != nil { // ack: all received
					return err
				}
				snap = obs.get(0).statsSnapshot()
				return nil
			}
			for i, want := range [][]float64{small, mid, huge} {
				var got []float64
				if _, err := c.Recv(0, i, &got); err != nil {
					return err
				}
				if len(got) != len(want) || got[0] != want[0] || got[len(got)-1] != want[len(want)-1] {
					return fmt.Errorf("payload %d corrupted: len %d want %d", i, len(got), len(want))
				}
			}
			return c.Send(0, 9, "done")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.count() != 2 {
		t.Fatalf("observed %d shm endpoints, want 2", obs.count())
	}
	if snap.Eager == 0 || snap.Rendezvous == 0 || snap.Chunked == 0 {
		t.Fatalf("sender stats %+v: want all of eager, rendezvous, chunked exercised", snap)
	}
	if snap.Fallback != 0 {
		t.Fatalf("sender stats %+v: same-host pairs must not fall back to TCP", snap)
	}
}

// TestShmEagerRendezvousCrossover: SetShmTuning's EagerMax is the protocol
// switch — the same two sends land on opposite sides of a lowered ceiling,
// with exact counter deltas on the sending endpoint.
func TestShmEagerRendezvousCrossover(t *testing.T) {
	skipNoShm(t)
	obs := observeShm(t)
	prev := SetShmTuning(ShmTuning{EagerMax: 512})
	defer SetShmTuning(prev)

	below := make([]float64, 32)  // 256 B <= 512: eager
	above := make([]float64, 512) // 4 KiB > 512: rendezvous
	var d shmTransportStats

	err := runWithWatchdog(t, 15*time.Second, func() error {
		return RunShm(2, func(c *Comm) error {
			if c.Rank() == 0 {
				s0 := obs.get(0).statsSnapshot()
				if err := c.Send(1, 1, below); err != nil {
					return err
				}
				if err := c.Send(1, 2, above); err != nil {
					return err
				}
				if _, err := c.Recv(1, 3, nil); err != nil {
					return err
				}
				s1 := obs.get(0).statsSnapshot()
				d = shmTransportStats{
					Eager:      s1.Eager - s0.Eager,
					Rendezvous: s1.Rendezvous - s0.Rendezvous,
					Chunked:    s1.Chunked - s0.Chunked,
				}
				return nil
			}
			var a, b []float64
			if _, err := c.Recv(0, 1, &a); err != nil {
				return err
			}
			if _, err := c.Recv(0, 2, &b); err != nil {
				return err
			}
			if len(a) != len(below) || len(b) != len(above) {
				return fmt.Errorf("lengths %d/%d, want %d/%d", len(a), len(b), len(below), len(above))
			}
			return c.Send(0, 3, "ok")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Eager != 1 || d.Rendezvous != 1 || d.Chunked != 0 {
		t.Fatalf("deltas %+v, want exactly one eager and one rendezvous send", d)
	}
}

// TestShmPureRendezvousTuning: EagerMax 0 is honored — every payload, even
// a lone int, takes the staged rendezvous path.
func TestShmPureRendezvousTuning(t *testing.T) {
	skipNoShm(t)
	obs := observeShm(t)
	prev := SetShmTuning(ShmTuning{EagerMax: 0})
	defer SetShmTuning(prev)

	var snap shmTransportStats
	err := runWithWatchdog(t, 15*time.Second, func() error {
		return RunShm(2, func(c *Comm) error {
			if c.Rank() == 0 {
				if err := c.Send(1, 1, 42); err != nil {
					return err
				}
				if _, err := c.Recv(1, 2, nil); err != nil {
					return err
				}
				snap = obs.get(0).statsSnapshot()
				return nil
			}
			var v int
			if _, err := c.Recv(0, 1, &v); err != nil {
				return err
			}
			if v != 42 {
				return fmt.Errorf("got %d, want 42", v)
			}
			return c.Send(0, 2, "ok")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Eager != 0 || snap.Rendezvous == 0 {
		t.Fatalf("stats %+v: EagerMax 0 must force rendezvous for every send", snap)
	}
}

// TestShmMixedSizeFIFO: a pair's ordering guarantee holds across protocol
// switches — eager, rendezvous, and chunked messages interleaved on one tag
// arrive in send order, each intact.
func TestShmMixedSizeFIFO(t *testing.T) {
	skipNoShm(t)
	sizes := []int{1, 3000, 96 << 10, 9, 300 << 10, 2} // elements; straddles all three protocols
	const rounds = 8
	err := runWithWatchdog(t, 60*time.Second, func() error {
		return RunShm(2, func(c *Comm) error {
			if c.Rank() == 0 {
				seq := 0.0
				for r := 0; r < rounds; r++ {
					for _, n := range sizes {
						v := make([]float64, n)
						v[n-1] = seq + 0.25
						v[0] = seq // n == 1: the stamp wins
						if err := c.Send(1, 5, v); err != nil {
							return err
						}
						seq++
					}
				}
				return nil
			}
			seq := 0.0
			for r := 0; r < rounds; r++ {
				for _, n := range sizes {
					var v []float64
					if _, err := c.Recv(0, 5, &v); err != nil {
						return err
					}
					wantLast := seq + 0.25
					if n == 1 {
						wantLast = seq
					}
					if len(v) != n || v[0] != seq || v[n-1] != wantLast {
						return fmt.Errorf("round %d: got len %d first %v last %v, want len %d seq %v",
							r, len(v), v[0], v[len(v)-1], n, seq)
					}
					seq++
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmGobPayloads: payloads outside the raw-codec whitelist travel as
// gob bytes through the same eager and rendezvous machinery and round-trip
// exactly.
func TestShmGobPayloads(t *testing.T) {
	skipNoShm(t)
	type record struct {
		Name string
		Vals []float64
	}
	small := record{Name: "eager", Vals: []float64{1, 2, 3}}
	big := record{Name: "rendezvous", Vals: make([]float64, 64<<10)}
	for i := range big.Vals {
		big.Vals[i] = float64(i)
	}
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return RunShm(2, func(c *Comm) error {
			if c.Rank() == 0 {
				if err := c.Send(1, 1, small); err != nil {
					return err
				}
				return c.Send(1, 2, big)
			}
			var a, b record
			if _, err := c.Recv(0, 1, &a); err != nil {
				return err
			}
			if _, err := c.Recv(0, 2, &b); err != nil {
				return err
			}
			if a.Name != small.Name || len(a.Vals) != len(small.Vals) {
				return fmt.Errorf("small record corrupted: %+v", a)
			}
			if b.Name != big.Name || len(b.Vals) != len(big.Vals) || b.Vals[12345] != 12345 {
				return fmt.Errorf("big record corrupted: name %q len %d", b.Name, len(b.Vals))
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmProbeStatus: Probe over shm reports the matched message's source,
// tag, and a positive byte count without consuming it.
func TestShmProbeStatus(t *testing.T) {
	skipNoShm(t)
	err := runWithWatchdog(t, 15*time.Second, func() error {
		return RunShm(2, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 7, make([]float64, 1024))
			}
			st, err := c.Probe(0, 7)
			if err != nil {
				return err
			}
			if st.Source != 0 || st.Tag != 7 || st.Bytes <= 0 {
				return fmt.Errorf("probe %v, want source 0 tag 7 positive bytes", st)
			}
			var v []float64
			if _, err := c.Recv(0, 7, &v); err != nil {
				return err
			}
			if len(v) != 1024 {
				return fmt.Errorf("len %d after probe, want 1024", len(v))
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmOutstandingReclaimed: after a drained rendezvous-heavy exchange,
// every staged block has been freed and lazily reclaimed — the allocator
// reports no outstanding large-message bytes.
func TestShmOutstandingReclaimed(t *testing.T) {
	skipNoShm(t)
	obs := observeShm(t)
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return RunShm(2, func(c *Comm) error {
			peer := 1 - c.Rank()
			v := make([]float64, 64<<10) // 512 KiB, rendezvous
			for i := 0; i < 20; i++ {
				if c.Rank() == 0 {
					if err := c.Send(peer, i, v); err != nil {
						return err
					}
					if _, err := c.Recv(peer, i, nil); err != nil {
						return err
					}
				} else {
					var got []float64
					if _, err := c.Recv(peer, i, &got); err != nil {
						return err
					}
					if err := c.Send(peer, i, got); err != nil {
						return err
					}
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			// The receiver frees blocks as it decodes; the sender reclaims
			// lazily. Poll briefly: the last ack's block may still be in
			// flight on the other side when the barrier releases us.
			st := obs.get(c.Rank())
			deadline := time.Now().Add(2 * time.Second)
			for {
				if st.statsSnapshot().OutstandingLargeBytes == 0 {
					return nil
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("rank %d: %d large bytes never reclaimed",
						c.Rank(), st.statsSnapshot().OutstandingLargeBytes)
				}
				time.Sleep(time.Millisecond)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmSegmentValidation: segment creation and mapping reject malformed
// inputs — bad rank counts, a file that is not a segment, and a world-shape
// mismatch.
func TestShmSegmentValidation(t *testing.T) {
	skipNoShm(t)
	if _, err := CreateShmSegment("", 0); err == nil {
		t.Fatal("CreateShmSegment(np=0) succeeded")
	}
	if _, err := CreateShmSegment("", maxShmRanks+1); err == nil {
		t.Fatalf("CreateShmSegment(np=%d) succeeded", maxShmRanks+1)
	}

	junk := filepath.Join(t.TempDir(), "junk.seg")
	if err := os.WriteFile(junk, make([]byte, shmSegHdrSize), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := openShmSegment(junk, 2); err == nil || !strings.Contains(err.Error(), "not an initialized") {
		t.Fatalf("openShmSegment(junk) = %v, want uninitialized-segment error", err)
	}

	seg, err := CreateShmSegment(filepath.Join(t.TempDir(), "np2.seg"), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(seg)
	if _, err := openShmSegment(seg, 3); err == nil || !strings.Contains(err.Error(), "built for 2 ranks") {
		t.Fatalf("openShmSegment(np mismatch) = %v, want world-shape error", err)
	}
	s, err := openShmSegment(seg, 2)
	if err != nil {
		t.Fatalf("openShmSegment(valid) = %v", err)
	}
	s.unmap()
}

// TestShmHostMismatchFallsBackToTCP: a segment stamped by a different host
// (a path shared over a network filesystem, say) silently degrades every
// rank to the TCP data plane — the world still completes, and no shm
// endpoint is ever created.
func TestShmHostMismatchFallsBackToTCP(t *testing.T) {
	skipNoShm(t)
	obs := observeShm(t)
	seg, err := CreateShmSegment(filepath.Join(t.TempDir(), "foreign.seg"), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(seg)
	// Stamp the segment as created elsewhere.
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	foreign := make([]byte, shmHostIDLen)
	copy(foreign, "some-other-host")
	if _, err := f.WriteAt(foreign, shmOffHostID); err != nil {
		t.Fatal(err)
	}
	f.Close()

	hub, err := StartHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = JoinShm(hub.Addr(), seg, rank, 2, func(c *Comm) error {
				if c.Rank() == 0 {
					return c.Send(1, 1, make([]float64, 32<<10))
				}
				var v []float64
				if _, err := c.Recv(0, 1, &v); err != nil {
					return err
				}
				if len(v) != 32<<10 {
					return fmt.Errorf("len %d, want %d", len(v), 32<<10)
				}
				return nil
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if n := obs.count(); n != 0 {
		t.Fatalf("%d shm endpoints created on a foreign segment, want 0 (pure TCP)", n)
	}
}

// TestShmFormationTimeout: a shm world whose peer never starts fails fast —
// the hub's formation timeout fires, names the missing rank, and releases
// the joined rank with the failure instead of leaving it parked on the
// start signal.
func TestShmFormationTimeout(t *testing.T) {
	skipNoShm(t)
	seg, err := CreateShmSegment(filepath.Join(t.TempDir(), "lonely.seg"), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(seg)
	hub, err := StartHub("127.0.0.1:0", 2, HubFormationTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	joined := make(chan error, 1)
	go func() {
		joined <- JoinShm(hub.Addr(), seg, 0, 2, func(c *Comm) error { return nil })
	}()
	admitted := false
	for i := 0; i < 100 && !admitted; i++ {
		hub.mu.Lock()
		_, admitted = hub.conns[0]
		hub.mu.Unlock()
		if !admitted {
			time.Sleep(time.Millisecond)
		}
	}
	if !admitted {
		t.Fatal("rank 0 not admitted within 100ms; cannot exercise the partial-formation case")
	}

	werr := hub.Wait()
	if !errors.Is(werr, ErrFormationTimeout) {
		t.Fatalf("hub.Wait = %v, want ErrFormationTimeout", werr)
	}
	if !strings.Contains(werr.Error(), "1") || strings.Contains(werr.Error(), "[0") {
		t.Fatalf("hub.Wait = %v, want rank 1 (and only rank 1) reported missing", werr)
	}
	select {
	case jerr := <-joined:
		if jerr == nil {
			t.Fatal("joined rank reported success in a world that never formed")
		}
		if !errors.Is(jerr, ErrWorldAborted) && !strings.Contains(jerr.Error(), "formation") {
			t.Fatalf("joined rank err = %v, want the formation failure", jerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joined rank still blocked after formation timeout")
	}
}

// TestShmWorldAbort: a rank failure on the shm transport revokes the world
// exactly like the other transports — survivors' blocked receives return
// ErrWorldAborted with the failing rank named.
func TestShmWorldAbort(t *testing.T) {
	skipNoShm(t)
	boom := errors.New("boom")
	err := runWithWatchdog(t, 15*time.Second, func() error {
		return RunShm(3, func(c *Comm) error {
			if c.Rank() == 2 {
				return boom
			}
			_, rerr := c.Recv(2, 1, nil) // never satisfied: the revoke must unblock it
			return rerr
		})
	})
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("err = %v, want ErrWorldAborted", err)
	}
	if !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("err = %v, want the failing rank named", err)
	}
}
