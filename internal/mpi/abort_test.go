package mpi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// runWithWatchdog fails the test if fn does not return within the budget —
// the revoke machinery's whole point is that failures never hang.
func runWithWatchdog(t *testing.T, budget time.Duration, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(budget):
		t.Fatal("world did not terminate: revoke failed to unblock a rank")
		return nil
	}
}

// TestRunRankFailureUnblocksBlockedPeers: one rank fails while its peers sit
// in receives that will never be satisfied; the revoke must fail those
// receives promptly instead of deadlocking the world.
func TestRunRankFailureUnblocksBlockedPeers(t *testing.T) {
	var mu sync.Mutex
	var peerErrs []error
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(3, func(c *Comm) error {
			if c.Rank() == 2 {
				return errDeliberate
			}
			// No rank ever sends: without the revoke this blocks forever.
			_, rerr := c.Recv(AnySource, 0, nil)
			mu.Lock()
			peerErrs = append(peerErrs, rerr)
			mu.Unlock()
			return rerr
		})
	})
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("Run err = %v, want ErrWorldAborted identity", err)
	}
	if !errors.Is(err, errDeliberate) {
		t.Fatalf("Run err = %v, want it to wrap the originating failure", err)
	}
	if !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("Run err = %v, want the failing rank named", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(peerErrs) != 2 {
		t.Fatalf("got %d unblocked peers, want 2", len(peerErrs))
	}
	for _, pe := range peerErrs {
		if !errors.Is(pe, ErrWorldAborted) || !errors.Is(pe, errDeliberate) {
			t.Fatalf("peer Recv err = %v, want ErrWorldAborted wrapping the cause", pe)
		}
	}
}

// TestRunPanicUnblocksPeers: a panic is a failure like any other — converted
// to a rank-attributed error and propagated through the revoke.
func TestRunPanicUnblocksPeers(t *testing.T) {
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(2, func(c *Comm) error {
			if c.Rank() == 1 {
				panic("kaboom-revoke")
			}
			_, rerr := c.Recv(1, 0, nil)
			return rerr
		})
	})
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("err = %v, want ErrWorldAborted identity", err)
	}
	if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "kaboom-revoke") {
		t.Fatalf("err = %v, want the panicking rank and message named", err)
	}
}

// TestAbortUnblocksCollectives: survivors stuck inside a collective (here a
// dissemination barrier waiting on the dead rank's round message) observe
// the revoke too — collectives are built on the same poisoned mailboxes.
func TestAbortUnblocksCollectives(t *testing.T) {
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(3, func(c *Comm) error {
			if c.Rank() == 1 {
				return errDeliberate
			}
			return c.Barrier()
		})
	})
	if !errors.Is(err, ErrWorldAborted) || !errors.Is(err, errDeliberate) {
		t.Fatalf("err = %v, want ErrWorldAborted wrapping the cause", err)
	}
}

// TestAbortParityAcrossTransports: the revoke contract — ErrWorldAborted
// identity, originating error in the chain, failing rank named — holds
// verbatim on the typed local transport, the forced-serialization path, and
// the TCP transport.
func TestAbortParityAcrossTransports(t *testing.T) {
	main := func(c *Comm) error {
		if c.Rank() == 1 {
			return errDeliberate
		}
		_, rerr := c.Recv(1, 0, nil)
		return rerr
	}
	cases := []struct {
		name    string
		run     func() error
		wrapped bool // errors.Is can reach the sentinel through the chain
	}{
		{"local-fast", func() error { return Run(3, main) }, true},
		{"local-serialized", func() error { return Run(3, main, WithSerialization()) }, true},
		{"tcp", func() error { return RunTCP(3, main) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runWithWatchdog(t, 15*time.Second, tc.run)
			if !errors.Is(err, ErrWorldAborted) {
				t.Fatalf("err = %v, want ErrWorldAborted identity", err)
			}
			if tc.wrapped && !errors.Is(err, errDeliberate) {
				t.Fatalf("err = %v, want the originating error in the chain", err)
			}
			if !strings.Contains(err.Error(), "rank 1") {
				t.Fatalf("err = %v, want the failing rank named", err)
			}
		})
	}
}

// TestSendAfterAbortFails: once the world is revoked, sends fail fast with
// the abort error instead of queueing frames nobody will read.
func TestSendAfterAbortFails(t *testing.T) {
	var sendErr error
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(2, func(c *Comm) error {
			if c.Rank() == 1 {
				return errDeliberate
			}
			_, rerr := c.Recv(1, 0, nil) // observe the revoke
			if rerr == nil {
				return fmt.Errorf("recv unexpectedly succeeded")
			}
			sendErr = c.Send(1, 0, 42)
			return rerr
		})
	})
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("Run err = %v, want ErrWorldAborted", err)
	}
	if !errors.Is(sendErr, ErrWorldAborted) {
		t.Fatalf("Send after revoke = %v, want ErrWorldAborted", sendErr)
	}
}

// TestAbortUnblocksIrecv: a pending nonblocking receive's Wait observes the
// revoke as well.
func TestAbortUnblocksIrecv(t *testing.T) {
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(2, func(c *Comm) error {
			if c.Rank() == 1 {
				return errDeliberate
			}
			var v int
			req := c.Irecv(1, 0, &v)
			_, werr := req.Wait()
			return werr
		})
	})
	if !errors.Is(err, ErrWorldAborted) || !errors.Is(err, errDeliberate) {
		t.Fatalf("err = %v, want ErrWorldAborted wrapping the cause", err)
	}
}

// TestJoinTCPAbortPropagates: with an explicit hub and separate JoinTCP
// calls — the real distributed layout — a failing rank revokes the world
// for its peer, and the hub's Wait reports the originating rank.
func TestJoinTCPAbortPropagates(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			errs[rank] = JoinTCP(hub.Addr(), rank, 2, func(c *Comm) error {
				if c.Rank() == 0 {
					return errDeliberate
				}
				_, rerr := c.Recv(0, 0, nil)
				return rerr
			})
		}(rank)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("workers did not terminate after a rank failure")
	}

	if !errors.Is(errs[0], ErrWorldAborted) || !errors.Is(errs[0], errDeliberate) {
		t.Fatalf("originator err = %v, want ErrWorldAborted wrapping its own failure", errs[0])
	}
	if !errors.Is(errs[1], ErrWorldAborted) || !strings.Contains(errs[1].Error(), "rank 0") {
		t.Fatalf("victim err = %v, want ErrWorldAborted naming rank 0", errs[1])
	}
	hubErr := hub.Wait()
	if !errors.Is(hubErr, ErrWorldAborted) || !strings.Contains(hubErr.Error(), "rank 0") {
		t.Fatalf("hub.Wait = %v, want the revoke naming rank 0", hubErr)
	}
}

// TestLowestOriginatorWinsOverVictims: ranks that fail because of the revoke
// (their error carries the ErrWorldAborted identity) never displace the
// originating failure in Run's report.
func TestLowestOriginatorWinsOverVictims(t *testing.T) {
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(3, func(c *Comm) error {
			if c.Rank() == 2 {
				return errDeliberate
			}
			_, rerr := c.Recv(2, 0, nil) // ranks 0 and 1 become victims
			return rerr
		})
	})
	// Ranks 0 and 1 fail "first" by rank order, but only as victims; the
	// report must still blame rank 2.
	if !strings.Contains(err.Error(), "rank 2") || !errors.Is(err, errDeliberate) {
		t.Fatalf("err = %v, want the originating rank 2 blamed", err)
	}
}

// TestExternalAbortUnblocksWorld: Comm.Abort called from a goroutine
// OUTSIDE the world (the job scheduler's cancel path) fails every blocked
// rank promptly, and Run reports ErrWorldAborted wrapping the supervisor's
// cause — the contract an external cancel button needs.
func TestExternalAbortUnblocksWorld(t *testing.T) {
	cause := errors.New("job canceled by operator")
	captured := make(chan *Comm, 1)
	// The supervisor: waits for any rank to hand over its comm, then aborts
	// the world from outside it — no rank ever returns an error itself.
	go func() {
		c := <-captured
		time.Sleep(10 * time.Millisecond) // let the ranks block in Recv
		c.Abort(cause)
	}()
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(3, func(c *Comm) error {
			if c.Rank() == 0 {
				captured <- c
			}
			// No rank ever sends: only the external abort can end this.
			_, rerr := c.Recv(AnySource, 0, nil)
			return rerr
		})
	})
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("Run err = %v, want ErrWorldAborted identity", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("Run err = %v, want the supervisor's cause preserved", err)
	}
}

// TestAbortNilCause: a nil cause still aborts, with a rank-attributed
// placeholder instead of a nil dereference.
func TestAbortNilCause(t *testing.T) {
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(2, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Abort(nil)
			}
			_, rerr := c.Recv(AnySource, 0, nil)
			return rerr
		})
	})
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("Run err = %v, want ErrWorldAborted identity", err)
	}
}
