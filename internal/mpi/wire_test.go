package mpi

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
)

// Wire-layer tests: the raw codec's round trips, kind-byte framing
// interleaved with a live gob stream, the version-mismatch conversions, and
// the allocation discipline the pooled buffers buy.

func TestRawCodecRoundTrip(t *testing.T) {
	cases := []any{
		[]float64{0, 1.5, -2.25, 1e300, -1e-300},
		[]int{0, 1, -1, 1 << 40, -(1 << 40)},
		[]int64{0, -9e18, 9e18},
		[]int32{0, 1, -1, 1 << 30, -(1 << 30)},
		[]float32{0, 1.5, -2.25, 3e38},
		[]byte{0, 1, 255, 7},
		[]bool{true, false, true, true},
	}
	for _, v := range cases {
		t.Run(fmt.Sprintf("%T", v), func(t *testing.T) {
			kind, ok := rawKindOf(v)
			if !ok {
				t.Fatalf("rawKindOf(%T) = not encodable", v)
			}
			buf := make([]byte, rawSizeOf(v))
			if n := rawEncode(buf, v); n != len(buf) {
				t.Fatalf("rawEncode wrote %d bytes, rawSizeOf said %d", n, len(buf))
			}
			got, err := rawDecode(kind, buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, v) {
				t.Fatalf("round trip: got %v, want %v", got, v)
			}
		})
	}
	if _, ok := rawKindOf([]string{"not", "fixed", "width"}); ok {
		t.Fatal("[]string must not be raw-encodable")
	}
	if _, ok := rawKindOf(42); ok {
		t.Fatal("scalars must not be raw-encodable")
	}
}

// TestRawDecodeIntoReusesBacking: a receive buffer with enough capacity is
// reused in place — the property the zero-alloc receive loop rests on.
func TestRawDecodeIntoReusesBacking(t *testing.T) {
	src := []float64{1, 2, 3}
	buf := make([]byte, rawSizeOf(src))
	rawEncode(buf, src)

	dst := make([]float64, 0, 8)
	backing := &dst[:1][0]
	if !rawDecodeInto(rawFloat64, buf, &dst) {
		t.Fatal("matching decode refused")
	}
	if !reflect.DeepEqual(dst, src) {
		t.Fatalf("decoded %v, want %v", dst, src)
	}
	if &dst[0] != backing {
		t.Fatal("decode with sufficient capacity reallocated the backing array")
	}
	// Mismatched element type must refuse, not guess.
	var wrong []int64
	if rawDecodeInto(rawFloat64, buf, &wrong) {
		t.Fatal("cross-type decode succeeded")
	}
}

// TestWireInterleavedFrames: one connection carries gob frames and raw
// frames back to back; the reader demultiplexes by kind byte without either
// stream corrupting the other — the property that lets typed payloads share
// a connection with control traffic.
func TestWireInterleavedFrames(t *testing.T) {
	var conn bytes.Buffer
	w := newWireWriter(&conn, wireVersion)
	rd := newWireReader(&conn)
	rd.v1 = true

	floats := []float64{3.14, -2.71, 1e9}
	ints := []int{5, -6, 7}
	rawInts := make([]byte, rawSizeOf(ints))
	rawEncode(rawInts, ints)

	frames := []frame{
		{Ctx: 1, Src: 0, Dst: 1, Tag: 3, Val: "control", HasVal: true},     // gob: not whitelisted
		{Ctx: 1, Src: 0, Dst: 1, Tag: 4, Val: floats, HasVal: true},        // raw: typed send
		{Ctx: 1, Src: 2, Dst: 1, Tag: 5, Data: rawInts, Raw: rawInt},       // raw: forwarded payload
		{Ctx: 1, Src: 0, Dst: 1, Tag: 6, Val: []string{"s"}, HasVal: true}, // gob: typed but not raw-encodable
	}
	for _, f := range frames {
		if err := w.writeFrame(f); err != nil {
			t.Fatal(err)
		}
	}

	var s string
	f0, _, err := rd.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := f0.decodeInto(&s); err != nil || s != "control" {
		t.Fatalf("frame 0: %q, %v", s, err)
	}

	f1, _, err := rd.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f1.Raw != rawFloat64 || f1.Tag != 4 || f1.Src != 0 {
		t.Fatalf("frame 1 header: %+v", f1)
	}
	var gotF []float64
	if err := f1.decodeInto(&gotF); err != nil || !reflect.DeepEqual(gotF, floats) {
		t.Fatalf("frame 1: %v, %v", gotF, err)
	}

	f2, _, err := rd.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f2.Raw != rawInt || f2.Src != 2 || f2.Tag != 5 {
		t.Fatalf("frame 2 header: %+v", f2)
	}
	var gotI []int
	if err := f2.decodeInto(&gotI); err != nil || !reflect.DeepEqual(gotI, ints) {
		t.Fatalf("frame 2: %v, %v", gotI, err)
	}

	f3, _, err := rd.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	var gotS []string
	if err := f3.decodeInto(&gotS); err != nil || !reflect.DeepEqual(gotS, []string{"s"}) {
		t.Fatalf("frame 3: %v, %v", gotS, err)
	}
}

// TestWireMismatchFallsBackToGob: receiving a raw []float64 into *[]float32
// must behave exactly like the serialized path — a gob round trip with gob's
// numeric conversion rules — rather than erroring or bit-casting.
func TestWireMismatchFallsBackToGob(t *testing.T) {
	var conn bytes.Buffer
	w := newWireWriter(&conn, wireVersion)
	rd := newWireReader(&conn)
	rd.v1 = true

	sent := []float64{1, 2.5, -3} // exactly representable in float32
	if err := w.writeFrame(frame{Ctx: 1, Tag: 1, Val: sent, HasVal: true}); err != nil {
		t.Fatal(err)
	}
	f, _, err := rd.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	var got []float32
	if err := f.decodeInto(&got); err != nil {
		t.Fatal(err)
	}
	if want := []float32{1, 2.5, -3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestWireLegacyWriterConverts: a raw payload forwarded toward a v0 peer is
// re-encoded as plain gob — the hub's version-mismatch path — and an
// unframed reader consumes it.
func TestWireLegacyWriterConverts(t *testing.T) {
	var conn bytes.Buffer
	w := newWireWriter(&conn, 0) // legacy peer: no kind bytes on this stream
	rd := newWireReader(&conn)       // rd.v1 stays false

	ints := []int{9, 8, -7}
	raw := make([]byte, rawSizeOf(ints))
	rawEncode(raw, ints)
	if err := w.writeFrame(frame{Ctx: 2, Src: 1, Dst: 0, Tag: 9, Data: raw, Raw: rawInt}); err != nil {
		t.Fatal(err)
	}
	f, _, err := rd.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Raw != rawNone {
		t.Fatalf("legacy stream carried a raw frame: %+v", f)
	}
	var got []int
	if err := f.decodeInto(&got); err != nil || !reflect.DeepEqual(got, ints) {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestWireRawSendZeroAlloc pins the acceptance bar for the typed TCP path:
// once the buffer freelist is warm, a steady-state send+receive of a
// whitelisted slice allocates zero amortized heap bytes per message. The
// loopback is a real OS pipe, so the measured path is the production one:
// bufio flush, kind demultiplex, pooled payload buffer, in-place decode.
func TestWireRawSendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed by race-detector instrumentation")
	}
	// Earlier tests leave arbitrary-sized buffers in the freelist; steady
	// state for THIS message size starts from an empty pool plus warm-up.
	for {
		select {
		case <-wireBufs:
			continue
		default:
		}
		break
	}
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	defer pw.Close()

	w := newWireWriter(pw, wireVersion)
	rd := newWireReader(pr)
	rd.v1 = true

	const elems = 4096 // 32 KiB payload: fits the pipe buffer, so one
	// goroutine can drive both ends without deadlock.
	payload := make([]float64, elems)
	for i := range payload {
		payload[i] = float64(i)
	}
	// The frame is built once: the loop under measurement is send/recv of a
	// long-lived message shape, the steady state of a halo exchange.
	f := frame{Ctx: 1, Src: 0, WSrc: 0, Dst: 1, Tag: 5, Val: payload, HasVal: true}
	dst := make([]float64, elems)

	var loopErr error
	roundTrip := func() {
		if err := w.writeFrame(f); err != nil {
			loopErr = err
			return
		}
		g, _, err := rd.readFrame()
		if err != nil {
			loopErr = err
			return
		}
		if !rawDecodeInto(g.Raw, g.Data, &dst) {
			loopErr = fmt.Errorf("frame arrived non-raw: %+v", g)
			return
		}
		putWireBuf(g.Data)
	}
	for i := 0; i < 4 && loopErr == nil; i++ {
		roundTrip() // warm the freelist
	}
	if loopErr != nil {
		t.Fatal(loopErr)
	}
	if dst[elems-1] != float64(elems-1) {
		t.Fatalf("decode corrupted payload: %v", dst[elems-1])
	}

	if allocs := testing.AllocsPerRun(50, roundTrip); allocs != 0 {
		t.Fatalf("steady-state raw round trip allocates %v objects per message, want 0", allocs)
	}
	if loopErr != nil {
		t.Fatal(loopErr)
	}
}

// TestMixedVersionWorld: one v1 rank and one legacy (v0) rank share a hub.
// Typed slices must flow both ways — the hub converting raw frames to gob
// for the legacy destination — and a collective must complete across the
// version boundary.
func TestMixedVersionWorld(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	main := func(c *Comm) error {
		mine := []float64{float64(c.Rank()), 1, 2}
		if err := c.Send(1-c.Rank(), 3, mine); err != nil {
			return err
		}
		var theirs []float64
		if _, err := c.Recv(1-c.Rank(), 3, &theirs); err != nil {
			return err
		}
		if want := []float64{float64(1 - c.Rank()), 1, 2}; !reflect.DeepEqual(theirs, want) {
			return fmt.Errorf("rank %d received %v, want %v", c.Rank(), theirs, want)
		}
		got, err := AllreduceSlice(c, []float64{1, 2, 3}, func(a, b float64) float64 { return a + b })
		if err != nil {
			return err
		}
		if want := []float64{2, 4, 6}; !reflect.DeepEqual(got, want) {
			return fmt.Errorf("rank %d reduced %v, want %v", c.Rank(), got, want)
		}
		return nil
	}

	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = JoinTCP(hub.Addr(), 0, 2, main) // speaks v1
	}()
	go func() {
		defer wg.Done()
		errs[1] = JoinTCP(hub.Addr(), 1, 2, main, withWireLegacy()) // speaks v0
	}()
	wg.Wait()
	if err := hub.Wait(); err != nil {
		t.Fatalf("hub: %v", err)
	}
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// TestWithTCPNoDelay: the knob must be accepted in both positions and leave
// message semantics untouched; a disabled-Nagle world still delivers typed
// payloads intact.
func TestWithTCPNoDelay(t *testing.T) {
	for _, enabled := range []bool{true, false} {
		t.Run(fmt.Sprintf("%v", enabled), func(t *testing.T) {
			err := RunTCP(2, func(c *Comm) error {
				if c.Rank() == 0 {
					return c.Send(1, 1, []int32{1, 2, 3})
				}
				var got []int32
				if _, err := c.Recv(0, 1, &got); err != nil {
					return err
				}
				if !reflect.DeepEqual(got, []int32{1, 2, 3}) {
					return fmt.Errorf("got %v", got)
				}
				return nil
			}, WithTCPNoDelay(enabled))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
