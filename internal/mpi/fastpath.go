package mpi

import (
	"encoding"
	"encoding/gob"
	"reflect"
	"sync"
)

// The zero-serialization fast path. When every rank lives in one process
// (the local transport), a message does not need a wire format at all: the
// runtime can hand the receiver a private copy of the Go value directly.
// This file decides which values qualify and performs the copy-on-send /
// assign-on-receive halves of that contract.
//
// Semantics are pinned to the serialized path: the receiver observes a value
// it exclusively owns (mutating it never affects the sender and vice versa),
// and a type mismatch between sender and receiver behaves exactly as it
// would have under gob — including gob's cross-numeric-type flexibility and
// its error text — because mismatches fall back to a gob round trip.

// typedPayload returns a self-contained copy of v for in-memory delivery
// and reports whether v is on the fast-path whitelist. Scalars and strings
// are copied by the interface boxing itself; slices of scalars are copied
// explicitly (copy-on-send, so the sender may mutate its buffer immediately
// after Send, as with a buffered MPI send); structs qualify when a shallow
// copy is provably a full copy (only exported scalar/string/array-of-scalar
// fields, no custom gob encoding).
func typedPayload(v any) (any, bool) {
	switch x := v.(type) {
	case bool, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, complex64, complex128, string:
		return x, true
	case []float64:
		return append([]float64(nil), x...), true
	case []int:
		return append([]int(nil), x...), true
	case []byte:
		return append([]byte(nil), x...), true
	case []int64:
		return append([]int64(nil), x...), true
	case []int32:
		return append([]int32(nil), x...), true
	case []float32:
		return append([]float32(nil), x...), true
	case []bool:
		return append([]bool(nil), x...), true
	case []string:
		return append([]string(nil), x...), true
	case nil:
		// Let the gob path report its usual nil-payload error.
		return nil, false
	}
	if shallowCopyable(reflect.TypeOf(v)) {
		// Boxing a struct into an interface already copied it by value, so
		// v is a private copy the receiver can own outright.
		return v, true
	}
	return nil, false
}

// shallowCache memoizes the per-type whitelist decision (reflect.Type -> bool).
var shallowCache sync.Map

var (
	gobEncoderType      = reflect.TypeOf((*gob.GobEncoder)(nil)).Elem()
	binaryMarshalerType = reflect.TypeOf((*encoding.BinaryMarshaler)(nil)).Elem()
)

// shallowCopyable reports whether assigning a value of type t copies all of
// its state, so the copy can cross a rank boundary without serialization
// while preserving gob-path semantics. Unexported fields disqualify a struct
// (gob would silently drop them; a shallow copy would smuggle them through),
// as do custom gob/binary encoders (their wire behavior is not assignment).
func shallowCopyable(t reflect.Type) bool {
	if c, ok := shallowCache.Load(t); ok {
		return c.(bool)
	}
	ok := shallowCopyableUncached(t)
	shallowCache.Store(t, ok)
	return ok
}

func shallowCopyableUncached(t reflect.Type) bool {
	if t.Implements(gobEncoderType) || t.Implements(binaryMarshalerType) {
		return false
	}
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128,
		reflect.String:
		return true
	case reflect.Array:
		return shallowCopyable(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() || !shallowCopyable(f.Type) {
				return false
			}
		}
		return true
	}
	return false
}

// assignTyped stores a fast-path payload into the receive pointer dst when
// the types match exactly, reporting whether it did. The common patternlet
// payload shapes avoid reflection entirely. A false return means the caller
// must fall back to the gob round trip (which handles gob's legal
// cross-type decodes and produces gob's errors for the illegal ones).
func assignTyped(val any, dst any) bool {
	switch p := dst.(type) {
	case *int:
		if v, ok := val.(int); ok {
			*p = v
			return true
		}
	case *int64:
		if v, ok := val.(int64); ok {
			*p = v
			return true
		}
	case *float64:
		if v, ok := val.(float64); ok {
			*p = v
			return true
		}
	case *bool:
		if v, ok := val.(bool); ok {
			*p = v
			return true
		}
	case *string:
		if v, ok := val.(string); ok {
			*p = v
			return true
		}
	case *[]float64:
		if v, ok := val.([]float64); ok {
			*p = v
			return true
		}
	case *[]int:
		if v, ok := val.([]int); ok {
			*p = v
			return true
		}
	case *[]byte:
		if v, ok := val.([]byte); ok {
			*p = v
			return true
		}
	}
	rd := reflect.ValueOf(dst)
	if rd.Kind() != reflect.Pointer || rd.IsNil() {
		return false
	}
	rv := reflect.ValueOf(val)
	if !rv.IsValid() || rv.Type() != rd.Type().Elem() {
		return false
	}
	rd.Elem().Set(rv)
	return true
}

// typedSize reports the in-memory payload size of a fast-path value: what
// Status.Bytes and the MessageCounter record for messages that never had a
// wire encoding. Slices count their element storage, strings their length,
// everything else its shallow reflect size.
func typedSize(v any) int {
	switch x := v.(type) {
	case string:
		return len(x)
	case []byte:
		return len(x)
	case []bool:
		return len(x)
	case []float64:
		return 8 * len(x)
	case []int:
		return 8 * len(x)
	case []int64:
		return 8 * len(x)
	case []int32:
		return 4 * len(x)
	case []float32:
		return 4 * len(x)
	case []string:
		n := 0
		for _, s := range x {
			n += len(s)
		}
		return n
	case bool:
		return 1
	}
	if t := reflect.TypeOf(v); t != nil {
		return int(t.Size())
	}
	return 0
}

// decodeInto materializes the frame's payload into the pointer v, whichever
// representation the frame carries. Fast-path frames whose stored type does
// not exactly match *v are round-tripped through gob so the observable
// behavior (numeric widening, error text) is identical to the serialized
// path.
func (f frame) decodeInto(v any) error {
	if f.Raw != rawNone {
		if rawDecodeInto(f.Raw, f.Data, v) {
			f.releaseData()
			return nil
		}
		// The receiver asked for a different type: materialize the sent
		// value and round-trip it through gob, so numeric widening and error
		// text are identical to the serialized path.
		val, err := rawDecode(f.Raw, f.Data)
		f.releaseData()
		if err != nil {
			return err
		}
		data, err := encodeValue(val)
		if err != nil {
			return err
		}
		return decodeValue(data, v)
	}
	if !f.HasVal {
		return decodeValue(f.Data, v)
	}
	if assignTyped(f.Val, v) {
		return nil
	}
	data, err := encodeValue(f.Val)
	if err != nil {
		return err
	}
	return decodeValue(data, v)
}

// payloadSize reports the frame's payload size: wire bytes for serialized
// and raw frames, in-memory size for fast-path frames.
func (f frame) payloadSize() int {
	if f.HasVal {
		return typedSize(f.Val)
	}
	return len(f.Data)
}

// status summarizes the frame for Probe/Recv results.
func (f frame) status() Status {
	return Status{Source: f.Src, Tag: f.Tag, Bytes: f.payloadSize()}
}
