package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// Nonblocking-collective tests: the progress engine must produce exactly the
// blocking collectives' results (on every transport, flat and hierarchical),
// compose with Wait/Test/Waitall, keep post order across multiple
// outstanding operations, and inherit the failure model — abort, deadline,
// fault injection — through Wait.

// nonblockingBody posts one of each nonblocking collective, overlaps a
// blocking collective on the parent communicator while they are in flight,
// and returns the per-rank observations.
func nonblockingBody(c *Comm) (any, error) {
	np := c.Size()
	root := np - 1
	type result struct {
		Bcast      int
		Reduce     int
		Allreduce  int
		AllreduceS []int
		Overlapped int
	}
	var res result
	sum := func(a, b int) int { return a + b }

	bv := 100 + c.Rank()
	v := make([]int, 2000)
	for i := range v {
		v[i] = c.Rank()*17 + i
	}
	reqs := []*Request{
		c.IBarrier(),
		IBcast(c, &bv, root),
		IReduce(c, c.Rank()+1, sum, root, &res.Reduce),
		IAllreduce(c, 3*c.Rank(), sum, &res.Allreduce),
		IAllreduceSlice(c, v, sum, &res.AllreduceS),
	}

	// The shadow context isolates the engine's traffic: a blocking
	// collective on the parent communicator may proceed while the posted
	// schedules are still in flight.
	ov, err := Allreduce(c, c.Rank()+1000, sum)
	if err != nil {
		return nil, err
	}
	res.Overlapped = ov

	if _, err := Waitall(reqs); err != nil {
		return nil, err
	}
	res.Bcast = bv
	if c.Rank() != root {
		res.Reduce = -1 // IReduce must leave out untouched off-root
	}
	return res, nil
}

// TestNonblockingCollectiveParity checks every rank's observations against
// the directly computed expectation, across world sizes, transports, and
// flat vs hierarchical topologies.
func TestNonblockingCollectiveParity(t *testing.T) {
	launchers := []parityMode{
		{name: "local", run: Run},
		{name: "local-serialized", run: Run, opts: []Option{WithSerialization()}},
		{name: "tcp", run: RunTCP},
	}
	if shmSupported {
		launchers = append(launchers, parityMode{name: "shm", run: RunShm})
	}
	for _, np := range []int{1, 2, 3, 4, 8} {
		topos := append([][]int{nil}, hierTopologies(np)...)
		for _, topo := range topos {
			var want []any
			var wantDesc string
			for _, l := range launchers {
				desc := fmt.Sprintf("np=%d topo=%v %s", np, topo, l.name)
				results := make([]any, np)
				var mu sync.Mutex
				opts := l.opts
				if topo != nil {
					opts = append([]Option{WithTopology(topo), WithHierarchy(HierOn)}, l.opts...)
				}
				err := l.run(np, func(c *Comm) error {
					v, err := nonblockingBody(c)
					if err != nil {
						return err
					}
					mu.Lock()
					results[c.Rank()] = v
					mu.Unlock()
					return nil
				}, opts...)
				if err != nil {
					t.Fatalf("%s: %v", desc, err)
				}
				if want == nil {
					want, wantDesc = results, desc
					continue
				}
				if !reflect.DeepEqual(results, want) {
					t.Fatalf("%s results differ from %s:\n got %v\nwant %v",
						desc, wantDesc, results, want)
				}
			}
		}
	}
}

// TestNonblockingPostOrder: many outstanding allreduces complete in post
// order with each round's own inputs — the k-th posted collective on every
// rank is the same operation.
func TestNonblockingPostOrder(t *testing.T) {
	const np, rounds = 4, 16
	err := Run(np, func(c *Comm) error {
		sum := func(a, b int) int { return a + b }
		outs := make([]int, rounds)
		reqs := make([]*Request, rounds)
		for k := 0; k < rounds; k++ {
			reqs[k] = IAllreduce(c, (k+1)*(c.Rank()+1), sum, &outs[k])
		}
		if _, err := Waitall(reqs); err != nil {
			return err
		}
		for k, got := range outs {
			want := (k + 1) * np * (np + 1) / 2
			if got != want {
				return fmt.Errorf("round %d: got %d, want %d", k, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNonblockingTestPolling: Test on an in-flight IBarrier reports not-done
// while a peer is absent, then done (with the barrier's result) after every
// rank posts.
func TestNonblockingTestPolling(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			if _, err := c.Recv(0, 5, nil); err != nil { // wait for the go-ahead
				return err
			}
			_, err := c.IBarrier().Wait()
			return err
		}
		req := c.IBarrier()
		time.Sleep(10 * time.Millisecond)
		if _, done, _ := req.Test(); done {
			return errors.New("IBarrier done before the peer posted")
		}
		if err := c.Send(1, 5, 0); err != nil {
			return err
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, done, err := req.Test()
			if done {
				return err
			}
			if time.Now().After(deadline) {
				return errors.New("IBarrier never completed")
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNonblockingAbortCompletesWait: a rank failure mid-IBarrier revokes the
// world, and the survivors' Wait returns the abort instead of hanging.
func TestNonblockingAbortCompletesWait(t *testing.T) {
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(3, func(c *Comm) error {
			if c.Rank() == 2 {
				return errDeliberate
			}
			_, err := c.IBarrier().Wait()
			return err
		})
	})
	if !errors.Is(err, ErrWorldAborted) || !errors.Is(err, errDeliberate) {
		t.Fatalf("err = %v, want ErrWorldAborted wrapping the cause", err)
	}
}

// TestNonblockingDeadline: a deserting rank trips WithDeadline inside an
// in-flight IAllreduceSlice, and the expiry comes back from Wait.
func TestNonblockingDeadline(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 3 {
			return nil // never posts
		}
		var out []int
		req := IAllreduceSlice(c, make([]int, 4096), func(a, b int) int { return a + b }, &out)
		_, err := req.Wait()
		return err
	}, WithTopology([]int{0, 0, 1, 1}), WithHierarchy(HierOn), WithDeadline(200*time.Millisecond))
	if err == nil {
		t.Fatal("deserter run succeeded")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("error %v does not match ErrDeadlineExceeded", err)
	}
}

// TestNonblockingKillRank: an injected rank death during nonblocking
// collectives surfaces through Wait as the revoke, wrapping ErrRankKilled.
func TestNonblockingKillRank(t *testing.T) {
	plan := FaultPlan{
		Rules: []FaultRule{{Src: 1, Dst: AnySource, Tag: AnyTag, SkipFirst: 2, Action: FaultKillRank}},
	}
	err := Run(4, func(c *Comm) error {
		sum := func(a, b int) int { return a + b }
		for i := 0; ; i++ {
			var out int
			if _, err := IAllreduce(c, i, sum, &out).Wait(); err != nil {
				return err
			}
		}
	}, WithTopology([]int{0, 0, 1, 1}), WithHierarchy(HierOn), WithFaults(plan))
	if err == nil {
		t.Fatal("kill-rank run succeeded")
	}
	if !errors.Is(err, ErrRankKilled) {
		t.Fatalf("error %v does not wrap ErrRankKilled", err)
	}
}

// TestNonblockingOnSplitComm: the progress engine works on derived
// communicators — each Split half runs its own nonblocking allreduce.
func TestNonblockingOnSplitComm(t *testing.T) {
	const np = 4
	err := Run(np, func(c *Comm) error {
		half, err := c.Split(c.Rank()/2, c.Rank())
		if err != nil {
			return err
		}
		var out int
		if _, err := IAllreduce(half, c.Rank(), func(a, b int) int { return a + b }, &out).Wait(); err != nil {
			return err
		}
		want := 1 // ranks {0,1}
		if c.Rank() >= 2 {
			want = 5 // ranks {2,3}
		}
		if out != want {
			return fmt.Errorf("rank %d: out = %d, want %d", c.Rank(), out, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
