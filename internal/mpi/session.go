package mpi

import (
	"errors"
	"fmt"
	"time"
)

// Resilient TCP sessions. A wire-v2 connection is a *session*: every frame a
// side sends carries a monotonically increasing sequence number, the receiver
// periodically acknowledges the highest sequence it has accepted, and the
// sender keeps the encoded bytes of every unacknowledged frame in a bounded
// replay buffer. When the connection underneath breaks — a NAT timeout, a
// flaky home network, an injected FaultDisconnect — the worker redials the
// hub within the suspicion grace window (HubSuspicion) and both sides resume
// from the peer's acknowledged sequence, retransmitting the tail. A transient
// disconnect is therefore invisible to the program; only grace-window expiry
// (or a replay gap, see below) promotes a suspected rank to failed.
//
// The replay buffer is bounded two ways. Frames larger than replayFrameMax
// are streamed to the wire without being captured (capturing a 1 MiB payload
// would put a memcpy on the large-message fast path); their sequence numbers
// become *gaps*. And the total captured bytes are capped at replayMaxBytes,
// evicting oldest-first into gaps when exceeded. A resume is only possible if
// the peer has acknowledged past the newest gap — otherwise the session is
// honestly unrecoverable and the rank fails with ErrSessionLost. Receivers
// ack every ackEvery frames, which keeps the buffer shallow in practice.

const (
	// replayFrameMax is the largest frame captured for replay on the live
	// path. Larger raw frames stream straight from the caller's buffer
	// (keeping the zero-copy large-message path) and become replay gaps.
	replayFrameMax = 64 << 10

	// replayMaxBytes bounds the total captured-but-unacknowledged bytes per
	// connection direction; beyond it the oldest frames are evicted to gaps.
	replayMaxBytes = 8 << 20

	// ackEvery is the receiver's ack cadence, in accepted frames.
	ackEvery = 32

	// resumeDrainWindow bounds how long a resume waits for the old
	// connection's reader to drain frames the kernel already accepted —
	// streamed large frames live nowhere else, so closing the socket
	// before the drain would lose them for good. It must stay well under
	// the worker's resume-reply deadline (resumeReplyTimeout).
	resumeDrainWindow = time.Second

	// resumeReplyTimeout is how long a redialing worker waits for the
	// hub's 9-byte resume verdict before closing the attempt and retrying
	// within the grace window. It covers the hub's resumeDrainWindow with
	// slack: the hub may drain the old connection before replying.
	resumeReplyTimeout = 2 * time.Second
)

// ErrSessionLost reports that a broken hub connection could not be resumed:
// the grace window expired, the hub refused the resume, or the replay buffer
// had a gap before the peer's acknowledged sequence.
var ErrSessionLost = errors.New("mpi: hub session lost (resume failed)")

// CorruptFrameError reports a frame whose payload failed its CRC32C check: a
// bit flipped in flight (or an injected FaultCorrupt). On a resumable session
// the error is internal — the connection is torn down and the clean copy is
// retransmitted from the sender's replay buffer — and it surfaces to the
// program only when the session cannot be resumed.
type CorruptFrameError struct {
	Seq      uint64
	Src, Dst int
	Tag      int
	Want     uint32 // CRC carried by the frame
	Got      uint32 // CRC computed over the received bytes
}

func (e *CorruptFrameError) Error() string {
	return fmt.Sprintf("mpi: corrupt frame on the wire (seq %d, %d->%d tag %d): crc32c %08x, want %08x",
		e.Seq, e.Src, e.Dst, e.Tag, e.Got, e.Want)
}

// replayEntry is one captured frame: its sequence number and its complete
// encoded wire bytes (kind byte, sequence, header, CRC, payload), held in a
// pooled buffer owned by the session until the peer acks past seq.
type replayEntry struct {
	seq uint64
	buf []byte
}

// sendSession is the sending half of a session: sequence assignment plus the
// replay buffer. The owner (hubConn or tcpTransport) serializes access.
type sendSession struct {
	seqOut      uint64 // last sequence assigned
	gapSeq      uint64 // newest sequence NOT in the replay buffer (0 = none)
	replay      []replayEntry
	replayBytes int
}

func (s *sendSession) nextSeq() uint64 {
	s.seqOut++
	return s.seqOut
}

// record takes ownership of a captured frame's buffer, evicting oldest
// frames into gaps if the budget is exceeded.
func (s *sendSession) record(seq uint64, buf []byte) {
	s.replay = append(s.replay, replayEntry{seq: seq, buf: buf})
	s.replayBytes += len(buf)
	i := 0
	for ; s.replayBytes > replayMaxBytes && i < len(s.replay); i++ {
		e := s.replay[i]
		s.replayBytes -= len(e.buf)
		putWireBuf(e.buf)
		if e.seq > s.gapSeq {
			s.gapSeq = e.seq
		}
	}
	if i > 0 {
		n := copy(s.replay, s.replay[i:])
		s.replay = s.replay[:n]
	}
}

// gap marks a sequence as sent-but-not-captured (a streamed large frame).
func (s *sendSession) gap(seq uint64) {
	if seq > s.gapSeq {
		s.gapSeq = seq
	}
}

// trim releases every captured frame the peer has acknowledged.
func (s *sendSession) trim(ack uint64) {
	i := 0
	for ; i < len(s.replay) && s.replay[i].seq <= ack; i++ {
		s.replayBytes -= len(s.replay[i].buf)
		putWireBuf(s.replay[i].buf)
	}
	if i > 0 {
		n := copy(s.replay, s.replay[i:])
		s.replay = s.replay[:n]
	}
}

// pending trims through the peer's acknowledged sequence and returns the
// frames to retransmit, oldest first. It reports false when a gap makes the
// resume impossible (the peer is missing a frame that was never captured).
func (s *sendSession) pending(peerAck uint64) ([]replayEntry, bool) {
	if peerAck < s.gapSeq {
		return nil, false
	}
	s.trim(peerAck)
	return s.replay, true
}

// drop releases the whole replay buffer; the session is over.
func (s *sendSession) drop() {
	for _, e := range s.replay {
		putWireBuf(e.buf)
	}
	s.replay, s.replayBytes = nil, 0
}

// recvSession is the receiving half: duplicate suppression (retransmitted
// tails overlap what already arrived) and the ack cadence.
type recvSession struct {
	seqIn    uint64 // highest sequence accepted
	sinceAck int
}

// note folds one received sequence in. dup means the frame was already
// delivered before the resume and must be discarded; ackNow means the
// receiver should send a cumulative ack.
func (rs *recvSession) note(seq uint64) (dup, ackNow bool) {
	if seq <= rs.seqIn {
		return true, false
	}
	rs.seqIn = seq
	rs.sinceAck++
	if rs.sinceAck >= ackEvery {
		rs.sinceAck = 0
		return false, true
	}
	return false, false
}
