//go:build !(amd64 || arm64 || riscv64 || loong64)

package mpi

// rawViewNative: no in-place reinterpretation of wire bytes either; the
// vector collectives' segment receives fall back to decoding.
const rawViewNative = false

// rawBytesView on platforms whose memory layout is not the wire layout
// (32-bit int, big-endian): no zero-copy view exists, so encode and decode
// take the portable per-element loops in rawcodec.go.
func rawBytesView(v any) ([]byte, bool) {
	return nil, false
}
