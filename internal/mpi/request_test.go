package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestIsendIrecvPair(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 3, "hello")
			st, err := req.Wait()
			if err != nil {
				return err
			}
			if st.Tag != 3 {
				return fmt.Errorf("isend status = %v", st)
			}
			return nil
		}
		var msg string
		req := c.Irecv(0, 3, &msg)
		st, err := req.Wait()
		if err != nil {
			return err
		}
		if st.Source != 0 || msg != "hello" {
			return fmt.Errorf("irecv got %q from %v", msg, st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvTestPolling(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Barrier(); err != nil { // let rank 1 post the Irecv first
				return err
			}
			return c.Send(1, 0, 123)
		}
		var v int
		req := c.Irecv(0, 0, &v)
		if _, done, _ := req.Test(); done {
			return errors.New("Test reported done before any send")
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			st, done, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				if v != 123 || st.Source != 0 {
					return fmt.Errorf("v=%d st=%v", v, st)
				}
				return nil
			}
			if time.Now().After(deadline) {
				return errors.New("Irecv never completed")
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitallCollectsAllStatuses(t *testing.T) {
	const np = 5
	err := Run(np, func(c *Comm) error {
		if c.Rank() == 0 {
			vals := make([]int, np-1)
			reqs := make([]*Request, np-1)
			for i := 1; i < np; i++ {
				reqs[i-1] = c.Irecv(i, 1, &vals[i-1])
			}
			sts, err := Waitall(reqs)
			if err != nil {
				return err
			}
			for i, st := range sts {
				if st.Source != i+1 {
					return fmt.Errorf("status %d came from %d", i, st.Source)
				}
				if vals[i] != (i+1)*10 {
					return fmt.Errorf("vals[%d] = %d", i, vals[i])
				}
			}
			return nil
		}
		return c.Send(0, 1, c.Rank()*10)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendCarriesEncodingError(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		// Channels cannot be gob-encoded, so the Isend must surface an error
		// at Wait, like a failed MPI_Isend surfacing in MPI_Wait.
		req := c.Isend(0, 0, make(chan int))
		if _, err := req.Wait(); err == nil {
			return errors.New("Isend of unencodable value reported success")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvAnySource(t *testing.T) {
	const np = 4
	err := Run(np, func(c *Comm) error {
		if c.Rank() == 0 {
			vals := make([]int, np-1)
			reqs := make([]*Request, np-1)
			for i := range reqs {
				reqs[i] = c.Irecv(AnySource, 0, &vals[i])
			}
			if _, err := Waitall(reqs); err != nil {
				return err
			}
			sum := 0
			for _, v := range vals {
				sum += v
			}
			if sum != 1+2+3 {
				return fmt.Errorf("sum = %d", sum)
			}
			return nil
		}
		return c.Send(0, 0, c.Rank())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitanyReturnsFirstCompletion(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			var a, b int
			reqs := []*Request{
				c.Irecv(1, 0, &a), // never satisfied until late
				c.Irecv(2, 0, &b), // satisfied immediately
			}
			idx, st, err := Waitany(reqs)
			if err != nil {
				return err
			}
			if idx != 1 || st.Source != 2 || b != 222 {
				return fmt.Errorf("Waitany = idx %d, st %v, b %d", idx, st, b)
			}
			// Release rank 1's message and complete the other request.
			if err := c.Send(1, 1, 0); err != nil {
				return err
			}
			if _, err := reqs[0].Wait(); err != nil {
				return err
			}
			if a != 111 {
				return fmt.Errorf("a = %d", a)
			}
			return nil
		}
		if c.Rank() == 1 {
			// Hold the message back until rank 0 signals.
			if _, err := c.Recv(0, 1, nil); err != nil {
				return err
			}
			return c.Send(0, 0, 111)
		}
		return c.Send(0, 0, 222)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitanyEmpty(t *testing.T) {
	if _, _, err := Waitany(nil); err == nil {
		t.Fatal("empty Waitany accepted")
	}
}

// TestWaitallEmpty: MPI_Waitall over zero requests is a no-op success, for
// both a nil and an empty slice.
func TestWaitallEmpty(t *testing.T) {
	for _, reqs := range [][]*Request{nil, {}} {
		sts, err := Waitall(reqs)
		if err != nil {
			t.Fatalf("Waitall(%v) err = %v", reqs, err)
		}
		if len(sts) != 0 {
			t.Fatalf("Waitall(%v) returned %d statuses", reqs, len(sts))
		}
	}
}

// TestWaitRepeatable: waiting twice on a completed request returns the same
// final status and error both times — Wait is idempotent once done.
func TestWaitRepeatable(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 4, 77)
		}
		var v int
		req := c.Irecv(0, 4, &v)
		st1, err1 := req.Wait()
		st2, err2 := req.Wait()
		if err1 != nil || err2 != nil {
			return fmt.Errorf("Wait errs = %v, %v", err1, err2)
		}
		if st1 != st2 || st1.Source != 0 || v != 77 {
			return fmt.Errorf("repeated Wait disagreed: %v vs %v (v=%d)", st1, st2, v)
		}
		// Test after Wait agrees too.
		st3, done, err3 := req.Test()
		if !done || err3 != nil || st3 != st1 {
			return fmt.Errorf("Test after Wait = %v, %v, %v", st3, done, err3)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRequestTestAfterAbort: a world abort completes a pending Irecv, so a
// subsequent Test reports done with the abort as its final error.
func TestRequestTestAfterAbort(t *testing.T) {
	var testErr error
	var testDone bool
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(2, func(c *Comm) error {
			if c.Rank() == 1 {
				return errDeliberate
			}
			var v int
			req := c.Irecv(1, 0, &v) // never satisfied: the peer fails instead
			_, werr := req.Wait()
			_, testDone, testErr = req.Test()
			return werr
		})
	})
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("run err = %v, want ErrWorldAborted", err)
	}
	if !testDone {
		t.Fatal("Test after abort reported not-done")
	}
	if !errors.Is(testErr, ErrWorldAborted) || !errors.Is(testErr, errDeliberate) {
		t.Fatalf("Test err = %v, want ErrWorldAborted wrapping the cause", testErr)
	}
}
