package mpi

import (
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

var errDeliberate = errors.New("deliberate worker failure")

// TestHubSurvivesWorkerCrash: a worker that drops its connection without
// reporting done must fail the job cleanly rather than hang it.
func TestHubSurvivesWorkerCrash(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	// Worker 0 joins properly but blocks waiting for a message that will
	// never come; the teardown after the crash must unblock it.
	done0 := make(chan error, 1)
	go func() {
		done0 <- JoinTCP(hub.Addr(), 0, 2, func(c *Comm) error {
			_, _ = c.Recv(1, 0, nil) // shutdown is the expected outcome
			return nil
		})
	}()

	// "Worker 1" handshakes and then crashes (closes without done). Waiting
	// for the start frame proves the hub admitted the rank — deterministic,
	// unlike a sleep — so the close below is unambiguously a post-admission
	// crash rather than a failed handshake.
	conn, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(conn).Encode(hello{Rank: 1}); err != nil {
		t.Fatal(err)
	}
	var start frame
	if err := gob.NewDecoder(conn).Decode(&start); err != nil {
		t.Fatalf("reading start frame: %v", err)
	}
	if start.Tag != tagStart {
		t.Fatalf("first frame tag = %d, want start (%d)", start.Tag, tagStart)
	}
	conn.Close()

	if err := hub.Wait(); err == nil {
		t.Fatal("hub.Wait reported success after a worker crash")
	} else if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("hub error %v does not identify the crashed rank", err)
	}
	select {
	case <-done0:
		// Worker 0 was unblocked by the teardown.
	case <-time.After(5 * time.Second):
		t.Fatal("surviving worker still blocked after hub failure")
	}
}

// TestRunTCPWorkerErrorSurfaces: one failing rank's error is what RunTCP
// reports, and the world still terminates.
func TestRunTCPWorkerErrorSurfaces(t *testing.T) {
	err := RunTCP(3, func(c *Comm) error {
		if c.Rank() == 2 {
			return errDeliberate
		}
		return nil
	})
	if !errors.Is(err, errDeliberate) {
		t.Fatalf("err = %v, want the deliberate failure", err)
	}
}

// TestHubInvalidRankHandshake: a worker announcing an out-of-range rank
// fails the job with a clear error.
func TestHubInvalidRankHandshake(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	conn, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(hello{Rank: 99}); err != nil {
		t.Fatal(err)
	}
	if err := hub.Wait(); err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Fatalf("hub.Wait = %v, want invalid-rank failure", err)
	}
}

// TestGarbageHandshake: random bytes instead of a hello must not wedge the
// hub.
func TestGarbageHandshake(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	conn, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// Close so the hub's decoder sees a definite end of stream (a gob
	// length prefix parsed out of garbage may otherwise keep it reading).
	conn.Close()
	if err := hub.Wait(); err == nil {
		t.Fatal("hub accepted a garbage handshake")
	}
}
