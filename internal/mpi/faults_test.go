package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestFaultDropTriggersDeadline: a dropped message leaves its receiver
// stalled, and the deadline machinery converts the stall into a report that
// names the stuck rank and what it was waiting for. Run twice to show the
// seeded plan reproduces the identical failure.
func TestFaultDropTriggersDeadline(t *testing.T) {
	plan := FaultPlan{
		Seed:  7,
		Rules: []FaultRule{{Src: 0, Dst: 1, Tag: 5, Count: 1, Action: FaultDrop}},
	}
	for attempt := 0; attempt < 2; attempt++ {
		err := runWithWatchdog(t, 10*time.Second, func() error {
			return Run(2, func(c *Comm) error {
				if c.Rank() == 0 {
					return c.Send(1, 5, 42)
				}
				_, rerr := c.Recv(0, 5, nil)
				return rerr
			}, WithFaults(plan), WithDeadline(100*time.Millisecond))
		})
		var derr *DeadlineError
		if !errors.As(err, &derr) {
			t.Fatalf("attempt %d: err = %v, want a deadline report", attempt, err)
		}
		if derr.Rank != 1 || derr.Op != "Recv" || derr.Src != 0 || derr.Tag != 5 {
			t.Fatalf("attempt %d: report %+v, want rank 1 stuck in Recv(src 0, tag 5)", attempt, derr)
		}
	}
}

// TestFaultDelayIsTargetedLatency: a delay rule slows exactly the matched
// traffic and nothing else; the program still completes.
func TestFaultDelayIsTargetedLatency(t *testing.T) {
	const delay = 40 * time.Millisecond
	plan := FaultPlan{Rules: []FaultRule{{Src: 0, Dst: 1, Tag: 2, Count: 1, Action: FaultDelay, Delay: delay}}}
	start := time.Now()
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 2, "slow")
		}
		_, rerr := c.Recv(0, 2, nil)
		return rerr
	}, WithFaults(plan))
	if err != nil {
		t.Fatalf("delayed world failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("world finished in %v, want >= %v (delay not applied)", elapsed, delay)
	}
}

// TestFaultDuplicateDeliversTwice: the receiver observes the duplicated
// message twice, and the two deliveries own independent payload copies —
// mutating the first must not corrupt the second.
func TestFaultDuplicateDeliversTwice(t *testing.T) {
	plan := FaultPlan{Rules: []FaultRule{{Src: 0, Dst: 1, Tag: 3, Count: 1, Action: FaultDuplicate}}}
	err := runWithWatchdog(t, 10*time.Second, func() error {
		return Run(2, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 3, []int{1, 2, 3})
			}
			var first, second []int
			if _, err := c.Recv(0, 3, &first); err != nil {
				return err
			}
			first[0] = 99 // must not alias the duplicate's payload
			if _, err := c.Recv(0, 3, &second); err != nil {
				return err
			}
			if second[0] != 1 || second[1] != 2 || second[2] != 3 {
				return fmt.Errorf("duplicate payload corrupted: %v", second)
			}
			return nil
		}, WithFaults(plan), WithDeadline(2*time.Second))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultKillRank: the selected rank dies at its matched send — the send
// and all its later sends fail with ErrRankKilled — and the failure revokes
// the world like any real crash, on both transports.
func TestFaultKillRank(t *testing.T) {
	plan := FaultPlan{
		Rules: []FaultRule{{Src: 1, Dst: AnySource, Tag: AnyTag, SkipFirst: 1, Action: FaultKillRank}},
	}
	main := func(c *Comm) error {
		if c.Rank() == 1 {
			if err := c.Send(0, 4, "first"); err != nil {
				return err
			}
			return c.Send(0, 4, "second") // the kill fires here
		}
		if _, err := c.Recv(1, 4, nil); err != nil {
			return err
		}
		_, rerr := c.Recv(1, 4, nil) // never arrives: revoke must unblock it
		return rerr
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"local", func() error { return Run(2, main, WithFaults(plan)) }},
		{"tcp", func() error { return RunTCP(2, main, WithFaults(plan)) }},
	}
	if shmSupported {
		cases = append(cases, struct {
			name string
			run  func() error
		}{"shm", func() error { return RunShm(2, main, WithFaults(plan)) }})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runWithWatchdog(t, 15*time.Second, tc.run)
			if !errors.Is(err, ErrWorldAborted) {
				t.Fatalf("err = %v, want ErrWorldAborted", err)
			}
			if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "killed") {
				t.Fatalf("err = %v, want the killed rank named", err)
			}
			if tc.name == "local" && !errors.Is(err, ErrRankKilled) {
				t.Fatalf("err = %v, want ErrRankKilled identity", err)
			}
		})
	}
}

// TestFaultPlanDeterminism: the same seeded probabilistic plan against the
// same single-sender schedule acts on the same messages every run.
func TestFaultPlanDeterminism(t *testing.T) {
	plan := FaultPlan{
		Seed:  42,
		Rules: []FaultRule{{Src: 0, Dst: 1, Tag: AnyTag, Prob: 0.5, Action: FaultDrop}},
	}
	const msgs = 16
	outcome := func() []int {
		var got []int
		err := Run(2, func(c *Comm) error {
			if c.Rank() == 0 {
				for i := 0; i < msgs; i++ {
					if err := c.Send(1, i, i); err != nil {
						return err
					}
				}
				return c.Send(1, 100, -1) // sentinel, also subject to the coin
			}
			for {
				var v int
				st, err := c.Recv(0, AnyTag, &v)
				if err != nil {
					return nil // drained: remaining traffic was dropped
				}
				if st.Tag == 100 {
					return nil
				}
				got = append(got, st.Tag)
			}
		}, WithFaults(plan), WithDeadline(150*time.Millisecond))
		// A dropped sentinel legitimately ends the run in a deadline report.
		if err != nil && !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrWorldAborted) {
			t.Fatalf("unexpected error: %v", err)
		}
		return got
	}
	first := outcome()
	second := outcome()
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("seeded plan diverged:\n  run 1: %v\n  run 2: %v", first, second)
	}
}

// TestFaultSoak: randomized seeded plans across both transports. Every run
// must terminate — in success or in a rank-attributed error — never hang;
// the -race build of this test doubles as the data-race check on the whole
// failure path. Each iteration's plan derives from a fixed master seed, so a
// failure message pinpoints a reproducible plan.
func TestFaultSoak(t *testing.T) {
	const np = 3
	master := rand.New(rand.NewSource(2026))
	randomPlan := func() FaultPlan {
		actions := []FaultAction{FaultDrop, FaultDelay, FaultDuplicate, FaultKillRank}
		plan := FaultPlan{Seed: master.Int63()}
		nRules := 1 + master.Intn(3)
		for i := 0; i < nRules; i++ {
			r := FaultRule{
				Src:       master.Intn(np+1) - 1, // -1 = AnySource
				Dst:       master.Intn(np+1) - 1,
				Tag:       AnyTag,
				SkipFirst: master.Intn(3),
				Count:     master.Intn(3), // 0 = unlimited
				Action:    actions[master.Intn(len(actions))],
			}
			if r.Action == FaultDelay {
				r.Delay = time.Duration(1+master.Intn(10)) * time.Millisecond
			}
			plan.Rules = append(plan.Rules, r)
		}
		return plan
	}
	// A ring exchange with a closing barrier: enough traffic (point-to-point
	// and collective) for every fault class to land somewhere interesting.
	main := func(c *Comm) error {
		next, prev := (c.Rank()+1)%np, (c.Rank()+np-1)%np
		for i := 0; i < 4; i++ {
			if err := c.Send(next, i, c.Rank()*10+i); err != nil {
				return err
			}
			if _, err := c.Recv(prev, i, nil); err != nil {
				return err
			}
		}
		return c.Barrier()
	}
	check := func(t *testing.T, label string, err error) {
		t.Helper()
		if err == nil {
			return
		}
		if !strings.Contains(err.Error(), "rank ") {
			t.Fatalf("%s: error lacks rank attribution: %v", label, err)
		}
		ok := errors.Is(err, ErrWorldAborted) || errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrRankKilled)
		if !ok {
			t.Fatalf("%s: error outside the failure model: %v", label, err)
		}
	}
	for i := 0; i < 12; i++ {
		plan := randomPlan()
		err := runWithWatchdog(t, 20*time.Second, func() error {
			return Run(np, main, WithFaults(plan), WithDeadline(250*time.Millisecond))
		})
		check(t, fmt.Sprintf("local iteration %d (plan %+v)", i, plan), err)
	}
	for i := 0; i < 4; i++ {
		plan := randomPlan()
		err := runWithWatchdog(t, 30*time.Second, func() error {
			return RunTCP(np, main, WithFaults(plan), WithDeadline(300*time.Millisecond))
		})
		check(t, fmt.Sprintf("tcp iteration %d (plan %+v)", i, plan), err)
	}
	if shmSupported {
		for i := 0; i < 4; i++ {
			plan := randomPlan()
			err := runWithWatchdog(t, 30*time.Second, func() error {
				return RunShm(np, main, WithFaults(plan), WithDeadline(300*time.Millisecond))
			})
			check(t, fmt.Sprintf("shm iteration %d (plan %+v)", i, plan), err)
		}
	}
}

// TestEmptyFaultPlanIsInert: WithFaults with no rules must not perturb the
// program — it is the configuration the overhead benchmark pins.
func TestEmptyFaultPlanIsInert(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, "hello")
		}
		var s string
		if _, err := c.Recv(0, 0, &s); err != nil {
			return err
		}
		if s != "hello" {
			return fmt.Errorf("got %q", s)
		}
		return nil
	}, WithFaults(FaultPlan{}))
	if err != nil {
		t.Fatal(err)
	}
}
