package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestRunTCPRankAndSize(t *testing.T) {
	const np = 4
	err := RunTCP(np, func(c *Comm) error {
		if c.Size() != np {
			return fmt.Errorf("size = %d", c.Size())
		}
		if c.ProcessorName() == "" {
			return errors.New("empty processor name")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTCPSendRecv(t *testing.T) {
	err := RunTCP(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []string{"over", "the", "wire"})
		}
		var words []string
		st, err := c.Recv(0, 1, &words)
		if err != nil {
			return err
		}
		if st.Source != 0 || len(words) != 3 || words[2] != "wire" {
			return fmt.Errorf("st=%v words=%v", st, words)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTCPNonOvertaking(t *testing.T) {
	const n = 200
	err := RunTCP(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 0, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			var got int
			if _, err := c.Recv(0, 0, &got); err != nil {
				return err
			}
			if got != i {
				return fmt.Errorf("tcp transport reordered: got %d at position %d", got, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTCPCollectives(t *testing.T) {
	const np = 5
	err := RunTCP(np, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		got, err := Bcast(c, c.Rank()+100, 2)
		if err != nil {
			return err
		}
		if got != 102 {
			return fmt.Errorf("bcast got %d", got)
		}
		sum, err := Allreduce(c, c.Rank(), Combine[int](Sum))
		if err != nil {
			return err
		}
		if sum != np*(np-1)/2 {
			return fmt.Errorf("allreduce got %d", sum)
		}
		all, err := Allgather(c, c.Rank()*2)
		if err != nil {
			return err
		}
		for i, v := range all {
			if v != 2*i {
				return fmt.Errorf("allgather[%d] = %d", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTCPSplit(t *testing.T) {
	const np = 6
	err := RunTCP(np, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%3, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 2 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		sum, err := Allreduce(sub, c.Rank(), Combine[int](Sum))
		if err != nil {
			return err
		}
		// The group with color m holds world ranks m and m+3.
		if want := (c.Rank()%3)*2 + 3; sum != want {
			return fmt.Errorf("rank %d sub sum %d, want %d", c.Rank(), sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTCPErrorPropagates(t *testing.T) {
	sentinel := errors.New("worker failed")
	err := RunTCP(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("RunTCP error = %v", err)
	}
}

func TestJoinTCPInvalidRank(t *testing.T) {
	if err := JoinTCP("127.0.0.1:1", 5, 3, nil); !errors.Is(err, ErrInvalidRank) {
		t.Fatalf("JoinTCP with rank 5 of 3 = %v", err)
	}
}

func TestStartHubRejectsZeroProcesses(t *testing.T) {
	if _, err := StartHub("127.0.0.1:0", 0); err == nil {
		t.Fatal("StartHub(np=0) succeeded")
	}
}

func TestHubRejectsDuplicateRank(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			done <- JoinTCP(hub.Addr(), 0, 2, func(c *Comm) error { return nil })
		}()
	}
	// Both workers claim rank 0: the hub must fail the job rather than run it.
	if err := hub.Wait(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("hub.Wait() = %v, want duplicate-rank failure", err)
	}
	<-done
	<-done
}

func TestHubAddrIsDialable(t *testing.T) {
	hub, err := StartHub("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if !strings.Contains(hub.Addr(), "127.0.0.1:") {
		t.Fatalf("Addr() = %q", hub.Addr())
	}
	if err := JoinTCP(hub.Addr(), 0, 1, func(c *Comm) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := hub.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTCPMasterWorkerPattern(t *testing.T) {
	// The master-worker patternlet over the real network transport.
	const np = 4
	err := RunTCP(np, func(c *Comm) error {
		if c.Rank() == 0 {
			total := 0
			for i := 1; i < np; i++ {
				var v int
				if _, err := c.Recv(AnySource, 1, &v); err != nil {
					return err
				}
				total += v
			}
			if total != 1+2+3 {
				return fmt.Errorf("master total %d", total)
			}
			return nil
		}
		return c.Send(0, 1, c.Rank())
	})
	if err != nil {
		t.Fatal(err)
	}
}
