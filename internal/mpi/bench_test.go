package mpi

import (
	"fmt"
	"testing"
)

// Message latency by payload size through the in-process transport:
// the serialization cost learners should expect per message.
func benchPingPongPayload(b *testing.B, payload int) {
	data := make([]byte, payload)
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(1, 0, data); err != nil {
					return err
				}
				if _, err := c.Recv(1, 0, nil); err != nil {
					return err
				}
			}
			b.StopTimer()
			return c.Send(1, 1, true) // stop marker
		}
		for {
			// nil discards the payload without decoding, so the stop
			// marker (a bool) and the data (a byte slice) both pass.
			st, err := c.Recv(0, AnyTag, nil)
			if err != nil {
				return err
			}
			if st.Tag == 1 {
				return nil
			}
			if err := c.Send(0, 0, struct{}{}); err != nil {
				return err
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPingPong16B(b *testing.B)  { benchPingPongPayload(b, 16) }
func BenchmarkPingPong1KB(b *testing.B)  { benchPingPongPayload(b, 1<<10) }
func BenchmarkPingPong64KB(b *testing.B) { benchPingPongPayload(b, 64<<10) }

// Collective cost versus world size.
func benchBcast(b *testing.B, np int) {
	for i := 0; i < b.N; i++ {
		err := Run(np, func(c *Comm) error {
			_, err := Bcast(c, 42, 0)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBcastNP4(b *testing.B)  { benchBcast(b, 4) }
func BenchmarkBcastNP16(b *testing.B) { benchBcast(b, 16) }
func BenchmarkBcastNP64(b *testing.B) { benchBcast(b, 64) }

func BenchmarkWorldSpinUpNP8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Run(8, func(c *Comm) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		err := Run(8, func(c *Comm) error {
			sub, err := c.Split(c.Rank()%2, c.Rank())
			if err != nil {
				return err
			}
			if sub.Size() != 4 {
				return fmt.Errorf("size %d", sub.Size())
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobEncodeDecodeRoundTrip(b *testing.B) {
	type sample struct {
		Xs   []float64
		Name string
		N    int
	}
	v := sample{Xs: make([]float64, 128), Name: "payload", N: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := encodeValue(v)
		if err != nil {
			b.Fatal(err)
		}
		var out sample
		if err := decodeValue(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}
