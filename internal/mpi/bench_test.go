package mpi

import (
	"fmt"
	"testing"
)

// Message latency by payload size through the in-process transport:
// the serialization cost learners should expect per message.
func benchPingPongPayload(b *testing.B, payload int) {
	data := make([]byte, payload)
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(1, 0, data); err != nil {
					return err
				}
				if _, err := c.Recv(1, 0, nil); err != nil {
					return err
				}
			}
			b.StopTimer()
			return c.Send(1, 1, true) // stop marker
		}
		for {
			// nil discards the payload without decoding, so the stop
			// marker (a bool) and the data (a byte slice) both pass.
			st, err := c.Recv(0, AnyTag, nil)
			if err != nil {
				return err
			}
			if st.Tag == 1 {
				return nil
			}
			if err := c.Send(0, 0, struct{}{}); err != nil {
				return err
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPingPong16B(b *testing.B)  { benchPingPongPayload(b, 16) }
func BenchmarkPingPong1KB(b *testing.B)  { benchPingPongPayload(b, 1<<10) }
func BenchmarkPingPong64KB(b *testing.B) { benchPingPongPayload(b, 64<<10) }

// Collective cost versus world size.
func benchBcast(b *testing.B, np int) {
	for i := 0; i < b.N; i++ {
		err := Run(np, func(c *Comm) error {
			_, err := Bcast(c, 42, 0)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBcastNP4(b *testing.B)  { benchBcast(b, 4) }
func BenchmarkBcastNP16(b *testing.B) { benchBcast(b, 16) }
func BenchmarkBcastNP64(b *testing.B) { benchBcast(b, 64) }

func BenchmarkWorldSpinUpNP8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Run(8, func(c *Comm) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		err := Run(8, func(c *Comm) error {
			sub, err := c.Split(c.Rank()%2, c.Rank())
			if err != nil {
				return err
			}
			if sub.Size() != 4 {
				return fmt.Errorf("size %d", sub.Size())
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// The fast-path acceptance benchmarks: the same []float64 ping-pong through
// the typed fast path and through the forced-gob path. The fast path must
// be at least 3x cheaper per message (in practice far more; see
// BENCH_mpi.json from cmd/benchlab for the tracked numbers).
func benchPingPongFloats(b *testing.B, opts ...Option) {
	payload := make([]float64, 128)
	for i := range payload {
		payload[i] = float64(i)
	}
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			var got []float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(1, 0, payload); err != nil {
					return err
				}
				if _, err := c.Recv(1, 0, &got); err != nil {
					return err
				}
			}
			b.StopTimer()
			return c.Send(1, 1, true) // stop marker
		}
		for {
			st, err := c.Probe(0, AnyTag)
			if err != nil {
				return err
			}
			if st.Tag == 1 {
				_, err := c.Recv(0, 1, nil)
				return err
			}
			var in []float64
			if _, err := c.Recv(0, 0, &in); err != nil {
				return err
			}
			if err := c.Send(0, 0, in); err != nil {
				return err
			}
		}
	}, opts...)
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPingPongFloat64SliceFast(b *testing.B) { benchPingPongFloats(b) }
func BenchmarkPingPongFloat64SliceGob(b *testing.B)  { benchPingPongFloats(b, WithSerialization()) }

// benchCollective times one collective per iteration with every rank
// looping; collectives synchronize the ranks, so rank 0's timer covers the
// steady-state cost.
func benchCollective(b *testing.B, np int, op func(c *Comm) error, opts ...Option) {
	err := Run(np, func(c *Comm) error {
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			if err := op(c); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			b.StopTimer()
		}
		return nil
	}, opts...)
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllreduceNP8(b *testing.B) {
	benchCollective(b, 8, func(c *Comm) error {
		_, err := Allreduce(c, float64(c.Rank()), Combine[float64](Sum))
		return err
	})
}

func BenchmarkAllreduceNP8Gob(b *testing.B) {
	benchCollective(b, 8, func(c *Comm) error {
		_, err := Allreduce(c, float64(c.Rank()), Combine[float64](Sum))
		return err
	}, WithSerialization())
}

func BenchmarkBarrierNP8(b *testing.B) {
	benchCollective(b, 8, func(c *Comm) error { return c.Barrier() })
}

func BenchmarkBarrierLinearNP8(b *testing.B) {
	benchCollective(b, 8, func(c *Comm) error { return c.BarrierWith(BarrierLinear) })
}

func BenchmarkGobEncodeDecodeRoundTrip(b *testing.B) {
	type sample struct {
		Xs   []float64
		Name string
		N    int
	}
	v := sample{Xs: make([]float64, 128), Name: "payload", N: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := encodeValue(v)
		if err != nil {
			b.Fatal(err)
		}
		var out sample
		if err := decodeValue(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}
