package mpi

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSendToSelf(t *testing.T) {
	// MPI permits self-sends with buffered semantics; so does this runtime.
	err := Run(1, func(c *Comm) error {
		if err := c.Send(0, 3, "note to self"); err != nil {
			return err
		}
		var got string
		st, err := c.Recv(0, 3, &got)
		if err != nil {
			return err
		}
		if got != "note to self" || st.Source != 0 {
			return fmt.Errorf("got %q from %v", got, st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTypeMismatchSurfacesDecodeError(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, "definitely a string")
		}
		var wrong struct{ X, Y int }
		_, err := c.Recv(0, 0, &wrong)
		if err == nil {
			return fmt.Errorf("string decoded into struct without error")
		}
		if !strings.Contains(err.Error(), "decoding message payload") {
			return fmt.Errorf("unexpected error %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNilPayloadRoundTrip(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			var empty []int
			return c.Send(1, 0, empty)
		}
		var got []int
		if _, err := c.Recv(0, 0, &got); err != nil {
			return err
		}
		if len(got) != 0 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithLatencyOption(t *testing.T) {
	const msgs = 10
	lat := 2 * time.Millisecond
	start := time.Now()
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, 0, i); err != nil {
					return err
				}
				if _, err := c.Recv(1, 0, nil); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			if _, err := c.Recv(0, 0, nil); err != nil {
				return err
			}
			if err := c.Send(0, 0, i); err != nil {
				return err
			}
		}
		return nil
	}, WithLatency(func(src, dst int) time.Duration { return lat }))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*msgs*lat {
		t.Fatalf("latency option ignored: %v elapsed, want >= %v", elapsed, 2*msgs*lat)
	}
}

func TestManyRanksSmoke(t *testing.T) {
	// The St. Olaf scale: 64 ranks doing a collective round trip.
	const np = 64
	err := Run(np, func(c *Comm) error {
		sum, err := Allreduce(c, 1, Combine[int](Sum))
		if err != nil {
			return err
		}
		if sum != np {
			return fmt.Errorf("allreduce = %d", sum)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLowestFailingRankWins(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() >= 2 {
			return fmt.Errorf("failure on rank %d", c.Rank())
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("err = %v, want the lowest failing rank reported", err)
	}
}

func TestWtimeAdvances(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		t0 := c.Wtime()
		if t0 < 0 {
			return fmt.Errorf("Wtime negative: %v", t0)
		}
		time.Sleep(5 * time.Millisecond)
		if t1 := c.Wtime(); t1 <= t0 {
			return fmt.Errorf("Wtime did not advance: %v -> %v", t0, t1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
