package mpi

import "fmt"

// Additional collectives beyond the patternlet set: exclusive scan,
// reduce-scatter, and a dissemination barrier. These are the operations
// the materials' "to explore" prompts point students toward next, and the
// ablation benchmarks compare their algorithms.

// Reserved tags for this file's collectives.
const (
	tagExscan  = -10
	tagRedScat = -11
	tagDissem  = -12
)

// Exscan computes the exclusive prefix reduction: rank 0 receives the zero
// value (and ok=false, mirroring MPI's undefined receive buffer on rank 0),
// rank i>0 receives v0 ⊕ ... ⊕ v(i-1): MPI_Exscan.
func Exscan[T any](c *Comm, v T, combine func(a, b T) T) (T, bool, error) {
	var zero T
	// Chain: receive the running prefix from the left, forward prefix ⊕ v
	// to the right.
	var prefix T
	have := false
	if c.rank > 0 {
		if _, err := c.recvReserved(c.rank-1, tagExscan, &prefix); err != nil {
			return zero, false, err
		}
		have = true
	}
	if c.rank < c.Size()-1 {
		next := v
		if have {
			next = combine(prefix, v)
		}
		if err := c.sendReserved(c.rank+1, tagExscan, next); err != nil {
			return zero, false, err
		}
	}
	if !have {
		return zero, false, nil
	}
	return prefix, true, nil
}

// ReduceScatterBlock combines every rank's items elementwise and leaves
// element i at rank i: MPI_Reduce_scatter_block with one element per rank.
// items must have exactly Size() elements on every rank.
func ReduceScatterBlock[T any](c *Comm, items []T, combine func(a, b T) T) (T, error) {
	var zero T
	if len(items) != c.Size() {
		return zero, fmt.Errorf("mpi: ReduceScatterBlock needs exactly %d items, got %d", c.Size(), len(items))
	}
	// Direct algorithm: every rank sends items[j] to rank j, then combines
	// what it receives with its own element. Deterministic rank order.
	for j := 0; j < c.Size(); j++ {
		if j == c.rank {
			continue
		}
		if err := c.sendReserved(j, tagRedScat, items[j]); err != nil {
			return zero, err
		}
	}
	contributions := make([]T, c.Size())
	contributions[c.rank] = items[c.rank]
	for j := 0; j < c.Size(); j++ {
		if j == c.rank {
			continue
		}
		if _, err := c.recvReserved(j, tagRedScat, &contributions[j]); err != nil {
			return zero, err
		}
	}
	acc := contributions[0]
	for j := 1; j < c.Size(); j++ {
		acc = combine(acc, contributions[j])
	}
	return acc, nil
}

// BarrierAlgorithm selects a Barrier implementation for the ablation
// benchmarks.
type BarrierAlgorithm int

const (
	// BarrierLinear gathers arrival tokens at rank 0 and broadcasts a
	// release: 2(n-1) messages, O(n) rounds at the root.
	BarrierLinear BarrierAlgorithm = iota
	// BarrierDissemination is the classic ceil(log2 n)-round algorithm:
	// in round k each rank signals the rank 2^k ahead and waits for the
	// rank 2^k behind. This is what Barrier itself runs.
	BarrierDissemination
)

// BarrierWith is Barrier with an explicit algorithm choice.
func (c *Comm) BarrierWith(algo BarrierAlgorithm) error {
	switch algo {
	case BarrierLinear:
		return c.linearBarrier()
	case BarrierDissemination:
		return c.disseminationBarrier()
	default:
		return fmt.Errorf("mpi: unknown barrier algorithm %d", algo)
	}
}

// disseminationRounds reports how many communication rounds the
// dissemination barrier performs for an n-rank world: ceil(log2 n). The
// round-count scaling test pins Barrier's O(log n) critical path to this
// function, and the implementation below sends exactly one message per rank
// per round.
func disseminationRounds(n int) int {
	rounds := 0
	for dist := 1; dist < n; dist *= 2 {
		rounds++
	}
	return rounds
}

// disseminationBarrier runs the ceil(log2 n)-round dissemination algorithm.
// Each round's token carries its distance so a skewed world surfaces as a
// mismatch error instead of silent miscounting — including the skew a
// fault-injected duplicate or drop produces, which the failure suite uses
// to push collectives off their happy path deliberately.
func (c *Comm) disseminationBarrier() error {
	n := c.Size()
	for dist := 1; dist < n; dist *= 2 {
		to := (c.rank + dist) % n
		from := (c.rank - dist + n) % n
		if err := c.sendReserved(to, tagDissem, dist); err != nil {
			return err
		}
		var got int
		if _, err := c.recvReserved(from, tagDissem, &got); err != nil {
			return err
		}
		if got != dist {
			return fmt.Errorf("mpi: dissemination barrier round mismatch: got %d, want %d", got, dist)
		}
	}
	return nil
}
