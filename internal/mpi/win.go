package mpi

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// One-sided communication: MPI-style RMA windows. WinCreate collectively
// exposes a slice of numeric memory per rank; Put, Get, and Accumulate then
// access a *target* rank's exposed memory without the target posting a
// matching receive — the communication shape sparse and irregular codes
// want, where only the origin knows who it must touch.
//
// The layer is built as a performance feature, with one data path per
// transport:
//
//   - Local transport: windows register in a process-wide table, and
//     Put/Get/Accumulate are direct memcpy/fold against the target's slice —
//     no frame, no allocation, no per-element anything.
//   - Shm transport: window memory is carved out of the mmap'd segment's
//     per-rank window heaps (shmseg.go), each rank publishing its segment
//     offset at creation. A Put to an attached same-host peer is a plain
//     memcpy into shared memory; Accumulate folds under a per-window
//     cross-process spinlock.
//   - TCP (and any pair without direct access): ops travel as an active-
//     message protocol on reserved tags — one small header frame plus one
//     coalesced payload frame per op. The target's per-window service
//     goroutine applies Puts, folds Accumulates rank-side with the
//     op-specialized folds (opFold), and answers Gets, so an Accumulate of
//     a million elements moves one frame and runs one tight loop.
//
// Epochs follow MPI's active/passive split. Fence drains the origin's
// outstanding active-message ops (direct-path ops complete immediately) and
// barriers, delimiting an access epoch: after Fence returns, every op
// issued before it — by anyone — is visible in the target memory. Lock and
// Unlock implement exclusive passive-target epochs through the target's
// service goroutine, so direct-path and frame-path lockers exclude each
// other coherently on every transport.
//
// Failure semantics ride the ordinary send/receive machinery: every op
// checks the world's abort latch and (under WithRecovery) the failed-rank
// set before touching memory, frames honour WithDeadline and fault plans,
// and an ack or lock grant that never arrives because the target died
// surfaces as the retryable *RankFailedError — a kill mid-epoch interrupts
// the epoch, it never wedges it. Window heap space on shm is reclaimed when
// a rank's last window is freed; a dead process's heap state dies with it,
// and a respawned process starts from an empty heap.
//
// Windows are not goroutine-safe: like a Comm, a Win belongs to its rank's
// goroutine. Free is collective and required — it stops the service
// goroutine.

// WinElem constrains window element types to the numeric raw-codec
// whitelist, which is what makes the zero-copy paths (segment views,
// in-place frame views) sound.
type WinElem interface {
	float64 | float32 | int | int32 | int64
}

// The active-message protocol's op kinds.
const (
	winPut = iota + 1
	winAcc
	winGet
	winLock
	winUnlock
	winStop
)

// winOp is the per-op header frame. It is shallow-copyable, so it travels
// as a typed payload on the local transport and gob only on the wires.
type winOp struct {
	Kind int
	Off  int
	N    int
	Op   int // Op for winAcc
}

// tagWinBase anchors the reserved tag space for windows, far below the
// collectives' -2..-22 block: window s on a communicator uses the six tags
// tagWinBase-8s .. tagWinBase-8s-5. Per-pair FIFO keeps each op's header
// and payload frames adjacent, which is the whole protocol's ordering
// contract.
const tagWinBase = -1000

// winKey locates one rank's window memory in the process-wide registry
// (the local transport's direct path).
type winKey struct {
	ctx  int64
	seq  int64
	rank int // world rank
}

// winEntry is what the registry holds: the exposed slice (as its concrete
// []T) and the lock Accumulate needs for cross-origin atomicity.
type winEntry struct {
	data any
	mu   *sync.Mutex
}

// winTarget caches one target's resolved access path.
type winTarget[T WinElem] struct {
	resolved bool
	direct   []T            // non-nil: load/store access to the target's memory
	mu       *sync.Mutex    // in-process Accumulate lock (local registry / self)
	spin     *atomic.Uint32 // cross-process Accumulate lock (shm), nil otherwise
	shm      bool           // direct view lives in the segment: re-check liveness per op
}

// Win is one rank's handle on a window: its own exposed memory plus the
// access paths to every peer's.
type Win[T WinElem] struct {
	c     *Comm
	seq   int64
	local []T
	sizes []int // exposed element count per comm rank

	shmBacked bool    // local lives in the segment
	shmOffs   []int64 // absolute segment offset of each rank's region; -1 = none
	applyMu   sync.Mutex
	spinSelf  *atomic.Uint32

	targets []winTarget[T]
	pending []int // outstanding unacked active-message ops per target

	tagOp, tagData, tagAck, tagRep, tagGrant int

	done  chan struct{}
	freed bool
}

// winElemSize reports T's in-memory (and wire) size.
func winElemSize[T WinElem]() int {
	var zero T
	return int(unsafe.Sizeof(zero))
}

// WinCreate collectively exposes n elements of type T per rank (n may
// differ across ranks, and may be zero) and returns the window handle. On
// the shm transport the memory is allocated inside the shared segment so
// peers get direct load/store access; elsewhere it is ordinary process
// memory. The call includes a barrier: when it returns, every rank's
// window is accessible.
func WinCreate[T WinElem](c *Comm, n int) (*Win[T], error) {
	if n < 0 {
		return nil, fmt.Errorf("mpi: WinCreate: negative size %d", n)
	}
	seq := c.winSeq
	c.winSeq++
	base := tagWinBase - 8*seq
	w := &Win[T]{
		c:        c,
		seq:      seq,
		sizes:    make([]int, c.Size()),
		shmOffs:  make([]int64, c.Size()),
		targets:  make([]winTarget[T], c.Size()),
		pending:  make([]int, c.Size()),
		tagOp:    int(base),
		tagData:  int(base - 1),
		tagAck:   int(base - 2),
		tagRep:   int(base - 3),
		tagGrant: int(base - 4),
		done:     make(chan struct{}),
	}

	// Place the local region: segment-backed when the shm data plane is up
	// (and the platform supports raw views), heap-backed otherwise or when
	// the window heap is exhausted. Each region is a 64-byte header (the
	// Accumulate spinlock word) followed by the data.
	shmOff := int64(-1)
	if t := c.world.shmT; t != nil && c.world.wire && rawViewNative {
		bytes := uint64(64 + n*winElemSize[T]())
		if off, ok := t.winAlloc(bytes); ok {
			shmOff = int64(off)
			region := t.winView(off, bytes)
			for i := range region { // zero recycled heap space
				region[i] = 0
			}
			w.local = winSlice[T](region[64:], n)
			w.spinSelf = shmAtU32(region, 0)
			w.shmBacked = true
		}
	}
	if !w.shmBacked {
		w.local = make([]T, n)
	}

	// Publish (size, segment offset) to every peer. []int64 is raw-capable,
	// so this is cheap on every transport.
	info, err := Allgather(c, []int64{int64(n), shmOff})
	if err != nil {
		if w.shmBacked {
			c.world.shmT.winFree()
		}
		return nil, err
	}
	for i, pair := range info {
		if len(pair) != 2 {
			return nil, fmt.Errorf("mpi: WinCreate: malformed window info from rank %d", i)
		}
		w.sizes[i] = int(pair[0])
		w.shmOffs[i] = pair[1]
	}

	// Local transport: register the exposed slice for peers' direct access.
	// Under WithSerialization typed is false and nothing registers — every
	// op takes the active-message path, the ablation the parity tests use.
	if c.world.typed {
		c.world.winReg.Store(winKey{c.ctx, seq, c.worldRank(c.rank)},
			&winEntry{data: w.local, mu: &w.applyMu})
	}

	// Resolve the self path before the service starts: serve and the rank's
	// own ops both consult it, and resolving it here makes that a read.
	w.target(c.rank)

	go w.serve()

	// The barrier makes every registration and publication visible before
	// any rank's first op. A peer that races ahead and sends an active-
	// message op early is still safe — the mailbox holds it for the service.
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	return w, nil
}

// winSlice views a 64-bit-aligned byte region as []T.
func winSlice[T WinElem](b []byte, n int) []T {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
}

// Local returns this rank's exposed memory. Reading it while a remote
// epoch is open races by MPI's rules: separate access from exposure with
// Fence (or Lock on the own rank).
func (w *Win[T]) Local() []T { return w.local }

// Size reports the number of elements rank target exposes.
func (w *Win[T]) Size(target int) int {
	if target < 0 || target >= len(w.sizes) {
		return 0
	}
	return w.sizes[target]
}

// check runs the shared per-op validation: liveness, rank, bounds, and the
// recovery-mode failed-target gate — the same gates sendValue applies, so
// direct-path ops fail identically to frame-path ones.
func (w *Win[T]) check(target, off, n int) error {
	if w.freed {
		return fmt.Errorf("mpi: operation on a freed window")
	}
	if err := w.c.world.abortErr(); err != nil {
		return err
	}
	if err := w.c.checkRank(target); err != nil {
		return err
	}
	if r := w.c.world.recov; r != nil {
		if err := r.sendErr(w.c, w.c.worldRank(target)); err != nil {
			return err
		}
	}
	if off < 0 || n < 0 || off+n > w.sizes[target] {
		return fmt.Errorf("mpi: window op [%d, %d) out of range (rank %d exposes %d elements)",
			off, off+n, target, w.sizes[target])
	}
	return nil
}

// target resolves (and caches) the access path to one peer's window.
func (w *Win[T]) target(i int) *winTarget[T] {
	t := &w.targets[i]
	if t.resolved {
		return t
	}
	t.resolved = true
	if i == w.c.rank {
		t.direct, t.mu, t.spin = w.local, &w.applyMu, w.spinSelf
		return t
	}
	wr := w.c.worldRank(i)
	if w.c.world.typed {
		if e, ok := w.c.world.winReg.Load(winKey{w.c.ctx, w.seq, wr}); ok {
			ent := e.(*winEntry)
			if data, ok := ent.data.([]T); ok {
				t.direct, t.mu = data, ent.mu
				return t
			}
		}
	}
	if st := w.c.world.shmT; st != nil && w.c.world.wire && rawViewNative && w.shmOffs[i] >= 0 {
		off := uint64(w.shmOffs[i])
		bytes := uint64(64 + w.sizes[i]*winElemSize[T]())
		if off >= st.seg.winOff(wr) && off+bytes <= st.seg.winOff(wr)+st.seg.winCap {
			region := st.winView(off, bytes)
			t.direct = winSlice[T](region[64:], w.sizes[i])
			t.spin = shmAtU32(region, 0)
			t.shm = true
		}
	}
	return t
}

// directOK reports whether the cached direct path may be used right now: a
// segment view demands the peer still be attached and not pinned onto the
// TCP fallback (a respawned process's offsets are stale).
func (w *Win[T]) directOK(t *winTarget[T], i int) bool {
	if t.direct == nil {
		return false
	}
	if !t.shm {
		return true
	}
	return w.c.world.shmT.winDirectOK(w.c.worldRank(i))
}

// lockApply acquires the target's Accumulate lock: the cross-process
// spinlock word for segment-backed windows, the in-process mutex otherwise.
func lockApply[T WinElem](t *winTarget[T]) {
	if t.spin != nil {
		for !t.spin.CompareAndSwap(0, 1) {
			runtime.Gosched()
		}
		return
	}
	t.mu.Lock()
}

func unlockApply[T WinElem](t *winTarget[T]) {
	if t.spin != nil {
		t.spin.Store(0)
		return
	}
	t.mu.Unlock()
}

// Put stores src into target's window at element offset off: MPI_Put. On a
// direct path it is one memcpy; otherwise it is two frames (header +
// coalesced payload) applied by the target's service, completing at the
// next Fence (or Unlock).
func (w *Win[T]) Put(target, off int, src []T) error {
	if err := w.check(target, off, len(src)); err != nil {
		return err
	}
	if len(src) == 0 {
		return nil
	}
	t := w.target(target)
	if w.directOK(t, target) {
		copy(t.direct[off:off+len(src)], src)
		return nil
	}
	if err := w.c.sendValue(target, w.tagOp, winOp{Kind: winPut, Off: off, N: len(src)}); err != nil {
		return err
	}
	if err := w.c.sendValue(target, w.tagData, src); err != nil {
		return err
	}
	w.pending[target]++
	return nil
}

// Get loads target's window [off, off+len(dst)) into dst: MPI_Get. Direct
// paths read in place; the frame path is synchronous — it completes when
// the reply lands, honouring deadline/recovery while it waits.
func (w *Win[T]) Get(target, off int, dst []T) error {
	if err := w.check(target, off, len(dst)); err != nil {
		return err
	}
	if len(dst) == 0 {
		return nil
	}
	t := w.target(target)
	if w.directOK(t, target) {
		copy(dst, t.direct[off:off+len(dst)])
		return nil
	}
	if err := w.c.sendValue(target, w.tagOp, winOp{Kind: winGet, Off: off, N: len(dst)}); err != nil {
		return err
	}
	var scratch []T
	got, err := recvSegCopy(w.c, target, w.tagRep, dst, &scratch)
	if err == errVecSegLen {
		return fmt.Errorf("mpi: Get: rank %d replied %d elements, want %d", target, got, len(dst))
	}
	return err
}

// Accumulate folds src into target's window at off with a built-in
// operator: MPI_Accumulate. Element [i] becomes win[off+i] op src[i],
// atomically with respect to every other Accumulate on the window
// (including direct-path ones from other processes on shm). On the frame
// path the fold runs rank-side in the target's service with the
// op-specialized loops — the payload crosses once, the arithmetic never
// does.
func (w *Win[T]) Accumulate(target, off int, src []T, op Op) error {
	switch op {
	case Sum, Prod, Max, Min:
	default:
		return fmt.Errorf("mpi: Accumulate: unsupported op %v", op)
	}
	if err := w.check(target, off, len(src)); err != nil {
		return err
	}
	if len(src) == 0 {
		return nil
	}
	t := w.target(target)
	if w.directOK(t, target) {
		lockApply(t)
		opFold[T](op).into(t.direct[off:off+len(src)], src)
		unlockApply(t)
		return nil
	}
	if err := w.c.sendValue(target, w.tagOp, winOp{Kind: winAcc, Off: off, N: len(src), Op: int(op)}); err != nil {
		return err
	}
	if err := w.c.sendValue(target, w.tagData, src); err != nil {
		return err
	}
	w.pending[target]++
	return nil
}

// flush drains the origin-side completion acks for every outstanding
// active-message op. An ack is sent by the target's service after the op
// is applied, so a drained op is a *remotely complete* op.
func (w *Win[T]) flush() error {
	for t := range w.pending {
		if err := w.flushTarget(t); err != nil {
			return err
		}
	}
	return nil
}

func (w *Win[T]) flushTarget(t int) error {
	for w.pending[t] > 0 {
		if _, err := w.c.recvReserved(t, w.tagAck, nil); err != nil {
			return err
		}
		w.pending[t]--
	}
	return nil
}

// Fence closes the current access-and-exposure epoch and opens the next:
// MPI_Win_fence. When it returns, every op issued by every rank before its
// fence is applied and visible. A kill mid-epoch surfaces here as the
// retryable *RankFailedError (under WithRecovery) or the world abort.
func (w *Win[T]) Fence() error {
	if err := w.flush(); err != nil {
		return err
	}
	return w.c.Barrier()
}

// Lock opens an exclusive passive-target epoch on target's window:
// MPI_Win_lock(MPI_LOCK_EXCLUSIVE). It blocks until the target's service
// grants the lock; lockers queue FIFO. Locking the own rank is allowed.
func (w *Win[T]) Lock(target int) error {
	if err := w.check(target, 0, 0); err != nil {
		return err
	}
	if err := w.c.sendValue(target, w.tagOp, winOp{Kind: winLock}); err != nil {
		return err
	}
	_, err := w.c.recvReserved(target, w.tagGrant, nil)
	return err
}

// Unlock closes the passive-target epoch: it drains this origin's
// outstanding ops on target (so the epoch's ops are applied before the
// lock releases) and hands the lock to the next waiter.
func (w *Win[T]) Unlock(target int) error {
	if err := w.check(target, 0, 0); err != nil {
		return err
	}
	if err := w.flushTarget(target); err != nil {
		return err
	}
	return w.c.sendValue(target, w.tagOp, winOp{Kind: winUnlock})
}

// Free collectively releases the window: MPI_Win_free. It drains this
// rank's outstanding ops, barriers (so no peer op can still be in flight
// toward this rank), stops the service goroutine, and returns the window
// memory — segment heap space is reclaimed once the rank's last window is
// freed. The window must not be used afterwards.
func (w *Win[T]) Free() error {
	if w.freed {
		return nil
	}
	err := w.flush()
	if err == nil {
		err = w.c.Barrier()
	}
	w.freed = true
	// Stop the service. If the world aborted, the poisoned mailbox has
	// already unblocked it; otherwise the self-addressed stop frame lands
	// behind any already-queued ops.
	if serr := w.c.sendValue(w.c.rank, w.tagOp, winOp{Kind: winStop}); serr == nil || w.c.world.abortErr() != nil {
		<-w.done
	}
	if w.c.world.typed {
		w.c.world.winReg.Delete(winKey{w.c.ctx, w.seq, w.c.worldRank(w.c.rank)})
	}
	if w.shmBacked {
		w.c.world.shmT.winFree()
	}
	return err
}

// serve is the per-window service goroutine: it owns the target side of
// the active-message protocol and the passive-target lock. It exits on the
// stop op, or when the mailbox is poisoned by a world abort/close.
func (w *Win[T]) serve() {
	defer close(w.done)
	c := w.c
	box := c.mailbox()
	var scratch []T
	locked := false
	var lockQ []int
	grant := func(to int) {
		// A grant to a failed origin is dropped by sendValue's recovery
		// gate; the lock then sits with a dead holder until the epoch is
		// torn down — the same liveness contract as any op toward a dead
		// rank, surfaced to waiters by their own recovery checks.
		_ = c.sendValue(to, w.tagGrant, true)
	}
	self := w.target(c.rank)
	for {
		// The op wait is deliberately deadline- and recovery-free: an idle
		// window must not trip WithDeadline, and the service must outlive
		// unrelated rank failures. Abort still unblocks it via the poisoned
		// mailbox.
		f, err := box.wait("WinService", c.ctx, AnySource, w.tagOp, 0, nil, nil, true)
		if err != nil {
			return
		}
		var op winOp
		if derr := f.decodeInto(&op); derr != nil {
			continue
		}
		src := f.Src
		switch op.Kind {
		case winStop:
			return
		case winPut, winAcc:
			bad := op.Off < 0 || op.N < 0 || op.Off+op.N > len(w.local)
			var apply func(dst, in []T)
			if op.Kind == winPut {
				apply = func(dst, in []T) { copy(dst, in) }
			} else {
				o := Op(op.Op)
				switch o {
				case Sum, Prod, Max, Min:
					apply = opFold[T](o).into
				default:
					bad = true
				}
			}
			if bad {
				// Out of contract: consume the payload frame to stay in
				// sync, send no ack.
				_, _ = c.recv(src, w.tagData, nil)
				continue
			}
			// The payload wait does run the deadline/recovery checks: the
			// payload follows its header on the same FIFO, so a stall here
			// means the origin died between the two frames.
			lockApply(self)
			_, rerr := recvSegInto(c, src, w.tagData, w.local[op.Off:op.Off+op.N], &scratch, apply)
			unlockApply(self)
			if rerr != nil {
				if c.world.abortErr() != nil {
					return
				}
				continue
			}
			_ = c.sendValue(src, w.tagAck, true)
		case winGet:
			if op.Off < 0 || op.N < 0 || op.Off+op.N > len(w.local) {
				continue
			}
			// Every transport consumes the payload synchronously inside
			// Send, so replying with a view of the window under the apply
			// lock is race-free and copy-free.
			lockApply(self)
			_ = c.sendValue(src, w.tagRep, w.local[op.Off:op.Off+op.N])
			unlockApply(self)
		case winLock:
			if !locked {
				locked = true
				grant(src)
			} else {
				lockQ = append(lockQ, src)
			}
		case winUnlock:
			if len(lockQ) > 0 {
				next := lockQ[0]
				lockQ = lockQ[1:]
				grant(next)
			} else {
				locked = false
			}
		}
	}
}
