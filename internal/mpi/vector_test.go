package mpi

import (
	"fmt"
	"reflect"
	"testing"
)

// The vector-collective parity property: every *Slice collective is
// element-equal to its scalar counterpart — across world sizes (including
// non-powers-of-two, which exercise the ring's remainder segments), payload
// sizes straddling the algorithm threshold, and every transport
// configuration (local fast path, forced serialization, TCP v1 framing,
// TCP legacy gob). All test data is integer-valued, so elementwise sums are
// exact regardless of reduction order and "element-equal" is well-defined
// even for float64 payloads.

// parityRunners enumerates the transport configurations the parity property
// must hold on.
func parityRunners() map[string]func(np int, main func(c *Comm) error, opts ...Option) error {
	return map[string]func(np int, main func(c *Comm) error, opts ...Option) error{
		"local": Run,
		"local-gob": func(np int, main func(c *Comm) error, opts ...Option) error {
			return Run(np, main, append(opts, WithSerialization())...)
		},
		"tcp": RunTCP,
		"tcp-legacy": func(np int, main func(c *Comm) error, opts ...Option) error {
			return RunTCP(np, main, append(opts, withWireLegacy())...)
		},
	}
}

// shmParityRunners adds the shared-memory transport configurations on
// platforms that support it: default tuning (the size sweep stays eager) and
// a low eager ceiling so the same sweep straddles the eager/rendezvous
// protocol crossover mid-run.
func shmParityRunners() map[string]func(np int, main func(c *Comm) error, opts ...Option) error {
	if !shmSupported {
		return nil
	}
	return map[string]func(np int, main func(c *Comm) error, opts ...Option) error{
		"shm": RunShm,
		"shm-rdv": func(np int, main func(c *Comm) error, opts ...Option) error {
			prev := SetShmTuning(ShmTuning{EagerMax: 256})
			defer SetShmTuning(prev)
			return RunShm(np, main, opts...)
		},
	}
}

// straddleTuning pins the threshold and chunk low so the size sweep crosses
// both algorithm families cheaply; the chunk deliberately does not divide
// the vector sizes, exercising the short tail chunk.
var straddleTuning = CollectiveTuning{VectorThreshold: 64, BcastChunk: 48}

func TestVectorCollectiveParity(t *testing.T) {
	prev := SetCollectiveTuning(straddleTuning)
	defer SetCollectiveTuning(prev)

	sizes := []int{0, 1, 3, 63, 64, 65, 200, 1000}
	nps := []int{1, 2, 3, 4, 8}
	runners := parityRunners()
	// The shm runners mutate global shm tuning, so they run sequentially;
	// sequential subtests finish before the parallel tcp ones resume.
	for name, runner := range shmParityRunners() {
		runners[name] = runner
	}
	for name, runner := range runners {
		t.Run(name, func(t *testing.T) {
			if name == "tcp" || name == "tcp-legacy" {
				t.Parallel()
			}
			for _, np := range nps {
				np := np
				t.Run(fmt.Sprintf("np%d", np), func(t *testing.T) {
					for _, sz := range sizes {
						if err := runner(np, func(c *Comm) error {
							return checkVectorParity(c, sz)
						}); err != nil {
							t.Fatalf("np=%d size=%d: %v", np, sz, err)
						}
					}
				})
			}
		})
	}
}

// checkVectorParity runs every *Slice collective and its scalar counterpart
// in one world and demands element equality.
func checkVectorParity(c *Comm, sz int) error {
	n := c.Size()
	rank := c.Rank()
	sum := func(a, b float64) float64 { return a + b }

	// Equal-length per-rank input for the reductions and the broadcast.
	v := make([]float64, sz)
	for i := range v {
		v[i] = float64((rank + 1) * (i + 3) % 101)
	}

	scalar, err := Allreduce(c, append([]float64(nil), v...), sliceReduce(sum))
	if err != nil {
		return fmt.Errorf("scalar Allreduce: %w", err)
	}
	vector, err := AllreduceSlice(c, v, sum)
	if err != nil {
		return fmt.Errorf("AllreduceSlice: %w", err)
	}
	if !equalSlices(scalar, vector) {
		return fmt.Errorf("AllreduceSlice diverges from Allreduce at size %d", sz)
	}
	vecOp, err := AllreduceSliceOp(c, v, Sum)
	if err != nil {
		return fmt.Errorf("AllreduceSliceOp: %w", err)
	}
	if !equalSlices(scalar, vecOp) {
		return fmt.Errorf("AllreduceSliceOp diverges from Allreduce at size %d", sz)
	}

	for root := 0; root < n; root++ {
		sred, err := Reduce(c, append([]float64(nil), v...), sliceReduce(sum), root)
		if err != nil {
			return fmt.Errorf("scalar Reduce: %w", err)
		}
		vred, err := ReduceSlice(c, v, sum, root)
		if err != nil {
			return fmt.Errorf("ReduceSlice: %w", err)
		}
		if rank == root {
			if !equalSlices(sred, vred) {
				return fmt.Errorf("ReduceSlice diverges from Reduce at size %d root %d", sz, root)
			}
		} else if vred != nil {
			return fmt.Errorf("ReduceSlice returned %d elements at non-root", len(vred))
		}
		vredOp, err := ReduceSliceOp(c, v, Sum, root)
		if err != nil {
			return fmt.Errorf("ReduceSliceOp: %w", err)
		}
		if rank == root {
			if !equalSlices(sred, vredOp) {
				return fmt.Errorf("ReduceSliceOp diverges from Reduce at size %d root %d", sz, root)
			}
		} else if vredOp != nil {
			return fmt.Errorf("ReduceSliceOp returned %d elements at non-root", len(vredOp))
		}

		sb, err := Bcast(c, append([]float64(nil), v...), root)
		if err != nil {
			return fmt.Errorf("scalar Bcast: %w", err)
		}
		vb, err := BcastSlice(c, v, root)
		if err != nil {
			return fmt.Errorf("BcastSlice: %w", err)
		}
		if !equalSlices(sb, vb) {
			return fmt.Errorf("BcastSlice diverges from Bcast at size %d root %d", sz, root)
		}
	}

	// Variable-length per-rank blocks for the gather family.
	blk := make([]float64, sz%7+3*rank)
	for i := range blk {
		blk[i] = float64(rank*1000 + i)
	}
	sgat, err := Allgather(c, append([]float64(nil), blk...))
	if err != nil {
		return fmt.Errorf("scalar Allgather: %w", err)
	}
	vgat, err := AllgatherSlice(c, blk)
	if err != nil {
		return fmt.Errorf("AllgatherSlice: %w", err)
	}
	if !equalSlices(flatten(sgat), vgat) {
		return fmt.Errorf("AllgatherSlice diverges from Allgather at size %d", sz)
	}

	g, err := GatherSlice(c, blk, 0)
	if err != nil {
		return fmt.Errorf("GatherSlice: %w", err)
	}
	if rank == 0 {
		if !equalSlices(flatten(sgat), g) {
			return fmt.Errorf("GatherSlice diverges from Allgather concatenation at size %d", sz)
		}
	} else if g != nil {
		return fmt.Errorf("GatherSlice returned %d elements at non-root", len(g))
	}

	// ScatterSlice against the decomposition it documents: every rank can
	// reconstruct root's data deterministically.
	data := make([]float64, sz)
	for i := range data {
		data[i] = float64(7*i + 1)
	}
	sc, err := ScatterSlice(c, data, 0)
	if err != nil {
		return fmt.Errorf("ScatterSlice: %w", err)
	}
	lo, hi := segRange(sz, rank, n)
	if !equalSlices(data[lo:hi], sc) {
		return fmt.Errorf("ScatterSlice block mismatch at size %d rank %d", sz, rank)
	}
	return nil
}

func equalSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func flatten(blocks [][]float64) []float64 {
	var out []float64
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// TestVectorParityInts runs the reduction parity on []int payloads: the
// other heavily used whitelisted element type, and the one the forestfire
// halo rides on.
func TestVectorParityInts(t *testing.T) {
	prev := SetCollectiveTuning(straddleTuning)
	defer SetCollectiveTuning(prev)
	for _, np := range []int{1, 3, 4} {
		for _, sz := range []int{5, 64, 257} {
			err := Run(np, func(c *Comm) error {
				v := make([]int, sz)
				for i := range v {
					v[i] = (c.Rank() + 2) * i
				}
				want, err := Allreduce(c, append([]int(nil), v...), sliceReduce(func(a, b int) int { return a + b }))
				if err != nil {
					return err
				}
				got, err := AllreduceSlice(c, v, func(a, b int) int { return a + b })
				if err != nil {
					return err
				}
				if !reflect.DeepEqual(want, got) {
					return fmt.Errorf("int AllreduceSlice mismatch at np=%d size=%d", np, sz)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestVectorOpParity pins the operator-specialized entry points against the
// closure variants for every built-in operator, on worlds that exercise both
// reduce-scatter shapes (np=4 halving, np=3 ring) and on transports that
// exercise every receive representation (typed local values, raw wire views,
// serialized decode; shm staging views where supported). The data is
// negative-heavy and includes zeros on purpose: the specialized paths
// first-touch a zeroed accumulator from v instead of starting from a copy of
// it, and a fold that ever read those untouched zeros would corrupt exactly
// Max over negative inputs or Prod over anything.
func TestVectorOpParity(t *testing.T) {
	prev := SetCollectiveTuning(CollectiveTuning{VectorThreshold: 16, BcastChunk: 48})
	defer SetCollectiveTuning(prev)

	runners := map[string]func(np int, main func(c *Comm) error, opts ...Option) error{
		"local": Run,
		"local-gob": func(np int, main func(c *Comm) error, opts ...Option) error {
			return Run(np, main, append(opts, WithSerialization())...)
		},
		"tcp": RunTCP,
	}
	if shmSupported {
		runners["shm"] = RunShm
	}
	ops := []Op{Sum, Prod, Max, Min}
	for name, runner := range runners {
		t.Run(name, func(t *testing.T) {
			for _, np := range []int{3, 4} {
				for _, sz := range []int{65, 200} {
					err := runner(np, func(c *Comm) error {
						v := make([]float64, sz)
						for i := range v {
							// Negative-dominated, zero-crossing, exactly
							// representable halves; Prod stays finite because
							// most magnitudes are below one.
							v[i] = -2 + float64((c.Rank()*7+i*3)%9)*0.5
						}
						for _, op := range ops {
							want, err := AllreduceSlice(c, v, Combine[float64](op))
							if err != nil {
								return fmt.Errorf("AllreduceSlice(%v): %w", op, err)
							}
							got, err := AllreduceSliceOp(c, v, op)
							if err != nil {
								return fmt.Errorf("AllreduceSliceOp(%v): %w", op, err)
							}
							if !reflect.DeepEqual(want, got) {
								return fmt.Errorf("AllreduceSliceOp(%v) diverges at np=%d size=%d", op, c.Size(), sz)
							}
							wantRed, err := ReduceSlice(c, v, Combine[float64](op), 0)
							if err != nil {
								return fmt.Errorf("ReduceSlice(%v): %w", op, err)
							}
							gotRed, err := ReduceSliceOp(c, v, op, 0)
							if err != nil {
								return fmt.Errorf("ReduceSliceOp(%v): %w", op, err)
							}
							if !reflect.DeepEqual(wantRed, gotRed) {
								return fmt.Errorf("ReduceSliceOp(%v) diverges at np=%d size=%d root=0", op, c.Size(), sz)
							}
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestVectorThresholdFallback pins the algorithm switch: at or below the
// threshold AllreduceSlice must produce no vector traffic (it defers to the
// scalar tree); above it, power-of-two worlds take recursive halving/doubling
// (n·log2(n) messages per phase) and the rest take the ring (n·(n−1)).
func TestVectorThresholdFallback(t *testing.T) {
	prev := SetCollectiveTuning(CollectiveTuning{VectorThreshold: 100, BcastChunk: 64})
	defer SetCollectiveTuning(prev)
	sum := func(a, b float64) float64 { return a + b }

	for _, tc := range []struct {
		np        int
		size      int
		wantVec   int // messages under each vector tag
		wantScala bool
	}{
		{np: 4, size: 100, wantVec: 0, wantScala: true},
		{np: 4, size: 101, wantVec: 4 * 2, wantScala: false}, // halving/doubling: log2(4) per rank
		{np: 3, size: 101, wantVec: 3 * 2, wantScala: false}, // ring: n−1 per rank
	} {
		mc := NewMessageCounter()
		err := Run(tc.np, func(c *Comm) error {
			v := make([]float64, tc.size)
			_, err := AllreduceSlice(c, v, sum)
			return err
		}, WithCounter(mc))
		if err != nil {
			t.Fatal(err)
		}
		if got := mc.Tag(tagVecRed); got != tc.wantVec {
			t.Errorf("np %d size %d: %d reduce-scatter messages, want %d", tc.np, tc.size, got, tc.wantVec)
		}
		if got := mc.Tag(tagVecAg); got != tc.wantVec {
			t.Errorf("np %d size %d: %d allgather messages, want %d", tc.np, tc.size, got, tc.wantVec)
		}
		if scalarUsed := mc.Tag(tagReduce) > 0; scalarUsed != tc.wantScala {
			t.Errorf("np %d size %d: scalar tree used = %v, want %v", tc.np, tc.size, scalarUsed, tc.wantScala)
		}
	}
}

// TestSetCollectiveTuning pins the knob's contract: it returns the previous
// tuning and sanitizes nonsensical values.
func TestSetCollectiveTuning(t *testing.T) {
	orig := SetCollectiveTuning(CollectiveTuning{VectorThreshold: 7, BcastChunk: 9})
	defer SetCollectiveTuning(orig)
	got := SetCollectiveTuning(CollectiveTuning{VectorThreshold: -5, BcastChunk: 0})
	if got.VectorThreshold != 7 || got.BcastChunk != 9 {
		t.Errorf("previous tuning = %+v, want {7 9}", got)
	}
	cur := collectiveTuning()
	if cur.VectorThreshold != 0 {
		t.Errorf("negative threshold clamped to %d, want 0", cur.VectorThreshold)
	}
	if cur.BcastChunk != defaultCollectiveTuning.BcastChunk {
		t.Errorf("nonpositive chunk reset to %d, want default %d", cur.BcastChunk, defaultCollectiveTuning.BcastChunk)
	}
}

// segRange must tile [0, n) exactly, remainder-first, for every shape the
// rings can see.
func TestSegRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 65, 1000} {
		for _, k := range []int{1, 2, 3, 4, 7, 8} {
			prev := 0
			for i := 0; i < k; i++ {
				lo, hi := segRange(n, i, k)
				if lo != prev {
					t.Fatalf("segRange(%d,%d,%d): lo %d, want %d", n, i, k, lo, prev)
				}
				if hi < lo {
					t.Fatalf("segRange(%d,%d,%d): hi %d < lo %d", n, i, k, hi, lo)
				}
				if w := hi - lo; w != n/k && w != n/k+1 {
					t.Fatalf("segRange(%d,%d,%d): width %d not near-equal", n, i, k, w)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("segRange(%d,*,%d) covers %d, want %d", n, k, prev, n)
			}
		}
	}
}
