package mpi

import (
	"bytes"
	"errors"
	"testing"
)

// Session-layer unit tests: sequence assignment, the bounded replay buffer
// (record/trim/pending/gap/evict), duplicate suppression and ack cadence on
// the receive side, and the CRC32C integrity check on the wire.

func sessionBuf(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestSessionReplayRecordTrimPending(t *testing.T) {
	var s sendSession
	for i := 1; i <= 5; i++ {
		seq := s.nextSeq()
		if seq != uint64(i) {
			t.Fatalf("nextSeq = %d, want %d", seq, i)
		}
		s.record(seq, sessionBuf(10, byte(i)))
	}
	if s.replayBytes != 50 {
		t.Fatalf("replayBytes = %d, want 50", s.replayBytes)
	}

	// Peer acked through 3: frames 1-3 are released, 4-5 retransmittable.
	pend, ok := s.pending(3)
	if !ok {
		t.Fatal("pending(3) reported an impossible resume on a gapless session")
	}
	if len(pend) != 2 || pend[0].seq != 4 || pend[1].seq != 5 {
		t.Fatalf("pending(3) = %+v, want seqs [4 5]", pend)
	}
	if s.replayBytes != 20 {
		t.Fatalf("replayBytes after trim = %d, want 20", s.replayBytes)
	}

	// trim is cumulative and idempotent past the end.
	s.trim(99)
	if len(s.replay) != 0 || s.replayBytes != 0 {
		t.Fatalf("trim(99) left %d frames / %d bytes", len(s.replay), s.replayBytes)
	}
}

func TestSessionReplayGapBlocksResume(t *testing.T) {
	var s sendSession
	s.record(s.nextSeq(), sessionBuf(8, 1)) // seq 1, captured
	s.record(s.nextSeq(), sessionBuf(8, 2)) // seq 2, captured
	s.gap(s.nextSeq())                      // seq 3: streamed large frame
	s.record(s.nextSeq(), sessionBuf(8, 4)) // seq 4, captured

	// Peer missing the uncaptured frame 3: resume is honestly impossible.
	if _, ok := s.pending(2); ok {
		t.Fatal("pending(2) allowed a resume across an uncaptured gap")
	}
	// Peer acked past the gap: only frame 4 needs retransmitting.
	pend, ok := s.pending(3)
	if !ok {
		t.Fatal("pending(3) refused although the gap is acknowledged")
	}
	if len(pend) != 1 || pend[0].seq != 4 {
		t.Fatalf("pending(3) = %+v, want seq [4]", pend)
	}
	s.drop()
	if s.replay != nil || s.replayBytes != 0 {
		t.Fatalf("drop left %d frames / %d bytes", len(s.replay), s.replayBytes)
	}
}

// TestSessionReplayEvictsOldestToGap: exceeding the byte budget evicts the
// oldest captured frames into gaps — the session stays bounded, and a resume
// is only possible if the peer has acked past everything evicted.
func TestSessionReplayEvictsOldestToGap(t *testing.T) {
	var s sendSession
	const frameSize = 1 << 20 // 1 MiB chunks fill the 8 MiB budget fast
	n := replayMaxBytes/frameSize + 3
	for i := 0; i < n; i++ {
		s.record(s.nextSeq(), sessionBuf(frameSize, byte(i)))
	}
	if s.replayBytes > replayMaxBytes {
		t.Fatalf("replayBytes = %d exceeds budget %d", s.replayBytes, replayMaxBytes)
	}
	if s.gapSeq == 0 {
		t.Fatal("eviction did not record a gap")
	}
	if _, ok := s.pending(s.gapSeq - 1); ok {
		t.Fatal("resume below the evicted frames must be refused")
	}
	pend, ok := s.pending(s.gapSeq)
	if !ok {
		t.Fatal("resume at the newest gap must be possible")
	}
	for _, e := range pend {
		if e.seq <= s.gapSeq {
			t.Fatalf("retained frame %d at or below gap %d", e.seq, s.gapSeq)
		}
	}
	s.drop()
}

func TestRecvSessionDupAndAckCadence(t *testing.T) {
	var rs recvSession
	acks := 0
	for i := 1; i <= 3*ackEvery; i++ {
		dup, ackNow := rs.note(uint64(i))
		if dup {
			t.Fatalf("fresh seq %d flagged duplicate", i)
		}
		if ackNow {
			acks++
		}
	}
	if acks != 3 {
		t.Fatalf("got %d acks over %d frames, want 3 (every %d)", acks, 3*ackEvery, ackEvery)
	}
	// A retransmitted tail overlaps what already arrived: every replayed
	// frame at or below seqIn must be suppressed.
	for i := uint64(1); i <= rs.seqIn; i += 7 {
		if dup, _ := rs.note(i); !dup {
			t.Fatalf("replayed seq %d not flagged duplicate", i)
		}
	}
	if dup, _ := rs.note(rs.seqIn + 1); dup {
		t.Fatal("first fresh frame after the replayed tail flagged duplicate")
	}
}

// TestWireCRCDetectsBitFlip: a v2 raw frame with one payload bit flipped in
// flight must surface as *CorruptFrameError naming the frame, not as silent
// data corruption or a generic decode failure.
func TestWireCRCDetectsBitFlip(t *testing.T) {
	var conn bytes.Buffer
	w := newWireWriter(&conn, wireVersion2)
	rd := newWireReader(&conn)
	rd.v1, rd.v2 = true, true

	payload := []float64{1, 2, 3, 4}
	f := frame{Ctx: 1, Src: 0, WSrc: 0, Dst: 1, Tag: 5, Val: payload, HasVal: true}

	// Clean round trip first: the CRC must accept what the writer produced.
	buf, err := w.encodeFrame(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.writeEncoded(buf); err != nil {
		t.Fatal(err)
	}
	putWireBuf(buf)
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	g, seq, err := rd.readFrame()
	if err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	g.release()

	// Same frame with the corruption armed: the reader must detect it.
	w.corruptNext = true
	buf, err = w.encodeFrame(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.writeEncoded(buf); err != nil {
		t.Fatal(err)
	}
	putWireBuf(buf)
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	_, _, err = rd.readFrame()
	var cerr *CorruptFrameError
	if !errors.As(err, &cerr) {
		t.Fatalf("corrupted frame read: got %v, want *CorruptFrameError", err)
	}
	if cerr.Seq != 2 || cerr.Tag != 5 || cerr.Dst != 1 {
		t.Fatalf("corrupt-frame attribution: %+v", cerr)
	}
	if cerr.Want == cerr.Got {
		t.Fatalf("error carries identical CRCs: %+v", cerr)
	}
}

// TestWireCRCDetectsBitFlipDirect: the streamed large-frame path computes and
// verifies the same CRC as the captured path.
func TestWireCRCDetectsBitFlipDirect(t *testing.T) {
	var conn bytes.Buffer
	w := newWireWriter(&conn, wireVersion2)
	rd := newWireReader(&conn)
	rd.v1, rd.v2 = true, true

	payload := make([]float64, 64<<10/8*3) // 3x replayFrameMax: always streamed
	for i := range payload {
		payload[i] = float64(i)
	}
	f := frame{Ctx: 1, Src: 1, WSrc: 1, Dst: 0, Tag: 9, Val: payload, HasVal: true}

	if err := w.writeFrameDirect(f, 7); err != nil {
		t.Fatal(err)
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	g, seq, err := rd.readFrame()
	if err != nil || seq != 7 {
		t.Fatalf("clean direct frame: seq %d, err %v", seq, err)
	}
	g.release()

	w.corruptNext = true
	if err := w.writeFrameDirect(f, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	_, _, err = rd.readFrame()
	var cerr *CorruptFrameError
	if !errors.As(err, &cerr) {
		t.Fatalf("corrupted direct frame read: got %v, want *CorruptFrameError", err)
	}
	if cerr.Seq != 8 {
		t.Fatalf("corrupt-frame seq = %d, want 8", cerr.Seq)
	}
}
