package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Failure semantics on the vector data plane (satellite d): the large-payload
// algorithms are new protocol code, so the failure model must be re-proven on
// them specifically — a rank dying mid-ring and a chunk vanishing
// mid-pipeline are different stall shapes than anything the scalar
// collectives produce.

// TestKillRankMidAllreduceSlice: a seeded fault plan kills one rank on its
// second ring send, in the middle of the reduce-scatter phase. Under
// WithRecovery every survivor's AllreduceSlice must return a retryable
// *RankFailedError — not hang, not return a partial sum — on both the local
// and the TCP transport. Survivors follow the ULFM lifecycle: the ones that
// observe the failure directly Revoke the communicator, which kicks any
// survivor still deep in the ring protocol out with a Revoked
// *RankFailedError.
func TestKillRankMidAllreduceSlice(t *testing.T) {
	prev := SetCollectiveTuning(CollectiveTuning{VectorThreshold: 64, BcastChunk: 48})
	defer SetCollectiveTuning(prev)

	const np = 4
	const victim = 2
	const size = 2048 // far above the threshold: the ring path is engaged
	plan := FaultPlan{
		Seed:  7,
		Rules: []FaultRule{{Src: victim, Dst: AnySource, Tag: tagVecRed, SkipFirst: 1, Action: FaultKillRank}},
	}
	for _, l := range recoveryLaunchers {
		l := l
		t.Run(l.name, func(t *testing.T) {
			var mu sync.Mutex
			observed := map[int]error{}
			err := runWithWatchdog(t, 30*time.Second, func() error {
				return l.run(np, func(c *Comm) error {
					v := make([]float64, size)
					for i := range v {
						v[i] = float64(c.Rank() + 1)
					}
					res, rerr := AllreduceSlice(c, v, func(a, b float64) float64 { return a + b })
					if c.Rank() == victim {
						if rerr == nil {
							return fmt.Errorf("victim: AllreduceSlice succeeded after its own kill")
						}
						return rerr // dies as intended; recovery records it
					}
					mu.Lock()
					observed[c.Rank()] = rerr
					mu.Unlock()
					if rerr == nil {
						return fmt.Errorf("survivor %d: AllreduceSlice returned %d elements with a dead peer", c.Rank(), len(res))
					}
					// Unblock any survivor still inside the ring, then report
					// the world recovered.
					return c.Revoke()
				}, WithFaults(plan), WithRecovery())
			})
			if err != nil {
				t.Fatalf("recovered run should report success, got %v", err)
			}
			if len(observed) != np-1 {
				t.Fatalf("recorded %d survivor outcomes, want %d", len(observed), np-1)
			}
			for rank, rerr := range observed {
				var rfe *RankFailedError
				if !errors.As(rerr, &rfe) {
					t.Errorf("survivor %d: want *RankFailedError, got %v", rank, rerr)
				}
			}
		})
	}
}

// TestDeadlineMidPipelinedBcastSlice: a dropped chunk stalls the broadcast
// pipeline — one subtree waits forever for a segment that was injected away.
// WithDeadline must convert the stall into the world's single *DeadlineError,
// whose blocked-operation snapshot names a Recv under the pipeline's tag.
func TestDeadlineMidPipelinedBcastSlice(t *testing.T) {
	prev := SetCollectiveTuning(CollectiveTuning{VectorThreshold: 8, BcastChunk: 16})
	defer SetCollectiveTuning(prev)

	const np = 4
	const size = 200 // 13 chunks of 16
	// Root's tagVecBcast stream to its two tree kids interleaves as header→1,
	// header→2, then chunk→1, chunk→2 per chunk: 2 + 13·2 = 28 frames.
	// Dropping the 28th — the final chunk into leaf rank 2 — leaves that rank
	// blocked forever on a receive nothing will ever satisfy. (Dropping a
	// mid-stream chunk is detected as a length-mismatch protocol error
	// instead, because the FIFO shifts a later chunk into the gap.)
	plan := FaultPlan{
		Rules: []FaultRule{{Src: 0, Dst: AnySource, Tag: tagVecBcast, SkipFirst: 27, Count: 1, Action: FaultDrop}},
	}
	for _, tc := range []struct {
		name string
		run  func(np int, main func(c *Comm) error, opts ...Option) error
	}{
		{"local", Run},
		{"tcp", RunTCP},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := runWithWatchdog(t, 20*time.Second, func() error {
				return tc.run(np, func(c *Comm) error {
					v := make([]float64, size)
					for i := range v {
						v[i] = float64(i)
					}
					_, berr := BcastSlice(c, v, 0)
					return berr
				}, WithFaults(plan), WithDeadline(150*time.Millisecond))
			})

			var derr *DeadlineError
			if !errors.As(err, &derr) {
				t.Fatalf("err = %v, want a *DeadlineError in the chain", err)
			}
			if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, ErrWorldAborted) {
				t.Fatalf("err = %v, want ErrDeadlineExceeded and ErrWorldAborted identities", err)
			}
			// The snapshot pinpoints the stall: somebody is blocked in a Recv
			// under the pipeline's reserved tag.
			found := false
			for _, op := range derr.Blocked {
				if op.Op == "Recv" && op.Tag == tagVecBcast {
					found = true
				}
			}
			if !found {
				t.Fatalf("blocked snapshot %v names no Recv under tagVecBcast", derr.Blocked)
			}
		})
	}
}
