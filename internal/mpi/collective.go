package mpi

import "fmt"

// Collective operations. All members of a communicator must call each
// collective, and must make their collective calls in the same order — the
// same rule MPI imposes. The implementations below use only the runtime's
// own point-to-point layer (with reserved tags), which is both how early
// MPI implementations worked and how the master-worker patternlet teaches
// students collectives *could* be built. Building on that layer also means
// the failure model comes for free: a collective stalled on a failed rank
// fails with ErrWorldAborted when the world is revoked, and WithDeadline
// reports it as a blocked Recv under the collective's reserved tag.
//
// On a communicator whose ranks span more than one modeled node (see
// WithTopology and the cluster package), the default algorithms of Bcast,
// Reduce, Allreduce, and Barrier switch to the two-level hierarchical
// schedules in hier.go; the flat algorithms below remain the building
// blocks those schedules run within each level, and the fallback whenever
// the topology is degenerate or hierarchy is disabled.

// Reserved tags for the extended collectives (the patternlet set's tags
// live in message.go).
const (
	tagExscan  = -10
	tagRedScat = -11
	tagDissem  = -12
)

// Barrier blocks until every rank of the communicator has entered it:
// MPI_Barrier. It is implemented as a dissemination barrier — ceil(log2 n)
// rounds, in each of which every rank signals a rank a power-of-two ahead
// and waits on the mirror-image rank behind — so its critical path is
// O(log n) rounds rather than the O(n) of the linear gather-and-release
// (still available as BarrierWith(BarrierLinear) for the ablation study).
// On a multi-node communicator it runs the two-level hierarchical barrier
// instead: gather-and-release within each node around a dissemination
// barrier among the node leaders.
func (c *Comm) Barrier() error {
	if h := c.hier(); h != nil {
		return c.hierBarrier(h)
	}
	return c.disseminationBarrier()
}

// linearBarrier gathers arrival tokens at rank 0 and broadcasts a release:
// the textbook O(n)-round algorithm, kept for BarrierWith(BarrierLinear).
func (c *Comm) linearBarrier() error {
	const token = 0
	if c.rank == 0 {
		for src := 1; src < c.Size(); src++ {
			if _, err := c.recvReserved(src, tagBarrier, nil); err != nil {
				return err
			}
		}
		for dst := 1; dst < c.Size(); dst++ {
			if err := c.sendReserved(dst, tagBarrier, token); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.sendReserved(0, tagBarrier, token); err != nil {
		return err
	}
	_, err := c.recvReserved(0, tagBarrier, nil)
	return err
}

// sendReserved sends a value under a reserved (negative) tag.
func (c *Comm) sendReserved(dest, tag int, v any) error {
	return c.sendValue(dest, tag, v)
}

// recvReserved receives a value under a reserved tag; v may be nil to
// discard the payload.
func (c *Comm) recvReserved(source, tag int, v any) (Status, error) {
	return c.recv(source, tag, v)
}

// Bcast distributes root's value v to every rank and returns it: MPI_Bcast
// (comm.bcast in mpi4py). Non-root ranks' v arguments are ignored. The
// value travels down a binary tree rooted at root — O(log n) communication
// rounds — or, on a multi-node communicator, down the two-level hierarchy
// (leaders first, then within each node).
func Bcast[T any](c *Comm, v T, root int) (T, error) {
	var zero T
	if err := c.checkRank(root); err != nil {
		return zero, err
	}
	if h := c.hier(); h != nil {
		return hierBcast(c, h, v, root)
	}
	size := c.Size()
	vrank := toVirtual(c.rank, root, size)
	if vrank != 0 {
		parent := toReal(treeParent(vrank), root, size)
		if _, err := c.recvReserved(parent, tagBcast, &v); err != nil {
			return zero, err
		}
	}
	for _, kid := range treeChildren(vrank, size) {
		if err := c.sendReserved(toReal(kid, root, size), tagBcast, v); err != nil {
			return zero, err
		}
	}
	return v, nil
}

// ReduceAlgorithm selects how Reduce combines values, exposed so the
// benchmark harness can compare the two classic strategies.
type ReduceAlgorithm int

const (
	// ReduceLinear has every rank send its value to root, which combines
	// them in rank order: O(n) messages at root, deterministic order.
	ReduceLinear ReduceAlgorithm = iota
	// ReduceTree combines values up a binary tree: O(log n) rounds.
	ReduceTree
)

// Reduce combines every rank's v with the given function and delivers the
// result to root: MPI_Reduce. Ranks other than root receive the zero value.
// combine must be associative. The default algorithm is the binary tree
// (the same shape Bcast uses): O(log n) communication rounds on the
// critical path. Programs that need the strict rank-order fold
// v0 ⊕ v1 ⊕ ... ⊕ v(n-1) — e.g. to make a non-associative floating-point
// sum deterministic against a sequential reference — should call
// ReduceWith(..., ReduceLinear).
func Reduce[T any](c *Comm, v T, combine func(a, b T) T, root int) (T, error) {
	return ReduceWith(c, v, combine, root, ReduceTree)
}

// ReduceWith is Reduce with an explicit algorithm choice. Only the default
// tree algorithm is eligible for the hierarchical two-level schedule:
// ReduceLinear's contract is the strict rank-order fold, which a grouped
// intra-node pre-reduction would reorder.
func ReduceWith[T any](c *Comm, v T, combine func(a, b T) T, root int, algo ReduceAlgorithm) (T, error) {
	var zero T
	if err := c.checkRank(root); err != nil {
		return zero, err
	}
	if algo == ReduceTree {
		if h := c.hier(); h != nil {
			return hierReduce(c, h, v, combine, root)
		}
	}
	size := c.Size()
	switch algo {
	case ReduceLinear:
		if c.rank != root {
			if err := c.sendReserved(root, tagReduce, v); err != nil {
				return zero, err
			}
			return zero, nil
		}
		// Root collects every contribution, then folds in strict rank
		// order, so the result is deterministic even for non-associative
		// floating-point combines.
		vals := make([]T, size)
		vals[root] = v
		for r := 0; r < size; r++ {
			if r == root {
				continue
			}
			if _, err := c.recvReserved(r, tagReduce, &vals[r]); err != nil {
				return zero, err
			}
		}
		acc := vals[0]
		for r := 1; r < size; r++ {
			acc = combine(acc, vals[r])
		}
		return acc, nil
	case ReduceTree:
		vrank := toVirtual(c.rank, root, size)
		acc := v
		for _, kid := range treeChildren(vrank, size) {
			var kv T
			if _, err := c.recvReserved(toReal(kid, root, size), tagReduce, &kv); err != nil {
				return zero, err
			}
			acc = combine(acc, kv)
		}
		if vrank != 0 {
			parent := toReal(treeParent(vrank), root, size)
			if err := c.sendReserved(parent, tagReduce, acc); err != nil {
				return zero, err
			}
			return zero, nil
		}
		return acc, nil
	default:
		return zero, fmt.Errorf("mpi: unknown reduce algorithm %d", algo)
	}
}

// Allreduce combines every rank's v and delivers the result to all ranks:
// MPI_Allreduce, implemented as a tree Reduce-to-0 followed by a tree
// Bcast — O(log n) rounds end to end. On a multi-node communicator it runs
// the two-level schedule instead: reduce within each node, allreduce among
// the leaders, broadcast within each node — exactly one leader-to-leader
// exchange crosses the node boundary.
func Allreduce[T any](c *Comm, v T, combine func(a, b T) T) (T, error) {
	if h := c.hier(); h != nil {
		return hierAllreduce(c, h, v, combine)
	}
	red, err := Reduce(c, v, combine, 0)
	if err != nil {
		var zero T
		return zero, err
	}
	return Bcast(c, red, 0)
}

// Scatter hands out one element of root's items slice to each rank (rank i
// receives items[i]) and returns the local element: MPI_Scatter
// (comm.scatter). items is ignored at non-root ranks; at root it must have
// exactly Size() elements.
func Scatter[T any](c *Comm, items []T, root int) (T, error) {
	var zero T
	if err := c.checkRank(root); err != nil {
		return zero, err
	}
	if c.rank == root {
		if len(items) != c.Size() {
			return zero, fmt.Errorf("mpi: Scatter needs exactly %d items at root, got %d", c.Size(), len(items))
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.sendReserved(r, tagScatter, items[r]); err != nil {
				return zero, err
			}
		}
		return items[root], nil
	}
	var v T
	if _, err := c.recvReserved(root, tagScatter, &v); err != nil {
		return zero, err
	}
	return v, nil
}

// Gather collects every rank's v at root, returning the slice indexed by
// rank at root and nil elsewhere: MPI_Gather (comm.gather).
func Gather[T any](c *Comm, v T, root int) ([]T, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	if c.rank != root {
		if err := c.sendReserved(root, tagGather, v); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([]T, c.Size())
	out[root] = v
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if _, err := c.recvReserved(r, tagGather, &out[r]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Allgather collects every rank's v at every rank: MPI_Allgather,
// implemented as the classic ring. In step s each rank forwards the block
// it learned in step s-1 (starting with its own) to its right neighbour
// and receives block (rank-s-1) mod n from its left neighbour, so after
// n-1 steps every rank holds all n blocks. The ring moves n(n-1) messages
// like the naive all-to-all but its critical path is n-1 single-hop rounds,
// every link carries exactly one block per step (bandwidth-optimal), and no
// rank is a bottleneck — unlike the old gather-to-root-then-broadcast,
// whose root serialized n-1 receives and re-sent the whole vector.
func Allgather[T any](c *Comm, v T) ([]T, error) {
	n := c.Size()
	out := make([]T, n)
	out[c.rank] = v
	left, right := ringNeighbors(c.rank, n)
	for step := 0; step < n-1; step++ {
		sendIdx := (c.rank - step + n*n) % n
		recvIdx := (c.rank - step - 1 + n*n) % n
		// Sends are buffered, so send-then-receive cannot deadlock the ring.
		if err := c.sendReserved(right, tagAllgat, out[sendIdx]); err != nil {
			return nil, err
		}
		if _, err := c.recvReserved(left, tagAllgat, &out[recvIdx]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Alltoall performs the full exchange: rank i's items[j] is delivered to
// rank j, which receives it at position i of its result: MPI_Alltoall.
// items must have exactly Size() elements on every rank.
func Alltoall[T any](c *Comm, items []T) ([]T, error) {
	if len(items) != c.Size() {
		return nil, fmt.Errorf("mpi: Alltoall needs exactly %d items, got %d", c.Size(), len(items))
	}
	out := make([]T, c.Size())
	out[c.rank] = items[c.rank]
	// Send everything first (sends are buffered), then receive; matching
	// by source slots each arrival into place without deadlock.
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		if err := c.sendReserved(r, tagAll, items[r]); err != nil {
			return nil, err
		}
	}
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		if _, err := c.recvReserved(r, tagAll, &out[r]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Scan computes the inclusive prefix reduction: rank i receives
// v0 ⊕ v1 ⊕ ... ⊕ vi. MPI_Scan, implemented as a linear chain.
func Scan[T any](c *Comm, v T, combine func(a, b T) T) (T, error) {
	acc := v
	if c.rank > 0 {
		var prefix T
		if _, err := c.recvReserved(c.rank-1, tagScan, &prefix); err != nil {
			var zero T
			return zero, err
		}
		acc = combine(prefix, v)
	}
	if c.rank < c.Size()-1 {
		if err := c.sendReserved(c.rank+1, tagScan, acc); err != nil {
			var zero T
			return zero, err
		}
	}
	return acc, nil
}

// Exscan computes the exclusive prefix reduction: rank 0 receives the zero
// value (and ok=false, mirroring MPI's undefined receive buffer on rank 0),
// rank i>0 receives v0 ⊕ ... ⊕ v(i-1): MPI_Exscan.
func Exscan[T any](c *Comm, v T, combine func(a, b T) T) (T, bool, error) {
	var zero T
	// Chain: receive the running prefix from the left, forward prefix ⊕ v
	// to the right.
	var prefix T
	have := false
	if c.rank > 0 {
		if _, err := c.recvReserved(c.rank-1, tagExscan, &prefix); err != nil {
			return zero, false, err
		}
		have = true
	}
	if c.rank < c.Size()-1 {
		next := v
		if have {
			next = combine(prefix, v)
		}
		if err := c.sendReserved(c.rank+1, tagExscan, next); err != nil {
			return zero, false, err
		}
	}
	if !have {
		return zero, false, nil
	}
	return prefix, true, nil
}

// ReduceScatterBlock combines every rank's items elementwise and leaves
// element i at rank i: MPI_Reduce_scatter_block with one element per rank.
// items must have exactly Size() elements on every rank.
func ReduceScatterBlock[T any](c *Comm, items []T, combine func(a, b T) T) (T, error) {
	var zero T
	if len(items) != c.Size() {
		return zero, fmt.Errorf("mpi: ReduceScatterBlock needs exactly %d items, got %d", c.Size(), len(items))
	}
	// Direct algorithm: every rank sends items[j] to rank j, then combines
	// what it receives with its own element. Deterministic rank order.
	for j := 0; j < c.Size(); j++ {
		if j == c.rank {
			continue
		}
		if err := c.sendReserved(j, tagRedScat, items[j]); err != nil {
			return zero, err
		}
	}
	contributions := make([]T, c.Size())
	contributions[c.rank] = items[c.rank]
	for j := 0; j < c.Size(); j++ {
		if j == c.rank {
			continue
		}
		if _, err := c.recvReserved(j, tagRedScat, &contributions[j]); err != nil {
			return zero, err
		}
	}
	acc := contributions[0]
	for j := 1; j < c.Size(); j++ {
		acc = combine(acc, contributions[j])
	}
	return acc, nil
}

// BarrierAlgorithm selects a Barrier implementation for the ablation
// benchmarks.
type BarrierAlgorithm int

const (
	// BarrierLinear gathers arrival tokens at rank 0 and broadcasts a
	// release: 2(n-1) messages, O(n) rounds at the root.
	BarrierLinear BarrierAlgorithm = iota
	// BarrierDissemination is the classic ceil(log2 n)-round algorithm:
	// in round k each rank signals the rank 2^k ahead and waits for the
	// rank 2^k behind. This is what Barrier itself runs on a flat
	// communicator.
	BarrierDissemination
)

// BarrierWith is Barrier with an explicit algorithm choice. The explicit
// algorithms are always flat — they exist for the ablation study, so they
// must run the algorithm they name.
func (c *Comm) BarrierWith(algo BarrierAlgorithm) error {
	switch algo {
	case BarrierLinear:
		return c.linearBarrier()
	case BarrierDissemination:
		return c.disseminationBarrier()
	default:
		return fmt.Errorf("mpi: unknown barrier algorithm %d", algo)
	}
}

// disseminationBarrier runs the ceil(log2 n)-round dissemination algorithm.
// Each round's token carries its distance so a skewed world surfaces as a
// mismatch error instead of silent miscounting — including the skew a
// fault-injected duplicate or drop produces, which the failure suite uses
// to push collectives off their happy path deliberately.
func (c *Comm) disseminationBarrier() error {
	n := c.Size()
	for dist := 1; dist < n; dist *= 2 {
		to := (c.rank + dist) % n
		from := (c.rank - dist + n) % n
		if err := c.sendReserved(to, tagDissem, dist); err != nil {
			return err
		}
		var got int
		if _, err := c.recvReserved(from, tagDissem, &got); err != nil {
			return err
		}
		if got != dist {
			return fmt.Errorf("mpi: dissemination barrier round mismatch: got %d, want %d", got, dist)
		}
	}
	return nil
}
