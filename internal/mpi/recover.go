package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Survive-and-continue recovery (the opt-in half of the failure model).
// Under WithRecovery a rank's failure no longer revokes the world: the
// runtime records the failed rank, wakes every survivor blocked on a
// communicator operation, and surfaces the failure as a retryable
// *RankFailedError. Survivors then follow the ULFM lifecycle the recovery
// API exposes: Revoke the working communicator (so stragglers deep in the
// old protocol fail out too), Agree on the failed set, Shrink to a dense
// communicator of survivors, restore state from a checkpoint, and continue.
//
// The design keeps the healthy path untouched: every recovery check is
// gated on a single atomic load of an event counter that stays zero until
// the first failure or revoke, so a recovery-enabled world that never
// fails pays (and is pinned to) the same ping-pong cost as a plain one.

// maxRecoveryRanks bounds WithRecovery worlds: the agreement protocol
// exchanges the failed set as a 64-bit rank bitmask.
const maxRecoveryRanks = 64

// RankFailedError reports that a peer rank failed while the world runs in
// recovery mode. It is retryable: the world is still alive, and the caller
// should Revoke its working communicator, Shrink, restore from a
// checkpoint, and continue on the surviving ranks. It matches ErrRankFailed
// under errors.Is, and Unwrap exposes the first failed rank's own error
// (when known locally), so e.g. an injected kill still matches
// ErrRankKilled through it.
type RankFailedError struct {
	Ranks   []int // world ranks known failed when the operation was interrupted
	Revoked bool  // the operation's communicator had been revoked
	cause   error // first failed rank's own error; may be nil on remote observers
}

func (e *RankFailedError) Error() string {
	if len(e.Ranks) == 0 && !e.Revoked {
		// A respawn restored the world's membership while the operation was
		// pending (or the communicator predates the current epoch): nobody is
		// failed now, but the operation cannot complete against the old view.
		return "mpi: world membership changed during the operation; re-form with Restored (or Shrink) and retry"
	}
	what := fmt.Sprintf("mpi: rank(s) %v failed", e.Ranks)
	if e.Revoked {
		what = fmt.Sprintf("mpi: communicator revoked after rank failure(s) %v", e.Ranks)
	}
	return what + "; world continues under recovery (Agree/Shrink to proceed)"
}

func (e *RankFailedError) Is(target error) bool { return target == ErrRankFailed }
func (e *RankFailedError) Unwrap() error        { return e.cause }

// WithRecovery opts the world into survive-and-continue semantics: a rank
// that returns an error or panics is recorded as failed instead of revoking
// the world; survivors' pending operations return a retryable
// *RankFailedError, and the Revoke/Agree/Shrink API lets them re-form and
// continue. Run and RunTCP report success if at least one rank completes
// and the world was never revoked outright. Limited to 64 ranks (the
// agreement bitmask); explicit aborts and deadline breaches still revoke
// the world as before.
func WithRecovery() Option {
	return func(c *config) { c.recovery = true }
}

// recoveryState is the per-World failure ledger plus the agreement engine
// binding. In-process worlds (Run) share one instance across all ranks and
// use the local engine; each JoinTCP process holds its own, synchronized
// through hub control frames.
type recoveryState struct {
	world *World

	// events gates every recovery check on the hot paths: it is bumped on
	// each failure and revoke, and while it is zero all checks short-circuit
	// on one atomic load.
	events      atomic.Uint64
	failVersion atomic.Uint64 // bumped on failures only; pending ops capture it at start

	mu      sync.Mutex
	failed  map[int]error // world rank -> its failure (or a remote description)
	mask    uint64        // bitmask form of failed's keys
	revoked map[int64]bool

	// epoch counts full-width membership restorations (respawns). Operations
	// on communicators created in an older epoch fail with a retryable
	// membership-changed error; Restored hands back a current-epoch
	// communicator. restoreCond (on mu) wakes Restored callers whenever the
	// failed set or the epoch changes.
	epoch       int
	restoreCond *sync.Cond

	engine   *agreeEngine      // in-process worlds
	ctrlSend func(frame) error // TCP worlds: raw control-plane sender to the hub
	downErr  error             // latched when the world aborts; fails pending agreements
	waiters  map[agreeKey]chan agreeOutcome
}

func newRecoveryState(w *World) *recoveryState {
	r := &recoveryState{
		world:   w,
		failed:  make(map[int]error),
		revoked: make(map[int64]bool),
		waiters: make(map[agreeKey]chan agreeOutcome),
	}
	r.restoreCond = sync.NewCond(&r.mu)
	return r
}

// rankFailed records a failed world rank and interrupts every survivor's
// pending operations. Safe to call from any goroutine; duplicates are
// no-ops. cause may be the rank's own error (local observation) or a
// description built from a control frame (TCP).
func (w *World) rankFailed(rank int, cause error) {
	r := w.recov
	r.mu.Lock()
	if _, dup := r.failed[rank]; dup {
		r.mu.Unlock()
		return
	}
	r.failed[rank] = cause
	r.mask |= 1 << uint(rank)
	r.mu.Unlock()
	r.failVersion.Add(1)
	r.events.Add(1)
	for _, b := range w.boxes {
		if b != nil {
			b.poke()
		}
	}
	if r.engine != nil {
		r.engine.reevaluate()
	}
	if w.peerFailed != nil {
		// Transport hook: the shm transport reclaims the failed rank's
		// outbound staging region and unwedges blocked senders.
		w.peerFailed(rank)
	}
}

// rankRejoined restores a respawned rank to the world's membership and bumps
// the membership epoch: the failed set forgets the rank, every pending
// operation is interrupted with a retryable membership-changed error (so no
// survivor keeps waiting against the old view), and open agreements — whose
// member lists describe the old epoch — are interrupted for retry. epoch is
// the coordinator-dictated epoch (the hub's, on TCP) or -1 to auto-increment
// (in-process worlds, where all ranks share this state).
func (w *World) rankRejoined(rank int, epoch int) {
	r := w.recov
	if r == nil {
		return
	}
	r.mu.Lock()
	if epoch < 0 {
		r.epoch++
	} else if epoch > r.epoch {
		r.epoch = epoch
	}
	delete(r.failed, rank)
	r.mask &^= 1 << uint(rank)
	r.mu.Unlock()
	r.failVersion.Add(1)
	r.events.Add(1)
	for _, b := range w.boxes {
		if b != nil {
			b.poke()
		}
	}
	r.restoreCond.Broadcast()
	cause := &RankFailedError{} // membership changed; nobody failed now
	if r.engine != nil {
		r.engine.interrupt(cause)
	}
	r.drainWaiters(cause)
	if w.peerRejoined != nil {
		// Transport hook: the shm transport pins the pair to the rejoined
		// rank onto the TCP fallback (the respawned process shares no
		// segment with the survivors).
		w.peerRejoined(rank)
	}
}

// seedEpoch installs membership state learned at join time: a respawned TCP
// worker starts life already in the hub's epoch, with the hub's view of the
// still-failed ranks. Bumping events arms the recovery checks so operations
// on pre-epoch communicators are interrupted from the first call.
func (r *recoveryState) seedEpoch(epoch int, failedMask uint64) {
	if epoch <= 0 && failedMask == 0 {
		return
	}
	r.mu.Lock()
	if epoch > r.epoch {
		r.epoch = epoch
	}
	r.mu.Unlock()
	r.events.Add(1)
	for rank := 0; rank < maxRecoveryRanks; rank++ {
		if failedMask&(1<<uint(rank)) != 0 {
			r.world.rankFailed(rank, fmt.Errorf("%w: rank %d (failed before this process joined)", ErrRankFailed, rank))
		}
	}
}

// epochSnapshot reports the current membership epoch.
func (r *recoveryState) epochSnapshot() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// drainWaiters releases every hub-agreement waiter with err, without
// latching the recovery state down (unlike abortPending): the waiters retry.
func (r *recoveryState) drainWaiters(err error) {
	r.mu.Lock()
	waiters := r.waiters
	r.waiters = make(map[agreeKey]chan agreeOutcome)
	r.mu.Unlock()
	for _, ch := range waiters {
		ch <- agreeOutcome{err: err}
	}
}

// isFailed reports whether a world rank is in the failed set. Blocked shm
// senders consult it so a send to a failed peer drops instead of spinning.
func (r *recoveryState) isFailed(rank int) bool {
	if r.events.Load() == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, bad := r.failed[rank]
	return bad
}

// failedSnapshot returns the failed world ranks, sorted.
func (r *recoveryState) failedSnapshot() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.failed))
	for rank := range r.failed {
		out = append(out, rank)
	}
	sort.Ints(out)
	return out
}

// maskSnapshot returns the failed set as a bitmask.
func (r *recoveryState) maskSnapshot() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mask
}

// rfeLocked builds a RankFailedError from the current failed set. Caller
// holds r.mu.
func (r *recoveryState) rfeLocked(revoked bool) *RankFailedError {
	ranks := make([]int, 0, len(r.failed))
	for rank := range r.failed {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	var cause error
	if len(ranks) > 0 {
		cause = r.failed[ranks[0]]
	}
	return &RankFailedError{Ranks: ranks, Revoked: revoked, cause: cause}
}

// opErr decides whether a blocked receive/probe must be interrupted. An
// operation fails when its communicator was revoked; when any rank failed
// after the operation started (startFail is the failVersion captured at op
// entry) — the "pending operations are interrupted" rule; when its named
// source is a failed rank; or, for AnySource, when ANY other member of the
// communicator is failed — ULFM's wildcard rule: the match can never again
// be guaranteed once a potential sender is dead, and deciding by the failed
// set (not by when the receive started) closes the race where a failure
// lands between a caller's own liveness check and its receive. Named-source
// operations started after a failure otherwise proceed — survivors must be
// able to talk to each other while recovering.
func (r *recoveryState) opErr(c *Comm, srcWorld int, startFail uint64) error {
	if r.events.Load() == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctxRevokedLocked(c.ctx) {
		return r.rfeLocked(true)
	}
	if c.epoch < r.epoch {
		// The communicator predates a respawn: its view of the membership is
		// stale even though nobody may be failed right now. Re-form through
		// Restored. (Checked before the empty-failed shortcut: a rejoin
		// empties the failed set but must still interrupt pending work.)
		return r.rfeLocked(false)
	}
	if r.failVersion.Load() > startFail {
		return r.rfeLocked(false)
	}
	if len(r.failed) == 0 {
		return nil
	}
	if srcWorld >= 0 {
		if _, bad := r.failed[srcWorld]; bad {
			return r.rfeLocked(false)
		}
		return nil
	}
	// AnySource: any failed member of this communicator poisons the match.
	for _, wr := range c.ranks {
		if _, bad := r.failed[wr]; bad {
			return r.rfeLocked(false)
		}
	}
	return nil
}

// sendErr rejects sends into a revoked context, on a stale-epoch
// communicator, or to a failed rank.
func (r *recoveryState) sendErr(c *Comm, dstWorld int) error {
	if r.events.Load() == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctxRevokedLocked(c.ctx) {
		return r.rfeLocked(true)
	}
	if c.epoch < r.epoch {
		return r.rfeLocked(false)
	}
	if _, bad := r.failed[dstWorld]; bad {
		return r.rfeLocked(false)
	}
	return nil
}

// ctxRevokedLocked reports whether the context, or any ancestor it is an
// internal child of, is revoked. The runtime's own sub-communicators — the
// hierarchical intra-node/leader comms and the progress engine's shadow
// comm, living at the reserved context digits — are implementation details
// of their parent's collectives, so revoking the parent must kick members
// blocked inside a two-level phase or a posted schedule too. (A rank whose
// node peers are all alive never waits on the failed rank directly, so
// without this inheritance it would sleep through the revoke.) User
// communicators from Split keep ULFM's rule: revocation does not inherit.
// Caller holds r.mu.
func (r *recoveryState) ctxRevokedLocked(ctx int64) bool {
	for {
		if r.revoked[ctx] {
			return true
		}
		if ctx%64 <= maxSplitsPerComm {
			return false
		}
		ctx /= 64
	}
}

// revokeCtx marks one communicator context revoked and wakes blocked
// waiters. It reports whether this call changed anything (first revoke).
func (w *World) revokeCtx(ctx int64) bool {
	r := w.recov
	r.mu.Lock()
	if r.revoked[ctx] {
		r.mu.Unlock()
		return false
	}
	r.revoked[ctx] = true
	r.mu.Unlock()
	r.events.Add(1)
	for _, b := range w.boxes {
		if b != nil {
			b.poke()
		}
	}
	return true
}

// adoptFailures folds an agreed decision into the local failed set: a TCP
// process may learn of a failure first through the agreement's decided
// mask, before (or instead of) the hub's failure broadcast reaching it.
// A decision from a pre-respawn epoch is discarded — resurrecting a failure
// that a completed rejoin already cleared would wedge the restored world.
func (r *recoveryState) adoptFailures(decision uint64, members []int, epoch int) {
	if r.epochSnapshot() > epoch {
		return
	}
	for _, wr := range members {
		if decision&(1<<uint(wr)) == 0 {
			continue
		}
		r.mu.Lock()
		_, known := r.failed[wr]
		r.mu.Unlock()
		if !known {
			r.world.rankFailed(wr, fmt.Errorf("%w: rank %d (agreed)", ErrRankFailed, wr))
		}
	}
}

// abortPending fails every outstanding agreement when the world aborts
// outright (explicit abort, deadline breach): recovery does not survive a
// revoked world.
func (r *recoveryState) abortPending(err error) {
	if r.engine != nil {
		r.engine.fail(err)
	}
	r.mu.Lock()
	if r.downErr == nil {
		r.downErr = err
	}
	waiters := r.waiters
	r.waiters = make(map[agreeKey]chan agreeOutcome)
	r.mu.Unlock()
	r.restoreCond.Broadcast() // Restored callers observe downErr and bail
	for _, ch := range waiters {
		ch <- agreeOutcome{err: err}
	}
}

// ErrRestoreTimeout reports that Restored gave up waiting for the world to
// return to full width: a failed rank was never respawned within the
// caller's budget. The caller can still Shrink and continue without it.
var ErrRestoreTimeout = errors.New("mpi: world not restored to full width in time")

// epochCtx derives the message context of an epoch's world communicator.
// User-derived contexts are non-negative (the root is 0 and children are
// parent*64+seq with seq >= 1), so the negative epoch contexts can never
// collide with them.
func epochCtx(epoch int) int64 {
	if epoch == 0 {
		return 0
	}
	return -(int64(epoch) << 32)
}

// epochComm builds the full-width world communicator of the given epoch for
// the calling rank. Every rank derives the identical context from the epoch
// alone, so no negotiation is needed.
func (w *World) epochComm(c *Comm, epoch int) *Comm {
	ranks := make([]int, w.np)
	for i := range ranks {
		ranks[i] = i
	}
	return &Comm{
		world:   w,
		ctx:     epochCtx(epoch),
		rank:    c.worldRank(c.rank),
		ranks:   ranks,
		nextCtx: 1,
		epoch:   epoch,
	}
}

// awaitWhole blocks until the failed set is empty (every failed rank has
// been respawned), the world aborts, or the deadline passes (zero = wait
// forever).
func (r *recoveryState) awaitWhole(deadline time.Time) error {
	timedOut := false
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			timedOut = true
		} else {
			t := time.AfterFunc(d, func() {
				r.mu.Lock()
				timedOut = true
				r.mu.Unlock()
				r.restoreCond.Broadcast()
			})
			defer t.Stop()
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.downErr != nil {
			return r.downErr
		}
		if len(r.failed) == 0 {
			return nil
		}
		if timedOut {
			ranks := make([]int, 0, len(r.failed))
			for rank := range r.failed {
				ranks = append(ranks, rank)
			}
			sort.Ints(ranks)
			return fmt.Errorf("%w: ranks %v still failed", ErrRestoreTimeout, ranks)
		}
		r.restoreCond.Wait()
	}
}

// Restored blocks until the world is back at full width — every failed rank
// respawned into its old slot — and returns the current epoch's full-width
// world communicator, over which all operations work unchanged. It is the
// respawn-mode counterpart of Shrink: where Shrink re-forms the survivors at
// reduced width, Restored waits for the launcher (mpirun -respawn, or Run/
// RunTCP with WithRespawn) to relaunch the dead ranks and re-forms at the
// original width. Collective over all live ranks: every member — including
// the respawned ones, whose first operation on the stale world communicator
// fails with the membership-changed error that routes them here — must call
// it, and all members agree on the restored membership before any returns.
// timeout bounds the wait for the respawn (zero = wait forever); on expiry
// the caller gets ErrRestoreTimeout and can fall back to Shrink. Requires
// WithRecovery.
func (c *Comm) Restored(timeout time.Duration) (*Comm, error) {
	w := c.world
	r := w.recov
	if r == nil {
		return nil, fmt.Errorf("mpi: Restored requires WithRecovery")
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if err := r.awaitWhole(deadline); err != nil {
			return nil, err
		}
		epoch := r.epochSnapshot()
		rc := w.epochComm(c, epoch)
		// Agree on the restored membership: decided-empty means every live
		// member observed the same full-width world. A failure or a further
		// respawn racing the agreement surfaces as a retryable error or a
		// non-empty decision; either way, go around.
		failed, err := rc.Agree()
		if err != nil {
			if errors.Is(err, ErrRankFailed) {
				continue
			}
			return nil, err
		}
		if len(failed) > 0 || r.epochSnapshot() != epoch {
			continue
		}
		return rc, nil
	}
}

// Revoke marks the communicator's message context revoked everywhere:
// every member's pending and future operations on it fail with a
// *RankFailedError whose Revoked field is set (MPIX_Comm_revoke). It is
// how a survivor that detected a failure kicks peers still blocked deep in
// the old protocol out to the recovery path; call it before Shrink.
// Requires WithRecovery; it is not collective and any member may call it.
func (c *Comm) Revoke() error {
	w := c.world
	if w.recov == nil {
		return fmt.Errorf("mpi: Revoke requires WithRecovery")
	}
	changed := w.revokeCtx(c.ctx)
	if changed && w.recov.ctrlSend != nil {
		// Fan the revoke out through the hub so remote members observe it.
		if err := w.recov.ctrlSend(frame{Ctx: c.ctx, Dst: ctrlDst, Tag: tagRevoke}); err != nil {
			return err
		}
	}
	return nil
}

// FailedRanks reports the communicator-local ranks currently known failed,
// sorted (MPIX_Comm_failure_ack + get_acked, collapsed). Unlike Agree it
// is purely local: different members may transiently observe different
// sets.
func (c *Comm) FailedRanks() []int {
	w := c.world
	if w.recov == nil {
		return nil
	}
	w.recov.mu.Lock()
	defer w.recov.mu.Unlock()
	var out []int
	for i, wr := range c.ranks {
		if _, bad := w.recov.failed[wr]; bad {
			out = append(out, i)
		}
	}
	return out
}
