package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Failure semantics on the shared-memory transport: WithDeadline,
// fault-injected kills, and survive-and-continue recovery all behave as
// they do on the local and TCP transports — including the shm-specific
// hazard of a rank dying mid-rendezvous with staged blocks outstanding.
// The generic failure tables in faults_test.go and recover_test.go also
// run over shm; these tests cover what is unique to staged large messages.

// TestDeadlineOverShm: WithDeadline is transport-independent; a stalled
// receive on the shm transport produces the same deadline report as
// everywhere else.
func TestDeadlineOverShm(t *testing.T) {
	skipNoShm(t)
	err := runWithWatchdog(t, 15*time.Second, func() error {
		return RunShm(2, func(c *Comm) error {
			if c.Rank() == 0 {
				_, rerr := c.Recv(1, 9, nil) // rank 1 never sends
				return rerr
			}
			_, rerr := c.Recv(0, 9, nil)
			return rerr
		}, WithDeadline(100*time.Millisecond))
	})
	if !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("err = %v, want a deadline/abort failure", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want a deadline report", err)
	}
}

// TestShmFaultKillMidRendezvous: a FaultKillRank rule fires between two
// rendezvous sends — the sender dies with staged traffic in flight, the
// world is revoked, and the receiver's blocked recv is released with the
// killed rank named.
func TestShmFaultKillMidRendezvous(t *testing.T) {
	skipNoShm(t)
	plan := FaultPlan{
		Rules: []FaultRule{{Src: 1, Dst: AnySource, Tag: AnyTag, SkipFirst: 1, Action: FaultKillRank}},
	}
	big := make([]float64, 64<<10) // 512 KiB: rendezvous
	err := runWithWatchdog(t, 15*time.Second, func() error {
		return RunShm(2, func(c *Comm) error {
			if c.Rank() == 1 {
				if err := c.Send(0, 4, big); err != nil {
					return err
				}
				return c.Send(0, 4, big) // the kill fires here
			}
			if _, err := c.Recv(1, 4, nil); err != nil {
				return err
			}
			_, rerr := c.Recv(1, 4, nil) // never arrives: the revoke must unblock it
			return rerr
		}, WithFaults(plan))
	})
	if !errors.Is(err, ErrWorldAborted) {
		t.Fatalf("err = %v, want ErrWorldAborted", err)
	}
	if !errors.Is(err, ErrRankKilled) || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("err = %v, want the injected kill of rank 1 surfaced", err)
	}
}

// TestShmRecoveryReclaimsOrphanedRendezvous: under WithRecovery a rank dies
// mid-rendezvous with a backlog of staged large messages addressed to it.
// Survivors observe a retryable *RankFailedError, the sender's orphaned
// staging region is reclaimed (OutstandingLargeBytes drains to zero), and
// the survivors keep communicating — the world reports success.
func TestShmRecoveryReclaimsOrphanedRendezvous(t *testing.T) {
	skipNoShm(t)
	obs := observeShm(t)
	big := make([]float64, 64<<10) // 512 KiB: rendezvous; 8 fill a pair's region
	err := runWithWatchdog(t, 30*time.Second, func() error {
		return RunShm(3, func(c *Comm) error {
			switch c.Rank() {
			case 2:
				// Receive one staged message, then die with the sender's
				// backlog still staged (and some of it blocked on a full
				// region).
				if _, err := c.Recv(0, 1, nil); err != nil {
					return err
				}
				return errors.New("deliberate mid-rendezvous death")
			case 0:
				// Flood rank 2 with rendezvous traffic until its failure
				// surfaces. A send already in flight when the peer departs
				// is dropped (nil) — the hub's failure broadcast may land
				// a beat later — so keep sending until the error arrives.
				var ferr error
				for deadline := time.Now().Add(15 * time.Second); ; {
					if err := c.Send(2, 1, big); err != nil {
						ferr = err
						break
					}
					if time.Now().After(deadline) {
						return errors.New("rank 2's death never surfaced to the sender")
					}
				}
				var rfe *RankFailedError
				if !errors.As(ferr, &rfe) || !errors.Is(ferr, ErrRankFailed) {
					return fmt.Errorf("send err = %v, want *RankFailedError", ferr)
				}
				// The dead peer's staging region must be reclaimed even
				// though it will never free the blocks itself.
				st := obs.get(0)
				deadline := time.Now().Add(2 * time.Second)
				for st.statsSnapshot().OutstandingLargeBytes != 0 {
					if time.Now().After(deadline) {
						return fmt.Errorf("%d staged bytes never reclaimed after peer death",
							st.statsSnapshot().OutstandingLargeBytes)
					}
					time.Sleep(time.Millisecond)
				}
				// Survivors still talk over shm after the reclaim.
				return c.Send(1, 2, big)
			default: // rank 1
				// Blocked on the dead rank: released with the retryable error.
				_, rerr := c.Recv(2, 1, nil)
				var rfe *RankFailedError
				if !errors.As(rerr, &rfe) {
					return fmt.Errorf("recv err = %v, want *RankFailedError", rerr)
				}
				var v []float64
				if _, err := c.Recv(0, 2, &v); err != nil {
					return err
				}
				if len(v) != len(big) {
					return fmt.Errorf("post-recovery payload len %d, want %d", len(v), len(big))
				}
				return nil
			}
		}, WithRecovery())
	})
	if err != nil {
		t.Fatal(err)
	}
}
