package mpi

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
	"unsafe"
)

// The shared-memory segment: one mmap-backed file that every same-host rank
// of a world maps, holding a small header plus an np x np grid of
// single-producer/single-consumer pair blocks. Each ordered pair (src, dst)
// owns one block: a message ring for eager records and rendezvous
// descriptors, and a large-message region that rendezvous payloads are
// staged in so the receiver copies (or views) them exactly once. Only the
// sender of a pair produces into its block and only the receiver consumes,
// so every ring is a true SPSC queue and all cross-process synchronization
// is a pair of acquire/release position words per ring — no futexes, no
// locks shared across processes.
//
// File layout (all offsets 8-aligned, positions little-endian):
//
//	header page (shmSegHdrSize bytes):
//	  magic u64 | version u32 | np u32 | ringCap u64 | largeCap u64 |
//	  host fingerprint (shmHostIDLen bytes) | per-rank attach words (u32 each)
//	pair block (src, dst), for src, dst in [0, np):
//	  pair header (shmPairHdrSize bytes):
//	    msgTail u64 @ 0   (producer write position, monotonic)
//	    msgHead u64 @ 64  (consumer read position, monotonic)
//	    largeTail u64 @ 128, largeHead u64 @ 136 (large-region allocator)
//	  message ring data (ringCap bytes)
//	  large-message region (largeCap bytes)
//	window heap, per rank r in [0, np): winCap bytes (version 2)
//
// The tail/head words live on separate cache lines so producer and consumer
// do not false-share. Positions are monotonic byte counts; offsets are
// position mod capacity. The file is created sparse, so the np^2 grid costs
// only the pages traffic actually touches.
//
// Version 2 appends the window heaps: one winCap-byte region per rank,
// after the pair grid, that the one-sided layer (win.go) carves RMA window
// memory out of. Each rank bump-allocates exclusively from its own heap and
// publishes the offsets through an ordinary Allgather at window creation,
// so the heaps need no shared allocator state — a peer's Put/Get is a plain
// memcpy against the published offset. Like the pair grid, the heaps are
// virtual until touched.
const (
	shmMagic      uint64 = 0x70646d2d73686d31 // "pdm-shm1"
	shmSegVersion uint32 = 2

	shmSegHdrSize  = 4096
	shmPairHdrSize = 256
	shmHostIDLen   = 64

	shmOffMagic    = 0
	shmOffVersion  = 8
	shmOffNP       = 12
	shmOffRingCap  = 16
	shmOffLargeCap = 24
	shmOffHostID   = 32
	shmOffAttach   = shmOffHostID + shmHostIDLen
	shmOffWinCap   = shmOffAttach + 4*maxShmRanks

	shmPairOffMsgTail   = 0
	shmPairOffMsgHead   = 64
	shmPairOffLargeTail = 128
	shmPairOffLargeHead = 136

	// defaultShmRingCap sizes each pair's message ring; defaultShmLargeCap
	// sizes its rendezvous staging region. Both are per ordered pair, and
	// both are virtual until touched. defaultShmWinCap sizes each rank's
	// window heap.
	defaultShmRingCap  = 256 << 10
	defaultShmLargeCap = 4 << 20
	defaultShmWinCap   = 8 << 20

	// maxShmRanks bounds segment creation: the transport is a same-node
	// fast path, and the recovery bitmask shares the same 64-rank ceiling.
	maxShmRanks = 64
)

// Per-rank attach word states. A rank's word moves absent -> attached when
// it maps the segment (before its hub hello, so the state is stable by the
// time the start signal releases any sender) and attached -> departed when
// it closes. Senders decide shm-vs-TCP per destination from this word, and
// blocked senders watch it so a peer that left can never wedge them.
const (
	shmAbsent   uint32 = 0
	shmAttached uint32 = 1
	shmDeparted uint32 = 2
)

// ErrShmUnsupported is returned by the shared-memory transport on platforms
// without mmap support (see shmmap_stub.go).
var ErrShmUnsupported = errors.New("mpi: shared-memory transport not supported on this platform")

// errShmHostMismatch marks a segment created on a different host: the rank
// falls back to the TCP data plane instead of failing.
var errShmHostMismatch = errors.New("mpi: shm segment belongs to a different host")

// shmSegment is one rank's mapping of the segment file.
type shmSegment struct {
	data     []byte
	np       int
	ringCap  uint64
	largeCap uint64
	winCap   uint64
	path     string
}

// shmAtU64 and shmAtU32 view an 8- (4-) aligned offset of the mapping as an
// atomic word. The mapping is page-aligned, and every offset the layout
// produces keeps the alignment, so the casts are valid on every supported
// GOARCH.
func shmAtU64(b []byte, off uint64) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&b[off]))
}

func shmAtU32(b []byte, off uint64) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&b[off]))
}

func shmPairSize(ringCap, largeCap uint64) uint64 {
	return shmPairHdrSize + ringCap + largeCap
}

// pairOff returns the byte offset of the (src, dst) pair block.
func (s *shmSegment) pairOff(src, dst int) uint64 {
	return shmSegHdrSize + uint64(src*s.np+dst)*shmPairSize(s.ringCap, s.largeCap)
}

// winOff returns the byte offset of rank r's window heap.
func (s *shmSegment) winOff(r int) uint64 {
	return shmSegHdrSize + uint64(s.np*s.np)*shmPairSize(s.ringCap, s.largeCap) + uint64(r)*s.winCap
}

func (s *shmSegment) attachWord(rank int) *atomic.Uint32 {
	return shmAtU32(s.data, shmOffAttach+4*uint64(rank))
}

func (s *shmSegment) attachState(rank int) uint32 {
	return s.attachWord(rank).Load()
}

// shmHostFingerprint identifies the machine a segment was created on, so a
// rank on a different host (sharing the path over a network filesystem,
// say) falls back to TCP instead of mapping memory it cannot share.
func shmHostFingerprint() [shmHostIDLen]byte {
	var id [shmHostIDLen]byte
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "localhost"
	}
	copy(id[:], host)
	return id
}

// shmBaseDir picks where auto-named segments live: a tmpfs when the
// platform offers the conventional one, the default temp dir otherwise.
func shmBaseDir() string {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}

var shmSegSeq atomic.Uint64

// CreateShmSegment creates and initializes a shared-memory segment file for
// an np-rank world and returns its path. An empty path auto-names a file
// under the host's shared-memory directory (/dev/shm when present). The
// caller — typically the launcher — removes the file once the world is
// done; ranks that mapped it keep their pages until they unmap.
func CreateShmSegment(path string, np int) (string, error) {
	if !shmSupported {
		return "", ErrShmUnsupported
	}
	if np < 1 || np > maxShmRanks {
		return "", fmt.Errorf("mpi: shm segment supports 1..%d ranks, got %d", maxShmRanks, np)
	}
	ringCap, largeCap, winCap := uint64(defaultShmRingCap), uint64(defaultShmLargeCap), uint64(defaultShmWinCap)
	size := uint64(shmSegHdrSize) + uint64(np*np)*shmPairSize(ringCap, largeCap) + uint64(np)*winCap

	if path == "" {
		path = filepath.Join(shmBaseDir(),
			fmt.Sprintf("mpishm-%d-%d-%d.seg", os.Getpid(), time.Now().UnixNano(), shmSegSeq.Add(1)))
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return "", fmt.Errorf("mpi: creating shm segment: %w", err)
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return "", fmt.Errorf("mpi: sizing shm segment: %w", err)
	}
	data, err := shmMapFile(f, int(size))
	f.Close() // the mapping outlives the descriptor
	if err != nil {
		os.Remove(path)
		return "", fmt.Errorf("mpi: mapping shm segment: %w", err)
	}
	le.PutUint32(data[shmOffVersion:], shmSegVersion)
	le.PutUint32(data[shmOffNP:], uint32(np))
	le.PutUint64(data[shmOffRingCap:], ringCap)
	le.PutUint64(data[shmOffLargeCap:], largeCap)
	le.PutUint64(data[shmOffWinCap:], winCap)
	id := shmHostFingerprint()
	copy(data[shmOffHostID:], id[:])
	// The magic goes last: a joiner that maps a half-written header sees no
	// magic and retries/fails rather than trusting garbage capacities.
	shmAtU64(data, shmOffMagic).Store(shmMagic)
	if err := shmUnmap(data); err != nil {
		os.Remove(path)
		return "", fmt.Errorf("mpi: unmapping shm segment after init: %w", err)
	}
	return path, nil
}

// openShmSegment maps an existing segment for one rank and validates it
// against the expected world shape. A host-fingerprint mismatch returns
// errShmHostMismatch, which the caller treats as "use TCP".
func openShmSegment(path string, np int) (*shmSegment, error) {
	if !shmSupported {
		return nil, ErrShmUnsupported
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("mpi: opening shm segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("mpi: shm segment stat: %w", err)
	}
	if fi.Size() < shmSegHdrSize {
		f.Close()
		return nil, fmt.Errorf("mpi: shm segment %s too small (%d bytes)", path, fi.Size())
	}
	data, err := shmMapFile(f, int(fi.Size()))
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("mpi: mapping shm segment: %w", err)
	}
	fail := func(err error) (*shmSegment, error) {
		shmUnmap(data)
		return nil, err
	}
	if shmAtU64(data, shmOffMagic).Load() != shmMagic {
		return fail(fmt.Errorf("mpi: %s is not an initialized shm segment", path))
	}
	if v := le.Uint32(data[shmOffVersion:]); v != shmSegVersion {
		return fail(fmt.Errorf("mpi: shm segment version %d, want %d", v, shmSegVersion))
	}
	if segNP := int(le.Uint32(data[shmOffNP:])); segNP != np {
		return fail(fmt.Errorf("mpi: shm segment built for %d ranks, world has %d", segNP, np))
	}
	ringCap := le.Uint64(data[shmOffRingCap:])
	largeCap := le.Uint64(data[shmOffLargeCap:])
	winCap := le.Uint64(data[shmOffWinCap:])
	want := uint64(shmSegHdrSize) + uint64(np*np)*shmPairSize(ringCap, largeCap) + uint64(np)*winCap
	if uint64(fi.Size()) < want {
		return fail(fmt.Errorf("mpi: shm segment truncated: %d bytes, want %d", fi.Size(), want))
	}
	id := shmHostFingerprint()
	if string(data[shmOffHostID:shmOffHostID+shmHostIDLen]) != string(id[:]) {
		return fail(errShmHostMismatch)
	}
	return &shmSegment{data: data, np: np, ringCap: ringCap, largeCap: largeCap, winCap: winCap, path: path}, nil
}

func (s *shmSegment) unmap() error { return shmUnmap(s.data) }
