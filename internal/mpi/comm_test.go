package mpi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRunRejectsZeroProcesses(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("Run(0) succeeded")
	}
}

func TestRunRankAndSize(t *testing.T) {
	for _, np := range []int{1, 2, 4, 9} {
		var mu sync.Mutex
		seen := map[int]bool{}
		err := Run(np, func(c *Comm) error {
			if c.Size() != np {
				return fmt.Errorf("Size() = %d, want %d", c.Size(), np)
			}
			if c.ProcessorName() == "" {
				return errors.New("empty processor name")
			}
			mu.Lock()
			defer mu.Unlock()
			if seen[c.Rank()] {
				return fmt.Errorf("duplicate rank %d", c.Rank())
			}
			seen[c.Rank()] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != np {
			t.Fatalf("np=%d: saw %d distinct ranks", np, len(seen))
		}
	}
}

func TestProcessorNamesOption(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		want := fmt.Sprintf("node%d", c.Rank())
		if got := c.ProcessorName(); got != want {
			return fmt.Errorf("ProcessorName() = %q, want %q", got, want)
		}
		return nil
	}, WithProcessorNames([]string{"node0", "node1", "node2"}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvValue(t *testing.T) {
	type payload struct {
		N    int
		Text string
		Xs   []float64
	}
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, payload{N: 42, Text: "hi", Xs: []float64{1.5, 2.5}})
		}
		var p payload
		st, err := c.Recv(0, 5, &p)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 5 {
			return fmt.Errorf("status = %v", st)
		}
		if p.N != 42 || p.Text != "hi" || len(p.Xs) != 2 || p.Xs[1] != 2.5 {
			return fmt.Errorf("payload = %+v", p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingOrder(t *testing.T) {
	const n = 100
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 0, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			var got int
			if _, err := c.Recv(0, 0, &got); err != nil {
				return err
			}
			if got != i {
				return fmt.Errorf("message %d overtaken by %d", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceReceivesFromEveryone(t *testing.T) {
	const np = 6
	err := Run(np, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, 1, c.Rank())
		}
		seen := map[int]bool{}
		for i := 1; i < np; i++ {
			var v int
			st, err := c.Recv(AnySource, 1, &v)
			if err != nil {
				return err
			}
			if st.Source != v {
				return fmt.Errorf("status source %d but payload says %d", st.Source, v)
			}
			seen[v] = true
		}
		if len(seen) != np-1 {
			return fmt.Errorf("received from %d distinct ranks, want %d", len(seen), np-1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnyTagMatchesInOrder(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for _, tag := range []int{7, 3, 9} {
				if err := c.Send(1, tag, tag*10); err != nil {
					return err
				}
			}
			return nil
		}
		wantTags := []int{7, 3, 9}
		for _, want := range wantTags {
			var v int
			st, err := c.Recv(0, AnyTag, &v)
			if err != nil {
				return err
			}
			if st.Tag != want || v != want*10 {
				return fmt.Errorf("got tag %d value %d, want tag %d", st.Tag, v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectiveReceiveOutOfArrivalOrder(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, "urgent-later"); err != nil {
				return err
			}
			return c.Send(1, 2, "wanted-first")
		}
		var a, b string
		if _, err := c.Recv(0, 2, &a); err != nil {
			return err
		}
		if _, err := c.Recv(0, 1, &b); err != nil {
			return err
		}
		if a != "wanted-first" || b != "urgent-later" {
			return fmt.Errorf("selective receive got %q then %q", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(5, 0, 1); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("send to rank 5 = %v, want ErrInvalidRank", err)
		}
		if err := c.Send(1, -3, 1); !errors.Is(err, ErrInvalidTag) {
			return fmt.Errorf("send with tag -3 = %v, want ErrInvalidTag", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvValidation(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if _, err := c.Recv(3, 0, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("recv from rank 3 = %v, want ErrInvalidRank", err)
		}
		if _, err := c.Recv(0, -7, nil); !errors.Is(err, ErrInvalidTag) {
			return fmt.Errorf("recv with tag -7 = %v, want ErrInvalidTag", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRingExchange(t *testing.T) {
	const np = 5
	err := Run(np, func(c *Comm) error {
		right := (c.Rank() + 1) % np
		left := (c.Rank() - 1 + np) % np
		var fromLeft int
		_, err := c.Sendrecv(right, 0, c.Rank(), left, 0, &fromLeft)
		if err != nil {
			return err
		}
		if fromLeft != left {
			return fmt.Errorf("rank %d received %d from left, want %d", c.Rank(), fromLeft, left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeThenRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 4, []int{1, 2, 3})
		}
		st, err := c.Probe(AnySource, AnyTag)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 4 || st.Bytes == 0 {
			return fmt.Errorf("probe status = %v", st)
		}
		var v []int
		if _, err := c.Recv(st.Source, st.Tag, &v); err != nil {
			return err
		}
		if len(v) != 3 {
			return fmt.Errorf("payload = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobe(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			if _, ok := c.Iprobe(AnySource, AnyTag); ok {
				// May legitimately be true if rank 0 was fast, so only the
				// post-barrier check below is authoritative.
				_ = ok
			}
			if err := c.Barrier(); err != nil { // rank 0 sends before barrier
				return err
			}
			st, ok := c.Iprobe(0, 2)
			if !ok {
				return errors.New("Iprobe missed a delivered message")
			}
			if st.Source != 0 || st.Tag != 2 {
				return fmt.Errorf("Iprobe status = %v", st)
			}
			return nil
		}
		if err := c.Send(1, 2, "ping"); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorPropagates(t *testing.T) {
	sentinel := errors.New("deliberate failure")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run error = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("error %q does not identify the failing rank", err)
	}
}

func TestRankPanicBecomesError(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Run error = %v, want panic converted to error", err)
	}
}

func TestComputeWithoutGateRunsInline(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		ran := false
		c.Compute(func() { ran = true })
		if !ran {
			return errors.New("Compute did not run fn")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeGateIsApplied(t *testing.T) {
	var mu sync.Mutex
	inGate := 0
	maxInGate := 0
	gate := func(fn func()) {
		mu.Lock()
		inGate++
		if inGate > maxInGate {
			maxInGate = inGate
		}
		mu.Unlock()
		fn()
		mu.Lock()
		inGate--
		mu.Unlock()
	}
	err := Run(4, func(c *Comm) error {
		c.Compute(func() {})
		return nil
	}, WithComputeGate(gate))
	if err != nil {
		t.Fatal(err)
	}
	if maxInGate == 0 {
		t.Fatal("gate never invoked")
	}
}

func TestStatusString(t *testing.T) {
	s := Status{Source: 1, Tag: 2, Bytes: 3}
	if got := s.String(); !strings.Contains(got, "source: 1") {
		t.Fatalf("Status.String() = %q", got)
	}
}
