package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

var worldSizes = []int{1, 2, 3, 4, 7, 8}

func TestBarrierAllArriveBeforeAnyLeaves(t *testing.T) {
	for _, np := range worldSizes {
		var arrived atomic.Int64
		err := Run(np, func(c *Comm) error {
			arrived.Add(1)
			if err := c.Barrier(); err != nil {
				return err
			}
			if got := arrived.Load(); got != int64(np) {
				return fmt.Errorf("left barrier with only %d/%d arrived", got, np)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for _, np := range worldSizes {
		for root := 0; root < np; root++ {
			err := Run(np, func(c *Comm) error {
				v := -1
				if c.Rank() == root {
					v = 1000 + root
				}
				got, err := Bcast(c, v, root)
				if err != nil {
					return err
				}
				if got != 1000+root {
					return fmt.Errorf("rank %d got %d from root %d", c.Rank(), got, root)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("np=%d root=%d: %v", np, root, err)
			}
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		_, err := Bcast(c, 0, 9)
		if !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("Bcast root 9 = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastStruct(t *testing.T) {
	type conf struct {
		Trials int
		Probs  []float64
	}
	err := Run(4, func(c *Comm) error {
		var v conf
		if c.Rank() == 0 {
			v = conf{Trials: 500, Probs: []float64{0.1, 0.2}}
		}
		got, err := Bcast(c, v, 0)
		if err != nil {
			return err
		}
		if got.Trials != 500 || len(got.Probs) != 2 {
			return fmt.Errorf("rank %d: %+v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumBothAlgorithmsAllRoots(t *testing.T) {
	for _, np := range worldSizes {
		want := np * (np - 1) / 2
		for root := 0; root < np; root++ {
			for _, algo := range []ReduceAlgorithm{ReduceLinear, ReduceTree} {
				err := Run(np, func(c *Comm) error {
					got, err := ReduceWith(c, c.Rank(), Combine[int](Sum), root, algo)
					if err != nil {
						return err
					}
					if c.Rank() == root && got != want {
						return fmt.Errorf("root got %d, want %d", got, want)
					}
					if c.Rank() != root && got != 0 {
						return fmt.Errorf("non-root rank %d got %d, want zero value", c.Rank(), got)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("np=%d root=%d algo=%d: %v", np, root, algo, err)
				}
			}
		}
	}
}

func TestReduceMaxMinProd(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		v := (c.Rank()*3)%7 + 1 // 1,4,7,3,6
		mx, err := Reduce(c, v, Combine[int](Max), 0)
		if err != nil {
			return err
		}
		mn, err := Reduce(c, v, Combine[int](Min), 0)
		if err != nil {
			return err
		}
		pr, err := Reduce(c, v, Combine[int](Prod), 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if mx != 7 || mn != 1 || pr != 1*4*7*3*6 {
				return fmt.Errorf("max=%d min=%d prod=%d", mx, mn, pr)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSlicesElementwise(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		v := []int{c.Rank(), 2 * c.Rank(), 1}
		got, err := Reduce(c, v, CombineSlices[int](Sum), 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			want := []int{6, 12, 4}
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("got %v, want %v", got, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceEveryRankGetsResult(t *testing.T) {
	for _, np := range worldSizes {
		want := np * (np - 1) / 2
		err := Run(np, func(c *Comm) error {
			got, err := Allreduce(c, c.Rank(), Combine[int](Sum))
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("rank %d got %d, want %d", c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, np := range worldSizes {
		for root := 0; root < np; root++ {
			err := Run(np, func(c *Comm) error {
				var items []string
				if c.Rank() == root {
					items = make([]string, np)
					for i := range items {
						items[i] = fmt.Sprintf("piece-%d", i)
					}
				}
				mine, err := Scatter(c, items, root)
				if err != nil {
					return err
				}
				if want := fmt.Sprintf("piece-%d", c.Rank()); mine != want {
					return fmt.Errorf("rank %d scattered %q, want %q", c.Rank(), mine, want)
				}
				all, err := Gather(c, mine+"!", root)
				if err != nil {
					return err
				}
				if c.Rank() == root {
					for i, v := range all {
						if want := fmt.Sprintf("piece-%d!", i); v != want {
							return fmt.Errorf("gathered[%d] = %q, want %q", i, v, want)
						}
					}
				} else if all != nil {
					return fmt.Errorf("non-root received gather slice %v", all)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("np=%d root=%d: %v", np, root, err)
			}
		}
	}
}

func TestScatterWrongLength(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := Scatter(c, []int{1, 2, 3}, 0)
			if err == nil {
				return errors.New("Scatter with 3 items for 2 ranks succeeded")
			}
			// Unblock rank 1, which is still waiting for its piece.
			return c.sendReserved(1, tagScatter, 99)
		}
		v, err := Scatter[int](c, nil, 0)
		if err != nil {
			return err
		}
		if v != 99 {
			return fmt.Errorf("got %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, np := range worldSizes {
		err := Run(np, func(c *Comm) error {
			all, err := Allgather(c, c.Rank()*c.Rank())
			if err != nil {
				return err
			}
			if len(all) != np {
				return fmt.Errorf("got %d items", len(all))
			}
			for i, v := range all {
				if v != i*i {
					return fmt.Errorf("all[%d] = %d, want %d", i, v, i*i)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

func TestAlltoallTransposes(t *testing.T) {
	for _, np := range worldSizes {
		err := Run(np, func(c *Comm) error {
			items := make([]int, np)
			for j := range items {
				items[j] = c.Rank()*100 + j
			}
			got, err := Alltoall(c, items)
			if err != nil {
				return err
			}
			for i, v := range got {
				// Rank i sent us its element at our index.
				if want := i*100 + c.Rank(); v != want {
					return fmt.Errorf("rank %d got[%d] = %d, want %d", c.Rank(), i, v, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

func TestAlltoallWrongLength(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if _, err := Alltoall(c, []int{1, 2}); err == nil {
			return errors.New("Alltoall with wrong length succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanInclusivePrefix(t *testing.T) {
	for _, np := range worldSizes {
		err := Run(np, func(c *Comm) error {
			got, err := Scan(c, c.Rank()+1, Combine[int](Sum))
			if err != nil {
				return err
			}
			want := (c.Rank() + 1) * (c.Rank() + 2) / 2
			if got != want {
				return fmt.Errorf("rank %d scan = %d, want %d", c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

// TestReducePropertyMatchesSequential: for arbitrary integer inputs and any
// world size, both reduce algorithms agree with a sequential fold.
func TestReducePropertyMatchesSequential(t *testing.T) {
	prop := func(vals []int64, npRaw, algoRaw uint8) bool {
		np := int(npRaw%6) + 1
		algo := ReduceAlgorithm(algoRaw % 2)
		if len(vals) < np {
			return true
		}
		var want int64
		for r := 0; r < np; r++ {
			want += vals[r]
		}
		var mu sync.Mutex
		var got int64
		err := Run(np, func(c *Comm) error {
			v, err := ReduceWith(c, vals[c.Rank()], Combine[int64](Sum), 0, algo)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				mu.Lock()
				got = v
				mu.Unlock()
			}
			return nil
		})
		return err == nil && got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveSequenceStaysMatched runs many back-to-back collectives to
// verify reserved-tag traffic from successive operations never cross-matches.
func TestCollectiveSequenceStaysMatched(t *testing.T) {
	const np = 5
	err := Run(np, func(c *Comm) error {
		for round := 0; round < 30; round++ {
			root := round % np
			got, err := Bcast(c, round*7, root)
			if err != nil {
				return err
			}
			if got != round*7 {
				return fmt.Errorf("round %d: bcast got %d", round, got)
			}
			sum, err := Allreduce(c, round+c.Rank(), Combine[int](Sum))
			if err != nil {
				return err
			}
			want := np*round + np*(np-1)/2
			if sum != want {
				return fmt.Errorf("round %d: allreduce got %d, want %d", round, sum, want)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
