package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// Hierarchical-collective parity: with a forced multi-node topology, every
// hierarchy-eligible collective must produce element-identical results to
// the flat algorithms, on every transport, for scalar and vector payloads,
// with leader and non-leader roots. The payload data is integer, so tree,
// Rabenseifner, and two-level fold orders are all exactly equal.

// hierTopologies returns the node assignments exercised for a world size:
// always the even two-node split, plus an uneven and a three-node layout
// where the size allows.
func hierTopologies(np int) [][]int {
	block := func(nodes int) []int {
		topo := make([]int, np)
		for r := range topo {
			topo[r] = r * nodes / np
		}
		return topo
	}
	topos := [][]int{block(2)}
	if np >= 3 {
		// Uneven: one rank alone on node 0, the rest on node 1.
		uneven := make([]int, np)
		for r := 1; r < np; r++ {
			uneven[r] = 1
		}
		topos = append(topos, uneven)
	}
	if np >= 6 {
		topos = append(topos, block(3))
	}
	return topos
}

// hierCollectiveBody runs one of everything the hierarchy gates and
// packages the per-rank observations for structural comparison.
func hierCollectiveBody(c *Comm) (any, error) {
	np := c.Size()
	rootA := 0      // always a leader
	rootB := np - 1 // a non-leader whenever its node holds >1 rank
	type result struct {
		BcastA, BcastB   int
		ReduceA, ReduceB int
		Allreduce        int
		Barriered        bool
		BcastS           []int
		ReduceS          []int
		AllreduceS       []int
		AllreduceOp      []int64
	}
	var res result
	var err error

	if err = c.Barrier(); err != nil {
		return nil, err
	}
	res.Barriered = true

	if res.BcastA, err = Bcast(c, 1000+c.Rank(), rootA); err != nil {
		return nil, err
	}
	if res.BcastB, err = Bcast(c, 2000+c.Rank(), rootB); err != nil {
		return nil, err
	}
	sum := func(a, b int) int { return a + b }
	if res.ReduceA, err = Reduce(c, c.Rank()+1, sum, rootA); err != nil {
		return nil, err
	}
	if res.ReduceB, err = Reduce(c, 10*c.Rank()+1, sum, rootB); err != nil {
		return nil, err
	}
	if res.Allreduce, err = Allreduce(c, c.Rank()*c.Rank()+7, sum); err != nil {
		return nil, err
	}

	// Vector payloads: above the default threshold (1024 elements) so the
	// bandwidth-optimal paths — and their hierarchical composition — run.
	const n = 3000
	v := make([]int, n)
	for i := range v {
		v[i] = c.Rank()*31 + i
	}
	if res.BcastS, err = BcastSlice(c, v, rootB); err != nil {
		return nil, err
	}
	if res.ReduceS, err = ReduceSlice(c, v, sum, rootB); err != nil {
		return nil, err
	}
	if res.AllreduceS, err = AllreduceSlice(c, v, sum); err != nil {
		return nil, err
	}
	v64 := make([]int64, n)
	for i := range v64 {
		v64[i] = int64(c.Rank() + i)
	}
	if res.AllreduceOp, err = AllreduceSliceOp(c, v64, Max); err != nil {
		return nil, err
	}
	return res, nil
}

// runHierParity compares per-rank results between HierOff (flat) and HierOn
// (two-level) under one launcher, then across launchers.
func TestHierCollectiveParity(t *testing.T) {
	launchers := []parityMode{
		{name: "local", run: Run},
		{name: "local-serialized", run: Run, opts: []Option{WithSerialization()}},
		{name: "tcp", run: RunTCP},
	}
	if shmSupported {
		launchers = append(launchers, parityMode{name: "shm", run: RunShm})
	}
	for _, np := range []int{1, 2, 3, 4, 8} {
		for ti, topo := range hierTopologies(np) {
			var want []any
			var wantDesc string
			for _, l := range launchers {
				for _, hier := range []HierMode{HierOff, HierOn} {
					desc := fmt.Sprintf("np=%d topo=%v %s hier=%v", np, topo, l.name, hier)
					results := make([]any, np)
					var mu sync.Mutex
					opts := append([]Option{WithTopology(topo), WithHierarchy(hier)}, l.opts...)
					err := l.run(np, func(c *Comm) error {
						v, err := hierCollectiveBody(c)
						if err != nil {
							return err
						}
						mu.Lock()
						results[c.Rank()] = v
						mu.Unlock()
						return nil
					}, opts...)
					if err != nil {
						t.Fatalf("%s: %v", desc, err)
					}
					if want == nil {
						want, wantDesc = results, desc
						continue
					}
					if !reflect.DeepEqual(results, want) {
						t.Errorf("%s results differ from %s", desc, wantDesc)
					}
				}
			}
			_ = ti
		}
	}
}

// TestHierSelection pins when the two-level schedules engage: never on a
// single node or under HierOff, under HierAuto only with co-located ranks,
// always on a multi-node communicator under HierOn — and the runtime's own
// sub-communicators must never recurse into another level.
func TestHierSelection(t *testing.T) {
	cases := []struct {
		name   string
		np     int
		topo   []int
		mode   HierMode
		expect bool
	}{
		{"single-rank", 1, []int{0}, HierOn, false},
		{"one-node", 4, []int{0, 0, 0, 0}, HierOn, false},
		{"auto-two-nodes", 4, []int{0, 0, 1, 1}, HierAuto, true},
		{"auto-no-coloc", 4, []int{0, 1, 2, 3}, HierAuto, false},
		{"on-no-coloc", 4, []int{0, 1, 2, 3}, HierOn, true},
		{"off", 4, []int{0, 0, 1, 1}, HierOff, false},
		{"sparse-ids", 4, []int{7, 7, 42, 42}, HierAuto, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Run(tc.np, func(c *Comm) error {
				h := c.hier()
				if got := h != nil; got != tc.expect {
					return fmt.Errorf("rank %d: hier engaged = %v, want %v", c.Rank(), got, tc.expect)
				}
				if h != nil {
					if h.nodeComm.hier() != nil {
						return fmt.Errorf("rank %d: nodeComm recursed into another hierarchy level", c.Rank())
					}
					if h.leaderComm != nil && h.leaderComm.hier() != nil {
						return fmt.Errorf("rank %d: leaderComm recursed into another hierarchy level", c.Rank())
					}
				}
				// The collectives must work regardless of the verdict.
				sum, err := Allreduce(c, c.Rank()+1, func(a, b int) int { return a + b })
				if err != nil {
					return err
				}
				if want := tc.np * (tc.np + 1) / 2; sum != want {
					return fmt.Errorf("allreduce = %d, want %d", sum, want)
				}
				return nil
			}, WithTopology(tc.topo), WithHierarchy(tc.mode))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHierFromProcessorNames: without WithTopology, the node assignment
// derives from processor names — ranks sharing a name share a node — which
// is how cluster.Launch's placement used to reach the collectives before
// the explicit option existed.
func TestHierFromProcessorNames(t *testing.T) {
	names := []string{"node-a", "node-a", "node-b", "node-b"}
	err := Run(4, func(c *Comm) error {
		h := c.hier()
		if h == nil {
			return fmt.Errorf("rank %d: hierarchy not derived from names", c.Rank())
		}
		if h.nodeComm.Size() != 2 {
			return fmt.Errorf("rank %d: node comm size %d, want 2", c.Rank(), h.nodeComm.Size())
		}
		prod, err := Allreduce(c, c.Rank()+1, func(a, b int) int { return a * b })
		if err != nil {
			return err
		}
		if prod != 24 {
			return fmt.Errorf("allreduce = %d, want 24", prod)
		}
		return nil
	}, WithProcessorNames(names))
	if err != nil {
		t.Fatal(err)
	}
}

// TestHierSubcommTopology: a Split-derived communicator gets its own
// two-level view over its own members, and one confined to a single node
// goes flat.
func TestHierSubcommTopology(t *testing.T) {
	topo := []int{0, 0, 1, 1, 2, 2}
	err := Run(6, func(c *Comm) error {
		// Even/odd split: each child has one rank per node → flat under auto.
		child, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if child.hier() != nil {
			return fmt.Errorf("rank %d: no-coloc child engaged hierarchy under auto", c.Rank())
		}
		// First two nodes only: still hierarchical.
		color := ColorUndefined
		if c.Rank() < 4 {
			color = 0
		}
		four, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		if four != nil {
			if four.hier() == nil {
				return fmt.Errorf("rank %d: two-node child did not engage hierarchy", c.Rank())
			}
			sum, err := Allreduce(four, c.Rank(), func(a, b int) int { return a + b })
			if err != nil {
				return err
			}
			if sum != 0+1+2+3 {
				return fmt.Errorf("child allreduce = %d", sum)
			}
		}
		return c.Barrier()
	}, WithTopology(topo))
	if err != nil {
		t.Fatal(err)
	}
}

// TestHierLinearReduceStaysFlat: ReduceLinear's contract is the strict
// rank-order fold; the hierarchy must not reorder it even when engaged.
func TestHierLinearReduceStaysFlat(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		// A non-associative combine makes any regrouping visible.
		concat := func(a, b string) string { return a + "," + b }
		got, err := ReduceWith(c, fmt.Sprint(c.Rank()), concat, 0, ReduceLinear)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && got != "0,1,2,3" {
			return fmt.Errorf("linear reduce = %q", got)
		}
		return nil
	}, WithTopology([]int{0, 0, 1, 1}), WithHierarchy(HierOn))
	if err != nil {
		t.Fatal(err)
	}
}

// TestHierKillRankMidCollective: an injected rank death during a
// hierarchical allreduce must revoke the world — every survivor's collective
// fails with ErrWorldAborted wrapping ErrRankKilled, not a hang.
func TestHierKillRankMidCollective(t *testing.T) {
	plan := FaultPlan{
		Rules: []FaultRule{{Src: 1, Dst: AnySource, Tag: AnyTag, SkipFirst: 2, Action: FaultKillRank}},
	}
	err := Run(4, func(c *Comm) error {
		for i := 0; ; i++ {
			if _, err := Allreduce(c, i, func(a, b int) int { return a + b }); err != nil {
				return err
			}
		}
	}, WithTopology([]int{0, 0, 1, 1}), WithHierarchy(HierOn), WithFaults(plan))
	if err == nil {
		t.Fatal("kill-rank run succeeded")
	}
	if !errors.Is(err, ErrRankKilled) {
		t.Fatalf("error %v does not wrap ErrRankKilled", err)
	}
}

// TestHierDeadlineMidCollective: a rank that never enters the hierarchical
// collective trips WithDeadline at the others, not a hang.
func TestHierDeadlineMidCollective(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 3 {
			return nil // never shows up for the collective
		}
		v := make([]int, 4096)
		_, err := AllreduceSlice(c, v, func(a, b int) int { return a + b })
		return err
	}, WithTopology([]int{0, 0, 1, 1}), WithHierarchy(HierOn), WithDeadline(200*time.Millisecond))
	if err == nil {
		t.Fatal("deserter run succeeded")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("error %v does not match ErrDeadlineExceeded", err)
	}
}

// TestHierRecoveryShrink: under WithRecovery a rank death mid-hierarchical-
// collective surfaces as the retryable rank-failure error, and the
// survivors can Shrink to a working communicator whose collectives still
// agree — the same ULFM discipline the flat collectives support.
func TestHierRecoveryShrink(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("synthetic crash")
		}
		sum := func(a, b int) int { return a + b }
		for {
			_, err := Allreduce(c, c.Rank(), sum)
			if err == nil {
				// Peer not yet failed; retry until the failure interrupts us.
				time.Sleep(time.Millisecond)
				continue
			}
			if !errors.Is(err, ErrRankFailed) {
				return err
			}
			// Revoke before Shrink, as ULFM requires. Under the two-level
			// schedule this is load-bearing, not ceremony: rank 1's phases
			// touch only its node peer and leader (both alive), so without
			// the revoke it would wait forever inside the intra-node
			// broadcast for a leader that already errored out.
			if err := c.Revoke(); err != nil {
				return err
			}
			break
		}
		shrunk, err := c.Shrink()
		if err != nil {
			return err
		}
		got, err := Allreduce(shrunk, 1, sum)
		if err != nil {
			return err
		}
		if got != 3 {
			return fmt.Errorf("shrunk allreduce = %d, want 3", got)
		}
		return nil
	}, WithTopology([]int{0, 0, 1, 1}), WithHierarchy(HierOn), WithRecovery())
	if err != nil {
		t.Fatal(err)
	}
}
