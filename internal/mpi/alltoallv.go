package mpi

import "fmt"

// AlltoallvSlice and friends: the irregular personalized exchange,
// MPI_Alltoallv. Every rank holds one send buffer partitioned by per-rank
// counts (block for rank 0 first, then rank 1, and so on) and receives one
// buffer partitioned the same way by its receive counts. Unlike a loop of
// per-element Send/Recv — the shape sparse codes naturally fall into — the
// exchange coalesces each pair's traffic into one frame, so a frontier of
// ten thousand graph edges to a peer costs one message, one header, and (on
// the shm and TCP wire paths) one copy into place.
//
// Schedule: the pairwise exchange. At step s, rank r sends its block for
// (r+s) mod n and receives the block from (r-s+n) mod n, so every step is a
// perfect matching — each rank sends at most one message and receives at
// most one, and no single rank is ever the hot spot the naive "everyone
// sends to 0 first" rank-ordered loop creates. Sends are buffered
// (MPI buffered-mode semantics), so the send never deadlocks against the
// matching receive.
//
// Zero-count pairs move no frame at all: the sender skips the Send and the
// receiver skips the Recv, symmetrically — the sparse-friendly property
// that makes the primitive cheap on irregular workloads where most pairs
// exchange nothing. As in MPI, the counts are a contract: if rank a's
// sendCounts[b] is nonzero while b's recvCounts[a] is zero, the exchange
// hangs (or trips the world deadline) exactly as mismatched Send/Recv would.
//
// On a multi-node topology (see WithTopology/WithHierarchy) the exchange
// runs the two-level schedule instead: members forward their buffers to the
// node leader, leaders exchange one aggregated block per node pair over the
// inter-node link, and receiving leaders re-sort the blocks into each
// member's buffer. The wire crossing the node boundary carries one message
// per node pair instead of one per rank pair.
const (
	tagA2Av     = -20 // pairwise-exchange data blocks (flat and leader phases)
	tagA2AvGat  = -21 // member -> leader buffer forwarding
	tagA2AvScat = -22 // leader -> member reassembled buffers
)

// AlltoallCounts exchanges the count matrix: every rank passes its
// per-destination send counts and learns its per-origin receive counts —
// the usual prologue when only the senders know the sizes (a BFS frontier,
// a PageRank contribution list). One Allgather of the count vectors; the
// payload is np ints per rank, negligible next to the data exchange it
// sizes.
func AlltoallCounts(c *Comm, sendCounts []int) ([]int, error) {
	n := c.Size()
	if len(sendCounts) != n {
		return nil, fmt.Errorf("mpi: AlltoallCounts: %d counts for a %d-rank communicator", len(sendCounts), n)
	}
	rows, err := Allgather(c, append([]int(nil), sendCounts...))
	if err != nil {
		return nil, err
	}
	recvCounts := make([]int, n)
	for o, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("mpi: AlltoallCounts: rank %d sent %d counts, want %d", o, len(row), n)
		}
		recvCounts[o] = row[c.rank]
	}
	return recvCounts, nil
}

// AlltoallvSlice performs the irregular personalized exchange and returns a
// freshly allocated receive buffer: send[displ(r) : displ(r)+sendCounts[r]]
// goes to rank r, and the result holds rank o's block at the offset implied
// by recvCounts[0..o). Displacements are the prefix sums of the counts —
// the packed MPI_Alltoallv layout. For a zero-allocation steady state
// (PageRank runs the exchange every iteration with identical counts), use
// AlltoallvInto with a reused buffer.
func AlltoallvSlice[T any](c *Comm, send []T, sendCounts, recvCounts []int) ([]T, error) {
	total := 0
	for _, ct := range recvCounts {
		total += ct
	}
	recv := make([]T, total)
	if err := AlltoallvInto(c, send, sendCounts, recv, recvCounts); err != nil {
		return nil, err
	}
	return recv, nil
}

// AlltoallvInto is AlltoallvSlice into a caller-owned receive buffer, which
// must hold exactly sum(recvCounts) elements. Received blocks are copied
// in place — on the shm rendezvous and TCP raw paths straight from the
// transport's staging memory into their final position, one copy total,
// no intermediate buffer.
func AlltoallvInto[T any](c *Comm, send []T, sendCounts []int, recv []T, recvCounts []int) error {
	n := c.Size()
	if len(sendCounts) != n || len(recvCounts) != n {
		return fmt.Errorf("mpi: Alltoallv: %d send / %d recv counts for a %d-rank communicator",
			len(sendCounts), len(recvCounts), n)
	}
	sdis, stot := displs(sendCounts)
	rdis, rtot := displs(recvCounts)
	if stot != len(send) {
		return fmt.Errorf("mpi: Alltoallv: send counts sum to %d, buffer has %d elements", stot, len(send))
	}
	if rtot != len(recv) {
		return fmt.Errorf("mpi: Alltoallv: recv counts sum to %d, buffer has %d elements", rtot, len(recv))
	}
	r := c.rank
	copy(recv[rdis[r]:rdis[r]+recvCounts[r]], send[sdis[r]:sdis[r]+sendCounts[r]])
	if n == 1 {
		return nil
	}
	if h := c.hier(); h != nil {
		return hierAlltoallv(c, h, send, sendCounts, sdis, recv, recvCounts, rdis)
	}
	var tmp []T
	for step := 1; step < n; step++ {
		dst := (r + step) % n
		src := (r - step + n) % n
		if ct := sendCounts[dst]; ct > 0 {
			if err := c.sendReserved(dst, tagA2Av, send[sdis[dst]:sdis[dst]+ct]); err != nil {
				return err
			}
		}
		if ct := recvCounts[src]; ct > 0 {
			got, err := recvSegCopy(c, src, tagA2Av, recv[rdis[src]:rdis[src]+ct], &tmp)
			if err == errVecSegLen {
				return fmt.Errorf("mpi: Alltoallv: rank %d sent %d elements, recvCounts say %d", src, got, ct)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// displs turns a count vector into its prefix-sum displacement vector and
// total.
func displs(counts []int) ([]int, int) {
	d := make([]int, len(counts))
	total := 0
	for i, ct := range counts {
		d[i] = total
		total += ct
	}
	return d, total
}

// nodeMembers lists the communicator ranks on each node, ascending — the
// same order buildHier used to construct the nodeComms, so index i of
// members[d] is nodeComm rank i on node d (index 0 the leader).
func nodeMembers(h *hierState) [][]int {
	members := make([][]int, len(h.leaders))
	for r, d := range h.nodeOf {
		members[d] = append(members[d], r)
	}
	return members
}

// hierAlltoallv is the two-level schedule. Phase 1: each member forwards
// its whole send buffer and both count vectors to its node leader. Phase 2:
// each leader, for each destination node, concatenates its members' blocks
// in canonical (origin rank ascending, then destination rank ascending)
// order and exchanges these aggregates pairwise with the other leaders —
// one message per node pair across the inter-node link. Phase 3: the
// receiving leader re-sorts the aggregates into each member's contiguous
// receive buffer (origin rank ascending, the flat layout) and sends it
// down. Both sides derive every block size from the gathered count
// matrices, so no extra size exchange is needed.
func hierAlltoallv[T any](c *Comm, h *hierState, send []T, sendCounts []int, sdis []int, recv []T, recvCounts []int, rdis []int) error {
	members := nodeMembers(h)
	mine := members[h.myNode]
	nc := h.nodeComm

	// Phase 1: counts up to the leader (both vectors), then the data.
	scRows, err := Gather(nc, append([]int(nil), sendCounts...), 0)
	if err != nil {
		return err
	}
	rcRows, err := Gather(nc, append([]int(nil), recvCounts...), 0)
	if err != nil {
		return err
	}
	if nc.rank != 0 {
		if len(send) > 0 {
			if err := nc.sendReserved(0, tagA2AvGat, send); err != nil {
				return err
			}
		}
		// The leader sends back this member's fully assembled receive
		// buffer; nothing else to do here.
		var tmp []T
		if len(recv) > 0 {
			if _, err := recvSegCopy(nc, 0, tagA2AvScat, recv, &tmp); err != nil {
				return err
			}
		}
		return nil
	}

	// Leader: collect the members' send buffers (own buffer included, index
	// 0). bufs[i] belongs to nodeComm rank i == comm rank mine[i].
	n := c.Size()
	bufs := make([][]T, len(mine))
	bufs[0] = send
	var tmp []T
	for i := 1; i < len(mine); i++ {
		total := 0
		for _, ct := range scRows[i] {
			total += ct
		}
		bufs[i] = make([]T, total)
		if total > 0 {
			if _, err := recvSegCopy(nc, i, tagA2AvGat, bufs[i], &tmp); err != nil {
				return err
			}
		}
	}

	// Aggregate block sizes: outSize[D] = what this node sends to node D,
	// inSize[S] = what it receives from node S — both derivable locally
	// from the gathered count matrices.
	nodes := len(h.leaders)
	outSize := make([]int, nodes)
	for i := range mine {
		for d := 0; d < n; d++ {
			outSize[h.nodeOf[d]] += scRows[i][d]
		}
	}
	inSize := make([]int, nodes)
	for i := range mine {
		for o := 0; o < n; o++ {
			inSize[h.nodeOf[o]] += rcRows[i][o]
		}
	}

	// packAgg builds the aggregate for destination node D: for each origin
	// member (ascending), its blocks for D's members (ascending).
	packAgg := func(D int, dst []T) {
		pos := 0
		for i := range mine {
			disp := displs2(scRows[i])
			for _, d := range members[D] {
				ct := scRows[i][d]
				copy(dst[pos:pos+ct], bufs[i][disp[d]:disp[d]+ct])
				pos += ct
			}
		}
	}

	// Leaders exchange pairwise; the self aggregate never leaves the node.
	lc := h.leaderComm
	aggs := make([][]T, nodes) // received aggregates, indexed by origin node
	aggs[h.myNode] = make([]T, outSize[h.myNode])
	packAgg(h.myNode, aggs[h.myNode])
	for step := 1; step < nodes; step++ {
		D := (h.myNode + step) % nodes
		S := (h.myNode - step + nodes) % nodes
		if outSize[D] > 0 {
			out := make([]T, outSize[D])
			packAgg(D, out)
			if err := lc.sendReserved(D, tagA2Av, out); err != nil {
				return err
			}
		}
		aggs[S] = make([]T, inSize[S])
		if inSize[S] > 0 {
			if _, err := recvSegCopy(lc, S, tagA2Av, aggs[S], &tmp); err != nil {
				return err
			}
		}
	}

	// Phase 3: re-sort into each member's receive buffer. Member i's final
	// buffer is ordered by origin rank ascending; block (origin o -> member
	// i) has size rcRows[i][o] and sits at the prefix-sum offset of
	// rcRows[i][0..o). Within aggregate S the blocks come in the same
	// canonical (origin asc, dest asc) order packAgg produced.
	outBufs := make([][]T, len(mine))
	posIn := make([][]int, len(mine)) // per member: offset of each origin's block
	for i := range mine {
		disp := displs2(rcRows[i])
		posIn[i] = disp
		total := 0
		for _, ct := range rcRows[i] {
			total += ct
		}
		if i == 0 {
			outBufs[i] = recv
		} else {
			outBufs[i] = make([]T, total)
		}
	}
	for S := 0; S < nodes; S++ {
		agg := aggs[S]
		pos := 0
		for _, o := range members[S] {
			for i := range mine {
				ct := rcRows[i][o]
				copy(outBufs[i][posIn[i][o]:posIn[i][o]+ct], agg[pos:pos+ct])
				pos += ct
			}
		}
	}
	for i := 1; i < len(mine); i++ {
		if len(outBufs[i]) > 0 {
			if err := nc.sendReserved(i, tagA2AvScat, outBufs[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// displs2 is displs without the total, for the hier bookkeeping loops.
func displs2(counts []int) []int {
	d, _ := displs(counts)
	return d
}
