package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// Transport parity: the public mpi API must behave identically whether
// messages travel as typed in-memory payloads (local fast path), as gob
// bytes through the same mailboxes (WithSerialization), over real TCP
// sockets through the hub, or through mmap-backed shared-memory rings
// (RunShm, in eager and forced-rendezvous tunings). Each scenario below
// runs under every mode and the per-rank results are compared structurally.

type parityMode struct {
	name string
	run  func(np int, main func(c *Comm) error, opts ...Option) error
	opts []Option
}

func parityModes() []parityMode {
	modes := []parityMode{
		{name: "local-fast", run: Run},
		{name: "local-serialized", run: Run, opts: []Option{WithSerialization()}},
		{name: "tcp", run: RunTCP},
	}
	if shmSupported {
		modes = append(modes,
			parityMode{name: "shm", run: RunShm},
			parityMode{name: "shm-serialized", run: RunShm, opts: []Option{WithSerialization()}},
			// EagerMax 0 forces every payload through the rendezvous
			// (staged large-message) path, the protocol branch the default
			// tuning only reaches above 16 KiB.
			parityMode{name: "shm-rendezvous", run: func(np int, main func(c *Comm) error, opts ...Option) error {
				prev := SetShmTuning(ShmTuning{EagerMax: 0})
				defer SetShmTuning(prev)
				return RunShm(np, main, opts...)
			}},
		)
	}
	return modes
}

// runParity executes body under every transport mode and requires the
// per-rank results to be identical across modes.
func runParity(t *testing.T, np int, body func(c *Comm) (any, error)) {
	t.Helper()
	var want []any
	var wantMode string
	for _, mode := range parityModes() {
		results := make([]any, np)
		var mu sync.Mutex
		err := mode.run(np, func(c *Comm) error {
			v, err := body(c)
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = v
			mu.Unlock()
			return nil
		}, mode.opts...)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if want == nil {
			want, wantMode = results, mode.name
			continue
		}
		if !reflect.DeepEqual(results, want) {
			t.Errorf("np=%d: %s results %v differ from %s results %v", np, mode.name, results, wantMode, want)
		}
	}
}

func TestParityBcast(t *testing.T) {
	for _, np := range []int{1, 2, 5} {
		runParity(t, np, func(c *Comm) (any, error) {
			v := []float64(nil)
			if c.Rank() == np-1 {
				v = []float64{1.5, 2.5, 3.5}
			}
			return Bcast(c, v, np-1)
		})
	}
}

func TestParityReduceBothAlgorithms(t *testing.T) {
	for _, np := range []int{1, 2, 5} {
		for _, algo := range []ReduceAlgorithm{ReduceLinear, ReduceTree} {
			runParity(t, np, func(c *Comm) (any, error) {
				return ReduceWith(c, c.Rank()+1, Combine[int](Sum), 0, algo)
			})
		}
	}
}

func TestParityAllreduce(t *testing.T) {
	for _, np := range []int{1, 2, 5} {
		runParity(t, np, func(c *Comm) (any, error) {
			return Allreduce(c, float64(c.Rank()), Combine[float64](Max))
		})
	}
}

func TestParityScatterGather(t *testing.T) {
	for _, np := range []int{1, 2, 5} {
		runParity(t, np, func(c *Comm) (any, error) {
			var items []string
			if c.Rank() == 0 {
				items = make([]string, c.Size())
				for i := range items {
					items[i] = fmt.Sprintf("piece-%d", i)
				}
			}
			mine, err := Scatter(c, items, 0)
			if err != nil {
				return nil, err
			}
			all, err := Gather(c, mine+"!", 0)
			if err != nil {
				return nil, err
			}
			return []any{mine, all}, nil
		})
	}
}

func TestParityAllgather(t *testing.T) {
	for _, np := range []int{1, 2, 5} {
		runParity(t, np, func(c *Comm) (any, error) {
			return Allgather(c, c.Rank()*c.Rank())
		})
	}
}

func TestParityBarrierBothAlgorithms(t *testing.T) {
	for _, np := range []int{1, 2, 5} {
		for _, algo := range []BarrierAlgorithm{BarrierLinear, BarrierDissemination} {
			runParity(t, np, func(c *Comm) (any, error) {
				if err := c.BarrierWith(algo); err != nil {
					return nil, err
				}
				return "released", nil
			})
		}
	}
}

func TestParityCollectiveSequence(t *testing.T) {
	// Back-to-back collectives over a derived communicator: the stress shape
	// Split-based programs produce, with reserved-tag traffic from different
	// contexts in flight together.
	runParity(t, 4, func(c *Comm) (any, error) {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return nil, err
		}
		sum, err := Allreduce(sub, c.Rank(), Combine[int](Sum))
		if err != nil {
			return nil, err
		}
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		all, err := Allgather(c, sum)
		if err != nil {
			return nil, err
		}
		return all, nil
	})
}

// TestParityNonOvertaking pins the value-and-order semantics of the
// point-to-point layer across transports: messages from one sender under
// one tag arrive in send order, wildcards included.
func TestParityNonOvertaking(t *testing.T) {
	const msgs = 20
	runParity(t, 2, func(c *Comm) (any, error) {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, 7, []int{i, i * i}); err != nil {
					return nil, err
				}
			}
			return "sent", nil
		}
		var order []int
		for i := 0; i < msgs; i++ {
			var got []int
			if _, err := c.Recv(AnySource, AnyTag, &got); err != nil {
				return nil, err
			}
			order = append(order, got[0])
		}
		return order, nil
	})
}

// Error paths must also agree across transports.

func TestParityErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		np   int
		body func(c *Comm) error
	}{
		{name: "bcast invalid root", np: 2, body: func(c *Comm) error {
			_, err := Bcast(c, 0, 9)
			if !errors.Is(err, ErrInvalidRank) {
				return fmt.Errorf("Bcast root 9 = %v, want ErrInvalidRank", err)
			}
			return nil
		}},
		{name: "reduce invalid root", np: 2, body: func(c *Comm) error {
			_, err := Reduce(c, 1, Combine[int](Sum), -3)
			if !errors.Is(err, ErrInvalidRank) {
				return fmt.Errorf("Reduce root -3 = %v, want ErrInvalidRank", err)
			}
			return nil
		}},
		{name: "send reserved user tag", np: 2, body: func(c *Comm) error {
			if err := c.Send(0, -5, 1); !errors.Is(err, ErrInvalidTag) {
				return fmt.Errorf("Send tag -5 = %v, want ErrInvalidTag", err)
			}
			return nil
		}},
		{name: "send out-of-range dest", np: 2, body: func(c *Comm) error {
			if err := c.Send(5, 0, 1); !errors.Is(err, ErrInvalidRank) {
				return fmt.Errorf("Send dest 5 = %v, want ErrInvalidRank", err)
			}
			return nil
		}},
		{name: "scatter wrong length", np: 2, body: func(c *Comm) error {
			if c.Rank() == 0 {
				if _, err := Scatter(c, []int{1, 2, 3}, 0); err == nil {
					return errors.New("Scatter with 3 items for 2 ranks succeeded")
				}
				return c.sendReserved(1, tagScatter, 99)
			}
			v, err := Scatter[int](c, nil, 0)
			if err != nil {
				return err
			}
			if v != 99 {
				return fmt.Errorf("got %d", v)
			}
			return nil
		}},
		{name: "recv type mismatch", np: 2, body: func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, "definitely a string")
			}
			var wrong struct{ X, Y int }
			_, err := c.Recv(0, 0, &wrong)
			if err == nil {
				return errors.New("string decoded into struct without error")
			}
			return nil
		}},
	}
	for _, tc := range cases {
		for _, mode := range parityModes() {
			if err := mode.run(tc.np, tc.body, mode.opts...); err != nil {
				t.Errorf("%s over %s: %v", tc.name, mode.name, err)
			}
		}
	}
}
