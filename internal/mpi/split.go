package mpi

import (
	"fmt"
	"sort"
)

// ColorUndefined makes Split return a nil communicator for the calling
// rank, mirroring MPI_UNDEFINED: the rank takes part in the collective but
// joins no group.
const ColorUndefined = -1

// maxSplitsPerComm bounds how many Split/Dup calls a single communicator
// supports; context ids for children are packed into a radix-64 digit of
// the parent's id. The top three digit values are reserved for the
// runtime's own derived communicators, which are constructed without
// communication (the membership is deterministic from the parent's group
// and topology) and therefore cannot consume Split sequence numbers.
const (
	maxSplitsPerComm = 60
	ctxProgress      = 61 // the progress engine's shadow communicator (progress.go)
	ctxHierNode      = 62 // the hierarchical intra-node communicator (hier.go)
	ctxHierLeaders   = 63 // the hierarchical leader communicator (hier.go)
)

// splitEntry is exchanged during Split so every rank can compute the group
// membership and ordering locally and identically.
type splitEntry struct {
	Color int
	Key   int
	Rank  int // rank within the parent communicator
}

// Split partitions the communicator into disjoint sub-communicators, one
// per distinct color, ordering ranks within each group by (key, parent
// rank): MPI_Comm_split. Every member of the communicator must call Split
// (it is collective); ranks passing ColorUndefined receive a nil
// communicator.
func (c *Comm) Split(color, key int) (*Comm, error) {
	seq := c.nextCtx
	c.nextCtx++
	if seq > maxSplitsPerComm {
		return nil, fmt.Errorf("mpi: more than %d Split/Dup calls on one communicator", maxSplitsPerComm)
	}
	childCtx := c.ctx*64 + seq

	entries, err := Allgather(c, splitEntry{Color: color, Key: key, Rank: c.rank})
	if err != nil {
		return nil, err
	}
	if color == ColorUndefined {
		return nil, nil
	}

	var group []splitEntry
	for _, e := range entries {
		if e.Color == color {
			group = append(group, e)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].Key != group[j].Key {
			return group[i].Key < group[j].Key
		}
		return group[i].Rank < group[j].Rank
	})

	ranks := make([]int, len(group))
	newRank := -1
	for i, e := range group {
		ranks[i] = c.worldRank(e.Rank)
		if e.Rank == c.rank {
			newRank = i
		}
	}
	return &Comm{
		world:   c.world,
		ctx:     childCtx,
		rank:    newRank,
		ranks:   ranks,
		nextCtx: 1,
		epoch:   c.epoch,
	}, nil
}

// Dup creates a communicator with the same group but an isolated message
// namespace: MPI_Comm_dup. Like Split, it is collective over the
// communicator.
func (c *Comm) Dup() (*Comm, error) {
	return c.Split(0, c.rank)
}
