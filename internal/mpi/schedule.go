package mpi

// Communication-schedule helpers shared by every collective family — the
// scalar algorithms in collective.go, the vector algorithms in vector.go,
// and the hierarchical variants in hier.go all build their schedules from
// these few shapes (binomial-ish tree, ring, dissemination rounds, block
// segmentation) rather than keeping per-file copies.

// treeParent and treeChildren define the binary broadcast/reduce tree in
// the rank space rotated so that root is virtual rank 0.
func treeParent(vrank int) int { return (vrank - 1) / 2 }

func treeChildren(vrank, size int) []int {
	var kids []int
	if l := 2*vrank + 1; l < size {
		kids = append(kids, l)
	}
	if r := 2*vrank + 2; r < size {
		kids = append(kids, r)
	}
	return kids
}

// toVirtual maps a real rank to its position in a tree rooted at root.
func toVirtual(rank, root, size int) int { return (rank - root + size) % size }

// toReal inverts toVirtual.
func toReal(vrank, root, size int) int { return (vrank + root) % size }

// ringNeighbors reports the two neighbours of rank on the n-rank ring the
// allgather/reduce-scatter algorithms circulate over: right is where a rank
// sends, left where it receives from.
func ringNeighbors(rank, n int) (left, right int) {
	return (rank - 1 + n) % n, (rank + 1) % n
}

// disseminationRounds reports how many communication rounds the
// dissemination barrier performs for an n-rank world: ceil(log2 n). The
// round-count scaling test pins Barrier's O(log n) critical path to this
// function, and disseminationBarrier sends exactly one message per rank per
// round.
func disseminationRounds(n int) int {
	rounds := 0
	for dist := 1; dist < n; dist *= 2 {
		rounds++
	}
	return rounds
}

// segRange is the block decomposition the ring algorithms use: segment i of
// k over n elements, with the remainder spread one element each over the
// first n%k segments (the same rule the exemplars' blockRange uses for
// rows). Segments are contiguous, cover [0, n), and may be empty when
// n < k.
func segRange(n, i, k int) (lo, hi int) {
	base, rem := n/k, n%k
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// isPow2 reports whether a world size (>= 1) is a power of two — the sizes
// where recursive halving/doubling pairs up cleanly without a fold step.
func isPow2(n int) bool { return n&(n-1) == 0 }
